#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "ir/matrix.hpp"

namespace ndc::xform {

/// Legality of a loop transformation T against dependence matrix D
/// (Section 5.2.1 / [Wolfe]): every column of T*D must be lexicographically
/// positive. An empty D is always legal.
bool IsLegalTransform(const ir::IntMat& T, const ir::IntMat& D);

/// The paper's constraint solve: find a unimodular integer T satisfying
/// T * I_k = I'_k for each given (iteration, target-iteration) pair.
/// Free entries are chosen to complete T to the identity pattern where
/// possible. Returns false if no such unimodular T exists (within the
/// row-wise exact solve).
bool SolveForTransform(const std::vector<std::pair<ir::IntVec, ir::IntVec>>& pairs, int depth,
                       ir::IntMat* T);

/// Generator family searched by FindTransform: the identity, all loop
/// permutations, and single skews T = I + s*E_ij (|s| <= max_skew, i != j),
/// plus permutation-then-skew compositions.
std::vector<ir::IntMat> CandidateTransforms(int depth, ir::Int max_skew = 2);

/// Smallest-objective legal transform from the candidate family. Returns
/// identity if nothing legal beats it. `objective`: lower is better.
ir::IntMat FindTransform(const ir::IntMat& D, int depth,
                         const std::function<double(const ir::IntMat&)>& objective);

}  // namespace ndc::xform
