#include "xform/transform.hpp"

#include <algorithm>
#include <limits>

namespace ndc::xform {

bool IsLegalTransform(const ir::IntMat& T, const ir::IntMat& D) {
  if (!T.IsUnimodular()) return false;
  ir::IntMat TD = T.Multiply(D);
  for (int c = 0; c < TD.cols(); ++c) {
    ir::IntVec col(static_cast<std::size_t>(TD.rows()));
    for (int r = 0; r < TD.rows(); ++r) col[static_cast<std::size_t>(r)] = TD.at(r, c);
    if (!ir::LexPositive(col)) return false;
  }
  return true;
}

bool SolveForTransform(const std::vector<std::pair<ir::IntVec, ir::IntVec>>& pairs, int depth,
                       ir::IntMat* T) {
  // Each row r of T solves A * t_r = b_r where A's rows are the source
  // iterations and b_r collects the r-th entries of the targets.
  ir::IntMat A(static_cast<int>(pairs.size()), depth);
  for (int k = 0; k < static_cast<int>(pairs.size()); ++k) {
    for (int c = 0; c < depth; ++c) {
      A.at(k, c) = pairs[static_cast<std::size_t>(k)].first[static_cast<std::size_t>(c)];
    }
  }
  ir::IntMat result(depth, depth);
  for (int r = 0; r < depth; ++r) {
    ir::IntVec b(pairs.size());
    for (std::size_t k = 0; k < pairs.size(); ++k) b[k] = pairs[k].second[static_cast<std::size_t>(r)];
    ir::IntVec t_row;
    if (!A.SolveInteger(b, &t_row)) return false;
    for (int c = 0; c < depth; ++c) result.at(r, c) = t_row[static_cast<std::size_t>(c)];
  }
  if (!result.IsUnimodular()) {
    // Try completing underdetermined rows toward the identity: add e_r to
    // row r when that entry's column was free (zero row) and the fix keeps
    // the constraints satisfied.
    for (int r = 0; r < depth; ++r) {
      bool zero_row = true;
      for (int c = 0; c < depth; ++c) zero_row &= result.at(r, c) == 0;
      if (!zero_row) continue;
      result.at(r, r) = 1;
      for (const auto& [src, dst] : pairs) {
        if (src[static_cast<std::size_t>(r)] != dst[static_cast<std::size_t>(r)]) {
          // Adding identity on this row breaks a constraint; give up on it.
          result.at(r, r) = 0;
          break;
        }
      }
    }
  }
  if (!result.IsUnimodular()) return false;
  *T = std::move(result);
  return true;
}

std::vector<ir::IntMat> CandidateTransforms(int depth, ir::Int max_skew) {
  std::vector<ir::IntMat> out;
  // All permutation matrices.
  std::vector<int> perm(static_cast<std::size_t>(depth));
  for (int i = 0; i < depth; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::vector<ir::IntMat> perms;
  do {
    ir::IntMat p(depth, depth);
    for (int r = 0; r < depth; ++r) p.at(r, perm[static_cast<std::size_t>(r)]) = 1;
    perms.push_back(p);
  } while (std::next_permutation(perm.begin(), perm.end()));
  // Skews.
  std::vector<ir::IntMat> skews;
  skews.push_back(ir::IntMat::Identity(depth));
  for (int i = 0; i < depth; ++i) {
    for (int j = 0; j < depth; ++j) {
      if (i == j) continue;
      for (ir::Int s = -max_skew; s <= max_skew; ++s) {
        if (s == 0) continue;
        ir::IntMat m = ir::IntMat::Identity(depth);
        m.at(i, j) = s;
        skews.push_back(m);
      }
    }
  }
  for (const ir::IntMat& p : perms) {
    for (const ir::IntMat& s : skews) {
      out.push_back(s.Multiply(p));
    }
  }
  return out;
}

ir::IntMat FindTransform(const ir::IntMat& D, int depth,
                         const std::function<double(const ir::IntMat&)>& objective) {
  ir::IntMat best = ir::IntMat::Identity(depth);
  double best_obj = objective(best);
  for (const ir::IntMat& t : CandidateTransforms(depth)) {
    if (!IsLegalTransform(t, D)) continue;
    double obj = objective(t);
    if (obj < best_obj) {
      best_obj = obj;
      best = t;
    }
  }
  return best;
}

}  // namespace ndc::xform
