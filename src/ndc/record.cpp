#include "ndc/record.hpp"

#include <unordered_map>

namespace ndc::runtime {

Cycle BreakevenPoint(const InstanceRecord& rec, Loc loc, Cycle op_latency,
                     Cycle return_latency) {
  const LocObs& obs = rec.at(loc);
  if (!obs.feasible || !obs.BothArrived() || rec.conv_done == sim::kNeverCycle) return 0;
  Cycle ndc_base = obs.FirstArrival() + op_latency + return_latency;
  if (ndc_base >= rec.conv_done) return 0;
  return rec.conv_done - ndc_base;
}

Cycle ResultReturnLatency(const noc::Mesh& mesh, const noc::NetworkParams& np, NodeId from,
                          NodeId to) {
  if (from == sim::kNoNode || to == sim::kNoNode) return np.router_pipeline;
  int hops = mesh.Distance(from, to);
  sim::Cycle ser = static_cast<sim::Cycle>((8 + np.link_bytes - 1) / np.link_bytes);
  return np.router_pipeline + static_cast<sim::Cycle>(hops) * (np.router_pipeline + ser);
}

std::vector<bool> ComputeFutureReuse(const arch::Trace& trace, std::uint64_t l1_line_bytes) {
  std::vector<bool> reused(trace.size(), false);
  // Last trace index at which each L1 line is accessed by a Load or Store.
  std::unordered_map<sim::Addr, std::uint32_t> last_access;
  last_access.reserve(trace.size());
  for (std::uint32_t i = 0; i < trace.size(); ++i) {
    const arch::Instr& in = trace[i];
    if (in.kind == arch::Instr::Kind::kLoad || in.kind == arch::Instr::Kind::kStore) {
      last_access[in.addr / l1_line_bytes * l1_line_bytes] = i;
    }
  }
  for (std::uint32_t i = 0; i < trace.size(); ++i) {
    const arch::Instr& in = trace[i];
    bool is_site = (in.kind == arch::Instr::Kind::kCompute && in.ndc_candidate) ||
                   in.kind == arch::Instr::Kind::kPreCompute;
    if (!is_site || in.dep0 < 0 || in.dep1 < 0) continue;
    for (std::int32_t dep : {in.dep0, in.dep1}) {
      const arch::Instr& ld = trace[static_cast<std::size_t>(dep)];
      if (ld.kind != arch::Instr::Kind::kLoad) continue;
      auto it = last_access.find(ld.addr / l1_line_bytes * l1_line_bytes);
      if (it != last_access.end() && it->second > i) {
        reused[i] = true;
        break;
      }
    }
  }
  return reused;
}

}  // namespace ndc::runtime
