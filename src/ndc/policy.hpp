#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "arch/config.hpp"
#include "ndc/record.hpp"
#include "sim/types.hpp"

namespace ndc::runtime {

/// A run-time offload decision for one NDC candidate whose operands both
/// missed the local L1.
struct Decision {
  bool offload = false;
  Loc loc = Loc::kCacheCtrl;
  Cycle timeout = 0;
};

/// The component trial order of Section 5.2.1: "the order of components
/// tried exactly matches the path followed by a data access" — network
/// router first, then L2 bank, then (router again on the L2-miss path, which
/// shares the kLinkBuffer location kind), then memory queue, then memory
/// bank. Expressed over location kinds.
inline constexpr std::array<Loc, 4> kTrialOrder = {
    Loc::kLinkBuffer, Loc::kCacheCtrl, Loc::kMemCtrl, Loc::kMemBank};

/// First location in trial order present in `feasible_mask` (and allowed by
/// `control_mask`); returns false if none.
bool FirstFeasibleLoc(std::uint8_t feasible_mask, std::uint8_t control_mask, Loc* out);

/// A hardware-side waiting strategy (Section 4.4). Policies decide whether
/// and where to offload a candidate computation and how long the first
/// operand may wait (the time-out register value).
class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;

  /// Called when both operand loads of a candidate have issued and both
  /// missed the local L1. `feasible_mask` has a bit per Loc that is
  /// address-feasible for this instance.
  virtual Decision Decide(NodeId core, std::uint32_t compute_idx, std::uint32_t pc, Addr a,
                          Addr b, std::uint8_t feasible_mask) = 0;

  /// Feedback for online predictors: the arrival window eventually observed
  /// at the decided location (kNeverCycle if the operands never met).
  virtual void ObserveWindow(NodeId /*core*/, std::uint32_t /*pc*/, Cycle /*window*/) {}
};

/// Never offloads (the conventional baseline).
class NoNdcPolicy final : public Policy {
 public:
  std::string name() const override { return "baseline"; }
  Decision Decide(NodeId, std::uint32_t, std::uint32_t, Addr, Addr, std::uint8_t) override {
    return {};
  }
};

/// The paper's "Default" bar (Figure 4): always offload at the first
/// feasible location and wait until the second operand arrives.
class AlwaysWaitPolicy final : public Policy {
 public:
  explicit AlwaysWaitPolicy(const arch::ArchConfig& cfg) : cfg_(&cfg) {}
  std::string name() const override { return "default-wait-forever"; }
  Decision Decide(NodeId, std::uint32_t, std::uint32_t, Addr, Addr,
                  std::uint8_t feasible_mask) override;

 private:
  const arch::ArchConfig* cfg_;
};

/// The paper's Wait(x%) bars: wait at most `fraction` of this instance's
/// *actual* arrival window (known from a profiling pass over the same
/// traces). Unknown/never windows fall back to `fraction` of the 500-cycle
/// CDF cap.
class FractionWaitPolicy final : public Policy {
 public:
  FractionWaitPolicy(const arch::ArchConfig& cfg, const RunRecord& profile, double fraction);
  std::string name() const override;
  Decision Decide(NodeId core, std::uint32_t compute_idx, std::uint32_t, Addr, Addr,
                  std::uint8_t feasible_mask) override;

 private:
  const arch::ArchConfig* cfg_;
  const RunRecord* profile_;
  double fraction_;
};

/// The paper's "Last Wait" predictor: assume the next arrival window of a
/// given PC equals the last one observed (Section 4.4).
class LastWaitPolicy final : public Policy {
 public:
  explicit LastWaitPolicy(const arch::ArchConfig& cfg, Cycle first_guess = 50)
      : cfg_(&cfg), first_guess_(first_guess) {}
  std::string name() const override { return "last-wait"; }
  Decision Decide(NodeId core, std::uint32_t, std::uint32_t pc, Addr, Addr,
                  std::uint8_t feasible_mask) override;
  void ObserveWindow(NodeId core, std::uint32_t pc, Cycle window) override;

 private:
  const arch::ArchConfig* cfg_;
  Cycle first_guess_;
  std::map<std::pair<NodeId, std::uint32_t>, Cycle> last_;
};

/// A first-order Markov-chain window predictor over the CDF buckets
/// (mentioned in Section 4.4 as performing similarly to Last Wait).
class MarkovWaitPolicy final : public Policy {
 public:
  explicit MarkovWaitPolicy(const arch::ArchConfig& cfg) : cfg_(&cfg) {}
  std::string name() const override { return "markov-wait"; }
  Decision Decide(NodeId core, std::uint32_t, std::uint32_t pc, Addr, Addr,
                  std::uint8_t feasible_mask) override;
  void ObserveWindow(NodeId core, std::uint32_t pc, Cycle window) override;

 private:
  static int Bucket(Cycle w);
  static Cycle BucketTimeout(int b);
  struct PcState {
    int last_bucket = -1;
    // transition counts [from][to]
    std::array<std::array<std::uint32_t, 7>, 7> counts{};
  };
  const arch::ArchConfig* cfg_;
  std::map<std::pair<NodeId, std::uint32_t>, PcState> state_;
};

/// The oracle of Section 4.4: per dynamic instance, uses the profiled
/// timings to pick the best location (or conventional execution), waits
/// exactly until the known meeting time, and favors data locality whenever
/// one of the operands has a later reuse.
class OraclePolicy final : public Policy {
 public:
  OraclePolicy(const arch::ArchConfig& cfg, const RunRecord& profile,
               bool reuse_aware = true);
  std::string name() const override { return "oracle"; }
  Decision Decide(NodeId core, std::uint32_t compute_idx, std::uint32_t, Addr, Addr,
                  std::uint8_t feasible_mask) override;

 private:
  const arch::ArchConfig* cfg_;
  const RunRecord* profile_;
  bool reuse_aware_;
  noc::Mesh mesh_;
};

}  // namespace ndc::runtime
