#include "ndc/machine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ndc::runtime {
namespace {

// Packet kinds on the NoC.
constexpr int kReq = 1;         // core -> home L2 bank (8 B)
constexpr int kRespToCore = 2;  // home L2 bank -> core (L1 line, 64 B)
constexpr int kReqToMc = 3;     // home L2 bank -> memory controller (8 B)
constexpr int kRespToHome = 4;  // memory controller -> home L2 bank (L2 line, 256 B)
constexpr int kWrite = 5;       // write-through traffic (64 B)
constexpr int kNdcResult = 6;   // NDC result feed-back to the core (8 B)
constexpr int kSyncReq = 7;     // core -> sync engine at the addr's home (8 B)
constexpr int kSyncResp = 8;    // sync engine grant -> core (8 B)

constexpr std::uint64_t Tag(std::uint64_t uid, int operand) {
  return (uid << 1) | static_cast<std::uint64_t>(operand);
}
constexpr std::uint64_t TagUid(std::uint64_t tag) { return tag >> 1; }
constexpr int TagOperand(std::uint64_t tag) { return static_cast<int>(tag & 1); }

std::uint64_t QuadKey(sim::NodeId a, sim::NodeId b, sim::NodeId c, sim::NodeId d,
                      bool reroute) {
  std::uint64_t k = 0;
  for (sim::NodeId v : {a, b, c, d}) k = (k << 10) | static_cast<std::uint64_t>(v & 0x3FF);
  return (k << 1) | (reroute ? 1 : 0);
}

}  // namespace

Machine::Machine(const arch::ArchConfig& cfg, MachineOptions opts)
    : cfg_(cfg),
      opts_(opts),
      mesh_(cfg.mesh_width, cfg.mesh_height),
      amap_(cfg.MakeAddressMap()) {
  net_ = std::make_unique<noc::Network>(mesh_, eq_, cfg_.noc);
  net_->set_hop_hook([this](noc::Packet& p, sim::LinkId l, sim::Cycle now) {
    return OnHop(p, l, now);
  });
  int n = cfg_.num_nodes();
  l1_.reserve(static_cast<std::size_t>(n));
  l2_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    l1_.push_back(std::make_unique<mem::Cache>(cfg_.l1));
    l2_.push_back(std::make_unique<mem::Cache>(cfg_.l2));
  }
  l2_busy_until_.assign(static_cast<std::size_t>(n), 0);
  mc_nodes_ = cfg_.McNodes();
  for (int m = 0; m < cfg_.num_mcs; ++m) {
    mcs_.push_back(std::make_unique<mem::MemCtrl>(m, amap_, cfg_.dram, eq_));
  }
  for (int i = 0; i < n; ++i) {
    cores_.push_back(std::make_unique<arch::Core>(i, cfg_, eq_, *this));
  }
  site_to_uid_.resize(static_cast<std::size_t>(n));
  active_offloads_.assign(static_cast<std::size_t>(n), 0);
  lanes_.emplace_back();  // sequential runs: a single lane, selected unconditionally
  sync_ = std::make_unique<sync::SyncManager>(eq_, opts_.sync);
  if (opts_.observe) records_ = std::make_shared<RunRecord>(n);
  if (ObsOn()) {
    sync_->set_registry(&opts_.obs->registry);
    net_->set_request_tracer(&opts_.obs->tracer);
    net_->RegisterMetrics(opts_.obs->registry);
    for (auto& m : mcs_) {
      m->set_request_tracer(&opts_.obs->tracer);
      m->RegisterMetrics(opts_.obs->registry);
    }
    if (opts_.obs->sampler.enabled()) {
      // Phase-windowed signal collection (classification runs only): the
      // sampler is passive and the stall breakdown is gated here, so runs
      // without windows keep their StatSet key set bit-identical.
      obs::WindowSampler* smp = &opts_.obs->sampler;
      net_->set_sampler(smp);
      sync_->set_sampler(smp);
      for (auto& m : mcs_) m->set_sampler(smp);
      for (auto& c : cores_) c->set_stall_tracking(true);
    }
  }
  if (opts_.faults != nullptr) {
    // Each fault class installs its hook only when the schedule contains
    // windows of that class: an empty schedule leaves the NoC/MC hot paths
    // hook-free and therefore bit-identical to a fault-free run.
    fault::FaultInjector* inj = opts_.faults;
    if (!inj->schedule().link_faults.empty()) {
      net_->set_link_fault_hook([inj](sim::LinkId link, sim::Cycle now) {
        fault::LinkEffect e = inj->OnLinkTraverse(link, now);
        return noc::LinkFault{e.extra_latency, e.drop, e.retransmit_delay};
      });
    }
    for (auto& m : mcs_) {
      sim::McId mc = m->id();
      if (!inj->schedule().bank_faults.empty()) {
        m->set_bank_fault_hook([inj, mc](int bank, sim::Cycle now) {
          mem::BankFault f;
          switch (inj->OnBankSchedule(mc, bank, now)) {
            case fault::BankEffect::kHealthy:
              break;
            case fault::BankEffect::kStall:
              f.effect = mem::BankFault::Effect::kStall;
              f.stall_until = inj->StallEnd(mc, bank, now);
              break;
            case fault::BankEffect::kNack:
              f.effect = mem::BankFault::Effect::kNack;
              f.nack_backoff = inj->nack_backoff();
              break;
          }
          return f;
        });
      }
      if (!inj->schedule().mc_pressure.empty()) {
        m->set_pressure_hook([inj, mc](sim::Cycle now) {
          return inj->OnMcEnqueue(mc, now);
        });
      }
    }
  }
}

Machine::~Machine() = default;

void Machine::LoadProgram(std::vector<arch::Trace> traces) {
  int n = cfg_.num_nodes();
  traces.resize(static_cast<std::size_t>(n));
  load_to_cand_.assign(static_cast<std::size_t>(n), {});
  cands_.assign(static_cast<std::size_t>(n), {});
  future_reuse_.assign(static_cast<std::size_t>(n), {});
  future_reuse_l2_.assign(static_cast<std::size_t>(n), {});
  for (int c = 0; c < n; ++c) {
    const arch::Trace& t = traces[static_cast<std::size_t>(c)];
    auto& l2c = load_to_cand_[static_cast<std::size_t>(c)];
    auto& cands = cands_[static_cast<std::size_t>(c)];
    l2c.assign(t.size(), -1);
    for (std::uint32_t i = 0; i < t.size(); ++i) {
      const arch::Instr& in = t[i];
      bool site = (in.kind == arch::Instr::Kind::kCompute && in.ndc_candidate) ||
                  in.kind == arch::Instr::Kind::kPreCompute;
      if (!site || in.dep0 < 0 || in.dep1 < 0) continue;
      auto d0 = static_cast<std::uint32_t>(in.dep0);
      auto d1 = static_cast<std::uint32_t>(in.dep1);
      if (t[d0].kind != arch::Instr::Kind::kLoad || t[d1].kind != arch::Instr::Kind::kLoad)
        continue;
      if (l2c[d0] != -1 || l2c[d1] != -1) continue;  // a load feeds one site only
      auto cand_id = static_cast<std::int32_t>(cands.size());
      cands.push_back(CandInfo{i, {d0, d1}, in.kind == arch::Instr::Kind::kPreCompute});
      l2c[d0] = cand_id * 2;
      l2c[d1] = cand_id * 2 + 1;
    }
    future_reuse_[static_cast<std::size_t>(c)] = ComputeFutureReuse(t, cfg_.l1.line_bytes);
    future_reuse_l2_[static_cast<std::size_t>(c)] = ComputeFutureReuse(t, cfg_.l2.line_bytes);
    cores_[static_cast<std::size_t>(c)]->SetTrace(std::move(traces[static_cast<std::size_t>(c)]));
  }
}

bool Machine::ShardingEligible() const {
  if (opts_.sim_threads <= 1) return false;
  // Only baseline runs shard. Observe/policy/fault/obs runs and sync or
  // precompute programs keep state that crosses shard boundaries mid-window
  // (decision logs, held packets, sync engines); they run sequentially and
  // therefore stay bit-identical to sim_threads == 1 by construction.
  if (opts_.observe || opts_.policy != nullptr || opts_.faults != nullptr) return false;
  if (obs::kObsEnabled && opts_.obs != nullptr) return false;
  if (cfg_.mesh_width < 2 || cfg_.mesh_height < 2) return false;
  for (const auto& c : cores_) {
    const arch::Trace& t = c->trace();
    for (std::uint32_t i = 0; i < t.size(); ++i) {
      arch::Instr::Kind k = t[i].kind;
      if (k == arch::Instr::Kind::kSync || k == arch::Instr::Kind::kPreCompute) return false;
    }
  }
  return true;
}

void Machine::SetupSharding() {
  if (sq_ != nullptr) {
    sharded_ = true;  // built by an earlier Run on this machine
    return;
  }
  if (!ShardingEligible()) return;
  // 2x2 mesh quadrants: shard boundaries cut the fewest links of any
  // 4-way partition, and every quadrant holds a memory controller on the
  // usual corner placements.
  int w = cfg_.mesh_width, h = cfg_.mesh_height;
  int n = cfg_.num_nodes();
  int mx = (w + 1) / 2, my = (h + 1) / 2;
  shard_of_node_.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    noc::Coord c = mesh_.CoordOf(i);
    shard_of_node_[static_cast<std::size_t>(i)] = (c.y >= my ? 2 : 0) + (c.x >= mx ? 1 : 0);
  }
  constexpr int kShards = 4;
  // Lookahead: the earliest a hop scheduled at cycle t can land on the next
  // router is t + router_pipeline + 1 serialization cycle (noc/network.cpp
  // Traverse) — the only cross-shard schedule in the machine.
  sq_ = std::make_unique<sim::ShardedEventQueue>(kShards, cfg_.noc.router_pipeline + 1);
  for (int i = 0; i < n; ++i) {
    cores_[static_cast<std::size_t>(i)]->RebindQueue(
        &sq_->shard(shard_of_node_[static_cast<std::size_t>(i)]));
  }
  for (auto& m : mcs_) {
    sim::NodeId node = mc_nodes_[static_cast<std::size_t>(m->id())];
    m->RebindQueue(&sq_->shard(shard_of_node_[static_cast<std::size_t>(node)]));
  }
  net_->EnableSharding(sq_.get(), shard_of_node_);
  // Without offloads the hop hook is a pure kContinue, but it reads
  // instance state owned by other shards; drop it so hops stay race-free
  // (and cheaper). Sequential runs keep the hook — goldens unchanged.
  net_->set_hop_hook({});
  while (lanes_.size() < static_cast<std::size_t>(kShards)) lanes_.emplace_back();
  PreCreateInstances();
  sharded_ = true;
}

void Machine::PreCreateInstances() {
  // Sharded runs create every dynamic candidate instance before any thread
  // starts, so instances_ and site_to_uid_ stay structurally immutable
  // while shards execute concurrently (IssueLoad's lazy creation would
  // otherwise rehash the map under foreign readers). uids are numbered in
  // (core, candidate) order — fixed for every thread count; a uid is an
  // identity only and never influences timing or results.
  for (std::size_t c = 0; c < cands_.size(); ++c) {
    const arch::Trace& t = cores_[c]->trace();
    for (const CandInfo& cand : cands_[c]) {
      if (site_to_uid_[c].count(cand.site_idx) != 0) continue;
      std::uint64_t uid = next_uid_++;
      Instance ni;
      ni.uid = uid;
      ni.core = static_cast<sim::NodeId>(c);
      ni.site_idx = cand.site_idx;
      const arch::Instr& site = t[cand.site_idx];
      ni.pc = site.pc;
      ni.site = site.site;
      ni.op = site.op;
      ni.load_idx = cand.load_idx;
      ni.addr = {t[cand.load_idx[0]].addr, t[cand.load_idx[1]].addr};
      ni.is_precompute = cand.is_precompute;
      site_to_uid_[c][cand.site_idx] = uid;
      instances_.emplace(uid, std::move(ni));
    }
  }
}

RunResult Machine::Run(sim::Cycle limit) {
  SetupSharding();
  for (auto& c : cores_) {
    if (!c->trace().empty()) c->Start();
  }
  if (sharded_) {
    sq_->RunUntilEmpty(limit, opts_.sim_threads);
  } else {
    eq_.RunUntilEmpty(limit);
  }

  RunResult r;
  r.events = sharded_ ? sq_->executed() : eq_.executed();
  for (auto& c : cores_) {
    if (c->trace().empty()) continue;
    if (!c->finished()) incomplete_cores_.Add();
    r.makespan = std::max(r.makespan, c->finish_cycle());
  }
  for (auto& cache : l1_) {
    r.l1_hits += cache->hits();
    r.l1_misses += cache->misses();
  }
  for (auto& cache : l2_) {
    r.l2_hits += cache->hits();
    r.l2_misses += cache->misses();
  }
  for (const ShardLane& l : lanes_) {
    r.candidates += l.candidates.v;
    r.local_l1_skips += l.local_l1_skips.v;
  }
  r.offloads = offloads_.v;
  r.ndc_success = success_.v;
  r.fallbacks = fallbacks_.v;
  r.ndc_at_loc = ndc_at_loc_;
  MaterializeStats();
  r.stats = stats_;
  for (const auto& [k, v] : net_->stats().all()) r.stats.Add(k, v);
  for (auto& m : mcs_) {
    for (const auto& [k, v] : m->stats().all()) r.stats.Add(k, v);
  }
  if (sync_->used()) r.sync_values = sync_->values();
  if (opts_.observe) {
    FinalizeRecords(r);
    r.records = records_;
  }
  if (ObsOn()) {
    if (opts_.obs->sampler.enabled()) {
      // Core stall breakdown reaches the merged StatSet only on
      // classification runs — the keys are gated with the sampler, so the
      // default-run golden key set never changes.
      std::uint64_t stall_mem = 0, stall_sync = 0, busy_compute = 0;
      for (auto& c : cores_) {
        stall_mem += c->stall_mem_cycles();
        stall_sync += c->stall_sync_cycles();
        busy_compute += c->busy_compute_cycles();
      }
      r.stats.Add("core.stall.mem", stall_mem);
      r.stats.Add("core.stall.sync", stall_sync);
      r.stats.Add("core.busy.compute", busy_compute);
    }
    opts_.obs->EndRun(eq_.now());  // observed runs are never sharded
    MirrorRegistry(r);
  }
  return r;
}

// ---------------------------------------------------------------------------
// MemoryPort
// ---------------------------------------------------------------------------

void Machine::IssueLoad(sim::NodeId core, std::uint32_t idx, sim::Addr addr) {
  auto c = static_cast<std::size_t>(core);
  std::uint64_t rtok = 0;
  if (ObsOn()) rtok = opts_.obs->tracer.Begin(core, idx, addr, ceq().now());
  Instance* inst = nullptr;
  int operand = -1;
  std::int32_t lc = load_to_cand_[c][idx];
  if (lc >= 0) {
    const CandInfo& cand = cands_[c][static_cast<std::size_t>(lc) / 2];
    operand = lc % 2;
    inst = FindInstance(core, cand.site_idx);
    if (inst == nullptr) {
      // First operand load of this site: create the dynamic instance.
      std::uint64_t uid = next_uid_++;
      Instance ni;
      ni.uid = uid;
      ni.core = core;
      ni.site_idx = cand.site_idx;
      const arch::Instr& site = cores_[c]->trace()[cand.site_idx];
      ni.pc = site.pc;
      ni.site = site.site;
      ni.op = site.op;
      ni.load_idx = cand.load_idx;
      ni.addr = {cores_[c]->trace()[cand.load_idx[0]].addr,
                 cores_[c]->trace()[cand.load_idx[1]].addr};
      ni.is_precompute = cand.is_precompute;
      site_to_uid_[c][cand.site_idx] = uid;
      inst = &instances_.emplace(uid, std::move(ni)).first->second;
    }
    // Second operand load issued? (the other load slot is already past the
    // in-order issue pointer, or it is this very slot when both deps alias).
    std::uint32_t other = inst->load_idx[operand == 0 ? 1 : 0];
    if (other == idx || cores_[c]->issued(other)) {
      OnSecondLoadIssued(core, cands_[c][static_cast<std::size_t>(lc) / 2], inst->addr[0],
                         inst->addr[1]);
      inst = InstanceByUid(site_to_uid_[c][cands_[c][static_cast<std::size_t>(lc) / 2].site_idx]);
    }
  }

  if (inst != nullptr && operand >= 0 && rtok != 0) {
    inst->obs_tok[static_cast<std::size_t>(operand)] = rtok;
  }
  bool hit = l1_[c]->Access(addr);
  if (hit) {
    sim::Cycle done = ceq().now() + cfg_.l1.access_latency;
    if (ObsOn() && rtok != 0) opts_.obs->tracer.Finish(rtok, obs::Stage::kL1Hit, done);
    cores_[c]->Complete(idx, done);
    if (inst != nullptr) {
      std::uint64_t uid = inst->uid;
      ceq().ScheduleAt(done, [this, uid, operand, done] {
        if (Instance* i2 = InstanceByUid(uid)) OnOperandAtCore(*i2, operand, done);
      });
    }
    return;
  }
  std::uint64_t uid = inst ? inst->uid : 0;
  ceq().ScheduleAfter(cfg_.l1.access_latency, [this, core, idx, addr, uid, operand, rtok] {
    Instance* i2 = uid ? InstanceByUid(uid) : nullptr;
    StartL1Miss(core, idx, addr, i2, operand, rtok);
  });
}

void Machine::IssueStore(sim::NodeId core, std::uint32_t idx, sim::Addr addr) {
  (void)idx;
  auto c = static_cast<std::size_t>(core);
  l1_[c]->Access(addr);  // write-through, no-allocate
  sim::NodeId home = amap_.HomeBank(addr);
  ceq().ScheduleAfter(cfg_.l1.access_latency, [this, core, home, addr] {
    SendLocal(core, home, 64, {}, 0, kWrite, [this, home, addr](const noc::Packet&, sim::Cycle) {
      // Write-allocate at the L2 home bank (write-back policy; dirty
      // eviction write-back traffic is not modeled — see DESIGN.md).
      l2_[static_cast<std::size_t>(home)]->Fill(addr);
    });
  });
}

void Machine::IssuePreCompute(sim::NodeId core, std::uint32_t idx, const arch::Instr& instr) {
  (void)instr;
  Instance* inst = FindInstance(core, idx);
  if (inst == nullptr) {
    // Degenerate site (e.g. operand loads were deduplicated away): nothing
    // will complete it, so complete immediately as a 1-cycle no-op.
    cores_[static_cast<std::size_t>(core)]->Complete(idx, ceq().now() + 1);
    return;
  }
  // If both operands already reached the core conventionally, finish now.
  MaybeFallback(*inst);
}

void Machine::IssueSync(sim::NodeId core, std::uint32_t idx, const arch::Instr& instr) {
  // The request is an ordinary 8-byte NoC packet to the sync engine at the
  // address's home node; the grant comes back as an 8-byte response. Both
  // legs queue and contend like any memory request.
  sim::NodeId engine = amap_.HomeBank(instr.addr);
  if (ObsOn()) {
    opts_.obs->sink.Instant("ndc.sync", ceq().now(), core, 0, "op",
                            static_cast<std::uint64_t>(instr.sync_op));
  }
  sync::SyncRequest req;
  req.op = instr.sync_op;
  req.addr = instr.addr;
  req.arg = instr.sync_arg;
  req.arg2 = instr.sync_arg2;
  req.core = core;
  req.slot = idx;
  req.issued_at = ceq().now();
  req.grant = [this, engine](const sync::SyncRequest& r, sim::Cycle) {
    SendLocal(engine, r.core, 8, {}, 0, kSyncResp,
              [this, core = r.core, slot = r.slot](const noc::Packet&, sim::Cycle) {
                if (ObsOn()) {
                  opts_.obs->sink.Instant("ndc.sync.grant", ceq().now(), core, 0);
                }
                cores_[static_cast<std::size_t>(core)]->Complete(slot, ceq().now());
              });
  };
  SendLocal(core, engine, 8, {}, 0, kSyncReq,
            [this, engine, req = std::move(req)](const noc::Packet&, sim::Cycle) mutable {
              sync_->Enqueue(engine, std::move(req));
            });
}

// ---------------------------------------------------------------------------
// Memory path
// ---------------------------------------------------------------------------

void Machine::SendLocal(sim::NodeId from, sim::NodeId to, int bytes, noc::Route route,
                        std::uint64_t tag, int kind, noc::Network::DeliverFn fn,
                        std::uint64_t rtok) {
  if (from == to) {
    ceq().ScheduleAfter(cfg_.noc.router_pipeline, [fn = std::move(fn)] {
      noc::Packet p;
      fn(p, 0);
    });
    return;
  }
  noc::Packet p;
  p.src = from;
  p.dst = to;
  p.size_bytes = bytes;
  p.route = std::move(route);
  p.tag = tag;
  p.kind = kind;
  p.obs_token = rtok;
  net_->Send(std::move(p), std::move(fn));
}

void Machine::StartL1Miss(sim::NodeId core, std::uint32_t idx, sim::Addr addr, Instance* inst,
                          int operand, std::uint64_t rtok) {
  (void)operand;
  if (ObsOn() && rtok != 0) opts_.obs->tracer.Stamp(rtok, obs::Stage::kL1Miss, ceq().now());
  sim::NodeId home = amap_.HomeBank(addr);
  std::uint64_t tag = inst ? Tag(inst->uid, operand) : 0;
  if (home == core) {
    AccessL2(home, core, idx, addr, tag, rtok);
    return;
  }
  SendLocal(core, home, 8, {}, tag, kReq,
            [this, home, core, idx, addr, tag, rtok](const noc::Packet&, sim::Cycle) {
              AccessL2(home, core, idx, addr, tag, rtok);
            },
            rtok);
}

void Machine::AccessL2(sim::NodeId home, sim::NodeId core, std::uint32_t idx, sim::Addr addr,
                       std::uint64_t tag, std::uint64_t rtok) {
  if (ObsOn() && rtok != 0) opts_.obs->tracer.Stamp(rtok, obs::Stage::kReqAtHome, ceq().now());
  auto h = static_cast<std::size_t>(home);
  sim::Cycle start = std::max(ceq().now(), l2_busy_until_[h]);
  l2_busy_until_[h] = start + 2;  // bank occupancy (pipelined)
  bool hit = l2_[h]->Access(addr);
  sim::Cycle ready = start + cfg_.l2.access_latency;
  if (hit) {
    ceq().ScheduleAt(ready, [this, home, core, idx, addr, tag, rtok] {
      if (ObsOn() && rtok != 0) opts_.obs->tracer.Stamp(rtok, obs::Stage::kL2Hit, ceq().now());
      L2DataReady(home, core, idx, addr, tag, rtok);
    });
    return;
  }
  ceq().ScheduleAt(ready, [this, home, core, idx, addr, tag, rtok] {
    if (ObsOn() && rtok != 0) opts_.obs->tracer.Stamp(rtok, obs::Stage::kL2Miss, ceq().now());
    sim::McId m = amap_.Mc(addr);
    sim::NodeId mc_node = mc_nodes_[static_cast<std::size_t>(m)];
    SendLocal(home, mc_node, 8, {}, tag, kReqToMc,
              [this, m, home, core, idx, addr, tag, rtok](const noc::Packet&, sim::Cycle) {
                if (ObsOn() && rtok != 0) {
                  opts_.obs->tracer.Stamp(rtok, obs::Stage::kMcEnqueue, ceq().now());
                }
                mcs_[static_cast<std::size_t>(m)]->EnqueueRead(
                    tag, addr,
                    [this, m, home, core, idx, addr, tag, rtok](std::uint64_t, sim::Cycle) {
                      McDataReady(m, home, core, idx, addr, tag, rtok);
                    },
                    rtok);
              },
              rtok);
  });
}

void Machine::McDataReady(sim::McId mc, sim::NodeId home, sim::NodeId core, std::uint32_t idx,
                          sim::Addr addr, std::uint64_t tag, std::uint64_t rtok) {
  sim::NodeId mc_node = mc_nodes_[static_cast<std::size_t>(mc)];
  auto forward = [this, mc_node, home, core, idx, addr, tag, rtok] {
    Instance* inst = tag ? InstanceByUid(TagUid(tag)) : nullptr;
    noc::Route route;
    if (inst != nullptr && inst->offloaded && inst->planned == Loc::kLinkBuffer) {
      route = inst->route_mc_to_home[static_cast<std::size_t>(TagOperand(tag))];
    }
    SendLocal(mc_node, home, 256, std::move(route), tag, kRespToHome,
              [this, home, core, idx, addr, tag, rtok](const noc::Packet&, sim::Cycle) {
                if (ObsOn() && rtok != 0) {
                  opts_.obs->tracer.Stamp(rtok, obs::Stage::kHomeRefill, ceq().now());
                }
                l2_[static_cast<std::size_t>(home)]->Fill(addr);
                L2DataReady(home, core, idx, addr, tag, rtok);
              },
              rtok);
  };

  if (tag != 0) {
    if (Instance* inst = InstanceByUid(TagUid(tag))) {
      int operand = TagOperand(tag);
      int bank = amap_.DramBank(addr);
      if (opts_.observe) {
        RecordObs(*inst, operand, Loc::kMemCtrl, mc_node, ceq().now());
        RecordObs(*inst, operand, Loc::kMemBank, mc_node, ceq().now());
      }
      if (inst->offloaded &&
          (inst->planned == Loc::kMemCtrl || inst->planned == Loc::kMemBank)) {
        int key = inst->planned == Loc::kMemCtrl ? static_cast<int>(mc)
                                                 : static_cast<int>(mc) * 64 + bank;
        if (OnOperandAtLoc(*inst, operand, inst->planned, mc_node, key, forward)) return;
      }
    }
  }
  forward();
}

void Machine::L2DataReady(sim::NodeId home, sim::NodeId core, std::uint32_t idx,
                          sim::Addr addr, std::uint64_t tag, std::uint64_t rtok) {
  auto forward = [this, home, core, idx, addr, tag, rtok] {
    SendResponseToCore(home, core, idx, addr, tag, rtok);
  };
  if (tag != 0) {
    if (Instance* inst = InstanceByUid(TagUid(tag))) {
      int operand = TagOperand(tag);
      if (opts_.observe) {
        RecordObs(*inst, operand, Loc::kCacheCtrl, home, ceq().now());
        // Residency check: if the partner operand arrived earlier, is its
        // line still resident now? (Paper: "x is replaced from the L2
        // cache before y reaches there".)
        LocObs& obs = inst->obs[static_cast<std::size_t>(Loc::kCacheCtrl)];
        int other = operand == 0 ? 1 : 0;
        sim::Cycle t_other = other == 0 ? obs.t_a : obs.t_b;
        if (obs.feasible && t_other != sim::kNeverCycle) {
          sim::Addr other_addr = inst->addr[static_cast<std::size_t>(other)];
          if (!l2_[static_cast<std::size_t>(home)]->Contains(other_addr)) obs.meet_ok = false;
        }
      }
      if (inst->offloaded && inst->planned == Loc::kCacheCtrl) {
        if (OnOperandAtLoc(*inst, operand, Loc::kCacheCtrl, home, home, forward)) return;
      }
    }
  }
  forward();
}

void Machine::SendResponseToCore(sim::NodeId home, sim::NodeId core, std::uint32_t idx,
                                 sim::Addr addr, std::uint64_t tag, std::uint64_t rtok) {
  Instance* inst = tag ? InstanceByUid(TagUid(tag)) : nullptr;
  noc::Route route;
  if (inst != nullptr && inst->offloaded && inst->planned == Loc::kLinkBuffer) {
    route = inst->route_home_to_core[static_cast<std::size_t>(TagOperand(tag))];
  }
  SendLocal(home, core, 64, std::move(route), tag, kRespToCore,
            [this, core, idx, addr, tag, rtok](const noc::Packet&, sim::Cycle) {
              DeliverToCore(core, idx, addr, tag, rtok);
            },
            rtok);
}

void Machine::DeliverToCore(sim::NodeId core, std::uint32_t idx, sim::Addr addr,
                            std::uint64_t tag, std::uint64_t rtok) {
  l1_[static_cast<std::size_t>(core)]->Fill(addr);
  sim::Cycle now = ceq().now();
  if (ObsOn() && rtok != 0) opts_.obs->tracer.Finish(rtok, obs::Stage::kDeliver, now);
  cores_[static_cast<std::size_t>(core)]->Complete(idx, now);
  if (tag != 0) {
    if (Instance* inst = InstanceByUid(TagUid(tag))) {
      OnOperandAtCore(*inst, TagOperand(tag), now);
    }
  }
}

// ---------------------------------------------------------------------------
// NDC engine
// ---------------------------------------------------------------------------

void Machine::OnSecondLoadIssued(sim::NodeId core, const CandInfo& cand, sim::Addr a,
                                 sim::Addr b) {
  Instance* inst = FindInstance(core, cand.site_idx);
  assert(inst != nullptr);
  if (inst->state != InstState::kPending || inst->feasible_mask != 0 || inst->local_l1 ||
      inst->offloaded) {
    return;  // already decided (defensive)
  }
  lane().candidates.Add();

  auto c = static_cast<std::size_t>(core);
  // LD/ST-unit local-cache probe (Section 2): if an operand is already in
  // the local L1, perform the computation in the core.
  if (l1_[c]->Contains(a) || l1_[c]->Contains(b)) {
    inst->local_l1 = true;
    inst->state = InstState::kConventional;
    lane().local_l1_skips.Add();
    RecordDecision(*inst, obs::DecisionKind::kLocalL1Skip, -1);
    return;
  }

  inst->feasible_mask = ComputeFeasibility(*inst);

  if (opts_.observe) {
    PlanRoutes(*inst);  // XY-based shared links for link observations
    inst->state = InstState::kConventional;
    for (int l = 0; l < arch::kNumLocs; ++l) {
      inst->obs[static_cast<std::size_t>(l)].feasible =
          (inst->feasible_mask >> l) & 1;
    }
    RecordDecision(*inst, obs::DecisionKind::kDeclined, -1);
    return;
  }

  Decision d;
  // The audit entry captures the *binding* reason a candidate ran
  // conventionally (the last gate that flipped the decision).
  obs::DecisionKind why = obs::DecisionKind::kDeclined;
  std::int8_t why_loc = -1;
  if (cand.is_precompute && opts_.honor_precompute) {
    const arch::Instr& site = cores_[c]->trace()[cand.site_idx];
    std::uint8_t allowed = inst->feasible_mask & cfg_.control_register;
    if (allowed & arch::LocBit(site.planned_loc)) {
      d.offload = true;
      d.loc = site.planned_loc;
      d.timeout = site.timeout ? site.timeout : cfg_.default_timeout;
    } else {
      plan_infeasible_.Add();
      why = obs::DecisionKind::kPlanInfeasible;
      why_loc = static_cast<std::int8_t>(site.planned_loc);
    }
  } else if (opts_.policy != nullptr) {
    d = opts_.policy->Decide(core, cand.site_idx, inst->pc, a, b, inst->feasible_mask);
  }

  if (cfg_.restrict_ops_to_addsub && !arch::IsAddSub(inst->op)) {
    if (d.offload) {
      why = obs::DecisionKind::kOpRestricted;
      why_loc = static_cast<std::int8_t>(d.loc);
    }
    d.offload = false;
  }

  // LD/ST-unit offload table capacity (Section 2).
  if (d.offload && active_offloads_[c] >= cfg_.offload_table_entries) {
    offload_table_full_.Add();
    why = obs::DecisionKind::kOffloadTableFull;
    why_loc = static_cast<std::int8_t>(d.loc);
    d.offload = false;
  }

  if (!d.offload) {
    inst->state = InstState::kConventional;
    RecordDecision(*inst, why, why_loc);
    return;
  }
  inst->offloaded = true;
  inst->planned = d.loc;
  inst->timeout = std::max<sim::Cycle>(1, d.timeout);
  ++active_offloads_[c];
  offloads_.Add();
  RecordDecision(*inst, obs::DecisionKind::kOffload, static_cast<std::int8_t>(d.loc));
  PlanRoutes(*inst);
  if (!cand.is_precompute) cores_[c]->MarkExternal(cand.site_idx);
}

std::uint8_t Machine::ComputeFeasibility(Instance& inst) {
  std::uint8_t mask = 0;
  sim::Addr a = inst.addr[0], b = inst.addr[1];
  sim::NodeId ha = amap_.HomeBank(a), hb = amap_.HomeBank(b);
  sim::McId ma = amap_.Mc(a), mb = amap_.Mc(b);
  if (ha == hb) mask |= arch::LocBit(Loc::kCacheCtrl);
  if (ma == mb) {
    mask |= arch::LocBit(Loc::kMemCtrl);
    if (amap_.DramBank(a) == amap_.DramBank(b)) mask |= arch::LocBit(Loc::kMemBank);
  }
  bool reroute = inst.is_precompute && cfg_.allow_reroute && !opts_.observe;
  const noc::RoutePair& p1 = OverlapFor(ha, inst.core, hb, inst.core, reroute);
  bool link = p1.shared_links > 0;
  if (!link) {
    sim::NodeId mna = mc_nodes_[static_cast<std::size_t>(ma)];
    sim::NodeId mnb = mc_nodes_[static_cast<std::size_t>(mb)];
    const noc::RoutePair& p2 = OverlapFor(mna, ha, mnb, hb, reroute);
    link = p2.shared_links > 0;
  }
  if (link) mask |= arch::LocBit(Loc::kLinkBuffer);
  return mask;
}

const noc::RoutePair& Machine::OverlapFor(sim::NodeId a_src, sim::NodeId a_dst,
                                          sim::NodeId b_src, sim::NodeId b_dst, bool reroute) {
  std::uint64_t key = QuadKey(a_src, a_dst, b_src, b_dst, reroute);
  auto& cache = lane().route_pairs;  // per shard: memoized without sharing
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;
  noc::RoutePair p;
  if (reroute) {
    p = noc::MaxOverlapRoutes(mesh_, a_src, a_dst, b_src, b_dst);
  } else {
    p.a = noc::XyRoute(mesh_, a_src, a_dst);
    p.b = noc::XyRoute(mesh_, b_src, b_dst);
    p.shared = noc::Signature::FromRoute(p.a).Intersect(noc::Signature::FromRoute(p.b));
    p.shared_links = p.shared.Popcount();
  }
  return cache.emplace(key, std::move(p)).first->second;
}

void Machine::PlanRoutes(Instance& inst) {
  bool reroute = inst.is_precompute && cfg_.allow_reroute && !opts_.observe;
  sim::NodeId ha = amap_.HomeBank(inst.addr[0]), hb = amap_.HomeBank(inst.addr[1]);
  sim::McId ma = amap_.Mc(inst.addr[0]), mb = amap_.Mc(inst.addr[1]);
  sim::NodeId mna = mc_nodes_[static_cast<std::size_t>(ma)];
  sim::NodeId mnb = mc_nodes_[static_cast<std::size_t>(mb)];
  const noc::RoutePair& p1 = OverlapFor(ha, inst.core, hb, inst.core, reroute);
  const noc::RoutePair& p2 = OverlapFor(mna, ha, mnb, hb, reroute);
  inst.route_home_to_core = {p1.a, p1.b};
  inst.route_mc_to_home = {p2.a, p2.b};
  inst.shared_links = p1.shared.Union(p2.shared);
  // Observation timing link: the first shared link along operand A's
  // home->core route, falling back to the MC segment.
  inst.obs_link = sim::kNoLink;
  for (sim::LinkId l : p1.a) {
    if (p1.shared.Test(l)) {
      inst.obs_link = l;
      break;
    }
  }
  if (inst.obs_link == sim::kNoLink) {
    for (sim::LinkId l : p2.a) {
      if (p2.shared.Test(l)) {
        inst.obs_link = l;
        break;
      }
    }
  }
}

noc::HopAction Machine::OnHop(noc::Packet& p, sim::LinkId link, sim::Cycle now) {
  if (p.tag == 0) return noc::HopAction::kContinue;
  if (p.kind != kRespToCore && p.kind != kRespToHome) return noc::HopAction::kContinue;
  Instance* inst = InstanceByUid(TagUid(p.tag));
  if (inst == nullptr) return noc::HopAction::kContinue;
  int operand = TagOperand(p.tag);

  if (opts_.observe) {
    if (link == inst->obs_link) {
      RecordObs(*inst, operand, Loc::kLinkBuffer, mesh_.LinkSource(link), now);
    }
    return noc::HopAction::kContinue;
  }

  if (!inst->offloaded || inst->planned != Loc::kLinkBuffer) return noc::HopAction::kContinue;
  // A single designated meeting link per package avoids hold races where
  // each operand waits at a different shared link.
  if (link != inst->obs_link) return noc::HopAction::kContinue;

  if (inst->at_planned[static_cast<std::size_t>(operand)] == sim::kNeverCycle) {
    inst->at_planned[static_cast<std::size_t>(operand)] = now;
    ReportWindow(*inst);
  }

  int other = operand == 0 ? 1 : 0;
  switch (inst->state) {
    case InstState::kWaiting:
      if (inst->waiting_op == other && inst->held_link == link) {
        std::uint64_t held = inst->held_packet;
        MeetAndCompute(*inst, Loc::kLinkBuffer, mesh_.LinkSource(link));
        net_->Squash(held);
        return noc::HopAction::kSquash;
      }
      return noc::HopAction::kContinue;
    case InstState::kPending: {
      if (inst->at_core[static_cast<std::size_t>(other)] != sim::kNeverCycle) {
        inst->state = InstState::kAborted;  // partner already done at core
        ResolveDecision(*inst, obs::Outcome::kFallbackPartnerDone, -1);
        return noc::HopAction::kContinue;
      }
      if (!ServiceTableReserve(Loc::kLinkBuffer, link)) {
        service_table_full_.Add();
        inst->state = InstState::kAborted;
        ResolveDecision(*inst, obs::Outcome::kFallbackServiceTableFull, -1);
        return noc::HopAction::kContinue;
      }
      inst->state = InstState::kWaiting;
      inst->waiting_op = operand;
      inst->held_link = link;
      inst->held_packet = p.id;
      inst->service_key = link;
      inst->cur_timeout = inst->timeout;
      inst->retries_used = 0;
      ArmWaitTimeout(*inst);
      return noc::HopAction::kHold;
    }
    default:
      return noc::HopAction::kContinue;
  }
}

bool Machine::OnOperandAtLoc(Instance& inst, int operand, Loc loc, sim::NodeId node,
                             int service_key, std::function<void()> resume) {
  if (inst.at_planned[static_cast<std::size_t>(operand)] == sim::kNeverCycle) {
    inst.at_planned[static_cast<std::size_t>(operand)] = ceq().now();
    ReportWindow(inst);
  }
  int other = operand == 0 ? 1 : 0;
  switch (inst.state) {
    case InstState::kWaiting:
      if (inst.waiting_op == other) {
        // The waiting operand's held response is discarded: its data was
        // consumed by the near-data computation.
        inst.resume = nullptr;
        MeetAndCompute(inst, loc, node);
        return true;
      }
      return false;
    case InstState::kPending: {
      if (inst.at_core[static_cast<std::size_t>(other)] != sim::kNeverCycle) {
        inst.state = InstState::kAborted;
        ResolveDecision(inst, obs::Outcome::kFallbackPartnerDone, -1);
        return false;
      }
      if (!ServiceTableReserve(loc, service_key)) {
        service_table_full_.Add();
        inst.state = InstState::kAborted;
        ResolveDecision(inst, obs::Outcome::kFallbackServiceTableFull, -1);
        return false;
      }
      inst.state = InstState::kWaiting;
      inst.waiting_op = operand;
      inst.resume = std::move(resume);
      inst.service_key = service_key;
      inst.cur_timeout = inst.timeout;
      inst.retries_used = 0;
      ArmWaitTimeout(inst);
      return true;
    }
    default:
      return false;
  }
}

void Machine::MeetAndCompute(Instance& inst, Loc loc, sim::NodeId node) {
  ServiceTableRelease(loc, inst.service_key);
  if (active_offloads_[static_cast<std::size_t>(inst.core)] > 0) {
    --active_offloads_[static_cast<std::size_t>(inst.core)];
  }
  inst.state = InstState::kComputed;
  inst.waiting_op = -1;
  sim::Cycle now = ceq().now();
  success_.Add();
  ++ndc_at_loc_[static_cast<std::size_t>(loc)];
  if (ObsOn()) {
    // Both operands end their lifetime here: their data never reaches the
    // core (the packets were squashed / the responses absorbed).
    opts_.obs->tracer.Finish(inst.obs_tok[0], obs::Stage::kNdcConsumed, now);
    opts_.obs->tracer.Finish(inst.obs_tok[1], obs::Stage::kNdcConsumed, now);
    opts_.obs->sink.Instant("ndc.meet", now, inst.core, inst.uid, "loc",
                            static_cast<std::uint64_t>(loc));
    ResolveDecision(inst, obs::Outcome::kNdcSuccess, static_cast<std::int8_t>(loc));
    // NDC engine busy time: one op's worth per successful meeting, noted at
    // the meet cycle (sums to ndc.success * compute_latency).
    opts_.obs->sampler.Note(obs::Signal::kNdcBusy, now, cfg_.compute_latency);
  }
  // Both operand loads are consumed by the near-data computation.
  auto c = static_cast<std::size_t>(inst.core);
  cores_[c]->Complete(inst.load_idx[0], now);
  cores_[c]->Complete(inst.load_idx[1], now);
  ReportWindow(inst);
  // CPU-feed: the 8-byte result travels back to the core after the op.
  sim::NodeId core = inst.core;
  std::uint32_t site_idx = inst.site_idx;
  ceq().ScheduleAfter(cfg_.compute_latency, [this, node, core, site_idx] {
    SendLocal(node, core, 8, {}, 0, kNdcResult,
              [this, core, site_idx](const noc::Packet&, sim::Cycle) {
                cores_[static_cast<std::size_t>(core)]->Complete(site_idx, ceq().now());
              });
  });
}

void Machine::ArmWaitTimeout(Instance& inst) {
  std::uint64_t token = next_wait_token_++;
  inst.wait_token = token;
  std::uint64_t uid = inst.uid;
  ceq().ScheduleAfter(inst.cur_timeout, [this, uid, token] {
    Instance* i2 = InstanceByUid(uid);
    if (i2 != nullptr && i2->state == InstState::kWaiting && i2->wait_token == token) {
      OnWaitTimeout(*i2);
    }
  });
}

void Machine::OnWaitTimeout(Instance& inst) {
  // Bounded retry with backoff: under a fault schedule, an expired wait
  // window re-arms (wider each time) up to the retry budget before the
  // offload degrades to host-core execution. Without a fault injector the
  // budget is zero and the first timeout aborts, exactly as before.
  if (opts_.faults != nullptr) {
    const fault::ResilienceParams& res = opts_.faults->resilience();
    if (inst.retries_used < res.max_retries) {
      ++inst.retries_used;
      retries_.Add();
      auto widened = static_cast<sim::Cycle>(
          std::llround(static_cast<double>(inst.cur_timeout) * res.backoff_mult));
      inst.cur_timeout = std::max<sim::Cycle>(1, widened);
      if (ObsOn()) {
        opts_.obs->decisions.NoteRetry(inst.uid);
        opts_.obs->sink.Instant("ndc.retry", ceq().now(), inst.core, inst.uid);
      }
      ArmWaitTimeout(inst);
      return;
    }
    if (res.max_retries > 0) {
      AbortWait(inst, AbortReason::kRetriesExhausted);
      return;
    }
  }
  AbortWait(inst, AbortReason::kTimeout);
}

void Machine::AbortWait(Instance& inst, AbortReason reason) {
  ServiceTableRelease(inst.planned, inst.service_key);
  inst.state = InstState::kAborted;
  inst.waiting_op = -1;
  obs::Outcome outcome = obs::Outcome::kFallbackTimeout;
  switch (reason) {
    case AbortReason::kTimeout:
      abort_timeout_.Add();
      break;
    case AbortReason::kPartnerDone:
      abort_partner_done_.Add();
      outcome = obs::Outcome::kFallbackPartnerDone;
      break;
    case AbortReason::kRetriesExhausted:
      // Still a timeout abort, but one that consumed its retry budget: the
      // offload degrades gracefully to the host core (the baseline path).
      abort_timeout_.Add();
      degraded_.Add();
      outcome = obs::Outcome::kDegradedToHost;
      break;
  }
  if (ObsOn()) {
    opts_.obs->sink.Instant("ndc.abort", ceq().now(), inst.core, inst.uid);
    ResolveDecision(inst, outcome, -1);
  }
  if (inst.held_packet != 0 && net_->IsHeld(inst.held_packet)) {
    net_->Release(inst.held_packet);
    inst.held_packet = 0;
  } else if (inst.resume) {
    auto r = std::move(inst.resume);
    inst.resume = nullptr;
    r();
  }
}

void Machine::OnOperandAtCore(Instance& inst, int operand, sim::Cycle when) {
  inst.at_core[static_cast<std::size_t>(operand)] = when;
  int other = operand == 0 ? 1 : 0;
  if (inst.state == InstState::kWaiting && inst.waiting_op == other) {
    // The partner operand finished conventionally: the planned meeting can
    // no longer happen (offload-table feedback aborts the wait).
    AbortWait(inst, AbortReason::kPartnerDone);
  }
  MaybeFallback(inst);
}

void Machine::MaybeFallback(Instance& inst) {
  if (inst.fallback_done || inst.state == InstState::kComputed) return;
  if (!inst.offloaded && !inst.is_precompute) return;  // core handles it
  if (inst.at_core[0] == sim::kNeverCycle || inst.at_core[1] == sim::kNeverCycle) return;
  inst.fallback_done = true;
  sim::Cycle done = std::max(inst.at_core[0], inst.at_core[1]);
  done = std::max(done, ceq().now()) + cfg_.compute_latency;
  cores_[static_cast<std::size_t>(inst.core)]->Complete(inst.site_idx, done);
  if (inst.offloaded) {
    fallbacks_.Add();
    if (ObsOn()) {
      opts_.obs->sink.Instant("ndc.fallback", ceq().now(), inst.core, inst.uid);
      // Catch-all: if no abort path resolved this offload, the operands
      // simply never met at the planned location.
      ResolveDecision(inst, obs::Outcome::kFallbackNeverMet, -1);
    }
    if (inst.state == InstState::kPending) inst.state = InstState::kAborted;
    if (active_offloads_[static_cast<std::size_t>(inst.core)] > 0) {
      --active_offloads_[static_cast<std::size_t>(inst.core)];
    }
  }
}

void Machine::RecordObs(Instance& inst, int operand, Loc loc, sim::NodeId node, sim::Cycle t) {
  LocObs& obs = inst.obs[static_cast<std::size_t>(loc)];
  sim::Cycle& slot = operand == 0 ? obs.t_a : obs.t_b;
  if (slot == sim::kNeverCycle) slot = t;
  obs.node = node;
}

void Machine::ReportWindow(Instance& inst) {
  if (inst.window_reported || opts_.policy == nullptr || inst.is_precompute) return;
  if (inst.at_planned[0] == sim::kNeverCycle || inst.at_planned[1] == sim::kNeverCycle) return;
  inst.window_reported = true;
  sim::Cycle w = inst.at_planned[0] > inst.at_planned[1]
                     ? inst.at_planned[0] - inst.at_planned[1]
                     : inst.at_planned[1] - inst.at_planned[0];
  opts_.policy->ObserveWindow(inst.core, inst.pc, w);
}

bool Machine::ServiceTableReserve(Loc loc, int key) {
  int& n = service_tables_[static_cast<std::size_t>(loc)][key];
  if (n >= cfg_.service_table_entries) return false;
  ++n;
  return true;
}

void Machine::ServiceTableRelease(Loc loc, int key) {
  auto& tbl = service_tables_[static_cast<std::size_t>(loc)];
  auto it = tbl.find(key);
  if (it != tbl.end() && it->second > 0) --it->second;
}

Machine::Instance* Machine::FindInstance(sim::NodeId core, std::uint32_t site_idx) {
  auto& m = site_to_uid_[static_cast<std::size_t>(core)];
  auto it = m.find(site_idx);
  if (it == m.end()) return nullptr;
  return InstanceByUid(it->second);
}

Machine::Instance* Machine::InstanceByUid(std::uint64_t uid) {
  auto it = instances_.find(uid);
  return it == instances_.end() ? nullptr : &it->second;
}

void Machine::RecordDecision(const Instance& inst, obs::DecisionKind kind,
                             std::int8_t planned_loc) {
  if (!ObsOn()) return;
  // Advisory NMPO-style prior: the candidate's placement freedom (number of
  // feasible NDC locations). Written to the audit log, never read back —
  // the decision itself is already made when this runs.
  std::uint32_t prior = 0;
  for (int l = 0; l < arch::kNumLocs; ++l) {
    if (inst.feasible_mask & (1u << l)) ++prior;
  }
  opts_.obs->decisions.Record(inst.uid, inst.core, inst.site_idx, kind, planned_loc,
                              ceq().now(), prior);
  if (kind == obs::DecisionKind::kOffload) {
    opts_.obs->sink.Instant("ndc.offload", ceq().now(), inst.core, inst.uid, "loc",
                            static_cast<std::uint64_t>(planned_loc));
  }
}

void Machine::ResolveDecision(const Instance& inst, obs::Outcome outcome, std::int8_t met_loc) {
  if (!ObsOn()) return;
  opts_.obs->decisions.Resolve(inst.uid, outcome, met_loc, ceq().now());
}

void Machine::MaterializeStats() {
  stats_.Clear();
  sim::RawCounter cands, skips;  // lane merge, shard order: touched OR, v sum
  for (const ShardLane& l : lanes_) {
    cands.v += l.candidates.v;
    cands.touched = cands.touched || l.candidates.touched;
    skips.v += l.local_l1_skips.v;
    skips.touched = skips.touched || l.local_l1_skips.touched;
  }
  cands.MaterializeInto(stats_, "ndc.candidates");
  skips.MaterializeInto(stats_, "ndc.local_l1_skips");
  offloads_.MaterializeInto(stats_, "ndc.offloads");
  success_.MaterializeInto(stats_, "ndc.success");
  fallbacks_.MaterializeInto(stats_, "ndc.fallbacks");
  plan_infeasible_.MaterializeInto(stats_, "ndc.plan_infeasible");
  offload_table_full_.MaterializeInto(stats_, "ndc.offload_table_full");
  service_table_full_.MaterializeInto(stats_, "ndc.service_table_full");
  abort_timeout_.MaterializeInto(stats_, "ndc.abort.timeout");
  abort_partner_done_.MaterializeInto(stats_, "ndc.abort.partner_done");
  retries_.MaterializeInto(stats_, "ndc.retries");
  degraded_.MaterializeInto(stats_, "ndc.degraded_to_host");
  incomplete_cores_.MaterializeInto(stats_, "run.incomplete_cores");
  sync_->MaterializeInto(stats_);  // keys appear only when sync ran
  for (int l = 0; l < arch::kNumLocs; ++l) {
    std::uint64_t v = ndc_at_loc_[static_cast<std::size_t>(l)];
    if (v > 0) stats_.Add(std::string("ndc.at.") + arch::LocName(static_cast<Loc>(l)), v);
  }
}

void Machine::MirrorRegistry(const RunResult& r) {
  if (!ObsOn()) return;
  obs::Registry& reg = opts_.obs->registry;
  auto set = [&reg](const char* path, std::uint64_t v) {
    if (obs::Counter* ctr = reg.counter(path)) ctr->Set(v);
  };
  set("machine/candidates", r.candidates);
  set("machine/offloads", offloads_.v);
  set("machine/ndc_success", success_.v);
  set("machine/fallbacks", fallbacks_.v);
  set("machine/l1_misses", r.l1_misses);
  set("machine/l2_misses", r.l2_misses);
  if (opts_.faults != nullptr) {
    // Registered only for faulted runs so fault-free registry dumps keep
    // their historical key set.
    set("machine/retries", retries_.v);
    set("machine/degraded_to_host", degraded_.v);
  }
  if (obs::Gauge* g = reg.gauge("machine/makespan")) {
    g->Set(static_cast<std::int64_t>(r.makespan));
  }
}

fault::ConservationInputs Machine::GatherConservation() const {
  fault::ConservationInputs in;
  in.offloads = offloads_.v;
  in.ndc_success = success_.v;
  in.fallbacks = fallbacks_.v;
  for (const auto& c : cores_) {
    if (!c->trace().empty() && !c->finished()) ++in.cores_incomplete;
  }
  in.packets_sent = net_->sent_count();
  in.packets_delivered = net_->delivered_count();
  in.packets_squashed = net_->squashed_count();
  in.packets_dropped = net_->dropped_count();
  in.packets_retransmitted = net_->retransmitted_count();
  for (const auto& m : mcs_) {
    in.mc_reads += m->reads_count();
    in.mc_reads_done += m->reads_done_count();
    in.mc_nacks += m->nacks_count();
    in.mc_nack_retries += m->nack_retries_count();
  }
  const sync::SyncStats& ss = sync_->stats();
  in.sync_acquires = ss.lock_acquires;
  in.sync_releases = ss.lock_releases;
  in.sync_barrier_arrivals = ss.barrier_arrivals;
  in.sync_barrier_departures = ss.barrier_departures;
  in.sync_atomics_issued = ss.atomics_issued;
  in.sync_atomics_completed = ss.atomics_completed;
  return in;
}

void Machine::FinalizeRecords(RunResult& result) {
  (void)result;
  for (auto& [uid, inst] : instances_) {
    (void)uid;
    auto c = static_cast<std::size_t>(inst.core);
    InstanceRecord& rec = records_->Get(inst.core, inst.site_idx);
    rec.core = inst.core;
    rec.compute_idx = inst.site_idx;
    rec.pc = inst.pc;
    rec.site = inst.site;
    rec.a = inst.addr[0];
    rec.b = inst.addr[1];
    rec.local_l1 = inst.local_l1;
    rec.locs = inst.obs;
    rec.a_at_core = inst.at_core[0];
    rec.b_at_core = inst.at_core[1];
    // Conventional completion: when both operands' data reached the core
    // plus the op latency (issue-width stalls of the consuming instruction
    // are not NDC-addressable and would inflate breakevens).
    if (inst.at_core[0] != sim::kNeverCycle && inst.at_core[1] != sim::kNeverCycle) {
      rec.conv_done = std::max(inst.at_core[0], inst.at_core[1]) + cfg_.compute_latency;
    } else {
      rec.conv_done = cores_[c]->done_cycle(inst.site_idx);
    }
    rec.operand_reused_later = future_reuse_[c][inst.site_idx];
    rec.operand_reused_later_l2 = future_reuse_l2_[c][inst.site_idx];
  }
}

}  // namespace ndc::runtime
