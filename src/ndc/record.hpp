#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/config.hpp"
#include "arch/trace.hpp"
#include "sim/types.hpp"

namespace ndc::runtime {

using arch::Loc;
using sim::Addr;
using sim::Cycle;
using sim::NodeId;

/// Observation of one (computation, location) pair from a profiling pass:
/// when each operand's data was present at the location.
struct LocObs {
  bool feasible = false;       ///< statically address-feasible (homes/MCs/banks/links)
  bool meet_ok = true;         ///< false if residency was lost before the partner arrived
  Cycle t_a = sim::kNeverCycle;  ///< operand A data present at the location
  Cycle t_b = sim::kNeverCycle;  ///< operand B data present at the location
  NodeId node = sim::kNoNode;  ///< mesh node hosting the component

  bool BothArrived() const { return t_a != sim::kNeverCycle && t_b != sim::kNeverCycle; }

  /// The paper's *arrival window*: cycles the first-arriving operand waits
  /// for the second, kNeverCycle when they never meet (Section 4.1).
  Cycle Window() const {
    if (!feasible || !meet_ok || !BothArrived()) return sim::kNeverCycle;
    return t_a > t_b ? t_a - t_b : t_b - t_a;
  }

  Cycle FirstArrival() const { return t_a < t_b ? t_a : t_b; }
  Cycle SecondArrival() const { return t_a < t_b ? t_b : t_a; }
};

/// Everything recorded for one dynamic NDC candidate (a computation c with
/// operands A and B) during an observation pass.
struct InstanceRecord {
  NodeId core = sim::kNoNode;
  std::uint32_t compute_idx = 0;  ///< trace slot of the computation
  std::uint32_t pc = 0;
  std::uint32_t site = 0;
  Addr a = 0, b = 0;
  bool local_l1 = false;  ///< an operand hit the local L1 (NDC skipped)
  Cycle a_at_core = sim::kNeverCycle;
  Cycle b_at_core = sim::kNeverCycle;
  Cycle conv_done = sim::kNeverCycle;  ///< conventional completion of c
  bool operand_reused_later = false;     ///< later access reuses A or B (L1-line grain)
  bool operand_reused_later_l2 = false;  ///< same, at L2-line (256 B) granularity
  std::array<LocObs, arch::kNumLocs> locs{};

  const LocObs& at(Loc l) const { return locs[static_cast<std::size_t>(l)]; }
  LocObs& at(Loc l) { return locs[static_cast<std::size_t>(l)]; }
};

/// Observation output of a whole profiling run, keyed by (core, trace slot),
/// which is stable across passes over the same traces.
class RunRecord {
 public:
  explicit RunRecord(int num_cores = 0) : per_core_(static_cast<std::size_t>(num_cores)) {}

  InstanceRecord& Get(NodeId core, std::uint32_t compute_idx) {
    return per_core_[static_cast<std::size_t>(core)][compute_idx];
  }
  const InstanceRecord* Find(NodeId core, std::uint32_t compute_idx) const {
    const auto& m = per_core_[static_cast<std::size_t>(core)];
    auto it = m.find(compute_idx);
    return it == m.end() ? nullptr : &it->second;
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& m : per_core_) {
      for (const auto& [idx, rec] : m) fn(rec);
    }
  }

  std::size_t TotalInstances() const {
    std::size_t n = 0;
    for (const auto& m : per_core_) n += m.size();
    return n;
  }

  int num_cores() const { return static_cast<int>(per_core_.size()); }

 private:
  std::vector<std::unordered_map<std::uint32_t, InstanceRecord>> per_core_;
};

/// The paper's *breakeven point* (Section 4.1) for one observed instance and
/// location: the largest arrival window for which performing the computation
/// at the location still beats conventional execution. Negative slack is
/// clamped to 0 ("NDC never wins here").
///
/// breakeven = conv_done - (first_arrival@loc + op_latency + return_latency)
Cycle BreakevenPoint(const InstanceRecord& rec, Loc loc, Cycle op_latency,
                     Cycle return_latency);

/// Return-path latency estimate for an 8-byte NDC result from `from` to
/// `to` on an uncontended mesh.
Cycle ResultReturnLatency(const noc::Mesh& mesh, const noc::NetworkParams& np, NodeId from,
                          NodeId to);

/// Scans a trace and marks, for every NDC-candidate computation, whether
/// either operand's L1 line is accessed again later in the same trace
/// (the data-reuse signal used by the oracle and by Algorithm 2's gating).
std::vector<bool> ComputeFutureReuse(const arch::Trace& trace, std::uint64_t l1_line_bytes);

}  // namespace ndc::runtime
