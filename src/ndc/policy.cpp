#include "ndc/policy.hpp"

#include <algorithm>
#include <sstream>

namespace ndc::runtime {

bool FirstFeasibleLoc(std::uint8_t feasible_mask, std::uint8_t control_mask, Loc* out) {
  std::uint8_t m = feasible_mask & control_mask;
  for (Loc l : kTrialOrder) {
    if (m & arch::LocBit(l)) {
      *out = l;
      return true;
    }
  }
  return false;
}

Decision AlwaysWaitPolicy::Decide(NodeId, std::uint32_t, std::uint32_t, Addr, Addr,
                                  std::uint8_t feasible_mask) {
  Decision d;
  Loc loc;
  if (!FirstFeasibleLoc(feasible_mask, cfg_->control_register, &loc)) return d;
  d.offload = true;
  d.loc = loc;
  d.timeout = cfg_->default_timeout;  // "wait until the second operand arrives"
  return d;
}

FractionWaitPolicy::FractionWaitPolicy(const arch::ArchConfig& cfg, const RunRecord& profile,
                                       double fraction)
    : cfg_(&cfg), profile_(&profile), fraction_(fraction) {}

std::string FractionWaitPolicy::name() const {
  std::ostringstream os;
  os << "wait(" << static_cast<int>(fraction_ * 100.0 + 0.5) << "%)";
  return os.str();
}

Decision FractionWaitPolicy::Decide(NodeId core, std::uint32_t compute_idx, std::uint32_t,
                                    Addr, Addr, std::uint8_t feasible_mask) {
  Decision d;
  Loc loc;
  if (!FirstFeasibleLoc(feasible_mask, cfg_->control_register, &loc)) return d;
  Cycle window = sim::kNeverCycle;
  if (const InstanceRecord* rec = profile_->Find(core, compute_idx)) {
    window = rec->at(loc).Window();
  }
  if (window == sim::kNeverCycle) window = 500;  // CDF cap for "never meets"
  d.offload = true;
  d.loc = loc;
  d.timeout = std::max<Cycle>(1, static_cast<Cycle>(static_cast<double>(window) * fraction_));
  return d;
}

Decision LastWaitPolicy::Decide(NodeId core, std::uint32_t, std::uint32_t pc, Addr, Addr,
                                std::uint8_t feasible_mask) {
  Decision d;
  Loc loc;
  if (!FirstFeasibleLoc(feasible_mask, cfg_->control_register, &loc)) return d;
  auto it = last_.find({core, pc});
  Cycle guess = it == last_.end() ? first_guess_ : it->second;
  if (guess == sim::kNeverCycle) return d;  // last time they never met: skip NDC
  d.offload = true;
  d.loc = loc;
  d.timeout = std::max<Cycle>(1, guess);
  return d;
}

void LastWaitPolicy::ObserveWindow(NodeId core, std::uint32_t pc, Cycle window) {
  last_[{core, pc}] = window == sim::kNeverCycle ? sim::kNeverCycle : window;
}

int MarkovWaitPolicy::Bucket(Cycle w) {
  if (w == sim::kNeverCycle) return 6;
  if (w <= 1) return 0;
  if (w <= 10) return 1;
  if (w <= 20) return 2;
  if (w <= 50) return 3;
  if (w <= 100) return 4;
  if (w <= 500) return 5;
  return 6;
}

Cycle MarkovWaitPolicy::BucketTimeout(int b) {
  switch (b) {
    case 0: return 1;
    case 1: return 10;
    case 2: return 20;
    case 3: return 50;
    case 4: return 100;
    case 5: return 500;
    default: return 0;  // "never" bucket: predict no meeting
  }
}

Decision MarkovWaitPolicy::Decide(NodeId core, std::uint32_t, std::uint32_t pc, Addr, Addr,
                                  std::uint8_t feasible_mask) {
  Decision d;
  Loc loc;
  if (!FirstFeasibleLoc(feasible_mask, cfg_->control_register, &loc)) return d;
  auto it = state_.find({core, pc});
  int predicted = 3;  // cold prediction: middle bucket
  if (it != state_.end() && it->second.last_bucket >= 0) {
    const auto& row = it->second.counts[static_cast<std::size_t>(it->second.last_bucket)];
    int best = -1;
    std::uint32_t best_count = 0;
    for (int b = 0; b < 7; ++b) {
      if (row[static_cast<std::size_t>(b)] > best_count) {
        best_count = row[static_cast<std::size_t>(b)];
        best = b;
      }
    }
    predicted = best >= 0 ? best : it->second.last_bucket;
  }
  Cycle timeout = BucketTimeout(predicted);
  if (timeout == 0) return d;
  d.offload = true;
  d.loc = loc;
  d.timeout = timeout;
  return d;
}

void MarkovWaitPolicy::ObserveWindow(NodeId core, std::uint32_t pc, Cycle window) {
  PcState& st = state_[{core, pc}];
  int b = Bucket(window);
  if (st.last_bucket >= 0) {
    ++st.counts[static_cast<std::size_t>(st.last_bucket)][static_cast<std::size_t>(b)];
  }
  st.last_bucket = b;
}

OraclePolicy::OraclePolicy(const arch::ArchConfig& cfg, const RunRecord& profile,
                           bool reuse_aware)
    : cfg_(&cfg),
      profile_(&profile),
      reuse_aware_(reuse_aware),
      mesh_(cfg.mesh_width, cfg.mesh_height) {}

Decision OraclePolicy::Decide(NodeId core, std::uint32_t compute_idx, std::uint32_t, Addr,
                              Addr, std::uint8_t feasible_mask) {
  Decision d;
  const InstanceRecord* rec = profile_->Find(core, compute_idx);
  if (rec == nullptr) return d;
  // Favor data locality over NDC whenever an operand has a later reuse
  // (the paper's oracle uses a single reuse as the threshold, k = 0).
  if (reuse_aware_ && rec->operand_reused_later) return d;
  // The paper's rule: perform NDC iff the arrival window is within the
  // breakeven point; otherwise resort to conventional computing. Among
  // qualifying locations, pick the one with the largest slack.
  Cycle best_slack = 0;
  for (Loc loc : kTrialOrder) {
    if (!(feasible_mask & cfg_->control_register & arch::LocBit(loc))) continue;
    // Memory-side computation also squashes the L2 fill: gate on L2-line
    // reuse for those locations.
    if (reuse_aware_ && (loc == Loc::kMemCtrl || loc == Loc::kMemBank) &&
        rec->operand_reused_later_l2) {
      continue;
    }
    const LocObs& obs = rec->at(loc);
    Cycle window = obs.Window();
    if (window == sim::kNeverCycle) continue;
    Cycle ret = ResultReturnLatency(mesh_, cfg_->noc, obs.node, core);
    Cycle breakeven = BreakevenPoint(*rec, loc, cfg_->compute_latency, ret);
    if (breakeven == 0 || window > breakeven) continue;  // past breakeven: skip NDC
    Cycle slack = breakeven - window;
    if (!d.offload || slack > best_slack) {
      best_slack = slack;
      d.offload = true;
      d.loc = loc;
      // The oracle waits only until the breakeven point (Section 4.4);
      // since window <= breakeven here, this bounds the loss to zero on
      // profile timing and tolerates live-run drift up to the slack.
      d.timeout = breakeven + 1;
    }
  }
  return d;
}

}  // namespace ndc::runtime
