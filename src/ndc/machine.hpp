#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "arch/config.hpp"
#include "arch/core.hpp"
#include "arch/memory_port.hpp"
#include "arch/trace.hpp"
#include "fault/conservation.hpp"
#include "fault/injector.hpp"
#include "mem/cache.hpp"
#include "mem/memctrl.hpp"
#include "ndc/policy.hpp"
#include "ndc/record.hpp"
#include "obs/obs.hpp"
#include "noc/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded_queue.hpp"
#include "sim/stats.hpp"
#include "sync/sync.hpp"

namespace ndc::runtime {

/// How a Machine run treats NDC.
struct MachineOptions {
  /// Record per-candidate operand arrival times at every feasible location
  /// (Section 4's quantification). No offloads are performed.
  bool observe = false;
  /// Hardware-side waiting policy applied to NDC candidates (Section 4.4
  /// strategies). Null = candidates run conventionally.
  Policy* policy = nullptr;
  /// Execute compiler-inserted PreCompute offloads (Section 5). When false
  /// they fall back to conventional execution (used for baselines).
  bool honor_precompute = true;
  /// Observation bundle (request tracer, decision log, metrics registry).
  /// Null (the default) means no observation: with NDC_OBS=OFF every hook
  /// compiles out entirely, and even with NDC_OBS=ON a null pointer reduces
  /// each hook to one predictable branch. Never affects simulated timing.
  obs::Observability* obs = nullptr;
  /// Fault injector driving this run (null = fault-free). The machine wires
  /// it into the NoC/MC fault hooks and applies its resilience budgets
  /// (timeout retry with backoff, degrade-to-host on exhaustion). Hooks are
  /// installed per fault class only when the schedule actually contains
  /// windows of that class, so an empty schedule leaves every simulated path
  /// bit-identical to a fault-free run.
  fault::FaultInjector* faults = nullptr;
  /// Sync-engine tuning (service occupancy per op). The subsystem itself is
  /// demand-driven: traces without kSync instructions never touch it, so
  /// sync-free runs stay bit-identical to pre-sync builds.
  sync::SyncParams sync;
  /// Simulation threads for conservative-window parallel execution
  /// (DESIGN.md §14). 1 (the default) is the historical sequential engine.
  /// Above 1 the machine shards into mesh quadrants and runs them
  /// concurrently between lookahead barriers when the run is eligible
  /// (baseline runs: no observe/policy/faults/obs, no kSync or kPreCompute
  /// instructions, mesh at least 2x2); ineligible runs silently degrade to
  /// the sequential engine. Execution is bit-reproducible: RunResult and
  /// StatSet are identical for every sim_threads value, including 1.
  int sim_threads = 1;
};

/// Aggregate results of one simulation run.
struct RunResult {
  sim::Cycle makespan = 0;  ///< max core finish cycle (execution time)
  std::uint64_t events = 0;

  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;
  double L1MissRate() const {
    auto t = l1_hits + l1_misses;
    return t ? static_cast<double>(l1_misses) / static_cast<double>(t) : 0.0;
  }
  double L2MissRate() const {
    auto t = l2_hits + l2_misses;
    return t ? static_cast<double>(l2_misses) / static_cast<double>(t) : 0.0;
  }

  std::uint64_t candidates = 0;     ///< candidate computations (both loads seen)
  std::uint64_t local_l1_skips = 0; ///< skipped: an operand was in the local L1
  std::uint64_t offloads = 0;       ///< offload attempts
  std::uint64_t ndc_success = 0;    ///< computations actually performed near data
  std::uint64_t fallbacks = 0;      ///< offloads that fell back to the core
  std::array<std::uint64_t, arch::kNumLocs> ndc_at_loc{};  ///< successes per location

  sim::StatSet stats;  ///< merged component counters
  std::shared_ptr<RunRecord> records;  ///< observation data (observe mode)

  /// Final values of atomically-updated cells (sync runs only; empty
  /// otherwise). Keyed by address; the reproducibility tests compare these
  /// maps across same-seed runs.
  std::map<sim::Addr, std::int64_t> sync_values;
};

/// The simulated manycore machine of Section 2: a WxH mesh of
/// (core + private L1 + shared NUCA L2 bank) nodes, four memory controllers
/// with FR-FCFS DRAM scheduling, and NDC compute units with service tables
/// and time-out registers at link buffers, L2 cache controllers, memory
/// controllers, and memory banks.
class Machine final : public arch::MemoryPort {
 public:
  explicit Machine(const arch::ArchConfig& cfg, MachineOptions opts = {});
  ~Machine() override;

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Installs one trace per core (missing cores idle).
  void LoadProgram(std::vector<arch::Trace> traces);

  /// Runs to completion (or `limit`) and returns aggregate results.
  /// Per the EventQueue clock contract, eq().now() == `limit` afterwards
  /// even when the simulation drained earlier: the whole bounded window
  /// elapsed.
  /// Observability end-of-run stamps (unfinished request records, never-met
  /// decisions) therefore carry `limit`, not the last event's cycle.
  RunResult Run(sim::Cycle limit = 2'000'000'000ull);

  // --- MemoryPort (called by cores) ---
  void IssueLoad(sim::NodeId core, std::uint32_t idx, sim::Addr addr) override;
  void IssueStore(sim::NodeId core, std::uint32_t idx, sim::Addr addr) override;
  void IssuePreCompute(sim::NodeId core, std::uint32_t idx, const arch::Instr& instr) override;
  void IssueSync(sim::NodeId core, std::uint32_t idx, const arch::Instr& instr) override;

  // --- component access (tests, benches) ---
  const arch::ArchConfig& config() const { return cfg_; }
  sim::EventQueue& eq() { return eq_; }
  /// Sharded engine of the last Run (null when the run was sequential —
  /// sim_threads == 1 or the run was ineligible for sharding).
  sim::ShardedEventQueue* sharded_queue() { return sharded_ ? sq_.get() : nullptr; }
  noc::Network& network() { return *net_; }
  mem::Cache& l1(sim::NodeId n) { return *l1_[static_cast<std::size_t>(n)]; }
  mem::Cache& l2(sim::NodeId n) { return *l2_[static_cast<std::size_t>(n)]; }
  mem::MemCtrl& mc(sim::McId m) { return *mcs_[static_cast<std::size_t>(m)]; }
  arch::Core& core(sim::NodeId n) { return *cores_[static_cast<std::size_t>(n)]; }
  const mem::AddressMap& amap() const { return amap_; }
  sync::SyncManager& sync_manager() { return *sync_; }

  /// Snapshot of the request-conservation counters (call after Run drains):
  /// fault::CheckConservation(GatherConservation()) must report ok — no
  /// request lost, however hostile the fault schedule.
  fault::ConservationInputs GatherConservation() const;

 private:
  // Identification of the two operand loads feeding a candidate/precompute.
  struct CandInfo {
    std::uint32_t site_idx = 0;  ///< trace slot of the Compute/PreCompute
    std::array<std::uint32_t, 2> load_idx{};
    bool is_precompute = false;
  };

  enum class InstState { kPending, kWaiting, kComputed, kAborted, kConventional };

  // One dynamic NDC candidate in flight.
  struct Instance {
    std::uint64_t uid = 0;
    sim::NodeId core = sim::kNoNode;
    std::uint32_t site_idx = 0;
    std::uint32_t pc = 0, site = 0;
    arch::Op op = arch::Op::kAdd;
    std::array<std::uint32_t, 2> load_idx{};
    std::array<sim::Addr, 2> addr{};
    bool is_precompute = false;
    bool offloaded = false;
    Loc planned = Loc::kCacheCtrl;
    sim::Cycle timeout = 0;
    sim::Cycle cur_timeout = 0;  ///< current wait window (grows with backoff)
    int retries_used = 0;        ///< wait windows re-armed after a timeout
    InstState state = InstState::kPending;
    std::uint8_t feasible_mask = 0;

    // Routing plan (responses toward the core / L2) and shared links.
    std::array<noc::Route, 2> route_home_to_core{};
    std::array<noc::Route, 2> route_mc_to_home{};
    noc::Signature shared_links;
    sim::LinkId obs_link = sim::kNoLink;  ///< link used for observation timing
    bool fallback_done = false;

    // Waiting state.
    int waiting_op = -1;
    sim::LinkId held_link = sim::kNoLink;
    std::uint64_t held_packet = 0;
    std::function<void()> resume;  // held response continuation (non-link locs)
    std::uint64_t wait_token = 0;
    int service_key = -1;

    // Progress bookkeeping.
    std::array<sim::Cycle, 2> at_core{sim::kNeverCycle, sim::kNeverCycle};
    std::array<sim::Cycle, 2> at_planned{sim::kNeverCycle, sim::kNeverCycle};
    bool window_reported = false;

    // Observation (observe mode).
    std::array<LocObs, arch::kNumLocs> obs{};
    bool local_l1 = false;

    // Request-trace tokens of the two operand loads (0 = untraced).
    std::array<std::uint64_t, 2> obs_tok{};
  };

  enum class AbortReason { kTimeout, kPartnerDone, kRetriesExhausted };

  // -- memory path --
  // `rtok` is the request-trace token of the load making its way through the
  // hierarchy (0 = untraced; always 0 when observation is off).
  void StartL1Miss(sim::NodeId core, std::uint32_t idx, sim::Addr addr, Instance* inst,
                   int operand, std::uint64_t rtok);
  void AccessL2(sim::NodeId home, sim::NodeId core, std::uint32_t idx, sim::Addr addr,
                std::uint64_t tag, std::uint64_t rtok);
  void L2DataReady(sim::NodeId home, sim::NodeId core, std::uint32_t idx, sim::Addr addr,
                   std::uint64_t tag, std::uint64_t rtok);
  void McDataReady(sim::McId mc, sim::NodeId home, sim::NodeId core, std::uint32_t idx,
                   sim::Addr addr, std::uint64_t tag, std::uint64_t rtok);
  void SendResponseToCore(sim::NodeId home, sim::NodeId core, std::uint32_t idx,
                          sim::Addr addr, std::uint64_t tag, std::uint64_t rtok);
  void DeliverToCore(sim::NodeId core, std::uint32_t idx, sim::Addr addr, std::uint64_t tag,
                     std::uint64_t rtok);
  void SendLocal(sim::NodeId from, sim::NodeId to, int bytes, noc::Route route,
                 std::uint64_t tag, int kind, noc::Network::DeliverFn fn,
                 std::uint64_t rtok = 0);

  // -- NDC engine --
  void OnSecondLoadIssued(sim::NodeId core, const CandInfo& cand, sim::Addr a, sim::Addr b);
  std::uint8_t ComputeFeasibility(Instance& inst);
  void PlanRoutes(Instance& inst);
  noc::HopAction OnHop(noc::Packet& p, sim::LinkId link, sim::Cycle now);
  /// Operand data became available at a non-link location. Returns true if
  /// the machine should NOT forward the data onward (held or consumed).
  bool OnOperandAtLoc(Instance& inst, int operand, Loc loc, sim::NodeId node, int service_key,
                      std::function<void()> resume);
  void MeetAndCompute(Instance& inst, Loc loc, sim::NodeId node);
  /// Arms (or re-arms) the wait-timeout timer for a waiting instance using
  /// its current (possibly backed-off) window.
  void ArmWaitTimeout(Instance& inst);
  /// A wait window expired: retry with backoff if the resilience budget
  /// allows, otherwise abort (degrading to host-core execution).
  void OnWaitTimeout(Instance& inst);
  void AbortWait(Instance& inst, AbortReason reason);
  void OnOperandAtCore(Instance& inst, int operand, sim::Cycle when);
  void MaybeFallback(Instance& inst);
  void RecordObs(Instance& inst, int operand, Loc loc, sim::NodeId node, sim::Cycle t);
  void ReportWindow(Instance& inst);
  bool ServiceTableReserve(Loc loc, int key);
  void ServiceTableRelease(Loc loc, int key);

  Instance* FindInstance(sim::NodeId core, std::uint32_t site_idx);
  Instance* InstanceByUid(std::uint64_t uid);

  // -- conservative-window sharding (DESIGN.md §14) --
  /// True when this program/option combination may run sharded: baseline
  /// runs only (no observe/policy/faults/obs and no kSync/kPreCompute
  /// instructions — those subsystems keep cross-shard state), on a mesh
  /// with at least 2x2 quadrants.
  bool ShardingEligible() const;
  /// Builds the sharded engine on first eligible Run: quadrant shard map,
  /// per-shard queues with the NoC lookahead, core/MC queue rebinding, and
  /// up-front creation of every candidate instance (the map must be
  /// structurally immutable while shards run concurrently).
  void SetupSharding();
  void PreCreateInstances();

  void FinalizeRecords(RunResult& result);

  /// True when this run observes itself. Folds to `false` at compile time
  /// under NDC_OBS=OFF, removing every instrumentation block it guards.
  bool ObsOn() const { return obs::kObsEnabled && opts_.obs != nullptr; }
  /// Records the one-and-only audit entry for a candidate decision.
  void RecordDecision(const Instance& inst, obs::DecisionKind kind, std::int8_t planned_loc);
  void ResolveDecision(const Instance& inst, obs::Outcome outcome, std::int8_t met_loc);
  void MaterializeStats();
  void MirrorRegistry(const RunResult& r);

  arch::ArchConfig cfg_;
  MachineOptions opts_;
  sim::EventQueue eq_;
  noc::Mesh mesh_;

  // Conservative-window sharding state. `ceq()` is the queue of the shard
  // executing the current event — the plain queue on sequential runs; it
  // must only be used from inside event callbacks once sharded.
  std::unique_ptr<sim::ShardedEventQueue> sq_;
  std::vector<int> shard_of_node_;
  bool sharded_ = false;
  sim::EventQueue& ceq() { return sharded_ ? sq_->current() : eq_; }
  mem::AddressMap amap_;
  std::unique_ptr<noc::Network> net_;
  std::vector<std::unique_ptr<mem::Cache>> l1_;
  std::vector<std::unique_ptr<mem::Cache>> l2_;
  std::vector<sim::Cycle> l2_busy_until_;
  std::vector<std::unique_ptr<mem::MemCtrl>> mcs_;
  std::vector<sim::NodeId> mc_nodes_;
  std::vector<std::unique_ptr<arch::Core>> cores_;
  std::unique_ptr<sync::SyncManager> sync_;

  // Trace preprocessing: per core, map load slot -> (candidate, operand).
  std::vector<std::vector<std::int32_t>> load_to_cand_;  // cand*2 + operand, -1 none
  std::vector<std::vector<CandInfo>> cands_;
  std::vector<std::vector<bool>> future_reuse_;     // per core/slot, L1-line grain
  std::vector<std::vector<bool>> future_reuse_l2_;  // per core/slot, L2-line grain

  // Live instances keyed by (core, site trace slot) and by uid.
  std::vector<std::unordered_map<std::uint32_t, std::uint64_t>> site_to_uid_;
  std::unordered_map<std::uint64_t, Instance> instances_;
  std::uint64_t next_uid_ = 1;
  std::uint64_t next_wait_token_ = 1;

  /// Per-shard machine state touched on the candidate hot path (one lane on
  /// sequential runs). Keeping the candidate counters and the memoized
  /// route-pair cache per shard lets concurrent shards bump and memoize
  /// without sharing a written cache line; counters merge in shard order at
  /// materialization.
  struct alignas(64) ShardLane {
    sim::RawCounter candidates, local_l1_skips;
    // Memoized route-pair overlap results, keyed by (srcA,dstA,srcB,dstB).
    std::unordered_map<std::uint64_t, noc::RoutePair> route_pairs;
  };
  std::deque<ShardLane> lanes_;
  ShardLane& lane() {
    return sharded_
               ? lanes_[static_cast<std::size_t>(sim::ShardedEventQueue::CurrentShard())]
               : lanes_.front();
  }

  const noc::RoutePair& OverlapFor(sim::NodeId a_src, sim::NodeId a_dst, sim::NodeId b_src,
                                   sim::NodeId b_dst, bool reroute);

  std::array<std::map<int, int>, arch::kNumLocs> service_tables_;
  std::vector<int> active_offloads_;  // per-core offload-table occupancy

  std::shared_ptr<RunRecord> records_;
  // Hot-path counters (plain bumps; string keys only at materialization).
  // The candidate-path counters live in lanes_ (they are hit under
  // sharding); everything below is only reachable on sequential runs
  // (offload/policy/fault paths) or after the run completes.
  sim::RawCounter offloads_, success_, fallbacks_,
      plan_infeasible_, offload_table_full_, service_table_full_, abort_timeout_,
      abort_partner_done_, incomplete_cores_;
  // Resilience counters: touched only when a fault schedule enables retries,
  // so their StatSet keys never appear in fault-free runs (goldens frozen).
  sim::RawCounter retries_, degraded_;
  sim::StatSet stats_;
  std::array<std::uint64_t, arch::kNumLocs> ndc_at_loc_{};
};

}  // namespace ndc::runtime
