#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compiler/pipeline.hpp"
#include "fault/fault.hpp"
#include "ndc/machine.hpp"
#include "ndc/policy.hpp"
#include "obs/obs.hpp"
#include "workloads/workloads.hpp"

namespace ndc::metrics {

/// The hardware-side NDC schemes of Figure 4 (plus the compiler modes).
enum class Scheme {
  kBaseline,   ///< conventional execution (the normalization base)
  kDefault,    ///< offload always, wait until the partner arrives
  kOracle,     ///< profile-guided optimal decisions (Section 4.4)
  kWait5,      ///< wait at most 5% of the arrival window
  kWait10,
  kWait25,
  kWait50,
  kLastWait,   ///< last-value arrival-window predictor
  kMarkov,     ///< Markov-chain arrival-window predictor (Section 4.4 text)
  kAlgorithm1, ///< compiler scheme 1 (Section 5.2)
  kAlgorithm2, ///< compiler scheme 2 (Section 5.3)
};

const char* SchemeName(Scheme s);

/// Everything measured for one (workload, scheme) run.
struct SchemeResult {
  Scheme scheme = Scheme::kBaseline;
  runtime::RunResult run;
  double improvement_pct = 0.0;  ///< vs baseline makespan (positive = faster)
  compiler::CompileReport compile_report;  ///< compiler modes only
};

/// A workload prepared for experiments: baseline + observation runs are
/// cached so that multiple schemes can reuse the profile.
class Experiment {
 public:
  Experiment(std::string workload, workloads::Scale scale, arch::ArchConfig cfg,
             std::uint64_t seed = 1);

  const std::string& workload() const { return workload_; }
  const arch::ArchConfig& cfg() const { return cfg_; }

  /// Baseline (conventional) run; cached.
  const runtime::RunResult& Baseline();

  /// Observation run over the original program (Section 4 quantification);
  /// cached. Timing-identical to the baseline.
  const runtime::RunResult& Observe();

  /// Runs one scheme and reports improvement vs the baseline.
  SchemeResult Run(Scheme scheme);

  /// Compiles with `opt` and runs the transformed program.
  SchemeResult RunCompiled(compiler::CompileOptions opt);

  /// The traces of the original program (baseline schedule).
  const std::vector<arch::Trace>& BaselineTraces();

  /// Attaches an observation bundle to subsequent Run()/RunCompiled() calls:
  /// the *measured* scheme run is traced (never the cached baseline/observe
  /// profile runs, except that Run(kBaseline) re-simulates fresh so the
  /// baseline itself can be observed). Null detaches.
  void set_obs(obs::Observability* o) { obs_ = o; }

  /// Attaches a fault schedule to subsequent Run()/RunCompiled() calls.
  /// Mirrors set_obs: only the *measured* scheme run is faulted (the cached
  /// baseline/observe profile runs stay pristine, so improvement numbers
  /// compare a faulted run against the healthy baseline — the degradation
  /// curve's y-axis). Each measured run gets a fresh injector built from the
  /// schedule, so repeated runs are identically faulted. Null (or an empty
  /// schedule) detaches.
  void set_faults(const fault::FaultSchedule* s) { faults_ = s; }

  /// Simulation-thread count for every subsequent run (measured *and*
  /// cached profile runs — RunTraces applies it centrally). 1 (the
  /// default) keeps the sequential engine; >= 2 enables conservative-window
  /// sharding on eligible runs (ineligible runs silently degrade, see
  /// runtime::MachineOptions::sim_threads).
  void set_sim_threads(int n) { sim_threads_ = n; }

  /// Fault report for the most recent faulted measured run.
  bool have_fault_report() const { return have_fault_report_; }
  const fault::ConservationInputs& last_conservation() const { return last_conservation_; }
  const fault::InjectionCounts& last_injections() const { return last_injections_; }

 private:
  runtime::RunResult RunTraces(const std::vector<arch::Trace>& traces,
                               runtime::MachineOptions opts, bool with_faults = false);

  std::string workload_;
  workloads::Scale scale_;
  arch::ArchConfig cfg_;
  std::uint64_t seed_;
  ir::Program base_program_;
  std::vector<arch::Trace> base_traces_;
  bool have_baseline_ = false;
  runtime::RunResult baseline_;
  bool have_observe_ = false;
  runtime::RunResult observe_;
  obs::Observability* obs_ = nullptr;
  int sim_threads_ = 1;
  const fault::FaultSchedule* faults_ = nullptr;
  bool have_fault_report_ = false;
  fault::ConservationInputs last_conservation_;
  fault::InjectionCounts last_injections_;
};

/// Percentage improvement of `t` over baseline `base` (positive = faster,
/// the paper's "performance improvement").
double ImprovementPct(sim::Cycle base, sim::Cycle t);

/// Formats a markdown-style table row.
std::string FormatRow(const std::vector<std::string>& cells, int width = 11);

}  // namespace ndc::metrics
