#include "metrics/experiment.hpp"

#include <iomanip>
#include <sstream>

#include "compiler/codegen.hpp"
#include "obs/phase.hpp"
#include "workloads/sharded.hpp"

namespace ndc::metrics {

const char* SchemeName(Scheme s) {
  switch (s) {
    case Scheme::kBaseline: return "Baseline";
    case Scheme::kDefault: return "Default";
    case Scheme::kOracle: return "Oracle";
    case Scheme::kWait5: return "Wait(5%)";
    case Scheme::kWait10: return "Wait(10%)";
    case Scheme::kWait25: return "Wait(25%)";
    case Scheme::kWait50: return "Wait(50%)";
    case Scheme::kLastWait: return "LastWait";
    case Scheme::kMarkov: return "Markov";
    case Scheme::kAlgorithm1: return "Algorithm-1";
    case Scheme::kAlgorithm2: return "Algorithm-2";
  }
  return "?";
}

double ImprovementPct(sim::Cycle base, sim::Cycle t) {
  if (base == 0) return 0.0;
  return (static_cast<double>(base) - static_cast<double>(t)) / static_cast<double>(base) *
         100.0;
}

Experiment::Experiment(std::string workload, workloads::Scale scale, arch::ArchConfig cfg,
                       std::uint64_t seed)
    : workload_(std::move(workload)), scale_(scale), cfg_(cfg), seed_(seed) {
  obs::ScopedPhase phase(obs::Phase::kBuildWorkload);
  // shard.* scenarios are sized by the machine itself (one shard per core)
  // and pass through the sharded generator's classifier gate.
  base_program_ = workloads::IsShardedScenario(workload_)
                      ? workloads::BuildShardedWorkload(workload_, scale_,
                                                        cfg_.num_nodes(), seed_)
                      : workloads::BuildWorkload(workload_, scale_, seed_);
}

const std::vector<arch::Trace>& Experiment::BaselineTraces() {
  if (base_traces_.empty()) {
    obs::ScopedPhase phase(obs::Phase::kLowerTraces);
    base_traces_ = compiler::Lower(base_program_, cfg_.num_nodes(), &cfg_).traces;
  }
  return base_traces_;
}

runtime::RunResult Experiment::RunTraces(const std::vector<arch::Trace>& traces,
                                         runtime::MachineOptions opts, bool with_faults) {
  obs::ScopedPhase phase(obs::Phase::kSimulate);
  // A fresh injector per measured run: its RNG restarts from the schedule
  // seed, so the same (workload, schedule) pair is identically faulted every
  // time it is simulated.
  std::unique_ptr<fault::FaultInjector> inj;
  if (with_faults && faults_ != nullptr && !faults_->Empty()) {
    inj = std::make_unique<fault::FaultInjector>(*faults_);
    opts.faults = inj.get();
  }
  opts.sim_threads = sim_threads_;
  runtime::Machine m(cfg_, opts);
  m.LoadProgram(traces);
  runtime::RunResult r = m.Run();
  if (inj != nullptr) {
    last_conservation_ = m.GatherConservation();
    last_injections_ = inj->counts();
    have_fault_report_ = true;
  }
  if constexpr (obs::kObsEnabled) obs::GlobalPhases().AddSimEvents(r.events);
  return r;
}

const runtime::RunResult& Experiment::Baseline() {
  if (!have_baseline_) {
    baseline_ = RunTraces(BaselineTraces(), {});
    have_baseline_ = true;
  }
  return baseline_;
}

const runtime::RunResult& Experiment::Observe() {
  if (!have_observe_) {
    runtime::MachineOptions opts;
    opts.observe = true;
    observe_ = RunTraces(BaselineTraces(), opts);
    have_observe_ = true;
  }
  return observe_;
}

SchemeResult Experiment::Run(Scheme scheme) {
  SchemeResult out;
  out.scheme = scheme;
  const runtime::RunResult& base = Baseline();

  switch (scheme) {
    case Scheme::kBaseline:
      if (obs_ != nullptr || faults_ != nullptr) {
        // The cached baseline carries no observation or fault data;
        // re-simulate so the requested trace/audit/faults reflect this very
        // scheme.
        runtime::MachineOptions bopts;
        bopts.obs = obs_;
        out.run = RunTraces(BaselineTraces(), bopts, /*with_faults=*/true);
      } else {
        out.run = base;
      }
      out.improvement_pct = ImprovementPct(base.makespan, out.run.makespan);
      return out;
    case Scheme::kAlgorithm1: {
      compiler::CompileOptions opt;
      opt.mode = compiler::Mode::kAlgorithm1;
      return RunCompiled(opt);
    }
    case Scheme::kAlgorithm2: {
      compiler::CompileOptions opt;
      opt.mode = compiler::Mode::kAlgorithm2;
      return RunCompiled(opt);
    }
    default:
      break;
  }

  std::unique_ptr<runtime::Policy> policy;
  switch (scheme) {
    case Scheme::kDefault:
      policy = std::make_unique<runtime::AlwaysWaitPolicy>(cfg_);
      break;
    case Scheme::kOracle:
      policy = std::make_unique<runtime::OraclePolicy>(cfg_, *Observe().records);
      break;
    case Scheme::kWait5:
      policy = std::make_unique<runtime::FractionWaitPolicy>(cfg_, *Observe().records, 0.05);
      break;
    case Scheme::kWait10:
      policy = std::make_unique<runtime::FractionWaitPolicy>(cfg_, *Observe().records, 0.10);
      break;
    case Scheme::kWait25:
      policy = std::make_unique<runtime::FractionWaitPolicy>(cfg_, *Observe().records, 0.25);
      break;
    case Scheme::kWait50:
      policy = std::make_unique<runtime::FractionWaitPolicy>(cfg_, *Observe().records, 0.50);
      break;
    case Scheme::kLastWait:
      policy = std::make_unique<runtime::LastWaitPolicy>(cfg_);
      break;
    case Scheme::kMarkov:
      policy = std::make_unique<runtime::MarkovWaitPolicy>(cfg_);
      break;
    default:
      break;
  }
  runtime::MachineOptions opts;
  opts.policy = policy.get();
  opts.obs = obs_;
  out.run = RunTraces(BaselineTraces(), opts, /*with_faults=*/true);
  out.improvement_pct = ImprovementPct(base.makespan, out.run.makespan);
  return out;
}

SchemeResult Experiment::RunCompiled(compiler::CompileOptions opt) {
  SchemeResult out;
  out.scheme = opt.mode == compiler::Mode::kAlgorithm2 ? Scheme::kAlgorithm2
                                                       : Scheme::kAlgorithm1;
  const runtime::RunResult& base = Baseline();
  // Compile mutates its input program, so copy the cached build instead of
  // regenerating the workload from scratch.
  ir::Program prog = base_program_;
  arch::ArchConfig cfg = cfg_;
  cfg.allow_reroute = opt.allow_reroute;
  cfg.control_register = opt.control_register;
  compiler::ArchDescription ad(cfg);
  std::vector<arch::Trace> traces;
  {
    obs::ScopedPhase phase(obs::Phase::kCompile);
    out.compile_report = compiler::Compile(prog, ad, opt);
    traces = compiler::Lower(prog, cfg.num_nodes(), &cfg).traces;
  }
  obs::ScopedPhase phase(obs::Phase::kSimulate);
  runtime::MachineOptions mopts;
  mopts.obs = obs_;
  mopts.sim_threads = sim_threads_;
  std::unique_ptr<fault::FaultInjector> inj;
  if (faults_ != nullptr && !faults_->Empty()) {
    inj = std::make_unique<fault::FaultInjector>(*faults_);
    mopts.faults = inj.get();
  }
  runtime::Machine m(cfg, mopts);
  m.LoadProgram(traces);
  out.run = m.Run();
  if (inj != nullptr) {
    last_conservation_ = m.GatherConservation();
    last_injections_ = inj->counts();
    have_fault_report_ = true;
  }
  if constexpr (obs::kObsEnabled) obs::GlobalPhases().AddSimEvents(out.run.events);
  out.improvement_pct = ImprovementPct(base.makespan, out.run.makespan);
  return out;
}

std::string FormatRow(const std::vector<std::string>& cells, int width) {
  std::ostringstream os;
  for (const std::string& c : cells) {
    os << "| " << std::setw(width) << c << " ";
  }
  os << "|";
  return os.str();
}

}  // namespace ndc::metrics
