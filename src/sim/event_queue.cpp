#include "sim/event_queue.hpp"

#include <cassert>

namespace ndc::sim {

void EventQueue::ScheduleAt(Cycle when, Callback cb) {
  assert(when >= now_ && "cannot schedule an event in the past");
  heap_.push(Entry{when, next_seq_++, std::move(cb)});
}

bool EventQueue::Step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; moving the callback out requires a copy
  // otherwise, so stash it before popping.
  Entry e = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = e.when;
  ++executed_;
  e.cb();
  return true;
}

std::uint64_t EventQueue::RunUntilEmpty(Cycle limit) {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    if (heap_.top().when > limit) break;
    Step();
    ++n;
  }
  return n;
}

}  // namespace ndc::sim
