#include "sim/event_queue.hpp"

namespace ndc::sim {

Cycle EventQueue::NextEventCycle() const {
  Cycle wheel_next = kNeverCycle;
  const std::size_t pos = static_cast<std::size_t>(now_) & kWheelMask;
  const std::size_t words = occupied_.size();
  for (std::size_t step = 0; step < words; ++step) {
    std::size_t w = ((pos >> 6) + step) % words;
    std::uint64_t word = occupied_[w];
    if (step == 0) word &= ~std::uint64_t{0} << (pos & 63);
    if (word != 0) {
      std::size_t idx = (w << 6) + static_cast<std::size_t>(__builtin_ctzll(word));
      wheel_next = now_ + ((idx - pos) & kWheelMask);
      break;
    }
  }
  if (wheel_next == kNeverCycle && (pos & 63) != 0) {
    // Wrapped low bits of the starting word (cycles just under now_ + N).
    std::uint64_t word = occupied_[pos >> 6] & (~std::uint64_t{0} >> (64 - (pos & 63)));
    if (word != 0) {
      std::size_t idx = ((pos >> 6) << 6) + static_cast<std::size_t>(__builtin_ctzll(word));
      wheel_next = now_ + ((idx - pos) & kWheelMask);
    }
  }
  if (!far_.empty() && far_.begin()->first < wheel_next) return far_.begin()->first;
  return wheel_next;
}

void EventQueue::StartDrain(Cycle c) {
  assert(c != kNeverCycle && c >= now_);
  now_ = c;
  if (!far_.empty() && far_.begin()->first == c) {
    far_cur_ = std::move(far_.begin()->second);
    far_.erase(far_.begin());
  }
  far_idx_ = 0;
  cur_bucket_ = static_cast<std::size_t>(c) & kWheelMask;
  wheel_idx_ = 0;
  draining_ = true;
}

void EventQueue::ExecuteOne() {
  // Move the callback out before invoking it: the invocation may append to
  // the very bucket we are draining (ScheduleAt(now)) and reallocate it.
  SmallCallback cb;
  if (far_idx_ < far_cur_.size()) {
    cb = std::move(far_cur_[far_idx_++]);
  } else {
    cb = std::move(wheel_[cur_bucket_][wheel_idx_++]);
  }
  --pending_;
  ++executed_;
  cb();
  if (far_idx_ >= far_cur_.size() && wheel_idx_ >= wheel_[cur_bucket_].size()) {
    far_cur_.clear();
    far_idx_ = 0;
    wheel_[cur_bucket_].clear();  // keeps capacity for reuse
    wheel_idx_ = 0;
    occupied_[cur_bucket_ >> 6] &= ~(1ull << (cur_bucket_ & 63));
    draining_ = false;
  }
}

bool EventQueue::Step() {
  if (!draining_) {
    if (pending_ == 0) return false;
    StartDrain(NextEventCycle());
  }
  ExecuteOne();
  return true;
}

std::uint64_t EventQueue::RunUntilEmpty(Cycle limit) {
  std::uint64_t n = 0;
  for (;;) {
    if (!draining_) {
      if (pending_ == 0) break;
      Cycle c = NextEventCycle();
      if (c > limit) break;
      StartDrain(c);
    } else if (now_ > limit) {
      break;  // mid-drain entries (via Step) beyond the window stay pending
    }
    while (draining_) {
      ExecuteOne();
      ++n;
    }
  }
  if (limit != kNeverCycle && limit > now_) now_ = limit;
  return n;
}

}  // namespace ndc::sim
