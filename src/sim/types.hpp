#pragma once

#include <cstdint>
#include <limits>

/// Fundamental scalar types shared by every subsystem.
namespace ndc::sim {

/// Simulated time, in core clock cycles.
using Cycle = std::uint64_t;

/// A physical byte address in the simulated machine.
using Addr = std::uint64_t;

/// Index of a mesh node (core + L1 + L2 bank share one node).
using NodeId = std::int32_t;

/// Index of a directional NoC link.
using LinkId = std::int32_t;

/// Index of a memory controller.
using McId = std::int32_t;

/// Sentinel for "no cycle" / "not yet".
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// Sentinel node / link.
inline constexpr NodeId kNoNode = -1;
inline constexpr LinkId kNoLink = -1;

}  // namespace ndc::sim
