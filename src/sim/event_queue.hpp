#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace ndc::sim {

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same cycle execute in the order they were
/// scheduled (FIFO tie-break via a monotonically increasing sequence
/// number), which makes whole-machine simulations bit-reproducible.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedules `cb` to run at absolute cycle `when`.
  /// `when` must be >= now().
  void ScheduleAt(Cycle when, Callback cb);

  /// Schedules `cb` to run `delay` cycles from now.
  void ScheduleAfter(Cycle delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  /// Runs events until the queue is empty or `limit` cycles have elapsed.
  /// Returns the number of events executed.
  std::uint64_t RunUntilEmpty(Cycle limit = kNeverCycle);

  /// Runs at most one event; returns false if the queue was empty.
  bool Step();

  /// Current simulated time.
  Cycle now() const { return now_; }

  /// Number of pending events.
  std::size_t pending() const { return heap_.size(); }

  /// Total events executed so far.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Cycle when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ndc::sim
