#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/types.hpp"

namespace ndc::sim {

/// A deterministic discrete-event queue.
///
/// Events scheduled for the same cycle execute in the order they were
/// scheduled (FIFO tie-break), which makes whole-machine simulations
/// bit-reproducible. This ordering contract is load-bearing: every figure's
/// stdout is goldened against it (tests/goldens/).
///
/// Internally this is a two-level calendar queue tuned for the simulator's
/// schedule profile (almost every event is `ScheduleAfter` with a delay of a
/// few to a few hundred cycles):
///
///  - a wheel of kWheelSize per-cycle buckets covers every event within
///    [now, now + kWheelSize); insertion is an O(1) bucket append, and an
///    occupancy bitmap finds the next non-empty cycle with a handful of
///    word scans instead of a heap sift;
///  - events at or beyond now + kWheelSize land in a sorted overflow map
///    and are promoted when the clock reaches them. Overflow entries for a
///    cycle are always older (scheduled earlier) than any wheel entry for
///    the same cycle — `now` is monotonic, so once a cycle is inside the
///    wheel window it can never be scheduled into the overflow again —
///    which is what keeps the FIFO tie-break exact across the two levels;
///  - callbacks are stored in SmallCallback slots: small captures live
///    inline in the bucket, large ones in a pooled arena, so the hot
///    scheduling path performs no heap allocation.
class EventQueue {
 public:
  /// Historical alias; any callable convertible to `void()` is accepted.
  using Callback = std::function<void()>;

  EventQueue() : wheel_(kWheelSize), occupied_(kWheelSize / 64, 0) {}
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` to run at absolute cycle `when`.
  /// `when` must be >= now().
  template <typename F>
  void ScheduleAt(Cycle when, F&& cb) {
    assert(when >= now_ && "cannot schedule an event in the past");
    SmallCallback c = SmallCallback::Make(arena_, std::forward<F>(cb));
    ++pending_;
    if (when - now_ < kWheelSize) {
      auto b = static_cast<std::size_t>(when) & kWheelMask;
      wheel_[b].push_back(std::move(c));
      occupied_[b >> 6] |= 1ull << (b & 63);
    } else {
      far_[when].push_back(std::move(c));
    }
  }

  /// Schedules `cb` to run `delay` cycles from now.
  template <typename F>
  void ScheduleAfter(Cycle delay, F&& cb) {
    ScheduleAt(now_ + delay, std::forward<F>(cb));
  }

  /// Runs events until the queue is empty or the next event lies beyond
  /// `limit` (events at exactly `limit` still run). Returns the number of
  /// events executed.
  ///
  /// Clock contract: after a bounded run (`limit` != kNeverCycle), now()
  /// == `limit` — the whole window [start, limit] has elapsed even when the
  /// last event fired earlier or no event fired at all (the clock never
  /// moves backwards, so a `limit` in the past leaves now() unchanged).
  /// After an unbounded run, now() is the cycle of the last executed event.
  std::uint64_t RunUntilEmpty(Cycle limit = kNeverCycle);

  /// Runs at most one event; returns false if the queue was empty.
  bool Step();

  /// Current simulated time.
  Cycle now() const { return now_; }

  /// Number of pending events.
  std::size_t pending() const { return pending_; }

  /// Total events executed so far.
  std::uint64_t executed() const { return executed_; }

  /// Cycle of the earliest pending event; kNeverCycle when empty. Used by
  /// the sharded driver (sim/sharded_queue) to skip empty windows and to
  /// detect completion without popping anything.
  Cycle next_event_cycle() const { return NextEventCycle(); }

 private:
  static constexpr int kWheelBits = 12;
  static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
  static constexpr std::size_t kWheelMask = kWheelSize - 1;

  /// Cycle of the earliest pending event; kNeverCycle when empty.
  Cycle NextEventCycle() const;
  /// Positions the drain cursor on cycle `c` (advancing now_ to it).
  void StartDrain(Cycle c);
  /// Executes one callback from the current drain position.
  void ExecuteOne();

  // The arena must outlive every stored SmallCallback (their destructors
  // return pooled blocks to it), so it is declared first.
  CallbackArena arena_;
  std::vector<std::vector<SmallCallback>> wheel_;  ///< kWheelSize per-cycle buckets
  std::vector<std::uint64_t> occupied_;            ///< wheel occupancy bitmap
  std::map<Cycle, std::vector<SmallCallback>> far_;  ///< events beyond the wheel

  // Drain cursor: the cycle currently executing. Promoted overflow entries
  // (always older) run before the wheel bucket's entries.
  bool draining_ = false;
  std::size_t cur_bucket_ = 0;
  std::vector<SmallCallback> far_cur_;
  std::size_t far_idx_ = 0;
  std::size_t wheel_idx_ = 0;

  Cycle now_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ndc::sim
