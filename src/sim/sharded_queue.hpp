#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace ndc::sim {

/// Conservative-window parallel discrete-event execution over N EventQueue
/// shards (DESIGN.md §14).
///
/// The machine is partitioned into shards; every event belongs to exactly
/// one shard and may freely schedule further events onto its own shard at
/// any future cycle. Events destined for *another* shard must honor the
/// lookahead `L`: an event executing at cycle `t` may only post a
/// cross-shard event for cycle `t + L` or later. Under that promise the
/// window `[w, w + L - 1]` can be executed by all shards concurrently —
/// no cross-shard event posted inside the window can land inside it.
///
/// Cross-shard events travel through per-(src,dst) mailboxes. During a
/// window each source shard appends only to its own rows (no sharing); at
/// the window barrier the mailboxes are drained into the destination
/// queues in a canonical merge order — per destination, messages sort by
/// (post cycle, source shard, per-source FIFO). Combined with the
/// calendar queue's same-cycle FIFO contract (DESIGN.md §10) this makes
/// the full execution order a pure function of the event content:
/// bit-identical for any thread count, including 1.
///
/// Shard-to-thread assignment is static (`shard s` runs on
/// `thread s % T`), so the thread count changes only which OS thread
/// executes a shard, never the order of events within or across shards.
class ShardedEventQueue {
 public:
  /// `lookahead` is the minimum cross-shard delay the model guarantees
  /// (for the NoC: router pipeline depth + 1 cycle of serialization).
  ShardedEventQueue(int num_shards, Cycle lookahead);

  ShardedEventQueue(const ShardedEventQueue&) = delete;
  ShardedEventQueue& operator=(const ShardedEventQueue&) = delete;

  int num_shards() const { return n_; }
  Cycle lookahead() const { return lookahead_; }

  EventQueue& shard(int s) { return *shards_[static_cast<std::size_t>(s)]; }
  const EventQueue& shard(int s) const { return *shards_[static_cast<std::size_t>(s)]; }

  /// Index of the shard executing on this thread, or -1 outside a window
  /// phase (setup code, the merge phase, other threads). Thread-local:
  /// concurrently running machines do not interfere.
  static int CurrentShard();

  /// The shard queue of the calling thread's window phase. Must only be
  /// called from inside an executing event.
  EventQueue& current() {
    int s = CurrentShard();
    assert(s >= 0 && "current() called outside a shard window phase");
    return shard(s);
  }

  /// Schedules `fn` at absolute cycle `when` on shard `dst`.
  ///  - same shard (or outside a window phase): direct ScheduleAt;
  ///  - cross-shard from inside a window: mailbox post, requires
  ///    `when >= src.now() + lookahead()`.
  void ScheduleOn(int dst, Cycle when, std::function<void()> fn);

  /// Executes windows until every shard queue and mailbox is empty or the
  /// next event lies beyond `limit` (events at exactly `limit` still run).
  /// Returns the number of events executed. Honors the EventQueue clock
  /// contract per shard: after a bounded run every shard's now() == limit,
  /// even for shards that drained early or never had an event — a drained
  /// shard that kept an old clock would let later cross-shard posts violate
  /// the lookahead window.
  ///
  /// `num_threads` <= 1 runs every window inline on the calling thread
  /// (no worker threads, same canonical order). Thread counts above
  /// num_shards() are clamped.
  std::uint64_t RunUntilEmpty(Cycle limit = kNeverCycle, int num_threads = 1);

  /// Max over shard clocks. After a bounded run: == limit. After an
  /// unbounded multi-shard run every clock rests at the last window
  /// boundary (>= the last executed event's cycle); a single-shard queue
  /// keeps the plain EventQueue semantics (last executed event).
  Cycle now() const;
  /// Earliest pending event cycle across shards and mailboxes
  /// (kNeverCycle when idle).
  Cycle next_event_cycle() const;
  std::size_t pending() const;       ///< shard queues + undelivered mailboxes
  std::uint64_t executed() const;    ///< sum over shards

 private:
  struct Msg {
    Cycle when;    ///< delivery cycle on the destination shard
    Cycle posted;  ///< source shard clock at post time (merge sort key)
    std::function<void()> fn;
  };
  /// One (src,dst) channel. Only the src shard's thread appends during a
  /// window; only the merge phase (single-threaded, post-barrier) drains.
  /// Padded so two sources never share a cache line.
  struct alignas(64) Mailbox {
    std::vector<Msg> msgs;
  };

  Mailbox& box(int src, int dst) {
    return mail_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(dst)];
  }
  const Mailbox& box(int src, int dst) const {
    return mail_[static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
                 static_cast<std::size_t>(dst)];
  }

  /// Runs this thread's statically assigned shards up to `wend`.
  void RunAssigned(int thread_idx, int num_threads, Cycle wend);
  /// Canonical merge: delivers every mailbox message into its destination
  /// queue ordered by (posted, src, per-src FIFO). Single-threaded.
  void DrainMailboxes();

  int n_;
  Cycle lookahead_;
  std::vector<std::unique_ptr<EventQueue>> shards_;
  std::vector<Mailbox> mail_;  ///< n*n, row-major [src][dst]

  // Window barrier (only live inside RunUntilEmpty with num_threads > 1).
  std::atomic<std::uint64_t> round_{0};
  std::atomic<int> arrived_{0};
  Cycle window_end_ = 0;
  bool done_ = false;

  std::vector<Msg> merge_scratch_;
};

}  // namespace ndc::sim
