#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ndc::sim {

/// Bucketed histogram matching the paper's arrival-window buckets
/// (1, 10, 20, 50, 100, 500, 500+). Bucket `i` counts samples
/// v <= edges[i] (and > edges[i-1]); the final implicit bucket counts
/// everything above the last edge (the paper's "500+", which also absorbs
/// "never arrives" samples encoded as kNeverCycle).
class BucketHistogram {
 public:
  explicit BucketHistogram(std::vector<std::uint64_t> edges = {1, 10, 20, 50, 100, 500});

  void Add(std::uint64_t value, std::uint64_t weight = 1);

  /// Count in bucket i (i == edges().size() is the overflow bucket).
  std::uint64_t count(std::size_t i) const { return counts_[i]; }
  std::uint64_t total() const { return total_; }
  const std::vector<std::uint64_t>& edges() const { return edges_; }
  std::size_t num_buckets() const { return counts_.size(); }

  /// Fraction of samples in bucket i.
  double Fraction(std::size_t i) const;

  /// Cumulative fraction of samples <= edges[i].
  double CumulativeFraction(std::size_t i) const;

  /// Fraction of samples <= `edge`, where `edge` must be one of edges().
  /// The histogram keeps no raw samples, so the answer is only exact at a
  /// bucket boundary; a non-edge value is a caller bug and asserts in debug
  /// builds. In release builds a non-edge value degrades to the fraction at
  /// the largest edge <= `edge` (a documented floor, never an over-count).
  double FractionAtEdge(std::uint64_t edge) const;

  void MergeFrom(const BucketHistogram& other);

 private:
  std::vector<std::uint64_t> edges_;
  std::vector<std::uint64_t> counts_;  // edges_.size() + 1 entries
  std::uint64_t total_ = 0;
};

/// A flat named-counter registry. Components bump counters by name; benches
/// and tests read them back. Deliberately simple (string keys) because this
/// is bookkeeping, never on the simulated critical path hot loop.
class StatSet {
 public:
  void Add(const std::string& name, std::uint64_t delta = 1) { counters_[name] += delta; }
  std::uint64_t Get(const std::string& name) const;
  bool Has(const std::string& name) const { return counters_.count(name) != 0; }
  const std::map<std::string, std::uint64_t>& all() const { return counters_; }
  void Clear() { counters_.clear(); }

  /// Pretty one-line-per-counter dump (for examples and debugging).
  std::string ToString() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

/// A hot-path counter: a plain integer bump where StatSet::Add would hash a
/// string per event. Components keep RawCounters as members and lazily
/// materialize them into a StatSet when stats are read. `touched` preserves
/// StatSet key semantics exactly: a key exists iff Add was ever called, even
/// with delta 0 (some consumers key off presence, not value).
struct RawCounter {
  std::uint64_t v = 0;
  bool touched = false;

  void Add(std::uint64_t delta = 1) {
    v += delta;
    touched = true;
  }
  void Reset() {
    v = 0;
    touched = false;
  }
  /// Adds this counter to `out` under `name` iff it was ever touched.
  void MaterializeInto(StatSet& out, const std::string& name) const {
    if (touched) out.Add(name, v);
  }
};

/// Simple online mean/min/max accumulator.
class Accumulator {
 public:
  void Add(double v);
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean over strictly positive values; values <= 0 are clamped to
/// `floor` (used for "performance improvement" aggregation like the paper's
/// geo-means, where a slowdown is a ratio < 1 but still positive).
double GeometricMean(const std::vector<double>& values, double floor = 1e-9);

}  // namespace ndc::sim
