#pragma once

// Allocation-free callback storage for the discrete-event substrate.
//
// A SmallCallback is a move-only type-erased `void()` callable. Callables up
// to kInlineBytes are stored inline in the object (the common case: hot-path
// lambdas capture a handful of pointers and integers). Larger callables are
// placed in fixed-size blocks drawn from a CallbackArena free list, so the
// steady-state scheduling path performs no heap allocation at all; only
// callables bigger than an arena block (rare, cold paths) fall back to
// operator new.

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace ndc::sim {

/// Free-list pool of fixed-size callback blocks. Blocks are recycled for the
/// lifetime of the arena; memory is only returned to the system when the
/// arena itself is destroyed.
class CallbackArena {
 public:
  static constexpr std::size_t kBlockBytes = 256;
  static constexpr std::size_t kBlocksPerChunk = 64;

  CallbackArena() = default;
  CallbackArena(const CallbackArena&) = delete;
  CallbackArena& operator=(const CallbackArena&) = delete;

  void* Acquire() {
    if (free_.empty()) Grow();
    void* p = free_.back();
    free_.pop_back();
    return p;
  }

  void Release(void* p) { free_.push_back(p); }

  /// Number of chunk allocations performed so far (a proxy for how often the
  /// pool had to grow; steady state is 0 growth per event).
  std::size_t chunks() const { return chunks_.size(); }

 private:
  void Grow() {
    // operator new[] on unsigned char yields storage aligned for
    // max_align_t; kBlockBytes is a multiple of that alignment, so every
    // block in the chunk is suitably aligned too.
    static_assert(kBlockBytes % alignof(std::max_align_t) == 0);
    chunks_.push_back(std::make_unique<unsigned char[]>(kBlockBytes * kBlocksPerChunk));
    unsigned char* base = chunks_.back().get();
    free_.reserve(free_.size() + kBlocksPerChunk);
    for (std::size_t i = 0; i < kBlocksPerChunk; ++i) {
      free_.push_back(base + i * kBlockBytes);
    }
  }

  std::vector<std::unique_ptr<unsigned char[]>> chunks_;
  std::vector<void*> free_;
};

/// Move-only type-erased `void()` callable with inline storage for small
/// captures and arena-pooled storage for large ones.
class SmallCallback {
 public:
  static constexpr std::size_t kInlineBytes = 64;
  static constexpr std::size_t kInlineAlign = 16;

  SmallCallback() = default;

  template <typename F>
  static SmallCallback Make(CallbackArena& arena, F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "callback must be callable as void()");
    SmallCallback c;
    c.arena_ = &arena;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(c.buf_)) Fn(std::forward<F>(f));
      c.ops_ = &kInlineOps<Fn>;
    } else if constexpr (sizeof(Fn) <= CallbackArena::kBlockBytes &&
                         alignof(Fn) <= alignof(std::max_align_t)) {
      void* p = arena.Acquire();
      ::new (p) Fn(std::forward<F>(f));
      c.ext_ = p;
      c.ops_ = &kPooledOps<Fn>;
    } else {
      void* p = ::operator new(sizeof(Fn), std::align_val_t{alignof(Fn)});
      ::new (p) Fn(std::forward<F>(f));
      c.ext_ = p;
      c.ops_ = &kHeapOps<Fn>;
    }
    return c;
  }

  SmallCallback(SmallCallback&& o) noexcept : ops_(o.ops_), arena_(o.arena_) {
    if (ops_ == nullptr) return;
    if (ops_->release != nullptr) {
      ext_ = o.ext_;
    } else {
      ops_->relocate(buf_, o.buf_);
    }
    o.ops_ = nullptr;
  }

  SmallCallback& operator=(SmallCallback&& o) noexcept {
    if (this == &o) return *this;
    Dispose();
    ops_ = o.ops_;
    arena_ = o.arena_;
    if (ops_ != nullptr) {
      if (ops_->release != nullptr) {
        ext_ = o.ext_;
      } else {
        ops_->relocate(buf_, o.buf_);
      }
      o.ops_ = nullptr;
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { Dispose(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    assert(ops_ != nullptr);
    ops_->invoke(target());
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
    /// Move-construct into dst and destroy src (inline storage only).
    void (*relocate)(void* dst, void* src);
    /// Return external storage (pooled or heap); null for inline storage.
    void (*release)(CallbackArena*, void*);
  };

  void* target() { return ops_->release != nullptr ? ext_ : static_cast<void*>(buf_); }

  void Dispose() {
    if (ops_ == nullptr) return;
    void* p = target();
    ops_->destroy(p);
    if (ops_->release != nullptr) ops_->release(arena_, p);
    ops_ = nullptr;
  }

  template <typename Fn>
  static void InvokeImpl(void* p) {
    (*static_cast<Fn*>(p))();
  }
  template <typename Fn>
  static void DestroyImpl(void* p) {
    static_cast<Fn*>(p)->~Fn();
  }
  template <typename Fn>
  static void RelocateImpl(void* dst, void* src) {
    Fn* s = static_cast<Fn*>(src);
    ::new (dst) Fn(std::move(*s));
    s->~Fn();
  }
  static void ReleasePooled(CallbackArena* a, void* p) { a->Release(p); }
  template <typename Fn>
  static void ReleaseHeap(CallbackArena*, void* p) {
    ::operator delete(p, std::align_val_t{alignof(Fn)});
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{&InvokeImpl<Fn>, &DestroyImpl<Fn>, &RelocateImpl<Fn>,
                                  nullptr};
  template <typename Fn>
  static constexpr Ops kPooledOps{&InvokeImpl<Fn>, &DestroyImpl<Fn>, nullptr,
                                  &ReleasePooled};
  template <typename Fn>
  static constexpr Ops kHeapOps{&InvokeImpl<Fn>, &DestroyImpl<Fn>, nullptr,
                                &ReleaseHeap<Fn>};

  const Ops* ops_ = nullptr;
  CallbackArena* arena_ = nullptr;
  union {
    void* ext_;
    alignas(kInlineAlign) unsigned char buf_[kInlineBytes];
  };
};

}  // namespace ndc::sim
