#include "sim/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace ndc::sim {

BucketHistogram::BucketHistogram(std::vector<std::uint64_t> edges) : edges_(std::move(edges)) {
  assert(std::is_sorted(edges_.begin(), edges_.end()));
  counts_.assign(edges_.size() + 1, 0);
}

void BucketHistogram::Add(std::uint64_t value, std::uint64_t weight) {
  std::size_t i = 0;
  while (i < edges_.size() && value > edges_[i]) ++i;
  counts_[i] += weight;
  total_ += weight;
}

double BucketHistogram::Fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

double BucketHistogram::CumulativeFraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  std::uint64_t c = 0;
  for (std::size_t k = 0; k <= i && k < counts_.size(); ++k) c += counts_[k];
  return static_cast<double>(c) / static_cast<double>(total_);
}

double BucketHistogram::FractionAtEdge(std::uint64_t edge) const {
  assert(std::binary_search(edges_.begin(), edges_.end(), edge) &&
         "FractionAtEdge requires an exact bucket edge");
  if (total_ == 0) return 0.0;
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (edges_[i] <= edge) c += counts_[i];
  }
  return static_cast<double>(c) / static_cast<double>(total_);
}

void BucketHistogram::MergeFrom(const BucketHistogram& other) {
  assert(edges_ == other.edges_);
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

std::uint64_t StatSet::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string StatSet::ToString() const {
  // Deterministic output is a documented contract (goldens diff this):
  // sort explicitly instead of leaning on the backing container's order.
  std::vector<const std::pair<const std::string, std::uint64_t>*> rows;
  rows.reserve(counters_.size());
  for (const auto& kv : counters_) rows.push_back(&kv);
  std::sort(rows.begin(), rows.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  std::ostringstream os;
  for (const auto* kv : rows) os << kv->first << " = " << kv->second << "\n";
  return os.str();
}

void Accumulator::Add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  sum_ += v;
  ++n_;
}

double GeometricMean(const std::vector<double>& values, double floor) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(std::max(v, floor));
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace ndc::sim
