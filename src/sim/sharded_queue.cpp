#include "sim/sharded_queue.hpp"

#include <algorithm>
#include <thread>
#include <utility>

namespace ndc::sim {

namespace {

/// Shard index of the window phase currently executing on this thread.
/// -1 everywhere else (setup, merge phase, foreign threads). Thread-local
/// so concurrently sweeping machines (each with its own sharded queue and
/// worker pool) never observe each other.
thread_local int tls_current_shard = -1;

}  // namespace

int ShardedEventQueue::CurrentShard() { return tls_current_shard; }

ShardedEventQueue::ShardedEventQueue(int num_shards, Cycle lookahead)
    : n_(num_shards), lookahead_(lookahead) {
  assert(n_ >= 1);
  assert(lookahead_ >= 1 && "a conservative window needs at least one cycle");
  shards_.reserve(static_cast<std::size_t>(n_));
  for (int s = 0; s < n_; ++s) shards_.push_back(std::make_unique<EventQueue>());
  mail_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
}

void ShardedEventQueue::ScheduleOn(int dst, Cycle when, std::function<void()> fn) {
  assert(dst >= 0 && dst < n_);
  int src = tls_current_shard;
  if (src < 0 || src == dst) {
    // Setup code (no window running) or an intra-shard schedule: straight
    // into the destination queue, ordinary FIFO semantics.
    shard(dst).ScheduleAt(when, std::move(fn));
    return;
  }
  // Cross-shard: the conservative promise. The window ends at
  // src.now() + lookahead - 1 at the latest, so this lands strictly after
  // the barrier and never inside the currently executing window.
  assert(when >= shard(src).now() + lookahead_ &&
         "cross-shard event violates the lookahead window");
  box(src, dst).msgs.push_back(Msg{when, shard(src).now(), std::move(fn)});
}

Cycle ShardedEventQueue::next_event_cycle() const {
  Cycle next = kNeverCycle;
  for (int s = 0; s < n_; ++s) next = std::min(next, shard(s).next_event_cycle());
  for (const Mailbox& m : mail_) {
    for (const Msg& msg : m.msgs) next = std::min(next, msg.when);
  }
  return next;
}

Cycle ShardedEventQueue::now() const {
  Cycle t = 0;
  for (int s = 0; s < n_; ++s) t = std::max(t, shard(s).now());
  return t;
}

std::size_t ShardedEventQueue::pending() const {
  std::size_t p = 0;
  for (const Mailbox& m : mail_) p += m.msgs.size();
  for (int s = 0; s < n_; ++s) p += shard(s).pending();
  return p;
}

std::uint64_t ShardedEventQueue::executed() const {
  std::uint64_t e = 0;
  for (int s = 0; s < n_; ++s) e += shard(s).executed();
  return e;
}

void ShardedEventQueue::RunAssigned(int thread_idx, int num_threads, Cycle wend) {
  for (int s = thread_idx; s < n_; s += num_threads) {
    tls_current_shard = s;
    shard(s).RunUntilEmpty(wend);
    tls_current_shard = -1;
  }
}

void ShardedEventQueue::DrainMailboxes() {
  // Canonical merge order, per destination: (post cycle, source shard,
  // per-source FIFO). The gather below concatenates sources in ascending
  // order, each already in FIFO order, so a *stable* sort on the post cycle
  // alone realizes the full key. Insertion order into the destination queue
  // then fixes same-cycle execution order via the calendar queue's FIFO
  // contract — identical for every thread count by construction.
  for (int dst = 0; dst < n_; ++dst) {
    merge_scratch_.clear();
    for (int src = 0; src < n_; ++src) {
      if (src == dst) continue;
      Mailbox& m = box(src, dst);
      for (Msg& msg : m.msgs) merge_scratch_.push_back(std::move(msg));
      m.msgs.clear();
    }
    if (merge_scratch_.empty()) continue;
    std::stable_sort(
        merge_scratch_.begin(), merge_scratch_.end(),
        [](const Msg& a, const Msg& b) { return a.posted < b.posted; });
    for (Msg& msg : merge_scratch_) {
      shard(dst).ScheduleAt(msg.when, std::move(msg.fn));
    }
  }
}

std::uint64_t ShardedEventQueue::RunUntilEmpty(Cycle limit, int num_threads) {
  if (n_ == 1) {
    // One shard has no cross-shard traffic: degenerate to the plain queue,
    // including its exact unbounded-run clock semantics.
    return shard(0).RunUntilEmpty(limit);
  }
  // More workers than shards can't help (a shard is a unit of work), and
  // more workers than hardware threads only adds barrier thrash — results
  // are identical for every t by construction, so clamping is free.
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) num_threads = std::min(num_threads, static_cast<int>(hw));
  int t = std::clamp(num_threads, 1, n_);
  std::uint64_t before = executed();

  auto plan_window = [&](Cycle* wend) -> bool {
    // Mailboxes are empty here (drained at every barrier), so the earliest
    // pending cycle is the min over shard queues.
    Cycle next = kNeverCycle;
    for (int s = 0; s < n_; ++s) next = std::min(next, shard(s).next_event_cycle());
    if (next == kNeverCycle || next > limit) {
      // Nothing left inside the horizon. Honor the per-shard clock
      // contract: a bounded run leaves every shard at now() == limit even
      // when it drained early or never held an event (the "idle quadrant"
      // case) — otherwise a later cross-shard post computed off the stale
      // clock could land inside a window already executed elsewhere.
      if (limit != kNeverCycle) {
        for (int s = 0; s < n_; ++s) shard(s).RunUntilEmpty(limit);
      }
      return false;
    }
    // The window skips straight to the next event (empty windows are never
    // barriered) and spans exactly the lookahead: any cross-shard post from
    // cycle p >= next lands at p + lookahead > next + lookahead - 1.
    Cycle w = next + (lookahead_ - 1);
    if (w < next) w = kNeverCycle;  // overflow clamp
    *wend = std::min(w, limit);
    return true;
  };

  if (t <= 1) {
    Cycle wend = 0;
    while (plan_window(&wend)) {
      RunAssigned(0, 1, wend);
      DrainMailboxes();
    }
    return executed() - before;
  }

  round_.store(0, std::memory_order_relaxed);
  arrived_.store(0, std::memory_order_relaxed);
  done_ = false;

  auto worker = [this, t](int thread_idx) {
    std::uint64_t seen = 0;
    for (;;) {
      while (round_.load(std::memory_order_acquire) == seen) {
        std::this_thread::yield();
      }
      seen = round_.load(std::memory_order_acquire);
      if (done_) return;
      RunAssigned(thread_idx, t, window_end_);
      arrived_.fetch_add(1, std::memory_order_release);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(t - 1));
  for (int i = 1; i < t; ++i) pool.emplace_back(worker, i);

  Cycle wend = 0;
  while (plan_window(&wend)) {
    window_end_ = wend;
    round_.fetch_add(1, std::memory_order_release);
    RunAssigned(0, t, wend);  // the caller doubles as worker 0
    while (arrived_.load(std::memory_order_acquire) != t - 1) {
      std::this_thread::yield();
    }
    arrived_.store(0, std::memory_order_relaxed);
    DrainMailboxes();
  }
  done_ = true;
  round_.fetch_add(1, std::memory_order_release);
  for (std::thread& th : pool) th.join();
  return executed() - before;
}

}  // namespace ndc::sim
