#pragma once

#include <cstdint>

namespace ndc::sim {

/// Deterministic xorshift64* generator.
///
/// Every source of randomness in the repository flows through a seeded
/// instance of this class so that simulations, workload generation, and
/// benchmarks are bit-reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) : state_(seed ? seed : 1) {}

  /// Uniform 64-bit value.
  std::uint64_t Next() {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound) { return Next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(NextBelow(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Bernoulli draw.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace ndc::sim
