#pragma once

// The pre-calendar-queue event queue: a binary heap of heap-allocating
// std::function callbacks with an explicit FIFO sequence number.
//
// Kept (header-only) as the reference implementation for two purposes:
//  - tests/sim_test.cpp proves the calendar queue executes randomized
//    schedules in exactly the same order as this queue (the bit-identical
//    figure-output guarantee rests on that equivalence);
//  - bench/bench_substrate.cpp measures the calendar queue's events/sec
//    against this queue and enforces the speedup floor in CI.
//
// Do not use it in new simulator code.

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace ndc::sim {

class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;

  void ScheduleAt(Cycle when, Callback cb) {
    heap_.push(Entry{when, next_seq_++, std::move(cb)});
  }

  void ScheduleAfter(Cycle delay, Callback cb) { ScheduleAt(now_ + delay, std::move(cb)); }

  std::uint64_t RunUntilEmpty(Cycle limit = kNeverCycle) {
    std::uint64_t n = 0;
    while (!heap_.empty()) {
      if (heap_.top().when > limit) break;
      Step();
      ++n;
    }
    return n;
  }

  bool Step() {
    if (heap_.empty()) return false;
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = e.when;
    ++executed_;
    e.cb();
    return true;
  }

  Cycle now() const { return now_; }
  std::size_t pending() const { return heap_.size(); }
  std::uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    Cycle when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  Cycle now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace ndc::sim
