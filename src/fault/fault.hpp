#pragma once

// Umbrella header for the fault-injection & resilience subsystem.
// See DESIGN.md §11 for the fault model taxonomy, the schedule grammar, the
// retry/timeout/degrade state machine, and determinism guarantees.

#include "fault/conservation.hpp"  // IWYU pragma: export
#include "fault/injector.hpp"      // IWYU pragma: export
#include "fault/schedule.hpp"      // IWYU pragma: export
