#include "fault/conservation.hpp"

#include <sstream>

namespace ndc::fault {
namespace {

void Require(ConservationReport& r, bool ok, const std::string& what) {
  if (ok) return;
  r.ok = false;
  r.violations.push_back(what);
}

std::string Eq(const char* lhs, std::uint64_t a, const char* rhs, std::uint64_t b) {
  std::ostringstream os;
  os << lhs << " (" << a << ") != " << rhs << " (" << b << ")";
  return os.str();
}

}  // namespace

std::string ConservationReport::ToString() const {
  if (ok) return "conservation: ok";
  std::ostringstream os;
  os << "conservation: " << violations.size() << " violation(s)";
  for (const std::string& v : violations) os << "\n  " << v;
  return os.str();
}

ConservationReport CheckConservation(const ConservationInputs& in) {
  ConservationReport r;
  Require(r, in.offloads == in.ndc_success + in.fallbacks,
          Eq("offloads", in.offloads, "ndc_success + fallbacks",
             in.ndc_success + in.fallbacks));
  Require(r, in.cores_incomplete == 0,
          "cores_incomplete (" + std::to_string(in.cores_incomplete) + ") != 0");
  Require(r, in.packets_sent == in.packets_delivered + in.packets_squashed,
          Eq("packets_sent", in.packets_sent, "delivered + squashed",
             in.packets_delivered + in.packets_squashed));
  Require(r, in.packets_dropped == in.packets_retransmitted,
          Eq("packets_dropped", in.packets_dropped, "packets_retransmitted",
             in.packets_retransmitted));
  Require(r, in.mc_reads == in.mc_reads_done,
          Eq("mc_reads", in.mc_reads, "mc_reads_done", in.mc_reads_done));
  Require(r, in.mc_nacks == in.mc_nack_retries,
          Eq("mc_nacks", in.mc_nacks, "mc_nack_retries", in.mc_nack_retries));
  Require(r, in.sync_acquires == in.sync_releases,
          Eq("sync_acquires", in.sync_acquires, "sync_releases", in.sync_releases));
  Require(r, in.sync_barrier_arrivals == in.sync_barrier_departures,
          Eq("sync_barrier_arrivals", in.sync_barrier_arrivals, "sync_barrier_departures",
             in.sync_barrier_departures));
  Require(r, in.sync_atomics_issued == in.sync_atomics_completed,
          Eq("sync_atomics_issued", in.sync_atomics_issued, "sync_atomics_completed",
             in.sync_atomics_completed));
  return r;
}

}  // namespace ndc::fault
