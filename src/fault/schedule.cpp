#include "fault/schedule.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "sim/rng.hpp"

namespace ndc::fault {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader, scoped to the schedule grammar (objects, arrays,
// numbers, strings, bool). src/fault cannot use ndc::harness::json — the
// harness links against this module — so the few dozen lines live here.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> arr;
  // std::map keeps key order stable for error messages; schedules are tiny.
  std::map<std::string, JsonValue> obj;
};

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  bool Parse(JsonValue* out, std::string* err) {
    SkipWs();
    if (!ParseValue(out)) {
      if (err != nullptr) *err = err_;
      return false;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      if (err != nullptr) *err = "trailing characters after JSON value";
      return false;
    }
    return true;
  }

 private:
  bool Fail(const std::string& msg) {
    err_ = msg + " (at offset " + std::to_string(pos_) + ")";
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    char c = s_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') return ParseString(out);
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return ParseNumber(out);
    }
    return Fail(std::string("unexpected character '") + c + "'");
  }

  bool ParseObject(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      JsonValue key;
      if (pos_ >= s_.size() || s_[pos_] != '"') return Fail("expected object key");
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      JsonValue val;
      if (!ParseValue(&val)) return false;
      if (!out->obj.emplace(key.str, std::move(val)).second) {
        return Fail("duplicate key \"" + key.str + "\"");
      }
      SkipWs();
      if (pos_ >= s_.size()) return Fail("unterminated object");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue val;
      if (!ParseValue(&val)) return false;
      out->arr.push_back(std::move(val));
      SkipWs();
      if (pos_ >= s_.size()) return Fail("unterminated array");
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }

  bool ParseString(JsonValue* out) {
    out->type = JsonValue::Type::kString;
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return Fail("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out->str.push_back('"'); break;
          case '\\': out->str.push_back('\\'); break;
          case '/': out->str.push_back('/'); break;
          case 'n': out->str.push_back('\n'); break;
          case 't': out->str.push_back('\t'); break;
          default: return Fail("unsupported escape in string");
        }
      } else {
        out->str.push_back(c);
      }
    }
    return Fail("unterminated string");
  }

  bool ParseBool(JsonValue* out) {
    out->type = JsonValue::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) {
      out->b = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->b = false;
      pos_ += 5;
      return true;
    }
    return Fail("expected 'true' or 'false'");
  }

  bool ParseNumber(JsonValue* out) {
    out->type = JsonValue::Type::kNumber;
    std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    try {
      out->num = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return Fail("malformed number");
    }
    return true;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  std::string err_;
};

// ---------------------------------------------------------------------------
// Field extraction with strict unknown-key rejection: a typo'd key must not
// silently produce an un-faulted run.
// ---------------------------------------------------------------------------

class FieldReader {
 public:
  FieldReader(const JsonValue& obj, std::string where, std::string* err)
      : obj_(obj), where_(std::move(where)), err_(err) {}

  bool Int(const char* key, std::int64_t* out) {
    const JsonValue* v = Take(key);
    if (v == nullptr) return !failed_;
    if (v->type != JsonValue::Type::kNumber ||
        v->num != std::floor(v->num)) {
      return Fail(std::string(key) + " must be an integer");
    }
    *out = static_cast<std::int64_t>(v->num);
    return true;
  }

  bool Uint(const char* key, std::uint64_t* out) {
    std::int64_t v = static_cast<std::int64_t>(*out);
    if (!Int(key, &v)) return false;
    if (v < 0) return Fail(std::string(key) + " must be non-negative");
    *out = static_cast<std::uint64_t>(v);
    return true;
  }

  bool Double(const char* key, double* out) {
    const JsonValue* v = Take(key);
    if (v == nullptr) return !failed_;
    if (v->type != JsonValue::Type::kNumber) {
      return Fail(std::string(key) + " must be a number");
    }
    *out = v->num;
    return true;
  }

  bool String(const char* key, std::string* out) {
    const JsonValue* v = Take(key);
    if (v == nullptr) return !failed_;
    if (v->type != JsonValue::Type::kString) {
      return Fail(std::string(key) + " must be a string");
    }
    *out = v->str;
    return true;
  }

  const JsonValue* Object(const char* key) {
    const JsonValue* v = Take(key);
    if (v == nullptr) return nullptr;
    if (v->type != JsonValue::Type::kObject) {
      Fail(std::string(key) + " must be an object");
      return nullptr;
    }
    return v;
  }

  const JsonValue* Array(const char* key) {
    const JsonValue* v = Take(key);
    if (v == nullptr) return nullptr;
    if (v->type != JsonValue::Type::kArray) {
      Fail(std::string(key) + " must be an array");
      return nullptr;
    }
    return v;
  }

  /// Call after all known keys were consumed; rejects leftovers.
  bool Finish() {
    if (failed_) return false;
    for (const auto& [key, value] : obj_.obj) {
      if (taken_.count(key) == 0) {
        return Fail("unknown key \"" + key + "\"");
      }
    }
    return true;
  }

  bool Fail(const std::string& msg) {
    failed_ = true;
    if (err_ != nullptr && err_->empty()) *err_ = where_ + ": " + msg;
    return false;
  }

 private:
  const JsonValue* Take(const char* key) {
    if (failed_) return nullptr;
    taken_.insert(key);
    auto it = obj_.obj.find(key);
    return it == obj_.obj.end() ? nullptr : &it->second;
  }

  const JsonValue& obj_;
  std::string where_;
  std::string* err_;
  std::set<std::string> taken_;
  bool failed_ = false;
};

bool RequireWindow(FieldReader& fr, sim::Cycle start, sim::Cycle end) {
  if (end < start) return fr.Fail("window end precedes start");
  return true;
}

std::string FormatDouble(double d) {
  // Shortest round-trip-stable form keeps canonical strings readable and
  // platform-independent for the values schedules actually use.
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  double back = 0.0;
  std::sscanf(buf, "%lg", &back);
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, d);
    std::sscanf(shorter, "%lg", &back);
    if (back == d) return shorter;
  }
  return buf;
}

sim::Cycle ScaleCycles(sim::Cycle c, double factor) {
  double scaled = static_cast<double>(c) * factor;
  if (scaled <= 0.0) return 0;
  return static_cast<sim::Cycle>(std::llround(scaled));
}

}  // namespace

const char* BankFaultKindName(BankFaultKind k) {
  return k == BankFaultKind::kStall ? "stall" : "nack";
}

std::string FaultSchedule::CanonicalString() const {
  std::ostringstream os;
  os << "seed=" << seed;
  for (const LinkFaultWindow& w : link_faults) {
    os << ";link{" << w.link << "," << w.start << "," << w.end << ","
       << w.extra_latency << "," << FormatDouble(w.drop_prob) << "}";
  }
  for (const BankFaultWindow& w : bank_faults) {
    os << ";bank{" << w.mc << "," << w.bank << "," << w.start << "," << w.end
       << "," << BankFaultKindName(w.kind) << "}";
  }
  for (const McPressureWindow& w : mc_pressure) {
    os << ";press{" << w.mc << "," << w.start << "," << w.end << ","
       << w.extra_delay << "}";
  }
  os << ";res{" << resilience.max_retries << ","
     << FormatDouble(resilience.backoff_mult) << ","
     << resilience.retransmit_delay << "," << resilience.nack_backoff << "}";
  return os.str();
}

std::string FaultSchedule::ToJson() const {
  std::ostringstream os;
  os << "{\"seed\":" << seed;
  if (!link_faults.empty()) {
    os << ",\"link_faults\":[";
    for (std::size_t i = 0; i < link_faults.size(); ++i) {
      const LinkFaultWindow& w = link_faults[i];
      if (i != 0) os << ",";
      os << "{\"link\":" << w.link << ",\"start\":" << w.start
         << ",\"end\":" << w.end << ",\"extra_latency\":" << w.extra_latency
         << ",\"drop_prob\":" << FormatDouble(w.drop_prob) << "}";
    }
    os << "]";
  }
  if (!bank_faults.empty()) {
    os << ",\"bank_faults\":[";
    for (std::size_t i = 0; i < bank_faults.size(); ++i) {
      const BankFaultWindow& w = bank_faults[i];
      if (i != 0) os << ",";
      os << "{\"mc\":" << w.mc << ",\"bank\":" << w.bank
         << ",\"start\":" << w.start << ",\"end\":" << w.end << ",\"kind\":\""
         << BankFaultKindName(w.kind) << "\"}";
    }
    os << "]";
  }
  if (!mc_pressure.empty()) {
    os << ",\"mc_pressure\":[";
    for (std::size_t i = 0; i < mc_pressure.size(); ++i) {
      const McPressureWindow& w = mc_pressure[i];
      if (i != 0) os << ",";
      os << "{\"mc\":" << w.mc << ",\"start\":" << w.start
         << ",\"end\":" << w.end << ",\"extra_delay\":" << w.extra_delay << "}";
    }
    os << "]";
  }
  os << ",\"resilience\":{\"max_retries\":" << resilience.max_retries
     << ",\"backoff_mult\":" << FormatDouble(resilience.backoff_mult)
     << ",\"retransmit_delay\":" << resilience.retransmit_delay
     << ",\"nack_backoff\":" << resilience.nack_backoff << "}}";
  return os.str();
}

FaultSchedule FaultSchedule::Scaled(double factor) const {
  FaultSchedule s = *this;
  if (factor < 0.0) factor = 0.0;
  s.link_faults.clear();
  s.bank_faults.clear();
  s.mc_pressure.clear();
  if (factor == 0.0) return s;
  for (const LinkFaultWindow& w : link_faults) {
    LinkFaultWindow scaled = w;
    scaled.extra_latency = ScaleCycles(w.extra_latency, factor);
    scaled.drop_prob = std::min(1.0, w.drop_prob * factor);
    if (scaled.extra_latency > 0 || scaled.drop_prob > 0.0) {
      s.link_faults.push_back(scaled);
    }
  }
  s.bank_faults = bank_faults;
  for (const McPressureWindow& w : mc_pressure) {
    McPressureWindow scaled = w;
    scaled.extra_delay = ScaleCycles(w.extra_delay, factor);
    if (scaled.extra_delay > 0) s.mc_pressure.push_back(scaled);
  }
  return s;
}

bool ParseSchedule(const std::string& text, FaultSchedule* out, std::string* err) {
  if (err != nullptr) err->clear();
  JsonValue root;
  {
    JsonReader reader(text);
    std::string perr;
    if (!reader.Parse(&root, &perr)) {
      if (err != nullptr) *err = "fault schedule: " + perr;
      return false;
    }
  }
  if (root.type != JsonValue::Type::kObject) {
    if (err != nullptr) *err = "fault schedule: top level must be an object";
    return false;
  }
  FaultSchedule sched;
  FieldReader fr(root, "fault schedule", err);
  if (!fr.Uint("seed", &sched.seed)) return false;
  if (const JsonValue* arr = fr.Array("link_faults")) {
    for (std::size_t i = 0; i < arr->arr.size(); ++i) {
      const JsonValue& e = arr->arr[i];
      std::string where = "link_faults[" + std::to_string(i) + "]";
      if (e.type != JsonValue::Type::kObject) return fr.Fail(where + " must be an object");
      FieldReader wfr(e, where, err);
      LinkFaultWindow w;
      std::int64_t link = 0;
      bool ok = wfr.Int("link", &link) && wfr.Uint("start", &w.start) &&
                wfr.Uint("end", &w.end) && wfr.Uint("extra_latency", &w.extra_latency) &&
                wfr.Double("drop_prob", &w.drop_prob) && wfr.Finish() &&
                RequireWindow(wfr, w.start, w.end);
      if (!ok) return fr.Fail("invalid link fault window");
      if (w.drop_prob < 0.0 || w.drop_prob > 1.0) {
        return wfr.Fail("drop_prob must be in [0, 1]") && false;
      }
      w.link = static_cast<sim::LinkId>(link);
      sched.link_faults.push_back(w);
    }
  }
  if (const JsonValue* arr = fr.Array("bank_faults")) {
    for (std::size_t i = 0; i < arr->arr.size(); ++i) {
      const JsonValue& e = arr->arr[i];
      std::string where = "bank_faults[" + std::to_string(i) + "]";
      if (e.type != JsonValue::Type::kObject) return fr.Fail(where + " must be an object");
      FieldReader wfr(e, where, err);
      BankFaultWindow w;
      std::int64_t mc = 0, bank = 0;
      std::string kind = "stall";
      bool ok = wfr.Int("mc", &mc) && wfr.Int("bank", &bank) &&
                wfr.Uint("start", &w.start) && wfr.Uint("end", &w.end) &&
                wfr.String("kind", &kind) && wfr.Finish() &&
                RequireWindow(wfr, w.start, w.end);
      if (!ok) return fr.Fail("invalid bank fault window");
      if (kind == "stall") {
        w.kind = BankFaultKind::kStall;
      } else if (kind == "nack") {
        w.kind = BankFaultKind::kNack;
      } else {
        return wfr.Fail("kind must be \"stall\" or \"nack\"") && false;
      }
      w.mc = static_cast<sim::McId>(mc);
      w.bank = static_cast<int>(bank);
      sched.bank_faults.push_back(w);
    }
  }
  if (const JsonValue* arr = fr.Array("mc_pressure")) {
    for (std::size_t i = 0; i < arr->arr.size(); ++i) {
      const JsonValue& e = arr->arr[i];
      std::string where = "mc_pressure[" + std::to_string(i) + "]";
      if (e.type != JsonValue::Type::kObject) return fr.Fail(where + " must be an object");
      FieldReader wfr(e, where, err);
      McPressureWindow w;
      std::int64_t mc = 0;
      bool ok = wfr.Int("mc", &mc) && wfr.Uint("start", &w.start) &&
                wfr.Uint("end", &w.end) && wfr.Uint("extra_delay", &w.extra_delay) &&
                wfr.Finish() && RequireWindow(wfr, w.start, w.end);
      if (!ok) return fr.Fail("invalid mc pressure window");
      w.mc = static_cast<sim::McId>(mc);
      sched.mc_pressure.push_back(w);
    }
  }
  if (const JsonValue* res = fr.Object("resilience")) {
    FieldReader rfr(*res, "resilience", err);
    std::int64_t retries = sched.resilience.max_retries;
    bool ok = rfr.Int("max_retries", &retries) &&
              rfr.Double("backoff_mult", &sched.resilience.backoff_mult) &&
              rfr.Uint("retransmit_delay", &sched.resilience.retransmit_delay) &&
              rfr.Uint("nack_backoff", &sched.resilience.nack_backoff) &&
              rfr.Finish();
    if (!ok) return fr.Fail("invalid resilience params");
    if (retries < 0) return rfr.Fail("max_retries must be non-negative") && false;
    if (sched.resilience.backoff_mult < 1.0) {
      return rfr.Fail("backoff_mult must be >= 1") && false;
    }
    // Zero would re-attempt in the same cycle forever (the injector decides
    // drop/NACK by window, not by attempt count).
    if (sched.resilience.retransmit_delay == 0) {
      return rfr.Fail("retransmit_delay must be positive") && false;
    }
    if (sched.resilience.nack_backoff == 0) {
      return rfr.Fail("nack_backoff must be positive") && false;
    }
    sched.resilience.max_retries = static_cast<int>(retries);
  }
  if (!fr.Finish()) return false;
  *out = std::move(sched);
  return true;
}

bool LoadSchedule(const std::string& arg, FaultSchedule* out, std::string* err) {
  std::string text = arg;
  // Anything that doesn't look like inline JSON is a file path.
  std::size_t first = text.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || text[first] != '{') {
    std::ifstream in(arg);
    if (!in) {
      if (err != nullptr) *err = "fault schedule: cannot open file '" + arg + "'";
      return false;
    }
    std::ostringstream os;
    os << in.rdbuf();
    text = os.str();
  }
  return ParseSchedule(text, out, err);
}

FaultSchedule MakeStorm(const StormSpec& spec) {
  FaultSchedule s;
  s.seed = spec.seed;
  s.resilience.max_retries = spec.max_retries;
  double intensity = std::clamp(spec.intensity, 0.0, 1.0);
  if (intensity == 0.0 || spec.horizon == 0) return s;
  // Derive everything from one seeded stream so the spec is the only input.
  sim::Rng rng(spec.seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  auto window = [&](sim::Cycle min_len) {
    sim::Cycle len = min_len + rng.NextBelow(spec.horizon / 4 + 1);
    sim::Cycle start = rng.NextBelow(spec.horizon);
    return std::pair<sim::Cycle, sim::Cycle>{start,
                                             std::min(start + len, spec.horizon)};
  };
  int n_links = static_cast<int>(std::ceil(intensity * spec.num_links * 0.25));
  for (int i = 0; i < n_links && spec.num_links > 0; ++i) {
    LinkFaultWindow w;
    w.link = static_cast<sim::LinkId>(rng.NextBelow(static_cast<std::uint64_t>(spec.num_links)));
    auto [start, end] = window(64);
    w.start = start;
    w.end = end;
    w.extra_latency = static_cast<sim::Cycle>(1 + rng.NextBelow(static_cast<std::uint64_t>(1 + intensity * 16)));
    // Cap drop probability below 1 so a dropped packet always eventually
    // clears its window (conservation never depends on the window ending).
    w.drop_prob = std::min(0.9, intensity * rng.NextDouble());
    s.link_faults.push_back(w);
  }
  int total_banks = spec.num_mcs * spec.banks_per_mc;
  int n_banks = static_cast<int>(std::ceil(intensity * total_banks * 0.125));
  for (int i = 0; i < n_banks && total_banks > 0; ++i) {
    BankFaultWindow w;
    std::uint64_t pick = rng.NextBelow(static_cast<std::uint64_t>(total_banks));
    w.mc = static_cast<sim::McId>(pick / static_cast<std::uint64_t>(spec.banks_per_mc));
    w.bank = static_cast<int>(pick % static_cast<std::uint64_t>(spec.banks_per_mc));
    auto [start, end] = window(128);
    w.start = start;
    w.end = end;
    w.kind = rng.NextBool(0.5) ? BankFaultKind::kStall : BankFaultKind::kNack;
    s.bank_faults.push_back(w);
  }
  int n_press = static_cast<int>(std::ceil(intensity * spec.num_mcs * 0.5));
  for (int i = 0; i < n_press && spec.num_mcs > 0; ++i) {
    McPressureWindow w;
    w.mc = static_cast<sim::McId>(rng.NextBelow(static_cast<std::uint64_t>(spec.num_mcs)));
    auto [start, end] = window(64);
    w.start = start;
    w.end = end;
    w.extra_delay = static_cast<sim::Cycle>(1 + rng.NextBelow(static_cast<std::uint64_t>(1 + intensity * 32)));
    s.mc_pressure.push_back(w);
  }
  return s;
}

}  // namespace ndc::fault
