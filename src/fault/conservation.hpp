#pragma once

// Request-conservation invariant: no request is ever lost under faults.
// Every issued unit of work must be accounted for as completed, degraded to
// the host core, or dropped-and-retried — never silently vanished. The
// checker is a pure function over counter snapshots; the NDC layer gathers
// the snapshot (src/fault cannot depend on src/ndc) and tests assert it
// after every fault storm.

#include <cstdint>
#include <string>
#include <vector>

namespace ndc::fault {

/// Counter snapshot taken after a run drains. All values are end-of-run
/// totals; the invariants below must hold exactly.
struct ConservationInputs {
  // Offload accounting (NDC machine).
  std::uint64_t offloads = 0;          ///< offloads issued
  std::uint64_t ndc_success = 0;       ///< offloads that computed near data
  std::uint64_t fallbacks = 0;         ///< offloads degraded to the host core
  // Core accounting.
  std::uint64_t cores_incomplete = 0;  ///< cores still waiting at end of run
  // NoC accounting.
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t packets_squashed = 0;  ///< consumed by an NDC computation
  std::uint64_t packets_dropped = 0;   ///< dropped by a link fault
  std::uint64_t packets_retransmitted = 0;
  // Memory-controller accounting.
  std::uint64_t mc_reads = 0;
  std::uint64_t mc_reads_done = 0;
  std::uint64_t mc_nacks = 0;
  std::uint64_t mc_nack_retries = 0;
  // Synchronization accounting (sync engines; all zero when sync never ran).
  std::uint64_t sync_acquires = 0;           ///< lock grants handed out
  std::uint64_t sync_releases = 0;           ///< lock releases serviced
  std::uint64_t sync_barrier_arrivals = 0;
  std::uint64_t sync_barrier_departures = 0;
  std::uint64_t sync_atomics_issued = 0;
  std::uint64_t sync_atomics_completed = 0;
};

/// Result of a conservation check: ok iff every invariant held; violations
/// lists each failed invariant in human-readable form.
struct ConservationReport {
  bool ok = true;
  std::vector<std::string> violations;

  std::string ToString() const;
};

/// Checks:
///   offloads       == ndc_success + fallbacks        (every offload resolves)
///   cores_incomplete == 0                            (every core finishes)
///   packets_sent   == delivered + squashed           (every packet lands)
///   dropped        == retransmitted                  (every drop is retried)
///   mc_reads       == mc_reads_done                  (every read completes)
///   mc_nacks       == mc_nack_retries                (every NACK re-enqueues)
///   sync_acquires  == sync_releases                  (every lock is released)
///   barrier_arrivals == barrier_departures           (no one parked forever)
///   atomics_issued == atomics_completed              (every atomic applies)
ConservationReport CheckConservation(const ConservationInputs& in);

}  // namespace ndc::fault
