#pragma once

// FaultInjector: the runtime evaluator of a FaultSchedule. One injector is
// built per simulation run; every probabilistic draw flows through its own
// seeded sim::Rng, and draws happen in deterministic event-execution order,
// so the same (schedule, workload, seed) triple always injects the same
// faults at the same cycles.
//
// The injector is consumed through plain std::function hooks on noc::Network
// and mem::MemCtrl (those modules never see fault types), and directly by the
// NDC machine for retry/backoff budgets. It also tallies every injection so
// bench_resilience can report what a run actually experienced.

#include <cstdint>

#include "fault/schedule.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace ndc::fault {

/// What a link traversal experiences at a given cycle.
struct LinkEffect {
  sim::Cycle extra_latency = 0;
  bool drop = false;
  sim::Cycle retransmit_delay = 0;  ///< valid when drop is true
};

/// What a faulted bank does to its next FR-FCFS pick.
enum class BankEffect : std::uint8_t {
  kHealthy = 0,
  kStall,  ///< issue nothing; re-check at StallEnd()
  kNack,   ///< reject the pick; re-enqueue after nack backoff
};

/// Running tally of injected faults (for degradation-curve reports).
struct InjectionCounts {
  std::uint64_t link_delays = 0;
  std::uint64_t link_drops = 0;
  std::uint64_t bank_stalls = 0;
  std::uint64_t bank_nacks = 0;
  std::uint64_t mc_pressure_hits = 0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSchedule schedule)
      : schedule_(std::move(schedule)), rng_(schedule_.seed) {}

  const FaultSchedule& schedule() const { return schedule_; }
  const ResilienceParams& resilience() const { return schedule_.resilience; }
  const InjectionCounts& counts() const { return counts_; }

  /// Evaluates link-fault windows for a packet about to traverse `link`.
  /// Draws the RNG only when a window with drop_prob > 0 matches, so runs
  /// whose schedules never match consume no randomness.
  LinkEffect OnLinkTraverse(sim::LinkId link, sim::Cycle now) {
    LinkEffect e;
    for (const LinkFaultWindow& w : schedule_.link_faults) {
      if (w.link != link || now < w.start || now >= w.end) continue;
      e.extra_latency += w.extra_latency;
      if (!e.drop && w.drop_prob > 0.0 && rng_.NextBool(w.drop_prob)) {
        e.drop = true;
        e.retransmit_delay = schedule_.resilience.retransmit_delay;
      }
    }
    if (e.extra_latency > 0) ++counts_.link_delays;
    if (e.drop) ++counts_.link_drops;
    return e;
  }

  /// Evaluates bank-fault windows for an idle bank the controller is about
  /// to schedule. A stall window dominates a nack window if both match.
  BankEffect OnBankSchedule(sim::McId mc, int bank, sim::Cycle now) {
    BankEffect e = BankEffect::kHealthy;
    for (const BankFaultWindow& w : schedule_.bank_faults) {
      if (w.mc != mc || w.bank != bank || now < w.start || now >= w.end) continue;
      if (w.kind == BankFaultKind::kStall) {
        e = BankEffect::kStall;
        break;
      }
      e = BankEffect::kNack;
    }
    if (e == BankEffect::kStall) ++counts_.bank_stalls;
    if (e == BankEffect::kNack) ++counts_.bank_nacks;
    return e;
  }

  /// End of the latest stall window covering (mc, bank, now); callers
  /// schedule their retry wake there. Only meaningful after kStall.
  sim::Cycle StallEnd(sim::McId mc, int bank, sim::Cycle now) const {
    sim::Cycle end = now + 1;
    for (const BankFaultWindow& w : schedule_.bank_faults) {
      if (w.mc != mc || w.bank != bank || now < w.start || now >= w.end) continue;
      if (w.kind == BankFaultKind::kStall && w.end > end) end = w.end;
    }
    return end;
  }

  sim::Cycle nack_backoff() const { return schedule_.resilience.nack_backoff; }

  /// Extra delay a request entering controller `mc` pays right now.
  sim::Cycle OnMcEnqueue(sim::McId mc, sim::Cycle now) {
    sim::Cycle delay = 0;
    for (const McPressureWindow& w : schedule_.mc_pressure) {
      if (w.mc != mc || now < w.start || now >= w.end) continue;
      delay += w.extra_delay;
    }
    if (delay > 0) ++counts_.mc_pressure_hits;
    return delay;
  }

 private:
  FaultSchedule schedule_;
  sim::Rng rng_;
  InjectionCounts counts_;
};

}  // namespace ndc::fault
