#pragma once

// Fault-injection schedules. A FaultSchedule is a fully declarative,
// seed-reproducible description of every fault a run will experience:
// NoC link degradation/outage windows, DRAM bank fault windows (stall or
// NACK), and memory-controller queue-pressure spikes, plus the resilience
// parameters (retry/backoff budgets) the NDC runtime applies under it.
// Schedules parse from JSON (file or inline text) so every faulted run is
// replayable from its command line, and canonicalize to a stable string
// that the harness folds into result-cache keys. See DESIGN.md §11.
//
// Layering: src/fault sits directly above src/sim (alongside src/noc and
// src/mem, which consume injector decisions through plain std::function
// hooks). It deliberately does not use harness::json — the harness links
// against this module, not the other way around — so the schedule grammar
// is parsed by the small self-contained reader in schedule.cpp.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace ndc::fault {

/// One NoC link degradation/outage window: while `start <= now < end`,
/// packets traversing `link` pay `extra_latency` cycles and are dropped
/// (forcing a retransmit) with probability `drop_prob`.
struct LinkFaultWindow {
  sim::LinkId link = 0;
  sim::Cycle start = 0;
  sim::Cycle end = 0;              ///< exclusive
  sim::Cycle extra_latency = 0;
  double drop_prob = 0.0;          ///< [0, 1]
};

/// What a faulted DRAM bank does to requests during its window.
enum class BankFaultKind : std::uint8_t {
  kStall = 0,  ///< the bank issues nothing until the window ends
  kNack,       ///< the controller rejects the pick; it re-enqueues after backoff
};

/// One DRAM bank fault window on bank `bank` of controller `mc`.
struct BankFaultWindow {
  sim::McId mc = 0;
  int bank = 0;
  sim::Cycle start = 0;
  sim::Cycle end = 0;  ///< exclusive
  BankFaultKind kind = BankFaultKind::kStall;
};

/// One MC queue-pressure spike: requests arriving at controller `mc`
/// during the window wait `extra_delay` cycles before entering the
/// transaction queue (modeling upstream queue backpressure).
struct McPressureWindow {
  sim::McId mc = 0;
  sim::Cycle start = 0;
  sim::Cycle end = 0;  ///< exclusive
  sim::Cycle extra_delay = 0;
};

/// Retry/timeout/degrade budgets the resilient NDC runtime applies.
/// The defaults are inert: with max_retries == 0 the offload state machine
/// is bit-identical to the fault-free runtime (timeout -> immediate
/// fallback), which is what keeps the figure goldens frozen.
struct ResilienceParams {
  /// Extra wait windows an offload may arm after its first timeout before
  /// degrading to host-core execution.
  int max_retries = 0;
  /// Each re-armed wait window is the previous one times this factor.
  double backoff_mult = 2.0;
  /// Cycles a dropped NoC packet waits before retransmitting on the link.
  sim::Cycle retransmit_delay = 32;
  /// Cycles a NACKed DRAM request waits before re-entering the queue.
  sim::Cycle nack_backoff = 64;
};

/// A complete, replayable fault plan for one simulation run.
struct FaultSchedule {
  std::uint64_t seed = 1;  ///< drives every probabilistic draw (drops)
  std::vector<LinkFaultWindow> link_faults;
  std::vector<BankFaultWindow> bank_faults;
  std::vector<McPressureWindow> mc_pressure;
  ResilienceParams resilience;

  /// True when the schedule injects nothing and enables no retries — a run
  /// under an empty schedule must be bit-identical to an unfaulted run.
  bool Empty() const {
    return link_faults.empty() && bank_faults.empty() && mc_pressure.empty() &&
           resilience.max_retries == 0;
  }

  /// Deterministic canonical serialization (cache-key input; also the
  /// determinism surface asserted by tests: equal schedules <=> equal
  /// canonical strings).
  std::string CanonicalString() const;

  /// Serializes to the same JSON grammar Parse() accepts (round-trips).
  std::string ToJson() const;

  /// Returns a copy with every fault intensity scaled by `factor`:
  /// drop probabilities (clamped to 1), link extra latencies, and MC
  /// pressure delays multiply; windows and kinds are unchanged. Factor 0
  /// yields a schedule whose injectors do nothing (resilience retained).
  FaultSchedule Scaled(double factor) const;
};

const char* BankFaultKindName(BankFaultKind k);

/// Parses the JSON schedule grammar:
/// {
///   "seed": 7,
///   "link_faults":  [{"link":3,"start":100,"end":900,"extra_latency":8,"drop_prob":0.25}],
///   "bank_faults":  [{"mc":0,"bank":2,"start":0,"end":5000,"kind":"stall"|"nack"}],
///   "mc_pressure":  [{"mc":1,"start":200,"end":400,"extra_delay":16}],
///   "resilience":   {"max_retries":2,"backoff_mult":2.0,
///                    "retransmit_delay":32,"nack_backoff":64}
/// }
/// Every key is optional; unknown keys are errors (a typo must not silently
/// produce an un-faulted run). Returns false and sets `err` on failure.
bool ParseSchedule(const std::string& text, FaultSchedule* out, std::string* err = nullptr);

/// Loads `arg` as a schedule: text starting with '{' parses inline,
/// anything else is read as a file path first. (The ndc-sweep/bench
/// `--faults=` argument accepts both forms.)
bool LoadSchedule(const std::string& arg, FaultSchedule* out, std::string* err = nullptr);

/// Parameters for the deterministic storm generator below.
struct StormSpec {
  int num_links = 0;        ///< mesh link-slot count (noc::Mesh::num_link_slots)
  int num_mcs = 0;
  int banks_per_mc = 0;
  sim::Cycle horizon = 0;   ///< faults fall inside [0, horizon)
  /// Intensity in [0, 1]: scales how many components fault and how hard.
  double intensity = 0.0;
  std::uint64_t seed = 1;
  int max_retries = 2;      ///< resilience budget the storm runs under
};

/// Deterministically generates a random "fault storm" schedule: a sample of
/// links, banks, and controllers each get one fault window whose position,
/// length, and severity are drawn from a seeded sim::Rng. Same spec (seed
/// included) always yields the identical schedule; bench_resilience sweeps
/// `intensity` with everything else fixed to trace a degradation curve.
FaultSchedule MakeStorm(const StormSpec& spec);

}  // namespace ndc::fault
