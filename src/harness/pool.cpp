#include "harness/pool.hpp"

#include <algorithm>

namespace ndc::harness {

WorkStealingPool::WorkStealingPool(int num_threads) {
  std::size_t n = static_cast<std::size_t>(std::max(1, num_threads));
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkStealingPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  std::lock_guard<std::mutex> run_lock(run_mu_);  // one batch at a time
  // Account for the whole batch before any task becomes visible, so a
  // worker lingering in its drain loop from the previous batch cannot pop a
  // new task and drive pending_ below zero.
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ = tasks.size();
  }
  // Deal round-robin so every worker starts with a local run of tasks;
  // imbalance (cells vary widely in cost) is then evened out by stealing.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Queue& q = *queues_[i % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back(std::move(tasks[i]));
    queued_.fetch_add(1, std::memory_order_release);
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool WorkStealingPool::PopOrSteal(std::size_t self, std::function<void()>* out) {
  {
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.back());
      q.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  for (std::size_t off = 1; off < queues_.size(); ++off) {
    Queue& q = *queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *out = std::move(q.tasks.front());  // steal the oldest: opposite end
      q.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  return false;
}

void WorkStealingPool::WorkerLoop(std::size_t self) {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || queued_.load(std::memory_order_acquire) > 0; });
      if (stop_) return;
    }
    std::function<void()> task;
    while (PopOrSteal(self, &task)) {
      task();
      task = nullptr;
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
    // Nothing left to pop or steal: tasks are only enqueued at batch-submit
    // time, so the remainder of this batch is running on other workers.
  }
}

void WorkStealingPool::ParallelFor(int jobs, std::size_t n,
                                   const std::function<void(std::size_t)>& fn) {
  if (jobs <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  WorkStealingPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n)));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([&fn, i] { fn(i); });
  }
  pool.Run(std::move(tasks));
}

}  // namespace ndc::harness
