// Record-based figures: these consume the full per-candidate observation
// records (Section 4) or replay accesses through functional caches, so
// their per-workload artifacts are too large for the scalar result cache.
// They still fan out one workload per task on the work-stealing pool; each
// task reduces its records to the small per-workload aggregate the renderer
// needs, so peak memory is bounded by the number of jobs.

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "analysis/cme.hpp"
#include "compiler/codegen.hpp"
#include "harness/figures.hpp"
#include "harness/pool.hpp"
#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "ndc/record.hpp"
#include "sim/stats.hpp"

namespace ndc::harness {
namespace {

std::vector<std::string> FilteredWorkloads(const FigureOptions& opt) {
  std::vector<std::string> out;
  for (const std::string& name : workloads::BenchmarkNames()) {
    if (opt.only.empty() || name == opt.only) out.push_back(name);
  }
  return out;
}

void PrintHeader(const char* what, const FigureOptions& opt) {
  std::printf("# %s  (scale=%s, Table-1 configuration)\n", what, ScaleName(opt.scale));
}

SweepSummary MakeRecordSummary(const char* figure, const FigureOptions& opt,
                               std::size_t cells,
                               std::chrono::steady_clock::time_point start) {
  SweepSummary s;
  s.figure = figure;
  s.jobs = opt.jobs;
  s.cells = cells;
  s.sim_invocations = cells;  // record figures bypass the scalar cache
  s.elapsed_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return s;
}

}  // namespace

// ---------------------------------------------------------------- fig02 ---

SweepSummary RunFig02(const FigureOptions& opt) {
  auto start = std::chrono::steady_clock::now();
  PrintHeader("Figure 2: arrival-window CDF per NDC location", opt);

  const std::array<arch::Loc, 4> locs = {arch::Loc::kLinkBuffer, arch::Loc::kCacheCtrl,
                                         arch::Loc::kMemCtrl, arch::Loc::kMemBank};
  const char* panel[4] = {"(a) link buffer", "(b) L2 controller", "(c) memory controller",
                          "(d) main memory"};

  std::vector<std::string> names = FilteredWorkloads(opt);
  std::vector<std::array<sim::BucketHistogram, 4>> hists(names.size());
  WorkStealingPool::ParallelFor(opt.jobs, names.size(), [&](std::size_t b) {
    arch::ArchConfig cfg;
    metrics::Experiment exp(names[b], opt.scale, cfg, opt.seed);
    const auto& obs = exp.Observe();
    std::array<sim::BucketHistogram, 4> h;
    obs.records->ForEach([&](const runtime::InstanceRecord& rec) {
      if (rec.local_l1) return;
      for (std::size_t l = 0; l < locs.size(); ++l) {
        const runtime::LocObs& o = rec.at(locs[l]);
        if (!o.feasible) continue;  // the location can never serve this pair
        h[l].Add(o.Window());       // kNeverCycle falls into 500+
      }
    });
    hists[b] = std::move(h);
  });

  for (std::size_t l = 0; l < locs.size(); ++l) {
    std::printf("\n%s — cumulative %% of windows <= bucket edge (paper truncates at 50%%)\n",
                panel[l]);
    std::printf("%-10s %6s %6s %6s %6s %6s %6s %6s\n", "benchmark", "<=1", "<=10", "<=20",
                "<=50", "<=100", "<=500", "500+");
    for (std::size_t b = 0; b < names.size(); ++b) {
      const sim::BucketHistogram& h = hists[b][l];
      std::printf("%-10s", names[b].c_str());
      for (std::size_t e = 0; e < 6; ++e) {
        std::printf(" %5.1f%%", h.CumulativeFraction(e) * 100.0);
      }
      std::printf(" %5.1f%%\n", h.Fraction(6) * 100.0);
    }
  }
  std::printf("\npaper example: swim <=20cy at cache controller ~14.3%%, at MC ~7.7%%;\n"
              "applu <=20cy at cache ~26.7%% vs raytrace ~8.6%% — windows vary widely by\n"
              "benchmark and location.\n");
  return MakeRecordSummary("fig02", opt, names.size(), start);
}

// ---------------------------------------------------------------- fig03 ---

SweepSummary RunFig03(const FigureOptions& opt) {
  auto start = std::chrono::steady_clock::now();
  PrintHeader("Figure 3: breakeven points vs arrival windows", opt);

  const std::array<arch::Loc, 4> locs = {arch::Loc::kLinkBuffer, arch::Loc::kCacheCtrl,
                                         arch::Loc::kMemCtrl, arch::Loc::kMemBank};
  arch::ArchConfig cfg;
  noc::Mesh mesh(cfg.mesh_width, cfg.mesh_height);

  struct PerWorkload {
    std::array<sim::BucketHistogram, 4> window;
    std::array<sim::BucketHistogram, 4> breakeven;
  };
  std::vector<std::string> names = FilteredWorkloads(opt);
  std::vector<PerWorkload> parts(names.size());
  WorkStealingPool::ParallelFor(opt.jobs, names.size(), [&](std::size_t b) {
    metrics::Experiment exp(names[b], opt.scale, cfg, opt.seed);
    const auto& obs = exp.Observe();
    PerWorkload& p = parts[b];
    obs.records->ForEach([&](const runtime::InstanceRecord& rec) {
      if (rec.local_l1) return;
      for (std::size_t l = 0; l < locs.size(); ++l) {
        const runtime::LocObs& o = rec.at(locs[l]);
        if (!o.feasible) continue;
        p.window[l].Add(o.Window());
        sim::Cycle ret = runtime::ResultReturnLatency(mesh, cfg.noc, o.node, rec.core);
        p.breakeven[l].Add(runtime::BreakevenPoint(rec, locs[l], 1, ret));
      }
    });
  });
  // Histogram counts commute, so merging per-workload parts in name order
  // reproduces the serial accumulation exactly.
  std::array<sim::BucketHistogram, 4> window_h;
  std::array<sim::BucketHistogram, 4> breakeven_h;
  for (const PerWorkload& p : parts) {
    for (std::size_t l = 0; l < locs.size(); ++l) {
      window_h[l].MergeFrom(p.window[l]);
      breakeven_h[l].MergeFrom(p.breakeven[l]);
    }
  }

  const char* loc_names[4] = {"link buffer", "cache controller", "memory controller",
                              "main memory"};
  std::printf("\n%% of samples per bucket (paper Figure 3 shape: breakevens skew low)\n");
  std::printf("%-18s %-10s %6s %6s %6s %6s %6s %6s %6s\n", "location", "metric", "<=1",
              "<=10", "<=20", "<=50", "<=100", "<=500", "500+");
  for (std::size_t l = 0; l < locs.size(); ++l) {
    for (int which = 0; which < 2; ++which) {
      const sim::BucketHistogram& h = which == 0 ? window_h[l] : breakeven_h[l];
      std::printf("%-18s %-10s", which == 0 ? loc_names[l] : "",
                  which == 0 ? "window" : "breakeven");
      for (std::size_t e = 0; e < 7; ++e) std::printf(" %5.1f%%", h.Fraction(e) * 100.0);
      std::printf("\n");
    }
  }

  std::printf("\nconclusion check: in every location, the fraction of breakevens <= 20cy "
              "should exceed the fraction of windows <= 20cy\n");
  for (std::size_t l = 0; l < locs.size(); ++l) {
    std::printf("  %-18s windows<=20: %5.1f%%   breakevens<=20: %5.1f%%\n", loc_names[l],
                window_h[l].CumulativeFraction(2) * 100.0,
                breakeven_h[l].CumulativeFraction(2) * 100.0);
  }
  return MakeRecordSummary("fig03", opt, names.size(), start);
}

// ---------------------------------------------------------------- fig05 ---

namespace {

// Consecutive windows of the hottest (core, pc) pair at its first feasible
// location.
std::vector<sim::Cycle> WindowTrace(const std::string& name, workloads::Scale scale,
                                    std::uint64_t seed, int want) {
  arch::ArchConfig cfg;
  metrics::Experiment exp(name, scale, cfg, seed);
  const auto& obs = exp.Observe();

  // (core, pc) -> sorted (compute_idx, window) samples
  std::map<std::pair<sim::NodeId, std::uint32_t>,
           std::vector<std::pair<std::uint32_t, sim::Cycle>>>
      by_pc;
  obs.records->ForEach([&](const runtime::InstanceRecord& rec) {
    if (rec.local_l1) return;
    for (arch::Loc loc : runtime::kTrialOrder) {
      const runtime::LocObs& o = rec.at(loc);
      if (!o.feasible) continue;
      by_pc[{rec.core, rec.pc}].push_back({rec.compute_idx, o.Window()});
      break;
    }
  });
  std::vector<std::pair<std::uint32_t, sim::Cycle>>* best = nullptr;
  for (auto& [key, v] : by_pc) {
    if (best == nullptr || v.size() > best->size()) best = &v;
  }
  std::vector<sim::Cycle> out;
  if (best == nullptr) return out;
  std::sort(best->begin(), best->end());
  for (const auto& [idx, w] : *best) {
    out.push_back(w);
    if (static_cast<int>(out.size()) >= want) break;
  }
  return out;
}

}  // namespace

SweepSummary RunFig05(const FigureOptions& opt) {
  auto start = std::chrono::steady_clock::now();
  PrintHeader(
      "Figure 5: 30 consecutive arrival windows of one instruction (ocean, radiosity)",
      opt);

  const std::array<const char*, 2> names = {"ocean", "radiosity"};
  std::array<std::vector<sim::Cycle>, 2> traces;
  WorkStealingPool::ParallelFor(opt.jobs, names.size(), [&](std::size_t i) {
    traces[i] = WindowTrace(names[i], opt.scale, opt.seed, 30);
  });

  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::vector<sim::Cycle>& trace = traces[i];
    std::printf("\n%s (window cycles per consecutive execution; '-' = never met):\n  ",
                names[i]);
    double mean = 0;
    int n = 0;
    for (sim::Cycle w : trace) {
      if (w == sim::kNeverCycle) {
        std::printf("  -");
      } else {
        std::printf(" %3llu", static_cast<unsigned long long>(w));
        mean += static_cast<double>(w);
        ++n;
      }
    }
    // Successive-difference variability: high values = hard to predict.
    double var = 0;
    int dn = 0;
    for (std::size_t j = 1; j < trace.size(); ++j) {
      if (trace[j] == sim::kNeverCycle || trace[j - 1] == sim::kNeverCycle) continue;
      double d = static_cast<double>(trace[j]) - static_cast<double>(trace[j - 1]);
      var += d * d;
      ++dn;
    }
    std::printf("\n  mean=%.1f, successive-diff RMS=%.1f (paper: windows fluctuate "
                "unpredictably; Last-Wait mispredicts)\n",
                n ? mean / n : 0.0, dn ? std::sqrt(var / dn) : 0.0);
  }
  return MakeRecordSummary("fig05", opt, names.size(), start);
}

// ---------------------------------------------------------------- tab02 ---

namespace {

struct Accuracy {
  std::uint64_t l1_correct = 0, l1_total = 0;
  std::uint64_t l2_correct = 0, l2_total = 0;
  double L1() const {
    return l1_total ? 100.0 * l1_correct / static_cast<double>(l1_total) : 0;
  }
  double L2() const {
    return l2_total ? 100.0 * l2_correct / static_cast<double>(l2_total) : 0;
  }
};

// Replays every memory operand access through functional caches (private L1
// per core, shared NUCA L2 banks, cores interleaved round-robin as in the
// parallel execution) and compares against the CME's per-access prediction.
Accuracy EvaluateCme(const std::string& name, workloads::Scale scale, std::uint64_t seed) {
  arch::ArchConfig cfg;
  ir::Program prog = workloads::BuildWorkload(name, scale, seed);
  mem::AddressMap amap = cfg.MakeAddressMap();
  int cores = cfg.num_nodes();

  std::vector<std::unique_ptr<mem::Cache>> l1;
  std::vector<std::unique_ptr<mem::Cache>> l2;
  for (int i = 0; i < cores; ++i) {
    l1.push_back(std::make_unique<mem::Cache>(cfg.l1));
    l2.push_back(std::make_unique<mem::Cache>(cfg.l2));
  }

  Accuracy acc;
  std::set<int> warm;
  for (const ir::LoopNest& nest : prog.nests) {
    analysis::CmePredictor cme(prog, nest, analysis::CacheSpec::From(cfg.l1),
                               analysis::CacheSpec::From(cfg.l2), cores, warm);
    // Interleave cores' iteration streams round-robin, approximating the
    // parallel execution the estimator cannot see (a known error source).
    std::vector<std::vector<ir::IntVec>> per_core(static_cast<std::size_t>(cores));
    nest.ForEachIteration([&](const ir::IntVec& iter) {
      per_core[static_cast<std::size_t>(compiler::CoreForIteration(nest, iter, cores))]
          .push_back(iter);
    });
    std::size_t longest = 0;
    for (const auto& v : per_core) longest = std::max(longest, v.size());
    for (std::size_t j = 0; j < longest; ++j) {
      for (int c = 0; c < cores; ++c) {
        const auto& iters = per_core[static_cast<std::size_t>(c)];
        if (j >= iters.size()) continue;
        const ir::IntVec& iter = iters[j];
        for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
          const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
          for (auto sel : {analysis::OperandSel::kRhs0, analysis::OperandSel::kRhs1}) {
            const ir::Operand& op = analysis::SelectOperand(st, sel);
            if (!op.IsMemory()) continue;
            auto addr = prog.ResolveAddr(op, iter);
            if (!addr.has_value()) continue;
            bool pred_l1_miss = cme.PredictMissL1(s, sel, iter);
            bool actual_l1_miss = !l1[static_cast<std::size_t>(c)]->Access(*addr);
            acc.l1_correct += pred_l1_miss == actual_l1_miss;
            ++acc.l1_total;
            if (actual_l1_miss) {
              l1[static_cast<std::size_t>(c)]->Fill(*addr);
              sim::NodeId home = amap.HomeBank(*addr);
              bool pred_l2_miss = cme.PredictMissL2(s, sel, iter);
              bool actual_l2_miss = !l2[static_cast<std::size_t>(home)]->Access(*addr);
              acc.l2_correct += pred_l2_miss == actual_l2_miss;
              ++acc.l2_total;
              if (actual_l2_miss) l2[static_cast<std::size_t>(home)]->Fill(*addr);
            }
          }
        }
      }
    }
    for (const ir::Stmt& st : nest.body) {
      for (const ir::Operand* o : {&st.rhs0, &st.rhs1, &st.lhs}) {
        if (!o->IsMemory()) continue;
        warm.insert(o->kind == ir::Operand::Kind::kIndirect ? o->target_array
                                                            : o->access.array);
      }
    }
  }
  return acc;
}

}  // namespace

SweepSummary RunTab02(const FigureOptions& opt) {
  auto start = std::chrono::steady_clock::now();
  PrintHeader("Table 2: CME hit/miss estimation accuracy", opt);

  std::vector<std::string> names = FilteredWorkloads(opt);
  std::vector<Accuracy> accs(names.size());
  WorkStealingPool::ParallelFor(opt.jobs, names.size(), [&](std::size_t b) {
    accs[b] = EvaluateCme(names[b], opt.scale, opt.seed);
  });

  std::printf("%-10s %8s %8s\n", "benchmark", "L1", "L2");
  double l1_sum = 0, l2_sum = 0;
  int n = 0;
  for (std::size_t b = 0; b < names.size(); ++b) {
    std::printf("%-10s %7.1f%% %7.1f%%\n", names[b].c_str(), accs[b].L1(), accs[b].L2());
    l1_sum += accs[b].L1();
    l2_sum += accs[b].L2();
    ++n;
  }
  if (n > 0) std::printf("%-10s %7.1f%% %7.1f%%\n", "average", l1_sum / n, l2_sum / n);
  std::printf("\npaper averages: L1 81.1%%, L2 72.9%% (misses dominated by effects the\n"
              "static estimator cannot see: cross-thread interleaving at the shared L2,\n"
              "irregular indirection, and conflict-model approximations)\n");
  return MakeRecordSummary("tab02", opt, names.size(), start);
}

}  // namespace ndc::harness
