#pragma once

// Persistent on-disk result cache: one JSONL file (results.jsonl) under a
// cache directory, one line per measured cell, keyed by the cell's content
// hash (workload + scheme + scale + full ArchConfig + kCacheVersion). A
// second bench binary — or a re-run — that needs an already-measured cell
// reads it back instead of re-invoking the simulator.
//
// Invalidation: the key bakes in kCacheVersion (src/harness/cell.hpp); bump
// it when simulator semantics change, or simply delete the cache directory.
// Lines that fail to parse are skipped (counted in load_errors()), so a
// truncated tail from a killed run only costs re-measuring those cells.

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "harness/cell.hpp"

namespace ndc::harness {

class ResultCache {
 public:
  /// Opens (creating if needed) `dir`/results.jsonl and loads every valid
  /// entry. A cache that fails to open stays usable as a pure in-memory
  /// map (ok() returns false; nothing persists).
  explicit ResultCache(const std::string& dir);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool ok() const { return out_ != nullptr; }
  const std::string& path() const { return path_; }
  std::size_t size() const;
  std::size_t load_errors() const { return load_errors_; }

  /// Thread-safe lookup; fills `out` (with from_cache set) on a hit.
  bool Lookup(const CellSpec& spec, CellResult* out) const;

  /// Thread-safe insert: records in memory and appends one JSONL line
  /// (flushed immediately, so concurrent/killed runs lose at most the line
  /// being written).
  void Insert(const CellSpec& spec, const CellResult& result);

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::map<std::string, CellResult> entries_;
  std::size_t load_errors_ = 0;
  std::FILE* out_ = nullptr;
};

}  // namespace ndc::harness
