#pragma once

// A small work-stealing thread pool for fanning independent simulation
// cells out across cores. Tasks are dealt round-robin onto per-worker
// deques; a worker pops from the back of its own deque and, when empty,
// steals from the front of a victim's. Simulation cells are coarse
// (milliseconds to seconds), so the deques use plain mutexes rather than a
// lock-free Chase-Lev structure — contention is negligible at this grain.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ndc::harness {

class WorkStealingPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1). Workers idle until a
  /// batch is submitted via Run().
  explicit WorkStealingPool(int num_threads);
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Executes all tasks and blocks until every one has finished. Tasks may
  /// run on any worker in any order; callers needing a deterministic result
  /// order must index into a pre-sized output (tasks receive no ordering
  /// guarantees). Reentrant Run() calls from inside a task are not allowed.
  void Run(std::vector<std::function<void()>> tasks);

  /// Convenience: runs fn(0..n-1) on a transient pool of `jobs` workers
  /// when jobs > 1, or inline (in index order) when jobs <= 1.
  static void ParallelFor(int jobs, std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(std::size_t self);
  bool PopOrSteal(std::size_t self, std::function<void()>* out);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex run_mu_;                 ///< serializes concurrent Run() calls
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< wakes workers on a new batch / stop
  std::condition_variable done_cv_;   ///< wakes Run() when the batch drains
  std::size_t pending_ = 0;           ///< tasks not yet finished
  std::atomic<std::size_t> queued_{0};  ///< tasks still sitting in deques
  bool stop_ = false;
};

}  // namespace ndc::harness
