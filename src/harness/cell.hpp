#pragma once

// One sweep cell = one (workload, scheme, scale, configuration) simulation.
// A cell is fully self-contained: it builds its own metrics::Experiment from
// a deterministic seed, so cells can run on any thread in any order and
// still produce results byte-identical to a serial run.

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "arch/config.hpp"
#include "fault/schedule.hpp"
#include "harness/json.hpp"
#include "metrics/experiment.hpp"
#include "obs/bottleneck.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "workloads/workloads.hpp"

namespace ndc::harness {

/// Phase-window width (cycles) used by --classify when none is given:
/// coarse enough that test-scale runs still land several windows, fine
/// enough that full-scale phase changes stay visible.
inline constexpr std::uint64_t kDefaultClassifyWindow = 4096;

/// Folded into every cache key. Bump whenever simulator, compiler, or
/// workload-generator semantics change in a way that alters measured
/// numbers: entries keyed with the old version then miss (and are
/// re-measured) instead of silently serving stale results.
inline constexpr const char* kCacheVersion = "ndc-harness-1";

const char* ScaleName(workloads::Scale s);

struct CellSpec {
  std::string workload;
  workloads::Scale scale = workloads::Scale::kSmall;
  std::uint64_t seed = 1;
  metrics::Scheme scheme = metrics::Scheme::kBaseline;
  /// Compile with Mode::kCoarseGrain instead of the scheme's mode
  /// (Section 5.4 mapping-granularity ablation).
  bool coarse_grain = false;
  // Compiled schemes only (forwarded into CompileOptions):
  bool allow_reroute = true;
  std::uint8_t control_register = arch::kAllLocs;
  /// Fully resolved configuration (any figure variant already applied).
  arch::ArchConfig cfg;
  /// Fault schedule the measured run executes under (default: empty =
  /// fault-free). Folded into the cache key only when non-empty, so every
  /// pre-fault cache entry keeps its key.
  fault::FaultSchedule faults;
  /// Simulation-thread count the cell's runs execute with. 1 (the default)
  /// is the sequential engine; >= 2 enables conservative-window sharding on
  /// eligible runs. Folded into the cache key only when != 1 — the sharded
  /// engine is a different same-cycle tie-break schedule, so its numbers
  /// must never be served from (or poison) a sequential cell's cache entry,
  /// while every existing entry keeps its historical key.
  int sim_threads = 1;
  /// Display label for configuration variants ("" = Table-1 defaults).
  /// Deliberately NOT part of the cache key: two figures probing the same
  /// resolved configuration under different labels share one cache entry.
  std::string variant;

  /// Scheme column label ("Oracle", "Algorithm-1", "coarse", ...).
  std::string SchemeLabel() const;

  /// Canonical serialization of every semantically relevant field
  /// (including the full ArchConfig); the cache-key hash input.
  std::string CanonicalString() const;

  /// 16-hex-digit FNV-1a of CanonicalString() + kCacheVersion.
  std::string Key() const;
};

/// The scalar results of one cell — the subset of runtime::RunResult and
/// compiler::CompileReport every figure renders from, in a form that
/// round-trips through the JSONL cache.
struct CellResult {
  std::uint64_t makespan = 0;
  std::uint64_t baseline_makespan = 0;  ///< same workload/cfg, conventional

  std::uint64_t l1_hits = 0, l1_misses = 0;
  std::uint64_t l2_hits = 0, l2_misses = 0;

  std::uint64_t candidates = 0, local_l1_skips = 0, offloads = 0;
  std::uint64_t ndc_success = 0, fallbacks = 0;
  std::array<std::uint64_t, arch::kNumLocs> ndc_at_loc{};

  // Compiler report (compiled schemes; zero otherwise).
  std::uint64_t chains = 0, planned = 0, reuse_skips = 0;
  std::uint64_t legality_failures = 0, gating_failures = 0, transforms = 0;

  /// Full merged component counters (sim::StatSet contents).
  std::map<std::string, std::uint64_t> stats;

  bool from_cache = false;  ///< set by the sweep engine; not serialized

  /// Recomputed from the two makespans (never serialized, so cached and
  /// fresh cells agree bit-for-bit).
  double ImprovementPct() const;
  double L1MissRate() const;
  double L2MissRate() const;
  std::uint64_t Stat(const std::string& name) const;

  json::Value ToJson() const;
  static bool FromJson(const json::Value& v, CellResult* out);

  bool operator==(const CellResult& o) const;
};

/// Executes the cell: baseline run + the scheme's run (plus the observation
/// run where the scheme needs a profile). Thread-safe with respect to other
/// cells — the simulator has no global mutable state.
CellResult RunCell(const CellSpec& spec);

/// Re-simulates the cell with an observation bundle attached and returns a
/// JSON summary: per-stage latency aggregates, request counts, and the NDC
/// decision/outcome tallies. Used by `ndc-sweep --export-obs`. With
/// NDC_OBS=OFF the summary only records that observation is compiled out.
///
/// `classify_window` > 0 additionally enables the phase-window sampler at
/// that width and appends a "classification" object: bottleneck label, the
/// full raw + derived signal vector, the thresholds classified under, and
/// the per-window signal series. 0 (the default) leaves the sampler off and
/// the summary byte-identical to pre-classification output.
json::Value RunCellObsSummary(const CellSpec& spec, std::uint64_t sample_period = 1,
                              std::uint64_t classify_window = 0);

/// Derives the utilization-signal vector of a finished run: fills an
/// obs::MachineShape from `cfg` (normalizing by the directed in-mesh link
/// count, not the edge-padded slot count), reads the touched-only counters
/// out of `stats`, and — when `reg` is non-null — refines the hottest-link
/// utilization from the registry's per-link "noc.link.<i>/busy_cycles"
/// counters.
obs::UtilizationSignals ComputeRunSignals(const sim::StatSet& stats,
                                          std::uint64_t makespan,
                                          const arch::ArchConfig& cfg,
                                          const obs::Registry* reg);

/// Renders the classification report shared by every surface that publishes
/// a label (--export-obs cells, ndc-classify): label + thresholds + raw and
/// derived signals + the sampler's per-window series. Byte-stable: derived
/// fractions are fixed-precision strings, never free-form doubles.
json::Value ClassificationJson(const obs::UtilizationSignals& sig,
                               const obs::WindowSampler& sampler);

/// FNV-1a 64-bit (stable across platforms/runs; used for cache keys).
std::uint64_t Fnv1a(const std::string& s);

}  // namespace ndc::harness
