#pragma once

// The sweep engine: fans a declarative SweepSpec (a list of fully resolved
// cells) out across a work-stealing thread pool, consults the persistent
// result cache before invoking the simulator, and returns results in spec
// order — so a parallel sweep is cell-for-cell identical to a serial one.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/cache.hpp"
#include "harness/cell.hpp"

namespace ndc::harness {

struct SweepSpec {
  std::string figure;  ///< name of the figure/grid this sweep regenerates
  std::vector<CellSpec> cells;
};

struct SweepOptions {
  int jobs = 1;                         ///< worker threads (1 = run inline)
  bool use_cache = true;
  std::string cache_dir = ".ndc-cache";
  bool progress = false;                ///< live progress/ETA lines on stderr
};

struct SweepSummary {
  std::string figure;
  int jobs = 1;
  std::uint64_t cells = 0;
  std::uint64_t cache_hits = 0;
  /// Cells actually simulated this run (== cells - cache_hits). A warm
  /// re-run of an already-measured grid reports 0 here.
  std::uint64_t sim_invocations = 0;
  std::uint64_t cache_load_errors = 0;
  std::uint64_t elapsed_ms = 0;
  /// Host wall-clock per phase (ms) accrued during this sweep, keyed by
  /// obs::PhaseName. Empty when NDC_OBS=OFF or nothing was simulated; the
  /// summary JSON omits the "phases" key in that case (byte-stable with
  /// pre-observability output).
  std::map<std::string, std::uint64_t> phase_ms;
  /// Simulated events retired during this sweep and the substrate's
  /// end-to-end throughput over the kSimulate wall clock. Zero when
  /// NDC_OBS=OFF or every cell was a cache hit; the summary JSON omits both
  /// keys in that case (byte-stable with pre-observability output).
  std::uint64_t sim_events = 0;
  double sim_events_per_sec = 0.0;

  json::Value ToJson() const;
};

struct SweepResult {
  std::vector<CellResult> cells;  ///< one per SweepSpec cell, same order
  SweepSummary summary;
};

SweepResult RunSweep(const SweepSpec& spec, const SweepOptions& opt);

/// One JSONL line per cell (spec fields + result + improvement), then a
/// summary line. Returns false when the file cannot be written.
bool ExportJsonl(const SweepSpec& spec, const SweepResult& result, const std::string& path);

/// Flat CSV, one row per cell.
bool ExportCsv(const SweepSpec& spec, const SweepResult& result, const std::string& path);

/// Appends the summary as one JSONL line to `path` (for CI cache-hit
/// verification across runs).
bool AppendSummary(const SweepSummary& summary, const std::string& path);

}  // namespace ndc::harness
