#pragma once

// The figure registry: every paper figure/table grid the bench binaries
// regenerate, expressed as a declarative SweepSpec builder plus a stdout
// renderer. RunFigure() is the single entry point shared by the bench
// binaries and the ndc-sweep tool — it sweeps the grid (parallel, cached)
// and renders a table bit-compatible with the pre-harness binaries at
// default settings.
//
// Two figure flavors:
//  - grid figures (fig04, fig06, fig13..fig17, abl, diag_congestion,
//    smoke): a (workload x scheme x config) grid of scalar cells; cached.
//  - record figures (fig02, fig03, fig05, tab02): need full observation
//    records or access replay, too large for the scalar cache; they still
//    fan out per workload on the same thread pool.

#include <string>
#include <vector>

#include "harness/sweep.hpp"

namespace ndc::harness {

struct FigureOptions {
  workloads::Scale scale = workloads::Scale::kSmall;
  std::string only;   ///< run a single benchmark when non-empty (--bench)
  int jobs = 1;
  bool use_cache = true;
  std::string cache_dir = ".ndc-cache";
  bool progress = false;
  std::uint64_t seed = 1;
  std::string export_jsonl;  ///< per-cell JSONL path ("" = off)
  std::string export_csv;    ///< per-cell CSV path ("" = off)
  /// Directory for per-cell observability summaries ("" = off). Grid cells
  /// are re-simulated with tracing attached (never cached) and one JSON file
  /// per cell is written: <figure>_<idx>_<workload>_<scheme>.json.
  std::string export_obs;
  /// Phase-window width for bottleneck classification (0 = off). When set,
  /// grid cells are re-simulated with the sampler attached — outside the
  /// result cache, same contract as export_obs — and one classification
  /// JSONL line per cell (label + derived signal vector) goes to stderr;
  /// stdout tables stay byte-identical to unclassified runs. With
  /// export_obs also set, the per-cell summary files carry the full
  /// "classification" object (one re-simulation serves both).
  std::uint64_t classify_window = 0;
  /// Fault schedule stamped onto every grid cell (default: empty =
  /// fault-free; record figures always run fault-free). Faulted cells carry
  /// the schedule in their cache key, so they never collide with — or
  /// invalidate — fault-free entries.
  fault::FaultSchedule faults;
  /// Simulation-thread count stamped onto every grid cell (default 1 =
  /// sequential engine, cache keys unchanged). >= 2 enables
  /// conservative-window sharding on eligible cells; sharded cells carry the
  /// thread count in their cache key so they never collide with sequential
  /// entries. Record figures always run sequentially.
  int sim_threads = 1;
};

struct FigureInfo {
  std::string name;
  std::string title;
  bool grid = true;  ///< false: record figure (uncached, no cell export)
};

/// All registered figures, in paper order.
const std::vector<FigureInfo>& Figures();

bool HasFigure(const std::string& name);

/// Regenerates one figure end-to-end: sweep + render to stdout. Returns 0
/// on success (2 for an unknown figure name) and fills `summary` when
/// non-null. Exporters run when the corresponding FigureOptions paths are
/// set (grid figures only).
int RunFigure(const std::string& name, const FigureOptions& opt,
              SweepSummary* summary = nullptr);

// Record figures (implemented in figures_records.cpp).
SweepSummary RunFig02(const FigureOptions& opt);
SweepSummary RunFig03(const FigureOptions& opt);
SweepSummary RunFig05(const FigureOptions& opt);
SweepSummary RunTab02(const FigureOptions& opt);

}  // namespace ndc::harness
