#include "harness/cache.hpp"

#include <filesystem>
#include <fstream>

namespace ndc::harness {

ResultCache::ResultCache(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  path_ = dir + "/results.jsonl";

  std::ifstream in(path_);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    json::Value v;
    const json::Value* key;
    const json::Value* res;
    CellResult r;
    if (!json::Parse(line, &v) || (key = v.Find("key")) == nullptr ||
        key->kind != json::Value::Kind::kString || (res = v.Find("result")) == nullptr ||
        !CellResult::FromJson(*res, &r)) {
      ++load_errors_;
      continue;
    }
    entries_[key->str] = std::move(r);  // duplicate keys: last line wins
  }
  in.close();

  // Append mode: single-line writes, flushed per insert. POSIX O_APPEND
  // keeps concurrent bench processes from interleaving mid-line for our
  // line sizes; a torn line is skipped (and re-measured) on the next load.
  out_ = std::fopen(path_.c_str(), "a");
}

ResultCache::~ResultCache() {
  if (out_ != nullptr) std::fclose(out_);
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool ResultCache::Lookup(const CellSpec& spec, CellResult* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(spec.Key());
  if (it == entries_.end()) return false;
  *out = it->second;
  out->from_cache = true;
  return true;
}

void ResultCache::Insert(const CellSpec& spec, const CellResult& result) {
  json::Value line = json::Value::Object();
  line.obj["key"] = json::Value::Str(spec.Key());
  line.obj["version"] = json::Value::Str(kCacheVersion);
  // Human-readable provenance for debugging; lookups go by key alone.
  line.obj["workload"] = json::Value::Str(spec.workload);
  line.obj["scheme"] = json::Value::Str(spec.SchemeLabel());
  line.obj["scale"] = json::Value::Str(ScaleName(spec.scale));
  if (!spec.variant.empty()) line.obj["variant"] = json::Value::Str(spec.variant);
  line.obj["result"] = result.ToJson();
  std::string text = json::Dump(line);

  std::lock_guard<std::mutex> lock(mu_);
  entries_[spec.Key()] = result;
  entries_[spec.Key()].from_cache = false;
  if (out_ != nullptr) {
    std::fprintf(out_, "%s\n", text.c_str());
    std::fflush(out_);
  }
}

}  // namespace ndc::harness
