#include "harness/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace ndc::harness::json {

Value Value::Bool(bool v) {
  Value x;
  x.kind = Kind::kBool;
  x.b = v;
  return x;
}

Value Value::Int(std::uint64_t v) {
  Value x;
  x.kind = Kind::kInt;
  x.u64 = v;
  return x;
}

Value Value::Double(double v) {
  Value x;
  x.kind = Kind::kDouble;
  x.num = v;
  return x;
}

Value Value::Str(std::string v) {
  Value x;
  x.kind = Kind::kString;
  x.str = std::move(v);
  return x;
}

Value Value::Object() {
  Value x;
  x.kind = Kind::kObject;
  return x;
}

Value Value::Array() {
  Value x;
  x.kind = Kind::kArray;
  return x;
}

const Value* Value::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::uint64_t Value::AsU64(std::uint64_t fallback) const {
  if (kind == Kind::kInt) return u64;
  if (kind == Kind::kDouble && num >= 0) return static_cast<std::uint64_t>(num);
  return fallback;
}

double Value::AsDouble(double fallback) const {
  if (kind == Kind::kDouble) return num;
  if (kind == Kind::kInt) return static_cast<double>(u64);
  return fallback;
}

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

static void DumpTo(const Value& v, std::string& out) {
  switch (v.kind) {
    case Value::Kind::kNull: out += "null"; return;
    case Value::Kind::kBool: out += v.b ? "true" : "false"; return;
    case Value::Kind::kInt: {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v.u64));
      out += buf;
      return;
    }
    case Value::Kind::kDouble: {
      if (!std::isfinite(v.num)) {  // JSON has no inf/nan; degrade to null
        out += "null";
        return;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", v.num);
      out += buf;
      return;
    }
    case Value::Kind::kString:
      out += '"';
      out += Escape(v.str);
      out += '"';
      return;
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, val] : v.obj) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += Escape(k);
        out += "\":";
        DumpTo(val, out);
      }
      out += '}';
      return;
    }
    case Value::Kind::kArray: {
      out += '[';
      for (std::size_t i = 0; i < v.arr.size(); ++i) {
        if (i) out += ',';
        DumpTo(v.arr[i], out);
      }
      out += ']';
      return;
    }
  }
}

std::string Dump(const Value& v) {
  std::string out;
  DumpTo(v, out);
  return out;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* err) : s_(text), err_(err) {}

  bool Run(Value* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != s_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const char* what) {
    if (err_) {
      std::ostringstream os;
      os << what << " at offset " << pos_;
      *err_ = os.str();
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(Value* out) {
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    char c = s_[pos_];
    switch (c) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': {
        out->kind = Value::Kind::kString;
        return ParseString(&out->str);
      }
      case 't':
        if (s_.compare(pos_, 4, "true") == 0) {
          pos_ += 4;
          *out = Value::Bool(true);
          return true;
        }
        return Fail("bad literal");
      case 'f':
        if (s_.compare(pos_, 5, "false") == 0) {
          pos_ += 5;
          *out = Value::Bool(false);
          return true;
        }
        return Fail("bad literal");
      case 'n':
        if (s_.compare(pos_, 4, "null") == 0) {
          pos_ += 4;
          *out = Value::Null();
          return true;
        }
        return Fail("bad literal");
      default: return ParseNumber(out);
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return Fail("bad escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else return Fail("bad \\u escape");
            }
            // The serializer only emits \u00xx for control bytes; decode the
            // low byte and do not attempt full UTF-16 surrogate handling.
            *out += static_cast<char>(code & 0xFF);
            break;
          }
          default: return Fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(Value* out) {
    std::size_t start = pos_;
    bool is_double = false;
    if (pos_ < s_.size() && s_[pos_] == '-') {
      is_double = true;  // negatives only occur for measured doubles
      ++pos_;
    }
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Fail("expected value");
    std::string tok = s_.substr(start, pos_ - start);
    if (is_double) {
      *out = Value::Double(std::strtod(tok.c_str(), nullptr));
    } else {
      *out = Value::Int(std::strtoull(tok.c_str(), nullptr, 10));
    }
    return true;
  }

  bool ParseObject(Value* out) {
    if (!Consume('{')) return Fail("expected object");
    *out = Value::Object();
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      SkipWs();
      Value val;
      if (!ParseValue(&val)) return false;
      out->obj.emplace(std::move(key), std::move(val));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return true;
      return Fail("expected ',' or '}'");
    }
  }

  bool ParseArray(Value* out) {
    if (!Consume('[')) return Fail("expected array");
    *out = Value::Array();
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      Value val;
      if (!ParseValue(&val)) return false;
      out->arr.push_back(std::move(val));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return true;
      return Fail("expected ',' or ']'");
    }
  }

  const std::string& s_;
  std::string* err_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Parse(const std::string& text, Value* out, std::string* err) {
  return Parser(text, err).Run(out);
}

}  // namespace ndc::harness::json
