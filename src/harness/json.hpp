#pragma once

// Minimal JSON support for the experiment harness: a tagged value type, a
// compact serializer, and a recursive-descent parser. Covers exactly the
// subset the result cache and the exporters emit (objects, arrays, strings,
// unsigned integers, doubles, bools, null) — deliberately not a
// general-purpose library; the only producers of the parsed files are the
// serializer below and hand-edited cache files are unsupported.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ndc::harness::json {

struct Value {
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool b = false;
  std::uint64_t u64 = 0;  ///< kInt payload
  double num = 0.0;       ///< kDouble payload
  std::string str;        ///< kString payload
  std::map<std::string, Value> obj;
  std::vector<Value> arr;

  static Value Null() { return {}; }
  static Value Bool(bool v);
  static Value Int(std::uint64_t v);
  static Value Double(double v);
  static Value Str(std::string v);
  static Value Object();
  static Value Array();

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(const std::string& key) const;

  /// Numeric coercion (kInt or kDouble; `fallback` otherwise).
  std::uint64_t AsU64(std::uint64_t fallback = 0) const;
  double AsDouble(double fallback = 0.0) const;
};

/// JSON string escaping (quotes, backslash, control characters).
std::string Escape(const std::string& s);

/// Compact single-line serialization (object keys in map order, so the
/// output is deterministic).
std::string Dump(const Value& v);

/// Parses one JSON document. Returns false (and sets `err` when non-null)
/// on malformed input or trailing garbage.
bool Parse(const std::string& text, Value* out, std::string* err = nullptr);

}  // namespace ndc::harness::json
