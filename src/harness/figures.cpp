#include "harness/figures.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/pool.hpp"
#include "sim/stats.hpp"

namespace ndc::harness {
namespace {

std::vector<std::string> FilteredWorkloads(const FigureOptions& opt) {
  std::vector<std::string> out;
  for (const std::string& name : workloads::BenchmarkNames()) {
    if (opt.only.empty() || name == opt.only) out.push_back(name);
  }
  return out;
}

CellSpec MakeCell(const FigureOptions& opt, const std::string& w, metrics::Scheme s) {
  CellSpec c;
  c.workload = w;
  c.scale = opt.scale;
  c.seed = opt.seed;
  c.scheme = s;
  return c;
}

void PrintHeader(const char* what, const FigureOptions& opt) {
  std::printf("# %s  (scale=%s, Table-1 configuration)\n", what, ScaleName(opt.scale));
}

/// Baseline-to-scheme speedup ratio, as the pre-harness binaries computed it.
double RatioOf(const CellResult& r) {
  return static_cast<double>(r.baseline_makespan) /
         static_cast<double>(std::max<std::uint64_t>(1, r.makespan));
}

double GeomeanPct(const std::vector<double>& ratios) {
  return (1.0 - 1.0 / sim::GeometricMean(ratios)) * 100.0;
}

// ---------------------------------------------------------------- fig04 ---

const std::vector<metrics::Scheme>& Fig04Schemes() {
  static const std::vector<metrics::Scheme> schemes = {
      metrics::Scheme::kDefault, metrics::Scheme::kOracle,  metrics::Scheme::kWait5,
      metrics::Scheme::kWait10,  metrics::Scheme::kWait25,  metrics::Scheme::kWait50,
      metrics::Scheme::kLastWait, metrics::Scheme::kMarkov,
      metrics::Scheme::kAlgorithm1, metrics::Scheme::kAlgorithm2};
  return schemes;
}

SweepSpec BuildFig04(const FigureOptions& opt) {
  SweepSpec spec;
  spec.figure = "fig04";
  for (const std::string& w : FilteredWorkloads(opt)) {
    for (metrics::Scheme s : Fig04Schemes()) spec.cells.push_back(MakeCell(opt, w, s));
  }
  return spec;
}

void RenderFig04(const FigureOptions& opt, const SweepSpec& spec, const SweepResult& res) {
  const auto& schemes = Fig04Schemes();
  std::printf("# Figure 4: performance improvement (%%) over the original execution\n");
  std::printf("%-10s", "benchmark");
  for (metrics::Scheme s : schemes) std::printf(" %11s", metrics::SchemeName(s));
  std::printf("\n");

  std::vector<std::vector<double>> ratios(schemes.size());
  std::size_t cell = 0;
  for (std::size_t w = 0; w * schemes.size() < spec.cells.size(); ++w) {
    std::printf("%-10s", spec.cells[cell].workload.c_str());
    for (std::size_t i = 0; i < schemes.size(); ++i, ++cell) {
      const CellResult& r = res.cells[cell];
      std::printf(" %+10.1f%%", r.ImprovementPct());
      ratios[i].push_back(RatioOf(r));
    }
    std::printf("\n");
  }
  if (opt.only.empty()) {
    std::printf("%-10s", "geomean");
    for (std::size_t i = 0; i < schemes.size(); ++i) {
      std::printf(" %+10.1f%%", GeomeanPct(ratios[i]));
    }
    std::printf("\n");
    std::printf("\npaper:   Default -16.7%%, Oracle +29.3%%, Wait(5..50%%) -15.1..-13.4%%, "
                "LastWait -4.3%% (Markov similar), Alg-1 +22.5%%, Alg-2 +25.2%%\n");
  }
}

// -------------------------------------------------------- fig06 / fig13 ---

SweepSpec BuildOneSchemeGrid(const char* figure, metrics::Scheme scheme,
                             const FigureOptions& opt) {
  SweepSpec spec;
  spec.figure = figure;
  for (const std::string& w : FilteredWorkloads(opt)) {
    spec.cells.push_back(MakeCell(opt, w, scheme));
  }
  return spec;
}

SweepSpec BuildFig06(const FigureOptions& opt) {
  return BuildOneSchemeGrid("fig06", metrics::Scheme::kOracle, opt);
}

SweepSpec BuildFig13(const FigureOptions& opt) {
  return BuildOneSchemeGrid("fig13", metrics::Scheme::kAlgorithm1, opt);
}

double LocPct(const CellResult& r, arch::Loc l) {
  double total = 0;
  for (std::uint64_t v : r.ndc_at_loc) total += static_cast<double>(v);
  return total == 0 ? 0.0
                    : 100.0 * static_cast<double>(r.ndc_at_loc[static_cast<std::size_t>(l)]) /
                          total;
}

/// Shared body of the two location-breakdown figures (per-benchmark rows +
/// running average); returns via out-params what fig13's footer needs.
void RenderLocationBreakdown(const SweepSpec& spec, const SweepResult& res,
                             std::uint64_t* total_ndc, std::uint64_t* total_arith) {
  std::printf("%-10s %8s %8s %8s %8s   (share of NDC computations)\n", "benchmark", "cache",
              "network", "MC", "memory");
  std::array<double, 4> sum{};
  int n = 0;
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    const CellResult& r = res.cells[i];
    double total = 0;
    for (std::uint64_t v : r.ndc_at_loc) total += static_cast<double>(v);
    double c = LocPct(r, arch::Loc::kCacheCtrl), net = LocPct(r, arch::Loc::kLinkBuffer),
           mc = LocPct(r, arch::Loc::kMemCtrl), mem = LocPct(r, arch::Loc::kMemBank);
    std::printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%%   (%llu NDC ops)\n",
                spec.cells[i].workload.c_str(), c, net, mc, mem,
                static_cast<unsigned long long>(r.ndc_success));
    if (total > 0) {
      sum[0] += c;
      sum[1] += net;
      sum[2] += mc;
      sum[3] += mem;
      ++n;
    }
    if (total_ndc != nullptr) *total_ndc += r.ndc_success;
    if (total_arith != nullptr) {
      *total_arith += r.Stat("core.computes") + r.Stat("core.precomputes");
    }
  }
  if (n > 0) {
    std::printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", "average", sum[0] / n, sum[1] / n,
                sum[2] / n, sum[3] / n);
  }
}

void RenderFig06(const FigureOptions& opt, const SweepSpec& spec, const SweepResult& res) {
  PrintHeader("Figure 6: oracle NDC-location breakdown", opt);
  RenderLocationBreakdown(spec, res, nullptr, nullptr);
  std::printf("\npaper averages: cache 25.9%%, network 36%%, MC 21.7%%, memory 16.4%%\n");
}

void RenderFig13(const FigureOptions& opt, const SweepSpec& spec, const SweepResult& res) {
  PrintHeader("Figure 13: Algorithm-1 NDC-location breakdown", opt);
  std::uint64_t total_ndc = 0, total_arith = 0;
  RenderLocationBreakdown(spec, res, &total_ndc, &total_arith);
  if (total_arith > 0) {
    std::printf("\nfraction of arithmetic/logic instructions executed near data: %.1f%% "
                "(paper footnote: ~32%%)\n",
                100.0 * static_cast<double>(total_ndc) / static_cast<double>(total_arith));
  }
  std::printf("paper: most Algorithm-1 NDC happens in the network, then cache banks and "
              "MCs; distribution similar to the oracle's (Figure 6)\n");
}

// ---------------------------------------------------------------- fig14 ---

struct MaskConfig {
  const char* name;
  std::uint8_t mask;
};

const MaskConfig kFig14Configs[] = {
    {"cache", arch::LocBit(arch::Loc::kCacheCtrl)},
    {"network", arch::LocBit(arch::Loc::kLinkBuffer)},
    {"MC", arch::LocBit(arch::Loc::kMemCtrl)},
    {"memory", arch::LocBit(arch::Loc::kMemBank)},
    {"all", arch::kAllLocs},
};

SweepSpec BuildFig14(const FigureOptions& opt) {
  SweepSpec spec;
  spec.figure = "fig14";
  for (const std::string& w : FilteredWorkloads(opt)) {
    for (const MaskConfig& c : kFig14Configs) {
      CellSpec cell = MakeCell(opt, w, metrics::Scheme::kAlgorithm1);
      cell.control_register = c.mask;
      cell.variant = c.name;
      spec.cells.push_back(cell);
    }
  }
  return spec;
}

void RenderFig14(const FigureOptions& opt, const SweepSpec& spec, const SweepResult& res) {
  PrintHeader("Figure 14: Algorithm 1 restricted to one component", opt);
  std::printf("%-10s", "benchmark");
  for (const MaskConfig& c : kFig14Configs) std::printf(" %9s", c.name);
  std::printf("   (improvement %% over baseline)\n");

  std::vector<std::vector<double>> ratios(5);
  std::size_t cell = 0;
  for (std::size_t w = 0; w * 5 < spec.cells.size(); ++w) {
    std::printf("%-10s", spec.cells[cell].workload.c_str());
    for (std::size_t i = 0; i < 5; ++i, ++cell) {
      const CellResult& r = res.cells[cell];
      std::printf(" %+8.1f%%", r.ImprovementPct());
      ratios[i].push_back(RatioOf(r));
    }
    std::printf("\n");
  }
  std::printf("%-10s", "geomean");
  for (std::size_t i = 0; i < 5; ++i) std::printf(" %+8.1f%%", GeomeanPct(ratios[i]));
  std::printf("\n\npaper: exploiting all four locations together is critical; isolated\n"
              "per-location savings sum to more than the combined saving.\n");
}

// ---------------------------------------------------------------- fig15 ---

SweepSpec BuildFig15(const FigureOptions& opt) {
  SweepSpec spec;
  spec.figure = "fig15";
  for (const std::string& w : FilteredWorkloads(opt)) {
    spec.cells.push_back(MakeCell(opt, w, metrics::Scheme::kAlgorithm1));
    spec.cells.push_back(MakeCell(opt, w, metrics::Scheme::kAlgorithm2));
  }
  return spec;
}

void RenderFig15(const FigureOptions& opt, const SweepSpec& spec, const SweepResult& res) {
  PrintHeader("Figure 15: NDC opportunities exercised by Algorithm 2", opt);
  std::printf("%-10s %14s %14s %12s\n", "benchmark", "static chains", "dyn. offloads",
              "exercised");
  double sum = 0;
  int n = 0;
  for (std::size_t i = 0; i + 1 < spec.cells.size(); i += 2) {
    const CellResult& a1 = res.cells[i];
    const CellResult& a2 = res.cells[i + 1];
    double dyn = a1.offloads == 0 ? 100.0
                                  : 100.0 * static_cast<double>(a2.offloads) /
                                        static_cast<double>(a1.offloads);
    dyn = std::min(dyn, 100.0);
    std::printf("%-10s %8llu/%-5llu %8llu/%-5llu %10.1f%%\n",
                spec.cells[i].workload.c_str(),
                static_cast<unsigned long long>(a2.planned),
                static_cast<unsigned long long>(a1.planned),
                static_cast<unsigned long long>(a2.offloads),
                static_cast<unsigned long long>(a1.offloads), dyn);
    if (a1.offloads > 0) {
      sum += dyn;
      ++n;
    }
  }
  if (n > 0) std::printf("%-10s %14s %14s %10.1f%%\n", "average", "", "", sum / n);
  std::printf("\npaper: Algorithm 2 exercises 81.8%% of opportunities on average; the rest\n"
              "are bypassed because an operand is reused after the computation.\n");
}

// ---------------------------------------------------------------- fig16 ---

SweepSpec BuildFig16(const FigureOptions& opt) {
  SweepSpec spec = BuildFig15(opt);
  spec.figure = "fig16";
  return spec;
}

void RenderFig16(const FigureOptions& opt, const SweepSpec& spec, const SweepResult& res) {
  PrintHeader("Figure 16: L1/L2 miss rates, Algorithm 1 vs Algorithm 2", opt);
  std::printf("%-10s | %9s %9s | %9s %9s |\n", "benchmark", "L1 alg-1", "L1 alg-2",
              "L2 alg-1", "L2 alg-2");
  int lower_l1 = 0, lower_l2 = 0, n = 0;
  for (std::size_t i = 0; i + 1 < spec.cells.size(); i += 2) {
    const CellResult& a1 = res.cells[i];
    const CellResult& a2 = res.cells[i + 1];
    std::printf("%-10s | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% |%s\n",
                spec.cells[i].workload.c_str(), a1.L1MissRate() * 100,
                a2.L1MissRate() * 100, a1.L2MissRate() * 100, a2.L2MissRate() * 100,
                a2.L1MissRate() <= a1.L1MissRate() ? "" : "  (alg-2 higher)");
    lower_l1 += a2.L1MissRate() <= a1.L1MissRate() + 1e-9;
    lower_l2 += a2.L2MissRate() <= a1.L2MissRate() + 1e-9;
    ++n;
  }
  std::printf("\nAlgorithm 2 miss rate <= Algorithm 1 in %d/%d (L1) and %d/%d (L2) "
              "benchmarks (paper: all 20 for both levels)\n",
              lower_l1, n, lower_l2, n);
}

// ---------------------------------------------------------------- fig17 ---

struct Fig17Variant {
  const char* name;
  void (*apply)(arch::ArchConfig&);
};

const Fig17Variant kFig17Variants[] = {
    {"default-5x5", [](arch::ArchConfig&) {}},
    {"mesh-4x4",
     [](arch::ArchConfig& c) {
       c.mesh_width = 4;
       c.mesh_height = 4;
     }},
    {"mesh-6x6",
     [](arch::ArchConfig& c) {
       c.mesh_width = 6;
       c.mesh_height = 6;
     }},
    {"L2-256KB", [](arch::ArchConfig& c) { c.l2.size_bytes = 256 * 1024; }},
    {"L2-1MB", [](arch::ArchConfig& c) { c.l2.size_bytes = 1024 * 1024; }},
    {"ops-addsub-only", [](arch::ArchConfig& c) { c.restrict_ops_to_addsub = true; }},
};

const metrics::Scheme kFig17Schemes[] = {metrics::Scheme::kAlgorithm1,
                                         metrics::Scheme::kAlgorithm2,
                                         metrics::Scheme::kOracle};

SweepSpec BuildFig17(const FigureOptions& opt) {
  SweepSpec spec;
  spec.figure = "fig17";
  for (const Fig17Variant& v : kFig17Variants) {
    for (const std::string& w : FilteredWorkloads(opt)) {
      for (metrics::Scheme s : kFig17Schemes) {
        CellSpec cell = MakeCell(opt, w, s);
        v.apply(cell.cfg);
        cell.variant = v.name;
        spec.cells.push_back(cell);
      }
    }
  }
  return spec;
}

void RenderFig17(const FigureOptions& opt, const SweepSpec& spec, const SweepResult& res) {
  PrintHeader("Figure 17: sensitivity to mesh size, L2 capacity, op set", opt);
  std::printf("%-16s %12s %12s %12s   (geomean improvement over the variant's own "
              "baseline)\n",
              "variant", "Algorithm-1", "Algorithm-2", "Oracle");
  std::size_t per_variant = spec.cells.size() / std::size(kFig17Variants);
  std::size_t cell = 0;
  for (const Fig17Variant& v : kFig17Variants) {
    std::vector<double> r1, r2, ro;
    for (std::size_t i = 0; i < per_variant; i += 3, cell += 3) {
      r1.push_back(RatioOf(res.cells[cell]));
      r2.push_back(RatioOf(res.cells[cell + 1]));
      ro.push_back(RatioOf(res.cells[cell + 2]));
    }
    std::printf("%-16s %+11.1f%% %+11.1f%% %+11.1f%%\n", v.name, GeomeanPct(r1),
                GeomeanPct(r2), GeomeanPct(ro));
  }
  std::printf("\npaper findings: benefits grow with mesh size (more NDC locations);\n"
              "insensitive to L2 capacity (the NDC location shifts, the amount does not);\n"
              "restricting ops to +/- still yields 14.1%% / 16.5%% for Alg-1 / Alg-2.\n");
}

// ------------------------------------------------------------------ abl ---

SweepSpec BuildAbl(const FigureOptions& opt) {
  SweepSpec spec;
  spec.figure = "abl";
  for (const std::string& w : FilteredWorkloads(opt)) {
    CellSpec fine = MakeCell(opt, w, metrics::Scheme::kAlgorithm1);
    fine.variant = "fine";
    spec.cells.push_back(fine);
    CellSpec noreroute = MakeCell(opt, w, metrics::Scheme::kAlgorithm1);
    noreroute.allow_reroute = false;
    noreroute.variant = "no-reroute";
    spec.cells.push_back(noreroute);
    CellSpec coarse = MakeCell(opt, w, metrics::Scheme::kAlgorithm1);
    coarse.coarse_grain = true;
    coarse.variant = "coarse";
    spec.cells.push_back(coarse);
  }
  return spec;
}

void RenderAbl(const FigureOptions& opt, const SweepSpec& spec, const SweepResult& res) {
  PrintHeader("Ablations: route co-selection and mapping granularity", opt);
  std::printf("%-10s | %10s %10s %7s | %9s %9s\n", "benchmark", "router NDC",
              "no-reroute", "drop", "coarse-1", "fine-1");
  double router_with = 0, router_without = 0;
  std::vector<double> coarse_ratio, fine_ratio;
  for (std::size_t i = 0; i + 2 < spec.cells.size(); i += 3) {
    const CellResult& rw = res.cells[i];
    const CellResult& rwo = res.cells[i + 1];
    const CellResult& rc = res.cells[i + 2];
    std::uint64_t net_w = rw.ndc_at_loc[static_cast<std::size_t>(arch::Loc::kLinkBuffer)];
    std::uint64_t net_wo = rwo.ndc_at_loc[static_cast<std::size_t>(arch::Loc::kLinkBuffer)];
    double drop = net_w == 0
                      ? 0.0
                      : 100.0 * (static_cast<double>(net_w) - static_cast<double>(net_wo)) /
                            static_cast<double>(net_w);
    std::printf("%-10s | %10llu %10llu %6.1f%% | %+8.1f%% %+8.1f%%\n",
                spec.cells[i].workload.c_str(), static_cast<unsigned long long>(net_w),
                static_cast<unsigned long long>(net_wo), drop, rc.ImprovementPct(),
                rw.ImprovementPct());
    router_with += static_cast<double>(net_w);
    router_without += static_cast<double>(net_wo);
    coarse_ratio.push_back(RatioOf(rc));
    fine_ratio.push_back(RatioOf(rw));
  }
  double total_drop =
      router_with == 0 ? 0.0 : 100.0 * (router_with - router_without) / router_with;
  std::printf("\nrouter NDC reduction without rerouting: %.1f%% (paper: ~40%%)\n",
              total_drop);
  std::printf("coarse-grain geomean improvement: %+.1f%% vs fine-grain %+.1f%% "
              "(paper: 1.2%% vs 22.5%% — fine-grain mapping is critical)\n",
              GeomeanPct(coarse_ratio), GeomeanPct(fine_ratio));
}

// ------------------------------------------------------ diag_congestion ---

const int kCongestionMlp[] = {8, 16, 32};

SweepSpec BuildDiagCongestion(const FigureOptions& opt) {
  SweepSpec spec;
  spec.figure = "diag_congestion";
  for (int mlp : kCongestionMlp) {
    for (metrics::Scheme s : {metrics::Scheme::kBaseline, metrics::Scheme::kOracle,
                              metrics::Scheme::kAlgorithm1}) {
      CellSpec cell = MakeCell(opt, "md", s);
      cell.cfg.max_outstanding_loads = mlp;
      char label[16];
      std::snprintf(label, sizeof(label), "mlp=%d", mlp);
      cell.variant = label;
      spec.cells.push_back(cell);
    }
  }
  return spec;
}

void RenderDiagCongestion(const FigureOptions&, const SweepSpec&, const SweepResult& res) {
  std::size_t cell = 0;
  for (int mlp : kCongestionMlp) {
    const CellResult& base = res.cells[cell];
    const CellResult& orc = res.cells[cell + 1];
    const CellResult& a1 = res.cells[cell + 2];
    cell += 3;
    std::printf("mlp=%2d base=%8llu contention=%8llu mcwait=%8llu | oracle %+5.1f%% "
                "(ndc=%llu) | alg1 %+5.1f%% (ndc=%llu)\n",
                mlp, static_cast<unsigned long long>(base.makespan),
                static_cast<unsigned long long>(base.Stat("noc.contention_cycles")),
                static_cast<unsigned long long>(base.Stat("mc.queue_wait_cycles")),
                orc.ImprovementPct(), static_cast<unsigned long long>(orc.ndc_success),
                a1.ImprovementPct(), static_cast<unsigned long long>(a1.ndc_success));
  }
}

// ---------------------------------------------------------------- smoke ---

const metrics::Scheme kSmokeSchemes[] = {metrics::Scheme::kBaseline,
                                         metrics::Scheme::kOracle,
                                         metrics::Scheme::kAlgorithm1};

SweepSpec BuildSmoke(const FigureOptions& opt) {
  SweepSpec spec;
  spec.figure = "smoke";
  for (const std::string& w : FilteredWorkloads(opt)) {
    for (metrics::Scheme s : kSmokeSchemes) spec.cells.push_back(MakeCell(opt, w, s));
  }
  return spec;
}

void RenderSmoke(const FigureOptions& opt, const SweepSpec& spec, const SweepResult& res) {
  PrintHeader("Smoke sweep: baseline / Oracle / Algorithm-1", opt);
  std::printf("%-10s %12s %12s %12s\n", "benchmark", "baseline(cy)", "Oracle",
              "Algorithm-1");
  for (std::size_t i = 0; i + 2 < spec.cells.size(); i += 3) {
    std::printf("%-10s %12llu %+11.1f%% %+11.1f%%\n", spec.cells[i].workload.c_str(),
                static_cast<unsigned long long>(res.cells[i].makespan),
                res.cells[i + 1].ImprovementPct(), res.cells[i + 2].ImprovementPct());
  }
}

// -------------------------------------------------------------- registry ---

using BuildFn = SweepSpec (*)(const FigureOptions&);
using RenderFn = void (*)(const FigureOptions&, const SweepSpec&, const SweepResult&);
using RecordFn = SweepSummary (*)(const FigureOptions&);

struct FigureEntry {
  const char* name;
  const char* title;
  BuildFn build;      // grid figures
  RenderFn render;
  RecordFn record;    // record figures
};

const FigureEntry kFigures[] = {
    {"fig02", "arrival-window CDF per NDC location", nullptr, nullptr, &RunFig02},
    {"fig03", "breakeven points vs arrival windows", nullptr, nullptr, &RunFig03},
    {"fig04", "performance improvement per NDC scheme", &BuildFig04, &RenderFig04, nullptr},
    {"fig05", "consecutive arrival windows of one instruction", nullptr, nullptr,
     &RunFig05},
    {"fig06", "oracle NDC-location breakdown", &BuildFig06, &RenderFig06, nullptr},
    {"fig13", "Algorithm-1 NDC-location breakdown", &BuildFig13, &RenderFig13, nullptr},
    {"fig14", "Algorithm 1 restricted to one component", &BuildFig14, &RenderFig14,
     nullptr},
    {"fig15", "NDC opportunities exercised by Algorithm 2", &BuildFig15, &RenderFig15,
     nullptr},
    {"fig16", "L1/L2 miss rates, Algorithm 1 vs Algorithm 2", &BuildFig16, &RenderFig16,
     nullptr},
    {"fig17", "sensitivity to mesh size, L2 capacity, op set", &BuildFig17, &RenderFig17,
     nullptr},
    {"tab02", "CME hit/miss estimation accuracy", nullptr, nullptr, &RunTab02},
    {"abl", "route co-selection and mapping-granularity ablations", &BuildAbl, &RenderAbl,
     nullptr},
    {"diag_congestion", "baseline congestion vs MLP window (diagnostic)",
     &BuildDiagCongestion, &RenderDiagCongestion, nullptr},
    {"smoke", "all workloads x {Baseline, Oracle, Algorithm-1} (CI smoke)", &BuildSmoke,
     &RenderSmoke, nullptr},
};

/// `--export-obs` / `--classify`: re-runs every grid cell with an
/// observation bundle and writes one stage-latency/decision summary JSON per
/// cell (when `dir` is non-empty) and/or one classification JSONL line per
/// cell to stderr (when `classify_window` > 0). Deliberately outside the
/// cached sweep — traced runs must never populate (or read) the scalar
/// result cache. One re-simulation per cell serves both surfaces.
void ExportObsSummaries(const SweepSpec& spec, const std::string& dir,
                        std::uint64_t classify_window, int jobs) {
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "ndc-harness: cannot create %s: %s\n", dir.c_str(),
                   ec.message().c_str());
      return;
    }
  }
  // Re-simulate cells in parallel (each is self-contained, same contract as
  // the cached sweep), but buffer every cell's rendered output and emit it
  // serially in cell order afterwards: the classification JSONL stream and
  // the summary files are byte-identical for any --jobs value.
  const std::size_t n = spec.cells.size();
  std::vector<std::string> summaries(n);
  std::vector<std::string> lines(n);
  WorkStealingPool::ParallelFor(jobs, n, [&](std::size_t i) {
    const CellSpec& c = spec.cells[i];
    json::Value v = RunCellObsSummary(c, 1, classify_window);
    if (classify_window > 0) {
      // Compact stderr line: label + derived fractions only (the window
      // series lives in the --export-obs files); stdout stays golden.
      json::Value line = json::Value::Object();
      line.obj["figure"] = json::Value::Str(spec.figure);
      line.obj["workload"] = json::Value::Str(c.workload);
      line.obj["scheme"] = json::Value::Str(c.SchemeLabel());
      if (!c.variant.empty()) line.obj["variant"] = json::Value::Str(c.variant);
      const json::Value* cl = v.Find("classification");
      if (cl != nullptr) {
        if (const json::Value* label = cl->Find("label")) line.obj["label"] = *label;
        if (const json::Value* der = cl->Find("derived")) line.obj["signals"] = *der;
      } else {
        line.obj["obs_enabled"] = json::Value::Bool(obs::kObsEnabled);
      }
      lines[i] = json::Dump(line);
    }
    if (!dir.empty()) summaries[i] = json::Dump(v);
  });
  for (std::size_t i = 0; i < n; ++i) {
    const CellSpec& c = spec.cells[i];
    if (classify_window > 0) std::fprintf(stderr, "%s\n", lines[i].c_str());
    if (dir.empty()) continue;
    char idx[24];  // wide enough for any 64-bit index, silencing -Wformat-truncation
    std::snprintf(idx, sizeof(idx), "%03zu", i);
    std::string path = dir + "/" + spec.figure + "_" + idx + "_" + c.workload + "_" +
                       c.SchemeLabel() + ".json";
    std::ofstream f(path);
    if (!f) {
      std::fprintf(stderr, "ndc-harness: cannot write %s\n", path.c_str());
      return;
    }
    f << summaries[i] << "\n";
  }
}

}  // namespace

const std::vector<FigureInfo>& Figures() {
  static const std::vector<FigureInfo> infos = [] {
    std::vector<FigureInfo> out;
    for (const FigureEntry& e : kFigures) {
      out.push_back({e.name, e.title, e.build != nullptr});
    }
    return out;
  }();
  return infos;
}

bool HasFigure(const std::string& name) {
  for (const FigureEntry& e : kFigures) {
    if (name == e.name) return true;
  }
  return false;
}

int RunFigure(const std::string& name, const FigureOptions& opt, SweepSummary* summary) {
  for (const FigureEntry& e : kFigures) {
    if (name != e.name) continue;
    SweepSummary s;
    if (e.build != nullptr) {
      SweepSpec spec = e.build(opt);
      if (!opt.faults.Empty()) {
        for (CellSpec& c : spec.cells) c.faults = opt.faults;
      }
      if (opt.sim_threads != 1) {
        for (CellSpec& c : spec.cells) c.sim_threads = opt.sim_threads;
      }
      SweepOptions so;
      so.jobs = opt.jobs;
      so.use_cache = opt.use_cache;
      so.cache_dir = opt.cache_dir;
      so.progress = opt.progress;
      SweepResult res = RunSweep(spec, so);
      e.render(opt, spec, res);
      std::fflush(stdout);
      if (!opt.export_jsonl.empty() && !ExportJsonl(spec, res, opt.export_jsonl)) {
        std::fprintf(stderr, "ndc-harness: cannot write %s\n", opt.export_jsonl.c_str());
      }
      if (!opt.export_csv.empty() && !ExportCsv(spec, res, opt.export_csv)) {
        std::fprintf(stderr, "ndc-harness: cannot write %s\n", opt.export_csv.c_str());
      }
      if (!opt.export_obs.empty() || opt.classify_window > 0) {
        ExportObsSummaries(spec, opt.export_obs, opt.classify_window, opt.jobs);
      }
      s = res.summary;
    } else {
      if (!opt.faults.Empty()) {
        std::fprintf(stderr,
                     "ndc-harness: record figure '%s' runs fault-free "
                     "(--faults applies to grid figures)\n",
                     name.c_str());
      }
      s = e.record(opt);
      std::fflush(stdout);
    }
    if (summary != nullptr) *summary = s;
    return 0;
  }
  std::fprintf(stderr, "unknown figure '%s' (see ndc-sweep --list)\n", name.c_str());
  return 2;
}

}  // namespace ndc::harness
