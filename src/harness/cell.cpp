#include "harness/cell.hpp"

#include <cstdio>

#include "compiler/pipeline.hpp"
#include "noc/geometry.hpp"
#include "obs/obs.hpp"

namespace ndc::harness {

const char* ScaleName(workloads::Scale s) {
  switch (s) {
    case workloads::Scale::kTest: return "test";
    case workloads::Scale::kSmall: return "small";
    case workloads::Scale::kFull: return "full";
  }
  return "?";
}

std::uint64_t Fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::string CellSpec::SchemeLabel() const {
  if (coarse_grain) return "CoarseGrain";
  return metrics::SchemeName(scheme);
}

namespace {

void AppendField(std::string& out, const char* name, std::uint64_t v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s=%llu;", name, static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string CellSpec::CanonicalString() const {
  std::string out;
  out.reserve(512);
  out += "w=" + workload + ";";
  out += "scale=";
  out += ScaleName(scale);
  out += ";";
  AppendField(out, "seed", seed);
  AppendField(out, "scheme", static_cast<std::uint64_t>(scheme));
  AppendField(out, "coarse", coarse_grain ? 1 : 0);
  AppendField(out, "reroute", allow_reroute ? 1 : 0);
  AppendField(out, "ctrl", control_register);
  // Every semantically relevant ArchConfig field. A field added to
  // ArchConfig must be serialized here (or kCacheVersion bumped) or cached
  // entries keyed before the change will silently collide with it.
  AppendField(out, "mw", static_cast<std::uint64_t>(cfg.mesh_width));
  AppendField(out, "mh", static_cast<std::uint64_t>(cfg.mesh_height));
  AppendField(out, "iw", static_cast<std::uint64_t>(cfg.issue_width));
  AppendField(out, "mol", static_cast<std::uint64_t>(cfg.max_outstanding_loads));
  AppendField(out, "cl", cfg.compute_latency);
  AppendField(out, "l1s", cfg.l1.size_bytes);
  AppendField(out, "l1l", cfg.l1.line_bytes);
  AppendField(out, "l1w", cfg.l1.ways);
  AppendField(out, "l1t", cfg.l1.access_latency);
  AppendField(out, "l2s", cfg.l2.size_bytes);
  AppendField(out, "l2l", cfg.l2.line_bytes);
  AppendField(out, "l2w", cfg.l2.ways);
  AppendField(out, "l2t", cfg.l2.access_latency);
  AppendField(out, "nrp", cfg.noc.router_pipeline);
  AppendField(out, "nlb", static_cast<std::uint64_t>(cfg.noc.link_bytes));
  AppendField(out, "mcs", static_cast<std::uint64_t>(cfg.num_mcs));
  AppendField(out, "drh", cfg.dram.row_hit_latency);
  AppendField(out, "drm", cfg.dram.row_miss_latency);
  AppendField(out, "ddb", cfg.dram.data_beat);
  AppendField(out, "dnr", cfg.dram.num_rows);
  AppendField(out, "cfgctrl", cfg.control_register);
  AppendField(out, "ste", static_cast<std::uint64_t>(cfg.service_table_entries));
  AppendField(out, "ote", static_cast<std::uint64_t>(cfg.offload_table_entries));
  AppendField(out, "dto", cfg.default_timeout);
  AppendField(out, "cfgrr", cfg.allow_reroute ? 1 : 0);
  AppendField(out, "addsub", cfg.restrict_ops_to_addsub ? 1 : 0);
  // Appended only when faulted: every fault-free cell (including all cached
  // entries written before faults existed) keeps its historical key.
  if (!faults.Empty()) {
    out += "faults{" + faults.CanonicalString() + "};";
  }
  // Appended only for parallel simulation: sequential cells (and all
  // pre-PDES cache entries) keep their historical key, and sharded results
  // — a different same-cycle tie-break schedule — get keys of their own.
  if (sim_threads != 1) {
    AppendField(out, "simthreads", static_cast<std::uint64_t>(sim_threads));
  }
  return out;
}

std::string CellSpec::Key() const {
  std::uint64_t h = Fnv1a(CanonicalString() + "|" + kCacheVersion);
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(h));
  return buf;
}

double CellResult::ImprovementPct() const {
  return metrics::ImprovementPct(baseline_makespan, makespan);
}

double CellResult::L1MissRate() const {
  std::uint64_t t = l1_hits + l1_misses;
  return t ? static_cast<double>(l1_misses) / static_cast<double>(t) : 0.0;
}

double CellResult::L2MissRate() const {
  std::uint64_t t = l2_hits + l2_misses;
  return t ? static_cast<double>(l2_misses) / static_cast<double>(t) : 0.0;
}

std::uint64_t CellResult::Stat(const std::string& name) const {
  auto it = stats.find(name);
  return it == stats.end() ? 0 : it->second;
}

json::Value CellResult::ToJson() const {
  json::Value v = json::Value::Object();
  auto put = [&](const char* k, std::uint64_t x) { v.obj[k] = json::Value::Int(x); };
  put("makespan", makespan);
  put("baseline_makespan", baseline_makespan);
  put("l1_hits", l1_hits);
  put("l1_misses", l1_misses);
  put("l2_hits", l2_hits);
  put("l2_misses", l2_misses);
  put("candidates", candidates);
  put("local_l1_skips", local_l1_skips);
  put("offloads", offloads);
  put("ndc_success", ndc_success);
  put("fallbacks", fallbacks);
  json::Value locs = json::Value::Array();
  for (std::uint64_t x : ndc_at_loc) locs.arr.push_back(json::Value::Int(x));
  v.obj["ndc_at_loc"] = std::move(locs);
  put("chains", chains);
  put("planned", planned);
  put("reuse_skips", reuse_skips);
  put("legality_failures", legality_failures);
  put("gating_failures", gating_failures);
  put("transforms", transforms);
  json::Value st = json::Value::Object();
  for (const auto& [k, x] : stats) st.obj[k] = json::Value::Int(x);
  v.obj["stats"] = std::move(st);
  return v;
}

bool CellResult::FromJson(const json::Value& v, CellResult* out) {
  if (!v.is_object()) return false;
  CellResult r;
  auto get = [&](const char* k, std::uint64_t* dst) {
    const json::Value* f = v.Find(k);
    if (f == nullptr) return false;
    *dst = f->AsU64();
    return true;
  };
  bool ok = true;
  ok &= get("makespan", &r.makespan);
  ok &= get("baseline_makespan", &r.baseline_makespan);
  ok &= get("l1_hits", &r.l1_hits);
  ok &= get("l1_misses", &r.l1_misses);
  ok &= get("l2_hits", &r.l2_hits);
  ok &= get("l2_misses", &r.l2_misses);
  ok &= get("candidates", &r.candidates);
  ok &= get("local_l1_skips", &r.local_l1_skips);
  ok &= get("offloads", &r.offloads);
  ok &= get("ndc_success", &r.ndc_success);
  ok &= get("fallbacks", &r.fallbacks);
  ok &= get("chains", &r.chains);
  ok &= get("planned", &r.planned);
  ok &= get("reuse_skips", &r.reuse_skips);
  ok &= get("legality_failures", &r.legality_failures);
  ok &= get("gating_failures", &r.gating_failures);
  ok &= get("transforms", &r.transforms);
  const json::Value* locs = v.Find("ndc_at_loc");
  if (locs == nullptr || !locs->is_array() || locs->arr.size() != r.ndc_at_loc.size()) {
    return false;
  }
  for (std::size_t i = 0; i < r.ndc_at_loc.size(); ++i) {
    r.ndc_at_loc[i] = locs->arr[i].AsU64();
  }
  const json::Value* st = v.Find("stats");
  if (st == nullptr || !st->is_object()) return false;
  for (const auto& [k, x] : st->obj) r.stats[k] = x.AsU64();
  if (!ok) return false;
  *out = r;
  return true;
}

bool CellResult::operator==(const CellResult& o) const {
  return makespan == o.makespan && baseline_makespan == o.baseline_makespan &&
         l1_hits == o.l1_hits && l1_misses == o.l1_misses && l2_hits == o.l2_hits &&
         l2_misses == o.l2_misses && candidates == o.candidates &&
         local_l1_skips == o.local_l1_skips && offloads == o.offloads &&
         ndc_success == o.ndc_success && fallbacks == o.fallbacks &&
         ndc_at_loc == o.ndc_at_loc && chains == o.chains && planned == o.planned &&
         reuse_skips == o.reuse_skips && legality_failures == o.legality_failures &&
         gating_failures == o.gating_failures && transforms == o.transforms &&
         stats == o.stats;
}

namespace {

/// The compiled-vs-policy dispatch shared by RunCell and RunCellObsSummary.
metrics::SchemeResult RunSpec(metrics::Experiment& exp, const CellSpec& spec) {
  bool compiled = spec.coarse_grain || spec.scheme == metrics::Scheme::kAlgorithm1 ||
                  spec.scheme == metrics::Scheme::kAlgorithm2;
  if (compiled) {
    compiler::CompileOptions opt;
    opt.mode = spec.coarse_grain ? compiler::Mode::kCoarseGrain
               : spec.scheme == metrics::Scheme::kAlgorithm2
                   ? compiler::Mode::kAlgorithm2
                   : compiler::Mode::kAlgorithm1;
    opt.allow_reroute = spec.allow_reroute;
    opt.control_register = spec.control_register;
    return exp.RunCompiled(opt);
  }
  return exp.Run(spec.scheme);
}

}  // namespace

CellResult RunCell(const CellSpec& spec) {
  metrics::Experiment exp(spec.workload, spec.scale, spec.cfg, spec.seed);
  exp.set_sim_threads(spec.sim_threads);
  if (!spec.faults.Empty()) exp.set_faults(&spec.faults);
  metrics::SchemeResult r = RunSpec(exp, spec);

  CellResult out;
  out.makespan = r.run.makespan;
  out.baseline_makespan = exp.Baseline().makespan;
  out.l1_hits = r.run.l1_hits;
  out.l1_misses = r.run.l1_misses;
  out.l2_hits = r.run.l2_hits;
  out.l2_misses = r.run.l2_misses;
  out.candidates = r.run.candidates;
  out.local_l1_skips = r.run.local_l1_skips;
  out.offloads = r.run.offloads;
  out.ndc_success = r.run.ndc_success;
  out.fallbacks = r.run.fallbacks;
  out.ndc_at_loc = r.run.ndc_at_loc;
  out.chains = r.compile_report.chains;
  out.planned = r.compile_report.planned;
  out.reuse_skips = r.compile_report.reuse_skips;
  out.legality_failures = r.compile_report.legality_failures;
  out.gating_failures = r.compile_report.gating_failures;
  out.transforms = r.compile_report.transforms;
  out.stats = r.run.stats.all();
  return out;
}

obs::UtilizationSignals ComputeRunSignals(const sim::StatSet& stats,
                                          std::uint64_t makespan,
                                          const arch::ArchConfig& cfg,
                                          const obs::Registry* reg) {
  obs::MachineShape shape;
  shape.num_cores = static_cast<std::uint64_t>(cfg.num_nodes());
  shape.num_mcs = static_cast<std::uint64_t>(cfg.num_mcs);
  // Directed in-mesh links only; the Mesh's 4-per-node slot table pads the
  // boundary with links no route can use, which would deflate utilization.
  std::uint64_t w = static_cast<std::uint64_t>(cfg.mesh_width);
  std::uint64_t h = static_cast<std::uint64_t>(cfg.mesh_height);
  shape.num_links = 2 * (w * (h - 1) + h * (w - 1));
  shape.dram_data_beat = cfg.dram.data_beat;
  shape.compute_latency = cfg.compute_latency;
  obs::UtilizationSignals sig = obs::ComputeSignals(stats, makespan, shape);
  if (reg != nullptr) {
    std::uint64_t max_busy = 0;
    static constexpr const char kSuffix[] = "/busy_cycles";
    constexpr std::size_t kSuffixLen = sizeof(kSuffix) - 1;
    for (const auto& [path, value] : reg->ScalarSnapshot()) {
      if (path.rfind("noc.link.", 0) == 0 && path.size() > kSuffixLen &&
          path.compare(path.size() - kSuffixLen, kSuffixLen, kSuffix) == 0) {
        if (value > max_busy) max_busy = value;
      }
    }
    obs::RefineMaxLinkBusy(sig, max_busy);
  }
  return sig;
}

json::Value ClassificationJson(const obs::UtilizationSignals& sig,
                               const obs::WindowSampler& sampler) {
  json::Value c = json::Value::Object();
  c.obj["label"] = json::Value::Str(obs::LabelName(obs::Classify(sig)));

  json::Value raw = json::Value::Object();
  auto ri = [&](const char* k, std::uint64_t x) { raw.obj[k] = json::Value::Int(x); };
  ri("makespan", sig.makespan);
  ri("mc_reads", sig.mc_reads);
  ri("mc_writes", sig.mc_writes);
  ri("mc_queue_wait_cycles", sig.mc_queue_wait_cycles);
  ri("mc_row_hits", sig.mc_row_hits);
  ri("mc_row_misses", sig.mc_row_misses);
  ri("noc_link_busy_cycles", sig.noc_link_busy_cycles);
  ri("noc_contention_cycles", sig.noc_contention_cycles);
  ri("sync_stall_cycles", sig.sync_stall_cycles);
  ri("ndc_success", sig.ndc_success);
  ri("core_stall_mem", sig.core_stall_mem);
  ri("core_stall_sync", sig.core_stall_sync);
  ri("core_busy_compute", sig.core_busy_compute);
  ri("num_cores", sig.shape.num_cores);
  ri("num_mcs", sig.shape.num_mcs);
  ri("num_links", sig.shape.num_links);
  ri("dram_data_beat", sig.shape.dram_data_beat);
  ri("compute_latency", sig.shape.compute_latency);
  c.obj["raw"] = std::move(raw);

  json::Value der = json::Value::Object();
  auto rd = [&](const char* k, double x) {
    der.obj[k] = json::Value::Str(obs::FormatFrac(x));
  };
  rd("dram_bw_frac", sig.dram_bw_frac);
  rd("mc_queue_occ", sig.mc_queue_occ);
  rd("avg_queue_wait", sig.avg_queue_wait);
  rd("row_miss_ratio", sig.row_miss_ratio);
  rd("noc_util", sig.noc_util);
  rd("noc_max_link_util", sig.noc_max_link_util);
  rd("sync_frac", sig.sync_frac);
  rd("ndc_busy_frac", sig.ndc_busy_frac);
  rd("compute_frac", sig.compute_frac);
  rd("mem_stall_frac", sig.mem_stall_frac);
  c.obj["derived"] = std::move(der);

  obs::ClassifierThresholds t;
  json::Value th = json::Value::Object();
  th.obj["dram_bw"] = json::Value::Str(obs::FormatFrac(t.dram_bw));
  th.obj["dram_queue_wait"] = json::Value::Str(obs::FormatFrac(t.dram_queue_wait));
  th.obj["noc"] = json::Value::Str(obs::FormatFrac(t.noc));
  th.obj["sync"] = json::Value::Str(obs::FormatFrac(t.sync));
  th.obj["compute"] = json::Value::Str(obs::FormatFrac(t.compute));
  c.obj["thresholds"] = std::move(th);

  c.obj["window_cycles"] = json::Value::Int(sampler.window_cycles());
  json::Value wins = json::Value::Array();
  for (std::size_t w = 0; w < sampler.num_windows(); ++w) {
    json::Value e = json::Value::Object();
    for (int s = 0; s < obs::kNumSignals; ++s) {
      auto sg = static_cast<obs::Signal>(s);
      e.obj[obs::SignalName(sg)] = json::Value::Int(sampler.At(sg, w));
    }
    wins.arr.push_back(std::move(e));
  }
  c.obj["windows"] = std::move(wins);
  return c;
}

json::Value RunCellObsSummary(const CellSpec& spec, std::uint64_t sample_period,
                              std::uint64_t classify_window) {
  json::Value v = json::Value::Object();
  v.obj["workload"] = json::Value::Str(spec.workload);
  v.obj["scheme"] = json::Value::Str(spec.SchemeLabel());
  v.obj["scale"] = json::Value::Str(ScaleName(spec.scale));
  v.obj["obs_enabled"] = json::Value::Bool(obs::kObsEnabled);
  if constexpr (!obs::kObsEnabled) return v;

  obs::ObsOptions oo;
  oo.sample_period = sample_period;
  oo.emit_stage_events = false;  // aggregate summary only; no timeline
  oo.window_cycles = classify_window;
  obs::Observability ob(oo);
  metrics::Experiment exp(spec.workload, spec.scale, spec.cfg, spec.seed);
  exp.set_obs(&ob);
  exp.set_sim_threads(spec.sim_threads);
  if (!spec.faults.Empty()) exp.set_faults(&spec.faults);
  metrics::SchemeResult r = RunSpec(exp, spec);

  v.obj["makespan"] = json::Value::Int(r.run.makespan);
  v.obj["sample_period"] = json::Value::Int(ob.tracer.sample_period());
  v.obj["requests_seen"] = json::Value::Int(ob.tracer.seen());
  v.obj["requests_traced"] = json::Value::Int(ob.tracer.traced());
  v.obj["requests_finished"] = json::Value::Int(ob.tracer.finished());
  v.obj["requests_unfinished"] = json::Value::Int(ob.tracer.unfinished());
  v.obj["total_end_to_end_cycles"] = json::Value::Int(ob.tracer.total_end_to_end());

  json::Value stages = json::Value::Object();
  for (int i = 0; i < obs::kNumStages; ++i) {
    const obs::RequestTracer::StageAgg& a = ob.tracer.aggregates()[i];
    if (a.count == 0) continue;
    json::Value e = json::Value::Object();
    e.obj["count"] = json::Value::Int(a.count);
    e.obj["cycles"] = json::Value::Int(a.cycles);
    stages.obj[obs::StageName(static_cast<obs::Stage>(i))] = std::move(e);
  }
  v.obj["stages"] = std::move(stages);

  json::Value kinds = json::Value::Object();
  for (int i = 0; i < obs::kNumDecisionKinds; ++i) {
    auto k = static_cast<obs::DecisionKind>(i);
    if (ob.decisions.kind_count(k) == 0) continue;
    kinds.obj[obs::DecisionKindName(k)] = json::Value::Int(ob.decisions.kind_count(k));
  }
  v.obj["decisions"] = std::move(kinds);
  json::Value outcomes = json::Value::Object();
  for (int i = 0; i < obs::kNumOutcomes; ++i) {
    auto o = static_cast<obs::Outcome>(i);
    if (ob.decisions.outcome_count(o) == 0) continue;
    outcomes.obj[obs::OutcomeName(o)] = json::Value::Int(ob.decisions.outcome_count(o));
  }
  v.obj["outcomes"] = std::move(outcomes);

  if (classify_window > 0) {
    obs::UtilizationSignals sig =
        ComputeRunSignals(r.run.stats, r.run.makespan, spec.cfg, &ob.registry);
    v.obj["classification"] = ClassificationJson(sig, ob.sampler);
  }
  return v;
}

}  // namespace ndc::harness
