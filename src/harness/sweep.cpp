#include "harness/sweep.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <thread>

#include "harness/pool.hpp"
#include "obs/phase.hpp"

namespace ndc::harness {

json::Value SweepSummary::ToJson() const {
  json::Value v = json::Value::Object();
  v.obj["figure"] = json::Value::Str(figure);
  v.obj["jobs"] = json::Value::Int(static_cast<std::uint64_t>(jobs));
  v.obj["cells"] = json::Value::Int(cells);
  v.obj["cache_hits"] = json::Value::Int(cache_hits);
  v.obj["sim_invocations"] = json::Value::Int(sim_invocations);
  v.obj["cache_load_errors"] = json::Value::Int(cache_load_errors);
  v.obj["elapsed_ms"] = json::Value::Int(elapsed_ms);
  if (!phase_ms.empty()) {
    json::Value ph = json::Value::Object();
    for (const auto& [k, ms] : phase_ms) ph.obj[k] = json::Value::Int(ms);
    v.obj["phases"] = std::move(ph);
  }
  if (sim_events > 0) {
    v.obj["sim_events"] = json::Value::Int(sim_events);
    v.obj["sim_events_per_sec"] = json::Value::Double(sim_events_per_sec);
  }
  return v;
}

namespace {

/// Periodic progress/ETA lines on stderr while cells are simulating.
class ProgressReporter {
 public:
  ProgressReporter(const std::string& figure, std::size_t to_simulate, std::size_t cached)
      : figure_(figure),
        total_(to_simulate),
        cached_(cached),
        start_(std::chrono::steady_clock::now()),
        tty_(isatty(2) != 0),
        thread_([this] { Loop(); }) {}

  ~ProgressReporter() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    Print(true);
    if (tty_) std::fprintf(stderr, "\n");
  }

  void CellDone() { done_.fetch_add(1, std::memory_order_relaxed); }

 private:
  void Loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(500), [this] { return stop_; })) {
      Print(false);
    }
  }

  void Print(bool final_line) {
    std::size_t done = done_.load(std::memory_order_relaxed);
    double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                      .count();
    char eta[32] = "";
    if (!final_line && done > 0 && done < total_) {
      std::snprintf(eta, sizeof(eta), " | ETA %.1fs",
                    secs / static_cast<double>(done) *
                        static_cast<double>(total_ - done));
    }
    std::fprintf(stderr, "%ssweep %s: %zu/%zu cells simulated (+%zu cached) | %.1fs%s%s",
                 tty_ ? "\r" : "", figure_.c_str(), done, total_, cached_, secs, eta,
                 tty_ ? "   " : "\n");
    std::fflush(stderr);
  }

  std::string figure_;
  std::size_t total_;
  std::size_t cached_;
  std::chrono::steady_clock::time_point start_;
  bool tty_;
  std::atomic<std::size_t> done_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

SweepResult RunSweep(const SweepSpec& spec, const SweepOptions& opt) {
  auto start = std::chrono::steady_clock::now();
  obs::PhaseProfiler::Snapshot phase_base = obs::GlobalPhases().Take();
  SweepResult out;
  out.cells.resize(spec.cells.size());
  out.summary.figure = spec.figure;
  out.summary.jobs = opt.jobs;
  out.summary.cells = spec.cells.size();

  std::unique_ptr<ResultCache> cache;
  if (opt.use_cache) {
    cache = std::make_unique<ResultCache>(opt.cache_dir);
    out.summary.cache_load_errors = cache->load_errors();
  }

  std::vector<std::size_t> misses;
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    if (cache != nullptr && cache->Lookup(spec.cells[i], &out.cells[i])) {
      ++out.summary.cache_hits;
    } else {
      misses.push_back(i);
    }
  }
  out.summary.sim_invocations = misses.size();

  {
    std::unique_ptr<ProgressReporter> progress;
    if (opt.progress && !misses.empty()) {
      progress = std::make_unique<ProgressReporter>(spec.figure, misses.size(),
                                                    out.summary.cache_hits);
    }
    auto run_one = [&](std::size_t mi) {
      std::size_t i = misses[mi];
      CellResult r = RunCell(spec.cells[i]);
      if (cache != nullptr) cache->Insert(spec.cells[i], r);
      out.cells[i] = std::move(r);
      if (progress != nullptr) progress->CellDone();
    };
    WorkStealingPool::ParallelFor(opt.jobs, misses.size(), run_one);
  }

  out.summary.elapsed_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  obs::PhaseProfiler::Snapshot phase_now = obs::GlobalPhases().Take();
  out.summary.phase_ms = phase_now.DeltaMsSince(phase_base);
  out.summary.sim_events = phase_now.sim_events - phase_base.sim_events;
  constexpr int kSim = static_cast<int>(obs::Phase::kSimulate);
  std::uint64_t sim_ns = phase_now.ns[kSim] - phase_base.ns[kSim];
  if (out.summary.sim_events > 0 && sim_ns > 0) {
    out.summary.sim_events_per_sec =
        static_cast<double>(out.summary.sim_events) * 1e9 / static_cast<double>(sim_ns);
  }
  return out;
}

namespace {

json::Value CellLine(const SweepSpec& spec, std::size_t i, const CellResult& r) {
  const CellSpec& c = spec.cells[i];
  json::Value v = json::Value::Object();
  v.obj["figure"] = json::Value::Str(spec.figure);
  v.obj["workload"] = json::Value::Str(c.workload);
  v.obj["scheme"] = json::Value::Str(c.SchemeLabel());
  v.obj["scale"] = json::Value::Str(ScaleName(c.scale));
  if (!c.variant.empty()) v.obj["variant"] = json::Value::Str(c.variant);
  v.obj["seed"] = json::Value::Int(c.seed);
  v.obj["key"] = json::Value::Str(c.Key());
  v.obj["from_cache"] = json::Value::Bool(r.from_cache);
  v.obj["improvement_pct"] = json::Value::Double(r.ImprovementPct());
  v.obj["result"] = r.ToJson();
  return v;
}

}  // namespace

bool ExportJsonl(const SweepSpec& spec, const SweepResult& result, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    f << json::Dump(CellLine(spec, i, result.cells[i])) << "\n";
  }
  json::Value s = json::Value::Object();
  s.obj["summary"] = result.summary.ToJson();
  f << json::Dump(s) << "\n";
  return static_cast<bool>(f);
}

bool ExportCsv(const SweepSpec& spec, const SweepResult& result, const std::string& path) {
  std::ofstream f(path);
  if (!f) return false;
  f << "figure,workload,scheme,scale,variant,seed,key,from_cache,"
       "makespan,baseline_makespan,improvement_pct,l1_miss_rate,l2_miss_rate,"
       "candidates,offloads,ndc_success,fallbacks,"
       "ndc_network,ndc_cache,ndc_mc,ndc_memory,chains,planned,transforms\n";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellSpec& c = spec.cells[i];
    const CellResult& r = result.cells[i];
    char num[64];
    f << spec.figure << ',' << c.workload << ',' << c.SchemeLabel() << ','
      << ScaleName(c.scale) << ',' << c.variant << ',' << c.seed << ',' << c.Key() << ','
      << (r.from_cache ? 1 : 0) << ',' << r.makespan << ',' << r.baseline_makespan << ',';
    std::snprintf(num, sizeof(num), "%.6f,%.6f,%.6f", r.ImprovementPct(), r.L1MissRate(),
                  r.L2MissRate());
    f << num << ',' << r.candidates << ',' << r.offloads << ',' << r.ndc_success << ','
      << r.fallbacks;
    for (std::uint64_t x : r.ndc_at_loc) f << ',' << x;
    f << ',' << r.chains << ',' << r.planned << ',' << r.transforms << "\n";
  }
  return static_cast<bool>(f);
}

bool AppendSummary(const SweepSummary& summary, const std::string& path) {
  std::ofstream f(path, std::ios::app);
  if (!f) return false;
  f << json::Dump(summary.ToJson()) << "\n";
  return static_cast<bool>(f);
}

}  // namespace ndc::harness
