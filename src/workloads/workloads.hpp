#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"

namespace ndc::workloads {

/// Problem scale. kTest keeps ctest fast; kSmall is the bench default;
/// kFull stresses the memory system harder (longer runs).
enum class Scale { kTest, kSmall, kFull };

/// Static description of one stand-in kernel.
struct WorkloadInfo {
  std::string name;     ///< paper benchmark name (md, swim, ocean, ...)
  std::string suite;    ///< "SPEC OMP" or "SPLASH-2"
  std::string pattern;  ///< access-pattern class implemented by the stand-in
};

/// The paper's 20 benchmarks in Figure-2 order.
const std::vector<WorkloadInfo>& AllWorkloads();

/// Names only (Figure order).
std::vector<std::string> BenchmarkNames();

/// Builds the stand-in kernel for `name`. Each kernel is an IR program whose
/// access-pattern class matches the original benchmark (stencils, blocked
/// and triangular linear algebra, butterflies, neighbor-list n-body,
/// tree/indirect traversals, DP wavefronts, image filters), sized by
/// `scale` and seeded deterministically.
ir::Program BuildWorkload(const std::string& name, Scale scale, std::uint64_t seed = 1);

}  // namespace ndc::workloads
