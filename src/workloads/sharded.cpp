#include "workloads/sharded.hpp"

#include <stdexcept>

#include "verify/verify.hpp"

namespace ndc::workloads {
namespace {

using arch::Op;
using ir::Int;
using ir::IntVec;
using ir::Operand;

Int ChunkFor(Scale scale) {
  switch (scale) {
    case Scale::kTest: return 24;
    case Scale::kSmall: return 256;
    case Scale::kFull: return 1024;
  }
  return 256;
}

struct ShardBuilder {
  ir::Program p;
  Int C;      ///< shard (core) count — outer trip
  Int chunk;  ///< iterations per shard — inner trip
  ir::LoopNest* cur = nullptr;

  ShardBuilder(std::string name, Scale scale, int num_cores)
      : C(std::max(1, num_cores)), chunk(ChunkFor(scale)) {
    p.name = std::move(name);
  }

  Int N() const { return C * chunk; }

  int arr(const std::string& name, Int elems) { return p.AddArray(name, {elems}); }

  /// Depth-2 nest: c in [0,C), i_local in [0,chunk). Annotated parallel on
  /// level 0 (the shard dimension).
  ir::LoopNest& shard_nest() {
    ir::LoopNest n;
    n.loops = {{0, C - 1, -1, 0, -1, 0}, {0, chunk - 1, -1, 0, -1, 0}};
    n.parallel.level = 0;
    p.nests.push_back(std::move(n));
    cur = &p.nests.back();
    return *cur;
  }

  /// Depth-2 combine nest with a trip-1 outer loop: block distribution
  /// lands every iteration on core 0, so the inner loop runs sequentially.
  ir::LoopNest& seq_nest(Int inner_trip) {
    ir::LoopNest n;
    n.loops = {{0, 0, -1, 0, -1, 0}, {0, inner_trip - 1, -1, 0, -1, 0}};
    n.parallel.level = 0;
    p.nests.push_back(std::move(n));
    cur = &p.nests.back();
    return *cur;
  }

  /// Access at global index chunk*c + i_local + off.
  Operand global(int a, Int off) { return aff(a, {chunk, 1}, off); }
  /// Access indexed by the shard id only (per-core slot).
  Operand percore(int a, Int off = 0) { return aff(a, {1, 0}, off); }
  /// Access indexed by the inner iterator only.
  Operand inner(int a, Int off = 0) { return aff(a, {0, 1}, off); }
  /// Constant cell (same element every iteration).
  Operand cell(int a, Int off = 0) { return aff(a, {0, 0}, off); }

  Operand aff(int a, IntVec coefs, Int off) {
    ir::AffineAccess acc;
    acc.array = a;
    acc.F = ir::IntMat(1, cur->depth());
    for (int c = 0; c < cur->depth(); ++c) acc.F.at(0, c) = coefs[static_cast<std::size_t>(c)];
    acc.f = {off};
    return Operand::Affine(std::move(acc));
  }

  void stmt(Operand lhs, Op op, Operand r0, Operand r1) {
    ir::Stmt s;
    s.id = p.NextStmtId();
    s.lhs = std::move(lhs);
    s.op = op;
    s.rhs0 = std::move(r0);
    s.rhs1 = std::move(r1);
    cur->body.push_back(std::move(s));
  }
};

// shard.stream: stmt0 writes the front half of x, stmt1 reads the back
// half. The uniform solve cannot bound the N-element offset (an integral
// solution exists outside the iteration space), so plain dependence
// analysis reports the pair unknown; only the section-disjointness
// refinement proves the halves never meet.
ir::Program MakeShardStream(ShardBuilder b) {
  Int N = b.N();
  int x = b.arr("x", 2 * N);
  int a = b.arr("a", N);
  int out = b.arr("out", N);
  b.shard_nest();
  b.stmt(b.global(x, 0), Op::kAdd, b.global(a, 0), b.global(x, N));
  b.stmt(b.global(out, 0), Op::kMul, b.global(x, N), b.global(a, 0));
  return std::move(b.p);
}

// shard.stencil: halo-offset Jacobi step over separate in/out buffers —
// every cross-shard read is of a read-only array, so level 0 is DOALL with
// no obligations.
ir::Program MakeShardStencil(ShardBuilder b) {
  Int N = b.N();
  int in = b.arr("in", N + 2);
  int out = b.arr("out", N + 2);
  b.shard_nest();
  b.stmt(b.global(out, 1), Op::kAdd, b.global(in, 0), b.global(in, 2));
  return std::move(b.p);
}

// shard.reduce: per-core partial sums (the accumulator is indexed by the
// shard id, so its self-dependence is carried at level 1, inside one core)
// followed by a sequential combine nest whose trip-1 outer loop pins every
// iteration to core 0.
ir::Program MakeShardReduce(ShardBuilder b) {
  Int N = b.N();
  int data = b.arr("data", N);
  int acc = b.arr("acc", b.C);
  int total = b.arr("total", 1);
  b.shard_nest();
  b.stmt(b.percore(acc), Op::kAdd, b.percore(acc), b.global(data, 0));
  b.seq_nest(b.C);
  b.stmt(b.cell(total), Op::kAdd, b.cell(total), b.inner(acc));
  return std::move(b.p);
}

// shard.priv: a per-core temporary (privatization realized by array
// expansion over the shard id). The classifier reports tmp privatizable —
// its carried output dependence sits at level 1 and is discharged by that
// evidence — while level 0 stays obligation-free.
ir::Program MakeShardPriv(ShardBuilder b) {
  Int N = b.N();
  int a = b.arr("a", N);
  int w = b.arr("w", N);
  int tmp = b.arr("tmp", b.C);
  int out = b.arr("out", N);
  b.shard_nest();
  b.stmt(b.percore(tmp), Op::kMul, b.global(a, 0), b.global(w, 0));
  b.stmt(b.global(out, 0), Op::kAdd, b.percore(tmp), b.global(w, 0));
  return std::move(b.p);
}

// shard.reduce.atomic / shard.reduce.lock: every core accumulates straight
// into the one shared total cell — a contended reduction the classifier
// recognizes but cannot privatize away. The RMW statement is sync-lowered:
// kNdcAtomic sends a fetch-add to the cell's home sync engine; kHostLock
// wraps a host-side load/compute/store in a ticket-lock critical section.
// A barrier on the sync array's last cell closes the nest.
ir::Program MakeShardReduceSync(ShardBuilder b, ir::SyncKind kind) {
  Int N = b.N();
  int data = b.arr("data", N);
  int total = b.arr("total", 1);
  int sync = b.arr("__sync", 1);
  ir::LoopNest& n = b.shard_nest();
  b.stmt(b.cell(total), Op::kAdd, b.cell(total), b.global(data, 0));
  n.body.back().sync.kind = kind;
  n.sync.sync_array = sync;
  n.sync.barrier_after = true;
  return std::move(b.p);
}

// shard.stencil.wave: a true DOACROSS — each shard's chunk reads the value
// its left neighbour wrote (out[g+chunk] = out[g] + in[g], so the flow
// dependence has outer distance exactly 1). Post/wait lowering orders the
// shards into a pipeline: core c posts into __sync[c] per finished
// iteration, core c+1 waits on it before consuming; __sync's last cell
// hosts the closing barrier.
ir::Program MakeShardStencilWave(ShardBuilder b) {
  Int N = b.N();
  int in = b.arr("in", N);
  int out = b.arr("out", N + b.chunk);
  int sync = b.arr("__sync", b.C + 1);
  ir::LoopNest& n = b.shard_nest();
  b.stmt(b.global(out, b.chunk), Op::kAdd, b.global(out, 0), b.global(in, 0));
  if (b.C > 1) {
    // A single shard carries no cross-shard dependence (the trip-1 outer
    // loop is trivially DOALL), so post/wait would be S504-rejected by the
    // gate; the degenerate case keeps only the closing barrier.
    n.sync.kind = ir::SyncKind::kPostWait;
    n.sync.distance = 1;
  }
  n.sync.sync_array = sync;
  n.sync.barrier_after = true;
  return std::move(b.p);
}

// shard.racy (test-only): a first-order recurrence out[i] = out[i-1] + a[i]
// crosses every shard boundary; the gate must reject it.
ir::Program MakeShardRacy(ShardBuilder b) {
  Int N = b.N();
  int a = b.arr("a", N);
  int out = b.arr("out", N + 1);
  b.shard_nest();
  b.stmt(b.global(out, 1), Op::kAdd, b.global(out, 0), b.global(a, 0));
  return std::move(b.p);
}

/// The verifier gate, now the real thing: run the P4xx annotation proofs
/// and the S5xx synchronization audit over the generated program and
/// reject on any error. Scenario construction discharges obligations
/// physically (per-core accumulators, expanded temporaries, sync
/// lowering), so a throw here means the generator produced code it cannot
/// prove race-free — a bug, never a recoverable condition. Structure and
/// legality passes stay off: they audit compiler output, and boundary
/// subscripts some scenarios use on purpose are their business to warn
/// about post-compile.
void GateOrThrow(const ir::Program& p) {
  verify::VerifyOptions vo;
  vo.check_structure = false;
  vo.check_legality = false;
  verify::Report rep = verify::VerifyProgram(p, vo);
  if (rep.Clean()) return;
  throw std::logic_error("sharded generator gate failed for " + p.name + ":\n" +
                         rep.ToText());
}

}  // namespace

const std::vector<WorkloadInfo>& ShardedScenarios() {
  static const std::vector<WorkloadInfo> kAll = {
      {"shard.stream", "sharded", "disjoint-halves stream (needs section disjointness)"},
      {"shard.stencil", "sharded", "halo Jacobi step, separate buffers"},
      {"shard.reduce", "sharded", "per-core partials + sequential combine"},
      {"shard.priv", "sharded", "per-core expanded temporary"},
      {"shard.reduce.atomic", "sharded", "shared total via NDC fetch-add + barrier"},
      {"shard.reduce.lock", "sharded", "shared total via ticket-lock RMW + barrier"},
      {"shard.stencil.wave", "sharded", "DOACROSS pipeline via post/wait (dist 1)"},
  };
  return kAll;
}

std::vector<std::string> ShardedNames() {
  std::vector<std::string> names;
  for (const WorkloadInfo& w : ShardedScenarios()) names.push_back(w.name);
  return names;
}

bool IsShardedScenario(const std::string& name) {
  return name.rfind("shard.", 0) == 0;
}

ir::Program BuildShardedWorkload(const std::string& name, Scale scale, int num_cores,
                                 std::uint64_t seed) {
  (void)seed;  // scenarios are deterministic; kept for BuildWorkload parity
  ShardBuilder b(name, scale, num_cores);
  ir::Program p;
  if (name == "shard.stream") {
    p = MakeShardStream(std::move(b));
  } else if (name == "shard.stencil") {
    p = MakeShardStencil(std::move(b));
  } else if (name == "shard.reduce") {
    p = MakeShardReduce(std::move(b));
  } else if (name == "shard.priv") {
    p = MakeShardPriv(std::move(b));
  } else if (name == "shard.reduce.atomic") {
    p = MakeShardReduceSync(std::move(b), ir::SyncKind::kNdcAtomic);
  } else if (name == "shard.reduce.lock") {
    p = MakeShardReduceSync(std::move(b), ir::SyncKind::kHostLock);
  } else if (name == "shard.stencil.wave") {
    p = MakeShardStencilWave(std::move(b));
  } else if (name == "shard.racy") {
    p = MakeShardRacy(std::move(b));
  } else {
    throw std::invalid_argument("unknown sharded scenario: " + name);
  }
  GateOrThrow(p);
  return p;
}

}  // namespace ndc::workloads
