#pragma once

#include <string>
#include <vector>

#include "ir/program.hpp"
#include "workloads/workloads.hpp"

namespace ndc::workloads {

/// The sharded scenario family: kernels whose outermost loop is an explicit
/// shard (core) dimension — iteration i of the original loop becomes
/// (c, i_local) with i = c*chunk + i_local, so the code generator's block
/// distribution assigns exactly one shard per core. Every emitted nest
/// carries a ParallelAnnotation on level 0, and the generator refuses to
/// return a program the parallelism classifier cannot prove: obligations
/// are discharged *by construction* (per-core accumulators for reductions,
/// expanded arrays for privatization) before the gate runs.
///
/// Scenarios (all Figure-order scale-aware like the 20 stand-ins):
///  - shard.stream:  disjoint-halves stream — writes x[0,N), reads x[N,2N);
///    provable only through the array-section disjointness refinement.
///  - shard.stencil: halo-offset Jacobi step, separate in/out arrays.
///  - shard.reduce:  per-core partial sums + a sequential (trip-1 outer)
///    combine nest; the reduction self-dependence sits at level 1.
///  - shard.priv:    per-core expanded temporary (real privatization); the
///    classifier still reports the temp as privatizable evidence.
/// The test-only scenario "shard.racy" (accepted by BuildShardedWorkload,
/// absent from ShardedScenarios) carries a genuine cross-shard dependence
/// and must make the gate throw.
const std::vector<WorkloadInfo>& ShardedScenarios();

/// Names only.
std::vector<std::string> ShardedNames();

/// True for names of the shard.* family (including shard.racy).
bool IsShardedScenario(const std::string& name);

/// Builds scenario `name` split across `num_cores` shards. Throws
/// std::invalid_argument for unknown names and std::logic_error when the
/// parallelism classifier cannot prove an annotated level DOALL with all
/// obligations accepted (the verifier gate).
ir::Program BuildShardedWorkload(const std::string& name, Scale scale, int num_cores,
                                 std::uint64_t seed = 1);

}  // namespace ndc::workloads
