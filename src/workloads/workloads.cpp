#include "workloads/workloads.hpp"

#include <cassert>
#include <stdexcept>

#include "sim/rng.hpp"

namespace ndc::workloads {
namespace {

using arch::Op;
using ir::Int;
using ir::IntVec;
using ir::Operand;

/// Small DSL for assembling kernels: 1-D arrays addressed by flattened
/// affine functions of the iteration vector.
struct Builder {
  ir::Program p;
  Scale scale;
  sim::Rng rng;
  ir::LoopNest* cur = nullptr;

  Builder(std::string name, Scale s, std::uint64_t seed) : scale(s), rng(seed) {
    p.name = std::move(name);
  }

  Int S(Int test, Int small, Int full) const {
    switch (scale) {
      case Scale::kTest: return test;
      case Scale::kSmall: return small;
      case Scale::kFull: return full;
    }
    return small;
  }

  int arr(const std::string& name, Int elems) { return p.AddArray(name, {elems}); }

  ir::LoopNest& nest(std::vector<ir::Loop> loops) {
    ir::LoopNest n;
    n.loops = std::move(loops);
    p.nests.push_back(std::move(n));
    cur = &p.nests.back();
    return *cur;
  }
  ir::LoopNest& nest1(Int n0) { return nest({{0, n0 - 1, -1, 0, -1, 0}}); }
  ir::LoopNest& nest2(Int n0, Int n1) {
    return nest({{0, n0 - 1, -1, 0, -1, 0}, {0, n1 - 1, -1, 0, -1, 0}});
  }
  ir::LoopNest& nest3(Int n0, Int n1, Int n2) {
    return nest({{0, n0 - 1, -1, 0, -1, 0},
                 {0, n1 - 1, -1, 0, -1, 0},
                 {0, n2 - 1, -1, 0, -1, 0}});
  }
  /// i in [0,n), j in [0, i] (lower-triangular).
  ir::LoopNest& tri2(Int n) {
    return nest({{0, n - 1, -1, 0, -1, 0}, {0, 0, -1, 0, 0, 1}});
  }

  Operand aff(int a, IntVec coefs, Int off) {
    assert(cur != nullptr && coefs.size() == static_cast<std::size_t>(cur->depth()));
    ir::AffineAccess acc;
    acc.array = a;
    acc.F = ir::IntMat(1, cur->depth());
    for (int c = 0; c < cur->depth(); ++c) acc.F.at(0, c) = coefs[static_cast<std::size_t>(c)];
    acc.f = {off};
    return Operand::Affine(std::move(acc));
  }

  Operand ind(int idx_array, IntVec coefs, Int off, int target) {
    Operand o = aff(idx_array, std::move(coefs), off);
    o.kind = Operand::Kind::kIndirect;
    o.target_array = target;
    return o;
  }

  /// Replicates all nests built so far `passes`-1 more times (iterative
  /// time-stepping, as in the original applications). Statement ids are
  /// shared across passes: it is the same static code executing again.
  void Replicate(int passes) {
    std::vector<ir::LoopNest> base = p.nests;
    for (int t = 1; t < passes; ++t) {
      for (const ir::LoopNest& n : base) p.nests.push_back(n);
    }
    cur = nullptr;
  }

  void stmt(Operand lhs, Op op, Operand r0, Operand r1) {
    ir::Stmt s;
    s.id = p.NextStmtId();
    s.lhs = std::move(lhs);
    s.op = op;
    s.rhs0 = std::move(r0);
    s.rhs1 = std::move(r1);
    cur->body.push_back(std::move(s));
  }

  /// Index array whose entries point into [0, target_size) near a moving
  /// center (locality window w).
  int idx_local(const std::string& name, Int n, Int target_size, Int w) {
    int a = arr(name, n);
    std::vector<Int>& data = p.index_data[a];
    data.resize(static_cast<std::size_t>(n));
    for (Int i = 0; i < n; ++i) {
      Int center = i * target_size / n;
      Int v = center + rng.NextInRange(-w, w);
      data[static_cast<std::size_t>(i)] = std::clamp<Int>(v, 0, target_size - 1);
    }
    return a;
  }

  /// Uniformly random index array (global, poor locality).
  int idx_global(const std::string& name, Int n, Int target_size) {
    int a = arr(name, n);
    std::vector<Int>& data = p.index_data[a];
    data.resize(static_cast<std::size_t>(n));
    for (Int i = 0; i < n; ++i) {
      data[static_cast<std::size_t>(i)] = static_cast<Int>(rng.NextBelow(static_cast<std::uint64_t>(target_size)));
    }
    return a;
  }

  /// Skewed index array: fraction `hot` of accesses hit the first
  /// `target_size/16` entries (tree roots / hot cells).
  int idx_skewed(const std::string& name, Int n, Int target_size, double hot) {
    int a = arr(name, n);
    std::vector<Int>& data = p.index_data[a];
    data.resize(static_cast<std::size_t>(n));
    Int hot_range = std::max<Int>(1, target_size / 16);
    for (Int i = 0; i < n; ++i) {
      Int v = rng.NextBool(hot)
                  ? static_cast<Int>(rng.NextBelow(static_cast<std::uint64_t>(hot_range)))
                  : static_cast<Int>(rng.NextBelow(static_cast<std::uint64_t>(target_size)));
      data[static_cast<std::size_t>(i)] = v;
    }
    return a;
  }
};

// ---------------------------------------------------------------------------
// The 20 stand-in kernels (paper Figure-2 order).
// ---------------------------------------------------------------------------

// Archetype notes (see DESIGN.md):
//  A: 128-byte-strided streams over L2-resident arrays -> link-buffer meets
//     on the second time step (the bulk of NDC, like the paper's Fig. 13).
//  B: same-L2-line operand pairs -> cache-controller meets.
//  C: single-pass same-page large-stride pairs -> memory-queue/bank meets.
//  Dense (8-byte) strides mark locality-rich code NDC must leave alone.

// md: neighbor-list molecular dynamics — indirect gathers plus an A-stream.
ir::Program MakeMd(Builder b) {
  Int P = b.S(200, 1100, 2200), K = 8;
  int pos = b.arr("pos", P * K * 4);
  int q = b.arr("q", P * K * 16);
  int f = b.arr("f", P);
  b.nest2(P, K);
  int nbr = b.idx_local("nbr", P * K, P * K * 4, 4096);
  b.stmt(b.aff(f, {1, 0}, 0), Op::kAdd, b.ind(nbr, {K, 1}, 0, pos),
         b.aff(q, {K * 16, 16}, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// bwaves: dense 3-D stencil (locality-rich control case).
ir::Program MakeBwaves(Builder b) {
  Int N = b.S(12, 21, 27);
  Int NN = N + 2;
  int u = b.arr("u", NN * NN * NN);
  int v = b.arr("v", NN * NN * NN);
  int w = b.arr("w", NN * NN * NN);
  int fl = b.arr("fl", NN * NN * NN * 16);
  int fr = b.arr("fr", NN * NN * NN * 16);
  b.nest3(N, N, N);
  IntVec c{NN * NN, NN, 1};
  IntVec c16{NN * NN * 16, NN * 16, 16};
  b.stmt(b.aff(u, c, 0), Op::kAdd, b.aff(v, c, 1), b.aff(v, c, NN));
  b.stmt(b.aff(w, c, 0), Op::kAdd, b.aff(fl, c16, 0), b.aff(fr, c16, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// nab: two independent A-streams (direct + transposed-ish offsets).
ir::Program MakeNab(Builder b) {
  Int P = b.S(50, 210, 420), Q = 48;
  int a = b.arr("a", P * Q * 16);
  int bb = b.arr("b", P * Q * 16);
  int e = b.arr("e", P * Q);
  b.nest2(P, Q);
  b.stmt(b.aff(e, {Q, 1}, 0), Op::kAdd, b.aff(a, {Q * 16, 16}, 0),
         b.aff(bb, {16, P * 16}, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// bt: B-archetype same-L2-line pairs plus an A-stream.
ir::Program MakeBt(Builder b) {
  Int N = b.S(44, 96, 136);
  int a = b.arr("a", N * N * 32 + 64);
  int c = b.arr("c", N * N * 16);
  int x = b.arr("x", N * N);
  int y = b.arr("y", N * N);
  b.nest2(N, N);
  // Same 256-byte L2 line: offsets 0 and +16 elements (128 B) on a
  // 32-element (256 B) stride.
  b.stmt(b.aff(x, {N, 1}, 0), Op::kAdd, b.aff(a, {N * 32, 32}, 0),
         b.aff(a, {N * 32, 32}, 16));
  b.stmt(b.aff(y, {N, 1}, 0), Op::kAdd, b.aff(c, {N * 16, 16}, 0),
         b.aff(x, {N, 1}, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// fma3d: unstructured FEM — two indirect gathers over a large mesh.
ir::Program MakeFma3d(Builder b) {
  Int E = b.S(1600, 9600, 19200), C = 4;
  int coord = b.arr("coord", E * 16);
  int vel = b.arr("vel", E * 16);
  int s = b.arr("s", E);
  b.nest2(E / 4, C);
  int en = b.idx_local("en", (E / 4) * C, E * 16, 2048);
  int en2 = b.idx_local("en2", (E / 4) * C, E * 16, 2048);
  b.stmt(b.aff(s, {1, 0}, 0), Op::kAdd, b.ind(en, {C, 1}, 0, coord),
         b.ind(en2, {C, 1}, 0, vel));
  b.Replicate(2);
  return std::move(b.p);
}

// swim: dense shallow-water stencils with p-group reuse + one A-stream pair
// (the Algorithm-1-vs-2 tradeoff case).
ir::Program MakeSwim(Builder b) {
  Int N = b.S(40, 100, 144);
  Int M = N + 2;
  int u = b.arr("u", M * M * 16);
  int pp = b.arr("p", M * M * 16);
  int cu = b.arr("cu", M * M);
  int cv = b.arr("cv", M * M);
  b.nest2(N, N);
  IntVec r16{M * 16, 16};
  // p is reused by the second statement one row later: Algorithm 2 skips,
  // Algorithm 1 offloads and pays the locality price.
  b.stmt(b.aff(cu, {M, 1}, 0), Op::kAdd, b.aff(pp, r16, M * 16), b.aff(u, r16, 0));
  b.stmt(b.aff(cv, {M, 1}, 0), Op::kAdd, b.aff(pp, r16, 16), b.aff(u, r16, 8));
  b.Replicate(2);
  return std::move(b.p);
}

// imagick: dense convolution (locality-rich) + an A-stream blend.
ir::Program MakeImagick(Builder b) {
  Int N = b.S(40, 100, 144);
  Int M = N + 2;
  int in = b.arr("in", M * M);
  int tex = b.arr("tex", M * M * 16);
  int tex2 = b.arr("tex2", M * M * 16);
  int out = b.arr("out", M * M);
  b.nest2(N, N);
  IntVec r{M, 1};
  b.stmt(b.aff(out, r, 0), Op::kAdd, b.aff(in, r, 0), b.aff(in, r, M + 1));
  b.stmt(b.aff(out, r, 1), Op::kMul, b.aff(tex, {M * 16, 16}, 0),
         b.aff(tex2, {M * 16, 16}, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// mgrid: C-archetype — single-pass coarse restriction whose same-page pairs
// meet at the memory controller / DRAM bank.
ir::Program MakeMgrid(Builder b) {
  Int N = b.S(1000, 5500, 11000);
  int u = b.arr("u", N * 64 + 64);
  int rr = b.arr("r", N);
  int g = b.arr("g", N * 16);
  b.nest1(N);
  // 512-byte stride, +128 B partner: same 4 KB page and same DRAM bank.
  b.stmt(b.aff(rr, {1}, 0), Op::kAdd, b.aff(u, {64}, 0), b.aff(u, {64}, 16));
  b.nest1(N);
  b.stmt(b.aff(rr, {1}, 0), Op::kMul, b.aff(g, {16}, 0), b.aff(rr, {1}, 0));
  return std::move(b.p);
}

// applu: SSOR wavefront (flow deps limit movement) + A-streams.
ir::Program MakeApplu(Builder b) {
  Int N = b.S(40, 100, 144);
  Int M = N + 2;
  int x = b.arr("x", M * M);
  int f = b.arr("f", M * M * 16);
  int g = b.arr("g", M * M * 16);
  int rhs = b.arr("rhs", M * M);
  b.nest2(N, N);
  IntVec r{M, 1};
  IntVec r16{M * 16, 16};
  b.stmt(b.aff(rhs, r, 0), Op::kAdd, b.aff(f, r16, 0), b.aff(g, r16, 0));
  b.stmt(b.aff(x, r, M + 1), Op::kAdd, b.aff(x, r, 1), b.aff(x, r, M));
  b.Replicate(2);
  return std::move(b.p);
}

// smith.wa: DP wavefront (diagonal dep) + strided scoring A-pair.
ir::Program MakeSmithWa(Builder b) {
  Int N = b.S(40, 100, 144);
  Int M = N + 2;
  int h = b.arr("H", M * M);
  int sub = b.arr("S", M * M * 16);
  int gap = b.arr("gap", M * M * 16);
  int e = b.arr("E", M * M);
  b.nest2(N, N);
  IntVec r{M, 1};
  IntVec r16{M * 16, 16};
  b.stmt(b.aff(h, r, M + 1), Op::kAdd, b.aff(h, r, 0), b.aff(sub, r16, 0));
  b.stmt(b.aff(e, r, 0), Op::kAdd, b.aff(sub, r16, 8), b.aff(gap, r16, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// kdtree: skewed tree-walk indirection + query A-stream.
ir::Program MakeKdtree(Builder b) {
  Int Q = b.S(800, 4000, 8000), D = 10;
  int tree = b.arr("tree", Q * 16);
  int query = b.arr("query", Q * D * 16);
  int res = b.arr("res", Q);
  b.nest2(Q / 8, D);
  int tidx = b.idx_skewed("tidx", (Q / 8) * D, Q * 16, 0.2);
  b.stmt(b.aff(res, {1, 0}, 0), Op::kAdd, b.ind(tidx, {D, 1}, 0, tree),
         b.aff(query, {D * 16, 16}, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// barnes: Barnes-Hut walk — two skewed indirections (hot cells).
ir::Program MakeBarnes(Builder b) {
  Int B = b.S(600, 3200, 6400), L = 12;
  int cell = b.arr("cell", B * 16);
  int mass = b.arr("mass", B * 16);
  int acc = b.arr("acc", B);
  b.nest2(B / 8, L);
  int cidx = b.idx_skewed("cidx", (B / 8) * L, B * 16, 0.1);
  int cidx2 = b.idx_skewed("cidx2", (B / 8) * L, B * 16, 0.1);
  b.stmt(b.aff(acc, {1, 0}, 0), Op::kAdd, b.ind(cidx, {L, 1}, 0, cell),
         b.ind(cidx2, {L, 1}, 0, mass));
  b.Replicate(2);
  return std::move(b.p);
}

// cholesky: triangular panel updates with B-archetype same-line pairs.
ir::Program MakeCholesky(Builder b) {
  Int N = b.S(52, 128, 180);
  int a = b.arr("A", N * N * 32 + 64);
  int d = b.arr("D", N * N);
  b.tri2(N);
  b.stmt(b.aff(d, {N, 1}, 0), Op::kAdd, b.aff(a, {N * 32, 32}, 0),
         b.aff(a, {N * 32, 32}, 16));
  b.Replicate(2);
  return std::move(b.p);
}

// fft: butterfly stages over an L2-resident array; later stages re-touch
// lines the first stage fetched.
ir::Program MakeFft(Builder b) {
  Int N = b.S(1024, 4096, 8192);
  int x = b.arr("X", N * 16);
  int y = b.arr("Y", N);
  for (Int st = 1; st <= 4; st *= 2) {
    Int groups = N / (2 * st);
    b.nest2(groups, st);
    b.stmt(b.aff(y, {2 * st, 1}, 0), Op::kAdd, b.aff(x, {2 * st * 16, 16}, 0),
           b.aff(x, {2 * st * 16, 16}, st * 16));
  }
  return std::move(b.p);
}

// lu: triangular 3-level factorization (Figure 10 shape), panel reuse.
ir::Program MakeLu(Builder b) {
  Int N = b.S(22, 44, 62), K = 6;
  Int M = (N + K) * 16;
  int a = b.arr("A", (N + K) * M + 64);
  b.nest({{0, K - 1, -1, 0, -1, 0},
          {1, N - 1, 0, 1, -1, 0},
          {1, N - 1, 0, 1, -1, 0}});
  b.stmt(b.aff(a, {0, M, 16}, 0), Op::kAdd, b.aff(a, {16, M, 0}, 0),
         b.aff(a, {M, 0, 16}, 0));
  // Pivot-row scaling: two independent strided panels.
  Int P = N * N / 2;
  int pl = b.arr("PL", P * 16);
  int pu = b.arr("PU", P * 16);
  int pd = b.arr("PD", P);
  b.nest1(P);
  b.stmt(b.aff(pd, {1}, 0), Op::kAdd, b.aff(pl, {16}, 0), b.aff(pu, {16}, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// ocean: dependence-carried relaxation + A-stream vorticity.
ir::Program MakeOcean(Builder b) {
  Int N = b.S(44, 100, 144);
  Int M = N + 2;
  int q = b.arr("q", M * M);
  int w = b.arr("w", M * M * 16);
  int w2 = b.arr("w2", M * M * 16);
  int psi = b.arr("psi", M * M);
  b.nest2(N, N);
  IntVec r{M, 1};
  IntVec r16{M * 16, 16};
  b.stmt(b.aff(q, r, 0), Op::kAdd, b.aff(q, r, M), b.aff(q, r, 1));
  b.stmt(b.aff(psi, r, 0), Op::kAdd, b.aff(w, r16, 0), b.aff(w2, r16, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// radiosity: globally random interactions (unpredictable windows, Fig. 5).
ir::Program MakeRadiosity(Builder b) {
  Int I = b.S(640, 3200, 6400), J = 10;
  int ff = b.arr("ff", I * 16);
  int srad = b.arr("srad", I * 16);
  int rad = b.arr("rad", I);
  b.nest2(I / 8, J);
  int fidx = b.idx_global("fidx", (I / 8) * J, I * 16);
  int sidx = b.idx_global("sidx", (I / 8) * J, I * 16);
  b.stmt(b.aff(rad, {1, 0}, 0), Op::kAdd, b.ind(fidx, {J, 1}, 0, ff),
         b.ind(sidx, {J, 1}, 0, srad));
  b.Replicate(2);
  return std::move(b.p);
}

// raytrace: skewed scene indirection + ray A-stream.
ir::Program MakeRaytrace(Builder b) {
  Int R = b.S(800, 4000, 8000), D = 6;
  int scene = b.arr("scene", R * 16);
  int ray = b.arr("ray", R * D * 16);
  int pix = b.arr("pix", R);
  b.nest2(R / 8, D);
  int oidx = b.idx_skewed("oidx", (R / 8) * D, R * 16, 0.3);
  b.stmt(b.aff(pix, {1, 0}, 0), Op::kAdd, b.ind(oidx, {D, 1}, 0, scene),
         b.aff(ray, {D * 16, 16}, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// volrend: semi-regular volume indirection + opacity A-stream.
ir::Program MakeVolrend(Builder b) {
  Int R = b.S(640, 3200, 6400), ST = 8;
  int vol = b.arr("vol", R * 16);
  int opac = b.arr("opac", R * ST * 16);
  int val = b.arr("val", R);
  b.nest2(R / 8, ST);
  int vidx = b.idx_local("vidx", (R / 8) * ST, R * 16, 8192);
  b.stmt(b.aff(val, {1, 0}, 0), Op::kAdd, b.ind(vidx, {ST, 1}, 0, vol),
         b.aff(opac, {ST * 16, 16}, 0));
  b.Replicate(2);
  return std::move(b.p);
}

// water: a reused operand (Algorithm 2 defers to locality) + a C-archetype
// single-pass pair that can meet near memory.
ir::Program MakeWater(Builder b) {
  Int M = b.S(200, 1000, 2000), K = 10;
  int x = b.arr("x", M * K * 2);
  int xm = b.arr("xm", M);
  int e = b.arr("e", M);
  int g = b.arr("g", M * K * 8 + 2112);
  int e2 = b.arr("e2", M * K);
  b.nest2(M, K);
  int widx = b.idx_local("widx", M * K, M * K * 2, 1024);
  // xm[m] is reused K times across the inner loop: locality should win.
  b.stmt(b.aff(e, {1, 0}, 0), Op::kAdd, b.ind(widx, {K, 1}, 0, x), b.aff(xm, {1, 0}, 0));
  // Operands 16 KB apart: same memory controller, different DRAM banks —
  // the memory-queue NDC candidate.
  b.stmt(b.aff(e2, {K, 1}, 0), Op::kAdd, b.aff(g, {K * 8, 8}, 0),
         b.aff(g, {K * 8, 8}, 2048));
  return std::move(b.p);
}

}  // namespace

const std::vector<WorkloadInfo>& AllWorkloads() {
  static const std::vector<WorkloadInfo> kAll = {
      {"md", "SPEC OMP", "neighbor-list n-body (indirect gather)"},
      {"bwaves", "SPEC OMP", "3-D flow stencil"},
      {"nab", "SPEC OMP", "transposed pair interactions"},
      {"bt", "SPEC OMP", "block-tridiagonal neighbour couplings"},
      {"fma3d", "SPEC OMP", "unstructured FEM gathers"},
      {"swim", "SPEC OMP", "shallow-water stencils (group reuse)"},
      {"imagick", "SPEC OMP", "image convolution"},
      {"mgrid", "SPEC OMP", "multigrid restriction (stride-2)"},
      {"applu", "SPEC OMP", "SSOR wavefront (flow deps)"},
      {"smith.wa", "SPEC OMP", "Smith-Waterman DP wavefront"},
      {"kdtree", "SPEC OMP", "k-d tree queries (skewed indirect)"},
      {"barnes", "SPLASH-2", "Barnes-Hut tree walk (hot cells)"},
      {"cholesky", "SPLASH-2", "triangular factorization"},
      {"fft", "SPLASH-2", "butterfly stages"},
      {"lu", "SPLASH-2", "LU factorization (triangular 3-level)"},
      {"ocean", "SPLASH-2", "grid relaxation"},
      {"radiosity", "SPLASH-2", "global random interactions"},
      {"raytrace", "SPLASH-2", "ray-object intersections"},
      {"volrend", "SPLASH-2", "volume ray casting"},
      {"water", "SPLASH-2", "pair interactions with reused operand"},
  };
  return kAll;
}

std::vector<std::string> BenchmarkNames() {
  std::vector<std::string> names;
  for (const WorkloadInfo& w : AllWorkloads()) names.push_back(w.name);
  return names;
}

ir::Program BuildWorkload(const std::string& name, Scale scale, std::uint64_t seed) {
  Builder b(name, scale, seed * 0x9E3779B9u + 12345);
  if (name == "md") return MakeMd(std::move(b));
  if (name == "bwaves") return MakeBwaves(std::move(b));
  if (name == "nab") return MakeNab(std::move(b));
  if (name == "bt") return MakeBt(std::move(b));
  if (name == "fma3d") return MakeFma3d(std::move(b));
  if (name == "swim") return MakeSwim(std::move(b));
  if (name == "imagick") return MakeImagick(std::move(b));
  if (name == "mgrid") return MakeMgrid(std::move(b));
  if (name == "applu") return MakeApplu(std::move(b));
  if (name == "smith.wa") return MakeSmithWa(std::move(b));
  if (name == "kdtree") return MakeKdtree(std::move(b));
  if (name == "barnes") return MakeBarnes(std::move(b));
  if (name == "cholesky") return MakeCholesky(std::move(b));
  if (name == "fft") return MakeFft(std::move(b));
  if (name == "lu") return MakeLu(std::move(b));
  if (name == "ocean") return MakeOcean(std::move(b));
  if (name == "radiosity") return MakeRadiosity(std::move(b));
  if (name == "raytrace") return MakeRaytrace(std::move(b));
  if (name == "volrend") return MakeVolrend(std::move(b));
  if (name == "water") return MakeWater(std::move(b));
  throw std::invalid_argument("unknown workload: " + name);
}

}  // namespace ndc::workloads
