#pragma once

#include "ir/program.hpp"

namespace ndc::analysis {

/// Data-reuse analysis used by Algorithm 2's NDC/locality gating and by the
/// CME estimator.

/// Kinds of reuse a reference can carry.
struct ReuseInfo {
  bool self_temporal = false;  ///< same element re-accessed by this ref
  bool self_spatial = false;   ///< neighbouring element on the same line
  bool group = false;          ///< another reference touches the same element
  ir::IntVec reuse_vector;     ///< smallest lex-positive reuse distance (if any)
  bool has_vector = false;
};

/// Reuse carried by one memory operand within its nest.
ReuseInfo AnalyzeReuse(const ir::Program& prog, const ir::LoopNest& nest,
                       const ir::Operand& op, std::uint64_t line_bytes);

/// Number of *future* reuses of `op`'s element beyond the current iteration
/// (capped at `limit`): the check of Algorithm 2 line 5 — does there exist
/// an iteration I_m, I_c < I_m <= I_e, and a reference p with
/// f(I) = p(I_m)? Indirect operands return 0 (statically unknowable, which
/// is the source of Algorithm 2's occasional wrong calls in Section 5.4).
int CountFutureReuses(const ir::Program& prog, const ir::LoopNest& nest, const ir::Stmt& stmt,
                      const ir::Operand& op, int limit = 4);

}  // namespace ndc::analysis
