#pragma once

#include <string>
#include <vector>

#include "analysis/dependence.hpp"
#include "ir/program.hpp"

namespace ndc::analysis {

/// Parallelism classification of one loop level (the lattice of
/// DESIGN.md §12, least conservative first):
///   kDoall ⊏ kDoacross ⊏ kUnknown
/// kDoall may still carry *proof obligations* (LevelClass::privatization /
/// reduction_stmts): the level is parallel provided the runtime privatizes
/// those arrays or combines those reductions.
enum class LevelKind { kDoall, kDoacross, kUnknown };

const char* LevelKindName(LevelKind k);

/// One recognized reduction: statement `stmt` accumulates into `array`
/// through commutative `op` (its lhs and one rhs are the identical affine
/// reference, and no other statement touches the array).
struct Reduction {
  int stmt = 0;        ///< body index of the accumulating statement
  int array = -1;
  arch::Op op = arch::Op::kAdd;
};

/// Classification of one loop level.
struct LevelClass {
  LevelKind kind = LevelKind::kUnknown;
  /// kDoacross: the minimum distance carried at this level over all
  /// undischarged dependences (the synchronization pipeline depth a
  /// DOACROSS execution would need).
  ir::Int min_distance = 0;
  /// kDoacross: a carried dependence achieving min_distance — the concrete
  /// witness printed by the P4xx verify pass. Valid iff witness_valid.
  bool witness_valid = false;
  Dependence witness;
  /// Arrays whose carried dependences at this level are discharged only by
  /// privatization (each shard needs a private copy).
  std::vector<int> privatization;
  /// Body indices of reduction statements whose self-dependence is carried
  /// at this level (each shard needs a private accumulator + a combine).
  std::vector<int> reduction_stmts;

  /// Proven parallel with no obligations: sharding this level across cores
  /// is race-free as-is (no privatization, no reduction combine needed).
  bool Proven() const {
    return kind == LevelKind::kDoall && privatization.empty() && reduction_stmts.empty();
  }
};

/// Whole-nest classification: per-level verdicts plus the evidence the
/// proof engine used (recognized reductions, privatizable arrays, unknowns
/// that survived disjointness refinement).
struct Classification {
  std::vector<LevelClass> levels;       ///< one per loop level
  std::vector<int> privatizable;        ///< arrays with covered reads (see §12)
  std::vector<Reduction> reductions;
  std::vector<int> unknown_arrays;      ///< unanalyzable after refinement (sorted, unique)
  int refuted_pairs = 0;                ///< unknown ref pairs refuted by disjointness
  bool has_unknown = false;             ///< any array still unanalyzable

  const LevelClass& level(int l) const { return levels[static_cast<std::size_t>(l)]; }

  /// One line per level (lint table / debugging).
  std::string ToString() const;
};

/// Classifies every level of `nest`:
///  1. runs exact dependence analysis (analysis/dependence.hpp);
///  2. refines unknown pairs with the array-section disjointness test —
///     a DawnCC-style pointer-range check over linearized affine footprints
///     (interval overlap, then stride-residue);
///  3. recognizes reduction statements and privatizable arrays;
///  4. classifies each level L: kDoall when no undischarged dependence has
///     its first nonzero distance component at L, kDoacross (with minimum
///     carried distance and a witness) otherwise, kUnknown when an
///     unanalyzable reference pair survives refinement.
Classification ClassifyNest(const ir::Program& prog, const ir::LoopNest& nest);

/// Array-section disjointness for two affine references to the *same*
/// array: true when the element sets they touch over the whole iteration
/// space of `nest` provably never intersect. Two tests, either suffices:
///  - interval: the linearized footprints [min,max] do not overlap;
///  - stride residue: both footprints are contained in arithmetic
///    progressions of a common modulus g with different residues.
/// Conservative: false means "may overlap".
bool SectionsDisjoint(const ir::Program& prog, const ir::LoopNest& nest,
                      const ir::AffineAccess& a, const ir::AffineAccess& b);

}  // namespace ndc::analysis
