#include "analysis/parallelism.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <sstream>

namespace ndc::analysis {

const char* LevelKindName(LevelKind k) {
  switch (k) {
    case LevelKind::kDoall: return "DOALL";
    case LevelKind::kDoacross: return "DOACROSS";
    case LevelKind::kUnknown: return "UNKNOWN";
  }
  return "?";
}

namespace {

using ir::Int;

/// Conservative per-level iterator ranges [lo_min, hi_max], outermost-in.
/// Bounds may depend linearly on one outer iterator (the validator rejects
/// anything else); a dependent bound is widened over the outer range.
std::vector<std::pair<Int, Int>> IterRanges(const ir::LoopNest& nest) {
  std::vector<std::pair<Int, Int>> r;
  r.reserve(static_cast<std::size_t>(nest.depth()));
  for (int k = 0; k < nest.depth(); ++k) {
    const ir::Loop& l = nest.loops[static_cast<std::size_t>(k)];
    Int lo = l.lo, hi = l.hi;
    if (l.lo_dep >= 0 && l.lo_dep < k) {
      auto [olo, ohi] = r[static_cast<std::size_t>(l.lo_dep)];
      lo += l.lo_coef >= 0 ? l.lo_coef * olo : l.lo_coef * ohi;
    }
    if (l.hi_dep >= 0 && l.hi_dep < k) {
      auto [olo, ohi] = r[static_cast<std::size_t>(l.hi_dep)];
      hi += l.hi_coef >= 0 ? l.hi_coef * ohi : l.hi_coef * olo;
    }
    if (hi < lo) hi = lo;
    r.push_back({lo, hi});
  }
  return r;
}

/// Row-major linearized footprint of an affine access: element index as an
/// affine function c·I + c0 of the iteration vector.
struct LinFootprint {
  ir::IntVec c;
  Int c0 = 0;
};

bool Linearize(const ir::Array& arr, const ir::AffineAccess& acc, int depth,
               LinFootprint* out) {
  int rank = static_cast<int>(arr.dims.size());
  if (acc.F.rows() != rank || acc.F.cols() != depth ||
      static_cast<int>(acc.f.size()) != rank) {
    return false;  // malformed shape — the IR validator owns that diagnosis
  }
  std::vector<Int> stride(static_cast<std::size_t>(rank), 1);
  for (int d = rank - 2; d >= 0; --d) {
    stride[static_cast<std::size_t>(d)] =
        stride[static_cast<std::size_t>(d + 1)] * arr.dims[static_cast<std::size_t>(d + 1)];
  }
  out->c.assign(static_cast<std::size_t>(depth), 0);
  out->c0 = 0;
  for (int d = 0; d < rank; ++d) {
    for (int k = 0; k < depth; ++k) {
      out->c[static_cast<std::size_t>(k)] += stride[static_cast<std::size_t>(d)] * acc.F.at(d, k);
    }
    out->c0 += stride[static_cast<std::size_t>(d)] * acc.f[static_cast<std::size_t>(d)];
  }
  return true;
}

std::pair<Int, Int> FootprintSpan(const LinFootprint& f,
                                  const std::vector<std::pair<Int, Int>>& ranges) {
  Int mn = f.c0, mx = f.c0;
  for (std::size_t k = 0; k < f.c.size(); ++k) {
    Int c = f.c[k];
    if (c >= 0) {
      mn += c * ranges[k].first;
      mx += c * ranges[k].second;
    } else {
      mn += c * ranges[k].second;
      mx += c * ranges[k].first;
    }
  }
  return {mn, mx};
}

const ir::Operand* SlotOperand(const ir::Stmt& st, RefSlot slot) {
  switch (slot) {
    case RefSlot::kLhs: return &st.lhs;
    case RefSlot::kRhs0: return &st.rhs0;
    case RefSlot::kRhs1: return &st.rhs1;
  }
  return nullptr;
}

bool SameAccess(const ir::AffineAccess& a, const ir::AffineAccess& b) {
  return a.array == b.array && a.F == b.F && a.f == b.f;
}

bool IsCommutative(arch::Op op) {
  switch (op) {
    case arch::Op::kAdd:
    case arch::Op::kMul:
    case arch::Op::kAnd:
    case arch::Op::kOr:
    case arch::Op::kXor: return true;
    case arch::Op::kSub:
    case arch::Op::kDiv: return false;
  }
  return false;
}

/// True when `op` touches array `array` in any role (direct access,
/// indirect target, or index array of an indirection).
bool TouchesArray(const ir::Operand& op, int array) {
  if (!op.IsMemory()) return false;
  if (op.access.array == array) return true;
  return op.kind == ir::Operand::Kind::kIndirect && op.target_array == array;
}

bool StmtTouchesArray(const ir::Stmt& st, int array) {
  return TouchesArray(st.lhs, array) || TouchesArray(st.rhs0, array) ||
         TouchesArray(st.rhs1, array);
}

void SortUnique(std::vector<int>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

std::string DistanceString(const ir::IntVec& d) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < d.size(); ++i) os << (i ? "," : "") << d[i];
  os << ")";
  return os.str();
}

}  // namespace

bool SectionsDisjoint(const ir::Program& prog, const ir::LoopNest& nest,
                      const ir::AffineAccess& a, const ir::AffineAccess& b) {
  if (a.array != b.array) return true;  // different arrays never alias here
  if (a.array < 0 || a.array >= static_cast<int>(prog.arrays.size())) return false;
  const ir::Array& arr = prog.array(a.array);
  int depth = nest.depth();
  LinFootprint fa, fb;
  if (!Linearize(arr, a, depth, &fa) || !Linearize(arr, b, depth, &fb)) return false;
  std::vector<std::pair<Int, Int>> ranges = IterRanges(nest);

  // Interval test: the linearized footprints never meet.
  auto [min_a, max_a] = FootprintSpan(fa, ranges);
  auto [min_b, max_b] = FootprintSpan(fb, ranges);
  if (max_a < min_b || max_b < min_a) return true;

  // Stride-residue test: both footprints live in c0 + g·Z for the combined
  // coefficient gcd g; different residues mod g can never collide.
  Int g = 0;
  for (Int c : fa.c) g = std::gcd(g, std::abs(c));
  for (Int c : fb.c) g = std::gcd(g, std::abs(c));
  if (g > 1 && (fa.c0 - fb.c0) % g != 0) return true;

  return false;
}

Classification ClassifyNest(const ir::Program& prog, const ir::LoopNest& nest) {
  Classification out;
  int depth = nest.depth();
  if (depth == 0) return out;
  DependenceSet deps = AnalyzeDependences(prog, nest);

  // ---- Refinement: retry unknown pairs with section disjointness --------
  // An array leaves the unknown set only when every pair that pushed it
  // there is refuted.
  std::set<int> still_unknown;
  for (const UnknownRefPair& p : deps.unknown_pairs) {
    bool refuted = false;
    if (!p.indirect) {
      const ir::Operand* from =
          SlotOperand(nest.body[static_cast<std::size_t>(p.from_stmt)], p.from_slot);
      const ir::Operand* to =
          SlotOperand(nest.body[static_cast<std::size_t>(p.to_stmt)], p.to_slot);
      if (from != nullptr && to != nullptr &&
          from->kind == ir::Operand::Kind::kAffine &&
          to->kind == ir::Operand::Kind::kAffine) {
        refuted = SectionsDisjoint(prog, nest, from->access, to->access);
      }
    }
    if (refuted) {
      ++out.refuted_pairs;
    } else {
      still_unknown.insert(p.array);
    }
  }
  // refuted_pairs counts refutations even for arrays that stay unknown via
  // another pair; only fully-refuted arrays are removed.
  out.unknown_arrays.assign(still_unknown.begin(), still_unknown.end());
  out.has_unknown = !still_unknown.empty();

  // ---- Reduction recognition -------------------------------------------
  // lhs and one rhs are the identical affine reference, the op commutes,
  // the other operand does not touch the array, and no other statement
  // does either (otherwise intermediate partials are observable).
  std::map<int, int> reduction_by_stmt;  // body index -> array
  for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
    const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
    if (st.lhs.kind != ir::Operand::Kind::kAffine || !IsCommutative(st.op)) continue;
    const ir::AffineAccess& acc = st.lhs.access;
    const ir::Operand* other = nullptr;
    if (st.rhs0.kind == ir::Operand::Kind::kAffine && SameAccess(st.rhs0.access, acc)) {
      other = &st.rhs1;
    } else if (st.rhs1.kind == ir::Operand::Kind::kAffine &&
               SameAccess(st.rhs1.access, acc)) {
      other = &st.rhs0;
    } else {
      continue;
    }
    if (TouchesArray(*other, acc.array)) continue;
    if (still_unknown.count(acc.array) != 0) continue;
    bool elsewhere = false;
    for (int s2 = 0; s2 < static_cast<int>(nest.body.size()); ++s2) {
      if (s2 != s && StmtTouchesArray(nest.body[static_cast<std::size_t>(s2)], acc.array)) {
        elsewhere = true;
        break;
      }
    }
    if (elsewhere) continue;
    out.reductions.push_back({s, acc.array, st.op});
    reduction_by_stmt[s] = acc.array;
  }

  // ---- Privatization detection -----------------------------------------
  // Array X is privatizable when every read of X is covered by an earlier
  // same-iteration write of the identical reference (same F and f): the
  // value never flows across iterations, so carried dependences on X die
  // once each shard owns a private copy.
  {
    struct ARef {
      int stmt;
      bool is_write;
      const ir::AffineAccess* access;
    };
    std::map<int, std::vector<ARef>> by_array;
    std::set<int> tainted;  // arrays with an indirect reference in any role
    for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
      const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
      auto note = [&](const ir::Operand& op, bool is_write) {
        if (!op.IsMemory()) return;
        if (op.kind == ir::Operand::Kind::kIndirect) {
          tainted.insert(op.target_array);
          tainted.insert(op.access.array);
          return;
        }
        by_array[op.access.array].push_back({s, is_write, &op.access});
      };
      note(st.lhs, true);
      note(st.rhs0, false);
      note(st.rhs1, false);
    }
    for (const auto& [array, refs] : by_array) {
      if (tainted.count(array) != 0 || still_unknown.count(array) != 0) continue;
      bool has_write = false, has_read = false, covered = true;
      for (const ARef& r : refs) {
        (r.is_write ? has_write : has_read) = true;
        if (r.is_write) continue;
        bool cov = false;
        for (const ARef& w : refs) {
          if (w.is_write && w.stmt < r.stmt && SameAccess(*w.access, *r.access)) {
            cov = true;
            break;
          }
        }
        covered = covered && cov;
      }
      if (has_write && has_read && covered) out.privatizable.push_back(array);
    }
  }
  std::set<int> priv_set(out.privatizable.begin(), out.privatizable.end());

  // ---- Per-level classification ----------------------------------------
  out.levels.assign(static_cast<std::size_t>(depth), {});
  if (out.has_unknown) {
    // An unanalyzable pair could be carried anywhere: every level is
    // UNKNOWN (the lattice top).
    for (LevelClass& lc : out.levels) lc.kind = LevelKind::kUnknown;
    return out;
  }
  for (int l = 0; l < depth; ++l) {
    LevelClass& lc = out.levels[static_cast<std::size_t>(l)];
    lc.kind = LevelKind::kDoall;
    for (const Dependence& d : deps.deps) {
      if (!d.distance_known ||
          static_cast<int>(d.distance.size()) != depth) {
        continue;
      }
      int first = -1;
      for (int k = 0; k < depth; ++k) {
        if (d.distance[static_cast<std::size_t>(k)] != 0) {
          first = k;
          break;
        }
      }
      if (first != l) continue;  // not carried at this level
      // Discharge: a recognized reduction's self-dependence, then a
      // privatizable array's carried dependence. Both become proof
      // obligations rather than DOACROSS evidence.
      auto red = reduction_by_stmt.find(d.from_stmt);
      if (d.from_stmt == d.to_stmt && red != reduction_by_stmt.end() &&
          red->second == d.array) {
        lc.reduction_stmts.push_back(d.from_stmt);
        continue;
      }
      if (priv_set.count(d.array) != 0) {
        lc.privatization.push_back(d.array);
        continue;
      }
      Int dist = std::abs(d.distance[static_cast<std::size_t>(l)]);
      if (!lc.witness_valid || dist < lc.min_distance) {
        lc.min_distance = dist;
        lc.witness = d;
        lc.witness_valid = true;
      }
      lc.kind = LevelKind::kDoacross;
    }
    SortUnique(&lc.privatization);
    SortUnique(&lc.reduction_stmts);
  }
  return out;
}

std::string Classification::ToString() const {
  std::ostringstream os;
  for (std::size_t l = 0; l < levels.size(); ++l) {
    const LevelClass& lc = levels[l];
    os << "L" << l << ": " << LevelKindName(lc.kind);
    if (lc.kind == LevelKind::kDoacross && lc.witness_valid) {
      os << " min=" << lc.min_distance << " witness=S" << lc.witness.from_stmt << "->S"
         << lc.witness.to_stmt << (lc.witness.is_flow ? " flow " : " anti/output ")
         << DistanceString(lc.witness.distance);
    }
    if (!lc.privatization.empty()) {
      os << " privatize={";
      for (std::size_t i = 0; i < lc.privatization.size(); ++i) {
        os << (i ? "," : "") << lc.privatization[i];
      }
      os << "}";
    }
    if (!lc.reduction_stmts.empty()) {
      os << " reduce={";
      for (std::size_t i = 0; i < lc.reduction_stmts.size(); ++i) {
        os << (i ? "," : "") << "stmt" << lc.reduction_stmts[i];
      }
      os << "}";
    }
    os << "\n";
  }
  if (!unknown_arrays.empty()) {
    os << "unknown arrays:";
    for (int a : unknown_arrays) os << " " << a;
    os << "\n";
  }
  if (refuted_pairs > 0) os << "disjointness refuted " << refuted_pairs << " pair(s)\n";
  return os.str();
}

}  // namespace ndc::analysis
