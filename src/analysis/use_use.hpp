#pragma once

#include <vector>

#include "ir/program.hpp"

namespace ndc::analysis {

/// A use-use chain (Algorithm 1, line 36): a computation z = x op y whose
/// two operands are memory references — the candidate unit for NDC
/// offloading.
struct UseUseChain {
  int stmt_idx = 0;  ///< index into the nest's body
};

inline std::vector<UseUseChain> ExtractUseUseChains(const ir::LoopNest& nest) {
  std::vector<UseUseChain> out;
  for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
    const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
    if (st.rhs0.IsMemory() && st.rhs1.IsMemory()) out.push_back({s});
  }
  return out;
}

}  // namespace ndc::analysis
