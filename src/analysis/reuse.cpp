#include "analysis/reuse.hpp"

#include <cmath>

#include "analysis/dependence.hpp"

namespace ndc::analysis {

ReuseInfo AnalyzeReuse(const ir::Program& prog, const ir::LoopNest& nest,
                       const ir::Operand& op, std::uint64_t line_bytes) {
  ReuseInfo info;
  if (op.kind != ir::Operand::Kind::kAffine) return info;
  int depth = nest.depth();
  const ir::AffineAccess& acc = op.access;

  // Self-temporal: nontrivial kernel of F.
  ir::IntVec k;
  if (SmallestKernelVector(acc.F, depth, &k)) {
    info.self_temporal = true;
    info.reuse_vector = k;
    info.has_vector = true;
  }

  // Self-spatial: the innermost loop advances only the last subscript with a
  // stride smaller than the line.
  const ir::Array& arr = prog.array(acc.array);
  int inner = depth - 1;
  bool touches_only_last = true;
  for (int d = 0; d + 1 < acc.F.rows(); ++d) {
    if (acc.F.at(d, inner) != 0) touches_only_last = false;
  }
  ir::Int stride = acc.F.rows() > 0 ? acc.F.at(acc.F.rows() - 1, inner) : 0;
  if (touches_only_last && stride != 0 &&
      static_cast<std::uint64_t>(std::llabs(stride)) * static_cast<std::uint64_t>(arr.elem_bytes) <
          line_bytes) {
    info.self_spatial = true;
    if (!info.has_vector) {
      ir::IntVec e(static_cast<std::size_t>(depth), 0);
      e[static_cast<std::size_t>(inner)] = 1;
      info.reuse_vector = e;
      info.has_vector = true;
    }
  }

  // Group reuse: another reference with the same F, different offset.
  for (const ir::Stmt& s : nest.body) {
    for (const ir::Operand* o : {&s.lhs, &s.rhs0, &s.rhs1}) {
      if (o == &op || o->kind != ir::Operand::Kind::kAffine) continue;
      if (o->access.array != acc.array) continue;
      if (!(o->access.F == acc.F)) continue;
      ir::IntVec rhs = ir::VecSub(acc.f, o->access.f);
      if (ir::IsZero(rhs)) {
        info.group = true;
        continue;
      }
      ir::IntVec d;
      if (SolveUniformDistance(acc.F, AvgTrips(nest), rhs, &d) && !ir::IsZero(d)) {
        info.group = true;
        ir::IntVec pos = ir::LexPositive(d) ? d : ir::VecSub(ir::IntVec(d.size(), 0), d);
        if (!info.has_vector || ir::LexCompare(pos, info.reuse_vector) < 0) {
          info.reuse_vector = pos;
          info.has_vector = true;
        }
      }
    }
  }
  return info;
}

int CountFutureReuses(const ir::Program& prog, const ir::LoopNest& nest, const ir::Stmt& stmt,
                      const ir::Operand& op, int limit) {
  (void)prog;
  if (op.kind != ir::Operand::Kind::kAffine) return 0;  // statically unknowable
  int depth = nest.depth();
  const ir::AffineAccess& acc = op.access;
  int count = 0;

  // Self-temporal reuse: the same reference touches this element again at a
  // strictly later iteration.
  ir::IntVec k;
  if (SmallestKernelVector(acc.F, depth, &k)) ++count;

  // Group reuse by any other reference p: acc(I) == p(I + d) for d lex > 0,
  // or d == 0 with p textually after the computation.
  bool past_stmt = false;
  for (const ir::Stmt& s : nest.body) {
    bool is_self = s.id == stmt.id;
    for (const ir::Operand* o : {&s.rhs0, &s.rhs1, &s.lhs}) {
      if (count >= limit) return count;
      if (o->kind != ir::Operand::Kind::kAffine) continue;
      if (o->access.array != acc.array) continue;
      if (is_self && o == &op) continue;
      if (!(o->access.F == acc.F)) continue;
      // acc(I) = o(I + d)  =>  F d = acc.f - o.f
      ir::IntVec rhs = ir::VecSub(acc.f, o->access.f);
      ir::IntVec d;
      if (!SolveUniformDistance(acc.F, AvgTrips(nest), rhs, &d)) continue;
      if (ir::LexPositive(d) || (ir::IsZero(d) && past_stmt && !is_self)) ++count;
    }
    if (is_self) past_stmt = true;
  }
  return count;
}

}  // namespace ndc::analysis
