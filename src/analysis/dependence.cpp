#include "analysis/dependence.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace ndc::analysis {
namespace {

struct Ref {
  int stmt = 0;
  const ir::Operand* op = nullptr;
  bool is_write = false;
  RefSlot slot = RefSlot::kLhs;
};

std::vector<Ref> CollectRefs(const ir::LoopNest& nest) {
  std::vector<Ref> refs;
  for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
    const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
    if (st.lhs.IsMemory()) refs.push_back({s, &st.lhs, true, RefSlot::kLhs});
    if (st.rhs0.IsMemory()) refs.push_back({s, &st.rhs0, false, RefSlot::kRhs0});
    if (st.rhs1.IsMemory()) refs.push_back({s, &st.rhs1, false, RefSlot::kRhs1});
  }
  return refs;
}

int RefArray(const Ref& r) {
  return r.op->kind == ir::Operand::Kind::kIndirect ? r.op->target_array
                                                    : r.op->access.array;
}

// GCD existence test per subscript dimension: does F1*I1 + f1 == F2*I2 + f2
// admit any integer solution? (Necessary condition only.)
bool GcdMayDepend(const ir::AffineAccess& a, const ir::AffineAccess& b) {
  for (int d = 0; d < a.F.rows(); ++d) {
    ir::Int g = 0;
    for (int c = 0; c < a.F.cols(); ++c) g = std::gcd(g, std::abs(a.F.at(d, c)));
    for (int c = 0; c < b.F.cols(); ++c) g = std::gcd(g, std::abs(b.F.at(d, c)));
    ir::Int diff = std::abs(a.f[static_cast<std::size_t>(d)] - b.f[static_cast<std::size_t>(d)]);
    if (g == 0) {
      if (diff != 0) return false;
    } else if (diff % g != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool SmallestKernelVector(const ir::IntMat& F, int depth, ir::IntVec* out) {
  // Try unit vectors from innermost outwards (smallest lex-positive first),
  // then differences e_i - e_j.
  for (int k = depth - 1; k >= 0; --k) {
    ir::IntVec e(static_cast<std::size_t>(depth), 0);
    e[static_cast<std::size_t>(k)] = 1;
    if (ir::IsZero(F.Apply(e))) {
      *out = e;
      return true;
    }
  }
  for (int i = 0; i < depth; ++i) {
    for (int j = 0; j < depth; ++j) {
      if (i == j) continue;
      for (ir::Int sign : {-1, 1}) {
        ir::IntVec e(static_cast<std::size_t>(depth), 0);
        e[static_cast<std::size_t>(i)] = 1;
        e[static_cast<std::size_t>(j)] = sign;
        if (!ir::LexPositive(e)) continue;
        if (ir::IsZero(F.Apply(e))) {
          *out = e;
          return true;
        }
      }
    }
  }
  return false;
}

std::vector<ir::Int> AvgTrips(const ir::LoopNest& nest) {
  std::vector<ir::Int> trips;
  trips.reserve(static_cast<std::size_t>(nest.depth()));
  for (int d = 0; d < nest.depth(); ++d) {
    const ir::Loop& l = nest.loops[static_cast<std::size_t>(d)];
    ir::Int lo = l.lo, hi = l.hi;
    if (l.hi_dep >= 0) {
      const ir::Loop& outer = nest.loops[static_cast<std::size_t>(l.hi_dep)];
      hi += l.hi_coef * ((outer.lo + outer.hi) / 2);
    }
    if (l.lo_dep >= 0) {
      const ir::Loop& outer = nest.loops[static_cast<std::size_t>(l.lo_dep)];
      lo += l.lo_coef * ((outer.lo + outer.hi) / 2);
    }
    trips.push_back(std::max<ir::Int>(1, hi - lo + 1));
  }
  return trips;
}

namespace {

// Recursive bounded search for a 1-row linearized subscript: find all delta
// with sum(c_k * delta_k) == d and |delta_k| < trips[k], visiting levels in
// decreasing |coefficient| order. Stops early once two solutions are found.
void DelinearizeRec(const std::vector<std::pair<ir::Int, int>>& order,
                    const std::vector<ir::Int>& trips, std::size_t level, ir::Int d,
                    ir::IntVec& cur, std::vector<ir::IntVec>& found) {
  if (found.size() >= 2) return;
  if (level == order.size()) {
    if (d == 0) found.push_back(cur);
    return;
  }
  auto [c, k] = order[level];
  ir::Int trip = trips[static_cast<std::size_t>(k)];
  if (c == 0) {
    // Coefficient zero: the loop does not affect the subscript; the only
    // canonical distance choice is 0 (other values give families).
    cur[static_cast<std::size_t>(k)] = 0;
    DelinearizeRec(order, trips, level + 1, d, cur, found);
    return;
  }
  ir::Int q = d / c;
  for (ir::Int cand = q - 1; cand <= q + 1; ++cand) {
    if (std::llabs(cand) >= trip) continue;
    cur[static_cast<std::size_t>(k)] = cand;
    DelinearizeRec(order, trips, level + 1, d - c * cand, cur, found);
  }
  cur[static_cast<std::size_t>(k)] = 0;
}

}  // namespace

bool SolveUniformDistance(const ir::IntMat& F, const std::vector<ir::Int>& trips,
                          const ir::IntVec& rhs, ir::IntVec* delta) {
  int depth = F.cols();
  if (F.rows() == depth && F.Rank() == depth) {
    return F.SolveInteger(rhs, delta);
  }
  if (F.rows() == 1) {
    std::vector<std::pair<ir::Int, int>> order;
    for (int k = 0; k < depth; ++k) order.push_back({F.at(0, k), k});
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
      return std::llabs(a.first) > std::llabs(b.first);
    });
    ir::IntVec cur(static_cast<std::size_t>(depth), 0);
    std::vector<ir::IntVec> found;
    DelinearizeRec(order, trips, 0, rhs[0], cur, found);
    if (found.size() != 1) return false;
    *delta = found[0];
    return true;
  }
  return false;
}

DependenceSet AnalyzeDependences(const ir::Program& prog, const ir::LoopNest& nest) {
  (void)prog;
  DependenceSet out;
  int depth = nest.depth();
  std::vector<Ref> refs = CollectRefs(nest);
  auto note_unknown = [&out](const Ref& src, const Ref& dst, bool indirect) {
    out.has_unknown = true;
    out.unknown_arrays.push_back(RefArray(src));
    out.unknown_pairs.push_back(
        {src.stmt, dst.stmt, RefArray(src), src.slot, dst.slot, indirect});
  };
  for (std::size_t i = 0; i < refs.size(); ++i) {
    for (std::size_t j = 0; j < refs.size(); ++j) {
      const Ref& src = refs[i];
      const Ref& dst = refs[j];
      if (!src.is_write && !dst.is_write) continue;  // read-read is not a dependence
      if (RefArray(src) != RefArray(dst)) continue;
      if (i == j) {
        // A single write reference conflicts with itself only through a
        // nontrivial kernel (same element written at two iterations).
        if (src.op->kind == ir::Operand::Kind::kAffine) {
          ir::IntVec k;
          if (SmallestKernelVector(src.op->access.F, depth, &k)) {
            out.deps.push_back({src.stmt, dst.stmt, RefArray(src), true, k, false});
          }
        } else if (src.op->kind == ir::Operand::Kind::kIndirect) {
          note_unknown(src, dst, /*indirect=*/true);
        }
        continue;
      }
      // Indirect references: conservative unknown dependence.
      if (src.op->kind == ir::Operand::Kind::kIndirect ||
          dst.op->kind == ir::Operand::Kind::kIndirect) {
        note_unknown(src, dst, /*indirect=*/true);
        continue;
      }
      const ir::AffineAccess& fa = src.op->access;
      const ir::AffineAccess& fb = dst.op->access;
      if (fa.F == fb.F) {
        // Uniform dependence: access_a(I) == access_b(I + d); solve
        // F * d = f_a - f_b for the bounded iteration distance.
        ir::IntVec rhs = ir::VecSub(fa.f, fb.f);
        ir::IntVec d;
        if (!SolveUniformDistance(fa.F, AvgTrips(nest), rhs, &d)) {
          // No bounded solution: independent only if the subscripts can
          // never coincide. For a square full-rank F the solver already ran
          // the exact integer solve, so failure proves independence. For a
          // rank-deficient / flattened F the failure may mean "ambiguous" or
          // "unbounded" — SolveInteger zeroes free variables and so misses
          // solutions (e.g. F=(24,1), rhs=1 has solution (0,1) but the
          // pivot 24 does not divide 1); the per-row gcd condition is the
          // sound existence test there.
          bool square_exact = fa.F.rows() == fa.F.cols() && fa.F.Rank() == fa.F.cols();
          if (!square_exact && GcdMayDepend(fa, fb)) {
            note_unknown(src, dst, /*indirect=*/false);
          }
          continue;
        }
        if (ir::IsZero(d)) {
          // Loop-independent: ordered by body position, no constraint on T.
          if (src.stmt == dst.stmt) continue;
          out.deps.push_back({std::min(src.stmt, dst.stmt), std::max(src.stmt, dst.stmt),
                              RefArray(src), true, d, src.is_write});
          continue;
        }
        if (!ir::LexPositive(d)) continue;  // the mirrored pair records it
        out.deps.push_back({src.stmt, dst.stmt, RefArray(src), true, d, src.is_write});
      } else {
        if (GcdMayDepend(fa, fb)) {
          note_unknown(src, dst, /*indirect=*/false);
        }
      }
    }
  }
  // Deduplicate identical entries.
  std::sort(out.deps.begin(), out.deps.end(), [](const Dependence& a, const Dependence& b) {
    if (a.from_stmt != b.from_stmt) return a.from_stmt < b.from_stmt;
    if (a.to_stmt != b.to_stmt) return a.to_stmt < b.to_stmt;
    if (a.array != b.array) return a.array < b.array;
    return ir::LexCompare(a.distance, b.distance) < 0;
  });
  out.deps.erase(std::unique(out.deps.begin(), out.deps.end(),
                             [](const Dependence& a, const Dependence& b) {
                               return a.from_stmt == b.from_stmt && a.to_stmt == b.to_stmt &&
                                      a.array == b.array && a.distance == b.distance;
                             }),
                 out.deps.end());
  return out;
}

ir::IntMat DependenceSet::DependenceMatrix(int depth) const {
  std::vector<ir::IntVec> cols;
  for (const Dependence& d : deps) {
    if (d.distance_known && !ir::IsZero(d.distance)) cols.push_back(d.distance);
  }
  ir::IntMat m(depth, static_cast<int>(cols.size()));
  for (int c = 0; c < static_cast<int>(cols.size()); ++c) {
    for (int r = 0; r < depth; ++r) {
      m.at(r, c) = cols[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)];
    }
  }
  return m;
}

bool DependenceSet::ReadHoistIsSafe(int array, ir::Int lead_linear, ir::Int inner_trip) const {
  if (lead_linear == 0) return true;
  if (std::find(unknown_arrays.begin(), unknown_arrays.end(), array) != unknown_arrays.end()) {
    return false;
  }
  for (const Dependence& d : deps) {
    if (d.array != array) continue;
    if (!d.distance_known) return false;
    // Linearize the carried distance using the innermost trip count as an
    // approximation of iterations-per-outer-step.
    ir::Int lin = 0;
    for (std::size_t k = 0; k < d.distance.size(); ++k) {
      lin = lin * inner_trip + d.distance[k];
    }
    if (lin > 0 && lin <= std::llabs(lead_linear)) return false;
  }
  return true;
}

}  // namespace ndc::analysis
