#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "analysis/reuse.hpp"
#include "ir/program.hpp"
#include "mem/cache.hpp"

namespace ndc::analysis {

/// Cache geometry seen by the estimator.
struct CacheSpec {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint64_t line_bytes = 64;
  std::uint64_t ways = 2;

  std::uint64_t Lines() const { return size_bytes / line_bytes; }
  std::uint64_t Sets() const { return Lines() / ways; }

  static CacheSpec From(const mem::CacheParams& p) {
    return {p.size_bytes, p.line_bytes, p.ways};
  }
};

/// Which operand of a statement an estimate refers to.
enum class OperandSel : int { kRhs0 = 0, kRhs1 = 1, kLhs = 2 };

const ir::Operand& SelectOperand(const ir::Stmt& stmt, OperandSel sel);

/// Compile-time cache hit/miss estimator in the spirit of Cache Miss
/// Equations [Ghosh et al., TOPLAS'99] (Section 5.2): reuse vectors from
/// compiler reuse analysis, cold misses from iteration-space boundaries,
/// capacity misses from reuse-distance vs cache size, and conflict misses
/// from linear-Diophantine interference between references mapping to the
/// same cache sets. Imperfect by design at compile time — coherence misses
/// and cross-thread interleavings are not modeled (the paper reports the
/// same limitation) — and handles non-affine (indirect) references
/// pessimistically.
class CmePredictor {
 public:
  /// `warm_arrays`: arrays already streamed by earlier nests of the same
  /// program — their lines may still be cached, so boundary ("cold-face")
  /// accesses are predicted warm when the per-core footprint fits.
  CmePredictor(const ir::Program& prog, const ir::LoopNest& nest, CacheSpec l1, CacheSpec l2,
               int num_cores, std::set<int> warm_arrays = {});

  /// Per-dynamic-access prediction: will this operand access miss L1 at
  /// iteration `iter`?
  bool PredictMissL1(int stmt_idx, OperandSel sel, const ir::IntVec& iter) const;

  /// Per-dynamic-access L2 prediction, *conditional on an L1 miss*.
  bool PredictMissL2(int stmt_idx, OperandSel sel, const ir::IntVec& iter) const;

  /// Expected miss ratios for a reference (sampled over the iteration
  /// space) — the gating inputs of Algorithm 1.
  double MissProbL1(int stmt_idx, OperandSel sel) const;
  double MissProbL2(int stmt_idx, OperandSel sel) const;

  /// Total predicted lines touched per iteration across the nest (the
  /// reuse-distance footprint basis).
  double FootprintLinesPerIter() const { return footprint_lines_per_iter_; }

 private:
  struct RefState {
    bool memory = false;
    bool indirect = false;
    ReuseInfo reuse_l1;
    bool fits_l1 = false;
    bool fits_l2 = false;
    int array = -1;
    double lines_per_core = 0.0;  ///< per-core footprint of this reference
    /// Another load earlier in program order touches the same cache line at
    /// the same iteration (e.g. x(2g) and x(2g+1)): always an L1 hit.
    bool same_line_partner = false;
  };

  const RefState& StateFor(int stmt_idx, OperandSel sel) const;
  bool PredictMissLevel(int stmt_idx, OperandSel sel, const ir::IntVec& iter,
                        bool level2) const;
  double SampleMissProb(int stmt_idx, OperandSel sel, bool level2) const;

  std::uint64_t ReuseSpanIters(const ir::IntVec& delta) const;
  double ConflictPressure(const ir::Operand& op, std::uint64_t span,
                          const CacheSpec& spec) const;

  const ir::Program* prog_;
  const ir::LoopNest* nest_;
  CacheSpec l1_, l2_;
  int num_cores_;
  std::set<int> warm_arrays_;
  std::vector<ir::Int> avg_trips_;  // average trip count per loop level
  double footprint_lines_per_iter_ = 0.0;
  std::vector<std::array<RefState, 3>> states_;  // per stmt x {rhs0, rhs1, lhs}
};

/// Linear Diophantine helper: number of t in [0, range) with
/// a*t ≡ b (mod m). Exposed for tests.
std::uint64_t CountCongruentSolutions(ir::Int a, ir::Int b, ir::Int m, std::uint64_t range);

}  // namespace ndc::analysis
