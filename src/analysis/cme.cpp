#include "analysis/cme.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

namespace ndc::analysis {

const ir::Operand& SelectOperand(const ir::Stmt& stmt, OperandSel sel) {
  switch (sel) {
    case OperandSel::kRhs0: return stmt.rhs0;
    case OperandSel::kRhs1: return stmt.rhs1;
    case OperandSel::kLhs: return stmt.lhs;
  }
  return stmt.rhs0;
}

std::uint64_t CountCongruentSolutions(ir::Int a, ir::Int b, ir::Int m, std::uint64_t range) {
  if (m <= 0) return 0;
  a = ((a % m) + m) % m;
  b = ((b % m) + m) % m;
  ir::Int g = std::gcd(a == 0 ? m : a, m);
  if (b % g != 0) return 0;
  // Solutions form a residue class modulo m/g: range/(m/g) of them (+/- 1).
  std::uint64_t period = static_cast<std::uint64_t>(m / g);
  return range / period + (range % period != 0 ? 1 : 0);
}

CmePredictor::CmePredictor(const ir::Program& prog, const ir::LoopNest& nest, CacheSpec l1,
                           CacheSpec l2, int num_cores, std::set<int> warm_arrays)
    : prog_(&prog),
      nest_(&nest),
      l1_(l1),
      l2_(l2),
      num_cores_(std::max(1, num_cores)),
      warm_arrays_(std::move(warm_arrays)) {
  int depth = nest.depth();
  // Average trip counts (exact for rectangular, averaged for triangular).
  avg_trips_.assign(static_cast<std::size_t>(depth), 1);
  for (int d = 0; d < depth; ++d) {
    const ir::Loop& l = nest.loops[static_cast<std::size_t>(d)];
    ir::Int lo = l.lo, hi = l.hi;
    if (l.hi_dep >= 0) {
      const ir::Loop& outer = nest.loops[static_cast<std::size_t>(l.hi_dep)];
      hi += l.hi_coef * ((outer.lo + outer.hi) / 2);
    }
    if (l.lo_dep >= 0) {
      const ir::Loop& outer = nest.loops[static_cast<std::size_t>(l.lo_dep)];
      lo += l.lo_coef * ((outer.lo + outer.hi) / 2);
    }
    avg_trips_[static_cast<std::size_t>(d)] = std::max<ir::Int>(1, hi - lo + 1);
  }

  // Nest-wide footprint (distinct lines touched per iteration).
  double fp = 0.0;
  for (const ir::Stmt& s : nest.body) {
    for (const ir::Operand* op : {&s.rhs0, &s.rhs1, &s.lhs}) {
      if (!op->IsMemory()) continue;
      if (op->kind == ir::Operand::Kind::kIndirect) {
        fp += 1.0;  // effectively a new line every access
        continue;
      }
      const ir::Array& arr = prog.array(op->access.array);
      int inner = depth - 1;
      ir::Int elem_stride = 0;
      // Flattened element stride of one innermost step.
      ir::Int row_size = 1;
      for (int d = arr.dims.size() >= 1 ? static_cast<int>(arr.dims.size()) - 1 : 0; d >= 0;
           --d) {
        elem_stride += op->access.F.at(d, inner) * row_size;
        row_size *= arr.dims[static_cast<std::size_t>(d)];
      }
      double bytes = static_cast<double>(std::llabs(elem_stride)) * arr.elem_bytes;
      fp += std::min(1.0, bytes / static_cast<double>(l1.line_bytes));
      if (bytes == 0) fp += 1.0 / static_cast<double>(avg_trips_.back());
    }
  }
  footprint_lines_per_iter_ = std::max(fp, 1e-6);

  // Per-reference classification.
  states_.resize(nest.body.size());
  for (std::size_t si = 0; si < nest.body.size(); ++si) {
    const ir::Stmt& s = nest.body[si];
    std::array<const ir::Operand*, 3> ops = {&s.rhs0, &s.rhs1, &s.lhs};
    for (int o = 0; o < 3; ++o) {
      RefState& st = states_[si][static_cast<std::size_t>(o)];
      const ir::Operand& op = *ops[static_cast<std::size_t>(o)];
      st.memory = op.IsMemory();
      if (!st.memory) continue;
      st.indirect = op.kind == ir::Operand::Kind::kIndirect;
      st.array = st.indirect ? op.target_array : op.access.array;
      if (st.indirect) continue;
      {
        const ir::Array& arr = prog.array(op.access.array);
        int inner = depth - 1;
        ir::Int elem_stride = 0, row = 1;
        for (int d2 = static_cast<int>(arr.dims.size()) - 1; d2 >= 0; --d2) {
          elem_stride += op.access.F.at(d2, inner) * row;
          row *= arr.dims[static_cast<std::size_t>(d2)];
        }
        double bytes = static_cast<double>(std::llabs(elem_stride)) * arr.elem_bytes;
        double per_iter = std::min(1.0, std::max(bytes, 1.0) / static_cast<double>(l1.line_bytes));
        double iters_per_core = 1.0;
        for (ir::Int t : avg_trips_) iters_per_core *= static_cast<double>(t);
        iters_per_core /= static_cast<double>(num_cores_);
        st.lines_per_core = per_iter * iters_per_core;
      }
      // Same-line partner: an earlier load with the same access function
      // whose offset lands on the same line fills the line first.
      for (std::size_t sj = 0; sj <= si && !st.same_line_partner; ++sj) {
        const ir::Stmt& s2 = nest.body[sj];
        int o_limit = sj == si ? o : 2;
        std::array<const ir::Operand*, 2> loads = {&s2.rhs0, &s2.rhs1};
        for (int o2 = 0; o2 < std::min(o_limit, 2); ++o2) {
          const ir::Operand& q = *loads[static_cast<std::size_t>(o2)];
          if (q.kind != ir::Operand::Kind::kAffine) continue;
          if (q.access.array != op.access.array || !(q.access.F == op.access.F)) continue;
          ir::Int diff = std::llabs(q.access.f[0] - op.access.f[0]) *
                         prog.array(op.access.array).elem_bytes;
          if (diff < static_cast<ir::Int>(l1.line_bytes)) st.same_line_partner = true;
        }
      }
      st.reuse_l1 = AnalyzeReuse(prog, nest, op, l1.line_bytes);
      if (!st.reuse_l1.has_vector) continue;
      std::uint64_t span = ReuseSpanIters(st.reuse_l1.reuse_vector);
      double rd = static_cast<double>(span) * footprint_lines_per_iter_;
      double conflicts1 = ConflictPressure(op, span, l1_);
      // L1 is private: the reuse distance is what this core touches.
      st.fits_l1 = rd <= 0.75 * static_cast<double>(l1_.Lines()) &&
                   rd / static_cast<double>(l1_.Sets()) + conflicts1 <
                       static_cast<double>(l1_.ways);
      // The L2 is shared: all cores' working sets compete, and lines are
      // spread over all banks.
      double l2_lines_eff =
          static_cast<double>(l2_.Lines()) * static_cast<double>(num_cores_) /
          static_cast<double>(num_cores_);  // one bank per node, one core per node
      double rd_l2 = rd * static_cast<double>(num_cores_);  // all threads stream together
      double conflicts2 = ConflictPressure(op, span, l2_);
      st.fits_l2 = rd_l2 <= 0.75 * l2_lines_eff * static_cast<double>(num_cores_) &&
                   conflicts2 < static_cast<double>(l2_.ways);
    }
  }
}

std::uint64_t CmePredictor::ReuseSpanIters(const ir::IntVec& delta) const {
  // Iterations between I and I + delta in lexicographic order.
  std::uint64_t span = 0;
  std::uint64_t inner_product = 1;
  for (int d = static_cast<int>(delta.size()) - 1; d >= 0; --d) {
    span += static_cast<std::uint64_t>(std::llabs(delta[static_cast<std::size_t>(d)])) *
            inner_product;
    inner_product *= static_cast<std::uint64_t>(avg_trips_[static_cast<std::size_t>(d)]);
  }
  return std::max<std::uint64_t>(span, 1);
}

double CmePredictor::ConflictPressure(const ir::Operand& op, std::uint64_t span,
                                      const CacheSpec& spec) const {
  // Diophantine interference: for each other affine reference q, count how
  // often r and q map to the same set during the reuse window. Addresses
  // along the innermost loop are linear: addr(i) = alpha*i + beta.
  if (op.kind != ir::Operand::Kind::kAffine) return 0.0;
  int depth = nest_->depth();
  int inner = depth - 1;
  auto line_coeffs = [&](const ir::Operand& o, ir::Int* alpha, ir::Int* beta) {
    const ir::Array& arr = prog_->array(o.access.array);
    ir::Int stride = 0, base = 0, row = 1;
    for (int d = static_cast<int>(arr.dims.size()) - 1; d >= 0; --d) {
      stride += o.access.F.at(d, inner) * row;
      base += o.access.f[static_cast<std::size_t>(d)] * row;
      row *= arr.dims[static_cast<std::size_t>(d)];
    }
    *alpha = stride * arr.elem_bytes;
    *beta = static_cast<ir::Int>(arr.base) + base * arr.elem_bytes;
  };
  ir::Int ar, br;
  line_coeffs(op, &ar, &br);
  auto set_stride = static_cast<ir::Int>(spec.Sets() * spec.line_bytes);
  double pressure = 0.0;
  for (const ir::Stmt& s : nest_->body) {
    // Stores are write-through/no-allocate (they do not occupy ways), so
    // only loads interfere.
    for (const ir::Operand* o : {&s.rhs0, &s.rhs1}) {
      if (o == &op || o->kind != ir::Operand::Kind::kAffine) continue;
      ir::Int aq, bq;
      line_coeffs(*o, &aq, &bq);
      // Expected same-set collisions per iteration of the reuse window:
      // solutions of (ar-aq)*t ≡ (bq-br) (mod set_stride) have density
      // g/set_stride when solvable (g = gcd), 0 otherwise.
      ir::Int a = ar - aq, m = set_stride;
      a = ((a % m) + m) % m;
      ir::Int bdiff = (((bq - br) % m) + m) % m;
      ir::Int g = std::gcd(a == 0 ? m : a, m);
      if (bdiff % g == 0) {
        pressure += static_cast<double>(g) / static_cast<double>(m) *
                    static_cast<double>(std::min<std::uint64_t>(span, 1u << 20));
      }
    }
  }
  return pressure;
}

const CmePredictor::RefState& CmePredictor::StateFor(int stmt_idx, OperandSel sel) const {
  return states_[static_cast<std::size_t>(stmt_idx)][static_cast<std::size_t>(sel)];
}

bool CmePredictor::PredictMissLevel(int stmt_idx, OperandSel sel, const ir::IntVec& iter,
                                    bool level2) const {
  const RefState& st = StateFor(stmt_idx, sel);
  if (!st.memory) return false;
  if (st.indirect) return true;  // pessimistic for non-affine references
  if (st.same_line_partner) return false;  // partner load fills the line
  if (!st.reuse_l1.has_vector) {
    // A pure stream (no reuse within the nest) is all cold misses — unless
    // an earlier nest already brought the array in and it fits the cache.
    const CacheSpec& sp = level2 ? l2_ : l1_;
    double cap = 0.75 * static_cast<double>(sp.Lines());
    if (level2) cap *= static_cast<double>(num_cores_);  // all banks
    return !(warm_arrays_.count(st.array) != 0 && st.lines_per_core <= cap);
  }
  const ir::Stmt& stmt = nest_->body[static_cast<std::size_t>(stmt_idx)];
  const ir::Operand& op = SelectOperand(stmt, sel);
  // Cold-face test: did the reuse-source iteration exist?
  ir::IntVec prev = ir::VecSub(iter, st.reuse_l1.reuse_vector);
  for (int d = 0; d < nest_->depth(); ++d) {
    if (prev[static_cast<std::size_t>(d)] < nest_->LoEffective(d, prev) ||
        prev[static_cast<std::size_t>(d)] > nest_->HiEffective(d, prev)) {
      // Cold face — unless an earlier nest already streamed this array and
      // the per-core footprint fits the cache (cross-nest warm data).
      const CacheSpec& sp = level2 ? l2_ : l1_;
      double cap = 0.75 * static_cast<double>(sp.Lines());
      if (level2) cap *= static_cast<double>(num_cores_);  // all banks
      if (warm_arrays_.count(st.array) != 0 && st.lines_per_core <= cap) return false;
      return true;  // cold miss
    }
  }
  // Spatial reuse must stay on the same line.
  auto cur_addr = prog_->ResolveAddr(op, iter);
  auto prev_addr = prog_->ResolveAddr(op, prev);
  const CacheSpec& spec = level2 ? l2_ : l1_;
  if (cur_addr && prev_addr &&
      (*cur_addr / spec.line_bytes) != (*prev_addr / spec.line_bytes)) {
    // The previous access of the reuse chain touched a different line; for
    // group reuse the partner's offset difference may still land on the
    // same line, which we approximate by the own-reference test.
    if (!st.reuse_l1.self_temporal && !st.reuse_l1.group) return true;
  }
  return level2 ? !st.fits_l2 : !st.fits_l1;
}

bool CmePredictor::PredictMissL1(int stmt_idx, OperandSel sel, const ir::IntVec& iter) const {
  return PredictMissLevel(stmt_idx, sel, iter, /*level2=*/false);
}

bool CmePredictor::PredictMissL2(int stmt_idx, OperandSel sel, const ir::IntVec& iter) const {
  return PredictMissLevel(stmt_idx, sel, iter, /*level2=*/true);
}

double CmePredictor::SampleMissProb(int stmt_idx, OperandSel sel, bool level2) const {
  // Sample evenly spaced iterations with an odd stride so the samples do
  // not alias with power-of-two cache-line periods.
  std::vector<ir::IntVec> samples;
  ir::Int total = nest_->NumIterations();
  ir::Int step = std::max<ir::Int>(1, total / 256) | 1;
  ir::Int n = 0;
  nest_->ForEachIteration([&](const ir::IntVec& iter) {
    if (n % step == 0) samples.push_back(iter);
    ++n;
  });
  if (samples.empty()) return 1.0;
  int misses = 0;
  for (const ir::IntVec& it : samples) {
    if (PredictMissLevel(stmt_idx, sel, it, level2)) ++misses;
  }
  return static_cast<double>(misses) / static_cast<double>(samples.size());
}

double CmePredictor::MissProbL1(int stmt_idx, OperandSel sel) const {
  return SampleMissProb(stmt_idx, sel, false);
}

double CmePredictor::MissProbL2(int stmt_idx, OperandSel sel) const {
  return SampleMissProb(stmt_idx, sel, true);
}

}  // namespace ndc::analysis
