#pragma once

#include <vector>

#include "ir/program.hpp"

namespace ndc::analysis {

/// One data dependence between two statement references of a loop nest.
/// `distance` is the iteration-vector difference (sink iteration minus
/// source iteration); it is lexicographically non-negative when known.
struct Dependence {
  int from_stmt = 0;  ///< body index of the source statement
  int to_stmt = 0;    ///< body index of the sink statement
  int array = -1;
  bool distance_known = false;
  ir::IntVec distance;  ///< valid iff distance_known
  bool is_flow = false;  ///< write -> read (true) vs anti/output
};

/// Which operand slot of a statement a reference came from.
enum class RefSlot : int { kLhs = 0, kRhs0 = 1, kRhs1 = 2 };

/// One reference pair the analysis could not resolve: either an indirect
/// reference is involved (never refutable statically) or the affine pair
/// escaped both the uniform solve and the GCD-independence test. Recorded so
/// downstream proof engines (src/analysis/parallelism.hpp) can retry with a
/// stronger test (array-section disjointness) and discharge the unknown.
struct UnknownRefPair {
  int from_stmt = 0;
  int to_stmt = 0;
  int array = -1;
  RefSlot from_slot = RefSlot::kLhs;
  RefSlot to_slot = RefSlot::kLhs;
  bool indirect = false;  ///< involves an indirect reference
};

/// All dependences of a nest, plus a conservative flag when non-affine or
/// shape-mismatched references force us to assume unknown dependences.
struct DependenceSet {
  std::vector<Dependence> deps;
  bool has_unknown = false;          ///< any unknown dependence (blocks transforms)
  std::vector<int> unknown_arrays;   ///< arrays with unanalyzable dependences
  std::vector<UnknownRefPair> unknown_pairs;  ///< the pairs behind unknown_arrays

  /// The dependence matrix D (Section 5.2.1): columns are the known,
  /// lexicographically positive distance vectors.
  ir::IntMat DependenceMatrix(int depth) const;

  /// True if hoisting a read of `array` earlier by `lead` iterations (in
  /// lexicographic linearized order of the innermost loop) cannot cross a
  /// write: there is no flow dependence into `array` whose carried distance
  /// is positive but small enough to be violated. Conservative.
  bool ReadHoistIsSafe(int array, ir::Int lead_linear, ir::Int inner_trip) const;
};

/// Classic pairwise dependence analysis over affine references (uniform
/// distance via exact integer solve; GCD-style existence for the rest).
/// Indirect references produce `has_unknown`.
DependenceSet AnalyzeDependences(const ir::Program& prog, const ir::LoopNest& nest);

/// Smallest lexicographically-positive integer kernel vector of F among the
/// unit vectors and pairwise differences (used for self-temporal reuse).
/// Returns false if none found.
bool SmallestKernelVector(const ir::IntMat& F, int depth, ir::IntVec* out);

/// Average trip count per loop level (exact for rectangular loops, midpoint
/// approximation for triangular bounds).
std::vector<ir::Int> AvgTrips(const ir::LoopNest& nest);

/// Solves F * delta = rhs for the iteration-distance delta, requiring
/// |delta_k| < trips[k] (the only solutions realizable inside the iteration
/// space). Handles two shapes exactly:
///  - square F with full rank: unique integer solve;
///  - flattened 1-row F (row-major linearized subscripts): bounded
///    delinearization (unique when the coefficient/trip structure nests).
/// Returns false when no bounded solution exists or it is ambiguous.
bool SolveUniformDistance(const ir::IntMat& F, const std::vector<ir::Int>& trips,
                          const ir::IntVec& rhs, ir::IntVec* delta);

}  // namespace ndc::analysis
