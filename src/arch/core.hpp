#pragma once

#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "arch/memory_port.hpp"
#include "arch/trace.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace ndc::arch {

/// A two-issue out-of-order core model: instructions *dispatch* in program
/// order at `issue_width` per cycle, but execute dataflow-style — a compute
/// completes when its operands do, without blocking the dispatch of later
/// independent instructions (approximating the paper's two-issue OoO SPARC).
/// Memory-level parallelism is bounded by `max_outstanding_loads` in-flight
/// loads. Memory operations are delegated to a MemoryPort (the machine),
/// which signals completion via Complete().
class Core {
 public:
  Core(sim::NodeId id, const ArchConfig& cfg, sim::EventQueue& eq, MemoryPort& port);

  sim::NodeId id() const { return id_; }

  /// Rebinds the core onto another event queue (the machine points each
  /// core at its home shard's queue before a sharded run). Must be called
  /// before Start().
  void RebindQueue(sim::EventQueue* eq) { eq_ = eq; }

  /// Installs the trace and resets execution state.
  void SetTrace(Trace trace);

  const Trace& trace() const { return trace_; }

  /// Begins execution (schedules the first dispatch event).
  void Start();

  /// Marks slot `idx` as externally completed: the core will not
  /// self-complete it (used for Computes that the machine offloaded to an
  /// NDC location at run time).
  void MarkExternal(std::uint32_t idx);

  /// Signals that slot `idx`'s result is available at cycle `when`
  /// (must be >= now). Safe to call before the slot has dispatched.
  void Complete(std::uint32_t idx, sim::Cycle when);

  bool finished() const { return completed_ == trace_.size(); }
  sim::Cycle finish_cycle() const { return finish_cycle_; }
  sim::Cycle done_cycle(std::uint32_t idx) const { return done_[idx]; }
  bool issued(std::uint32_t idx) const { return idx < next_; }

  /// Enables the per-kind stall breakdown (dispatch-to-completion cycles,
  /// attributed mem/sync/compute). Off by default: untracked runs record
  /// nothing, and the breakdown never reaches the merged StatSet unless the
  /// machine explicitly sums it — golden key sets stay frozen.
  void set_stall_tracking(bool on) { stall_tracking_ = on; }
  bool stall_tracking() const { return stall_tracking_; }

  /// Dispatch-to-completion cycles of loads (memory stall exposure).
  std::uint64_t stall_mem_cycles() const { return stall_mem_; }
  /// Dispatch-to-grant cycles of sync ops.
  std::uint64_t stall_sync_cycles() const { return stall_sync_; }
  /// ALU-busy cycles of on-core computes (compute_latency each).
  std::uint64_t busy_compute_cycles() const { return busy_compute_; }

  /// Counter view, materialized lazily from raw per-dispatch counters (the
  /// dispatch loop is the hottest counter path in the simulator; it must
  /// never hash a string per instruction).
  sim::StatSet& stats() {
    MaterializeStats();
    return stats_;
  }

 private:
  void TryDispatch();
  void MaterializeStats();
  /// Called once all deps of a dispatched, dep-waiting slot are complete.
  void ResolveWaiter(std::uint32_t idx);
  /// Dispatch-time handling once the slot's turn comes.
  void DispatchSlot(std::uint32_t idx);
  bool DepsDone(const Instr& in, sim::Cycle* ready_at) const;
  void ScheduleRetry(sim::Cycle at);

  sim::NodeId id_;
  const ArchConfig* cfg_;
  sim::EventQueue* eq_;  ///< home queue; a shard queue under sharded runs
  MemoryPort& port_;

  Trace trace_;
  std::vector<sim::Cycle> done_;
  std::vector<bool> external_;
  std::vector<bool> complete_flag_;
  std::vector<bool> dispatched_;
  std::vector<std::vector<std::uint32_t>> dependents_;  // dep idx -> waiters
  std::uint32_t next_ = 0;  // next trace slot to dispatch (in order)
  std::size_t completed_ = 0;
  int outstanding_loads_ = 0;
  sim::Cycle last_issue_cycle_ = sim::kNeverCycle;
  int issued_this_cycle_ = 0;
  sim::Cycle finish_cycle_ = 0;
  bool retry_scheduled_ = false;
  sim::Cycle retry_cycle_ = 0;
  bool stall_tracking_ = false;
  std::vector<sim::Cycle> dispatch_cycle_;  ///< only filled when tracking
  std::uint64_t stall_mem_ = 0;
  std::uint64_t stall_sync_ = 0;
  std::uint64_t busy_compute_ = 0;
  sim::RawCounter issued_ctr_, loads_ctr_, stores_ctr_, computes_ctr_, precomputes_ctr_,
      syncs_ctr_;
  sim::StatSet stats_;
};

}  // namespace ndc::arch
