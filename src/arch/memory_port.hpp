#pragma once

#include <cstdint>

#include "arch/trace.hpp"
#include "sim/types.hpp"

namespace ndc::arch {

/// The core's window into the rest of the machine (LD/ST unit backend).
/// Implemented by ndc::Machine. Completion of Loads, PreComputes, and
/// offloaded Computes is signalled back through Core::Complete().
class MemoryPort {
 public:
  virtual ~MemoryPort() = default;

  /// A load issued at `core` for trace slot `idx`. The port completes the
  /// slot when the value is available (data at core, or squashed into an
  /// NDC computation).
  virtual void IssueLoad(sim::NodeId core, std::uint32_t idx, sim::Addr addr) = 0;

  /// A store issued (fire-and-forget for timing; generates write traffic).
  virtual void IssueStore(sim::NodeId core, std::uint32_t idx, sim::Addr addr) = 0;

  /// A compiler-inserted pre-compute issued. The port completes the slot
  /// when the NDC result arrives at the core (or the fallback core
  /// computation finishes).
  virtual void IssuePreCompute(sim::NodeId core, std::uint32_t idx, const Instr& instr) = 0;

  /// A synchronization op issued. The port completes the slot when the sync
  /// engine's grant response arrives back at the core.
  virtual void IssueSync(sim::NodeId core, std::uint32_t idx, const Instr& instr) = 0;
};

}  // namespace ndc::arch
