#pragma once

#include <cstdint>
#include <vector>

#include "arch/config.hpp"
#include "sim/types.hpp"
#include "sync/ops.hpp"

namespace ndc::arch {

/// Arithmetic/logic operations offloadable near data (Table 1: all
/// arithmetic and logic operations by default).
enum class Op : std::uint8_t { kAdd, kSub, kMul, kDiv, kAnd, kOr, kXor };

inline bool IsAddSub(Op op) { return op == Op::kAdd || op == Op::kSub; }

inline const char* OpName(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kDiv: return "/";
    case Op::kAnd: return "&";
    case Op::kOr: return "|";
    case Op::kXor: return "^";
  }
  return "?";
}

/// One instruction of a per-core trace. Traces are produced by the code
/// generator (compiler/codegen.hpp) and executed by arch::Core.
///
/// Dependence encoding: `dep0`/`dep1` are indices of earlier instructions in
/// the same trace whose results this instruction consumes (-1 if unused).
/// A Compute whose two deps are Loads is an NDC *candidate* (the paper's
/// "computation c needing data elements A and B"); hardware-side policies
/// may offload candidates at run time. A PreCompute is a compiler-requested
/// offload ("pre-compute" ISA instruction, Section 5.2.1): its deps identify
/// the two operand Loads it offloads.
struct Instr {
  enum class Kind : std::uint8_t { kLoad, kStore, kCompute, kPreCompute, kSync };

  Kind kind = Kind::kCompute;
  Op op = Op::kAdd;
  sim::Addr addr = 0;          ///< Load/Store/Sync address
  std::int32_t dep0 = -1;
  std::int32_t dep1 = -1;
  std::uint32_t pc = 0;        ///< static program counter (predictors, Fig. 5)
  std::uint32_t site = 0;      ///< static NDC site id (use-use chain id)
  bool ndc_candidate = false;  ///< Compute only: eligible for hardware NDC

  // PreCompute-only fields (set by the compiler):
  Loc planned_loc = Loc::kCacheCtrl;  ///< target component the compiler chose
  sim::Cycle timeout = 0;             ///< time-out register value (breakeven)

  // Sync-only fields: the operation, its operand (add delta / CAS expected /
  // barrier population / wait threshold), and the CAS desired value. The
  // request travels to the sync engine at addr's home node and the slot
  // completes when the grant response arrives back at the core.
  sync::SyncOp sync_op = sync::SyncOp::kAtomicAdd;
  std::int64_t sync_arg = 0;
  std::int64_t sync_arg2 = 0;
};

using Trace = std::vector<Instr>;

/// Convenience constructors.
inline Instr MakeLoad(sim::Addr a, std::int32_t dep = -1) {
  Instr i;
  i.kind = Instr::Kind::kLoad;
  i.addr = a;
  i.dep0 = dep;
  return i;
}
inline Instr MakeStore(sim::Addr a, std::int32_t dep = -1) {
  Instr i;
  i.kind = Instr::Kind::kStore;
  i.addr = a;
  i.dep0 = dep;
  return i;
}
inline Instr MakeCompute(Op op, std::int32_t dep0, std::int32_t dep1, bool candidate,
                         std::uint32_t pc = 0, std::uint32_t site = 0) {
  Instr i;
  i.kind = Instr::Kind::kCompute;
  i.op = op;
  i.dep0 = dep0;
  i.dep1 = dep1;
  i.ndc_candidate = candidate;
  i.pc = pc;
  i.site = site;
  return i;
}
inline Instr MakeSync(sync::SyncOp op, sim::Addr a, std::int64_t arg = 0,
                      std::int32_t dep = -1, std::int64_t arg2 = 0) {
  Instr i;
  i.kind = Instr::Kind::kSync;
  i.sync_op = op;
  i.addr = a;
  i.sync_arg = arg;
  i.sync_arg2 = arg2;
  i.dep0 = dep;
  return i;
}
inline Instr MakePreCompute(Op op, std::int32_t load0, std::int32_t load1, Loc planned,
                            sim::Cycle timeout, std::uint32_t pc = 0, std::uint32_t site = 0) {
  Instr i;
  i.kind = Instr::Kind::kPreCompute;
  i.op = op;
  i.dep0 = load0;
  i.dep1 = load1;
  i.planned_loc = planned;
  i.timeout = timeout;
  i.pc = pc;
  i.site = site;
  return i;
}

}  // namespace ndc::arch
