#include "arch/core.hpp"

#include <algorithm>
#include <cassert>

namespace ndc::arch {

Core::Core(sim::NodeId id, const ArchConfig& cfg, sim::EventQueue& eq, MemoryPort& port)
    : id_(id), cfg_(&cfg), eq_(&eq), port_(port) {}

void Core::SetTrace(Trace trace) {
  trace_ = std::move(trace);
  done_.assign(trace_.size(), sim::kNeverCycle);
  external_.assign(trace_.size(), false);
  complete_flag_.assign(trace_.size(), false);
  dispatched_.assign(trace_.size(), false);
  dependents_.assign(trace_.size(), {});
  next_ = 0;
  completed_ = 0;
  outstanding_loads_ = 0;
  last_issue_cycle_ = sim::kNeverCycle;
  issued_this_cycle_ = 0;
  finish_cycle_ = 0;
  retry_scheduled_ = false;
  if (stall_tracking_) dispatch_cycle_.assign(trace_.size(), sim::kNeverCycle);
  stall_mem_ = 0;
  stall_sync_ = 0;
  busy_compute_ = 0;
}

void Core::Start() {
  eq_->ScheduleAfter(0, [this] { TryDispatch(); });
}

void Core::MarkExternal(std::uint32_t idx) { external_[idx] = true; }

void Core::Complete(std::uint32_t idx, sim::Cycle when) {
  assert(idx < trace_.size());
  if (complete_flag_[idx]) return;  // idempotent (squash + fallback races)
  complete_flag_[idx] = true;
  done_[idx] = when;
  ++completed_;
  if (stall_tracking_ && idx < dispatch_cycle_.size() &&
      dispatch_cycle_[idx] != sim::kNeverCycle) {
    sim::Cycle d = dispatch_cycle_[idx];
    std::uint64_t exposure = when > d ? when - d : 0;
    switch (trace_[idx].kind) {
      case Instr::Kind::kLoad: stall_mem_ += exposure; break;
      case Instr::Kind::kSync: stall_sync_ += exposure; break;
      case Instr::Kind::kCompute:
        // Off-core (external) computes are the NDC engine's busy time, not
        // the host ALU's; they are attributed via ndc.success instead.
        if (!external_[idx]) busy_compute_ += cfg_->compute_latency;
        break;
      default: break;
    }
  }
  if (trace_[idx].kind == Instr::Kind::kLoad) --outstanding_loads_;
  finish_cycle_ = std::max(finish_cycle_, when);
  // Wake dependents that were dispatched while waiting on this slot.
  std::vector<std::uint32_t> waiters = std::move(dependents_[idx]);
  dependents_[idx].clear();
  for (std::uint32_t w : waiters) ResolveWaiter(w);
  if (when > eq_->now()) {
    eq_->ScheduleAt(when, [this] { TryDispatch(); });
  } else {
    TryDispatch();
  }
}

bool Core::DepsDone(const Instr& in, sim::Cycle* ready_at) const {
  sim::Cycle ready = eq_->now();
  for (std::int32_t dep : {in.dep0, in.dep1}) {
    if (dep < 0) continue;
    sim::Cycle d = done_[static_cast<std::size_t>(dep)];
    if (d == sim::kNeverCycle) return false;
    ready = std::max(ready, d);
  }
  *ready_at = ready;
  return true;
}

void Core::ResolveWaiter(std::uint32_t idx) {
  const Instr& in = trace_[idx];
  if (complete_flag_[idx]) return;
  sim::Cycle ready;
  if (!DepsDone(in, &ready)) return;  // still waiting on the other dep
  switch (in.kind) {
    case Instr::Kind::kCompute:
      if (!external_[idx]) Complete(idx, ready + cfg_->compute_latency);
      break;
    case Instr::Kind::kStore:
      port_.IssueStore(id_, idx, in.addr);
      Complete(idx, ready + 1);
      break;
    case Instr::Kind::kSync:
      port_.IssueSync(id_, idx, in);  // sync engine completes the slot
      break;
    default:
      break;  // loads/pre-computes are completed by the memory port
  }
}

void Core::ScheduleRetry(sim::Cycle at) {
  if (retry_scheduled_ && retry_cycle_ <= at) return;
  retry_scheduled_ = true;
  retry_cycle_ = at;
  eq_->ScheduleAt(at, [this] {
    retry_scheduled_ = false;
    TryDispatch();
  });
}

void Core::TryDispatch() {
  sim::Cycle now = eq_->now();
  if (now != last_issue_cycle_) {
    last_issue_cycle_ = now;
    issued_this_cycle_ = 0;
  }
  while (next_ < trace_.size()) {
    if (issued_this_cycle_ >= cfg_->issue_width) {
      ScheduleRetry(now + 1);
      return;
    }
    const Instr& in = trace_[next_];
    if (in.kind == Instr::Kind::kLoad) {
      // Loads need their address operand and an LDQ slot before dispatch.
      if (in.dep0 >= 0) {
        sim::Cycle d = done_[static_cast<std::size_t>(in.dep0)];
        if (d == sim::kNeverCycle) return;  // completion will re-trigger
        if (d > now) {
          ScheduleRetry(d);
          return;
        }
      }
      if (outstanding_loads_ >= cfg_->max_outstanding_loads) {
        return;  // a load completion will re-trigger dispatch
      }
    }
    DispatchSlot(next_);
    ++next_;
    ++issued_this_cycle_;
  }
}

void Core::DispatchSlot(std::uint32_t idx) {
  const Instr& in = trace_[idx];
  dispatched_[idx] = true;
  if (stall_tracking_ && idx < dispatch_cycle_.size()) dispatch_cycle_[idx] = eq_->now();
  issued_ctr_.Add();
  sim::Cycle ready;
  switch (in.kind) {
    case Instr::Kind::kLoad:
      ++outstanding_loads_;
      loads_ctr_.Add();
      port_.IssueLoad(id_, idx, in.addr);
      break;
    case Instr::Kind::kStore:
      stores_ctr_.Add();
      if (DepsDone(in, &ready)) {
        port_.IssueStore(id_, idx, in.addr);
        Complete(idx, ready + 1);
      } else {
        for (std::int32_t dep : {in.dep0, in.dep1}) {
          if (dep >= 0 && done_[static_cast<std::size_t>(dep)] == sim::kNeverCycle) {
            dependents_[static_cast<std::size_t>(dep)].push_back(idx);
          }
        }
      }
      break;
    case Instr::Kind::kCompute:
      computes_ctr_.Add();
      if (external_[idx]) break;  // machine completes it
      if (DepsDone(in, &ready)) {
        Complete(idx, ready + cfg_->compute_latency);
      } else {
        for (std::int32_t dep : {in.dep0, in.dep1}) {
          if (dep >= 0 && done_[static_cast<std::size_t>(dep)] == sim::kNeverCycle) {
            dependents_[static_cast<std::size_t>(dep)].push_back(idx);
          }
        }
      }
      break;
    case Instr::Kind::kPreCompute:
      precomputes_ctr_.Add();
      port_.IssuePreCompute(id_, idx, in);
      break;
    case Instr::Kind::kSync:
      // Sync ops wait for their data dep (e.g. the guarded store, or the
      // value whose delta they carry) before the request leaves the core;
      // the grant response completes the slot.
      syncs_ctr_.Add();
      if (DepsDone(in, &ready)) {
        port_.IssueSync(id_, idx, in);
      } else {
        for (std::int32_t dep : {in.dep0, in.dep1}) {
          if (dep >= 0 && done_[static_cast<std::size_t>(dep)] == sim::kNeverCycle) {
            dependents_[static_cast<std::size_t>(dep)].push_back(idx);
          }
        }
      }
      break;
  }
}

void Core::MaterializeStats() {
  stats_.Clear();
  issued_ctr_.MaterializeInto(stats_, "core.issued");
  loads_ctr_.MaterializeInto(stats_, "core.loads");
  stores_ctr_.MaterializeInto(stats_, "core.stores");
  computes_ctr_.MaterializeInto(stats_, "core.computes");
  precomputes_ctr_.MaterializeInto(stats_, "core.precomputes");
  syncs_ctr_.MaterializeInto(stats_, "core.syncs");
}

}  // namespace ndc::arch
