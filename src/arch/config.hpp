#pragma once

#include <cstdint>
#include <vector>

#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "noc/geometry.hpp"
#include "noc/network.hpp"
#include "sim/types.hpp"

namespace ndc::arch {

/// Which hardware components may perform near-data computation
/// (Section 2: link buffers/routers ⓐ, cache controllers ⓑ, memory
/// controllers ⓒ, memory banks ⓓ). Values double as control-register bits ⓔ.
enum class Loc : int {
  kLinkBuffer = 0,
  kCacheCtrl = 1,
  kMemCtrl = 2,
  kMemBank = 3,
};
inline constexpr int kNumLocs = 4;

inline constexpr std::uint8_t LocBit(Loc l) {
  return static_cast<std::uint8_t>(1u << static_cast<int>(l));
}
inline constexpr std::uint8_t kAllLocs = 0xF;

inline const char* LocName(Loc l) {
  switch (l) {
    case Loc::kLinkBuffer: return "network";
    case Loc::kCacheCtrl: return "cache";
    case Loc::kMemCtrl: return "MC";
    case Loc::kMemBank: return "memory";
  }
  return "?";
}

/// The simulated configuration (Table 1). Defaults model the paper's 5x5
/// mesh with one core/thread per node.
struct ArchConfig {
  // --- mesh / cores ---
  int mesh_width = 5;
  int mesh_height = 5;
  int issue_width = 2;              ///< two-issue core
  int max_outstanding_loads = 8;    ///< bounded memory-level parallelism
  sim::Cycle compute_latency = 1;   ///< ALU op cost (same near data, per §3)

  // --- caches (Table 1) ---
  mem::CacheParams l1{32 * 1024, 64, 2, 2};
  mem::CacheParams l2{512 * 1024, 256, 64, 20};

  // --- NoC (Table 1: 5x5 mesh, 16B links, 3-cycle pipeline, XY) ---
  noc::NetworkParams noc{};

  // --- memory system (Table 1: 4 MCs, 4KB interleave, FR-FCFS) ---
  int num_mcs = 4;
  mem::DramParams dram{};

  // --- NDC hardware (Section 2) ---
  std::uint8_t control_register = kAllLocs;  ///< enabled NDC locations ⓔ
  int service_table_entries = 8;             ///< per NDC ALU
  int offload_table_entries = 16;            ///< LD/ST-unit offload table size
  sim::Cycle default_timeout = 100000;       ///< "wait forever" stand-in
  bool allow_reroute = true;  ///< compiler may pick non-XY minimal routes
  bool restrict_ops_to_addsub = false;  ///< Fig. 17 sensitivity knob

  int num_nodes() const { return mesh_width * mesh_height; }

  /// Mesh nodes hosting the four memory controllers (Figure 1 places them
  /// at the chip corners).
  std::vector<sim::NodeId> McNodes() const {
    noc::Mesh m(mesh_width, mesh_height);
    std::vector<sim::NodeId> nodes;
    nodes.push_back(m.NodeAt({0, 0}));
    nodes.push_back(m.NodeAt({mesh_width - 1, 0}));
    nodes.push_back(m.NodeAt({0, mesh_height - 1}));
    nodes.push_back(m.NodeAt({mesh_width - 1, mesh_height - 1}));
    nodes.resize(static_cast<std::size_t>(num_mcs), nodes.back());
    return nodes;
  }

  /// The static-NUCA / channel address map implied by this configuration.
  mem::AddressMap MakeAddressMap() const {
    mem::AddressMap a;
    a.l2_line_bytes = l2.line_bytes;
    a.num_nodes = num_nodes();
    a.mc_interleave_bytes = 4096;
    a.num_mcs = num_mcs;
    a.row_bytes = 4096;
    a.banks_per_mc = 16;
    return a;
  }
};

}  // namespace ndc::arch
