#include "ir/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

namespace ndc::ir {

IntMat IntMat::Identity(int n) {
  IntMat m(n, n);
  for (int i = 0; i < n; ++i) m.at(i, i) = 1;
  return m;
}

IntVec IntMat::Apply(const IntVec& v) const {
  assert(static_cast<int>(v.size()) == cols_);
  IntVec out(static_cast<std::size_t>(rows_), 0);
  for (int r = 0; r < rows_; ++r) {
    Int s = 0;
    for (int c = 0; c < cols_; ++c) s += at(r, c) * v[static_cast<std::size_t>(c)];
    out[static_cast<std::size_t>(r)] = s;
  }
  return out;
}

IntMat IntMat::Multiply(const IntMat& other) const {
  assert(cols_ == other.rows_);
  IntMat out(rows_, other.cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < other.cols_; ++c) {
      Int s = 0;
      for (int k = 0; k < cols_; ++k) s += at(r, k) * other.at(k, c);
      out.at(r, c) = s;
    }
  }
  return out;
}

IntMat IntMat::Transpose() const {
  IntMat out(cols_, rows_);
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

Int IntMat::Determinant() const {
  assert(rows_ == cols_);
  int n = rows_;
  if (n == 0) return 1;
  // Bareiss fraction-free elimination on a copy.
  std::vector<Int> m(a_);
  auto e = [&](int r, int c) -> Int& { return m[static_cast<std::size_t>(r * n + c)]; };
  Int sign = 1;
  Int prev = 1;
  for (int k = 0; k < n - 1; ++k) {
    if (e(k, k) == 0) {
      int p = -1;
      for (int r = k + 1; r < n; ++r) {
        if (e(r, k) != 0) {
          p = r;
          break;
        }
      }
      if (p < 0) return 0;
      for (int c = 0; c < n; ++c) std::swap(e(k, c), e(p, c));
      sign = -sign;
    }
    for (int i = k + 1; i < n; ++i) {
      for (int j = k + 1; j < n; ++j) {
        e(i, j) = (e(i, j) * e(k, k) - e(i, k) * e(k, j)) / prev;
      }
      e(i, k) = 0;
    }
    prev = e(k, k);
  }
  return sign * e(n - 1, n - 1);
}

int IntMat::Rank() const {
  // Fraction-free elimination; small sizes only.
  std::vector<double> m(a_.size());
  for (std::size_t i = 0; i < a_.size(); ++i) m[i] = static_cast<double>(a_[i]);
  auto e = [&](int r, int c) -> double& { return m[static_cast<std::size_t>(r * cols_ + c)]; };
  int rank = 0;
  for (int col = 0; col < cols_ && rank < rows_; ++col) {
    int p = -1;
    double best = 1e-9;
    for (int r = rank; r < rows_; ++r) {
      if (std::abs(e(r, col)) > best) {
        best = std::abs(e(r, col));
        p = r;
      }
    }
    if (p < 0) continue;
    for (int c = 0; c < cols_; ++c) std::swap(e(rank, c), e(p, c));
    for (int r = 0; r < rows_; ++r) {
      if (r == rank || std::abs(e(r, col)) < 1e-12) continue;
      double f = e(r, col) / e(rank, col);
      for (int c = 0; c < cols_; ++c) e(r, c) -= f * e(rank, c);
    }
    ++rank;
  }
  return rank;
}

bool IntMat::IsUnimodular() const {
  if (rows_ != cols_) return false;
  Int d = Determinant();
  return d == 1 || d == -1;
}

bool IntMat::SolveInteger(const IntVec& b, IntVec* x) const {
  assert(static_cast<int>(b.size()) == rows_);
  // Rational Gaussian elimination with exact arithmetic via long double is
  // unsafe; use fractions as (num, den) pairs over Int. Sizes are tiny.
  int n = rows_, m = cols_;
  struct Frac {
    Int num = 0, den = 1;
    void Reduce() {
      if (den < 0) {
        num = -num;
        den = -den;
      }
      Int g = std::gcd(std::abs(num), den);
      if (g > 1) {
        num /= g;
        den /= g;
      }
    }
  };
  auto sub_mul = [](Frac a, Frac b, Frac f) {
    // a - b * f
    Frac r;
    r.num = a.num * b.den * f.den - b.num * f.num * a.den;
    r.den = a.den * b.den * f.den;
    r.Reduce();
    return r;
  };
  std::vector<std::vector<Frac>> aug(static_cast<std::size_t>(n),
                                     std::vector<Frac>(static_cast<std::size_t>(m + 1)));
  for (int r = 0; r < n; ++r) {
    for (int c = 0; c < m; ++c) aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = {at(r, c), 1};
    aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(m)] = {b[static_cast<std::size_t>(r)], 1};
  }
  std::vector<int> pivot_col(static_cast<std::size_t>(n), -1);
  int row = 0;
  for (int col = 0; col < m && row < n; ++col) {
    int p = -1;
    for (int r = row; r < n; ++r) {
      if (aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)].num != 0) {
        p = r;
        break;
      }
    }
    if (p < 0) continue;
    std::swap(aug[static_cast<std::size_t>(row)], aug[static_cast<std::size_t>(p)]);
    Frac piv = aug[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
    for (int r = 0; r < n; ++r) {
      if (r == row) continue;
      Frac f = aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(col)];
      if (f.num == 0) continue;
      Frac ratio{f.num * piv.den, f.den * piv.num};
      ratio.Reduce();
      for (int c = col; c <= m; ++c) {
        aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] =
            sub_mul(aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)],
                    aug[static_cast<std::size_t>(row)][static_cast<std::size_t>(c)], ratio);
      }
    }
    pivot_col[static_cast<std::size_t>(row)] = col;
    ++row;
  }
  // Inconsistency check.
  for (int r = row; r < n; ++r) {
    if (aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(m)].num != 0) return false;
  }
  IntVec sol(static_cast<std::size_t>(m), 0);  // free variables = 0
  for (int r = 0; r < row; ++r) {
    int c = pivot_col[static_cast<std::size_t>(r)];
    Frac piv = aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)];
    Frac rhs = aug[static_cast<std::size_t>(r)][static_cast<std::size_t>(m)];
    // x_c = rhs / piv must be integral.
    Int num = rhs.num * piv.den;
    Int den = rhs.den * piv.num;
    if (den == 0 || num % den != 0) return false;
    sol[static_cast<std::size_t>(c)] = num / den;
  }
  *x = std::move(sol);
  return true;
}

bool IntMat::InverseUnimodular(IntMat* out) const {
  if (!IsUnimodular()) return false;
  int n = rows_;
  IntMat inv(n, n);
  for (int c = 0; c < n; ++c) {
    IntVec e(static_cast<std::size_t>(n), 0);
    e[static_cast<std::size_t>(c)] = 1;
    IntVec x;
    if (!SolveInteger(e, &x)) return false;
    for (int r = 0; r < n; ++r) inv.at(r, c) = x[static_cast<std::size_t>(r)];
  }
  *out = std::move(inv);
  return true;
}

std::string IntMat::ToString() const {
  std::ostringstream os;
  for (int r = 0; r < rows_; ++r) {
    os << "[";
    for (int c = 0; c < cols_; ++c) os << (c ? " " : "") << at(r, c);
    os << "]";
  }
  return os.str();
}

int LexCompare(const IntVec& a, const IntVec& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

bool LexPositive(const IntVec& v) {
  for (Int x : v) {
    if (x > 0) return true;
    if (x < 0) return false;
  }
  return false;
}

bool IsZero(const IntVec& v) {
  return std::all_of(v.begin(), v.end(), [](Int x) { return x == 0; });
}

IntVec VecAdd(const IntVec& a, const IntVec& b) {
  IntVec r(a);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] += b[i];
  return r;
}

IntVec VecSub(const IntVec& a, const IntVec& b) {
  IntVec r(a);
  for (std::size_t i = 0; i < r.size(); ++i) r[i] -= b[i];
  return r;
}

}  // namespace ndc::ir
