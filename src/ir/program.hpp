#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/trace.hpp"
#include "ir/matrix.hpp"
#include "sim/types.hpp"

namespace ndc::ir {

/// An array in the simulated address space (row-major layout).
struct Array {
  int id = 0;
  std::string name;
  std::vector<Int> dims;  ///< extent per dimension
  sim::Addr base = 0;     ///< byte base address
  int elem_bytes = 8;

  Int NumElems() const {
    Int n = 1;
    for (Int d : dims) n *= d;
    return n;
  }

  /// Byte address of element `subscript` (must be in bounds).
  sim::Addr AddrOf(const IntVec& subscript) const;
};

/// An affine array access X(F*I + f) where I is the iteration vector.
struct AffineAccess {
  int array = -1;
  IntMat F;   ///< dims(X) x depth
  IntVec f;   ///< dims(X) offsets

  IntVec Subscript(const IntVec& iter) const { return VecAdd(F.Apply(iter), f); }
};

/// One operand (or store target) of a statement.
struct Operand {
  enum class Kind {
    kNone,      ///< absent (unary ops / register accumulation)
    kAffine,    ///< X(F*I + f)
    kIndirect,  ///< X[ idx(F*I + f) ] — one level of indirection
    kScalar,    ///< a register value (no memory access)
  };
  Kind kind = Kind::kNone;
  AffineAccess access;    ///< kAffine: the access; kIndirect: the *index* access
  int target_array = -1;  ///< kIndirect: the indirectly addressed array

  bool IsMemory() const { return kind == Kind::kAffine || kind == Kind::kIndirect; }

  static Operand None() { return {}; }
  static Operand Affine(AffineAccess a) {
    Operand o;
    o.kind = Kind::kAffine;
    o.access = std::move(a);
    return o;
  }
  static Operand Indirect(AffineAccess index_access, int target) {
    Operand o;
    o.kind = Kind::kIndirect;
    o.access = std::move(index_access);
    o.target_array = target;
    return o;
  }
  static Operand Scalar() {
    Operand o;
    o.kind = Kind::kScalar;
    return o;
  }
};

/// NDC offload annotation attached to a statement by the compiler
/// (Algorithms 1 and 2). `lead0`/`lead1` are the access movements of
/// Figures 8-9 expressed as iteration leads: a positive lead means the
/// operand's load is issued that many iterations *before* the computation's
/// iteration (the access was hoisted), a negative lead that many after.
struct NdcAnnotation {
  bool offload = false;
  arch::Loc planned = arch::Loc::kCacheCtrl;
  sim::Cycle timeout = 0;
  Int lead0 = 0;
  Int lead1 = 0;
};

/// How a proof obligation of a parallel nest is discharged at execution
/// time. Statement-level kinds lower a recognized reduction RMW to remote
/// synchronization; the nest-level kind orders DOACROSS iterations.
enum class SyncKind : std::uint8_t {
  kNone,       ///< no synchronization
  kNdcAtomic,  ///< stmt: lower the RMW to a remote fetch-add at the sync engine
  kHostLock,   ///< stmt: guard the host-side RMW with a ticket lock
  kPostWait,   ///< nest: point-to-point post/wait along the witness distance
};

/// Statement-level synchronization annotation (reduction lowering scheme).
struct StmtSync {
  SyncKind kind = SyncKind::kNone;
};

/// Nest-level synchronization annotation. `kPostWait` orders cross-core
/// DOACROSS iterations: each core posts per completed iteration into its
/// slot of `sync_array`, and consumers wait on the producing core's slot
/// along the outer-level dependence `distance`. `barrier_after` appends a
/// barrier arrival (population = active cores) after the nest's last
/// iteration on each core, using the final element of `sync_array`.
struct NestSync {
  SyncKind kind = SyncKind::kNone;  ///< kNone or kPostWait
  Int distance = 0;                 ///< outer-level post/wait distance (>0)
  int sync_array = -1;              ///< array holding post slots (+ barrier cell)
  bool barrier_after = false;
};

/// A statement `lhs = rhs0 op rhs1`, executed at every iteration of its
/// loop nest. `id` is the static statement id (used as PC and NDC site id).
struct Stmt {
  std::uint32_t id = 0;
  Operand lhs;  ///< kNone/kScalar => no store emitted
  arch::Op op = arch::Op::kAdd;
  Operand rhs0;
  Operand rhs1;
  NdcAnnotation ndc;
  StmtSync sync;
};

/// Parallelization assertion attached to a nest by its producer (a workload
/// generator or an auto-parallelization pass): "level `level` may be split
/// across cores". The assertion is *checked*, not trusted — the P4xx verify
/// pass (src/verify/parallelism_check.hpp) re-derives the classification
/// from dependences and rejects an annotation the proof engine cannot
/// discharge. `reduction_ok` / `privatized_ok` record which proof
/// obligations the producer claims to have handled (per-shard accumulators
/// with a combine step; private copies of temporaries).
struct ParallelAnnotation {
  int level = -1;            ///< asserted-parallel loop level (-1 = none)
  bool reduction_ok = false; ///< producer combines per-shard reduction partials
  bool privatized_ok = false;///< producer privatized the flagged temporaries
};

/// One loop of a nest. Bounds are inclusive and may depend linearly on a
/// single outer iterator (triangular nests, e.g. LU / Cholesky):
///   lo_effective = lo + lo_coef * I[lo_dep]   (when lo_dep >= 0)
///   hi_effective = hi + hi_coef * I[hi_dep]   (when hi_dep >= 0)
struct Loop {
  Int lo = 0;
  Int hi = 0;
  int lo_dep = -1;
  Int lo_coef = 0;
  int hi_dep = -1;
  Int hi_coef = 0;
};

/// A (perfect) loop nest with a statement body. The outermost loop is the
/// parallel loop: its iterations are block-distributed across cores by the
/// code generator. An optional unimodular schedule transform T reorders each
/// core's iterations (applied as: execute in lexicographic order of T*I).
struct LoopNest {
  std::vector<Loop> loops;
  std::vector<Stmt> body;
  std::optional<IntMat> transform;
  ParallelAnnotation parallel;
  NestSync sync;

  int depth() const { return static_cast<int>(loops.size()); }

  Int LoEffective(int level, const IntVec& iter) const;
  Int HiEffective(int level, const IntVec& iter) const;

  /// Calls fn(I) for every iteration in original program order.
  void ForEachIteration(const std::function<void(const IntVec&)>& fn) const;

  /// Total iteration count.
  Int NumIterations() const;
};

/// A whole program: arrays, index-array contents for indirect accesses, and
/// a sequence of loop nests.
struct Program {
  std::string name;
  std::vector<Array> arrays;
  std::vector<LoopNest> nests;
  /// Values of index arrays (array id -> flattened contents), used by the
  /// code generator to resolve indirect accesses.
  std::unordered_map<int, std::vector<Int>> index_data;

  /// Registers a new array laid out after all existing ones (page aligned).
  int AddArray(const std::string& name, std::vector<Int> dims, int elem_bytes = 8);

  const Array& array(int id) const { return arrays[static_cast<std::size_t>(id)]; }

  /// Fresh statement id.
  std::uint32_t NextStmtId();

  /// Byte address accessed by an operand at iteration `iter` (resolving
  /// indirection through index_data). Returns nullopt for non-memory
  /// operands or out-of-bounds subscripts.
  std::optional<sim::Addr> ResolveAddr(const Operand& op, const IntVec& iter) const;

  std::string ToString() const;

 private:
  std::uint32_t next_stmt_id_ = 1;
};

}  // namespace ndc::ir
