#include "ir/program.hpp"

#include <cassert>
#include <sstream>

namespace ndc::ir {

sim::Addr Array::AddrOf(const IntVec& subscript) const {
  assert(subscript.size() == dims.size());
  Int idx = 0;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    assert(subscript[d] >= 0 && subscript[d] < dims[d]);
    idx = idx * dims[d] + subscript[d];
  }
  return base + static_cast<sim::Addr>(idx) * static_cast<sim::Addr>(elem_bytes);
}

Int LoopNest::LoEffective(int level, const IntVec& iter) const {
  const Loop& l = loops[static_cast<std::size_t>(level)];
  Int lo = l.lo;
  if (l.lo_dep >= 0) lo += l.lo_coef * iter[static_cast<std::size_t>(l.lo_dep)];
  return lo;
}

Int LoopNest::HiEffective(int level, const IntVec& iter) const {
  const Loop& l = loops[static_cast<std::size_t>(level)];
  Int hi = l.hi;
  if (l.hi_dep >= 0) hi += l.hi_coef * iter[static_cast<std::size_t>(l.hi_dep)];
  return hi;
}

void LoopNest::ForEachIteration(const std::function<void(const IntVec&)>& fn) const {
  IntVec iter(static_cast<std::size_t>(depth()), 0);
  std::function<void(int)> rec = [&](int level) {
    if (level == depth()) {
      fn(iter);
      return;
    }
    Int lo = LoEffective(level, iter);
    Int hi = HiEffective(level, iter);
    for (Int v = lo; v <= hi; ++v) {
      iter[static_cast<std::size_t>(level)] = v;
      rec(level + 1);
    }
  };
  rec(0);
}

Int LoopNest::NumIterations() const {
  Int n = 0;
  ForEachIteration([&](const IntVec&) { ++n; });
  return n;
}

int Program::AddArray(const std::string& aname, std::vector<Int> dims, int elem_bytes) {
  Array a;
  a.id = static_cast<int>(arrays.size());
  a.name = aname;
  a.dims = std::move(dims);
  a.elem_bytes = elem_bytes;
  sim::Addr base = 0x10000;  // keep away from address 0
  if (!arrays.empty()) {
    const Array& prev = arrays.back();
    base = prev.base + static_cast<sim::Addr>(prev.NumElems()) *
                           static_cast<sim::Addr>(prev.elem_bytes);
  }
  a.base = (base + 4095) & ~sim::Addr{4095};  // page align
  arrays.push_back(std::move(a));
  return arrays.back().id;
}

std::uint32_t Program::NextStmtId() { return next_stmt_id_++; }

std::optional<sim::Addr> Program::ResolveAddr(const Operand& op, const IntVec& iter) const {
  if (!op.IsMemory()) return std::nullopt;
  const Array& idx_arr = array(op.access.array);
  IntVec sub = op.access.Subscript(iter);
  for (std::size_t d = 0; d < sub.size(); ++d) {
    if (sub[d] < 0 || sub[d] >= idx_arr.dims[d]) return std::nullopt;
  }
  if (op.kind == Operand::Kind::kAffine) return idx_arr.AddrOf(sub);
  // Indirect: read the index value, then address the target array (1-D).
  auto it = index_data.find(op.access.array);
  if (it == index_data.end()) return std::nullopt;
  Int flat = 0;
  for (std::size_t d = 0; d < sub.size(); ++d) flat = flat * idx_arr.dims[d] + sub[d];
  if (flat < 0 || flat >= static_cast<Int>(it->second.size())) return std::nullopt;
  Int target_idx = it->second[static_cast<std::size_t>(flat)];
  const Array& tgt = array(op.target_array);
  if (target_idx < 0 || target_idx >= tgt.NumElems()) return std::nullopt;
  return tgt.base +
         static_cast<sim::Addr>(target_idx) * static_cast<sim::Addr>(tgt.elem_bytes);
}

namespace {
std::string OperandString(const Program& p, const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kNone: return "_";
    case Operand::Kind::kScalar: return "reg";
    case Operand::Kind::kAffine:
      return p.array(op.access.array).name + "(F=" + op.access.F.ToString() + ")";
    case Operand::Kind::kIndirect:
      return p.array(op.target_array).name + "[" + p.array(op.access.array).name + "(...)]";
  }
  return "?";
}
}  // namespace

std::string Program::ToString() const {
  std::ostringstream os;
  os << "program " << name << ": " << arrays.size() << " arrays, " << nests.size()
     << " nests\n";
  for (std::size_t n = 0; n < nests.size(); ++n) {
    const LoopNest& nest = nests[n];
    os << "  nest " << n << " depth=" << nest.depth();
    if (nest.parallel.level >= 0) {
      os << " parallel(level=" << nest.parallel.level
         << (nest.parallel.reduction_ok ? ", reduction" : "")
         << (nest.parallel.privatized_ok ? ", privatized" : "") << ")";
    }
    os << "\n";
    for (const Stmt& s : nest.body) {
      os << "    S" << s.id << ": " << OperandString(*this, s.lhs) << " = "
         << OperandString(*this, s.rhs0) << " " << arch::OpName(s.op) << " "
         << OperandString(*this, s.rhs1);
      if (s.ndc.offload) {
        os << "   [NDC @" << arch::LocName(s.ndc.planned) << " timeout=" << s.ndc.timeout
           << " leads=(" << s.ndc.lead0 << "," << s.ndc.lead1 << ")]";
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace ndc::ir
