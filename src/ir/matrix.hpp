#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace ndc::ir {

using Int = std::int64_t;
using IntVec = std::vector<Int>;

/// A small dense integer matrix (row-major). Used for affine access
/// functions F (subscript = F*I + f), loop transformation matrices T, and
/// dependence matrices D. Sizes are tiny (loop depths <= 4), so all
/// operations are simple dense algorithms.
class IntMat {
 public:
  IntMat() = default;
  IntMat(int rows, int cols) : rows_(rows), cols_(cols), a_(static_cast<std::size_t>(rows * cols), 0) {}
  IntMat(int rows, int cols, std::vector<Int> data) : rows_(rows), cols_(cols), a_(std::move(data)) {
    assert(static_cast<int>(a_.size()) == rows * cols);
  }

  static IntMat Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  Int& at(int r, int c) { return a_[static_cast<std::size_t>(r * cols_ + c)]; }
  Int at(int r, int c) const { return a_[static_cast<std::size_t>(r * cols_ + c)]; }

  IntVec Apply(const IntVec& v) const;          ///< this * v
  IntMat Multiply(const IntMat& other) const;   ///< this * other
  IntMat Transpose() const;

  /// Determinant via fraction-free Gaussian elimination (Bareiss).
  Int Determinant() const;

  /// Rank over the rationals.
  int Rank() const;

  /// True iff square with |det| == 1 (a bijection on the integer lattice).
  bool IsUnimodular() const;

  /// Solves this * x = b exactly over the integers. Returns false if the
  /// system has no integral solution (or is singular/inconsistent).
  bool SolveInteger(const IntVec& b, IntVec* x) const;

  /// Inverse of a unimodular matrix (integral by definition).
  bool InverseUnimodular(IntMat* out) const;

  friend bool operator==(const IntMat&, const IntMat&) = default;

  std::string ToString() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<Int> a_;
};

/// Lexicographic comparison of integer vectors.
int LexCompare(const IntVec& a, const IntVec& b);
bool LexPositive(const IntVec& v);  ///< first nonzero entry > 0
bool IsZero(const IntVec& v);

IntVec VecAdd(const IntVec& a, const IntVec& b);
IntVec VecSub(const IntVec& a, const IntVec& b);

}  // namespace ndc::ir
