#pragma once

#include <cstdint>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace ndc::mem {

/// DRAM timing in core cycles, approximating the Table 1 device
/// (Micron DDR2-800, 4 banks/device, 16384 rows/bank, 4 KB row buffer).
struct DramParams {
  sim::Cycle row_hit_latency = 40;    ///< CAS only (open row)
  sim::Cycle row_miss_latency = 120;  ///< precharge + activate + CAS
  sim::Cycle data_beat = 4;           ///< per-request data transfer occupancy
  std::uint64_t num_rows = 16384;
};

/// One DRAM bank with an open-row (row-buffer) policy. Requests are serviced
/// serially; `busy_until` models the bank occupancy.
class DramBank {
 public:
  explicit DramBank(const DramParams& params) : params_(&params) {}

  /// True if `row` currently sits in the row buffer (an FR-FCFS "row hit").
  bool IsRowOpen(std::uint64_t row) const { return open_row_ == static_cast<std::int64_t>(row); }

  sim::Cycle busy_until() const { return busy_until_; }

  /// Services a read/write of `row` starting no earlier than `now`;
  /// returns the completion cycle and updates bank state.
  sim::Cycle Access(sim::Cycle now, std::uint64_t row);

  std::uint64_t row_hits() const { return row_hits_; }
  std::uint64_t row_misses() const { return row_misses_; }

  void Reset();

 private:
  const DramParams* params_;
  std::int64_t open_row_ = -1;
  sim::Cycle busy_until_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
};

}  // namespace ndc::mem
