#include "mem/dram.hpp"

#include <algorithm>

namespace ndc::mem {

sim::Cycle DramBank::Access(sim::Cycle now, std::uint64_t row) {
  sim::Cycle start = std::max(now, busy_until_);
  sim::Cycle latency;
  if (IsRowOpen(row)) {
    latency = params_->row_hit_latency;
    ++row_hits_;
  } else {
    latency = params_->row_miss_latency;
    ++row_misses_;
    open_row_ = static_cast<std::int64_t>(row);
  }
  busy_until_ = start + latency + params_->data_beat;
  return start + latency;
}

void DramBank::Reset() {
  open_row_ = -1;
  busy_until_ = 0;
  row_hits_ = row_misses_ = 0;
}

}  // namespace ndc::mem
