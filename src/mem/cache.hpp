#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace ndc::mem {

/// Geometry/timing of one cache (L1 or one L2 bank). Table 1 defaults are in
/// arch/config.hpp.
struct CacheParams {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint64_t line_bytes = 64;
  std::uint32_t ways = 2;
  sim::Cycle access_latency = 2;
};

/// A set-associative, true-LRU cache directory (tags only — the simulator
/// tracks presence and timing, not data values).
class Cache {
 public:
  explicit Cache(CacheParams params);

  const CacheParams& params() const { return params_; }
  std::uint64_t num_sets() const { return num_sets_; }

  /// Looks up `addr`. On a hit, updates LRU and returns true.
  bool Access(sim::Addr addr);

  /// True if the line holding `addr` is present. Does NOT touch LRU (used by
  /// NDC residency probes, which must not perturb replacement).
  bool Contains(sim::Addr addr) const;

  /// Installs the line holding `addr` (no-op if present, but refreshes LRU).
  /// Returns the evicted line-aligned address, if any line was displaced.
  std::optional<sim::Addr> Fill(sim::Addr addr);

  /// Removes the line holding `addr` if present.
  void Invalidate(sim::Addr addr);

  /// Drops all lines (between benchmark repetitions).
  void Clear();

  sim::Addr LineAlign(sim::Addr addr) const { return addr & ~(params_.line_bytes - 1); }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double MissRate() const {
    std::uint64_t t = hits_ + misses_;
    return t == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(t);
  }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  struct Way {
    sim::Addr tag = 0;
    bool valid = false;
    std::uint64_t lru = 0;  // larger == more recently used
  };

  std::uint64_t SetIndex(sim::Addr addr) const {
    return (addr / params_.line_bytes) % num_sets_;
  }
  sim::Addr Tag(sim::Addr addr) const { return addr / params_.line_bytes / num_sets_; }

  CacheParams params_;
  std::uint64_t num_sets_;
  std::vector<Way> ways_;  // num_sets_ * params_.ways, row-major by set
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ndc::mem
