#pragma once

#include <cstdint>

#include "sim/types.hpp"

namespace ndc::mem {

/// Static NUCA / memory-channel address mapping (Section 2):
/// - each cache line has a fixed home L2 bank (line-interleaved across nodes)
/// - each 4 KB page has a fixed memory controller (page-interleaved, Table 1)
/// - within a controller, rows interleave across DRAM banks.
struct AddressMap {
  std::uint64_t l2_line_bytes = 256;      ///< L2 line size (Table 1)
  int num_nodes = 25;                     ///< L2 banks == nodes
  std::uint64_t mc_interleave_bytes = 4096;  ///< page-size interleave
  int num_mcs = 4;
  std::uint64_t row_bytes = 4096;         ///< DRAM row-buffer size
  int banks_per_mc = 16;                  ///< 4 banks/device x 4 devices

  /// Home L2 bank (node id) of the line containing `addr`.
  sim::NodeId HomeBank(sim::Addr addr) const {
    return static_cast<sim::NodeId>((addr / l2_line_bytes) % static_cast<std::uint64_t>(num_nodes));
  }

  /// Memory controller owning `addr`.
  sim::McId Mc(sim::Addr addr) const {
    return static_cast<sim::McId>((addr / mc_interleave_bytes) % static_cast<std::uint64_t>(num_mcs));
  }

  /// DRAM bank index within the owning controller.
  int DramBank(sim::Addr addr) const {
    return static_cast<int>((addr / (mc_interleave_bytes * static_cast<std::uint64_t>(num_mcs))) %
                            static_cast<std::uint64_t>(banks_per_mc));
  }

  /// DRAM row within the bank.
  std::uint64_t DramRow(sim::Addr addr) const {
    std::uint64_t chunk = addr / (mc_interleave_bytes * static_cast<std::uint64_t>(num_mcs));
    return chunk / static_cast<std::uint64_t>(banks_per_mc);
  }
};

}  // namespace ndc::mem
