#include "mem/cache.hpp"

#include <cassert>

namespace ndc::mem {

Cache::Cache(CacheParams params) : params_(params) {
  assert(params_.line_bytes > 0 && (params_.line_bytes & (params_.line_bytes - 1)) == 0 &&
         "line size must be a power of two");
  assert(params_.ways > 0);
  std::uint64_t lines = params_.size_bytes / params_.line_bytes;
  assert(lines >= params_.ways);
  num_sets_ = lines / params_.ways;
  ways_.assign(num_sets_ * params_.ways, Way{});
}

bool Cache::Access(sim::Addr addr) {
  std::uint64_t set = SetIndex(addr);
  sim::Addr tag = Tag(addr);
  Way* base = &ways_[set * params_.ways];
  for (std::uint32_t w = 0; w < params_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = ++tick_;
      ++hits_;
      return true;
    }
  }
  ++misses_;
  return false;
}

bool Cache::Contains(sim::Addr addr) const {
  std::uint64_t set = SetIndex(addr);
  sim::Addr tag = Tag(addr);
  const Way* base = &ways_[set * params_.ways];
  for (std::uint32_t w = 0; w < params_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

std::optional<sim::Addr> Cache::Fill(sim::Addr addr) {
  std::uint64_t set = SetIndex(addr);
  sim::Addr tag = Tag(addr);
  Way* base = &ways_[set * params_.ways];
  // Already present: refresh.
  for (std::uint32_t w = 0; w < params_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = ++tick_;
      return std::nullopt;
    }
  }
  // Free way?
  for (std::uint32_t w = 0; w < params_.ways; ++w) {
    if (!base[w].valid) {
      base[w] = Way{tag, true, ++tick_};
      return std::nullopt;
    }
  }
  // Evict LRU.
  std::uint32_t victim = 0;
  for (std::uint32_t w = 1; w < params_.ways; ++w) {
    if (base[w].lru < base[victim].lru) victim = w;
  }
  sim::Addr evicted = (base[victim].tag * num_sets_ + set) * params_.line_bytes;
  base[victim] = Way{tag, true, ++tick_};
  return evicted;
}

void Cache::Invalidate(sim::Addr addr) {
  std::uint64_t set = SetIndex(addr);
  sim::Addr tag = Tag(addr);
  Way* base = &ways_[set * params_.ways];
  for (std::uint32_t w = 0; w < params_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].valid = false;
      return;
    }
  }
}

void Cache::Clear() {
  for (Way& w : ways_) w = Way{};
  tick_ = 0;
}

}  // namespace ndc::mem
