#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "mem/address_map.hpp"
#include "mem/dram.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "obs/sampler.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace ndc::mem {

/// What a fault hook tells the controller about a bank it is about to
/// schedule onto. Produced by src/fault's injector; the controller itself is
/// fault-agnostic and only follows the instruction.
struct BankFault {
  enum class Effect : std::uint8_t {
    kNone = 0,
    kStall,  ///< issue nothing to this bank; re-check at `stall_until`
    kNack,   ///< reject the FR-FCFS pick; re-enqueue it after `nack_backoff`
  };
  Effect effect = Effect::kNone;
  sim::Cycle stall_until = 0;    ///< wake cycle when effect == kStall
  sim::Cycle nack_backoff = 0;   ///< re-enqueue delay when effect == kNack (> 0)
};

/// A memory controller with an FR-FCFS (first-ready, first-come-first-serve)
/// transaction queue over a set of DRAM banks (Table 1: FR-FCFS scheduling,
/// 4 KB interleaving).
///
/// FR-FCFS: when a bank frees up, the oldest request that hits the currently
/// open row of its bank is scheduled first; if no queued request is a row
/// hit, the oldest request overall is scheduled.
///
/// Requests are kept in per-bank FIFO deques (a request only ever competes
/// with requests for its own bank, so per-bank order is all FR-FCFS needs),
/// and pending read addresses are counted in a hash index, making the
/// FR-FCFS pick O(that bank's queue) and HasPendingAddr O(1) instead of
/// full-queue scans.
class MemCtrl {
 public:
  /// Completion callback: (request tag, data-ready cycle).
  using DoneFn = std::function<void(std::uint64_t, sim::Cycle)>;
  /// Observation hooks for the NDC engine / recorder.
  using QueueHook = std::function<void(std::uint64_t tag, sim::Addr, sim::Cycle)>;
  /// Fault hooks: bank state when scheduling, extra admission delay under
  /// queue pressure. The controller id is bound by the installer.
  using BankFaultFn = std::function<BankFault(int bank, sim::Cycle)>;
  using PressureFn = std::function<sim::Cycle(sim::Cycle)>;

  /// Tag carried by every write request. Writes have no tag of their own
  /// (fire-and-forget), and must never alias tag 0, which identifies
  /// untraced *reads* in the hook stream; reads assert they never use it.
  static constexpr std::uint64_t kWriteSentinelTag =
      std::numeric_limits<std::uint64_t>::max();

  MemCtrl(sim::McId id, const AddressMap& amap, const DramParams& dram_params,
          sim::EventQueue& eq);

  sim::McId id() const { return id_; }

  /// Rebinds the controller onto another event queue (the machine points
  /// each MC at its home shard's queue before a sharded run). Must be
  /// called while the queue is empty.
  void RebindQueue(sim::EventQueue* eq) { eq_ = eq; }

  /// Enqueues a read of `addr`; `done` fires when the data is at the
  /// controller (before any NoC response hop). `obs_token` identifies the
  /// originating traced request (0 = untraced). `tag` must not be
  /// kWriteSentinelTag.
  void EnqueueRead(std::uint64_t tag, sim::Addr addr, DoneFn done,
                   std::uint64_t obs_token = 0);

  /// Enqueues a write (fire-and-forget; occupies the bank but has no
  /// completion consumer). Appears in the enqueue-hook stream with
  /// kWriteSentinelTag so observers can tell it apart from untraced reads.
  void EnqueueWrite(sim::Addr addr);

  /// Number of requests currently queued (not yet issued to a bank).
  std::size_t queue_depth() const { return queued_; }

  /// True if a *read* of `addr` is currently sitting in the queue or being
  /// serviced (used by NDC memory-queue meeting checks). Queued writes do
  /// not count: a write cannot satisfy an offloaded read's meeting. O(1).
  bool HasPendingAddr(sim::Addr addr) const {
    return pending_read_addrs_.find(addr) != pending_read_addrs_.end();
  }

  /// Hook invoked when a request enters the queue (reads and writes; writes
  /// carry kWriteSentinelTag).
  void set_enqueue_hook(QueueHook h) { on_enqueue_ = std::move(h); }
  /// Hook invoked when a read's data is ready at the controller.
  void set_ready_hook(QueueHook h) { on_ready_ = std::move(h); }

  /// Installs fault hooks. Never installed for fault-free runs: the
  /// hook-less scheduling/admission paths are byte-identical to the
  /// pre-fault controller.
  void set_bank_fault_hook(BankFaultFn h) { bank_fault_ = std::move(h); }
  void set_pressure_hook(PressureFn h) { pressure_ = std::move(h); }

  /// Conservation accessors (mc_reads == mc_reads_done at end of run;
  /// mc_nacks == mc_nack_retries). `reads_done_count` is deliberately never
  /// a StatSet key: it is always touched, and goldens must not change.
  std::uint64_t reads_count() const { return reads_.v; }
  std::uint64_t reads_done_count() const { return reads_done_; }
  std::uint64_t nacks_count() const { return nacks_.v; }
  std::uint64_t nack_retries_count() const { return nack_retries_.v; }

  /// Traced reads stamp FR-FCFS issue and DRAM-ready on `tracer` (may be null).
  void set_request_tracer(obs::RequestTracer* tracer) { tracer_ = tracer; }

  /// Phase-window sampler for access/queue-wait deltas (may be null).
  /// Passive: a disabled or absent sampler leaves scheduling untouched.
  void set_sampler(obs::WindowSampler* sampler) { sampler_ = sampler; }

  /// Registers this controller's counters ("mc.<id>/reads", ...), its
  /// queue-wait histogram, and the queue-wait running total under `reg`;
  /// handles are pre-resolved.
  void RegisterMetrics(obs::Registry& reg);

  const DramBank& bank(int i) const { return banks_[static_cast<std::size_t>(i)]; }
  int num_banks() const { return static_cast<int>(banks_.size()); }

  /// Counter view, materialized lazily from raw per-event counters; key set
  /// and values match the historical eager StatSet exactly.
  sim::StatSet& stats() {
    MaterializeStats();
    return stats_;
  }
  const sim::StatSet& stats() const {
    MaterializeStats();
    return stats_;
  }

  void Reset();

 private:
  struct Request {
    std::uint64_t tag = 0;
    sim::Addr addr = 0;
    int bank = 0;
    std::uint64_t row = 0;
    bool is_write = false;
    sim::Cycle enqueued_at = 0;
    DoneFn done;
    std::uint64_t obs_token = 0;
  };

  void Admit(Request r);
  void Enqueue(Request r);
  void TrySchedule();
  void IssueTo(int bank_idx, Request req);
  void Complete(int bank_idx);
  void MaterializeStats() const;
  void DropPendingRead(sim::Addr addr);

  sim::McId id_;
  const AddressMap* amap_;
  sim::EventQueue* eq_;  ///< home queue; a shard queue under sharded runs
  std::vector<DramBank> banks_;
  std::vector<bool> bank_in_flight_;
  std::vector<std::deque<Request>> bank_queues_;  ///< FIFO per bank
  std::vector<Request> in_service_;               ///< one slot per bank
  std::size_t queued_ = 0;                        ///< total across bank_queues_
  /// addr -> number of pending reads (queued or in service) of that addr.
  std::unordered_map<sim::Addr, int> pending_read_addrs_;
  QueueHook on_enqueue_;
  QueueHook on_ready_;
  BankFaultFn bank_fault_;
  PressureFn pressure_;
  /// Latest cycle a stalled bank already has a wake scheduled for (avoids
  /// piling up one wake event per scheduling attempt during a stall).
  std::vector<sim::Cycle> bank_wake_until_;
  obs::RequestTracer* tracer_ = nullptr;
  obs::WindowSampler* sampler_ = nullptr;
  obs::Counter* m_reads_ = nullptr;
  obs::Counter* m_row_hits_ = nullptr;
  obs::Histogram* m_queue_wait_ = nullptr;
  obs::Counter* m_queue_wait_total_ = nullptr;
  sim::RawCounter reads_, writes_, row_hits_, row_misses_, queue_wait_cycles_;
  // Fault counters: touched only when a fault hook fires, so their StatSet
  // keys never appear in fault-free runs (goldens frozen).
  sim::RawCounter nacks_, nack_retries_, bank_stall_events_, pressure_events_,
      pressure_delay_cycles_;
  std::uint64_t reads_done_ = 0;  ///< accessor-only; never a StatSet key
  mutable sim::StatSet stats_;
};

}  // namespace ndc::mem
