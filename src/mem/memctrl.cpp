#include "mem/memctrl.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace ndc::mem {

MemCtrl::MemCtrl(sim::McId id, const AddressMap& amap, const DramParams& dram_params,
                 sim::EventQueue& eq)
    : id_(id), amap_(&amap), eq_(eq) {
  banks_.reserve(static_cast<std::size_t>(amap.banks_per_mc));
  for (int i = 0; i < amap.banks_per_mc; ++i) banks_.emplace_back(dram_params);
  bank_in_flight_.assign(banks_.size(), false);
}

void MemCtrl::RegisterMetrics(obs::Registry& reg) {
  if constexpr (!obs::kObsEnabled) return;
  const std::string prefix = "mc." + std::to_string(id_) + "/";
  m_reads_ = reg.counter(prefix + "reads");
  m_row_hits_ = reg.counter(prefix + "row_hits");
  m_queue_wait_ = reg.histogram(prefix + "queue_wait_cycles");
}

void MemCtrl::EnqueueRead(std::uint64_t tag, sim::Addr addr, DoneFn done,
                          std::uint64_t obs_token) {
  Request r;
  r.tag = tag;
  r.addr = addr;
  r.bank = amap_->DramBank(addr);
  r.row = amap_->DramRow(addr);
  r.is_write = false;
  r.enqueued_at = eq_.now();
  r.done = std::move(done);
  r.obs_token = obs_token;
  reads_.Add();
  if constexpr (obs::kObsEnabled) {
    if (m_reads_ != nullptr) m_reads_->Add();
  }
  if (on_enqueue_) on_enqueue_(tag, addr, eq_.now());
  queue_.push_back(std::move(r));
  TrySchedule();
}

void MemCtrl::EnqueueWrite(sim::Addr addr) {
  Request r;
  r.addr = addr;
  r.bank = amap_->DramBank(addr);
  r.row = amap_->DramRow(addr);
  r.is_write = true;
  r.enqueued_at = eq_.now();
  writes_.Add();
  queue_.push_back(std::move(r));
  TrySchedule();
}

bool MemCtrl::HasPendingAddr(sim::Addr addr) const {
  for (const Request& r : queue_) {
    if (r.addr == addr) return true;
  }
  return std::find(in_service_addrs_.begin(), in_service_addrs_.end(), addr) !=
         in_service_addrs_.end();
}

void MemCtrl::TrySchedule() {
  // For each idle bank, pick per FR-FCFS: oldest row-hit request for that
  // bank, else the oldest request for that bank.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t b = 0; b < banks_.size(); ++b) {
      if (bank_in_flight_[b]) continue;
      std::ptrdiff_t pick = -1;
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(queue_.size()); ++i) {
        const Request& r = queue_[static_cast<std::size_t>(i)];
        if (r.bank != static_cast<int>(b)) continue;
        if (banks_[b].IsRowOpen(r.row)) {
          pick = i;  // first (oldest) row hit wins
          break;
        }
        if (pick < 0) pick = i;  // remember oldest as fallback
      }
      if (pick < 0) continue;
      Request req = std::move(queue_[static_cast<std::size_t>(pick)]);
      queue_.erase(queue_.begin() + pick);
      IssueTo(static_cast<int>(b), std::move(req));
      progressed = true;
    }
  }
}

void MemCtrl::IssueTo(int bank_idx, Request req) {
  auto b = static_cast<std::size_t>(bank_idx);
  bank_in_flight_[b] = true;
  bool row_hit = banks_[b].IsRowOpen(req.row);
  (row_hit ? row_hits_ : row_misses_).Add();
  sim::Cycle done_at = banks_[b].Access(eq_.now(), req.row);
  queue_wait_cycles_.Add(eq_.now() - req.enqueued_at);
  if constexpr (obs::kObsEnabled) {
    if (m_row_hits_ != nullptr && row_hit) m_row_hits_->Add();
    if (m_queue_wait_ != nullptr) m_queue_wait_->Add(eq_.now() - req.enqueued_at);
    if (tracer_ != nullptr && req.obs_token != 0) {
      tracer_->Stamp(req.obs_token, obs::Stage::kMcIssue, eq_.now());
      tracer_->NoteRowHit(req.obs_token, row_hit);
    }
  }
  in_service_addrs_.push_back(req.addr);
  eq_.ScheduleAt(done_at, [this, b, req = std::move(req)]() {
    auto it = std::find(in_service_addrs_.begin(), in_service_addrs_.end(), req.addr);
    if (it != in_service_addrs_.end()) in_service_addrs_.erase(it);
    bank_in_flight_[b] = false;
    if (!req.is_write) {
      if constexpr (obs::kObsEnabled) {
        if (tracer_ != nullptr && req.obs_token != 0) {
          tracer_->Stamp(req.obs_token, obs::Stage::kDramReady, eq_.now());
        }
      }
      if (on_ready_) on_ready_(req.tag, req.addr, eq_.now());
      if (req.done) req.done(req.tag, eq_.now());
    }
    TrySchedule();
  });
}

void MemCtrl::MaterializeStats() const {
  stats_.Clear();
  reads_.MaterializeInto(stats_, "mc.reads");
  writes_.MaterializeInto(stats_, "mc.writes");
  row_hits_.MaterializeInto(stats_, "mc.row_hits");
  row_misses_.MaterializeInto(stats_, "mc.row_misses");
  queue_wait_cycles_.MaterializeInto(stats_, "mc.queue_wait_cycles");
}

void MemCtrl::Reset() {
  for (DramBank& b : banks_) b.Reset();
  std::fill(bank_in_flight_.begin(), bank_in_flight_.end(), false);
  queue_.clear();
  in_service_addrs_.clear();
  reads_.Reset();
  writes_.Reset();
  row_hits_.Reset();
  row_misses_.Reset();
  queue_wait_cycles_.Reset();
  stats_.Clear();
}

}  // namespace ndc::mem
