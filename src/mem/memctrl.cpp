#include "mem/memctrl.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace ndc::mem {

MemCtrl::MemCtrl(sim::McId id, const AddressMap& amap, const DramParams& dram_params,
                 sim::EventQueue& eq)
    : id_(id), amap_(&amap), eq_(&eq) {
  banks_.reserve(static_cast<std::size_t>(amap.banks_per_mc));
  for (int i = 0; i < amap.banks_per_mc; ++i) banks_.emplace_back(dram_params);
  bank_in_flight_.assign(banks_.size(), false);
  bank_queues_.resize(banks_.size());
  in_service_.resize(banks_.size());
  bank_wake_until_.assign(banks_.size(), 0);
}

void MemCtrl::RegisterMetrics(obs::Registry& reg) {
  if constexpr (!obs::kObsEnabled) return;
  const std::string prefix = "mc." + std::to_string(id_) + "/";
  m_reads_ = reg.counter(prefix + "reads");
  m_row_hits_ = reg.counter(prefix + "row_hits");
  m_queue_wait_ = reg.histogram(prefix + "queue_wait_cycles");
  m_queue_wait_total_ = reg.counter(prefix + "queue_wait_total");
}

void MemCtrl::EnqueueRead(std::uint64_t tag, sim::Addr addr, DoneFn done,
                          std::uint64_t obs_token) {
  assert(tag != kWriteSentinelTag && "kWriteSentinelTag is reserved for writes");
  Request r;
  r.tag = tag;
  r.addr = addr;
  r.bank = amap_->DramBank(addr);
  r.row = amap_->DramRow(addr);
  r.is_write = false;
  r.enqueued_at = eq_->now();
  r.done = std::move(done);
  r.obs_token = obs_token;
  reads_.Add();
  if constexpr (obs::kObsEnabled) {
    if (m_reads_ != nullptr) m_reads_->Add();
  }
  ++pending_read_addrs_[addr];
  if (on_enqueue_) on_enqueue_(tag, addr, eq_->now());
  Admit(std::move(r));
}

void MemCtrl::EnqueueWrite(sim::Addr addr) {
  Request r;
  r.tag = kWriteSentinelTag;
  r.addr = addr;
  r.bank = amap_->DramBank(addr);
  r.row = amap_->DramRow(addr);
  r.is_write = true;
  r.enqueued_at = eq_->now();
  writes_.Add();
  if (on_enqueue_) on_enqueue_(kWriteSentinelTag, addr, eq_->now());
  Admit(std::move(r));
}

void MemCtrl::Admit(Request r) {
  // Queue-pressure faults delay the request's entry into the transaction
  // queue; the request is already visible upstream (pending-read index and
  // enqueue hooks fired at arrival), so NDC meeting checks are unaffected.
  if (pressure_) {
    sim::Cycle extra = pressure_(eq_->now());
    if (extra > 0) {
      pressure_events_.Add();
      pressure_delay_cycles_.Add(extra);
      eq_->ScheduleAfter(extra, [this, r = std::move(r)]() mutable {
        Enqueue(std::move(r));
      });
      return;
    }
  }
  Enqueue(std::move(r));
}

void MemCtrl::Enqueue(Request r) {
  bank_queues_[static_cast<std::size_t>(r.bank)].push_back(std::move(r));
  ++queued_;
  TrySchedule();
}

void MemCtrl::DropPendingRead(sim::Addr addr) {
  auto it = pending_read_addrs_.find(addr);
  assert(it != pending_read_addrs_.end());
  if (--it->second == 0) pending_read_addrs_.erase(it);
}

void MemCtrl::TrySchedule() {
  // For each idle bank, pick per FR-FCFS: oldest row-hit request for that
  // bank, else the oldest request for that bank. One pass suffices: issuing
  // never frees a bank, so a second pass could not make more progress.
  for (std::size_t b = 0; b < banks_.size(); ++b) {
    if (bank_in_flight_[b]) continue;
    std::deque<Request>& q = bank_queues_[b];
    if (q.empty()) continue;
    BankFault::Effect effect = BankFault::Effect::kNone;
    sim::Cycle nack_backoff = 0;
    if (bank_fault_) {
      BankFault fault = bank_fault_(static_cast<int>(b), eq_->now());
      effect = fault.effect;
      if (effect == BankFault::Effect::kStall) {
        // The bank issues nothing until the stall window ends; schedule one
        // wake at the window end (not one per attempt) to resume it.
        bank_stall_events_.Add();
        if (bank_wake_until_[b] < fault.stall_until) {
          bank_wake_until_[b] = fault.stall_until;
          eq_->ScheduleAt(fault.stall_until, [this] { TrySchedule(); });
        }
        continue;
      }
      nack_backoff = fault.nack_backoff;
    }
    std::size_t pick = 0;  // oldest overall is the fallback
    for (std::size_t i = 0; i < q.size(); ++i) {
      if (banks_[b].IsRowOpen(q[i].row)) {
        pick = i;  // first (oldest) row hit wins
        break;
      }
    }
    Request req = std::move(q[pick]);
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
    --queued_;
    if (effect == BankFault::Effect::kNack) {
      // The bank rejects the command; the request re-enters the queue after
      // the backoff with its original arrival time (its queue wait includes
      // the NACK detour) and without re-firing hooks or the pending-read
      // index, which both already saw it arrive. Nothing is lost: every
      // NACK schedules exactly one retry.
      assert(nack_backoff > 0 && "a NACKed request needs a positive backoff");
      nacks_.Add();
      eq_->ScheduleAfter(nack_backoff, [this, req = std::move(req)]() mutable {
        nack_retries_.Add();
        Enqueue(std::move(req));
      });
      continue;
    }
    IssueTo(static_cast<int>(b), std::move(req));
  }
}

void MemCtrl::IssueTo(int bank_idx, Request req) {
  auto b = static_cast<std::size_t>(bank_idx);
  bank_in_flight_[b] = true;
  bool row_hit = banks_[b].IsRowOpen(req.row);
  (row_hit ? row_hits_ : row_misses_).Add();
  sim::Cycle done_at = banks_[b].Access(eq_->now(), req.row);
  queue_wait_cycles_.Add(eq_->now() - req.enqueued_at);
  if constexpr (obs::kObsEnabled) {
    if (m_row_hits_ != nullptr && row_hit) m_row_hits_->Add();
    if (m_queue_wait_ != nullptr) m_queue_wait_->Add(eq_->now() - req.enqueued_at);
    if (m_queue_wait_total_ != nullptr) {
      m_queue_wait_total_->Add(eq_->now() - req.enqueued_at);
    }
    if (sampler_ != nullptr) {
      sampler_->Note(obs::Signal::kDramAccess, eq_->now(), 1);
      sampler_->Note(obs::Signal::kMcQueueWait, eq_->now(), eq_->now() - req.enqueued_at);
    }
    if (tracer_ != nullptr && req.obs_token != 0) {
      tracer_->Stamp(req.obs_token, obs::Stage::kMcIssue, eq_->now());
      tracer_->NoteRowHit(req.obs_token, row_hit);
    }
  }
  in_service_[b] = std::move(req);
  eq_->ScheduleAt(done_at, [this, bank_idx] { Complete(bank_idx); });
}

void MemCtrl::Complete(int bank_idx) {
  auto b = static_cast<std::size_t>(bank_idx);
  // Move the request out and free the bank first: the done callback may
  // re-enter EnqueueRead and issue straight to this bank's slot.
  Request req = std::move(in_service_[b]);
  bank_in_flight_[b] = false;
  if (!req.is_write) {
    DropPendingRead(req.addr);
    assert(req.tag != kWriteSentinelTag && "read completed with the write sentinel tag");
    if constexpr (obs::kObsEnabled) {
      if (tracer_ != nullptr && req.obs_token != 0) {
        tracer_->Stamp(req.obs_token, obs::Stage::kDramReady, eq_->now());
      }
    }
    ++reads_done_;
    if (on_ready_) on_ready_(req.tag, req.addr, eq_->now());
    if (req.done) req.done(req.tag, eq_->now());
  } else {
    assert(req.tag == kWriteSentinelTag && "write completed without the sentinel tag");
  }
  TrySchedule();
}

void MemCtrl::MaterializeStats() const {
  stats_.Clear();
  reads_.MaterializeInto(stats_, "mc.reads");
  writes_.MaterializeInto(stats_, "mc.writes");
  row_hits_.MaterializeInto(stats_, "mc.row_hits");
  row_misses_.MaterializeInto(stats_, "mc.row_misses");
  queue_wait_cycles_.MaterializeInto(stats_, "mc.queue_wait_cycles");
  nacks_.MaterializeInto(stats_, "mc.nacks");
  nack_retries_.MaterializeInto(stats_, "mc.nack_retries");
  bank_stall_events_.MaterializeInto(stats_, "mc.bank_stall_events");
  pressure_events_.MaterializeInto(stats_, "mc.pressure_events");
  pressure_delay_cycles_.MaterializeInto(stats_, "mc.pressure_delay_cycles");
}

void MemCtrl::Reset() {
  for (DramBank& b : banks_) b.Reset();
  std::fill(bank_in_flight_.begin(), bank_in_flight_.end(), false);
  for (auto& q : bank_queues_) q.clear();
  for (Request& r : in_service_) r = Request{};
  queued_ = 0;
  pending_read_addrs_.clear();
  std::fill(bank_wake_until_.begin(), bank_wake_until_.end(), 0);
  reads_.Reset();
  writes_.Reset();
  row_hits_.Reset();
  row_misses_.Reset();
  queue_wait_cycles_.Reset();
  nacks_.Reset();
  nack_retries_.Reset();
  bank_stall_events_.Reset();
  pressure_events_.Reset();
  pressure_delay_cycles_.Reset();
  reads_done_ = 0;
  stats_.Clear();
}

}  // namespace ndc::mem
