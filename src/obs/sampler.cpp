#include "obs/sampler.hpp"

#include <algorithm>

namespace ndc::obs {

const char* SignalName(Signal s) {
  switch (s) {
    case Signal::kDramAccess: return "dram_access";
    case Signal::kMcQueueWait: return "mc_queue_wait";
    case Signal::kNocBusy: return "noc_busy";
    case Signal::kSyncStall: return "sync_stall";
    case Signal::kNdcBusy: return "ndc_busy";
  }
  return "?";
}

void WindowSampler::NoteSlow(Signal s, sim::Cycle now, std::uint64_t delta) {
  std::size_t w = static_cast<std::size_t>(now / window_cycles_);
  if (w >= kMaxWindows) w = kMaxWindows - 1;
  auto& v = series_[static_cast<std::size_t>(s)];
  if (w >= v.size()) v.resize(w + 1, 0);
  v[w] += delta;
}

std::size_t WindowSampler::num_windows() const {
  std::size_t n = 0;
  for (const auto& v : series_) n = std::max(n, v.size());
  return n;
}

std::uint64_t WindowSampler::At(Signal s, std::size_t w) const {
  const auto& v = series_[static_cast<std::size_t>(s)];
  return w < v.size() ? v[w] : 0;
}

std::uint64_t WindowSampler::Total(Signal s) const {
  std::uint64_t t = 0;
  for (std::uint64_t d : series_[static_cast<std::size_t>(s)]) t += d;
  return t;
}

}  // namespace ndc::obs
