#pragma once

// Hierarchical metrics registry. Components register typed metrics once, at
// construction, under a slash-separated component path
// ("noc.link.7/traversals", "mc.2/row_hits") and get back a stable handle
// pointer; the hot loop bumps through the handle — never a string hash or
// map lookup. Export walks the (sorted) path map, so dumps are
// deterministic regardless of registration order.
//
// This complements sim::StatSet rather than replacing it wholesale: StatSet
// remains the flat merged-counter surface every figure renders from (its
// key set and values are bit-frozen by the goldens), while the registry
// carries the per-component-instance breakdowns (per-link, per-MC) that a
// flat namespace collapses.
//
// Not thread-safe: one Registry belongs to one simulated Machine, and a
// Machine runs on one thread (the sweep harness gives each cell its own).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/enabled.hpp"
#include "sim/stats.hpp"

namespace ndc::obs {

class Counter {
 public:
  void Add(std::uint64_t d = 1) { v_ += d; }
  void Set(std::uint64_t v) { v_ = v; }
  std::uint64_t value() const { return v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-value gauge that also tracks the high-water mark.
class Gauge {
 public:
  void Set(std::int64_t v) {
    v_ = v;
    if (v > max_) max_ = v;
  }
  std::int64_t value() const { return v_; }
  std::int64_t max() const { return max_; }

 private:
  std::int64_t v_ = 0;
  std::int64_t max_ = 0;
};

class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> edges) : h_(std::move(edges)) {}
  void Add(std::uint64_t v, std::uint64_t w = 1) { h_.Add(v, w); }
  const sim::BucketHistogram& hist() const { return h_; }

  /// Bucketed percentile: the smallest edge e with >= p% of samples <= e.
  /// The histogram keeps no raw samples, so the answer is an edge, never an
  /// interpolated value. An empty histogram reports 0; when the p-th sample
  /// sits in the overflow bucket (above every edge) the report is
  /// edges.back() + 1 — the "500+" marker, strictly above the last edge.
  std::uint64_t Percentile(double p) const;

  /// Adds another histogram's counts into this one. The bucket edges must
  /// match (same contract as sim::BucketHistogram::MergeFrom).
  void MergeFrom(const Histogram& other) { h_.MergeFrom(other.h_); }

 private:
  sim::BucketHistogram h_;
};

class Registry {
 public:
  /// Get-or-create. The returned pointer is stable for the Registry's
  /// lifetime. A path already registered as a different metric kind returns
  /// nullptr (caller bug; surfaced rather than aliased).
  Counter* counter(const std::string& path);
  Gauge* gauge(const std::string& path);
  Histogram* histogram(const std::string& path,
                       std::vector<std::uint64_t> edges = {1, 10, 20, 50, 100, 500});

  std::size_t size() const { return metrics_.size(); }

  /// Sorted "path value" lines (histograms as "path [c0 c1 ... cN]").
  std::string ToText() const;

  /// Counter and gauge values keyed by path, sorted (map order).
  std::map<std::string, std::uint64_t> ScalarSnapshot() const;

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  std::map<std::string, Entry> metrics_;
};

}  // namespace ndc::obs
