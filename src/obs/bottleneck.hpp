#pragma once

// Bottleneck taxonomy: utilization attribution + a DAMOV-style classifier.
//
// Attribution derives, from a run's touched-only counters plus the machine
// shape, a small vector of resource utilizations — DRAM data-bus busy
// fraction, per-MC queue occupancy (Little's law), NoC link utilization,
// core stall breakdown (mem vs sync vs compute), NDC engine busy fraction.
// The classifier maps that vector to one stable label through a fixed-order
// threshold tree, so the same counters always produce the same label, and
// the report carries both the thresholds and the full signal vector — a
// label is never published without the evidence it was derived from.
//
// The raw integer inputs are kept verbatim alongside the derived fractions
// so tests can assert, counter by counter, that a classified cell's signal
// vector reconciles with the StatSet it came from.
//
// Everything here is pure arithmetic over already-collected counters: no
// simulator state, no clock, no allocation on the hot path. See
// DESIGN.md §9 for the signal definitions and the threshold table.

#include <cstdint>
#include <string>

#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace ndc::obs {

/// Stable bottleneck labels. Classifier precedence (see Classify):
/// dram-bw, sync, dram-latency, noc, compute, balanced.
enum class Label : std::uint8_t {
  kDramBw = 0,   ///< DRAM data bus saturated
  kDramLatency,  ///< long MC queues, bus not saturated
  kNoc,          ///< mesh links the constraint
  kSync,         ///< cores stalled on sync grants
  kCompute,      ///< ALUs (host or near-data) dominate
  kBalanced,     ///< no single resource past its threshold
};
inline constexpr int kNumLabels = 6;

const char* LabelName(Label l);  // "dram-bw", "dram-latency", ...

/// Machine-shape inputs the fractions are normalized by. Filled from the
/// ArchConfig by whoever ran the machine (harness cell, ndc-classify); kept
/// as plain integers so obs stays independent of src/arch.
struct MachineShape {
  std::uint64_t num_cores = 0;
  std::uint64_t num_mcs = 0;
  std::uint64_t num_links = 0;        ///< directed mesh links
  std::uint64_t dram_data_beat = 0;   ///< data-bus occupancy per access
  std::uint64_t compute_latency = 0;  ///< per-op ALU cost
};

/// The full signal vector: raw touched-only counter inputs exactly as read
/// from the StatSet, plus the fractions derived from them.
struct UtilizationSignals {
  // --- raw inputs (StatSet values, 0 when the key was never touched) ---
  std::uint64_t makespan = 0;
  std::uint64_t mc_reads = 0;
  std::uint64_t mc_writes = 0;
  std::uint64_t mc_queue_wait_cycles = 0;
  std::uint64_t mc_row_hits = 0;
  std::uint64_t mc_row_misses = 0;
  std::uint64_t noc_link_busy_cycles = 0;
  std::uint64_t noc_contention_cycles = 0;
  std::uint64_t sync_stall_cycles = 0;
  std::uint64_t ndc_success = 0;
  std::uint64_t core_stall_mem = 0;     ///< present only when stall tracking on
  std::uint64_t core_stall_sync = 0;    ///< present only when stall tracking on
  std::uint64_t core_busy_compute = 0;  ///< present only when stall tracking on
  MachineShape shape;

  // --- derived utilizations ---
  double dram_bw_frac = 0.0;      ///< accesses*beat / (mcs * makespan)
  double mc_queue_occ = 0.0;      ///< avg requests queued per MC (Little)
  double avg_queue_wait = 0.0;    ///< queue-wait cycles per DRAM access
  double row_miss_ratio = 0.0;    ///< row misses / (hits + misses)
  double noc_util = 0.0;          ///< link-busy / (links * makespan)
  double noc_max_link_util = 0.0; ///< hottest link (registry refinement)
  double sync_frac = 0.0;         ///< sync stall / (cores * makespan)
  double ndc_busy_frac = 0.0;     ///< success*latency / makespan
  double compute_frac = 0.0;      ///< core compute busy / (cores * makespan)
  double mem_stall_frac = 0.0;    ///< core mem stall / (cores * makespan)
};

/// Classifier thresholds. Defaults are the DESIGN.md §9 table; every report
/// serializes the thresholds it classified under.
struct ClassifierThresholds {
  double dram_bw = 0.50;        ///< dram_bw_frac at/above => dram-bw
  double dram_queue_wait = 25.0;///< avg_queue_wait at/above => dram-latency
  double noc = 0.35;            ///< max(noc_util, noc_max_link_util) => noc
  double sync = 0.25;           ///< sync_frac at/above => sync
  double compute = 0.40;        ///< compute_frac + ndc_busy_frac => compute
};

/// Reads the raw counters out of `st` and derives the fractions. Keys that
/// were never touched read as 0 and contribute 0 — a sync-free run simply
/// has sync_frac 0.
UtilizationSignals ComputeSignals(const sim::StatSet& st, sim::Cycle makespan,
                                  const MachineShape& shape);

/// Refines noc_max_link_util from per-link busy counters when available
/// (pass the max over "noc.link.<id>/busy_cycles" registry values).
void RefineMaxLinkBusy(UtilizationSignals& s, std::uint64_t max_link_busy_cycles);

/// Fixed-order threshold tree; deterministic for a given (signals,
/// thresholds) pair.
Label Classify(const UtilizationSignals& s, const ClassifierThresholds& t = {});

/// Byte-stable fraction rendering shared by every report surface
/// (fixed %.4f — no locale, no shortest-round-trip variance).
std::string FormatFrac(double v);

/// One-line text rendering of the signal vector (diagnostics, CLI table).
std::string SignalsToText(const UtilizationSignals& s);

}  // namespace ndc::obs
