#pragma once

// NDC decision audit log. Records every offload decision the runtime makes
// for a candidate instruction pair — why it was (or was not) offloaded, and
// how an offloaded pair ultimately resolved. The completeness contract
// (asserted by tests) is: every candidate the machine counts appears exactly
// once, and every entry ends with a terminal outcome — offloads resolve to
// success or a specific fallback reason, non-offloads resolve to
// kConventional at record time. The log is how you answer "the oracle
// offloaded 4,112 pairs; where did the other 900 candidates go?" without
// reverse-engineering counter arithmetic.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/enabled.hpp"
#include "sim/types.hpp"

namespace ndc::obs {

/// Why the runtime did / did not offload a candidate pair.
enum class DecisionKind : std::uint8_t {
  kLocalL1Skip = 0,    ///< both operands L1-resident; offload pointless
  kDeclined,           ///< policy said no (baseline / predictor negative)
  kPlanInfeasible,     ///< no legal meeting point for the operand pair
  kOpRestricted,       ///< operation not supported at the planned location
  kOffloadTableFull,   ///< core-side offload table had no free entry
  kOffload,            ///< offloaded; outcome pending until resolution
};
inline constexpr int kNumDecisionKinds = 6;

/// How an entry terminally resolved.
enum class Outcome : std::uint8_t {
  kConventional = 0,         ///< executed on-core (any non-offload kind)
  kNdcSuccess,               ///< operands met; computed near data
  kFallbackTimeout,          ///< wait window expired
  kFallbackPartnerDone,      ///< partner operand already consumed/delivered
  kFallbackServiceTableFull, ///< no service-table entry at the meeting point
  kFallbackNeverMet,         ///< run ended before the operands met
  kDegradedToHost,           ///< retry budget exhausted; ran on the host core
  kUnresolved,               ///< not yet resolved (transient; none at EndRun)
};
inline constexpr int kNumOutcomes = 8;

const char* DecisionKindName(DecisionKind k);
const char* OutcomeName(Outcome o);

struct DecisionEntry {
  std::uint64_t uid = 0;         ///< candidate pair uid (Instance::uid)
  sim::NodeId core = sim::kNoNode;
  std::uint32_t site = 0;        ///< static candidate site index
  DecisionKind kind = DecisionKind::kDeclined;
  std::int8_t planned_loc = -1;  ///< arch::Loc of the plan (-1 = none)
  sim::Cycle decided_at = 0;
  Outcome outcome = Outcome::kUnresolved;
  std::int8_t met_loc = -1;      ///< arch::Loc where operands actually met
  sim::Cycle resolved_at = 0;
  std::uint32_t retries = 0;     ///< wait-timeout retries consumed (faults)
  /// Advisory NMPO-style profiling prior: the number of feasible NDC
  /// locations the planner saw for this candidate (popcount of the
  /// feasibility mask). Audit-only — recorded, never read back by the
  /// runtime, so it can never change a decision.
  std::uint32_t prior = 0;
};

class DecisionLog {
 public:
  /// Records one candidate decision. Non-offload kinds are terminal and
  /// resolve to kConventional immediately; kOffload stays kUnresolved until
  /// Resolve(). Duplicate uids are ignored (one decision per candidate).
  /// `prior` is the advisory placement-freedom prior (0 = not computed).
  void Record(std::uint64_t uid, sim::NodeId core, std::uint32_t site, DecisionKind kind,
              std::int8_t planned_loc, sim::Cycle now, std::uint32_t prior = 0);

  /// Terminally resolves an offloaded entry. First resolution wins; later
  /// calls for the same uid are ignored (an abort can race the catch-all
  /// fallback sweep). Unknown uids are ignored.
  void Resolve(std::uint64_t uid, Outcome outcome, std::int8_t met_loc, sim::Cycle now);

  /// Notes one retry of an unresolved offload's wait window (resilience
  /// under faults). Unknown or already-resolved uids are ignored.
  void NoteRetry(std::uint64_t uid);

  /// Marks every still-unresolved offload as kFallbackNeverMet.
  void EndRun(sim::Cycle now);

  const std::vector<DecisionEntry>& entries() const { return entries_; }
  std::uint64_t kind_count(DecisionKind k) const {
    return kind_counts_[static_cast<int>(k)];
  }
  std::uint64_t outcome_count(Outcome o) const {
    return outcome_counts_[static_cast<int>(o)];
  }
  std::uint64_t unresolved() const { return outcome_count(Outcome::kUnresolved); }
  std::uint64_t total_retries() const { return total_retries_; }

  /// Human-readable decision / outcome tallies (ndc-trace stdout).
  std::string Summary() const;

  /// One JSON object per entry, newline-delimited (ndc-trace --decisions=).
  std::string ToJsonl() const;

 private:
  std::vector<DecisionEntry> entries_;
  std::map<std::uint64_t, std::size_t> by_uid_;
  std::uint64_t kind_counts_[kNumDecisionKinds] = {};
  std::uint64_t outcome_counts_[kNumOutcomes] = {};
  std::uint64_t total_retries_ = 0;
};

}  // namespace ndc::obs
