#include "obs/request_trace.hpp"

#include <algorithm>
#include <cstdio>

namespace ndc::obs {

const char* StageName(Stage s) {
  switch (s) {
    case Stage::kIssue: return "issue";
    case Stage::kL1Hit: return "l1.hit";
    case Stage::kL1Miss: return "l1.lookup";
    case Stage::kReqAtHome: return "noc.request";
    case Stage::kL2Hit: return "l2.hit";
    case Stage::kL2Miss: return "l2.miss";
    case Stage::kMcEnqueue: return "noc.to_mc";
    case Stage::kMcIssue: return "mc.queue";
    case Stage::kDramReady: return "dram.service";
    case Stage::kHomeRefill: return "noc.mc_response";
    case Stage::kDeliver: return "noc.response";
    case Stage::kNdcConsumed: return "ndc.consumed";
    case Stage::kUnfinished: return "unfinished";
  }
  return "?";
}

std::uint64_t RequestTracer::Begin(sim::NodeId core, std::uint32_t slot, sim::Addr addr,
                                   sim::Cycle now) {
  ++seen_;
  if ((seen_ - 1) % opt_.sample_period != 0) return 0;
  if (records_.size() >= opt_.max_requests) {
    ++overflowed_;
    return 0;
  }
  RequestRecord& r = records_.emplace_back();
  r.token = records_.size();  // index + 1
  r.core = core;
  r.slot = slot;
  r.addr = addr;
  r.stamps.push_back({Stage::kIssue, now});
  return r.token;
}

void RequestTracer::Stamp(std::uint64_t token, Stage stage, sim::Cycle now) {
  RequestRecord* r = Find(token);
  if (r == nullptr || r->finished) return;
  r->stamps.push_back({stage, now});
}

void RequestTracer::NoteRowHit(std::uint64_t token, bool row_hit) {
  RequestRecord* r = Find(token);
  if (r == nullptr || r->finished) return;
  r->row_hit = row_hit;
}

void RequestTracer::Hop(std::uint64_t token, sim::LinkId link, sim::Cycle depart,
                        sim::Cycle arrive) {
  RequestRecord* r = Find(token);
  if (r == nullptr || r->finished) return;
  ++r->hops;
  if (opt_.emit_hop_events && sink_ != nullptr) {
    sink_->Complete("noc.hop", depart, arrive - depart, r->core, token, "link",
                    static_cast<std::uint64_t>(link));
  }
}

void RequestTracer::Finish(std::uint64_t token, Stage final_stage, sim::Cycle now) {
  RequestRecord* r = Find(token);
  if (r == nullptr || r->finished) return;
  r->stamps.push_back({final_stage, now});
  r->finished = true;
  if (final_stage == Stage::kUnfinished) {
    ++unfinished_;
    return;
  }
  ++finished_;
  // Aggregate the telescoping deltas; each interval is attributed to the
  // stage stamped at its end.
  for (std::size_t i = 1; i < r->stamps.size(); ++i) {
    const StageStamp& prev = r->stamps[i - 1];
    const StageStamp& cur = r->stamps[i];
    StageAgg& a = agg_[static_cast<int>(cur.stage)];
    ++a.count;
    a.cycles += cur.at - prev.at;
    if (opt_.emit_stage_events && sink_ != nullptr && cur.at > prev.at) {
      sink_->Complete(StageName(cur.stage), prev.at, cur.at - prev.at, r->core, token);
    }
  }
  total_e2e_ += r->EndToEnd();
}

void RequestTracer::EndRun(sim::Cycle now) {
  for (RequestRecord& r : records_) {
    if (!r.finished) Finish(r.token, Stage::kUnfinished, now);
  }
}

std::string RequestTracer::BreakdownTable() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-16s %12s %14s %10s\n", "stage", "intervals",
                "cycles", "avg");
  out += line;
  std::uint64_t sum = 0;
  for (int i = 0; i < kNumStages; ++i) {
    const StageAgg& a = agg_[i];
    if (a.count == 0) continue;
    sum += a.cycles;
    std::snprintf(line, sizeof(line), "%-16s %12llu %14llu %10.1f\n",
                  StageName(static_cast<Stage>(i)),
                  static_cast<unsigned long long>(a.count),
                  static_cast<unsigned long long>(a.cycles),
                  static_cast<double>(a.cycles) / static_cast<double>(a.count));
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-16s %12s %14llu\n", "total", "",
                static_cast<unsigned long long>(sum));
  out += line;
  std::snprintf(line, sizeof(line),
                "requests: seen=%llu traced=%llu finished=%llu unfinished=%llu "
                "(sample_period=%llu)\n",
                static_cast<unsigned long long>(seen_),
                static_cast<unsigned long long>(records_.size()),
                static_cast<unsigned long long>(finished_),
                static_cast<unsigned long long>(unfinished_),
                static_cast<unsigned long long>(opt_.sample_period));
  out += line;
  if (finished_ > 0) {
    std::snprintf(line, sizeof(line), "end-to-end: total=%llu avg=%.1f cycles\n",
                  static_cast<unsigned long long>(total_e2e_),
                  static_cast<double>(total_e2e_) / static_cast<double>(finished_));
    out += line;
  }
  return out;
}

}  // namespace ndc::obs
