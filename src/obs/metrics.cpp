#include "obs/metrics.hpp"

#include <sstream>

namespace ndc::obs {

std::uint64_t Histogram::Percentile(double p) const {
  if (h_.total() == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  const double target = p / 100.0;
  const std::vector<std::uint64_t>& edges = h_.edges();
  if (edges.empty()) return 1;  // degenerate: only an overflow bucket exists
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    cum += h_.count(i);
    // Compare via counts, not CumulativeFraction, so ties at exact bucket
    // boundaries never depend on floating-point rounding.
    if (static_cast<double>(cum) >= target * static_cast<double>(h_.total())) {
      return edges[i];
    }
  }
  return edges.back() + 1;  // p-th sample lives in the overflow bucket
}

Counter* Registry::counter(const std::string& path) {
  Entry& e = metrics_[path];
  if (e.gauge != nullptr || e.histogram != nullptr) return nullptr;
  if (e.counter == nullptr) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* Registry::gauge(const std::string& path) {
  Entry& e = metrics_[path];
  if (e.counter != nullptr || e.histogram != nullptr) return nullptr;
  if (e.gauge == nullptr) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* Registry::histogram(const std::string& path, std::vector<std::uint64_t> edges) {
  Entry& e = metrics_[path];
  if (e.counter != nullptr || e.gauge != nullptr) return nullptr;
  if (e.histogram == nullptr) e.histogram = std::make_unique<Histogram>(std::move(edges));
  return e.histogram.get();
}

std::string Registry::ToText() const {
  std::ostringstream os;
  for (const auto& [path, e] : metrics_) {
    os << path << " ";
    if (e.counter != nullptr) {
      os << e.counter->value();
    } else if (e.gauge != nullptr) {
      os << e.gauge->value() << " (max " << e.gauge->max() << ")";
    } else if (e.histogram != nullptr) {
      os << "[";
      const sim::BucketHistogram& h = e.histogram->hist();
      for (std::size_t i = 0; i < h.num_buckets(); ++i) {
        if (i > 0) os << " ";
        os << h.count(i);
      }
      os << "]";
    }
    os << "\n";
  }
  return os.str();
}

std::map<std::string, std::uint64_t> Registry::ScalarSnapshot() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [path, e] : metrics_) {
    if (e.counter != nullptr) {
      out[path] = e.counter->value();
    } else if (e.gauge != nullptr) {
      out[path] = static_cast<std::uint64_t>(e.gauge->value());
    }
  }
  return out;
}

}  // namespace ndc::obs
