#pragma once

/// Compile-time master switch for the observability subsystem.
///
/// Built with -DNDC_OBS_DISABLED (CMake option NDC_OBS=OFF), every
/// instrumentation call site of the form
///
///     if (ObsOn()) { ... stamp / log / count ... }
///
/// constant-folds to nothing: ObsOn() is `kObsEnabled && obs_ != nullptr`
/// and kObsEnabled is a constexpr false, so the branch and everything inside
/// it are dead code. The obs types themselves still compile (tools and tests
/// link against them and report themselves disabled) — only the hooks in the
/// simulator hot paths disappear.
namespace ndc::obs {

#ifdef NDC_OBS_DISABLED
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

}  // namespace ndc::obs
