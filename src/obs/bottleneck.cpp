#include "obs/bottleneck.hpp"

#include <cstdio>

namespace ndc::obs {
namespace {

double Frac(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

}  // namespace

const char* LabelName(Label l) {
  switch (l) {
    case Label::kDramBw: return "dram-bw";
    case Label::kDramLatency: return "dram-latency";
    case Label::kNoc: return "noc";
    case Label::kSync: return "sync";
    case Label::kCompute: return "compute";
    case Label::kBalanced: return "balanced";
  }
  return "?";
}

UtilizationSignals ComputeSignals(const sim::StatSet& st, sim::Cycle makespan,
                                  const MachineShape& shape) {
  UtilizationSignals s;
  s.makespan = makespan;
  s.shape = shape;
  s.mc_reads = st.Get("mc.reads");
  s.mc_writes = st.Get("mc.writes");
  s.mc_queue_wait_cycles = st.Get("mc.queue_wait_cycles");
  s.mc_row_hits = st.Get("mc.row_hits");
  s.mc_row_misses = st.Get("mc.row_misses");
  s.noc_link_busy_cycles = st.Get("noc.link_busy_cycles");
  s.noc_contention_cycles = st.Get("noc.contention_cycles");
  s.sync_stall_cycles = st.Get("sync.stall_cycles");
  s.ndc_success = st.Get("ndc.success");
  s.core_stall_mem = st.Get("core.stall.mem");
  s.core_stall_sync = st.Get("core.stall.sync");
  s.core_busy_compute = st.Get("core.busy.compute");

  const std::uint64_t accesses = s.mc_reads + s.mc_writes;
  s.dram_bw_frac = Frac(accesses * shape.dram_data_beat, shape.num_mcs * makespan);
  s.mc_queue_occ = Frac(s.mc_queue_wait_cycles, shape.num_mcs * makespan);
  s.avg_queue_wait = Frac(s.mc_queue_wait_cycles, accesses);
  s.row_miss_ratio = Frac(s.mc_row_misses, s.mc_row_hits + s.mc_row_misses);
  s.noc_util = Frac(s.noc_link_busy_cycles, shape.num_links * makespan);
  s.noc_max_link_util = s.noc_util;  // refined when per-link counters exist
  s.sync_frac = Frac(s.sync_stall_cycles, shape.num_cores * makespan);
  s.ndc_busy_frac = Frac(s.ndc_success * shape.compute_latency, makespan);
  s.compute_frac = Frac(s.core_busy_compute, shape.num_cores * makespan);
  s.mem_stall_frac = Frac(s.core_stall_mem, shape.num_cores * makespan);
  return s;
}

void RefineMaxLinkBusy(UtilizationSignals& s, std::uint64_t max_link_busy_cycles) {
  double u = Frac(max_link_busy_cycles, s.makespan);
  if (u > s.noc_max_link_util) s.noc_max_link_util = u;
}

Label Classify(const UtilizationSignals& s, const ClassifierThresholds& t) {
  // Fixed precedence. Data-bus saturation is the least ambiguous signal, so
  // it wins outright. Sync stall outranks the memory-latency check: a core
  // parked on a grant issues no memory demand, so whatever queue wait its
  // few accesses saw is a symptom, not the constraint. Queue wait then
  // outranks raw link utilization — a hot link feeding an overloaded MC
  // shows up in both, and the deeper queue is the root cause.
  if (s.dram_bw_frac >= t.dram_bw) return Label::kDramBw;
  if (s.sync_frac >= t.sync) return Label::kSync;
  if (s.avg_queue_wait >= t.dram_queue_wait) return Label::kDramLatency;
  double noc = s.noc_max_link_util > s.noc_util ? s.noc_max_link_util : s.noc_util;
  if (noc >= t.noc) return Label::kNoc;
  if (s.compute_frac + s.ndc_busy_frac >= t.compute) return Label::kCompute;
  return Label::kBalanced;
}

std::string FormatFrac(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

std::string SignalsToText(const UtilizationSignals& s) {
  std::string out;
  out += "bw=" + FormatFrac(s.dram_bw_frac);
  out += " qwait=" + FormatFrac(s.avg_queue_wait);
  out += " qocc=" + FormatFrac(s.mc_queue_occ);
  out += " noc=" + FormatFrac(s.noc_util);
  out += " noc_max=" + FormatFrac(s.noc_max_link_util);
  out += " sync=" + FormatFrac(s.sync_frac);
  out += " ndc=" + FormatFrac(s.ndc_busy_frac);
  out += " compute=" + FormatFrac(s.compute_frac);
  out += " memstall=" + FormatFrac(s.mem_stall_frac);
  return out;
}

}  // namespace ndc::obs
