#pragma once

// Umbrella for the observability subsystem: one Observability object bundles
// the trace sink, request tracer, decision log, and metrics registry for a
// single simulated machine. The simulator takes a raw `Observability*`
// (nullptr = observation off, the default); the owner — a tool like
// ndc-trace, a test, or the harness obs-export path — constructs it, runs,
// then reads the pieces out. See DESIGN.md §9.

#include <cstdint>
#include <memory>

#include "obs/decision_log.hpp"
#include "obs/enabled.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/request_trace.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"

namespace ndc::obs {

struct ObsOptions {
  std::uint64_t sample_period = 1;      ///< trace every Nth load
  std::size_t max_trace_events = 1u << 20;
  std::size_t max_requests = 1u << 20;
  bool emit_stage_events = true;
  bool emit_hop_events = false;
  /// Phase-window width for the signal sampler; 0 (default) leaves the
  /// sampler off, so obs-attached runs without it stay byte-identical.
  std::uint64_t window_cycles = 0;
};

/// Per-machine observation bundle. Construction wires the tracer to the
/// sink; the machine under observation additionally registers its component
/// metrics into `registry` and stamps through `tracer` / `decisions`.
class Observability {
 public:
  explicit Observability(ObsOptions opt = {})
      : options(opt),
        sink(opt.max_trace_events),
        tracer(&sink, {opt.sample_period, opt.max_requests, opt.emit_stage_events,
                       opt.emit_hop_events}) {
    sampler.Configure(opt.window_cycles);
  }

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  /// Closes out open records and unresolved decisions at end of run.
  void EndRun(sim::Cycle now) {
    tracer.EndRun(now);
    decisions.EndRun(now);
  }

  ObsOptions options;
  TraceSink sink;
  RequestTracer tracer;
  DecisionLog decisions;
  Registry registry;
  WindowSampler sampler;
};

}  // namespace ndc::obs
