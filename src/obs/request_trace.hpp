#pragma once

// Request-lifetime tracing. Every (sampled) load carries a token from issue
// to completion; each layer it crosses stamps a lifecycle event. A request's
// per-stage latency breakdown is the sequence of deltas between consecutive
// stamps, so the stage latencies of one request always telescope to exactly
// its end-to-end latency — the invariant the breakdown table is built on
// (and that tests assert).
//
// Stage boundary convention: a Stage names the stamp that ENDS an interval;
// the interval's cost is attributed to that stage. E.g. Stage::kMcIssue is
// stamped when the FR-FCFS scheduler issues the request to a DRAM bank, so
// the "mc.queue" row in the table is (issue stamp − enqueue stamp): pure
// queue residency, excluding DRAM service (see DESIGN.md §9).
//
// Sampling: Begin() admits every `sample_period`-th load (in deterministic
// issue order), starting with the first. Stamping is passive — it never
// schedules events or perturbs simulated time — so a sampled run's records
// are a bit-exact subset of a full run's.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/enabled.hpp"
#include "obs/trace.hpp"
#include "sim/types.hpp"

namespace ndc::obs {

/// Lifecycle stamps, in the order a request can encounter them.
enum class Stage : std::uint8_t {
  kIssue = 0,     ///< load issued by the core (interval start; never an end)
  kL1Hit,         ///< hit data ready (terminal for L1 hits)
  kL1Miss,        ///< L1 lookup completed, miss detected
  kReqAtHome,     ///< request arrived at the home L2 bank (NoC request)
  kL2Hit,         ///< L2 lookup completed, hit (bank occupancy included)
  kL2Miss,        ///< L2 lookup completed, miss
  kMcEnqueue,     ///< request arrived at the memory controller queue
  kMcIssue,       ///< FR-FCFS issued the request to its DRAM bank
  kDramReady,     ///< data ready at the controller (DRAM service done)
  kHomeRefill,    ///< response arrived back at the home L2 bank
  kDeliver,       ///< data delivered to the core (terminal)
  kNdcConsumed,   ///< operand consumed by a near-data computation (terminal)
  kUnfinished,    ///< run ended with the request in flight (terminal)
};
inline constexpr int kNumStages = 13;

const char* StageName(Stage s);

struct StageStamp {
  Stage stage;
  sim::Cycle at;
};

struct RequestRecord {
  std::uint64_t token = 0;
  sim::NodeId core = sim::kNoNode;
  std::uint32_t slot = 0;  ///< trace slot of the load
  sim::Addr addr = 0;
  bool finished = false;
  bool row_hit = false;   ///< DRAM row-buffer hit (requests that reached DRAM)
  std::uint32_t hops = 0; ///< NoC link traversals over the whole lifetime
  std::vector<StageStamp> stamps;  ///< stamps[0] is always kIssue

  sim::Cycle issue_cycle() const { return stamps.empty() ? 0 : stamps.front().at; }
  sim::Cycle last_cycle() const { return stamps.empty() ? 0 : stamps.back().at; }
  sim::Cycle EndToEnd() const { return last_cycle() - issue_cycle(); }
};

class RequestTracer {
 public:
  struct Options {
    std::uint64_t sample_period = 1;    ///< trace every Nth load (1 = all)
    std::size_t max_requests = 1u << 20;  ///< records kept; excess loads untraced
    bool emit_stage_events = true;  ///< 'X' slices per stage into the sink
    bool emit_hop_events = false;   ///< 'X' slice per NoC link traversal
  };

  explicit RequestTracer(TraceSink* sink) : RequestTracer(sink, Options()) {}
  RequestTracer(TraceSink* sink, Options opt) : sink_(sink), opt_(opt) {
    if (opt_.sample_period == 0) opt_.sample_period = 1;
  }

  /// Admits or skips one load. Returns the nonzero token to thread through
  /// the memory system, or 0 when the load is not sampled. Stamps kIssue.
  std::uint64_t Begin(sim::NodeId core, std::uint32_t slot, sim::Addr addr, sim::Cycle now);

  /// Appends a lifecycle stamp. No-op for token 0 or finished requests.
  void Stamp(std::uint64_t token, Stage stage, sim::Cycle now);

  /// Marks the DRAM row-buffer outcome of the request's bank access.
  void NoteRowHit(std::uint64_t token, bool row_hit);

  /// One NoC link traversal (serialization window [depart, arrive]).
  void Hop(std::uint64_t token, sim::LinkId link, sim::Cycle depart, sim::Cycle arrive);

  /// Terminal stamp: aggregates the record's stage deltas and (optionally)
  /// emits its timeline slices. Idempotent — later Finish calls on the same
  /// token are ignored (an NDC squash can race a conventional delivery).
  void Finish(std::uint64_t token, Stage final_stage, sim::Cycle now);

  /// Closes every still-open record as Stage::kUnfinished (end of run).
  /// Unfinished records are excluded from the stage aggregates.
  void EndRun(sim::Cycle now);

  // --- introspection ---
  std::uint64_t seen() const { return seen_; }          ///< loads offered
  std::uint64_t traced() const { return records_.size(); }
  std::uint64_t finished() const { return finished_; }
  std::uint64_t unfinished() const { return unfinished_; }
  std::uint64_t overflowed() const { return overflowed_; }  ///< lost to max_requests
  std::uint64_t sample_period() const { return opt_.sample_period; }
  const std::vector<RequestRecord>& records() const { return records_; }

  struct StageAgg {
    std::uint64_t count = 0;   ///< intervals ending in this stage
    std::uint64_t cycles = 0;  ///< summed interval lengths
  };
  /// Aggregate per-stage latencies over finished requests (indexed by Stage).
  const StageAgg* aggregates() const { return agg_; }
  /// Summed end-to-end latency over finished requests. Equals the sum of
  /// all aggregate stage cycles (the telescoping invariant).
  std::uint64_t total_end_to_end() const { return total_e2e_; }

  /// Human-readable per-stage latency table (ndc-trace stdout).
  std::string BreakdownTable() const;

 private:
  RequestRecord* Find(std::uint64_t token) {
    if (token == 0 || token > records_.size()) return nullptr;
    return &records_[static_cast<std::size_t>(token - 1)];
  }

  TraceSink* sink_;
  Options opt_;
  std::vector<RequestRecord> records_;  ///< token i+1 lives at records_[i]
  std::uint64_t seen_ = 0;
  std::uint64_t finished_ = 0;
  std::uint64_t unfinished_ = 0;
  std::uint64_t overflowed_ = 0;
  StageAgg agg_[kNumStages];
  std::uint64_t total_e2e_ = 0;
};

}  // namespace ndc::obs
