#pragma once

// Chrome trace_event collection. A TraceSink accumulates timeline events
// ('X' complete slices, 'i' instants) and serializes them as the JSON object
// format ({"traceEvents": [...]}) that chrome://tracing and Perfetto load
// directly. Simulated cycles map 1:1 onto trace microseconds (`ts`/`dur`),
// so one timeline tick in the viewer is one core clock cycle.
//
// Event names are `const char*` and must point at storage that outlives the
// sink (every producer in this repo passes string literals); this keeps the
// per-event cost to a handful of integer stores.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/enabled.hpp"
#include "sim/types.hpp"

namespace ndc::obs {

/// One Chrome trace_event. Only the fields the viewers require (ph, ts,
/// pid, tid, name) plus a duration and up to two numeric args.
struct TraceEvent {
  char ph = 'X';             ///< 'X' complete slice, 'i' instant
  sim::Cycle ts = 0;         ///< start, simulated cycles
  sim::Cycle dur = 0;        ///< 'X' only
  std::int32_t pid = 1;      ///< one simulated machine per trace
  std::int32_t tid = 0;      ///< mesh node (core) the event belongs to
  const char* name = "";     ///< static string
  std::uint64_t token = 0;   ///< request token (args.token; 0 = omitted)
  const char* arg_name = nullptr;  ///< optional extra arg key (static string)
  std::uint64_t arg = 0;           ///< extra arg value
};

class TraceSink {
 public:
  /// `max_events` bounds memory on full-workload runs; events past the cap
  /// are counted in dropped() instead of stored.
  explicit TraceSink(std::size_t max_events = 1u << 20) : max_events_(max_events) {}

  void Complete(const char* name, sim::Cycle ts, sim::Cycle dur, std::int32_t tid,
                std::uint64_t token, const char* arg_name = nullptr, std::uint64_t arg = 0) {
    Push({'X', ts, dur, 1, tid, name, token, arg_name, arg});
  }

  void Instant(const char* name, sim::Cycle ts, std::int32_t tid, std::uint64_t token,
               const char* arg_name = nullptr, std::uint64_t arg = 0) {
    Push({'i', ts, 0, 1, tid, name, token, arg_name, arg});
  }

  std::size_t size() const { return events_.size(); }
  std::size_t dropped() const { return dropped_; }
  std::size_t max_events() const { return max_events_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// {"traceEvents":[...]} — loadable by chrome://tracing and Perfetto.
  std::string ToJson() const;

  /// Writes ToJson() to `path`; false when the file cannot be written.
  bool WriteFile(const std::string& path) const;

  void Clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  void Push(TraceEvent e) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::size_t dropped_ = 0;
};

}  // namespace ndc::obs
