#pragma once

// Phase-windowed signal sampler. Instrumented sites (the memory
// controllers, the NoC, the sync engines, the NDC runtime) report additive
// deltas of a small fixed set of utilization signals; the sampler buckets
// each delta into a fixed-width cycle window (window = now / window_cycles)
// so a run's signals become a per-window time series instead of one
// run-level average — phase changes stay visible.
//
// The sampler is passive by construction: it never schedules events, never
// reads the clock itself, and never perturbs simulated time. Sites hand it
// the current cycle they already hold. Disabled (window_cycles == 0, the
// default) it is a branch-and-return; under NDC_OBS=OFF every method
// compiles out entirely. Because each windowed signal is the exact sequence
// of deltas some touched-only counter accumulates, the window sums
// reconcile with the run totals — tests assert this.
//
// See DESIGN.md §9.

#include <cstdint>
#include <vector>

#include "obs/enabled.hpp"
#include "sim/types.hpp"

namespace ndc::obs {

/// The sampled utilization signals. Each maps 1:1 onto a touched-only
/// run counter, so sum-over-windows == run total (asserted in tests):
///   kDramAccess -> mc.reads + mc.writes        (delta 1 per issued access)
///   kMcQueueWait -> mc.queue_wait_cycles       (delta = issue - enqueue)
///   kNocBusy    -> noc.link_busy_cycles        (delta = serialization cycles)
///   kSyncStall  -> sync.stall_cycles           (delta = grant - issue)
///   kNdcBusy    -> ndc.success * compute_latency (delta per near-data op)
enum class Signal : std::uint8_t {
  kDramAccess = 0,
  kMcQueueWait,
  kNocBusy,
  kSyncStall,
  kNdcBusy,
};
inline constexpr int kNumSignals = 5;

const char* SignalName(Signal s);

class WindowSampler {
 public:
  /// Window width in cycles; 0 disables the sampler (the default). Resets
  /// any previously collected series.
  void Configure(std::uint64_t window_cycles) {
    if constexpr (!kObsEnabled) return;
    window_cycles_ = window_cycles;
    for (auto& s : series_) s.clear();
  }

  bool enabled() const {
    if constexpr (!kObsEnabled) return false;
    return window_cycles_ != 0;
  }

  std::uint64_t window_cycles() const { return window_cycles_; }

  /// Adds `delta` of signal `s` to the window containing cycle `now`.
  /// Hot-path shape: disabled is one predictable branch.
  void Note(Signal s, sim::Cycle now, std::uint64_t delta) {
    if constexpr (!kObsEnabled) return;
    if (window_cycles_ == 0) return;
    NoteSlow(s, now, delta);
  }

  /// Number of windows observed so far (index of the last touched window
  /// + 1, across all signals).
  std::size_t num_windows() const;

  /// Accumulated delta of `s` in window `w` (0 if never touched).
  std::uint64_t At(Signal s, std::size_t w) const;

  /// Sum of all windows of `s` — must equal the matching run counter.
  std::uint64_t Total(Signal s) const;

 private:
  void NoteSlow(Signal s, sim::Cycle now, std::uint64_t delta);

  /// Bounds memory for pathological window widths; deltas past the cap
  /// accumulate into the last window so totals still reconcile.
  static constexpr std::size_t kMaxWindows = 1u << 16;

  std::uint64_t window_cycles_ = 0;
  std::vector<std::uint64_t> series_[kNumSignals];
};

}  // namespace ndc::obs
