#include "obs/decision_log.hpp"

#include <cstdio>

namespace ndc::obs {

const char* DecisionKindName(DecisionKind k) {
  switch (k) {
    case DecisionKind::kLocalL1Skip: return "local_l1_skip";
    case DecisionKind::kDeclined: return "declined";
    case DecisionKind::kPlanInfeasible: return "plan_infeasible";
    case DecisionKind::kOpRestricted: return "op_restricted";
    case DecisionKind::kOffloadTableFull: return "offload_table_full";
    case DecisionKind::kOffload: return "offload";
  }
  return "?";
}

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kConventional: return "conventional";
    case Outcome::kNdcSuccess: return "ndc_success";
    case Outcome::kFallbackTimeout: return "fallback_timeout";
    case Outcome::kFallbackPartnerDone: return "fallback_partner_done";
    case Outcome::kFallbackServiceTableFull: return "fallback_service_table_full";
    case Outcome::kFallbackNeverMet: return "fallback_never_met";
    case Outcome::kDegradedToHost: return "degraded_to_host";
    case Outcome::kUnresolved: return "unresolved";
  }
  return "?";
}

void DecisionLog::Record(std::uint64_t uid, sim::NodeId core, std::uint32_t site,
                         DecisionKind kind, std::int8_t planned_loc, sim::Cycle now,
                         std::uint32_t prior) {
  if (by_uid_.count(uid) != 0) return;
  by_uid_[uid] = entries_.size();
  DecisionEntry& e = entries_.emplace_back();
  e.uid = uid;
  e.core = core;
  e.site = site;
  e.kind = kind;
  e.planned_loc = planned_loc;
  e.decided_at = now;
  e.prior = prior;
  ++kind_counts_[static_cast<int>(kind)];
  if (kind == DecisionKind::kOffload) {
    e.outcome = Outcome::kUnresolved;
  } else {
    e.outcome = Outcome::kConventional;
    e.resolved_at = now;
  }
  ++outcome_counts_[static_cast<int>(e.outcome)];
}

void DecisionLog::Resolve(std::uint64_t uid, Outcome outcome, std::int8_t met_loc,
                          sim::Cycle now) {
  auto it = by_uid_.find(uid);
  if (it == by_uid_.end()) return;
  DecisionEntry& e = entries_[it->second];
  if (e.outcome != Outcome::kUnresolved) return;  // first resolution wins
  --outcome_counts_[static_cast<int>(Outcome::kUnresolved)];
  e.outcome = outcome;
  e.met_loc = met_loc;
  e.resolved_at = now;
  ++outcome_counts_[static_cast<int>(outcome)];
}

void DecisionLog::NoteRetry(std::uint64_t uid) {
  auto it = by_uid_.find(uid);
  if (it == by_uid_.end()) return;
  DecisionEntry& e = entries_[it->second];
  if (e.outcome != Outcome::kUnresolved) return;
  ++e.retries;
  ++total_retries_;
}

void DecisionLog::EndRun(sim::Cycle now) {
  for (DecisionEntry& e : entries_) {
    if (e.outcome == Outcome::kUnresolved) {
      --outcome_counts_[static_cast<int>(Outcome::kUnresolved)];
      e.outcome = Outcome::kFallbackNeverMet;
      e.resolved_at = now;
      ++outcome_counts_[static_cast<int>(Outcome::kFallbackNeverMet)];
    }
  }
}

std::string DecisionLog::Summary() const {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "candidates: %llu\n",
                static_cast<unsigned long long>(entries_.size()));
  out += line;
  out += "decisions:\n";
  for (int i = 0; i < kNumDecisionKinds; ++i) {
    if (kind_counts_[i] == 0) continue;
    std::snprintf(line, sizeof(line), "  %-28s %10llu\n",
                  DecisionKindName(static_cast<DecisionKind>(i)),
                  static_cast<unsigned long long>(kind_counts_[i]));
    out += line;
  }
  out += "outcomes:\n";
  for (int i = 0; i < kNumOutcomes; ++i) {
    if (outcome_counts_[i] == 0) continue;
    std::snprintf(line, sizeof(line), "  %-28s %10llu\n",
                  OutcomeName(static_cast<Outcome>(i)),
                  static_cast<unsigned long long>(outcome_counts_[i]));
    out += line;
  }
  return out;
}

std::string DecisionLog::ToJsonl() const {
  std::string out;
  char line[256];
  for (const DecisionEntry& e : entries_) {
    // `retries` is emitted only when consumed (faulted runs) and `prior`
    // only when computed: decision JSONL without either stays
    // byte-identical to the historical format.
    char retries[32] = "";
    if (e.retries != 0) {
      std::snprintf(retries, sizeof(retries), ",\"retries\":%u", e.retries);
    }
    char prior[32] = "";
    if (e.prior != 0) {
      std::snprintf(prior, sizeof(prior), ",\"prior\":%u", e.prior);
    }
    std::snprintf(line, sizeof(line),
                  "{\"uid\":%llu,\"core\":%d,\"site\":%u,\"kind\":\"%s\","
                  "\"planned_loc\":%d,\"decided_at\":%llu,\"outcome\":\"%s\","
                  "\"met_loc\":%d,\"resolved_at\":%llu%s%s}\n",
                  static_cast<unsigned long long>(e.uid), static_cast<int>(e.core),
                  e.site, DecisionKindName(e.kind), static_cast<int>(e.planned_loc),
                  static_cast<unsigned long long>(e.decided_at), OutcomeName(e.outcome),
                  static_cast<int>(e.met_loc),
                  static_cast<unsigned long long>(e.resolved_at), retries, prior);
    out += line;
  }
  return out;
}

}  // namespace ndc::obs
