#include "obs/phase.hpp"

#include <cstdio>

namespace ndc::obs {

const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kBuildWorkload: return "build_workload";
    case Phase::kLowerTraces: return "lower_traces";
    case Phase::kCompile: return "compile";
    case Phase::kSimulate: return "simulate";
    case Phase::kRender: return "render";
    case Phase::kOther: return "other";
  }
  return "?";
}

std::map<std::string, std::uint64_t> PhaseProfiler::Snapshot::DeltaMsSince(
    const Snapshot& base) const {
  std::map<std::string, std::uint64_t> out;
  for (int i = 0; i < kNumPhases; ++i) {
    std::uint64_t d = ns[i] - base.ns[i];
    if (d == 0 && count[i] == base.count[i]) continue;
    out[PhaseName(static_cast<Phase>(i))] = d / 1000000;
  }
  return out;
}

std::string PhaseProfiler::ToText() const {
  std::string out;
  char line[96];
  std::snprintf(line, sizeof(line), "%-16s %10s %8s\n", "phase", "ms", "scopes");
  out += line;
  for (int i = 0; i < kNumPhases; ++i) {
    std::uint64_t c = count(static_cast<Phase>(i));
    if (c == 0) continue;
    std::snprintf(line, sizeof(line), "%-16s %10.1f %8llu\n",
                  PhaseName(static_cast<Phase>(i)),
                  static_cast<double>(ns(static_cast<Phase>(i))) / 1e6,
                  static_cast<unsigned long long>(c));
    out += line;
  }
  return out;
}

PhaseProfiler& GlobalPhases() {
  static PhaseProfiler g;
  return g;
}

}  // namespace ndc::obs
