#pragma once

// Host-side phase profiling: wall-clock breakdown of where an experiment
// spends real time (building workloads, lowering traces, compiling plans,
// simulating, rendering). Scopes accumulate into a process-global profiler
// so the sweep harness can report a phase table across all worker threads
// without threading a handle through every layer; counters are atomic for
// exactly that reason.
//
// With NDC_OBS=OFF, ScopedPhase compiles to an empty object and the clock
// reads disappear — host profiling obeys the same compile-out switch as the
// simulated-side instrumentation.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

#include "obs/enabled.hpp"

namespace ndc::obs {

enum class Phase : std::uint8_t {
  kBuildWorkload = 0,  ///< synthesizing benchmark traces
  kLowerTraces,        ///< lowering traces to machine programs
  kCompile,            ///< compiler passes (plans, policies)
  kSimulate,           ///< cycle-level simulation proper
  kRender,             ///< figure rendering / export
  kOther,
};
inline constexpr int kNumPhases = 6;

const char* PhaseName(Phase p);

class PhaseProfiler {
 public:
  void Add(Phase p, std::uint64_t ns) {
    slots_[static_cast<int>(p)].ns.fetch_add(ns, std::memory_order_relaxed);
    slots_[static_cast<int>(p)].count.fetch_add(1, std::memory_order_relaxed);
  }

  /// Simulated events retired inside kSimulate scopes (reported by the
  /// experiment layer after each Machine::Run). Together with the kSimulate
  /// wall clock this yields the substrate's end-to-end events/sec.
  void AddSimEvents(std::uint64_t n) {
    sim_events_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t sim_events() const {
    return sim_events_.load(std::memory_order_relaxed);
  }

  std::uint64_t ns(Phase p) const {
    return slots_[static_cast<int>(p)].ns.load(std::memory_order_relaxed);
  }
  std::uint64_t count(Phase p) const {
    return slots_[static_cast<int>(p)].count.load(std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t ns[kNumPhases] = {};
    std::uint64_t count[kNumPhases] = {};
    std::uint64_t sim_events = 0;

    /// Per-phase milliseconds since `base`, keyed by phase name; phases with
    /// no delta are omitted. Used for SweepSummary.phase_ms.
    std::map<std::string, std::uint64_t> DeltaMsSince(const Snapshot& base) const;
  };
  Snapshot Take() const {
    Snapshot s;
    for (int i = 0; i < kNumPhases; ++i) {
      s.ns[i] = slots_[i].ns.load(std::memory_order_relaxed);
      s.count[i] = slots_[i].count.load(std::memory_order_relaxed);
    }
    s.sim_events = sim_events_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    for (Slot& s : slots_) {
      s.ns.store(0, std::memory_order_relaxed);
      s.count.store(0, std::memory_order_relaxed);
    }
    sim_events_.store(0, std::memory_order_relaxed);
  }

  /// "phase  ms  scopes" table over all phases with activity.
  std::string ToText() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> count{0};
  };
  Slot slots_[kNumPhases];
  std::atomic<std::uint64_t> sim_events_{0};
};

/// The process-wide profiler every ScopedPhase reports into.
PhaseProfiler& GlobalPhases();

#ifndef NDC_OBS_DISABLED
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase p) : phase_(p), start_(std::chrono::steady_clock::now()) {}
  ~ScopedPhase() {
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    GlobalPhases().Add(phase_, static_cast<std::uint64_t>(ns));
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
};
#else
class ScopedPhase {
 public:
  explicit ScopedPhase(Phase) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
};
#endif

}  // namespace ndc::obs
