#include "obs/trace.hpp"

#include <cstdio>
#include <fstream>

namespace ndc::obs {
namespace {

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

// Event names are static strings chosen by the instrumentation (no user
// input), but escape defensively so the output is always valid JSON.
void AppendEscaped(std::string& out, const char* s) {
  out += '"';
  for (; *s != '\0'; ++s) {
    unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  out += '"';
}

}  // namespace

std::string TraceSink::ToJson() const {
  std::string out;
  out.reserve(events_.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"ts\":";
    AppendU64(out, e.ts);
    if (e.ph == 'X') {
      out += ",\"dur\":";
      AppendU64(out, e.dur);
    }
    out += ",\"pid\":";
    AppendU64(out, static_cast<std::uint64_t>(e.pid));
    out += ",\"tid\":";
    AppendU64(out, static_cast<std::uint64_t>(e.tid));
    out += ",\"name\":";
    AppendEscaped(out, e.name);
    if (e.ph == 'i') out += ",\"s\":\"t\"";  // instant scope: thread
    if (e.token != 0 || e.arg_name != nullptr) {
      out += ",\"args\":{";
      bool comma = false;
      if (e.token != 0) {
        out += "\"token\":";
        AppendU64(out, e.token);
        comma = true;
      }
      if (e.arg_name != nullptr) {
        if (comma) out += ',';
        AppendEscaped(out, e.arg_name);
        out += ':';
        AppendU64(out, e.arg);
      }
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

bool TraceSink::WriteFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return false;
  f << ToJson() << "\n";
  return static_cast<bool>(f);
}

}  // namespace ndc::obs
