#pragma once

#include <vector>

#include "arch/config.hpp"
#include "arch/trace.hpp"
#include "ir/program.hpp"

namespace ndc::compiler {

/// Result of lowering a program to per-core instruction traces.
struct CodegenResult {
  std::vector<arch::Trace> traces;   ///< one per core
  std::uint64_t total_instrs = 0;
  std::uint64_t precomputes = 0;
};

/// Which core executes iteration `iter` of `nest`: the outermost loop is
/// block-distributed over `num_cores` cores (the parallelization step of
/// Figure 7 runs before the NDC algorithms and is preserved by them).
int CoreForIteration(const ir::LoopNest& nest, const ir::IntVec& iter, int num_cores);

/// Lowers a (possibly NDC-annotated and schedule-transformed) program to
/// per-core traces:
///  - each core's iterations execute in lexicographic order of T*I
///    (T = identity when no transform was found);
///  - NDC-annotated statements emit their operand loads shifted by the
///    planned iteration leads (the access movements of Figures 8-9) and a
///    `pre-compute` instruction placed right after the second access;
///  - all other statements lower to load/compute/store with explicit
///    dependence indices; computations with two memory operands are marked
///    as NDC candidates (for the hardware-policy studies of Section 4).
CodegenResult Lower(const ir::Program& prog, int num_cores,
                    const arch::ArchConfig* cfg = nullptr);

}  // namespace ndc::compiler
