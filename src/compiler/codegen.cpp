#include "compiler/codegen.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <set>

#include "analysis/cme.hpp"

namespace ndc::compiler {
namespace {

// Emission phases give the within-slot program order: a statement's index
// loads precede its operand loads, then the computation, then the store.
enum Phase : int {
  kIdx0 = 0,
  kLoad0 = 1,
  kIdx1 = 2,
  kLoad1 = 3,
  kComputeP = 4,
  kIdxStore = 5,
  kStoreP = 6,
};

struct Emission {
  ir::Int slot = 0;   // position in the core's iteration sequence
  int stmt = 0;       // body index
  Phase phase = kLoad0;
  ir::Int j = 0;      // index of the computation's iteration in the core list

  bool operator<(const Emission& o) const {
    if (slot != o.slot) return slot < o.slot;
    if (j != o.j) return j < o.j;
    if (stmt != o.stmt) return stmt < o.stmt;
    return phase < o.phase;
  }
};

// Key for remembering where a load was emitted (for dependences).
struct LoadKey {
  int stmt;
  ir::Int j;
  int which;  // 0/1 = operand, 2 = store-index, 3 = lock acquire
  bool operator<(const LoadKey& o) const {
    if (stmt != o.stmt) return stmt < o.stmt;
    if (j != o.j) return j < o.j;
    return which < o.which;
  }
};

// Deterministic per-iteration reduction payload. Both lowering schemes
// (remote fetch-add and lock-guarded host RMW) contribute the same value
// for the same iteration, so the engines' final value maps agree across
// schemes — the cross-scheme equivalence the sync tests assert.
ir::Int ReductionPayload(const ir::IntVec& iter) {
  return 1 + ((iter.front() * 31 + iter.back()) % 13);
}

}  // namespace

int CoreForIteration(const ir::LoopNest& nest, const ir::IntVec& iter, int num_cores) {
  const ir::Loop& outer = nest.loops.front();
  ir::Int span = outer.hi - outer.lo + 1;
  ir::Int chunk = (span + num_cores - 1) / num_cores;
  ir::Int v = iter[0] - outer.lo;
  return static_cast<int>(std::min<ir::Int>(v / std::max<ir::Int>(1, chunk), num_cores - 1));
}

CodegenResult Lower(const ir::Program& prog, int num_cores, const arch::ArchConfig* cfg) {
  CodegenResult out;
  out.traces.assign(static_cast<std::size_t>(num_cores), {});

  std::set<int> warm_arrays;
  for (const ir::LoopNest& nest : prog.nests) {
    // Per-iteration CME gate for NDC-annotated statements: the pre-compute
    // is emitted only where both operands are predicted to miss the L1
    // (the paper's compiler "first checks whether x in S1 and y in S2
    // result in L1 misses"); other instances execute conventionally.
    std::unique_ptr<analysis::CmePredictor> cme;
    for (const ir::Stmt& st : nest.body) {
      if (st.ndc.offload) {
        analysis::CacheSpec l1 = cfg ? analysis::CacheSpec::From(cfg->l1) : analysis::CacheSpec{};
        analysis::CacheSpec l2 = cfg ? analysis::CacheSpec::From(cfg->l2)
                                     : analysis::CacheSpec{512 * 1024, 256, 64};
        cme = std::make_unique<analysis::CmePredictor>(prog, nest, l1, l2, num_cores, warm_arrays);
        break;
      }
    }

    // Partition iterations by core, preserving original order.
    std::vector<std::vector<ir::IntVec>> per_core(static_cast<std::size_t>(num_cores));
    nest.ForEachIteration([&](const ir::IntVec& iter) {
      per_core[static_cast<std::size_t>(CoreForIteration(nest, iter, num_cores))].push_back(iter);
    });

    // Post/wait DOACROSS lowering needs to know, for each iteration, which
    // core runs it and at which local position (the wait threshold is the
    // producer's 1-based position). Sync-annotated nests never carry a
    // schedule transform (the pipeline refuses transforms on annotated
    // nests), so the partition order above is final.
    const bool postwait =
        nest.sync.kind == ir::SyncKind::kPostWait && nest.sync.sync_array >= 0;
    std::map<ir::IntVec, std::pair<int, ir::Int>> iter_pos;
    if (postwait) {
      for (int c = 0; c < num_cores; ++c) {
        const std::vector<ir::IntVec>& its = per_core[static_cast<std::size_t>(c)];
        for (std::size_t k = 0; k < its.size(); ++k) {
          iter_pos[its[k]] = {c, static_cast<ir::Int>(k)};
        }
      }
    }
    int participants = 0;
    if (nest.sync.barrier_after && nest.sync.sync_array >= 0) {
      for (int c = 0; c < num_cores; ++c) {
        if (!per_core[static_cast<std::size_t>(c)].empty()) ++participants;
      }
    }

    for (int core = 0; core < num_cores; ++core) {
      std::vector<ir::IntVec>& iters = per_core[static_cast<std::size_t>(core)];
      if (iters.empty()) continue;
      if (nest.transform.has_value()) {
        const ir::IntMat& T = *nest.transform;
        std::stable_sort(iters.begin(), iters.end(),
                         [&](const ir::IntVec& a, const ir::IntVec& b) {
                           return ir::LexCompare(T.Apply(a), T.Apply(b)) < 0;
                         });
      }
      auto m = static_cast<ir::Int>(iters.size());
      auto clamp_slot = [m](ir::Int s) { return std::clamp<ir::Int>(s, 0, m - 1); };

      std::vector<Emission> emissions;
      emissions.reserve(static_cast<std::size_t>(m) * nest.body.size() * 4);
      for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
        const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
        if (st.sync.kind == ir::SyncKind::kNdcAtomic) {
          // The RMW collapses to one remote fetch-add: load the contributed
          // operand, then ship the delta to the sync engine. No local
          // accumulator load, compute, or store is emitted.
          for (ir::Int j = 0; j < m; ++j) {
            if (st.rhs1.IsMemory()) emissions.push_back({j, s, kLoad1, j});
            emissions.push_back({j, s, kComputeP, j});
          }
          continue;
        }
        if (st.sync.kind == ir::SyncKind::kHostLock) {
          // Lock-guarded host RMW: the data load stays outside the critical
          // section; acquire -> accumulator load -> compute -> store ->
          // release. Phase values only encode within-slot order here (the
          // data load reuses kLoad0's slot so it can overlap the acquire).
          for (ir::Int j = 0; j < m; ++j) {
            if (st.rhs1.IsMemory()) emissions.push_back({j, s, kLoad0, j});
            emissions.push_back({j, s, kIdx1, j});  // lock acquire
            if (st.rhs0.IsMemory()) emissions.push_back({j, s, kLoad1, j});
            emissions.push_back({j, s, kComputeP, j});
            emissions.push_back({j, s, kStoreP, j});  // store + release
          }
          continue;
        }
        ir::Int lead0 = st.ndc.offload ? st.ndc.lead0 : 0;
        ir::Int lead1 = st.ndc.offload ? st.ndc.lead1 : 0;
        for (ir::Int j = 0; j < m; ++j) {
          ir::Int slot0 = clamp_slot(j - lead0);
          ir::Int slot1 = clamp_slot(j - lead1);
          ir::Int slotc = std::max(slot0, slot1);
          if (st.rhs0.IsMemory()) {
            if (st.rhs0.kind == ir::Operand::Kind::kIndirect) {
              emissions.push_back({slot0, s, kIdx0, j});
            }
            emissions.push_back({slot0, s, kLoad0, j});
          }
          if (st.rhs1.IsMemory()) {
            if (st.rhs1.kind == ir::Operand::Kind::kIndirect) {
              emissions.push_back({slot1, s, kIdx1, j});
            }
            emissions.push_back({slot1, s, kLoad1, j});
          }
          emissions.push_back({slotc, s, kComputeP, j});
          if (st.lhs.IsMemory()) {
            if (st.lhs.kind == ir::Operand::Kind::kIndirect) {
              emissions.push_back({slotc, s, kIdxStore, j});
            }
            emissions.push_back({slotc, s, kStoreP, j});
          }
        }
      }
      if (postwait) {
        // Pseudo-statements bracketing each iteration: a wait (stmt -1,
        // sorts before every body statement of the slot) and a post
        // (stmt == body.size(), sorts after).
        for (ir::Int j = 0; j < m; ++j) {
          emissions.push_back({j, -1, kIdx0, j});
          emissions.push_back({j, static_cast<int>(nest.body.size()), kStoreP, j});
        }
      }
      std::stable_sort(emissions.begin(), emissions.end());

      arch::Trace& trace = out.traces[static_cast<std::size_t>(core)];
      const std::size_t nest_base = trace.size();
      std::map<LoadKey, std::int32_t> load_at;
      std::map<LoadKey, std::int32_t> compute_at;
      std::map<ir::Int, std::int32_t> wait_at;  // j -> wait slot gating its loads
      std::map<ir::Int, std::int32_t> last_at;  // j -> last emitted instr (post dep)

      auto emit_operand_load = [&](const ir::Stmt& st, const ir::Operand& op, ir::Int j,
                                   int which, Phase idx_phase) {
        (void)idx_phase;
        const ir::IntVec& iter = iters[static_cast<std::size_t>(j)];
        auto addr = prog.ResolveAddr(op, iter);
        if (!addr.has_value()) return;
        std::int32_t dep = -1;
        if (op.kind == ir::Operand::Kind::kIndirect) {
          // Emit the index-array load first; the data load depends on it.
          const ir::Array& idx_arr = prog.array(op.access.array);
          ir::IntVec sub = op.access.Subscript(iter);
          bool ok = true;
          for (std::size_t d = 0; d < sub.size(); ++d) {
            ok &= sub[d] >= 0 && sub[d] < idx_arr.dims[d];
          }
          if (ok) {
            arch::Instr il = arch::MakeLoad(idx_arr.AddrOf(sub));
            il.pc = st.id * 16 + static_cast<std::uint32_t>(which) * 2;
            dep = static_cast<std::int32_t>(trace.size());
            trace.push_back(il);
          }
        }
        if (dep < 0) {
          // Post/wait ordering: the iteration's loads may not leave the
          // core before its wait has been granted.
          auto w = wait_at.find(j);
          if (w != wait_at.end()) dep = w->second;
        }
        arch::Instr ld = arch::MakeLoad(*addr, dep);
        ld.pc = st.id * 16 + static_cast<std::uint32_t>(which) * 2 + 1;
        load_at[{static_cast<int>(&st - nest.body.data()), j, which}] =
            static_cast<std::int32_t>(trace.size());
        trace.push_back(ld);
      };

      // Sync-lowered reduction statements. kNdcAtomic: the data load feeds
      // one remote fetch-add carrying the iteration's payload. kHostLock:
      // acquire -> guarded load/compute/store (never NDC-offloaded: the
      // accumulator line must not meet in-network while a lock orders it)
      // -> release carrying the payload for the engine's value map.
      auto emit_sync_stmt = [&](const Emission& e, const ir::Stmt& st, const ir::IntVec& iter) {
        auto find_at = [&](std::map<LoadKey, std::int32_t>& m2, int which) -> std::int32_t {
          auto it = m2.find({e.stmt, e.j, which});
          return it == m2.end() ? -1 : it->second;
        };
        auto lhs_addr = prog.ResolveAddr(st.lhs, iter);
        if (st.sync.kind == ir::SyncKind::kNdcAtomic) {
          if (e.phase == kLoad1) {
            emit_operand_load(st, st.rhs1, e.j, 1, kIdx1);
          } else if (e.phase == kComputeP && lhs_addr.has_value()) {
            arch::Instr sy = arch::MakeSync(sync::SyncOp::kAtomicAdd, *lhs_addr,
                                            ReductionPayload(iter), find_at(load_at, 1));
            sy.pc = st.id * 16 + kComputeP;
            trace.push_back(sy);
          }
          return;
        }
        switch (e.phase) {
          case kLoad0:  // data load, outside the critical section
            emit_operand_load(st, st.rhs1, e.j, 1, kIdx0);
            break;
          case kIdx1: {  // lock acquire on the accumulator cell
            if (!lhs_addr.has_value()) break;
            load_at[{e.stmt, e.j, 3}] = static_cast<std::int32_t>(trace.size());
            arch::Instr sy = arch::MakeSync(sync::SyncOp::kLockAcquire, *lhs_addr);
            sy.pc = st.id * 16 + kIdx1;
            trace.push_back(sy);
            break;
          }
          case kLoad1: {  // accumulator load, gated on the acquire
            emit_operand_load(st, st.rhs0, e.j, 0, kIdx1);
            std::int32_t acq = find_at(load_at, 3);
            std::int32_t ld = find_at(load_at, 0);
            if (ld >= 0 && acq >= 0 && trace[static_cast<std::size_t>(ld)].dep0 < 0) {
              trace[static_cast<std::size_t>(ld)].dep0 = acq;
            }
            break;
          }
          case kComputeP: {
            arch::Instr ci = arch::MakeCompute(st.op, find_at(load_at, 0), find_at(load_at, 1),
                                               /*candidate=*/false, st.id * 16 + kComputeP,
                                               st.id);
            compute_at[{e.stmt, e.j, 0}] = static_cast<std::int32_t>(trace.size());
            trace.push_back(ci);
            break;
          }
          case kStoreP: {
            if (!lhs_addr.has_value()) break;
            std::int32_t cmp = find_at(compute_at, 0);
            arch::Instr si = arch::MakeStore(*lhs_addr, cmp);
            si.pc = st.id * 16 + kStoreP;
            std::int32_t st_idx = static_cast<std::int32_t>(trace.size());
            trace.push_back(si);
            arch::Instr rel = arch::MakeSync(sync::SyncOp::kLockRelease, *lhs_addr,
                                             ReductionPayload(iter), st_idx);
            rel.pc = st.id * 16 + kStoreP;
            trace.push_back(rel);
            break;
          }
          default:
            break;
        }
      };

      for (const Emission& e : emissions) {
        if (e.stmt < 0) {
          // Wait pseudo-statement: consume the cross-core post of the
          // producing iteration one witness distance upstream. Same-core
          // producers are already ordered by the trace; they need no wait.
          const ir::IntVec& iter = iters[static_cast<std::size_t>(e.j)];
          ir::IntVec prod = iter;
          prod[0] -= nest.sync.distance;
          auto it = iter_pos.find(prod);
          if (it == iter_pos.end() || it->second.first == core) continue;
          const ir::Array& sa = prog.array(nest.sync.sync_array);
          sim::Addr paddr = sa.AddrOf({static_cast<ir::Int>(it->second.first)});
          wait_at[e.j] = static_cast<std::int32_t>(trace.size());
          trace.push_back(arch::MakeSync(sync::SyncOp::kWait, paddr, it->second.second + 1));
          continue;
        }
        if (e.stmt >= static_cast<int>(nest.body.size())) {
          // Post pseudo-statement: announce this iteration complete in this
          // core's post slot, after the iteration's last instruction.
          const ir::Array& sa = prog.array(nest.sync.sync_array);
          sim::Addr paddr = sa.AddrOf({static_cast<ir::Int>(core)});
          auto lit = last_at.find(e.j);
          std::int32_t dep = lit == last_at.end() ? -1 : lit->second;
          trace.push_back(arch::MakeSync(sync::SyncOp::kPost, paddr, 0, dep));
          continue;
        }
        const ir::Stmt& st = nest.body[static_cast<std::size_t>(e.stmt)];
        const ir::IntVec& iter = iters[static_cast<std::size_t>(e.j)];
        const std::size_t size_before = trace.size();
        if (st.sync.kind == ir::SyncKind::kNdcAtomic || st.sync.kind == ir::SyncKind::kHostLock) {
          emit_sync_stmt(e, st, iter);
          if (postwait && trace.size() > size_before) {
            last_at[e.j] = static_cast<std::int32_t>(trace.size()) - 1;
          }
          continue;
        }
        switch (e.phase) {
          case kIdx0:
          case kIdx1:
          case kIdxStore:
            break;  // folded into the load/store emission below
          case kLoad0:
            emit_operand_load(st, st.rhs0, e.j, 0, kIdx0);
            break;
          case kLoad1:
            emit_operand_load(st, st.rhs1, e.j, 1, kIdx1);
            break;
          case kComputeP: {
            auto find_load = [&](int which) -> std::int32_t {
              auto it = load_at.find({e.stmt, e.j, which});
              return it == load_at.end() ? -1 : it->second;
            };
            std::int32_t l0 = st.rhs0.IsMemory() ? find_load(0) : -1;
            std::int32_t l1 = st.rhs1.IsMemory() ? find_load(1) : -1;
            arch::Instr ci;
            bool both_mem = l0 >= 0 && l1 >= 0;
            bool offload_here = st.ndc.offload && both_mem;
            if (offload_here && cme != nullptr) {
              offload_here =
                  cme->PredictMissL1(e.stmt, analysis::OperandSel::kRhs0, iter) &&
                  cme->PredictMissL1(e.stmt, analysis::OperandSel::kRhs1, iter);
            }
            if (offload_here) {
              ci = arch::MakePreCompute(st.op, l0, l1, st.ndc.planned, st.ndc.timeout,
                                        st.id * 16 + kComputeP, st.id);
              ++out.precomputes;
            } else {
              ci = arch::MakeCompute(st.op, l0, l1, both_mem, st.id * 16 + kComputeP, st.id);
            }
            compute_at[{e.stmt, e.j, 0}] = static_cast<std::int32_t>(trace.size());
            trace.push_back(ci);
            break;
          }
          case kStoreP: {
            auto addr = prog.ResolveAddr(st.lhs, iter);
            if (!addr.has_value()) break;
            auto it = compute_at.find({e.stmt, e.j, 0});
            std::int32_t dep = it == compute_at.end() ? -1 : it->second;
            arch::Instr si = arch::MakeStore(*addr, dep);
            si.pc = st.id * 16 + kStoreP;
            trace.push_back(si);
            break;
          }
        }
        if (postwait && trace.size() > size_before) {
          last_at[e.j] = static_cast<std::int32_t>(trace.size()) - 1;
        }
      }
      if (nest.sync.barrier_after && nest.sync.sync_array >= 0 && participants > 0) {
        // Join the nest: every active core arrives at the barrier cell (the
        // sync array's last element) after its final instruction.
        const ir::Array& sa = prog.array(nest.sync.sync_array);
        sim::Addr baddr = sa.AddrOf({sa.dims[0] - 1});
        std::int32_t dep = trace.size() > nest_base
                               ? static_cast<std::int32_t>(trace.size()) - 1
                               : -1;
        trace.push_back(arch::MakeSync(sync::SyncOp::kBarrierArrive, baddr, participants, dep));
      }
    }
    for (const ir::Stmt& st : nest.body) {
      for (const ir::Operand* o : {&st.rhs0, &st.rhs1, &st.lhs}) {
        if (!o->IsMemory()) continue;
        warm_arrays.insert(o->kind == ir::Operand::Kind::kIndirect ? o->target_array
                                                                   : o->access.array);
      }
    }
  }
  for (const arch::Trace& t : out.traces) out.total_instrs += t.size();
  return out;
}

}  // namespace ndc::compiler
