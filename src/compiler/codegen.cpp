#include "compiler/codegen.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <memory>
#include <set>

#include "analysis/cme.hpp"

namespace ndc::compiler {
namespace {

// Emission phases give the within-slot program order: a statement's index
// loads precede its operand loads, then the computation, then the store.
enum Phase : int {
  kIdx0 = 0,
  kLoad0 = 1,
  kIdx1 = 2,
  kLoad1 = 3,
  kComputeP = 4,
  kIdxStore = 5,
  kStoreP = 6,
};

struct Emission {
  ir::Int slot = 0;   // position in the core's iteration sequence
  int stmt = 0;       // body index
  Phase phase = kLoad0;
  ir::Int j = 0;      // index of the computation's iteration in the core list

  bool operator<(const Emission& o) const {
    if (slot != o.slot) return slot < o.slot;
    if (j != o.j) return j < o.j;
    if (stmt != o.stmt) return stmt < o.stmt;
    return phase < o.phase;
  }
};

// Key for remembering where a load was emitted (for dependences).
struct LoadKey {
  int stmt;
  ir::Int j;
  int which;  // 0/1 = operand, 2 = store-index
  bool operator<(const LoadKey& o) const {
    if (stmt != o.stmt) return stmt < o.stmt;
    if (j != o.j) return j < o.j;
    return which < o.which;
  }
};

}  // namespace

int CoreForIteration(const ir::LoopNest& nest, const ir::IntVec& iter, int num_cores) {
  const ir::Loop& outer = nest.loops.front();
  ir::Int span = outer.hi - outer.lo + 1;
  ir::Int chunk = (span + num_cores - 1) / num_cores;
  ir::Int v = iter[0] - outer.lo;
  return static_cast<int>(std::min<ir::Int>(v / std::max<ir::Int>(1, chunk), num_cores - 1));
}

CodegenResult Lower(const ir::Program& prog, int num_cores, const arch::ArchConfig* cfg) {
  CodegenResult out;
  out.traces.assign(static_cast<std::size_t>(num_cores), {});

  std::set<int> warm_arrays;
  for (const ir::LoopNest& nest : prog.nests) {
    // Per-iteration CME gate for NDC-annotated statements: the pre-compute
    // is emitted only where both operands are predicted to miss the L1
    // (the paper's compiler "first checks whether x in S1 and y in S2
    // result in L1 misses"); other instances execute conventionally.
    std::unique_ptr<analysis::CmePredictor> cme;
    for (const ir::Stmt& st : nest.body) {
      if (st.ndc.offload) {
        analysis::CacheSpec l1 = cfg ? analysis::CacheSpec::From(cfg->l1) : analysis::CacheSpec{};
        analysis::CacheSpec l2 = cfg ? analysis::CacheSpec::From(cfg->l2)
                                     : analysis::CacheSpec{512 * 1024, 256, 64};
        cme = std::make_unique<analysis::CmePredictor>(prog, nest, l1, l2, num_cores, warm_arrays);
        break;
      }
    }

    // Partition iterations by core, preserving original order.
    std::vector<std::vector<ir::IntVec>> per_core(static_cast<std::size_t>(num_cores));
    nest.ForEachIteration([&](const ir::IntVec& iter) {
      per_core[static_cast<std::size_t>(CoreForIteration(nest, iter, num_cores))].push_back(iter);
    });

    for (int core = 0; core < num_cores; ++core) {
      std::vector<ir::IntVec>& iters = per_core[static_cast<std::size_t>(core)];
      if (iters.empty()) continue;
      if (nest.transform.has_value()) {
        const ir::IntMat& T = *nest.transform;
        std::stable_sort(iters.begin(), iters.end(),
                         [&](const ir::IntVec& a, const ir::IntVec& b) {
                           return ir::LexCompare(T.Apply(a), T.Apply(b)) < 0;
                         });
      }
      auto m = static_cast<ir::Int>(iters.size());
      auto clamp_slot = [m](ir::Int s) { return std::clamp<ir::Int>(s, 0, m - 1); };

      std::vector<Emission> emissions;
      emissions.reserve(static_cast<std::size_t>(m) * nest.body.size() * 4);
      for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
        const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
        ir::Int lead0 = st.ndc.offload ? st.ndc.lead0 : 0;
        ir::Int lead1 = st.ndc.offload ? st.ndc.lead1 : 0;
        for (ir::Int j = 0; j < m; ++j) {
          ir::Int slot0 = clamp_slot(j - lead0);
          ir::Int slot1 = clamp_slot(j - lead1);
          ir::Int slotc = std::max(slot0, slot1);
          if (st.rhs0.IsMemory()) {
            if (st.rhs0.kind == ir::Operand::Kind::kIndirect) {
              emissions.push_back({slot0, s, kIdx0, j});
            }
            emissions.push_back({slot0, s, kLoad0, j});
          }
          if (st.rhs1.IsMemory()) {
            if (st.rhs1.kind == ir::Operand::Kind::kIndirect) {
              emissions.push_back({slot1, s, kIdx1, j});
            }
            emissions.push_back({slot1, s, kLoad1, j});
          }
          emissions.push_back({slotc, s, kComputeP, j});
          if (st.lhs.IsMemory()) {
            if (st.lhs.kind == ir::Operand::Kind::kIndirect) {
              emissions.push_back({slotc, s, kIdxStore, j});
            }
            emissions.push_back({slotc, s, kStoreP, j});
          }
        }
      }
      std::stable_sort(emissions.begin(), emissions.end());

      arch::Trace& trace = out.traces[static_cast<std::size_t>(core)];
      std::map<LoadKey, std::int32_t> load_at;
      std::map<LoadKey, std::int32_t> compute_at;

      auto emit_operand_load = [&](const ir::Stmt& st, const ir::Operand& op, ir::Int j,
                                   int which, Phase idx_phase) {
        (void)idx_phase;
        const ir::IntVec& iter = iters[static_cast<std::size_t>(j)];
        auto addr = prog.ResolveAddr(op, iter);
        if (!addr.has_value()) return;
        std::int32_t dep = -1;
        if (op.kind == ir::Operand::Kind::kIndirect) {
          // Emit the index-array load first; the data load depends on it.
          const ir::Array& idx_arr = prog.array(op.access.array);
          ir::IntVec sub = op.access.Subscript(iter);
          bool ok = true;
          for (std::size_t d = 0; d < sub.size(); ++d) {
            ok &= sub[d] >= 0 && sub[d] < idx_arr.dims[d];
          }
          if (ok) {
            arch::Instr il = arch::MakeLoad(idx_arr.AddrOf(sub));
            il.pc = st.id * 16 + static_cast<std::uint32_t>(which) * 2;
            dep = static_cast<std::int32_t>(trace.size());
            trace.push_back(il);
          }
        }
        arch::Instr ld = arch::MakeLoad(*addr, dep);
        ld.pc = st.id * 16 + static_cast<std::uint32_t>(which) * 2 + 1;
        load_at[{static_cast<int>(&st - nest.body.data()), j, which}] =
            static_cast<std::int32_t>(trace.size());
        trace.push_back(ld);
      };

      for (const Emission& e : emissions) {
        const ir::Stmt& st = nest.body[static_cast<std::size_t>(e.stmt)];
        const ir::IntVec& iter = iters[static_cast<std::size_t>(e.j)];
        switch (e.phase) {
          case kIdx0:
          case kIdx1:
          case kIdxStore:
            break;  // folded into the load/store emission below
          case kLoad0:
            emit_operand_load(st, st.rhs0, e.j, 0, kIdx0);
            break;
          case kLoad1:
            emit_operand_load(st, st.rhs1, e.j, 1, kIdx1);
            break;
          case kComputeP: {
            auto find_load = [&](int which) -> std::int32_t {
              auto it = load_at.find({e.stmt, e.j, which});
              return it == load_at.end() ? -1 : it->second;
            };
            std::int32_t l0 = st.rhs0.IsMemory() ? find_load(0) : -1;
            std::int32_t l1 = st.rhs1.IsMemory() ? find_load(1) : -1;
            arch::Instr ci;
            bool both_mem = l0 >= 0 && l1 >= 0;
            bool offload_here = st.ndc.offload && both_mem;
            if (offload_here && cme != nullptr) {
              offload_here =
                  cme->PredictMissL1(e.stmt, analysis::OperandSel::kRhs0, iter) &&
                  cme->PredictMissL1(e.stmt, analysis::OperandSel::kRhs1, iter);
            }
            if (offload_here) {
              ci = arch::MakePreCompute(st.op, l0, l1, st.ndc.planned, st.ndc.timeout,
                                        st.id * 16 + kComputeP, st.id);
              ++out.precomputes;
            } else {
              ci = arch::MakeCompute(st.op, l0, l1, both_mem, st.id * 16 + kComputeP, st.id);
            }
            compute_at[{e.stmt, e.j, 0}] = static_cast<std::int32_t>(trace.size());
            trace.push_back(ci);
            break;
          }
          case kStoreP: {
            auto addr = prog.ResolveAddr(st.lhs, iter);
            if (!addr.has_value()) break;
            auto it = compute_at.find({e.stmt, e.j, 0});
            std::int32_t dep = it == compute_at.end() ? -1 : it->second;
            arch::Instr si = arch::MakeStore(*addr, dep);
            si.pc = st.id * 16 + kStoreP;
            trace.push_back(si);
            break;
          }
        }
      }
    }
    for (const ir::Stmt& st : nest.body) {
      for (const ir::Operand* o : {&st.rhs0, &st.rhs1, &st.lhs}) {
        if (!o->IsMemory()) continue;
        warm_arrays.insert(o->kind == ir::Operand::Kind::kIndirect ? o->target_array
                                                                   : o->access.array);
      }
    }
  }
  for (const arch::Trace& t : out.traces) out.total_instrs += t.size();
  return out;
}

}  // namespace ndc::compiler
