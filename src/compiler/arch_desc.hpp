#pragma once

#include "arch/config.hpp"
#include "mem/address_map.hpp"
#include "noc/geometry.hpp"
#include "noc/routing.hpp"
#include "sim/types.hpp"

namespace ndc::compiler {

/// The architecture description fed to the compiler (Figure 7): hardware
/// parameters plus closed-form latency estimates used by the cost model
/// that sizes access movements (Δ) and breakeven-based time-outs.
class ArchDescription {
 public:
  explicit ArchDescription(const arch::ArchConfig& cfg)
      : cfg_(cfg), mesh_(cfg.mesh_width, cfg.mesh_height), amap_(cfg.MakeAddressMap()),
        mc_nodes_(cfg.McNodes()) {}

  const arch::ArchConfig& cfg() const { return cfg_; }
  const noc::Mesh& mesh() const { return mesh_; }
  const mem::AddressMap& amap() const { return amap_; }

  sim::NodeId McNode(sim::Addr addr) const {
    return mc_nodes_[static_cast<std::size_t>(amap_.Mc(addr))];
  }

  /// Average issue cycles per instruction assumed by the cost model.
  double cpi() const { return 0.75; }

  /// Uncontended one-way latency of a `bytes`-sized message over `hops`.
  sim::Cycle HopLatency(int hops, int bytes) const {
    sim::Cycle ser = static_cast<sim::Cycle>((bytes + cfg_.noc.link_bytes - 1) / cfg_.noc.link_bytes);
    return static_cast<sim::Cycle>(hops) * (cfg_.noc.router_pipeline + ser);
  }

  /// Average DRAM access latency (between row hit and row miss).
  sim::Cycle DramAvg() const {
    return (cfg_.dram.row_hit_latency + cfg_.dram.row_miss_latency) / 2;
  }

  /// Estimated cycles from load issue until the data is present at `loc`
  /// for an access from `core` to `addr`, given the CME's L2 hit/miss
  /// prediction. Returns kNeverCycle when the data never visits `loc`
  /// (e.g. a memory-queue target for a predicted L2 hit).
  sim::Cycle EstDataAtLoc(sim::NodeId core, sim::Addr addr, arch::Loc loc, bool l2_miss) const {
    sim::NodeId home = amap_.HomeBank(addr);
    sim::Cycle t = cfg_.l1.access_latency;                  // L1 probe
    t += HopLatency(mesh_.Distance(core, home), 8);         // request to home
    switch (loc) {
      case arch::Loc::kCacheCtrl:
        t += cfg_.l2.access_latency;
        if (l2_miss) {
          t += HopLatency(mesh_.Distance(home, McNode(addr)), 8) + DramAvg() +
               HopLatency(mesh_.Distance(McNode(addr), home), 256);
        }
        return t;
      case arch::Loc::kMemCtrl:
      case arch::Loc::kMemBank:
        if (!l2_miss) return sim::kNeverCycle;
        return t + cfg_.l2.access_latency +
               HopLatency(mesh_.Distance(home, McNode(addr)), 8) + DramAvg();
      case arch::Loc::kLinkBuffer: {
        // Data enters the response network right after the L2 bank (or the
        // MC on a miss); meeting links sit on the way back to the core.
        sim::Cycle at_l2 = t + cfg_.l2.access_latency;
        if (l2_miss) {
          at_l2 += HopLatency(mesh_.Distance(home, McNode(addr)), 8) + DramAvg() +
                   HopLatency(mesh_.Distance(McNode(addr), home), 256);
        }
        // Half-way along the response path on average.
        return at_l2 + HopLatency(mesh_.Distance(home, core) / 2, 64);
      }
    }
    return sim::kNeverCycle;
  }

  /// Estimated cycles until the data reaches the core (conventional path).
  sim::Cycle EstDataAtCore(sim::NodeId core, sim::Addr addr, bool l1_miss, bool l2_miss) const {
    if (!l1_miss) return cfg_.l1.access_latency;
    sim::Cycle t = EstDataAtLoc(core, addr, arch::Loc::kCacheCtrl, l2_miss);
    sim::NodeId home = amap_.HomeBank(addr);
    return t + HopLatency(mesh_.Distance(home, core), 64);
  }

  /// Node hosting `loc` for an address (meeting-point placement).
  sim::NodeId LocNode(sim::Addr addr, arch::Loc loc, sim::NodeId core) const {
    switch (loc) {
      case arch::Loc::kCacheCtrl: return amap_.HomeBank(addr);
      case arch::Loc::kMemCtrl:
      case arch::Loc::kMemBank: return McNode(addr);
      case arch::Loc::kLinkBuffer: {
        // Approximate meeting router: midpoint of the home->core path.
        noc::Route r = noc::XyRoute(mesh_, amap_.HomeBank(addr), core);
        if (r.empty()) return core;
        return mesh_.LinkSource(r[r.size() / 2]);
      }
    }
    return core;
  }

 private:
  arch::ArchConfig cfg_;
  noc::Mesh mesh_;
  mem::AddressMap amap_;
  std::vector<sim::NodeId> mc_nodes_;
};

}  // namespace ndc::compiler
