#include "compiler/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>

#include "analysis/cme.hpp"
#include "analysis/dependence.hpp"
#include "analysis/reuse.hpp"
#include "analysis/use_use.hpp"
#include "compiler/codegen.hpp"
#include "verify/verify.hpp"
#include "xform/transform.hpp"

namespace ndc::compiler {
namespace {

using analysis::CmePredictor;
using analysis::OperandSel;

// The component trial order of Section 5.2.1: network router (L1-miss
// responses), L2 bank, network router again (L2-miss responses), memory
// queue, memory bank. The two router attempts both plan Loc::kLinkBuffer
// but differ in which path segment must overlap and in the CME gate.
enum class Target { kRouter1, kL2Bank, kRouter2, kMemQueue, kMemBank };

arch::Loc TargetLoc(Target t) {
  switch (t) {
    case Target::kRouter1:
    case Target::kRouter2: return arch::Loc::kLinkBuffer;
    case Target::kL2Bank: return arch::Loc::kCacheCtrl;
    case Target::kMemQueue: return arch::Loc::kMemCtrl;
    case Target::kMemBank: return arch::Loc::kMemBank;
  }
  return arch::Loc::kCacheCtrl;
}

struct SampleSet {
  std::vector<ir::IntVec> iters;
  std::vector<int> cores;
  std::vector<sim::Addr> a, b;
};

SampleSet CollectSamples(const ir::Program& prog, const ir::LoopNest& nest,
                         const ir::Stmt& stmt, int num_cores, int want) {
  SampleSet s;
  ir::Int total = nest.NumIterations();
  // Odd stride: avoid aliasing with cache-line / bank power-of-two periods.
  ir::Int step = std::max<ir::Int>(1, total / std::max(1, want)) | 1;
  ir::Int n = 0;
  nest.ForEachIteration([&](const ir::IntVec& iter) {
    if (n++ % step != 0) return;
    auto a = prog.ResolveAddr(stmt.rhs0, iter);
    auto b = prog.ResolveAddr(stmt.rhs1, iter);
    if (!a || !b) return;
    s.iters.push_back(iter);
    s.cores.push_back(CoreForIteration(nest, iter, num_cores));
    s.a.push_back(*a);
    s.b.push_back(*b);
  });
  return s;
}

// Fraction of samples where `target` is address-feasible.
double FeasibleFraction(const ArchDescription& ad, const SampleSet& s, Target target,
                        bool allow_reroute) {
  if (s.iters.empty()) return 0.0;
  const mem::AddressMap& amap = ad.amap();
  int ok = 0;
  for (std::size_t i = 0; i < s.iters.size(); ++i) {
    sim::Addr a = s.a[i], b = s.b[i];
    switch (target) {
      case Target::kL2Bank:
        ok += amap.HomeBank(a) == amap.HomeBank(b);
        break;
      case Target::kMemQueue:
        ok += amap.Mc(a) == amap.Mc(b);
        break;
      case Target::kMemBank:
        ok += amap.Mc(a) == amap.Mc(b) && amap.DramBank(a) == amap.DramBank(b);
        break;
      case Target::kRouter1: {
        sim::NodeId core = s.cores[i];
        sim::NodeId ha = amap.HomeBank(a), hb = amap.HomeBank(b);
        noc::RoutePair p = allow_reroute
                               ? noc::MaxOverlapRoutes(ad.mesh(), ha, core, hb, core)
                               : noc::RoutePair{noc::XyRoute(ad.mesh(), ha, core),
                                                noc::XyRoute(ad.mesh(), hb, core),
                                                noc::Signature{}, 0};
        if (!allow_reroute) {
          p.shared = noc::Signature::FromRoute(p.a).Intersect(noc::Signature::FromRoute(p.b));
          p.shared_links = p.shared.Popcount();
        }
        ok += p.shared_links > 0;
        break;
      }
      case Target::kRouter2: {
        sim::NodeId ha = amap.HomeBank(a), hb = amap.HomeBank(b);
        sim::NodeId ma = ad.McNode(a), mb = ad.McNode(b);
        noc::RoutePair p = allow_reroute
                               ? noc::MaxOverlapRoutes(ad.mesh(), ma, ha, mb, hb)
                               : noc::RoutePair{noc::XyRoute(ad.mesh(), ma, ha),
                                                noc::XyRoute(ad.mesh(), mb, hb),
                                                noc::Signature{}, 0};
        if (!allow_reroute) {
          p.shared = noc::Signature::FromRoute(p.a).Intersect(noc::Signature::FromRoute(p.b));
          p.shared_links = p.shared.Popcount();
        }
        ok += p.shared_links > 0;
        break;
      }
    }
  }
  return static_cast<double>(ok) / static_cast<double>(s.iters.size());
}

struct GapEstimate {
  double gap_cycles = 0.0;      // lat(y@loc) - lat(x@loc), averaged
  sim::Cycle breakeven = 4;
};

GapEstimate EstimateGap(const ArchDescription& ad, const SampleSet& s, arch::Loc loc,
                        bool l2_miss_x, bool l2_miss_y) {
  GapEstimate g;
  if (s.iters.empty()) return g;
  double sum_gap = 0.0;
  double sum_breakeven = 0.0;
  int n = 0;
  for (std::size_t i = 0; i < s.iters.size(); ++i) {
    sim::NodeId core = s.cores[i];
    sim::Cycle lx = ad.EstDataAtLoc(core, s.a[i], loc, l2_miss_x);
    sim::Cycle ly = ad.EstDataAtLoc(core, s.b[i], loc, l2_miss_y);
    if (lx == sim::kNeverCycle || ly == sim::kNeverCycle) continue;
    sum_gap += static_cast<double>(ly) - static_cast<double>(lx);
    sim::Cycle conv = std::max(ad.EstDataAtCore(core, s.a[i], true, l2_miss_x),
                               ad.EstDataAtCore(core, s.b[i], true, l2_miss_y)) +
                      1;
    sim::NodeId loc_node = ad.LocNode(s.a[i], loc, core);
    sim::Cycle ret = ad.HopLatency(ad.mesh().Distance(loc_node, core), 8) +
                     ad.cfg().noc.router_pipeline;
    sim::Cycle first = std::min(lx, ly);
    sim::Cycle ndc_base = first + 1 + ret;
    sum_breakeven += ndc_base < conv ? static_cast<double>(conv - ndc_base) : 0.0;
    ++n;
  }
  if (n == 0) return g;
  g.gap_cycles = sum_gap / n;
  g.breakeven = std::max<sim::Cycle>(4, static_cast<sim::Cycle>(sum_breakeven / n));
  return g;
}

int InstrsPerIteration(const ir::LoopNest& nest) {
  int n = 0;
  for (const ir::Stmt& s : nest.body) {
    if (s.rhs0.IsMemory()) n += s.rhs0.kind == ir::Operand::Kind::kIndirect ? 2 : 1;
    if (s.rhs1.IsMemory()) n += s.rhs1.kind == ir::Operand::Kind::kIndirect ? 2 : 1;
    n += 1;  // compute
    if (s.lhs.IsMemory()) n += 1;
  }
  return std::max(1, n);
}

int OperandArray(const ir::Operand& op) {
  return op.kind == ir::Operand::Kind::kIndirect ? op.target_array : op.access.array;
}

}  // namespace

namespace {

// Post-pass audit (CompileOptions::verify_after): re-checks the annotated
// program with the independent verifier, mirroring the pipeline's own
// annotation limits.
void RunVerifier(const ir::Program& prog, const CompileOptions& opt, CompileReport* rep) {
  verify::VerifyOptions vo;
  vo.max_lead = opt.max_lead;
  vo.control_register = opt.control_register;
  rep->verify = verify::VerifyProgram(prog, vo);
}

}  // namespace

CompileReport Compile(ir::Program& prog, const ArchDescription& ad, const CompileOptions& opt) {
  CompileReport rep;
  if (opt.mode == Mode::kBaseline) {
    if (opt.verify_after) RunVerifier(prog, opt, &rep);
    return rep;
  }
  int num_cores = ad.cfg().num_nodes();
  analysis::CacheSpec l1 = analysis::CacheSpec::From(ad.cfg().l1);
  analysis::CacheSpec l2 = analysis::CacheSpec::From(ad.cfg().l2);

  std::set<int> warm_arrays;
  // Arrays referenced by nests after the current one (suffix sets): a
  // memory-side NDC computation squashes the L2 fill, so offloading an
  // array that a later nest re-reads starves that nest.
  std::vector<std::set<int>> later_arrays(prog.nests.size() + 1);
  for (int n = static_cast<int>(prog.nests.size()) - 1; n >= 0; --n) {
    later_arrays[static_cast<std::size_t>(n)] = later_arrays[static_cast<std::size_t>(n) + 1];
    for (const ir::Stmt& st : prog.nests[static_cast<std::size_t>(n)].body) {
      for (const ir::Operand* o : {&st.rhs0, &st.rhs1}) {
        if (!o->IsMemory()) continue;
        later_arrays[static_cast<std::size_t>(n)].insert(
            o->kind == ir::Operand::Kind::kIndirect ? o->target_array : o->access.array);
      }
    }
  }
  int nest_index = -1;
  for (ir::LoopNest& nest : prog.nests) {
    ++nest_index;
    analysis::DependenceSet deps = analysis::AnalyzeDependences(prog, nest);
    CmePredictor cme(prog, nest, l1, l2, num_cores, warm_arrays);
    auto chains = analysis::ExtractUseUseChains(nest);
    ir::Int inner_trip = 1;
    if (nest.depth() > 0) {
      const ir::Loop& inner = nest.loops.back();
      inner_trip = std::max<ir::Int>(1, inner.hi - inner.lo + 1);
    }
    double iter_cycles = InstrsPerIteration(nest) * ad.cpi();

    std::array<int, arch::kNumLocs> nest_loc_votes{};

    for (const analysis::UseUseChain& chain : chains) {
      ir::Stmt& stmt = nest.body[static_cast<std::size_t>(chain.stmt_idx)];
      ++rep.chains;

      // Sync-lowered statements never offload: the RMW either collapses to
      // a remote atomic or runs under a lock, and the NDC meeting machinery
      // must not race the synchronization that orders it.
      if (stmt.sync.kind != ir::SyncKind::kNone) continue;

      // Algorithm 2 (Section 5.3): favor data locality whenever an operand
      // is reused beyond the computation (more than k times).
      if (opt.mode == Mode::kAlgorithm2) {
        // Element reuse (the paper's check) plus line (spatial) reuse: an
        // offload squashes the L1 line fill, so a spatially-reused operand
        // also loses locality.
        auto reuses = [&](const ir::Operand& op) {
          int n = analysis::CountFutureReuses(prog, nest, stmt, op, opt.reuse_k + 1);
          if (analysis::AnalyzeReuse(prog, nest, op, ad.cfg().l1.line_bytes).self_spatial) ++n;
          return n;
        };
        if (reuses(stmt.rhs0) > opt.reuse_k || reuses(stmt.rhs1) > opt.reuse_k) {
          ++rep.reuse_skips;
          continue;
        }
      }

      SampleSet samples =
          CollectSamples(prog, nest, stmt, num_cores, opt.samples_per_chain);
      if (samples.iters.empty()) {
        ++rep.gating_failures;
        continue;
      }

      double miss_l1_x = cme.MissProbL1(chain.stmt_idx, OperandSel::kRhs0);
      double miss_l1_y = cme.MissProbL1(chain.stmt_idx, OperandSel::kRhs1);
      double miss_l2_x = cme.MissProbL2(chain.stmt_idx, OperandSel::kRhs0);
      double miss_l2_y = cme.MissProbL2(chain.stmt_idx, OperandSel::kRhs1);

      bool planned = false;
      // Trial order: "the order of components tried exactly matches the
      // path followed by a data access" (Section 5.2.1). For operands the
      // CME predicts L2-resident, the data path is L2 bank -> routers; for
      // predicted L2 misses the data appears at the memory queue and bank
      // first, then the L2-miss-path routers, then the L2 bank.
      bool both_l2_miss = miss_l2_x >= opt.miss_gate && miss_l2_y >= opt.miss_gate;
      std::array<Target, 5> order =
          both_l2_miss ? std::array<Target, 5>{Target::kMemBank, Target::kMemQueue,
                                               Target::kRouter2, Target::kL2Bank,
                                               Target::kRouter1}
                       : std::array<Target, 5>{Target::kL2Bank, Target::kRouter1,
                                               Target::kRouter2, Target::kMemQueue,
                                               Target::kMemBank};
      for (Target target : order) {
        arch::Loc loc = TargetLoc(target);
        if (!(opt.control_register & arch::LocBit(loc))) continue;

        // CME gating (Algorithm 1 lines 9/14/19/24: "CME (x,y) in L2
        // bank"): both operands must actually travel to the target
        // component. All targets need L1 misses; the L2 bank and the
        // L1-miss-path routers additionally need the data to be L2-resident,
        // while the L2-miss-path router, memory queue, and memory bank need
        // predicted L2 misses.
        if (miss_l1_x < opt.miss_gate || miss_l1_y < opt.miss_gate) break;
        bool needs_l2_miss = target == Target::kRouter2 || target == Target::kMemQueue ||
                             target == Target::kMemBank;
        if (needs_l2_miss && (miss_l2_x < opt.miss_gate || miss_l2_y < opt.miss_gate)) {
          continue;
        }
        // Memory-side meets consume the data before the L2 fill: never plan
        // them for arrays a later nest (or time step) reads again.
        if (needs_l2_miss) {
          const std::set<int>& later = later_arrays[static_cast<std::size_t>(nest_index) + 1];
          if (later.count(OperandArray(stmt.rhs0)) != 0 ||
              later.count(OperandArray(stmt.rhs1)) != 0) {
            continue;
          }
        }

        if (FeasibleFraction(ad, samples, target, opt.allow_reroute) <
            opt.feasibility_threshold) {
          continue;
        }

        bool l2mx = needs_l2_miss || miss_l2_x >= opt.miss_gate;
        bool l2my = needs_l2_miss || miss_l2_y >= opt.miss_gate;
        GapEstimate gap = EstimateGap(ad, samples, loc, l2mx, l2my);

        // Desired movement in iterations: positive lead hoists the access.
        ir::Int want = std::llround(gap.gap_cycles / std::max(iter_cycles, 0.25));

        // Coarse-grain ablation: map the whole nest without per-chain
        // movement (Section 5.4: performs poorly).
        if (opt.mode == Mode::kCoarseGrain) want = 0;

        if (std::llabs(want) > opt.max_lead) {
          ++rep.gating_failures;
          continue;
        }

        int ax = OperandArray(stmt.rhs0);
        int ay = OperandArray(stmt.rhs1);
        std::optional<std::pair<ir::Int, ir::Int>> leads;  // (lead0, lead1)
        // Strategy (b): keep x, move y (Figure 8b).
        if (deps.ReadHoistIsSafe(ay, want, inner_trip)) {
          leads = {{0, want}};
        } else if (deps.ReadHoistIsSafe(ax, -want, inner_trip)) {
          // Strategy (c): keep y, move x (Figure 8c).
          leads = {{-want, 0}};
          ++rep.legality_failures;  // strategy (b) was rejected
        } else if (deps.ReadHoistIsSafe(ay, want / 2, inner_trip) &&
                   deps.ReadHoistIsSafe(ax, -(want - want / 2), inner_trip)) {
          // Strategy (d): move both (Figure 8d).
          leads = {{-(want - want / 2), want / 2}};
          ++rep.legality_failures;
        } else {
          rep.legality_failures += 3;
          // Last resort (array case of Section 5.2.1): look for a legal
          // loop transformation T mapping y's access iteration next to x's.
          // Annotated-parallel nests are off limits: a transform reorders
          // the levels, and the annotation's proof names a specific one.
          if (!deps.has_unknown && nest.depth() >= 2 && !nest.transform.has_value() &&
              nest.parallel.level < 0 && want != 0) {
            ir::IntMat D = deps.DependenceMatrix(nest.depth());
            ir::IntMat T = xform::FindTransform(D, nest.depth(), [&](const ir::IntMat& cand) {
              // Prefer transforms that bring the reuse pair closer in the
              // new schedule: approximate by the schedule distance of the
              // desired shift vector.
              ir::IntVec shift(static_cast<std::size_t>(nest.depth()), 0);
              shift.back() = want;
              ir::IntVec mapped = cand.Apply(shift);
              double d = 0;
              for (ir::Int v : mapped) d = d * 1000.0 + std::llabs(v);
              return d;
            });
            if (!(T == ir::IntMat::Identity(nest.depth()))) {
              nest.transform = T;
              ++rep.transforms;
              leads = {{0, 0}};
            }
          }
          if (!leads.has_value()) continue;
        }

        stmt.ndc.offload = true;
        stmt.ndc.planned = loc;
        // Time-out register value: the statically estimated breakeven. For
        // affine operand pairs the arrival gap is deterministic, so add
        // headroom for the queueing the uncontended cost model cannot see;
        // indirect operands have unpredictable windows (Figure 5), so
        // waiting beyond the analytic breakeven only loses.
        bool predictable = stmt.rhs0.kind == ir::Operand::Kind::kAffine &&
                           stmt.rhs1.kind == ir::Operand::Kind::kAffine;
        stmt.ndc.timeout = opt.mode == Mode::kCoarseGrain
                               ? ad.cfg().default_timeout
                               : (predictable ? gap.breakeven * 2 + 32 : gap.breakeven);
        stmt.ndc.lead0 = leads->first;
        stmt.ndc.lead1 = leads->second;
        ++rep.planned;
        ++rep.planned_at_loc[static_cast<std::size_t>(loc)];
        ++nest_loc_votes[static_cast<std::size_t>(loc)];
        planned = true;
        break;
      }
      if (!planned && !stmt.ndc.offload) ++rep.gating_failures;
    }
    for (const ir::Stmt& st : nest.body) {
      for (const ir::Operand* o : {&st.rhs0, &st.rhs1, &st.lhs}) {
        if (!o->IsMemory()) continue;
        warm_arrays.insert(o->kind == ir::Operand::Kind::kIndirect ? o->target_array
                                                                   : o->access.array);
      }
    }
  }
  if (opt.verify_after) RunVerifier(prog, opt, &rep);
  return rep;
}

}  // namespace ndc::compiler
