#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "compiler/arch_desc.hpp"
#include "ir/program.hpp"
#include "verify/diagnostics.hpp"

namespace ndc::compiler {

/// Which NDC pass to run after parallelization/locality (Figure 7).
enum class Mode {
  kBaseline,    ///< no NDC annotations (original program)
  kAlgorithm1,  ///< computation restructuring (Section 5.2)
  kAlgorithm2,  ///< reuse-aware restructuring (Section 5.3)
  kCoarseGrain, ///< whole-nest mapping ablation (Section 5.4, last paragraph)
};

inline const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kBaseline: return "baseline";
    case Mode::kAlgorithm1: return "algorithm-1";
    case Mode::kAlgorithm2: return "algorithm-2";
    case Mode::kCoarseGrain: return "coarse-grain";
  }
  return "?";
}

struct CompileOptions {
  Mode mode = Mode::kAlgorithm1;
  int reuse_k = 0;           ///< Algorithm 2's k (paper default: 0)
  bool allow_reroute = true; ///< NoC signature co-selection (Section 5.2.1)
  std::uint8_t control_register = arch::kAllLocs;  ///< target NDC locations
  double feasibility_threshold = 0.5;  ///< min fraction of iterations feasible
  double miss_gate = 0.5;              ///< min CME miss probability to offload
  ir::Int max_lead = 64;               ///< cap on access movement (iterations)
  int samples_per_chain = 32;          ///< iteration samples for the cost model
  /// Run the independent verifier (src/verify) over the annotated program
  /// after the pass and attach its findings to the report. On by default:
  /// a pipeline bug that emits an illegal transform or an unsafe access
  /// movement is a correctness error everywhere, not just in tests.
  bool verify_after = true;
};

/// What the compiler did (for reports, tests, and Figure 15).
struct CompileReport {
  std::uint64_t chains = 0;            ///< use-use chains examined
  std::uint64_t planned = 0;           ///< chains annotated for NDC
  std::uint64_t reuse_skips = 0;       ///< chains skipped by Algorithm 2's gate
  std::uint64_t legality_failures = 0; ///< movements rejected by dependences
  std::uint64_t gating_failures = 0;   ///< rejected by CME / feasibility
  std::uint64_t transforms = 0;        ///< nests given a schedule transform
  std::array<std::uint64_t, arch::kNumLocs> planned_at_loc{};
  /// Post-pass audit findings (populated when CompileOptions::verify_after).
  verify::Report verify;

  double PlannedFraction() const {
    return chains == 0 ? 0.0 : static_cast<double>(planned) / static_cast<double>(chains);
  }
};

/// Runs the selected NDC pass over the program in place (annotating
/// statements and possibly attaching schedule transforms), mirroring
/// Algorithm 1 / Algorithm 2 of the paper.
CompileReport Compile(ir::Program& prog, const ArchDescription& ad, const CompileOptions& opt);

}  // namespace ndc::compiler
