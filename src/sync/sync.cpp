#include "sync/sync.hpp"

#include <utility>

namespace ndc::sync {

void SyncManager::Enqueue(sim::NodeId node, SyncRequest req) {
  used_ = true;
  ++stats_.ops;
  if (IsAtomicOp(req.op)) ++stats_.atomics_issued;
  req.enqueued_at = eq_.now();
  Engine& e = engines_[node];
  e.queue.push_back(std::move(req));
  if (!e.busy) {
    e.busy = true;
    ScheduleService(node);
  }
}

void SyncManager::ScheduleService(sim::NodeId node) {
  eq_.ScheduleAfter(params_.service_latency, [this, node] { Service(node); });
}

void SyncManager::Service(sim::NodeId node) {
  Engine& e = engines_[node];
  SyncRequest req = std::move(e.queue.front());
  e.queue.pop_front();
  sim::Cycle elapsed = eq_.now() - req.enqueued_at;
  sim::Cycle wait = elapsed > params_.service_latency ? elapsed - params_.service_latency : 0;
  stats_.queue_wait_cycles += wait;
  if (reg_ != nullptr) {
    reg_->histogram("sync/engine." + std::to_string(node) + "/queue_wait")->Add(wait);
  }
  Execute(std::move(req));
  if (e.queue.empty()) {
    e.busy = false;
  } else {
    ScheduleService(node);
  }
}

void SyncManager::Execute(SyncRequest&& req) {
  switch (req.op) {
    case SyncOp::kAtomicAdd:
      values_[req.addr] += req.arg;
      ++stats_.atomics_completed;
      Grant(req);
      break;
    case SyncOp::kAtomicCas:
      if (values_[req.addr] == req.arg) values_[req.addr] = req.arg2;
      ++stats_.atomics_completed;
      Grant(req);
      break;
    case SyncOp::kLockAcquire: {
      LockState& l = locks_[req.addr];
      std::uint64_t ticket = l.next_ticket++;
      if (ticket == l.now_serving) {
        ++stats_.lock_acquires;
        Grant(req);
      } else {
        l.waiters.push_back(std::move(req));  // engine-FIFO arrival == ticket order
      }
      break;
    }
    case SyncOp::kLockRelease: {
      LockState& l = locks_[req.addr];
      ++l.now_serving;
      ++stats_.lock_releases;
      // The release carries the critical section's RMW delta: applying it
      // at the engine keeps the cell's value path identical to the atomic
      // scheme's, so cross-scheme totals agree.
      if (req.arg != 0) values_[req.addr] += req.arg;
      Grant(req);
      if (!l.waiters.empty()) {
        SyncRequest next = std::move(l.waiters.front());
        l.waiters.pop_front();
        ++stats_.lock_acquires;
        Grant(next);
      }
      break;
    }
    case SyncOp::kBarrierArrive: {
      BarrierState& b = barriers_[req.addr];
      ++stats_.barrier_arrivals;
      b.waiting.push_back(std::move(req));
      if (static_cast<std::int64_t>(b.waiting.size()) >= b.waiting.back().arg) {
        for (const SyncRequest& w : b.waiting) {
          ++stats_.barrier_departures;
          Grant(w);
        }
        b.waiting.clear();  // barrier resets for its next generation
      }
      break;
    }
    case SyncOp::kPost: {
      ++stats_.posts;
      std::int64_t count = ++post_counts_[req.addr];
      Grant(req);
      auto it = wait_parked_.find(req.addr);
      if (it != wait_parked_.end()) {
        std::vector<SyncRequest> still;
        for (SyncRequest& w : it->second) {
          if (w.arg <= count) {
            Grant(w);
          } else {
            still.push_back(std::move(w));
          }
        }
        it->second = std::move(still);
      }
      break;
    }
    case SyncOp::kWait:
      ++stats_.waits;
      if (post_counts_[req.addr] >= req.arg) {
        Grant(req);
      } else {
        wait_parked_[req.addr].push_back(std::move(req));
      }
      break;
  }
}

void SyncManager::Grant(const SyncRequest& req) {
  stats_.stall_cycles += eq_.now() - req.issued_at;
  if constexpr (obs::kObsEnabled) {
    if (sampler_ != nullptr) {
      sampler_->Note(obs::Signal::kSyncStall, eq_.now(), eq_.now() - req.issued_at);
    }
  }
  req.grant(req, eq_.now());
}

void SyncManager::MaterializeInto(sim::StatSet& out) const {
  if (!used_) return;
  out.Add("sync.ops", stats_.ops);
  out.Add("sync.atomics_issued", stats_.atomics_issued);
  out.Add("sync.atomics_completed", stats_.atomics_completed);
  out.Add("sync.lock_acquires", stats_.lock_acquires);
  out.Add("sync.lock_releases", stats_.lock_releases);
  out.Add("sync.barrier_arrivals", stats_.barrier_arrivals);
  out.Add("sync.barrier_departures", stats_.barrier_departures);
  out.Add("sync.posts", stats_.posts);
  out.Add("sync.waits", stats_.waits);
  out.Add("sync.stall_cycles", stats_.stall_cycles);
  out.Add("sync.queue_wait_cycles", stats_.queue_wait_cycles);
}

}  // namespace ndc::sync
