#pragma once

#include <cstdint>

namespace ndc::sync {

/// Synchronization operations served by the per-slice sync engines
/// (SynCron-style: dedicated low-latency synchronization units colocated
/// with the LLC slices / NDC nodes). Each op is carried by one 8-byte NoC
/// request packet and answered by one 8-byte response packet.
enum class SyncOp : std::uint8_t {
  kBarrierArrive,  ///< arrive at barrier `addr`; granted when arg peers arrived
  kLockAcquire,    ///< take a ticket for the lock at `addr`; granted in order
  kLockRelease,    ///< release the lock at `addr` (arg = guarded RMW delta)
  kAtomicAdd,      ///< remote fetch-add: value[addr] += arg
  kAtomicCas,      ///< remote CAS: if value[addr] == arg then value[addr] = arg2
  kPost,           ///< increment the post counter at `addr`
  kWait,           ///< granted once post counter at `addr` >= arg
};

inline const char* SyncOpName(SyncOp op) {
  switch (op) {
    case SyncOp::kBarrierArrive: return "barrier";
    case SyncOp::kLockAcquire: return "acquire";
    case SyncOp::kLockRelease: return "release";
    case SyncOp::kAtomicAdd: return "fetch-add";
    case SyncOp::kAtomicCas: return "cas";
    case SyncOp::kPost: return "post";
    case SyncOp::kWait: return "wait";
  }
  return "?";
}

inline bool IsAtomicOp(SyncOp op) {
  return op == SyncOp::kAtomicAdd || op == SyncOp::kAtomicCas;
}

}  // namespace ndc::sync
