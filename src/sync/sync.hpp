#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "sync/ops.hpp"

namespace ndc::sync {

/// Tuning knobs for the sync engines.
struct SyncParams {
  /// Cycles an engine spends servicing one request (its occupancy per op);
  /// back-to-back requests at one engine serialize at this rate.
  sim::Cycle service_latency = 2;
};

/// One synchronization request as seen by an engine. The transport owner
/// (ndc::Machine) fills `grant` with the response path back to the issuing
/// core; the engine calls it exactly once, when the request is granted.
struct SyncRequest {
  SyncOp op = SyncOp::kAtomicAdd;
  sim::Addr addr = 0;        ///< synchronization object (lock/barrier/cell/slot)
  std::int64_t arg = 0;      ///< op-specific: add delta / expected / threshold
  std::int64_t arg2 = 0;     ///< kAtomicCas only: desired value
  sim::NodeId core = 0;      ///< issuing core
  std::uint32_t slot = 0;    ///< trace slot to complete on grant
  sim::Cycle issued_at = 0;  ///< cycle the core issued the op (stall accounting)
  std::function<void(const SyncRequest&, sim::Cycle)> grant;

  sim::Cycle enqueued_at = 0;  ///< set by the engine on arrival
};

/// Aggregate engine counters (also the source of the conservation fields).
struct SyncStats {
  std::uint64_t ops = 0;
  std::uint64_t atomics_issued = 0;
  std::uint64_t atomics_completed = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_releases = 0;
  std::uint64_t barrier_arrivals = 0;
  std::uint64_t barrier_departures = 0;
  std::uint64_t posts = 0;
  std::uint64_t waits = 0;
  std::uint64_t stall_cycles = 0;       ///< sum over ops of grant - issue
  std::uint64_t queue_wait_cycles = 0;  ///< sum over ops of service - arrival
};

/// Deterministic event-driven synchronization engines, one per home node
/// (LLC slice / NDC node), in the mold of SynCron's per-memory-side sync
/// units. Requests arrive via Enqueue (after their NoC flight), queue FIFO
/// per engine, and are serviced one per `service_latency` cycles. Blocking
/// ops (lock acquire behind a holder, barrier arrival, wait before its
/// post) park inside the engine's object state and are granted — in
/// deterministic FIFO/ticket order — by the op that unblocks them.
///
/// The engines own the *values* of atomically-updated cells in a plain
/// ordered map: fetch-add/CAS and lock-guarded RMW deltas (carried on the
/// release) apply there, so two runs with the same seed produce identical
/// final value maps — the reproducibility contract the sync tests assert.
class SyncManager {
 public:
  SyncManager(sim::EventQueue& eq, SyncParams params) : eq_(eq), params_(params) {}

  SyncManager(const SyncManager&) = delete;
  SyncManager& operator=(const SyncManager&) = delete;

  /// Hands a request to the engine at `node`. Called by the transport when
  /// the request packet is delivered.
  void Enqueue(sim::NodeId node, SyncRequest req);

  /// Attach a metrics registry: per-engine queue-wait histograms are
  /// recorded under "sync/engine.<node>/queue_wait".
  void set_registry(obs::Registry* reg) { reg_ = reg; }

  /// Phase-window sampler for stall deltas noted at grant time (may be
  /// null). Passive: never changes grant order or timing.
  void set_sampler(obs::WindowSampler* sampler) { sampler_ = sampler; }

  /// True once any request was enqueued (keys stats out of sync-free runs).
  bool used() const { return used_; }

  const SyncStats& stats() const { return stats_; }

  /// Final values of every atomically-updated cell, keyed by address
  /// (deterministically ordered).
  const std::map<sim::Addr, std::int64_t>& values() const { return values_; }

  /// Adds "sync.*" counters to `out` — only when the subsystem was used,
  /// so sync-free runs keep their StatSet byte-identical.
  void MaterializeInto(sim::StatSet& out) const;

 private:
  struct Engine {
    std::deque<SyncRequest> queue;
    bool busy = false;
  };
  struct LockState {
    std::uint64_t next_ticket = 0;
    std::uint64_t now_serving = 0;
    std::deque<SyncRequest> waiters;  ///< parked acquires, ticket order
  };
  struct BarrierState {
    std::vector<SyncRequest> waiting;
  };

  void ScheduleService(sim::NodeId node);
  void Service(sim::NodeId node);
  void Execute(SyncRequest&& req);
  void Grant(const SyncRequest& req);

  sim::EventQueue& eq_;
  SyncParams params_;
  std::map<sim::NodeId, Engine> engines_;
  std::map<sim::Addr, LockState> locks_;
  std::map<sim::Addr, BarrierState> barriers_;
  std::map<sim::Addr, std::int64_t> post_counts_;
  std::map<sim::Addr, std::vector<SyncRequest>> wait_parked_;
  std::map<sim::Addr, std::int64_t> values_;

  bool used_ = false;
  SyncStats stats_;
  obs::Registry* reg_ = nullptr;
  obs::WindowSampler* sampler_ = nullptr;
};

}  // namespace ndc::sync
