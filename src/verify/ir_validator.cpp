#include "verify/ir_validator.hpp"

#include <cstdlib>
#include <set>
#include <sstream>

namespace ndc::verify {
namespace {

/// Closed integer interval, used to propagate iterator and subscript ranges
/// over the (possibly triangular) iteration box.
struct Interval {
  ir::Int lo = 0;
  ir::Int hi = 0;
};

Interval Scale(Interval v, ir::Int c) {
  if (c >= 0) return {c * v.lo, c * v.hi};
  return {c * v.hi, c * v.lo};
}

/// Per-level iterator ranges. Bounds that depend on an outer iterator are
/// widened over that iterator's full range, so the result is exact for
/// rectangular nests and a superset for triangular ones.
std::vector<Interval> IteratorRanges(const ir::LoopNest& nest, Report* report, int nest_idx) {
  std::vector<Interval> iv;
  iv.reserve(static_cast<std::size_t>(nest.depth()));
  for (int l = 0; l < nest.depth(); ++l) {
    const ir::Loop& loop = nest.loops[static_cast<std::size_t>(l)];
    Interval lo{loop.lo, loop.lo};
    Interval hi{loop.hi, loop.hi};
    for (auto [dep, coef, bound] : {std::tuple{loop.lo_dep, loop.lo_coef, &lo},
                                    std::tuple{loop.hi_dep, loop.hi_coef, &hi}}) {
      if (dep < 0) continue;
      if (dep >= l) {
        report->Add(Severity::kError, Code::kBadLoopBound,
                    "loop bound depends on iterator " + std::to_string(dep) +
                        ", which is not an enclosing level of loop " + std::to_string(l),
                    nest_idx);
        continue;
      }
      Interval d = Scale(iv[static_cast<std::size_t>(dep)], coef);
      bound->lo += d.lo;
      bound->hi += d.hi;
    }
    Interval range{lo.lo, hi.hi};
    if (range.lo > range.hi) {
      report->Add(Severity::kWarning, Code::kBadLoopBound,
                  "loop " + std::to_string(l) + " is statically empty", nest_idx);
      range.hi = range.lo;
    }
    iv.push_back(range);
  }
  return iv;
}

struct OperandContext {
  const ir::Program* prog;
  const std::vector<Interval>* iters;
  int nest;
  int stmt;
  std::uint32_t stmt_id;
  const char* role;  ///< "lhs" / "rhs0" / "rhs1"
};

bool ValidArray(const ir::Program& prog, int id) {
  return id >= 0 && id < static_cast<int>(prog.arrays.size());
}

/// Checks one affine access (F, f) against `arr` over the iterator box.
void CheckAccessBounds(const OperandContext& cx, const ir::AffineAccess& acc,
                       const ir::Array& arr, Report* report) {
  for (int d = 0; d < acc.F.rows(); ++d) {
    Interval sub{acc.f[static_cast<std::size_t>(d)], acc.f[static_cast<std::size_t>(d)]};
    for (int c = 0; c < acc.F.cols(); ++c) {
      Interval t = Scale((*cx.iters)[static_cast<std::size_t>(c)], acc.F.at(d, c));
      sub.lo += t.lo;
      sub.hi += t.hi;
    }
    ir::Int dim = arr.dims[static_cast<std::size_t>(d)];
    std::ostringstream range;
    range << cx.role << " subscript " << d << " of " << arr.name << " spans [" << sub.lo
          << ", " << sub.hi << "] but the dimension is " << dim;
    if (sub.hi < 0 || sub.lo >= dim) {
      report->Add(Severity::kError, Code::kSubscriptNeverInBounds,
                  range.str() + " — the access can never resolve", cx.nest, cx.stmt,
                  cx.stmt_id, arr.id);
    } else if (sub.lo < 0 || sub.hi >= dim) {
      report->Add(Severity::kWarning, Code::kSubscriptOutOfBounds,
                  range.str() + " — boundary iterations are skipped", cx.nest, cx.stmt,
                  cx.stmt_id, arr.id);
    }
  }
}

void CheckOperand(const OperandContext& cx, const ir::Operand& op,
                  std::set<int>* reported_index_arrays, Report* report) {
  if (!op.IsMemory()) {
    if (op.target_array >= 0) {
      report->Add(Severity::kWarning, Code::kBadOperandKind,
                  std::string(cx.role) + " is not an indirect access but carries a "
                  "target array",
                  cx.nest, cx.stmt, cx.stmt_id, op.target_array);
    }
    return;
  }
  const ir::Program& prog = *cx.prog;
  if (!ValidArray(prog, op.access.array)) {
    report->Add(Severity::kError, Code::kBadArrayRef,
                std::string(cx.role) + " references array id " +
                    std::to_string(op.access.array) + " out of " +
                    std::to_string(prog.arrays.size()),
                cx.nest, cx.stmt, cx.stmt_id, op.access.array);
    return;
  }
  const ir::Array& arr = prog.array(op.access.array);
  int rank = static_cast<int>(arr.dims.size());
  int depth = static_cast<int>(cx.iters->size());
  if (op.access.F.rows() != rank || static_cast<int>(op.access.f.size()) != rank ||
      op.access.F.cols() != depth) {
    std::ostringstream os;
    os << cx.role << " access shape F=" << op.access.F.rows() << "x" << op.access.F.cols()
       << ", |f|=" << op.access.f.size() << " does not match array rank " << rank
       << " and nest depth " << depth;
    report->Add(Severity::kError, Code::kShapeMismatch, os.str(), cx.nest, cx.stmt,
                cx.stmt_id, arr.id);
    return;
  }
  CheckAccessBounds(cx, op.access, arr, report);

  if (op.kind != ir::Operand::Kind::kIndirect) return;
  if (!ValidArray(prog, op.target_array)) {
    report->Add(Severity::kError, Code::kBadArrayRef,
                std::string(cx.role) + " indirect target array id " +
                    std::to_string(op.target_array) + " is invalid",
                cx.nest, cx.stmt, cx.stmt_id, op.target_array);
    return;
  }
  auto it = prog.index_data.find(op.access.array);
  if (it == prog.index_data.end()) {
    report->Add(Severity::kWarning, Code::kMissingIndexData,
                "index array " + arr.name +
                    " has no contents; every indirect access through it is skipped",
                cx.nest, cx.stmt, cx.stmt_id, arr.id);
    return;
  }
  if (static_cast<ir::Int>(it->second.size()) < arr.NumElems()) {
    report->Add(Severity::kWarning, Code::kMissingIndexData,
                "index array " + arr.name + " holds " + std::to_string(it->second.size()) +
                    " values for " + std::to_string(arr.NumElems()) + " elements",
                cx.nest, cx.stmt, cx.stmt_id, arr.id);
  }
  // Range-check the index contents once per (index array, target) pair.
  if (reported_index_arrays->insert(op.access.array).second) {
    const ir::Array& tgt = prog.array(op.target_array);
    ir::Int out = 0;
    for (ir::Int v : it->second) out += v < 0 || v >= tgt.NumElems();
    if (out > 0) {
      report->Add(Severity::kWarning, Code::kIndexValueOutOfRange,
                  std::to_string(out) + " of " + std::to_string(it->second.size()) +
                      " entries of index array " + arr.name + " fall outside " + tgt.name,
                  cx.nest, cx.stmt, cx.stmt_id, arr.id);
    }
  }
}

void CheckAnnotation(const OperandContext& cx, const ir::Stmt& st, const VerifyOptions& opts,
                     Report* report) {
  if (!st.ndc.offload) return;
  if (!st.rhs0.IsMemory() || !st.rhs1.IsMemory()) {
    report->Add(Severity::kError, Code::kOffloadNeedsTwoLoads,
                "NDC annotation on a statement without two memory operands", cx.nest,
                cx.stmt, cx.stmt_id);
  }
  for (auto [lead, name] : {std::pair{st.ndc.lead0, "lead0"}, std::pair{st.ndc.lead1, "lead1"}}) {
    if (std::llabs(lead) > opts.max_lead) {
      report->Add(Severity::kError, Code::kLeadExceedsMax,
                  std::string(name) + " = " + std::to_string(lead) +
                      " exceeds max_lead = " + std::to_string(opts.max_lead),
                  cx.nest, cx.stmt, cx.stmt_id);
    }
  }
  int loc = static_cast<int>(st.ndc.planned);
  if (loc < 0 || loc >= arch::kNumLocs) {
    report->Add(Severity::kError, Code::kLocNotEnabled,
                "planned NDC location " + std::to_string(loc) + " is not a valid component",
                cx.nest, cx.stmt, cx.stmt_id);
  } else if (!(opts.control_register & arch::LocBit(st.ndc.planned))) {
    report->Add(Severity::kError, Code::kLocNotEnabled,
                std::string("planned NDC location '") + arch::LocName(st.ndc.planned) +
                    "' is masked off by the control register",
                cx.nest, cx.stmt, cx.stmt_id);
  }
}

}  // namespace

void ValidateIr(const ir::Program& prog, const VerifyOptions& opts, Report* report) {
  for (const ir::Array& arr : prog.arrays) {
    if (arr.dims.empty()) {
      report->Add(Severity::kError, Code::kShapeMismatch,
                  "array " + arr.name + " has rank 0", -1, -1, 0, arr.id);
      continue;
    }
    for (ir::Int d : arr.dims) {
      if (d <= 0) {
        report->Add(Severity::kError, Code::kShapeMismatch,
                    "array " + arr.name + " has a non-positive dimension", -1, -1, 0,
                    arr.id);
        break;
      }
    }
  }

  for (int n = 0; n < static_cast<int>(prog.nests.size()); ++n) {
    const ir::LoopNest& nest = prog.nests[static_cast<std::size_t>(n)];
    if (nest.body.empty()) {
      report->Add(Severity::kNote, Code::kEmptyNest, "nest has no statements", n);
      continue;
    }
    if (nest.depth() == 0) {
      report->Add(Severity::kError, Code::kEmptyNest,
                  "nest has statements but no loops — the code generator cannot "
                  "distribute it",
                  n);
      continue;
    }
    std::vector<Interval> iters = IteratorRanges(nest, report, n);

    if (nest.transform.has_value()) {
      const ir::IntMat& T = *nest.transform;
      if (T.rows() != nest.depth() || T.cols() != nest.depth()) {
        std::ostringstream os;
        os << "transform is " << T.rows() << "x" << T.cols() << " on a depth-"
           << nest.depth() << " nest";
        report->Add(Severity::kError, Code::kBadTransform, os.str(), n);
      } else if (!T.IsUnimodular()) {
        report->Add(Severity::kError, Code::kBadTransform,
                    "transform is not unimodular: it does not enumerate the iteration "
                    "space bijectively",
                    n);
      }
    }

    std::set<std::uint32_t> ids;
    std::set<int> reported_index_arrays;
    for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
      const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
      if (st.id != 0 && !ids.insert(st.id).second) {
        report->Add(Severity::kWarning, Code::kDuplicateStmtId,
                    "statement id S" + std::to_string(st.id) +
                        " appears twice in one nest body",
                    n, s, st.id);
      }
      OperandContext cx{&prog, &iters, n, s, st.id, ""};
      cx.role = "lhs";
      CheckOperand(cx, st.lhs, &reported_index_arrays, report);
      cx.role = "rhs0";
      CheckOperand(cx, st.rhs0, &reported_index_arrays, report);
      cx.role = "rhs1";
      CheckOperand(cx, st.rhs1, &reported_index_arrays, report);
      CheckAnnotation(cx, st, opts, report);
    }
  }
}

}  // namespace ndc::verify
