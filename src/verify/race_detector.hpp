#pragma once

#include "ir/program.hpp"
#include "verify/diagnostics.hpp"
#include "verify/verify_options.hpp"

namespace ndc::verify {

/// Parallel-loop race detection. The code generator block-distributes every
/// nest's outermost loop across cores, so any dependence carried by that
/// dimension (distance[0] != 0) may cross a core boundary and execute
/// unordered. Such dependences — and unanalyzable (indirect or non-uniform)
/// dependences, which could be carried anywhere — are reported at warning
/// severity: the timing simulator tolerates them, but the parallelization
/// is not semantics-preserving for the affected arrays.
///
/// The detector consults the parallelism classifier
/// (analysis/parallelism.hpp) rather than raw dependence output: unknown
/// pairs refuted by array-section disjointness produce no warning, and
/// carried dependences discharged by an obligation the nest's
/// ParallelAnnotation accepts (reduction combine, privatization) are safe
/// by construction.
void DetectRaces(const ir::Program& prog, const VerifyOptions& opts, Report* report);

}  // namespace ndc::verify
