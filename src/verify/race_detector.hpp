#pragma once

#include "ir/program.hpp"
#include "verify/diagnostics.hpp"
#include "verify/verify_options.hpp"

namespace ndc::verify {

/// Parallel-loop race detection. The code generator block-distributes every
/// nest's outermost loop across cores, so any dependence carried by that
/// dimension (distance[0] != 0) may cross a core boundary and execute
/// unordered. Such dependences — and unanalyzable (indirect or non-uniform)
/// dependences, which could be carried anywhere — are reported at warning
/// severity: the timing simulator tolerates them, but the parallelization
/// is not semantics-preserving for the affected arrays.
void DetectRaces(const ir::Program& prog, const VerifyOptions& opts, Report* report);

}  // namespace ndc::verify
