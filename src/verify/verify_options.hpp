#pragma once

#include <cstdint>

#include "arch/config.hpp"
#include "ir/matrix.hpp"

namespace ndc::verify {

/// Configuration shared by all verification passes. The annotation limits
/// default to the compiler pipeline's defaults; callers auditing a program
/// produced with non-default `CompileOptions` should mirror those values
/// here so the audit checks what the compiler was actually allowed to emit.
struct VerifyOptions {
  ir::Int max_lead = 64;                           ///< cap on access movement
  std::uint8_t control_register = arch::kAllLocs;  ///< allowed NDC locations
  bool check_structure = true;    ///< run the IR validator
  bool check_legality = true;     ///< run the legality auditor
  bool check_races = true;        ///< run the parallel-loop race detector
  bool check_parallelism = true;  ///< run the parallel-annotation proof audit (P4xx)
  bool check_sync = true;         ///< run the synchronization audit (S5xx)
};

}  // namespace ndc::verify
