#pragma once

#include "ir/program.hpp"
#include "verify/diagnostics.hpp"
#include "verify/verify_options.hpp"

namespace ndc::verify {

/// Independent legality audit of a compiled program: re-derives each nest's
/// dependence set with `analysis::AnalyzeDependences`, then re-checks
///  - every attached schedule transform with `xform::IsLegalTransform`
///    (T*D columns lexicographically positive, Section 5.2.1), and
///  - every NDC access-movement lead with
///    `analysis::DependenceSet::ReadHoistIsSafe` (a moved read must not
///    cross a conflicting write, Figures 8-9).
/// Any violation is an annotation the compiler should never have emitted
/// and is reported at error severity.
void AuditLegality(const ir::Program& prog, const VerifyOptions& opts, Report* report);

}  // namespace ndc::verify
