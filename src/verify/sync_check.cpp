#include "verify/sync_check.hpp"

#include <sstream>

#include "analysis/dependence.hpp"
#include "analysis/parallelism.hpp"

namespace ndc::verify {
namespace {

std::string ArrayName(const ir::Program& prog, int a) {
  return a >= 0 && a < static_cast<int>(prog.arrays.size()) ? prog.array(a).name
                                                            : std::to_string(a);
}

bool StmtUsesSync(const ir::Stmt& s) { return s.sync.kind != ir::SyncKind::kNone; }

bool NestUsesSync(const ir::LoopNest& nest) {
  if (nest.sync.kind != ir::SyncKind::kNone || nest.sync.barrier_after) return true;
  for (const ir::Stmt& s : nest.body) {
    if (StmtUsesSync(s)) return true;
  }
  return false;
}

const char* StmtSyncName(ir::SyncKind k) {
  switch (k) {
    case ir::SyncKind::kNdcAtomic: return "ndc-atomic";
    case ir::SyncKind::kHostLock: return "host-lock";
    case ir::SyncKind::kPostWait: return "post/wait";
    case ir::SyncKind::kNone: break;
  }
  return "none";
}

/// True when the statement's lhs subscript ignores the iterator at `level`:
/// every shard of that level then touches the very same elements, so a
/// carried read-modify-write race exists regardless of how the dependence
/// analyzer canonicalizes the (non-unique) distance of a rank-deficient
/// subscript. This is the predicate that separates a genuinely shared
/// accumulator (needs an atomic or a lock) from a per-shard one (private by
/// construction, sync would be pure overhead).
bool LhsSharedAcrossLevel(const ir::Stmt& stmt, int level) {
  if (stmt.lhs.kind != ir::Operand::Kind::kAffine) return false;
  const ir::IntMat& F = stmt.lhs.access.F;
  if (level < 0 || level >= F.cols()) return false;
  for (int r = 0; r < F.rows(); ++r) {
    if (F.at(r, level) != 0) return false;
  }
  return true;
}

}  // namespace

void CheckSync(const ir::Program& prog, const VerifyOptions& opts, Report* report) {
  (void)opts;
  for (int n = 0; n < static_cast<int>(prog.nests.size()); ++n) {
    const ir::LoopNest& nest = prog.nests[static_cast<std::size_t>(n)];
    if (!NestUsesSync(nest)) continue;
    if (nest.depth() == 0 || nest.body.empty()) continue;

    // S501: sync lowering is only meaningful under a parallel annotation —
    // a sequential nest has nothing to synchronize.
    if (nest.parallel.level < 0) {
      report->Add(Severity::kError, Code::kSyncOnUnannotatedNest,
                  "nest lowers synchronization but carries no parallel annotation",
                  n);
      continue;
    }
    if (nest.parallel.level >= nest.depth()) continue;  // P406 owns this

    // S506: structural checks on the sync array before any semantic audit.
    if (nest.sync.kind == ir::SyncKind::kPostWait || nest.sync.barrier_after) {
      const int sa = nest.sync.sync_array;
      if (sa < 0 || sa >= static_cast<int>(prog.arrays.size())) {
        report->Add(Severity::kError, Code::kSyncBadArray,
                    "post/wait or barrier lowering names sync array " +
                        std::to_string(sa) + " which does not exist",
                    n, -1, 0, sa);
        continue;
      }
      if (prog.array(sa).dims.size() != 1 || prog.array(sa).dims[0] < 1) {
        report->Add(Severity::kError, Code::kSyncBadArray,
                    "sync array " + ArrayName(prog, sa) +
                        " must be one-dimensional and non-empty",
                    n, -1, 0, sa);
        continue;
      }
    }

    analysis::Classification cls = analysis::ClassifyNest(prog, nest);
    if (cls.has_unknown) continue;  // P403 owns unanalyzable nests
    const analysis::LevelClass& lc = cls.level(nest.parallel.level);

    // --- Statement-level sync: atomics and lock-guarded RMWs must each
    // discharge a reduction obligation the classifier recognized on a
    // genuinely shared accumulator (S502), and every shared-accumulator
    // obligation in a sync nest must be discharged (S503). The obligation
    // source is the classifier's reduction recognition, not the per-level
    // obligation list: a shard-invariant subscript has no unique carried
    // distance, so the canonical distance may land at an inner level even
    // though every shard hammers the same cells.
    for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
      const ir::Stmt& stmt = nest.body[static_cast<std::size_t>(s)];
      const bool is_red = [&] {
        for (const analysis::Reduction& r : cls.reductions) {
          if (r.stmt == s) return true;
        }
        return false;
      }();
      const bool shared = is_red && LhsSharedAcrossLevel(stmt, nest.parallel.level);
      if (stmt.sync.kind == ir::SyncKind::kNdcAtomic ||
          stmt.sync.kind == ir::SyncKind::kHostLock) {
        if (!shared) {
          std::ostringstream os;
          os << StmtSyncName(stmt.sync.kind) << " lowering on stmt " << s
             << " discharges no classifier obligation: the statement is not a "
                "recognized reduction on an accumulator shared across level "
             << nest.parallel.level;
          report->Add(Severity::kError, Code::kSyncWithoutObligation, os.str(), n, s,
                      stmt.id);
        }
      } else if (shared) {
        std::ostringstream os;
        os << "sync-lowered nest leaves the shared-accumulator reduction on stmt "
           << s << " unsynchronized: concurrent read-modify-writes race";
        report->Add(Severity::kError, Code::kSyncMissingOnObligation, os.str(), n, s,
                    stmt.id);
      }
    }

    // --- Nest-level post/wait: must target a proven DOACROSS level with a
    // matching witness distance (S504/S505), and must actually order every
    // dependence the level carries (S507).
    if (nest.sync.kind == ir::SyncKind::kPostWait) {
      if (lc.kind != analysis::LevelKind::kDoacross || !lc.witness_valid) {
        report->Add(Severity::kError, Code::kPostWaitNotDoacross,
                    "post/wait lowering on level " +
                        std::to_string(nest.parallel.level) +
                        " but the classifier proves no DOACROSS dependence there",
                    n);
        continue;
      }
      if (nest.sync.distance <= 0 || nest.sync.distance != lc.min_distance) {
        std::ostringstream os;
        os << "declared post/wait distance " << nest.sync.distance
           << " does not match the witness min carried distance " << lc.min_distance;
        report->Add(Severity::kError, Code::kPostWaitDistanceMismatch, os.str(), n,
                    lc.witness.from_stmt, 0, lc.witness.array);
        continue;
      }
      analysis::DependenceSet deps = analysis::AnalyzeDependences(prog, nest);
      for (const analysis::Dependence& d : deps.deps) {
        if (!d.distance_known || d.distance.empty() || d.distance[0] == 0) continue;
        bool covered = d.distance[0] > 0 && d.distance[0] % nest.sync.distance == 0;
        for (std::size_t i = 1; covered && i < d.distance.size(); ++i) {
          covered = d.distance[i] >= 0;
        }
        if (covered) continue;
        std::ostringstream os;
        os << "carried dependence S" << d.from_stmt << "->S" << d.to_stmt << " on "
           << ArrayName(prog, d.array) << " with outer distance " << d.distance[0]
           << " is not ordered by post/wait at distance " << nest.sync.distance;
        report->Add(Severity::kError, Code::kPostWaitUncoveredDependence, os.str(), n,
                    d.from_stmt, 0, d.array);
      }
    }
  }
}

}  // namespace ndc::verify
