#pragma once

#include "ir/program.hpp"
#include "verify/diagnostics.hpp"
#include "verify/verify_options.hpp"

namespace ndc::verify {

/// Synchronization audit (S5xx). Every sync construct the code generator
/// will lower — NDC-side atomics, lock-guarded host RMWs, post/wait chains —
/// must discharge an obligation the parallelism classifier actually proved,
/// and every obligation in a sync-lowered nest must be discharged by some
/// sync construct. Post/wait distances are checked against the carried
/// dependences they claim to order: a dependence whose distance is not a
/// multiple of the declared post/wait distance is unordered no matter how
/// many posts fire, and is reported as an error rather than silently raced.
void CheckSync(const ir::Program& prog, const VerifyOptions& opts, Report* report);

}  // namespace ndc::verify
