#include "verify/legality_audit.hpp"

#include <algorithm>
#include <string>

#include "analysis/dependence.hpp"
#include "xform/transform.hpp"

namespace ndc::verify {
namespace {

int OperandArray(const ir::Operand& op) {
  return op.kind == ir::Operand::Kind::kIndirect ? op.target_array : op.access.array;
}

bool HasUnknownDeps(const analysis::DependenceSet& deps, int array) {
  return std::find(deps.unknown_arrays.begin(), deps.unknown_arrays.end(), array) !=
         deps.unknown_arrays.end();
}

}  // namespace

void AuditLegality(const ir::Program& prog, const VerifyOptions& opts, Report* report) {
  (void)opts;
  for (int n = 0; n < static_cast<int>(prog.nests.size()); ++n) {
    const ir::LoopNest& nest = prog.nests[static_cast<std::size_t>(n)];
    if (nest.depth() == 0) continue;
    analysis::DependenceSet deps = analysis::AnalyzeDependences(prog, nest);

    // The same linearization the pipeline uses when it sizes movements:
    // the static trip count of the innermost loop.
    ir::Int inner_trip = 1;
    const ir::Loop& inner = nest.loops.back();
    inner_trip = std::max<ir::Int>(1, inner.hi - inner.lo + 1);

    if (nest.transform.has_value() &&
        nest.transform->rows() == nest.depth() && nest.transform->cols() == nest.depth()) {
      if (deps.has_unknown) {
        report->Add(Severity::kError, Code::kTransformWithUnknownDeps,
                    "schedule transform attached to a nest with unanalyzable "
                    "dependences — legality cannot be established",
                    n);
      } else {
        ir::IntMat D = deps.DependenceMatrix(nest.depth());
        if (!xform::IsLegalTransform(*nest.transform, D)) {
          report->Add(Severity::kError, Code::kIllegalTransform,
                      "schedule transform maps a dependence distance to a "
                      "lexicographically non-positive vector (T*D test failed)",
                      n);
        }
      }
    }

    for (int s = 0; s < static_cast<int>(nest.body.size()); ++s) {
      const ir::Stmt& st = nest.body[static_cast<std::size_t>(s)];
      if (!st.ndc.offload) continue;
      for (auto [op, lead, name] : {std::tuple{&st.rhs0, st.ndc.lead0, "lead0"},
                                    std::tuple{&st.rhs1, st.ndc.lead1, "lead1"}}) {
        if (lead == 0) continue;
        if (!op->IsMemory()) continue;  // the validator reports the shape error
        int array = OperandArray(*op);
        if (deps.ReadHoistIsSafe(array, lead, inner_trip)) continue;
        if (HasUnknownDeps(deps, array)) {
          report->Add(Severity::kError, Code::kLeadOnUnknownArray,
                      std::string(name) + " = " + std::to_string(lead) +
                          " moves a read of an array with unanalyzable dependences",
                      n, s, st.id, array);
        } else {
          report->Add(Severity::kError, Code::kUnsafeLead,
                      std::string(name) + " = " + std::to_string(lead) +
                          " crosses a conflicting write (flow dependence within the "
                          "movement window)",
                      n, s, st.id, array);
        }
      }
    }
  }
}

}  // namespace ndc::verify
