#include "verify/verify.hpp"

namespace ndc::verify {

Report VerifyProgram(const ir::Program& prog, const VerifyOptions& opts) {
  Report report;
  if (opts.check_structure) ValidateIr(prog, opts, &report);
  if (opts.check_legality) AuditLegality(prog, opts, &report);
  if (opts.check_races) DetectRaces(prog, opts, &report);
  if (opts.check_parallelism) CheckParallelism(prog, opts, &report);
  if (opts.check_sync) CheckSync(prog, opts, &report);
  report.Sort();  // pass order never leaks into the report
  return report;
}

}  // namespace ndc::verify
