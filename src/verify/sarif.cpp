#include "verify/sarif.hpp"

#include <cstdio>
#include <map>
#include <sstream>

namespace ndc::verify {
namespace {

const char* SarifLevel(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "none";
}

// JSON string escaping. Control characters get named escapes where JSON
// defines one and \u00xx otherwise (the snprintf argument must be widened
// through unsigned char: a raw signed char would sign-extend and print
// ￿ffxx). Bytes >= 0x80 — UTF-8 continuation and lead bytes — pass
// through untouched: the document is UTF-8, and escaping them as \u00xx
// would re-encode each byte as a separate Latin-1 code point, corrupting
// every multi-byte rune on the first decode.
void Escape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

std::string ToSarif(const Report& report, const std::string& tool_name,
                    const std::string& tool_version) {
  // Rules: one per distinct code, ordered by numeric code so the table is
  // deterministic regardless of finding order.
  std::map<int, Code> codes;
  for (const Diagnostic& d : report.diags) codes[static_cast<int>(d.code)] = d.code;
  std::map<int, int> rule_index;
  int next = 0;
  for (const auto& [num, code] : codes) rule_index[num] = next++;

  std::ostringstream os;
  os << "{\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"";
  Escape(os, tool_name);
  os << "\",\n"
     << "          \"version\": \"";
  Escape(os, tool_version);
  os << "\",\n"
     << "          \"informationUri\": \"https://example.invalid/ndc\",\n"
     << "          \"rules\": [";
  bool first = true;
  for (const auto& [num, code] : codes) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "            {\"id\": \"" << CodeId(code) << "\", \"name\": \""
       << CodeName(code) << "\", \"shortDescription\": {\"text\": \"" << CodeName(code)
       << "\"}}";
  }
  os << (codes.empty() ? "]" : "\n          ]") << "\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [";
  first = true;
  for (const Diagnostic& d : report.diags) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "        {\"ruleId\": \"" << CodeId(d.code)
       << "\", \"ruleIndex\": " << rule_index[static_cast<int>(d.code)]
       << ", \"level\": \"" << SarifLevel(d.severity) << "\", \"message\": {\"text\": \"";
    Escape(os, d.message);
    os << "\"}, \"locations\": [{\"logicalLocations\": [{\"fullyQualifiedName\": \"";
    std::ostringstream loc;
    loc << "nest" << d.nest;
    if (d.stmt >= 0) loc << "/stmt" << d.stmt;
    Escape(os, loc.str());
    os << "\", \"kind\": \"function\"}]}], \"properties\": {\"nest\": " << d.nest
       << ", \"stmt\": " << d.stmt << ", \"array\": " << d.array << "}}";
  }
  os << (report.diags.empty() ? "]" : "\n      ]") << "\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return os.str();
}

}  // namespace ndc::verify
