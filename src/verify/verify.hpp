#pragma once

#include "ir/program.hpp"
#include "verify/diagnostics.hpp"
#include "verify/ir_validator.hpp"
#include "verify/legality_audit.hpp"
#include "verify/parallelism_check.hpp"
#include "verify/race_detector.hpp"
#include "verify/sync_check.hpp"
#include "verify/verify_options.hpp"

namespace ndc::verify {

/// Runs every enabled verification pass over `prog` and returns the merged
/// report. The passes are independent of the pipeline that produced the
/// program: they re-derive dependences and re-check every annotation from
/// scratch, so a pipeline bug that emits an illegal transform or an unsafe
/// access movement surfaces here instead of silently corrupting results.
Report VerifyProgram(const ir::Program& prog, const VerifyOptions& opts = {});

}  // namespace ndc::verify
