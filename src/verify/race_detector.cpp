#include "verify/race_detector.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/dependence.hpp"
#include "analysis/parallelism.hpp"

namespace ndc::verify {

void DetectRaces(const ir::Program& prog, const VerifyOptions& opts, Report* report) {
  (void)opts;
  for (int n = 0; n < static_cast<int>(prog.nests.size()); ++n) {
    const ir::LoopNest& nest = prog.nests[static_cast<std::size_t>(n)];
    if (nest.depth() == 0 || nest.body.empty()) continue;
    analysis::Classification cls = analysis::ClassifyNest(prog, nest);

    // Unknown dependences: the classifier has already retried every
    // unresolved pair with the array-section disjointness test, so arrays
    // whose conflicts are provably disjoint never reach this list — the
    // R302 warnings below are residual, not heuristic.
    for (int a : cls.unknown_arrays) {
      std::string name = a >= 0 && a < static_cast<int>(prog.arrays.size())
                             ? prog.array(a).name
                             : std::to_string(a);
      report->Add(Severity::kWarning, Code::kParallelUnknownDependence,
                  "array " + name +
                      " has unanalyzable (indirect or non-uniform) dependences in a "
                      "block-distributed nest — cross-core ordering is not guaranteed",
                  n, -1, 0, a);
    }
    // Carried dependences on the block-distributed (outermost) dimension.
    // Reported even when the nest also has unknown references: a known
    // carried distance is concrete race evidence regardless.
    // A dependence the classifier discharges into an obligation is a race
    // unless the nest's annotation actually accepts that obligation — the
    // code generator privatizes/combines only what the annotation promises.
    const bool red_ok = nest.parallel.level == 0 && nest.parallel.reduction_ok;
    const bool priv_ok = nest.parallel.level == 0 && nest.parallel.privatized_ok;
    std::set<int> priv_set(cls.privatizable.begin(), cls.privatizable.end());
    std::set<std::pair<int, int>> red_set;  // (stmt, array)
    for (const analysis::Reduction& r : cls.reductions) red_set.insert({r.stmt, r.array});

    analysis::DependenceSet deps = analysis::AnalyzeDependences(prog, nest);
    std::set<std::pair<int, int>> reported;  // (array, from_stmt) dedup
    for (const analysis::Dependence& d : deps.deps) {
      if (!d.distance_known || d.distance.empty() || d.distance[0] == 0) continue;
      if (red_ok && d.from_stmt == d.to_stmt &&
          red_set.count({d.from_stmt, d.array}) != 0) {
        continue;  // private accumulator + combine make this safe
      }
      if (priv_ok && priv_set.count(d.array) != 0) {
        continue;  // per-shard private copy kills the carried dependence
      }
      if (nest.sync.kind == ir::SyncKind::kPostWait && nest.sync.distance > 0 &&
          d.distance[0] > 0 && d.distance[0] % nest.sync.distance == 0) {
        // Post/wait at distance k orders every dependence whose outer
        // distance is a positive multiple of k (later components must stay
        // non-negative; otherwise the dep is a real race and stays reported).
        bool covered = true;
        for (std::size_t i = 1; i < d.distance.size(); ++i) covered &= d.distance[i] >= 0;
        if (covered) continue;
      }
      if (!reported.insert({d.array, d.from_stmt}).second) continue;
      std::ostringstream os;
      os << "dependence with outer-loop distance " << d.distance[0]
         << " is carried by the parallel (block-distributed) dimension; iterations on "
            "different cores execute it unordered";
      report->Add(Severity::kWarning, Code::kParallelCarriedDependence, os.str(), n,
                  d.from_stmt, 0, d.array);
    }
  }
}

}  // namespace ndc::verify
