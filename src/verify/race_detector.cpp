#include "verify/race_detector.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/dependence.hpp"

namespace ndc::verify {

void DetectRaces(const ir::Program& prog, const VerifyOptions& opts, Report* report) {
  (void)opts;
  for (int n = 0; n < static_cast<int>(prog.nests.size()); ++n) {
    const ir::LoopNest& nest = prog.nests[static_cast<std::size_t>(n)];
    if (nest.depth() == 0 || nest.body.empty()) continue;
    analysis::DependenceSet deps = analysis::AnalyzeDependences(prog, nest);

    std::set<int> reported_unknown;
    for (int a : deps.unknown_arrays) {
      if (!reported_unknown.insert(a).second) continue;
      std::string name = a >= 0 && a < static_cast<int>(prog.arrays.size())
                             ? prog.array(a).name
                             : std::to_string(a);
      report->Add(Severity::kWarning, Code::kParallelUnknownDependence,
                  "array " + name +
                      " has unanalyzable (indirect or non-uniform) dependences in a "
                      "block-distributed nest — cross-core ordering is not guaranteed",
                  n, -1, 0, a);
    }

    std::set<std::pair<int, int>> reported;  // (array, from_stmt) dedup
    for (const analysis::Dependence& d : deps.deps) {
      if (!d.distance_known || d.distance.empty() || d.distance[0] == 0) continue;
      if (!reported.insert({d.array, d.from_stmt}).second) continue;
      std::ostringstream os;
      os << "dependence with outer-loop distance " << d.distance[0]
         << " is carried by the parallel (block-distributed) dimension; iterations on "
            "different cores execute it unordered";
      report->Add(Severity::kWarning, Code::kParallelCarriedDependence, os.str(), n,
                  d.from_stmt, 0, d.array);
    }
  }
}

}  // namespace ndc::verify
