#include "verify/parallelism_check.hpp"

#include <sstream>

#include "analysis/parallelism.hpp"

namespace ndc::verify {
namespace {

std::string ArrayName(const ir::Program& prog, int a) {
  return a >= 0 && a < static_cast<int>(prog.arrays.size()) ? prog.array(a).name
                                                            : std::to_string(a);
}

std::string DistStr(const ir::IntVec& d) {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < d.size(); ++i) os << (i ? "," : "") << d[i];
  os << ")";
  return os.str();
}

}  // namespace

void CheckParallelism(const ir::Program& prog, const VerifyOptions& opts,
                      Report* report) {
  (void)opts;
  for (int n = 0; n < static_cast<int>(prog.nests.size()); ++n) {
    const ir::LoopNest& nest = prog.nests[static_cast<std::size_t>(n)];
    const ir::ParallelAnnotation& ann = nest.parallel;
    if (ann.level < 0) continue;  // not annotated parallel
    if (ann.level >= nest.depth()) {
      std::ostringstream os;
      os << "parallel annotation names level " << ann.level << " but the nest has depth "
         << nest.depth();
      report->Add(Severity::kError, Code::kAnnotationBadLevel, os.str(), n);
      continue;
    }
    analysis::Classification cls = analysis::ClassifyNest(prog, nest);
    if (cls.has_unknown) {
      std::ostringstream os;
      os << "annotated-parallel nest has unanalyzable references (arrays:";
      for (int a : cls.unknown_arrays) os << " " << ArrayName(prog, a);
      os << ") that survive disjointness refinement; the annotation is unprovable";
      report->Add(Severity::kError, Code::kAnnotatedUnknownDeps, os.str(), n, -1, 0,
                  cls.unknown_arrays.empty() ? -1 : cls.unknown_arrays.front());
      continue;
    }
    const analysis::LevelClass& lc = cls.level(ann.level);
    if (lc.kind == analysis::LevelKind::kDoacross && lc.witness_valid &&
        nest.sync.kind == ir::SyncKind::kPostWait) {
      // The carried dependence is discharged by post/wait lowering; the
      // S5xx sync audit checks the declared distance against the witness.
      continue;
    }
    if (lc.kind == analysis::LevelKind::kDoacross && lc.witness_valid) {
      const analysis::Dependence& w = lc.witness;
      std::ostringstream os;
      os << "level " << ann.level << " annotated parallel but carries a "
         << (w.is_flow ? "flow" : "anti/output") << " dependence S" << w.from_stmt
         << "->S" << w.to_stmt << " on " << ArrayName(prog, w.array)
         << " with distance " << DistStr(w.distance) << " (min carried distance "
         << lc.min_distance << ")";
      report->Add(Severity::kError,
                  w.is_flow ? Code::kAnnotatedCarriedFlow : Code::kAnnotatedCarriedAntiOutput,
                  os.str(), n, w.from_stmt, 0, w.array);
      continue;
    }
    // DOALL at the annotated level: audit the proof obligations.
    if (!lc.reduction_stmts.empty() && !ann.reduction_ok) {
      std::ostringstream os;
      os << "level " << ann.level << " is DOALL only under a reduction combine (stmt";
      for (int s : lc.reduction_stmts) os << " " << s;
      os << ") but the annotation does not accept reductions";
      report->Add(Severity::kError, Code::kAnnotationNeedsReduction, os.str(), n,
                  lc.reduction_stmts.front());
    }
    if (!lc.privatization.empty() && !ann.privatized_ok) {
      std::ostringstream os;
      os << "level " << ann.level << " is DOALL only if arrays {";
      for (std::size_t i = 0; i < lc.privatization.size(); ++i) {
        os << (i ? "," : "") << ArrayName(prog, lc.privatization[i]);
      }
      os << "} are privatized but the annotation does not accept privatization";
      report->Add(Severity::kError, Code::kAnnotationNeedsPrivatization, os.str(), n, -1,
                  0, lc.privatization.front());
    }
    if ((ann.reduction_ok && lc.reduction_stmts.empty()) ||
        (ann.privatized_ok && lc.privatization.empty())) {
      std::ostringstream os;
      os << "annotation on level " << ann.level << " accepts";
      if (ann.reduction_ok && lc.reduction_stmts.empty()) os << " reduction";
      if (ann.privatized_ok && lc.privatization.empty()) os << " privatization";
      os << " obligations the proof does not need";
      report->Add(Severity::kNote, Code::kAnnotationUnusedObligation, os.str(), n);
    }
  }
}

}  // namespace ndc::verify
