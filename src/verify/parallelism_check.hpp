#pragma once

#include "ir/program.hpp"
#include "verify/diagnostics.hpp"
#include "verify/verify_options.hpp"

namespace ndc::verify {

/// Parallel-annotation proof audit (P4xx). For every nest carrying a
/// `ParallelAnnotation`, re-runs the parallelism classifier
/// (analysis/parallelism.hpp) from scratch and checks the annotation
/// against the proof:
///  - P401/P402 (error): the annotated level carries a flow / anti-output
///    dependence — the witness distance vector is printed;
///  - P403 (error): unanalyzable references survive disjointness
///    refinement, so nothing is provable about the nest;
///  - P404/P405 (error): the level is DOALL only under a reduction-combine
///    / privatization obligation the annotation does not accept;
///  - P406 (error): the annotated level is outside the nest depth;
///  - P407 (note): the annotation accepts an obligation the proof never
///    needed (harmless over-provisioning).
void CheckParallelism(const ir::Program& prog, const VerifyOptions& opts,
                      Report* report);

}  // namespace ndc::verify
