#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ndc::verify {

/// Severity of a finding. Errors indicate programs the compiler must never
/// emit (illegal transforms, unsafe access movements, malformed IR);
/// warnings indicate suspicious-but-tolerated constructs (boundary
/// subscripts the code generator skips, potential cross-core races);
/// notes are informational.
enum class Severity { kNote, kWarning, kError };

const char* SeverityName(Severity s);

/// Stable diagnostic codes. V1xx = IR structural validation,
/// L2xx = legality audit, R3xx = parallel-loop race detection,
/// P4xx = parallel-annotation proof audit, S5xx = synchronization audit.
enum class Code : int {
  // --- IR validator ---
  kBadArrayRef = 101,             ///< operand references an invalid array id
  kShapeMismatch = 102,           ///< F/f shape vs array rank or nest depth
  kBadOperandKind = 103,          ///< inconsistent operand kind/fields
  kSubscriptNeverInBounds = 104,  ///< access can never resolve in bounds
  kSubscriptOutOfBounds = 105,    ///< out of bounds at loop extremes (skipped)
  kBadLoopBound = 106,            ///< bound depends on a non-outer iterator
  kBadTransform = 107,            ///< transform shape wrong or not unimodular
  kLeadExceedsMax = 108,          ///< |lead| above the configured max_lead
  kLocNotEnabled = 109,           ///< planned loc outside the control register
  kMissingIndexData = 110,        ///< indirect access without index contents
  kEmptyNest = 111,               ///< nest with no loops or no statements
  kDuplicateStmtId = 112,         ///< two statements in one body share an id
  kIndexValueOutOfRange = 113,    ///< index-array entry outside target array
  kOffloadNeedsTwoLoads = 114,    ///< NDC annotation on a non use-use chain
  // --- legality auditor ---
  kIllegalTransform = 201,        ///< T*D has a lex-non-positive column
  kTransformWithUnknownDeps = 202,///< transform attached despite unknown deps
  kUnsafeLead = 203,              ///< lead crosses a conflicting write
  kLeadOnUnknownArray = 204,      ///< lead on an array with unknown deps
  // --- race detector ---
  kParallelCarriedDependence = 301,  ///< dependence carried by the parallel loop
  kParallelUnknownDependence = 302,  ///< unanalyzable dependence in parallel nest
  // --- parallel-annotation proof audit ---
  kAnnotatedCarriedFlow = 401,       ///< annotated level carries a flow dependence
  kAnnotatedCarriedAntiOutput = 402, ///< annotated level carries an anti/output dep
  kAnnotatedUnknownDeps = 403,       ///< annotated nest has unanalyzable references
  kAnnotationNeedsReduction = 404,   ///< proof requires a reduction combine
  kAnnotationNeedsPrivatization = 405,///< proof requires privatized arrays
  kAnnotationBadLevel = 406,         ///< annotated level outside the nest depth
  kAnnotationUnusedObligation = 407, ///< annotation enables an unneeded obligation
  // --- synchronization audit ---
  kSyncOnUnannotatedNest = 501,      ///< sync lowering without a parallel annotation
  kSyncWithoutObligation = 502,      ///< sync op discharges no classifier obligation
  kSyncMissingOnObligation = 503,    ///< obligation left unsynchronized in a sync nest
  kPostWaitNotDoacross = 504,        ///< post/wait on a level with no DOACROSS proof
  kPostWaitDistanceMismatch = 505,   ///< declared distance != witness min distance
  kSyncBadArray = 506,               ///< sync array missing or too small
  kPostWaitUncoveredDependence = 507,///< a carried dep post/wait cannot order
};

const char* CodeName(Code c);

/// Prefixed stable identifier, e.g. "V101", "L201", "R301", "P401".
std::string CodeId(Code c);

/// One finding, with enough location to pinpoint the offending construct:
/// nest index, statement body index / static id, and array id (each -1 or 0
/// when not applicable).
struct Diagnostic {
  Severity severity = Severity::kError;
  Code code = Code::kBadArrayRef;
  std::string message;
  int nest = -1;
  int stmt = -1;                ///< body index within the nest
  std::uint32_t stmt_id = 0;    ///< static statement id (0 = none)
  int array = -1;

  std::string ToString() const;
};

/// Collected diagnostics of one verification run.
struct Report {
  std::vector<Diagnostic> diags;

  void Add(Diagnostic d) { diags.push_back(std::move(d)); }
  void Add(Severity sev, Code code, std::string message, int nest = -1, int stmt = -1,
           std::uint32_t stmt_id = 0, int array = -1);

  int Count(Severity s) const;
  int ErrorCount() const { return Count(Severity::kError); }
  int WarningCount() const { return Count(Severity::kWarning); }
  bool Clean() const { return ErrorCount() == 0; }

  /// Merges another report's findings into this one.
  void Merge(const Report& other);

  /// Stable deterministic order: (nest, stmt, code, array, message). Run
  /// order of the passes stops mattering, so reports are byte-comparable.
  void Sort();

  /// Human-readable rendering, one finding per line.
  std::string ToText() const;
  /// Machine-readable rendering (a JSON array of finding objects).
  std::string ToJson() const;
};

}  // namespace ndc::verify
