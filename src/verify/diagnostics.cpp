#include "verify/diagnostics.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ndc::verify {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* CodeName(Code c) {
  switch (c) {
    case Code::kBadArrayRef: return "bad-array-ref";
    case Code::kShapeMismatch: return "shape-mismatch";
    case Code::kBadOperandKind: return "bad-operand-kind";
    case Code::kSubscriptNeverInBounds: return "subscript-never-in-bounds";
    case Code::kSubscriptOutOfBounds: return "subscript-out-of-bounds";
    case Code::kBadLoopBound: return "bad-loop-bound";
    case Code::kBadTransform: return "bad-transform";
    case Code::kLeadExceedsMax: return "lead-exceeds-max";
    case Code::kLocNotEnabled: return "loc-not-enabled";
    case Code::kMissingIndexData: return "missing-index-data";
    case Code::kEmptyNest: return "empty-nest";
    case Code::kDuplicateStmtId: return "duplicate-stmt-id";
    case Code::kIndexValueOutOfRange: return "index-value-out-of-range";
    case Code::kOffloadNeedsTwoLoads: return "offload-needs-two-loads";
    case Code::kIllegalTransform: return "illegal-transform";
    case Code::kTransformWithUnknownDeps: return "transform-with-unknown-deps";
    case Code::kUnsafeLead: return "unsafe-lead";
    case Code::kLeadOnUnknownArray: return "lead-on-unknown-array";
    case Code::kParallelCarriedDependence: return "parallel-carried-dependence";
    case Code::kParallelUnknownDependence: return "parallel-unknown-dependence";
    case Code::kAnnotatedCarriedFlow: return "annotated-carried-flow";
    case Code::kAnnotatedCarriedAntiOutput: return "annotated-carried-anti-output";
    case Code::kAnnotatedUnknownDeps: return "annotated-unknown-deps";
    case Code::kAnnotationNeedsReduction: return "annotation-needs-reduction";
    case Code::kAnnotationNeedsPrivatization: return "annotation-needs-privatization";
    case Code::kAnnotationBadLevel: return "annotation-bad-level";
    case Code::kAnnotationUnusedObligation: return "annotation-unused-obligation";
    case Code::kSyncOnUnannotatedNest: return "sync-on-unannotated-nest";
    case Code::kSyncWithoutObligation: return "sync-without-obligation";
    case Code::kSyncMissingOnObligation: return "sync-missing-on-obligation";
    case Code::kPostWaitNotDoacross: return "postwait-not-doacross";
    case Code::kPostWaitDistanceMismatch: return "postwait-distance-mismatch";
    case Code::kSyncBadArray: return "sync-bad-array";
    case Code::kPostWaitUncoveredDependence: return "postwait-uncovered-dependence";
  }
  return "?";
}

std::string CodeId(Code c) {
  // Code prefix mirrors the pass that owns the range: V1xx structural
  // (validator), L2xx legality (auditor), R3xx races (detector),
  // P4xx parallel-annotation proofs, S5xx synchronization audit.
  int num = static_cast<int>(c);
  char prefix = num >= 500 ? 'S'
              : num >= 400 ? 'P'
              : num >= 300 ? 'R'
              : num >= 200 ? 'L'
                           : 'V';
  return prefix + std::to_string(num);
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << " [" << CodeId(code) << " " << CodeName(code) << "]";
  if (nest >= 0) os << " nest " << nest;
  if (stmt >= 0) os << " stmt " << stmt;
  if (stmt_id != 0) os << " (S" << stmt_id << ")";
  if (array >= 0) os << " array " << array;
  os << ": " << message;
  return os.str();
}

void Report::Add(Severity sev, Code code, std::string message, int nest, int stmt,
                 std::uint32_t stmt_id, int array) {
  Diagnostic d;
  d.severity = sev;
  d.code = code;
  d.message = std::move(message);
  d.nest = nest;
  d.stmt = stmt;
  d.stmt_id = stmt_id;
  d.array = array;
  diags.push_back(std::move(d));
}

int Report::Count(Severity s) const {
  int n = 0;
  for (const Diagnostic& d : diags) n += d.severity == s;
  return n;
}

void Report::Merge(const Report& other) {
  diags.insert(diags.end(), other.diags.begin(), other.diags.end());
}

void Report::Sort() {
  std::stable_sort(diags.begin(), diags.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.nest != b.nest) return a.nest < b.nest;
                     if (a.stmt != b.stmt) return a.stmt < b.stmt;
                     if (a.code != b.code) return static_cast<int>(a.code) < static_cast<int>(b.code);
                     if (a.array != b.array) return a.array < b.array;
                     return a.message < b.message;
                   });
}

std::string Report::ToText() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags) os << d.ToString() << "\n";
  os << ErrorCount() << " error(s), " << WarningCount() << " warning(s), "
     << Count(Severity::kNote) << " note(s)\n";
  return os.str();
}

namespace {
void JsonEscape(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}
}  // namespace

std::string Report::ToJson() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    if (i != 0) os << ",";
    os << "\n  {\"severity\": \"" << SeverityName(d.severity) << "\", \"code\": "
       << static_cast<int>(d.code) << ", \"name\": \"" << CodeName(d.code)
       << "\", \"nest\": " << d.nest << ", \"stmt\": " << d.stmt
       << ", \"stmt_id\": " << d.stmt_id << ", \"array\": " << d.array
       << ", \"message\": \"";
    JsonEscape(os, d.message);
    os << "\"}";
  }
  os << (diags.empty() ? "]" : "\n]");
  return os.str();
}

}  // namespace ndc::verify
