#pragma once

#include <string>

#include "verify/diagnostics.hpp"

namespace ndc::verify {

/// Renders a report as a SARIF 2.1.0 log (the static-analysis interchange
/// format consumed by GitHub code scanning and most SARIF viewers). One
/// run, one tool; every distinct diagnostic code becomes a reporting rule
/// and every finding a result with a logical location
/// "<program>/nest<N>/stmt<S>". Severities map kError -> "error",
/// kWarning -> "warning", kNote -> "note".
std::string ToSarif(const Report& report, const std::string& tool_name = "ndc-lint",
                    const std::string& tool_version = "1.0.0");

}  // namespace ndc::verify
