#pragma once

#include "ir/program.hpp"
#include "verify/diagnostics.hpp"
#include "verify/verify_options.hpp"

namespace ndc::verify {

/// Structural IR validation: array references and access-function shapes,
/// subscript ranges at the loop extremes (interval propagation over the
/// iteration box, so triangular bounds are handled conservatively), loop
/// bound dependences, transform shape/unimodularity, and NDC annotation
/// sanity (lead magnitudes vs `max_lead`, planned location vs the control
/// register, use-use chain shape).
///
/// Subscripts that *partially* escape the array at the extremes are
/// warnings — the code generator skips unresolvable instances, and stencil
/// halos rely on this — while an access that can never resolve is an error.
void ValidateIr(const ir::Program& prog, const VerifyOptions& opts, Report* report);

}  // namespace ndc::verify
