#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "noc/geometry.hpp"
#include "noc/routing.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "obs/sampler.hpp"
#include "sim/event_queue.hpp"
#include "sim/sharded_queue.hpp"
#include "sim/stats.hpp"

namespace ndc::noc {

/// Timing/structural parameters of the on-chip network (Table 1 defaults:
/// 16-byte links, 3-cycle router pipeline, X-Y routing).
struct NetworkParams {
  sim::Cycle router_pipeline = 3;  ///< per-hop router latency
  int link_bytes = 16;             ///< link width (bytes transferred per cycle)
};

/// A message traversing the NoC. `route` is fixed at injection time (the
/// compiler may have selected a non-default minimal route; hardware default
/// is X-Y).
struct Packet {
  std::uint64_t id = 0;       ///< assigned by Network::Send
  sim::NodeId src = 0;
  sim::NodeId dst = 0;
  int size_bytes = 8;
  Route route;                ///< links from src to dst
  std::size_t hop = 0;        ///< index of the next link to traverse
  std::uint64_t tag = 0;      ///< opaque user tag (e.g. memory request id)
  int kind = 0;               ///< opaque user kind
  std::uint64_t obs_token = 0;  ///< request-trace token (0 = untraced)
};

/// What a hop hook tells the network to do with a packet that just arrived
/// at a router.
enum class HopAction {
  kContinue,  ///< traverse the next link normally
  kHold,      ///< park the packet in this router's link buffer (NDC wait)
  kSquash,    ///< consume the packet here (NDC computed; data no longer travels)
};

/// What a faulted link does to a packet about to traverse it. Produced by a
/// fault hook (src/fault's injector binds one); the network itself is
/// fault-agnostic. A dropped packet is retransmitted from the same router
/// after `retransmit_delay` cycles — never lost.
struct LinkFault {
  sim::Cycle extra_latency = 0;
  bool drop = false;
  sim::Cycle retransmit_delay = 0;  ///< must be set when drop is true
};

/// Cycle-approximate mesh network with per-link serialization and
/// contention (busy-until per link), a 3-cycle router pipeline per hop, and
/// a per-hop hook that lets the NDC engine observe, hold, or squash packets
/// at link buffers.
///
/// Under conservative-window sharding (EnableSharding, DESIGN.md §14) a hop
/// runs on the shard owning the router it departs from; crossing a shard
/// boundary posts the next hop through the sharded queue's mailboxes. The
/// per-hop arrive cycle is always >= now + router_pipeline + 1 serialization
/// cycle, which is exactly the lookahead the sharded queue synchronizes on.
/// Mutable per-packet state (flight pool, counters, packet ids) lives in
/// per-shard lanes so concurrent shards never share a written cache line;
/// link busy/hold state is per-link and a link is only ever touched by the
/// shard owning its source router.
class Network {
 public:
  using DeliverFn = std::function<void(const Packet&, sim::Cycle)>;
  /// Called when `packet` is at the router about to traverse `link`.
  using HopHook = std::function<HopAction(Packet&, sim::LinkId, sim::Cycle)>;
  /// Called per link traversal attempt when installed; returns the fault
  /// effect (if any) the traversal experiences.
  using LinkFaultFn = std::function<LinkFault(sim::LinkId, sim::Cycle)>;

  Network(Mesh mesh, sim::EventQueue& eq, NetworkParams params = {});

  const Mesh& mesh() const { return mesh_; }
  const NetworkParams& params() const { return params_; }

  /// Switches hop scheduling and per-packet state onto `sq`'s shards.
  /// `shard_of_node[n]` is the shard owning node n. Must be called before
  /// any Send; only valid for runs where the hop hook never holds or
  /// squashes (the held-packet table is not sharded).
  void EnableSharding(sim::ShardedEventQueue* sq, std::vector<int> shard_of_node);
  bool sharded() const { return sq_ != nullptr; }

  /// Injects a packet. If `p.route` is empty and src != dst, the default
  /// X-Y route is used. Returns the packet id.
  std::uint64_t Send(Packet p, DeliverFn on_deliver);

  /// Resumes a packet previously held by the hop hook. No-op if the id is
  /// unknown (e.g. already squashed).
  void Release(std::uint64_t packet_id);

  /// Consumes a held packet (its data was absorbed by an NDC computation).
  void Squash(std::uint64_t packet_id);

  bool IsHeld(std::uint64_t packet_id) const { return held_.count(packet_id) != 0; }

  void set_hop_hook(HopHook hook) { hop_hook_ = std::move(hook); }

  /// Installs a link-fault hook (empty schedule => never install one: the
  /// hook-less traversal path is byte-identical to the pre-fault network).
  void set_link_fault_hook(LinkFaultFn hook) { link_fault_ = std::move(hook); }

  /// Packets handed to their DeliverFn so far (conservation checks:
  /// packets == delivered + squashed). Plain accessor — deliberately never
  /// materialized into stats() so golden StatSet dumps are unchanged.
  std::uint64_t delivered_count() const;
  std::uint64_t sent_count() const;
  std::uint64_t squashed_count() const;
  std::uint64_t dropped_count() const;
  std::uint64_t retransmitted_count() const;

  /// Traced packets report each link traversal to `tracer` (may be null).
  void set_request_tracer(obs::RequestTracer* tracer) { tracer_ = tracer; }

  /// Phase-window sampler for link-busy deltas (may be null). Passive: a
  /// disabled or absent sampler leaves traversal timing untouched.
  void set_sampler(obs::WindowSampler* sampler) { sampler_ = sampler; }

  /// Registers per-link traversal and busy-cycle counters
  /// ("noc.link.<id>/traversals", "noc.link.<id>/busy_cycles") and
  /// network-wide counters under `reg`. Handles are resolved once here; the
  /// hot path bumps pointers only.
  void RegisterMetrics(obs::Registry& reg);

  /// Serialization latency of a packet on one link.
  sim::Cycle SerializationCycles(int size_bytes) const {
    return static_cast<sim::Cycle>((size_bytes + params_.link_bytes - 1) / params_.link_bytes);
  }

  /// Uncontended latency of a full route (used by breakeven estimation).
  sim::Cycle UncontendedLatency(int hops, int size_bytes) const {
    if (hops == 0) return params_.router_pipeline;
    return static_cast<sim::Cycle>(hops) * (params_.router_pipeline + SerializationCycles(size_bytes));
  }

  /// Counter view. Materialized lazily from raw per-event counters (the
  /// per-event path never touches string keys); key set and values are
  /// identical to the historical eager StatSet (lanes are summed in shard
  /// order, so sharded runs merge deterministically).
  sim::StatSet& stats() {
    MaterializeStats();
    return stats_;
  }
  const sim::StatSet& stats() const {
    MaterializeStats();
    return stats_;
  }

 private:
  /// Pooled per-packet in-flight state. Hop events capture only {this,
  /// Flight*} (which fits a SmallCallback's inline buffer), so a hop
  /// schedules nothing on the heap; the seed implementation instead moved
  /// the whole Packet + DeliverFn into a fresh std::function per hop.
  /// Flights are recycled through a free list; their route vectors keep
  /// their capacity across reuse.
  struct Flight {
    Packet packet;
    DeliverFn deliver;
  };

  struct Held {
    Flight* flight;
    sim::LinkId link;
  };

  /// Per-shard mutable state (one lane in unsharded runs). A flight is
  /// acquired from the injecting shard's lane and released into the lane of
  /// the shard it finishes on — pool migration is deterministic because the
  /// event schedule is.
  struct alignas(64) Lane {
    std::deque<Flight> flight_arena;   ///< stable storage for pooled flights
    std::vector<Flight*> free_flights;
    std::uint64_t next_seq = 0;
    std::uint64_t delivered = 0;  ///< accessor-only; never a StatSet key
    sim::RawCounter packets, bytes, holds, squashes, releases, hol_blocked,
        link_busy_cycles, contention_cycles;
    // Fault counters: touched only when a link-fault hook injects something,
    // so their StatSet keys never appear in fault-free runs (goldens frozen).
    sim::RawCounter drops, retransmits, fault_delay_cycles;
  };

  /// The event queue of the executing shard (the plain queue when
  /// unsharded).
  sim::EventQueue& cur() { return sq_ != nullptr ? sq_->current() : eq_; }
  Lane& lane() {
    return sq_ != nullptr
               ? lanes_[static_cast<std::size_t>(sim::ShardedEventQueue::CurrentShard())]
               : lanes_.front();
  }
  /// Sums a per-lane counter in lane (= shard) order.
  template <typename F>
  sim::RawCounter Merged(F&& pick) const {
    sim::RawCounter m;
    for (const Lane& l : lanes_) {
      const sim::RawCounter& c = pick(l);
      m.v += c.v;
      m.touched = m.touched || c.touched;
    }
    return m;
  }

  Flight* AcquireFlight();
  void ReleaseFlight(Flight* f);
  void ProcessHop(Flight* f, bool run_hook);
  void Traverse(Flight* f, sim::LinkId link);
  void MaterializeStats() const;

  /// Extra cycles a passing packet pays per held packet in a link buffer.
  static constexpr sim::Cycle kHoldPenalty = 16;

  Mesh mesh_;
  sim::EventQueue& eq_;
  NetworkParams params_;
  sim::ShardedEventQueue* sq_ = nullptr;
  std::vector<int> shard_of_node_;
  HopHook hop_hook_;
  LinkFaultFn link_fault_;
  obs::RequestTracer* tracer_ = nullptr;
  obs::WindowSampler* sampler_ = nullptr;
  std::vector<obs::Counter*> link_traversals_;  ///< per-link registry handles
  std::vector<obs::Counter*> link_busy_;        ///< per-link busy-cycle handles
  std::vector<sim::Cycle> link_busy_until_;
  // Held packets occupy link-buffer slots; passing traffic pays a
  // per-held-packet delay (buffer pressure).
  std::vector<int> link_hold_count_;
  std::unordered_map<std::uint64_t, Held> held_;
  std::deque<Lane> lanes_;
  mutable sim::StatSet stats_;
};

}  // namespace ndc::noc
