#include "noc/signature.hpp"

#include <sstream>

namespace ndc::noc {

Signature Signature::FromRoute(const std::vector<sim::LinkId>& route) {
  Signature s;
  for (sim::LinkId l : route) s.Set(l);
  return s;
}

Signature Signature::Intersect(const Signature& o) const {
  Signature r;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] & o.words_[i];
  return r;
}

Signature Signature::Union(const Signature& o) const {
  Signature r;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] = words_[i] | o.words_[i];
  return r;
}

int Signature::Popcount() const {
  int n = 0;
  for (std::uint64_t w : words_) n += std::popcount(w);
  return n;
}

std::vector<sim::LinkId> Signature::Links() const {
  std::vector<sim::LinkId> out;
  for (int l = 0; l < kMaxBits; ++l) {
    if (Test(l)) out.push_back(l);
  }
  return out;
}

bool Signature::Empty() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::string Signature::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (sim::LinkId l : Links()) {
    if (!first) os << ",";
    os << l;
    first = false;
  }
  os << "}";
  return os.str();
}

}  // namespace ndc::noc
