#include "noc/network.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace ndc::noc {

Network::Network(Mesh mesh, sim::EventQueue& eq, NetworkParams params)
    : mesh_(mesh), eq_(eq), params_(params) {
  link_busy_until_.assign(static_cast<std::size_t>(mesh_.num_link_slots()), 0);
  link_hold_count_.assign(static_cast<std::size_t>(mesh_.num_link_slots()), 0);
  lanes_.emplace_back();  // unsharded: a single lane, selected unconditionally
}

void Network::EnableSharding(sim::ShardedEventQueue* sq, std::vector<int> shard_of_node) {
  assert(sq != nullptr);
  assert(sent_count() == 0 && "sharding must be enabled before any traffic");
  assert(shard_of_node.size() == static_cast<std::size_t>(mesh_.num_nodes()));
  sq_ = sq;
  shard_of_node_ = std::move(shard_of_node);
  while (lanes_.size() < static_cast<std::size_t>(sq_->num_shards())) lanes_.emplace_back();
}

void Network::RegisterMetrics(obs::Registry& reg) {
  if constexpr (!obs::kObsEnabled) return;
  link_traversals_.assign(static_cast<std::size_t>(mesh_.num_link_slots()), nullptr);
  link_busy_.assign(static_cast<std::size_t>(mesh_.num_link_slots()), nullptr);
  for (std::size_t i = 0; i < link_traversals_.size(); ++i) {
    link_traversals_[i] = reg.counter("noc.link." + std::to_string(i) + "/traversals");
    link_busy_[i] = reg.counter("noc.link." + std::to_string(i) + "/busy_cycles");
  }
}

Network::Flight* Network::AcquireFlight() {
  Lane& ln = lane();
  if (ln.free_flights.empty()) {
    ln.flight_arena.emplace_back();
    return &ln.flight_arena.back();
  }
  Flight* f = ln.free_flights.back();
  ln.free_flights.pop_back();
  return f;
}

void Network::ReleaseFlight(Flight* f) {
  f->deliver = nullptr;        // drop captured state now, keep the slot
  f->packet.route.clear();     // keep capacity for the next packet
  // A flight retires into the lane of the shard it finished on (which may
  // differ from the lane that allocated it); the migration is deterministic
  // because the event schedule is.
  lane().free_flights.push_back(f);
}

std::uint64_t Network::Send(Packet p, DeliverFn on_deliver) {
  Lane& ln = lane();
  // Lane-striped ids: sequence * num_lanes + lane_index + 1. With one lane
  // this is exactly the historical 1,2,3,... id stream; with N lanes the ids
  // stay globally unique and per-lane deterministic without shared state.
  p.id = ln.next_seq++ * lanes_.size() + (&ln - &lanes_.front()) + 1;
  p.hop = 0;
  ln.packets.Add();
  ln.bytes.Add(static_cast<std::uint64_t>(p.size_bytes));
  std::uint64_t id = p.id;
  Flight* f = AcquireFlight();
  // Hold on to the pooled route buffer so the default X-Y route reuses its
  // capacity; a caller-selected route replaces it wholesale.
  Route pooled = std::move(f->packet.route);
  f->packet = std::move(p);
  if (f->packet.route.empty()) {
    if (f->packet.src != f->packet.dst) {
      XyRouteInto(mesh_, f->packet.src, f->packet.dst, pooled);
    } else {
      pooled.clear();
    }
    f->packet.route = std::move(pooled);
  }
  f->deliver = std::move(on_deliver);
  // Local delivery (same node) still pays one router pipeline transit.
  cur().ScheduleAfter(0, [this, f] { ProcessHop(f, /*run_hook=*/true); });
  return id;
}

void Network::ProcessHop(Flight* f, bool run_hook) {
  sim::Cycle now = cur().now();
  Packet& p = f->packet;
  if (p.hop >= p.route.size()) {
    cur().ScheduleAfter(params_.router_pipeline, [this, f] {
      ++lane().delivered;
      f->deliver(f->packet, 0);
      ReleaseFlight(f);
    });
    return;
  }
  sim::LinkId link = p.route[p.hop];
  if (run_hook && hop_hook_) {
    switch (hop_hook_(p, link, now)) {
      case HopAction::kContinue:
        break;
      case HopAction::kHold:
        lane().holds.Add();
        ++link_hold_count_[static_cast<std::size_t>(link)];
        held_.emplace(p.id, Held{f, link});
        return;
      case HopAction::kSquash:
        lane().squashes.Add();
        ReleaseFlight(f);
        return;
    }
  }
  Traverse(f, link);
}

void Network::Traverse(Flight* f, sim::LinkId link) {
  Packet& p = f->packet;
  sim::Cycle now = cur().now();
  sim::Cycle ready = now + params_.router_pipeline;
  if (link_fault_) {
    LinkFault fault = link_fault_(link, now);
    if (fault.drop) {
      // The packet never occupied the link; it retries the same hop from
      // this router after the retransmit delay (the fault hook decides the
      // delay so the network stays policy-free). The NDC hop hook is not
      // re-run: its decision for this hop already stands.
      assert(fault.retransmit_delay > 0 && "a dropped packet needs a retransmit delay");
      lane().drops.Add();
      cur().ScheduleAfter(fault.retransmit_delay, [this, f, link] {
        lane().retransmits.Add();
        Traverse(f, link);
      });
      return;
    }
    if (fault.extra_latency > 0) {
      lane().fault_delay_cycles.Add(fault.extra_latency);
      ready += fault.extra_latency;
    }
  }
  // Buffer pressure: each packet held in this link's buffer (an NDC operand
  // waiting for its partner) reduces the slots available to passing
  // traffic, delaying it proportionally.
  int held_here = link_hold_count_[static_cast<std::size_t>(link)];
  if (held_here > 0) {
    lane().hol_blocked.Add();
    ready += static_cast<sim::Cycle>(held_here) * kHoldPenalty;
  }
  sim::Cycle depart = std::max(ready, link_busy_until_[static_cast<std::size_t>(link)]);
  sim::Cycle ser = SerializationCycles(p.size_bytes);
  link_busy_until_[static_cast<std::size_t>(link)] = depart + ser;
  lane().link_busy_cycles.Add(ser);
  if (depart > ready) lane().contention_cycles.Add(depart - ready);
  sim::Cycle arrive = depart + ser;
  if constexpr (obs::kObsEnabled) {
    if (tracer_ != nullptr && p.obs_token != 0) {
      tracer_->Hop(p.obs_token, link, depart, arrive);
    }
    if (!link_traversals_.empty()) {
      link_traversals_[static_cast<std::size_t>(link)]->Add();
      link_busy_[static_cast<std::size_t>(link)]->Add(ser);
    }
    if (sampler_ != nullptr) {
      sampler_->Note(obs::Signal::kNocBusy, depart, ser);
    }
  }
  p.hop++;
  if (sq_ != nullptr) {
    // The next hop runs on the shard owning the router at the far end of
    // this link. arrive >= now + router_pipeline + 1 serialization cycle,
    // which satisfies the sharded queue's lookahead for cross-shard posts
    // (same-shard posts go straight into the local queue).
    int dst_shard = shard_of_node_[static_cast<std::size_t>(mesh_.LinkDest(link))];
    sq_->ScheduleOn(dst_shard, arrive, [this, f] { ProcessHop(f, /*run_hook=*/true); });
  } else {
    eq_.ScheduleAt(arrive, [this, f] { ProcessHop(f, /*run_hook=*/true); });
  }
}

void Network::Release(std::uint64_t packet_id) {
  auto it = held_.find(packet_id);
  if (it == held_.end()) return;
  Held h = it->second;
  held_.erase(it);
  lane().releases.Add();
  --link_hold_count_[static_cast<std::size_t>(h.link)];
  Traverse(h.flight, h.link);
}

void Network::Squash(std::uint64_t packet_id) {
  auto it = held_.find(packet_id);
  if (it == held_.end()) return;
  Held h = it->second;
  held_.erase(it);
  lane().squashes.Add();
  --link_hold_count_[static_cast<std::size_t>(h.link)];
  ReleaseFlight(h.flight);
}

std::uint64_t Network::delivered_count() const {
  std::uint64_t d = 0;
  for (const Lane& l : lanes_) d += l.delivered;
  return d;
}
std::uint64_t Network::sent_count() const { return Merged([](const Lane& l) -> const sim::RawCounter& { return l.packets; }).v; }
std::uint64_t Network::squashed_count() const { return Merged([](const Lane& l) -> const sim::RawCounter& { return l.squashes; }).v; }
std::uint64_t Network::dropped_count() const { return Merged([](const Lane& l) -> const sim::RawCounter& { return l.drops; }).v; }
std::uint64_t Network::retransmitted_count() const { return Merged([](const Lane& l) -> const sim::RawCounter& { return l.retransmits; }).v; }

void Network::MaterializeStats() const {
  stats_.Clear();
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.packets; }).MaterializeInto(stats_, "noc.packets");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.bytes; }).MaterializeInto(stats_, "noc.bytes");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.holds; }).MaterializeInto(stats_, "noc.holds");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.squashes; }).MaterializeInto(stats_, "noc.squashes");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.releases; }).MaterializeInto(stats_, "noc.releases");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.hol_blocked; }).MaterializeInto(stats_, "noc.hol_blocked");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.link_busy_cycles; }).MaterializeInto(stats_, "noc.link_busy_cycles");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.contention_cycles; }).MaterializeInto(stats_, "noc.contention_cycles");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.drops; }).MaterializeInto(stats_, "noc.drops");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.retransmits; }).MaterializeInto(stats_, "noc.retransmits");
  Merged([](const Lane& l) -> const sim::RawCounter& { return l.fault_delay_cycles; }).MaterializeInto(stats_, "noc.fault_delay_cycles");
}

}  // namespace ndc::noc
