#include "noc/network.hpp"

#include <algorithm>
#include <cassert>
#include <string>

namespace ndc::noc {

Network::Network(Mesh mesh, sim::EventQueue& eq, NetworkParams params)
    : mesh_(mesh), eq_(eq), params_(params) {
  link_busy_until_.assign(static_cast<std::size_t>(mesh_.num_link_slots()), 0);
  link_hold_count_.assign(static_cast<std::size_t>(mesh_.num_link_slots()), 0);
}

void Network::RegisterMetrics(obs::Registry& reg) {
  if constexpr (!obs::kObsEnabled) return;
  link_traversals_.assign(static_cast<std::size_t>(mesh_.num_link_slots()), nullptr);
  link_busy_.assign(static_cast<std::size_t>(mesh_.num_link_slots()), nullptr);
  for (std::size_t i = 0; i < link_traversals_.size(); ++i) {
    link_traversals_[i] = reg.counter("noc.link." + std::to_string(i) + "/traversals");
    link_busy_[i] = reg.counter("noc.link." + std::to_string(i) + "/busy_cycles");
  }
}

Network::Flight* Network::AcquireFlight() {
  if (free_flights_.empty()) {
    flight_arena_.emplace_back();
    return &flight_arena_.back();
  }
  Flight* f = free_flights_.back();
  free_flights_.pop_back();
  return f;
}

void Network::ReleaseFlight(Flight* f) {
  f->deliver = nullptr;        // drop captured state now, keep the slot
  f->packet.route.clear();     // keep capacity for the next packet
  free_flights_.push_back(f);
}

std::uint64_t Network::Send(Packet p, DeliverFn on_deliver) {
  p.id = next_id_++;
  p.hop = 0;
  packets_.Add();
  bytes_.Add(static_cast<std::uint64_t>(p.size_bytes));
  std::uint64_t id = p.id;
  Flight* f = AcquireFlight();
  // Hold on to the pooled route buffer so the default X-Y route reuses its
  // capacity; a caller-selected route replaces it wholesale.
  Route pooled = std::move(f->packet.route);
  f->packet = std::move(p);
  if (f->packet.route.empty()) {
    if (f->packet.src != f->packet.dst) {
      XyRouteInto(mesh_, f->packet.src, f->packet.dst, pooled);
    } else {
      pooled.clear();
    }
    f->packet.route = std::move(pooled);
  }
  f->deliver = std::move(on_deliver);
  // Local delivery (same node) still pays one router pipeline transit.
  eq_.ScheduleAfter(0, [this, f] { ProcessHop(f, /*run_hook=*/true); });
  return id;
}

void Network::ProcessHop(Flight* f, bool run_hook) {
  sim::Cycle now = eq_.now();
  Packet& p = f->packet;
  if (p.hop >= p.route.size()) {
    eq_.ScheduleAfter(params_.router_pipeline, [this, f] {
      ++delivered_;
      f->deliver(f->packet, 0);
      ReleaseFlight(f);
    });
    return;
  }
  sim::LinkId link = p.route[p.hop];
  if (run_hook && hop_hook_) {
    switch (hop_hook_(p, link, now)) {
      case HopAction::kContinue:
        break;
      case HopAction::kHold:
        holds_.Add();
        ++link_hold_count_[static_cast<std::size_t>(link)];
        held_.emplace(p.id, Held{f, link});
        return;
      case HopAction::kSquash:
        squashes_.Add();
        ReleaseFlight(f);
        return;
    }
  }
  Traverse(f, link);
}

void Network::Traverse(Flight* f, sim::LinkId link) {
  Packet& p = f->packet;
  sim::Cycle now = eq_.now();
  sim::Cycle ready = now + params_.router_pipeline;
  if (link_fault_) {
    LinkFault fault = link_fault_(link, now);
    if (fault.drop) {
      // The packet never occupied the link; it retries the same hop from
      // this router after the retransmit delay (the fault hook decides the
      // delay so the network stays policy-free). The NDC hop hook is not
      // re-run: its decision for this hop already stands.
      assert(fault.retransmit_delay > 0 && "a dropped packet needs a retransmit delay");
      drops_.Add();
      eq_.ScheduleAfter(fault.retransmit_delay, [this, f, link] {
        retransmits_.Add();
        Traverse(f, link);
      });
      return;
    }
    if (fault.extra_latency > 0) {
      fault_delay_cycles_.Add(fault.extra_latency);
      ready += fault.extra_latency;
    }
  }
  // Buffer pressure: each packet held in this link's buffer (an NDC operand
  // waiting for its partner) reduces the slots available to passing
  // traffic, delaying it proportionally.
  int held_here = link_hold_count_[static_cast<std::size_t>(link)];
  if (held_here > 0) {
    hol_blocked_.Add();
    ready += static_cast<sim::Cycle>(held_here) * kHoldPenalty;
  }
  sim::Cycle depart = std::max(ready, link_busy_until_[static_cast<std::size_t>(link)]);
  sim::Cycle ser = SerializationCycles(p.size_bytes);
  link_busy_until_[static_cast<std::size_t>(link)] = depart + ser;
  link_busy_cycles_.Add(ser);
  if (depart > ready) contention_cycles_.Add(depart - ready);
  sim::Cycle arrive = depart + ser;
  if constexpr (obs::kObsEnabled) {
    if (tracer_ != nullptr && p.obs_token != 0) {
      tracer_->Hop(p.obs_token, link, depart, arrive);
    }
    if (!link_traversals_.empty()) {
      link_traversals_[static_cast<std::size_t>(link)]->Add();
      link_busy_[static_cast<std::size_t>(link)]->Add(ser);
    }
    if (sampler_ != nullptr) {
      sampler_->Note(obs::Signal::kNocBusy, depart, ser);
    }
  }
  p.hop++;
  eq_.ScheduleAt(arrive, [this, f] { ProcessHop(f, /*run_hook=*/true); });
}

void Network::Release(std::uint64_t packet_id) {
  auto it = held_.find(packet_id);
  if (it == held_.end()) return;
  Held h = it->second;
  held_.erase(it);
  releases_.Add();
  --link_hold_count_[static_cast<std::size_t>(h.link)];
  Traverse(h.flight, h.link);
}

void Network::Squash(std::uint64_t packet_id) {
  auto it = held_.find(packet_id);
  if (it == held_.end()) return;
  Held h = it->second;
  held_.erase(it);
  squashes_.Add();
  --link_hold_count_[static_cast<std::size_t>(h.link)];
  ReleaseFlight(h.flight);
}

void Network::MaterializeStats() const {
  stats_.Clear();
  packets_.MaterializeInto(stats_, "noc.packets");
  bytes_.MaterializeInto(stats_, "noc.bytes");
  holds_.MaterializeInto(stats_, "noc.holds");
  squashes_.MaterializeInto(stats_, "noc.squashes");
  releases_.MaterializeInto(stats_, "noc.releases");
  hol_blocked_.MaterializeInto(stats_, "noc.hol_blocked");
  link_busy_cycles_.MaterializeInto(stats_, "noc.link_busy_cycles");
  contention_cycles_.MaterializeInto(stats_, "noc.contention_cycles");
  drops_.MaterializeInto(stats_, "noc.drops");
  retransmits_.MaterializeInto(stats_, "noc.retransmits");
  fault_delay_cycles_.MaterializeInto(stats_, "noc.fault_delay_cycles");
}

}  // namespace ndc::noc
