#pragma once

#include <vector>

#include "noc/geometry.hpp"
#include "noc/signature.hpp"

namespace ndc::noc {

/// A route is the ordered list of directional links traversed from source
/// to destination. Empty when src == dst.
using Route = std::vector<sim::LinkId>;

/// Deterministic dimension-ordered routes (the mesh's default is X-Y,
/// per Table 1).
Route XyRoute(const Mesh& mesh, sim::NodeId src, sim::NodeId dst);
Route YxRoute(const Mesh& mesh, sim::NodeId src, sim::NodeId dst);

/// XyRoute into a caller-owned buffer (cleared first), so hot paths can
/// reuse a route vector's capacity instead of allocating per packet.
void XyRouteInto(const Mesh& mesh, sim::NodeId src, sim::NodeId dst, Route& out);

/// A minimal "staircase" route that travels in x until column `pivot_x`,
/// then in y until row `pivot_y`, then finishes x then y. `pivot_x` /
/// `pivot_y` must lie within the bounding box of src..dst; the result is
/// always a minimal route.
Route StaircaseRoute(const Mesh& mesh, sim::NodeId src, sim::NodeId dst, int pivot_x,
                     int pivot_y);

/// Every minimal route from src to dst (there are C(dx+dy, dx) of them).
/// Intended for tests and exhaustive searches on small meshes.
std::vector<Route> EnumerateMinimalRoutes(const Mesh& mesh, sim::NodeId src, sim::NodeId dst);

/// Result of the signature co-selection of Section 5.2.1 (challenge 3):
/// minimal routes for two independent accesses chosen to maximize
/// popcount(S_a ∩ S_b), i.e. the number of physical links the two accesses
/// share (each shared link is an NDC opportunity at its router).
struct RoutePair {
  Route a;
  Route b;
  Signature shared;  // S_a ∩ S_b
  int shared_links = 0;
};

/// Chooses minimal routes for (a_src -> a_dst) and (b_src -> b_dst)
/// maximizing the number of common links. Uses the closed-form staircase
/// construction (exact for monotone minimal paths; verified against
/// exhaustive enumeration in tests).
RoutePair MaxOverlapRoutes(const Mesh& mesh, sim::NodeId a_src, sim::NodeId a_dst,
                           sim::NodeId b_src, sim::NodeId b_dst);

/// Exhaustive-search reference implementation of MaxOverlapRoutes (small
/// meshes only; O(#paths^2)).
RoutePair MaxOverlapRoutesBruteForce(const Mesh& mesh, sim::NodeId a_src, sim::NodeId a_dst,
                                     sim::NodeId b_src, sim::NodeId b_dst);

/// True if `route` is a valid route: consecutive links connect, starts at
/// src, ends at dst.
bool IsValidRoute(const Mesh& mesh, const Route& route, sim::NodeId src, sim::NodeId dst);

/// True if `route` has minimal (Manhattan) length.
bool IsMinimalRoute(const Mesh& mesh, const Route& route, sim::NodeId src, sim::NodeId dst);

}  // namespace ndc::noc
