#include "noc/routing.hpp"

#include <algorithm>
#include <cassert>

namespace ndc::noc {
namespace {

// Appends the links of a straight x-run from `cur` to column `tx`.
void AppendXRun(const Mesh& mesh, Coord& cur, int tx, Route& out) {
  while (cur.x != tx) {
    Dir d = tx > cur.x ? Dir::East : Dir::West;
    out.push_back(mesh.LinkFrom(mesh.NodeAt(cur), d));
    cur = Mesh::Neighbor(cur, d);
  }
}

// Appends the links of a straight y-run from `cur` to row `ty`.
void AppendYRun(const Mesh& mesh, Coord& cur, int ty, Route& out) {
  while (cur.y != ty) {
    Dir d = ty > cur.y ? Dir::South : Dir::North;
    out.push_back(mesh.LinkFrom(mesh.NodeAt(cur), d));
    cur = Mesh::Neighbor(cur, d);
  }
}

void EnumerateRec(const Mesh& mesh, Coord cur, Coord dst, Route& prefix,
                  std::vector<Route>& out) {
  if (cur == dst) {
    out.push_back(prefix);
    return;
  }
  if (cur.x != dst.x) {
    Dir d = dst.x > cur.x ? Dir::East : Dir::West;
    prefix.push_back(mesh.LinkFrom(mesh.NodeAt(cur), d));
    EnumerateRec(mesh, Mesh::Neighbor(cur, d), dst, prefix, out);
    prefix.pop_back();
  }
  if (cur.y != dst.y) {
    Dir d = dst.y > cur.y ? Dir::South : Dir::North;
    prefix.push_back(mesh.LinkFrom(mesh.NodeAt(cur), d));
    EnumerateRec(mesh, Mesh::Neighbor(cur, d), dst, prefix, out);
    prefix.pop_back();
  }
}

}  // namespace

Route XyRoute(const Mesh& mesh, sim::NodeId src, sim::NodeId dst) {
  Route r;
  XyRouteInto(mesh, src, dst, r);
  return r;
}

void XyRouteInto(const Mesh& mesh, sim::NodeId src, sim::NodeId dst, Route& out) {
  out.clear();
  Coord cur = mesh.CoordOf(src);
  Coord d = mesh.CoordOf(dst);
  AppendXRun(mesh, cur, d.x, out);
  AppendYRun(mesh, cur, d.y, out);
}

Route YxRoute(const Mesh& mesh, sim::NodeId src, sim::NodeId dst) {
  Route r;
  Coord cur = mesh.CoordOf(src);
  Coord d = mesh.CoordOf(dst);
  AppendYRun(mesh, cur, d.y, r);
  AppendXRun(mesh, cur, d.x, r);
  return r;
}

Route StaircaseRoute(const Mesh& mesh, sim::NodeId src, sim::NodeId dst, int pivot_x,
                     int pivot_y) {
  Coord s = mesh.CoordOf(src);
  Coord d = mesh.CoordOf(dst);
  assert(pivot_x >= std::min(s.x, d.x) && pivot_x <= std::max(s.x, d.x));
  assert(pivot_y >= std::min(s.y, d.y) && pivot_y <= std::max(s.y, d.y));
  Route r;
  Coord cur = s;
  AppendXRun(mesh, cur, pivot_x, r);
  AppendYRun(mesh, cur, pivot_y, r);
  AppendXRun(mesh, cur, d.x, r);
  AppendYRun(mesh, cur, d.y, r);
  return r;
}

std::vector<Route> EnumerateMinimalRoutes(const Mesh& mesh, sim::NodeId src, sim::NodeId dst) {
  std::vector<Route> out;
  Route prefix;
  EnumerateRec(mesh, mesh.CoordOf(src), mesh.CoordOf(dst), prefix, out);
  return out;
}

namespace {

// All single/double-pivot staircase routes for one src/dst pair. This family
// contains XY, YX, and every "x-run / y-run / x-run / y-run" shape, which is
// sufficient to realize the maximum link overlap with another monotone path
// (the shared links of two monotone paths always form a staircase that both
// paths can adopt; verified against brute force in tests).
std::vector<Route> CandidateRoutes(const Mesh& mesh, sim::NodeId src, sim::NodeId dst) {
  Coord s = mesh.CoordOf(src);
  Coord d = mesh.CoordOf(dst);
  int x_lo = std::min(s.x, d.x), x_hi = std::max(s.x, d.x);
  int y_lo = std::min(s.y, d.y), y_hi = std::max(s.y, d.y);
  std::vector<Route> out;
  for (int px = x_lo; px <= x_hi; ++px) {
    for (int py = y_lo; py <= y_hi; ++py) {
      out.push_back(StaircaseRoute(mesh, src, dst, px, py));
    }
  }
  // Deduplicate (degenerate pivots collapse to the same route).
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

RoutePair BestOf(const std::vector<Route>& as, const std::vector<Route>& bs) {
  RoutePair best;
  best.shared_links = -1;
  for (const Route& ra : as) {
    Signature sa = Signature::FromRoute(ra);
    for (const Route& rb : bs) {
      Signature sb = Signature::FromRoute(rb);
      Signature inter = sa.Intersect(sb);
      int n = inter.Popcount();
      if (n > best.shared_links) {
        best = RoutePair{ra, rb, inter, n};
      }
    }
  }
  return best;
}

}  // namespace

RoutePair MaxOverlapRoutes(const Mesh& mesh, sim::NodeId a_src, sim::NodeId a_dst,
                           sim::NodeId b_src, sim::NodeId b_dst) {
  return BestOf(CandidateRoutes(mesh, a_src, a_dst), CandidateRoutes(mesh, b_src, b_dst));
}

RoutePair MaxOverlapRoutesBruteForce(const Mesh& mesh, sim::NodeId a_src, sim::NodeId a_dst,
                                     sim::NodeId b_src, sim::NodeId b_dst) {
  return BestOf(EnumerateMinimalRoutes(mesh, a_src, a_dst),
                EnumerateMinimalRoutes(mesh, b_src, b_dst));
}

bool IsValidRoute(const Mesh& mesh, const Route& route, sim::NodeId src, sim::NodeId dst) {
  sim::NodeId cur = src;
  for (sim::LinkId l : route) {
    if (mesh.LinkSource(l) != cur) return false;
    Coord next = Mesh::Neighbor(mesh.CoordOf(cur), mesh.LinkDir(l));
    if (!mesh.Contains(next)) return false;
    cur = mesh.NodeAt(next);
  }
  return cur == dst;
}

bool IsMinimalRoute(const Mesh& mesh, const Route& route, sim::NodeId src, sim::NodeId dst) {
  return IsValidRoute(mesh, route, src, dst) &&
         static_cast<int>(route.size()) == mesh.Distance(src, dst);
}

}  // namespace ndc::noc
