#pragma once

#include <cassert>
#include <cstdlib>

#include "sim/types.hpp"

namespace ndc::noc {

using sim::LinkId;
using sim::NodeId;

/// A position on the 2D mesh.
struct Coord {
  int x = 0;
  int y = 0;
  friend bool operator==(const Coord&, const Coord&) = default;
};

/// Link direction leaving a router.
enum class Dir : int { East = 0, West = 1, North = 2, South = 3 };

/// 2D mesh geometry: node/coordinate mapping and directional link ids.
///
/// Every node owns four outgoing link slots (E/W/N/S); links leaving the
/// mesh edge simply never appear in any route. LinkId = node * 4 + dir.
class Mesh {
 public:
  Mesh(int width, int height) : w_(width), h_(height) {
    assert(width > 0 && height > 0);
  }

  int width() const { return w_; }
  int height() const { return h_; }
  int num_nodes() const { return w_ * h_; }
  int num_link_slots() const { return num_nodes() * 4; }

  NodeId NodeAt(Coord c) const {
    assert(Contains(c));
    return static_cast<NodeId>(c.y * w_ + c.x);
  }
  Coord CoordOf(NodeId n) const {
    assert(n >= 0 && n < num_nodes());
    return Coord{static_cast<int>(n % w_), static_cast<int>(n / w_)};
  }
  bool Contains(Coord c) const { return c.x >= 0 && c.x < w_ && c.y >= 0 && c.y < h_; }

  /// The outgoing link of `from` in direction `d`. Must stay on the mesh.
  LinkId LinkFrom(NodeId from, Dir d) const {
    assert(Contains(Neighbor(CoordOf(from), d)));
    return static_cast<LinkId>(from * 4 + static_cast<int>(d));
  }

  /// Source node of a link.
  NodeId LinkSource(LinkId l) const { return static_cast<NodeId>(l / 4); }
  Dir LinkDir(LinkId l) const { return static_cast<Dir>(l % 4); }

  /// Destination node of a link.
  NodeId LinkDest(LinkId l) const {
    return NodeAt(Neighbor(CoordOf(LinkSource(l)), LinkDir(l)));
  }

  static Coord Neighbor(Coord c, Dir d) {
    switch (d) {
      case Dir::East: return {c.x + 1, c.y};
      case Dir::West: return {c.x - 1, c.y};
      case Dir::North: return {c.x, c.y - 1};
      case Dir::South: return {c.x, c.y + 1};
    }
    return c;
  }

  /// Manhattan distance in hops.
  int Distance(NodeId a, NodeId b) const {
    Coord ca = CoordOf(a), cb = CoordOf(b);
    return std::abs(ca.x - cb.x) + std::abs(ca.y - cb.y);
  }

 private:
  int w_;
  int h_;
};

}  // namespace ndc::noc
