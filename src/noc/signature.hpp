#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "noc/geometry.hpp"

namespace ndc::noc {

/// An L-bit route signature (Section 5.2.1, challenge 3): bit k is set iff
/// the route uses link k. Sized for meshes up to 8x8 (256 link slots).
class Signature {
 public:
  static constexpr int kMaxBits = 256;

  Signature() { words_.fill(0); }

  static Signature FromRoute(const std::vector<sim::LinkId>& route);

  void Set(sim::LinkId l) { words_[Word(l)] |= Mask(l); }
  bool Test(sim::LinkId l) const { return (words_[Word(l)] & Mask(l)) != 0; }

  /// Bitwise-and (the paper's S_x ∩ S_y).
  Signature Intersect(const Signature& o) const;

  /// Bitwise-or.
  Signature Union(const Signature& o) const;

  /// Number of set bits ("number of 1s").
  int Popcount() const;

  /// Links present in the signature, ascending.
  std::vector<sim::LinkId> Links() const;

  bool Empty() const;

  friend bool operator==(const Signature&, const Signature&) = default;

  std::string ToString() const;

 private:
  static std::size_t Word(sim::LinkId l) { return static_cast<std::size_t>(l) / 64; }
  static std::uint64_t Mask(sim::LinkId l) { return 1ull << (static_cast<std::size_t>(l) % 64); }
  std::array<std::uint64_t, kMaxBits / 64> words_;
};

}  // namespace ndc::noc
