// ndc-classify — render the bottleneck-classification table across the lint
// workload set (the paper's 20 benchmarks plus the shard.* family).
//
// Each workload is re-simulated once with the observation bundle and the
// phase-window sampler attached, its utilization-signal vector is derived
// from the run's touched-only counters, and the DAMOV-style classifier maps
// the vector to a stable label. The table is sorted by workload name and
// byte-stable across same-seed runs: fractions render through the shared
// fixed-precision formatter, never free-form doubles.
//
// --json additionally exports one row per workload with the *full*
// classification object (raw + derived signals, thresholds, per-window
// series) — the machine-readable artifact CI uploads.
//
// With NDC_OBS=OFF the tool exits 1 by design (there is nothing to sample).
//
// Usage:
//   ndc-classify [--scale=test|small|full] [--scheme=baseline|oracle|alg1|alg2]
//                [--only=NAME] [--window=CYCLES] [--seed=N] [--json=FILE]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "harness/cell.hpp"
#include "metrics/experiment.hpp"
#include "obs/obs.hpp"
#include "workloads/sharded.hpp"
#include "workloads/workloads.hpp"

namespace {

using ndc::harness::json::Dump;
using ndc::harness::json::Value;

struct ClassifyArgs {
  ndc::workloads::Scale scale = ndc::workloads::Scale::kTest;
  std::string scheme = "baseline";
  std::string only;
  std::uint64_t window = ndc::harness::kDefaultClassifyWindow;
  std::uint64_t seed = 1;
  std::string json_path;
};

[[noreturn]] void UsageAndExit() {
  std::fprintf(stderr,
               "usage: ndc-classify [--scale=test|small|full]\n"
               "         [--scheme=baseline|oracle|alg1|alg2] [--only=NAME]\n"
               "         [--window=CYCLES] [--seed=N] [--json=FILE]\n");
  std::exit(2);
}

ClassifyArgs Parse(int argc, char** argv) {
  ClassifyArgs a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--scale=test") == 0) {
      a.scale = ndc::workloads::Scale::kTest;
    } else if (std::strcmp(arg, "--scale=small") == 0) {
      a.scale = ndc::workloads::Scale::kSmall;
    } else if (std::strcmp(arg, "--scale=full") == 0) {
      a.scale = ndc::workloads::Scale::kFull;
    } else if (std::strncmp(arg, "--scheme=", 9) == 0) {
      a.scheme = arg + 9;
      if (a.scheme != "baseline" && a.scheme != "oracle" && a.scheme != "alg1" &&
          a.scheme != "alg2") {
        std::fprintf(stderr, "ndc-classify: unknown scheme '%s'\n", a.scheme.c_str());
        UsageAndExit();
      }
    } else if (std::strncmp(arg, "--only=", 7) == 0) {
      a.only = arg + 7;
    } else if (std::strncmp(arg, "--window=", 9) == 0) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(arg + 9, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "ndc-classify: --window expects a positive cycle count\n");
        UsageAndExit();
      }
      a.window = n;
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(arg + 7, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr, "ndc-classify: --seed expects a positive integer\n");
        UsageAndExit();
      }
      a.seed = n;
    } else if (std::strncmp(arg, "--json=", 7) == 0) {
      a.json_path = arg + 7;
    } else {
      std::fprintf(stderr, "ndc-classify: unknown argument '%s'\n", arg);
      UsageAndExit();
    }
  }
  return a;
}

/// The lint workload set, sorted by name for a byte-stable table.
std::vector<std::string> ClassifiedWorkloads(const std::string& only) {
  std::vector<std::string> names = ndc::workloads::BenchmarkNames();
  for (const std::string& s : ndc::workloads::ShardedNames()) names.push_back(s);
  std::sort(names.begin(), names.end());
  if (!only.empty()) {
    std::vector<std::string> filtered;
    for (const std::string& n : names) {
      if (n == only) filtered.push_back(n);
    }
    return filtered;
  }
  return names;
}

}  // namespace

int main(int argc, char** argv) {
  ClassifyArgs args = Parse(argc, argv);
  if constexpr (!ndc::obs::kObsEnabled) {
    std::fprintf(stderr,
                 "ndc-classify: observability is compiled out (NDC_OBS=OFF); "
                 "nothing to sample\n");
    return 1;
  }

  std::vector<std::string> names = ClassifiedWorkloads(args.only);
  if (names.empty()) {
    std::fprintf(stderr, "ndc-classify: no workload matches '%s'\n", args.only.c_str());
    return 2;
  }

  const char* scale_name = args.scale == ndc::workloads::Scale::kTest    ? "test"
                           : args.scale == ndc::workloads::Scale::kSmall ? "small"
                                                                         : "full";
  std::printf("# bottleneck classification  (scheme=%s, scale=%s, window=%llu, seed=%llu)\n",
              args.scheme.c_str(), scale_name,
              static_cast<unsigned long long>(args.window),
              static_cast<unsigned long long>(args.seed));
  std::printf("%-20s %-12s %10s  %s\n", "workload", "label", "makespan", "signals");

  Value rows = Value::Array();
  ndc::arch::ArchConfig cfg;  // Table-1 defaults
  for (const std::string& name : names) {
    ndc::obs::ObsOptions oo;
    oo.sample_period = 1;
    oo.emit_stage_events = false;
    oo.window_cycles = args.window;
    ndc::obs::Observability ob(oo);
    ndc::metrics::Experiment exp(name, args.scale, cfg, args.seed);
    exp.set_obs(&ob);

    ndc::metrics::SchemeResult r;
    if (args.scheme == "baseline") {
      r = exp.Run(ndc::metrics::Scheme::kBaseline);
    } else if (args.scheme == "oracle") {
      r = exp.Run(ndc::metrics::Scheme::kOracle);
    } else {
      ndc::compiler::CompileOptions opt;
      opt.mode = args.scheme == "alg2" ? ndc::compiler::Mode::kAlgorithm2
                                       : ndc::compiler::Mode::kAlgorithm1;
      r = exp.RunCompiled(opt);
    }

    ndc::obs::UtilizationSignals sig =
        ndc::harness::ComputeRunSignals(r.run.stats, r.run.makespan, cfg, &ob.registry);
    ndc::obs::Label label = ndc::obs::Classify(sig);
    std::printf("%-20s %-12s %10llu  %s\n", name.c_str(), ndc::obs::LabelName(label),
                static_cast<unsigned long long>(r.run.makespan),
                ndc::obs::SignalsToText(sig).c_str());

    Value row = Value::Object();
    row.obj["workload"] = Value::Str(name);
    row.obj["scheme"] = Value::Str(args.scheme);
    row.obj["scale"] = Value::Str(scale_name);
    row.obj["seed"] = Value::Int(args.seed);
    row.obj["classification"] = ndc::harness::ClassificationJson(sig, ob.sampler);
    rows.arr.push_back(std::move(row));
  }

  if (!args.json_path.empty()) {
    std::ofstream f(args.json_path);
    if (!f) {
      std::fprintf(stderr, "ndc-classify: cannot write %s\n", args.json_path.c_str());
      return 1;
    }
    f << Dump(rows) << "\n";
  }
  return 0;
}
