// ndc-trace — request-lifetime timeline tool for the simulator.
//
// Re-runs one (workload, scheme) cell with the observability bundle
// attached and emits:
//   - a Chrome trace_event JSON timeline (--trace=FILE), loadable directly
//     in Perfetto / chrome://tracing (1 simulated cycle = 1 trace us),
//   - the per-stage latency breakdown table on stdout (whose stage cycles
//     telescope to exactly the summed end-to-end latency),
//   - the NDC decision audit summary (every candidate accounted for), and
//     optionally the full decision log as JSONL (--decisions=FILE),
//   - the host-side phase profile (where wall-clock went).
//
// Exit status: 0 on success, 1 when observability is compiled out
// (NDC_OBS=OFF), 2 on usage errors.
//
// Usage:
//   ndc-trace --workload=NAME --scheme=NAME [--scale=test|small|full]
//             [--seed=N] [--sample=N] [--max-events=N]
//             [--trace=FILE] [--decisions=FILE]

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "compiler/pipeline.hpp"
#include "metrics/experiment.hpp"
#include "obs/obs.hpp"
#include "workloads/sharded.hpp"
#include "workloads/workloads.hpp"

namespace {

using ndc::metrics::Scheme;

struct TraceArgs {
  std::string workload;
  std::string scheme_name;
  ndc::workloads::Scale scale = ndc::workloads::Scale::kTest;
  std::uint64_t seed = 1;
  std::uint64_t sample = 1;
  std::size_t max_events = 1u << 20;
  std::string trace_path;
  std::string decisions_path;
};

[[noreturn]] void UsageAndExit() {
  std::fprintf(stderr,
               "usage: ndc-trace --workload=NAME --scheme=NAME\n"
               "         [--scale=test|small|full] [--seed=N] [--sample=N]\n"
               "         [--max-events=N] [--trace=FILE] [--decisions=FILE]\n"
               "schemes: baseline default oracle wait5 wait10 wait25 wait50\n"
               "         lastwait markov algorithm1 algorithm2\n");
  std::exit(2);
}

/// Case-insensitive scheme lookup accepting both the CLI aliases above and
/// the display names ("Algorithm-1", "Wait(5%)").
bool ParseScheme(const std::string& name, Scheme* out) {
  std::string k;
  for (char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      k += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
  }
  static const struct {
    const char* key;
    Scheme scheme;
  } kMap[] = {
      {"baseline", Scheme::kBaseline},   {"default", Scheme::kDefault},
      {"oracle", Scheme::kOracle},       {"wait5", Scheme::kWait5},
      {"wait10", Scheme::kWait10},       {"wait25", Scheme::kWait25},
      {"wait50", Scheme::kWait50},       {"lastwait", Scheme::kLastWait},
      {"markov", Scheme::kMarkov},       {"algorithm1", Scheme::kAlgorithm1},
      {"alg1", Scheme::kAlgorithm1},     {"algorithm2", Scheme::kAlgorithm2},
      {"alg2", Scheme::kAlgorithm2},
  };
  for (const auto& m : kMap) {
    if (k == m.key) {
      *out = m.scheme;
      return true;
    }
  }
  return false;
}

std::uint64_t ParseU64(const char* flag, const char* s) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == nullptr || *end != '\0' || s[0] == '\0') {
    std::fprintf(stderr, "ndc-trace: %s expects an integer, got '%s'\n", flag, s);
    UsageAndExit();
  }
  return v;
}

TraceArgs Parse(int argc, char** argv) {
  TraceArgs a;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--workload=", 11) == 0) {
      a.workload = arg + 11;
    } else if (std::strncmp(arg, "--scheme=", 9) == 0) {
      a.scheme_name = arg + 9;
    } else if (std::strcmp(arg, "--scale=test") == 0) {
      a.scale = ndc::workloads::Scale::kTest;
    } else if (std::strcmp(arg, "--scale=small") == 0) {
      a.scale = ndc::workloads::Scale::kSmall;
    } else if (std::strcmp(arg, "--scale=full") == 0) {
      a.scale = ndc::workloads::Scale::kFull;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      std::fprintf(stderr, "ndc-trace: unknown scale '%s' (expected test|small|full)\n",
                   arg + 8);
      UsageAndExit();
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      a.seed = ParseU64("--seed", arg + 7);
    } else if (std::strncmp(arg, "--sample=", 9) == 0) {
      a.sample = ParseU64("--sample", arg + 9);
      if (a.sample == 0) a.sample = 1;
    } else if (std::strncmp(arg, "--max-events=", 13) == 0) {
      a.max_events = static_cast<std::size_t>(ParseU64("--max-events", arg + 13));
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      a.trace_path = arg + 8;
    } else if (std::strncmp(arg, "--decisions=", 12) == 0) {
      a.decisions_path = arg + 12;
    } else {
      std::fprintf(stderr, "ndc-trace: unknown argument '%s'\n", arg);
      UsageAndExit();
    }
  }
  if (a.workload.empty() || a.scheme_name.empty()) {
    std::fprintf(stderr, "ndc-trace: --workload and --scheme are required\n");
    UsageAndExit();
  }
  return a;
}

bool KnownWorkload(const std::string& name) {
  for (const std::string& w : ndc::workloads::BenchmarkNames()) {
    if (w == name) return true;
  }
  // The sharded (shard.*) family is where the sync instants live; Experiment
  // routes these names like any benchmark.
  for (const std::string& w : ndc::workloads::ShardedNames()) {
    if (w == name) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  TraceArgs args = Parse(argc, argv);

  if (!ndc::obs::kObsEnabled) {
    std::fprintf(stderr,
                 "ndc-trace: observability is compiled out (NDC_OBS=OFF); rebuild with "
                 "-DNDC_OBS=ON\n");
    return 1;
  }
  if (!KnownWorkload(args.workload)) {
    std::fprintf(stderr, "ndc-trace: unknown workload '%s'\n", args.workload.c_str());
    return 2;
  }
  Scheme scheme = Scheme::kBaseline;
  if (!ParseScheme(args.scheme_name, &scheme)) {
    std::fprintf(stderr, "ndc-trace: unknown scheme '%s'\n", args.scheme_name.c_str());
    UsageAndExit();
  }

  ndc::obs::ObsOptions oo;
  oo.sample_period = args.sample;
  oo.max_trace_events = args.max_events;
  ndc::obs::Observability ob(oo);

  ndc::metrics::Experiment exp(args.workload, args.scale, ndc::arch::ArchConfig{},
                               args.seed);
  exp.set_obs(&ob);
  ndc::metrics::SchemeResult r;
  if (scheme == Scheme::kAlgorithm1 || scheme == Scheme::kAlgorithm2) {
    ndc::compiler::CompileOptions copt;
    copt.mode = scheme == Scheme::kAlgorithm2 ? ndc::compiler::Mode::kAlgorithm2
                                              : ndc::compiler::Mode::kAlgorithm1;
    r = exp.RunCompiled(copt);
  } else {
    r = exp.Run(scheme);
  }

  std::printf("# ndc-trace: %s / %s (scale=%s, seed=%llu, sample=1/%llu)\n",
              args.workload.c_str(), ndc::metrics::SchemeName(scheme),
              args.scale == ndc::workloads::Scale::kTest    ? "test"
              : args.scale == ndc::workloads::Scale::kSmall ? "small"
                                                            : "full",
              static_cast<unsigned long long>(args.seed),
              static_cast<unsigned long long>(ob.tracer.sample_period()));
  std::printf("makespan: %llu cycles\n\n", static_cast<unsigned long long>(r.run.makespan));

  std::fputs(ob.tracer.BreakdownTable().c_str(), stdout);
  std::printf("\n");
  std::fputs(ob.decisions.Summary().c_str(), stdout);
  std::printf("\n");
  std::fputs(ndc::obs::GlobalPhases().ToText().c_str(), stdout);

  if (!args.trace_path.empty()) {
    if (!ob.sink.WriteFile(args.trace_path)) {
      std::fprintf(stderr, "ndc-trace: cannot write %s\n", args.trace_path.c_str());
      return 2;
    }
    std::printf("\ntrace: %zu events (%zu dropped at cap) -> %s\n", ob.sink.size(),
                ob.sink.dropped(), args.trace_path.c_str());
  }
  if (!args.decisions_path.empty()) {
    std::FILE* f = std::fopen(args.decisions_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ndc-trace: cannot write %s\n", args.decisions_path.c_str());
      return 2;
    }
    std::string jsonl = ob.decisions.ToJsonl();
    std::fwrite(jsonl.data(), 1, jsonl.size(), f);
    std::fclose(f);
    std::printf("decisions: %zu entries -> %s\n", ob.decisions.entries().size(),
                args.decisions_path.c_str());
  }
  return 0;
}
