// ndc-sweep — regenerate any paper figure's experiment grid by name.
//
// Fans the figure's (workload x scheme x config) grid across a work-stealing
// thread pool, consults the persistent on-disk result cache (.ndc-cache/),
// and renders the same stdout table the corresponding bench binary prints.
// A warm re-run of an already-measured grid performs zero simulator
// invocations; --require-all-hits turns that into an enforced exit status
// for CI cache verification.
//
// Exit status: 0 on success, 2 on usage errors or unknown figure,
// 3 when --require-all-hits is set and any cell had to be simulated.
//
// --faults=FILE (or an inline JSON object) runs every grid cell under that
// fault schedule; --fault-intensity=X,Y,... additionally repeats each figure
// once per intensity with the schedule's magnitudes scaled by that factor —
// the raw material of a degradation curve. Faulted runs never share cache
// entries with fault-free ones.
//
// --classify re-simulates every grid cell with the phase-window sampler
// attached (outside the result cache — cache keys are untouched) and emits
// one bottleneck-classification JSONL line per cell to stderr: label plus
// the derived signal vector. Combined with --export-obs the per-cell
// summary files carry the full classification object (raw + derived
// signals, thresholds, per-window series). stdout tables stay byte-identical
// to unclassified runs. --classify-window overrides the window width.
//
// Usage:
// --sim-threads=N (N >= 2) runs every grid cell's simulations under the
// conservative-window sharded engine with N worker threads (eligible
// baseline runs shard; policy/sync/fault/observed runs degrade to the
// sequential engine). Results are deterministic for any N >= 2 but are a
// different same-cycle tie-break schedule than the default N=1 sequential
// engine, so sharded cells get distinct cache keys.
//
// Usage:
//   ndc-sweep --figure=NAME|all [--scale=test|small|full] [--bench=NAME]
//             [--jobs=N] [--sim-threads=N] [--no-cache] [--cache-dir=DIR]
//             [--progress]
//             [--export-jsonl=FILE] [--export-csv=FILE] [--export-obs=DIR]
//             [--classify] [--classify-window=CYCLES]
//             [--summary=FILE] [--require-all-hits]
//             [--faults=FILE|JSON] [--fault-intensity=X[,Y,...]]
//   ndc-sweep --list

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fault/schedule.hpp"
#include "harness/cell.hpp"
#include "harness/figures.hpp"

namespace {

using ndc::harness::FigureInfo;
using ndc::harness::FigureOptions;
using ndc::harness::SweepSummary;

struct SweepArgs {
  std::vector<std::string> figures;
  FigureOptions opt;
  bool list = false;
  bool require_all_hits = false;
  std::string summary_path;  ///< append per-figure summary JSONL lines here
  bool have_faults = false;  ///< --faults parsed into opt.faults
  std::vector<double> intensities;  ///< --fault-intensity factors (may be empty)
};

[[noreturn]] void UsageAndExit() {
  std::fprintf(stderr,
               "usage: ndc-sweep --figure=NAME|all [--scale=test|small|full]\n"
               "         [--bench=NAME] [--jobs=N] [--sim-threads=N] [--no-cache]\n"
               "         [--cache-dir=DIR]\n"
               "         [--progress] [--export-jsonl=FILE] [--export-csv=FILE]\n"
               "         [--export-obs=DIR] [--classify] [--classify-window=CYCLES]\n"
               "         [--summary=FILE] [--require-all-hits]\n"
               "         [--faults=FILE|JSON] [--fault-intensity=X[,Y,...]]\n"
               "       ndc-sweep --list\n");
  std::exit(2);
}

std::vector<double> ParseIntensityList(const char* list) {
  std::vector<double> out;
  const char* p = list;
  while (*p != '\0') {
    char* end = nullptr;
    double v = std::strtod(p, &end);
    if (end == p || v < 0.0) {
      std::fprintf(stderr,
                   "ndc-sweep: --fault-intensity expects comma-separated "
                   "non-negative factors, got '%s'\n",
                   list);
      UsageAndExit();
    }
    out.push_back(v);
    p = end;
    if (*p == ',') ++p;
    else if (*p != '\0') {
      std::fprintf(stderr, "ndc-sweep: trailing characters in --fault-intensity '%s'\n",
                   list);
      UsageAndExit();
    }
  }
  if (out.empty()) {
    std::fprintf(stderr, "ndc-sweep: --fault-intensity list is empty\n");
    UsageAndExit();
  }
  return out;
}

SweepArgs Parse(int argc, char** argv) {
  SweepArgs a;
  a.opt.scale = ndc::workloads::Scale::kSmall;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--figure=", 9) == 0) {
      a.figures.push_back(arg + 9);
    } else if (std::strcmp(arg, "--list") == 0) {
      a.list = true;
    } else if (std::strcmp(arg, "--scale=test") == 0) {
      a.opt.scale = ndc::workloads::Scale::kTest;
    } else if (std::strcmp(arg, "--scale=small") == 0) {
      a.opt.scale = ndc::workloads::Scale::kSmall;
    } else if (std::strcmp(arg, "--scale=full") == 0) {
      a.opt.scale = ndc::workloads::Scale::kFull;
    } else if (std::strncmp(arg, "--scale=", 8) == 0) {
      std::fprintf(stderr, "ndc-sweep: unknown scale '%s' (expected test|small|full)\n",
                   arg + 8);
      UsageAndExit();
    } else if (std::strncmp(arg, "--bench=", 8) == 0) {
      a.opt.only = arg + 8;
    } else if (std::strncmp(arg, "--jobs=", 7) == 0) {
      char* end = nullptr;
      long n = std::strtol(arg + 7, &end, 10);
      if (end == nullptr || *end != '\0' || n < 1) {
        std::fprintf(stderr, "ndc-sweep: --jobs expects a positive integer, got '%s'\n",
                     arg + 7);
        UsageAndExit();
      }
      a.opt.jobs = static_cast<int>(n);
    } else if (std::strncmp(arg, "--sim-threads=", 14) == 0) {
      char* end = nullptr;
      long n = std::strtol(arg + 14, &end, 10);
      if (end == nullptr || *end != '\0' || n < 1) {
        std::fprintf(stderr,
                     "ndc-sweep: --sim-threads expects a positive integer, got '%s'\n",
                     arg + 14);
        UsageAndExit();
      }
      a.opt.sim_threads = static_cast<int>(n);
    } else if (std::strcmp(arg, "--no-cache") == 0) {
      a.opt.use_cache = false;
    } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
      a.opt.cache_dir = arg + 12;
    } else if (std::strcmp(arg, "--progress") == 0) {
      a.opt.progress = true;
    } else if (std::strncmp(arg, "--export-jsonl=", 15) == 0) {
      a.opt.export_jsonl = arg + 15;
    } else if (std::strncmp(arg, "--export-csv=", 13) == 0) {
      a.opt.export_csv = arg + 13;
    } else if (std::strncmp(arg, "--export-obs=", 13) == 0) {
      a.opt.export_obs = arg + 13;
    } else if (std::strcmp(arg, "--classify") == 0) {
      if (a.opt.classify_window == 0) {
        a.opt.classify_window = ndc::harness::kDefaultClassifyWindow;
      }
    } else if (std::strncmp(arg, "--classify-window=", 18) == 0) {
      char* end = nullptr;
      unsigned long long n = std::strtoull(arg + 18, &end, 10);
      if (end == nullptr || *end != '\0' || n == 0) {
        std::fprintf(stderr,
                     "ndc-sweep: --classify-window expects a positive cycle count, got '%s'\n",
                     arg + 18);
        UsageAndExit();
      }
      a.opt.classify_window = static_cast<std::uint64_t>(n);
    } else if (std::strncmp(arg, "--summary=", 10) == 0) {
      a.summary_path = arg + 10;
    } else if (std::strcmp(arg, "--require-all-hits") == 0) {
      a.require_all_hits = true;
    } else if (std::strncmp(arg, "--faults=", 9) == 0) {
      std::string err;
      if (!ndc::fault::LoadSchedule(arg + 9, &a.opt.faults, &err)) {
        std::fprintf(stderr, "ndc-sweep: --faults: %s\n", err.c_str());
        std::exit(2);
      }
      a.have_faults = true;
    } else if (std::strncmp(arg, "--fault-intensity=", 18) == 0) {
      a.intensities = ParseIntensityList(arg + 18);
    } else {
      std::fprintf(stderr, "ndc-sweep: unknown argument '%s'\n", arg);
      UsageAndExit();
    }
  }
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  SweepArgs args = Parse(argc, argv);

  if (args.list) {
    std::printf("%-16s %-6s %s\n", "figure", "kind", "title");
    for (const FigureInfo& f : ndc::harness::Figures()) {
      std::printf("%-16s %-6s %s\n", f.name.c_str(), f.grid ? "grid" : "record",
                  f.title.c_str());
    }
    return 0;
  }
  if (args.figures.empty()) {
    std::fprintf(stderr, "ndc-sweep: no --figure given\n");
    UsageAndExit();
  }
  if (!args.intensities.empty() && !args.have_faults) {
    std::fprintf(stderr, "ndc-sweep: --fault-intensity requires --faults\n");
    UsageAndExit();
  }

  // Expand --figure=all into the registry, in paper order.
  std::vector<std::string> names;
  for (const std::string& f : args.figures) {
    if (f == "all") {
      for (const FigureInfo& info : ndc::harness::Figures()) names.push_back(info.name);
    } else if (!ndc::harness::HasFigure(f)) {
      std::fprintf(stderr, "ndc-sweep: unknown figure '%s' (see --list)\n", f.c_str());
      return 2;
    } else {
      names.push_back(f);
    }
  }

  std::uint64_t total_sims = 0;
  auto run_one = [&](const std::string& name, const FigureOptions& opt) -> int {
    SweepSummary summary;
    int rc = ndc::harness::RunFigure(name, opt, &summary);
    if (rc != 0) return rc;
    total_sims += summary.sim_invocations;
    std::fprintf(stderr, "%s\n", ndc::harness::json::Dump(summary.ToJson()).c_str());
    if (!args.summary_path.empty() &&
        !ndc::harness::AppendSummary(summary, args.summary_path)) {
      std::fprintf(stderr, "ndc-sweep: cannot append to %s\n", args.summary_path.c_str());
      return 2;
    }
    return 0;
  };

  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) std::printf("\n");
    if (args.intensities.empty()) {
      int rc = run_one(names[i], args.opt);
      if (rc != 0) return rc;
    } else {
      for (std::size_t k = 0; k < args.intensities.size(); ++k) {
        if (k > 0) std::printf("\n");
        FigureOptions opt = args.opt;
        opt.faults = args.opt.faults.Scaled(args.intensities[k]);
        std::printf("## fault-intensity=%g (fault seed %llu)\n", args.intensities[k],
                    static_cast<unsigned long long>(opt.faults.seed));
        int rc = run_one(names[i], opt);
        if (rc != 0) return rc;
      }
    }
  }
  if (args.require_all_hits && total_sims > 0) {
    std::fprintf(stderr,
                 "ndc-sweep: --require-all-hits failed: %llu cells were simulated "
                 "(expected a fully warm cache)\n",
                 static_cast<unsigned long long>(total_sims));
    return 3;
  }
  return 0;
}
