# Helper for the ndc_sweep_smoke_cold ctest: wipe the cache directory so the
# cold run genuinely simulates every cell, then run the smoke sweep.
file(REMOVE_RECURSE "${CACHE_DIR}")
execute_process(
  COMMAND "${SWEEP}" --figure=smoke --scale=test --jobs=2 --cache-dir=${CACHE_DIR}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cold smoke sweep failed with exit code ${rc}")
endif()
