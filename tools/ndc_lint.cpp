// ndc-lint — standalone legality/structure linter for the NDC compiler.
//
// Builds every workload (or a named one), runs the compiler pipeline in
// every mode (or a named one), and audits the annotated program with the
// independent verifier (src/verify): IR structural validation, transform /
// access-movement legality re-derivation, parallel-loop race detection,
// and the P4xx parallel-annotation proof audit. The lint set covers the 20
// paper stand-ins plus the shard.* scenario family.
//
// --parallelism additionally prints, per workload, the classifier's
// per-nest/per-level verdict table (DOALL/DOACROSS/UNKNOWN with witness
// distances and proof obligations). --sarif=FILE writes every finding of
// the run as one SARIF 2.1.0 log.
//
// Exit status: 0 when no error-level finding was produced (warnings and
// notes are reported but tolerated; pass --fail-on=warning to tighten),
// 1 otherwise, 2 on usage errors.
//
// Usage:
//   ndc-lint [--scale=test|small|full] [--mode=MODE|all] [--workload=NAME]
//            [--json] [--quiet] [--verbose] [--fail-on=error|warning]
//            [--max-lead=N] [--control-register=MASK] [--parallelism]
//            [--sarif=FILE]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/parallelism.hpp"
#include "compiler/pipeline.hpp"
#include "verify/sarif.hpp"
#include "verify/verify.hpp"
#include "workloads/sharded.hpp"
#include "workloads/workloads.hpp"

namespace {

using ndc::compiler::Mode;

struct LintArgs {
  ndc::workloads::Scale scale = ndc::workloads::Scale::kTest;
  std::string workload;  ///< empty = all 20
  std::string mode = "all";
  bool json = false;
  bool quiet = false;
  bool verbose = false;
  bool fail_on_warning = false;
  bool parallelism = false;   ///< print per-nest/per-level classification
  std::string sarif_path;     ///< write a SARIF 2.1.0 log here (empty = off)
  ndc::ir::Int max_lead = 64;
  int control_register = ndc::arch::kAllLocs;
};

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: ndc-lint [--scale=test|small|full] [--mode=MODE|all]\n"
               "                [--workload=NAME] [--json] [--quiet] [--verbose]\n"
               "                [--fail-on=error|warning] [--max-lead=N]\n"
               "                [--control-register=MASK] [--parallelism]\n"
               "                [--sarif=FILE]\n"
               "modes: baseline algorithm-1 algorithm-2 coarse-grain all\n");
}

bool ParseArgs(int argc, char** argv, LintArgs* a) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      PrintUsage(stdout);
      std::exit(0);
    } else if (std::strcmp(arg, "--scale=test") == 0) {
      a->scale = ndc::workloads::Scale::kTest;
    } else if (std::strcmp(arg, "--scale=small") == 0) {
      a->scale = ndc::workloads::Scale::kSmall;
    } else if (std::strcmp(arg, "--scale=full") == 0) {
      a->scale = ndc::workloads::Scale::kFull;
    } else if (std::strncmp(arg, "--workload=", 11) == 0) {
      a->workload = arg + 11;
    } else if (std::strncmp(arg, "--mode=", 7) == 0) {
      a->mode = arg + 7;
    } else if (std::strcmp(arg, "--json") == 0) {
      a->json = true;
    } else if (std::strcmp(arg, "--quiet") == 0 || std::strcmp(arg, "-q") == 0) {
      a->quiet = true;
    } else if (std::strcmp(arg, "--verbose") == 0 || std::strcmp(arg, "-v") == 0) {
      a->verbose = true;
    } else if (std::strcmp(arg, "--parallelism") == 0) {
      a->parallelism = true;
    } else if (std::strncmp(arg, "--sarif=", 8) == 0) {
      a->sarif_path = arg + 8;
    } else if (std::strcmp(arg, "--fail-on=warning") == 0) {
      a->fail_on_warning = true;
    } else if (std::strcmp(arg, "--fail-on=error") == 0) {
      a->fail_on_warning = false;
    } else if (std::strncmp(arg, "--max-lead=", 11) == 0) {
      a->max_lead = std::atoll(arg + 11);
    } else if (std::strncmp(arg, "--control-register=", 19) == 0) {
      a->control_register = std::atoi(arg + 19);
    } else {
      std::fprintf(stderr, "ndc-lint: unknown argument '%s'\n", arg);
      PrintUsage(stderr);
      return false;
    }
  }
  return true;
}

std::vector<Mode> SelectModes(const std::string& name) {
  const std::vector<Mode> all = {Mode::kBaseline, Mode::kAlgorithm1, Mode::kAlgorithm2,
                                 Mode::kCoarseGrain};
  if (name == "all") return all;
  // Accept the canonical name and the hyphen-less spelling ("algorithm1").
  auto dehyphen = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c != '-') out.push_back(c);
    }
    return out;
  };
  for (Mode m : all) {
    std::string canon = ndc::compiler::ModeName(m);
    if (name == canon || dehyphen(name) == dehyphen(canon)) return {m};
  }
  return {};
}

}  // namespace

int main(int argc, char** argv) {
  LintArgs args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  std::vector<Mode> modes = SelectModes(args.mode);
  if (modes.empty()) {
    std::fprintf(stderr,
                 "ndc-lint: unknown mode '%s' (valid: baseline algorithm-1 "
                 "algorithm-2 coarse-grain all)\n",
                 args.mode.c_str());
    return 2;
  }

  ndc::arch::ArchConfig cfg;
  cfg.control_register = static_cast<std::uint8_t>(args.control_register);
  ndc::compiler::ArchDescription ad(cfg);

  int total_errors = 0, total_warnings = 0, total_notes = 0, runs = 0;
  bool first_json = true;
  ndc::verify::Report sarif_report;  // accumulated across every run
  if (args.json) std::printf("[");
  std::vector<std::string> names = ndc::workloads::BenchmarkNames();
  for (const std::string& s : ndc::workloads::ShardedNames()) names.push_back(s);
  for (const std::string& name : names) {
    if (!args.workload.empty() && name != args.workload) continue;
    bool printed_table = false;
    for (Mode mode : modes) {
      ndc::ir::Program prog =
          ndc::workloads::IsShardedScenario(name)
              ? ndc::workloads::BuildShardedWorkload(name, args.scale,
                                                     cfg.num_nodes())
              : ndc::workloads::BuildWorkload(name, args.scale);
      if (args.parallelism && !printed_table && !args.json) {
        // Classification is a property of the source nests, not the NDC
        // annotations, so one table per workload covers every mode.
        std::printf("== %s: parallelism classification ==\n", name.c_str());
        for (std::size_t n = 0; n < prog.nests.size(); ++n) {
          ndc::analysis::Classification cls =
              ndc::analysis::ClassifyNest(prog, prog.nests[n]);
          std::printf(" nest %zu:\n", n);
          std::string table = cls.ToString();
          std::size_t pos = 0;
          while (pos < table.size()) {
            std::size_t nl = table.find('\n', pos);
            if (nl == std::string::npos) nl = table.size();
            std::printf("   %s\n", table.substr(pos, nl - pos).c_str());
            pos = nl + 1;
          }
          if (!cls.privatizable.empty()) {
            std::printf("   privatizable:");
            for (int a : cls.privatizable)
              std::printf(" %s", prog.array(a).name.c_str());
            std::printf("\n");
          }
          for (const ndc::analysis::Reduction& r : cls.reductions) {
            std::printf("   reduction: stmt %d on %s (%s)\n", r.stmt,
                        prog.array(r.array).name.c_str(), ndc::arch::OpName(r.op));
          }
        }
        printed_table = true;
      }
      ndc::compiler::CompileOptions opt;
      opt.mode = mode;
      opt.max_lead = args.max_lead;
      opt.control_register = static_cast<std::uint8_t>(args.control_register);
      opt.verify_after = false;  // we run the verifier ourselves below
      ndc::compiler::Compile(prog, ad, opt);

      ndc::verify::VerifyOptions vo;
      vo.max_lead = opt.max_lead;
      vo.control_register = opt.control_register;
      ndc::verify::Report rep = ndc::verify::VerifyProgram(prog, vo);

      ++runs;
      total_errors += rep.ErrorCount();
      total_warnings += rep.WarningCount();
      total_notes += rep.Count(ndc::verify::Severity::kNote);
      if (!args.sarif_path.empty()) {
        for (ndc::verify::Diagnostic d : rep.diags) {
          d.message = name + "[" + ndc::compiler::ModeName(mode) + "]: " + d.message;
          sarif_report.Add(std::move(d));
        }
      }
      if (args.json) {
        std::printf("%s\n {\"workload\": \"%s\", \"mode\": \"%s\", \"errors\": %d, "
                    "\"warnings\": %d, \"diagnostics\": %s}",
                    first_json ? "" : ",", name.c_str(), ndc::compiler::ModeName(mode),
                    rep.ErrorCount(), rep.WarningCount(), rep.ToJson().c_str());
        first_json = false;
      } else {
        if (!args.quiet || rep.ErrorCount() > 0) {
          std::printf("%-12s %-12s  %d error(s), %d warning(s), %d note(s)\n",
                      name.c_str(), ndc::compiler::ModeName(mode), rep.ErrorCount(),
                      rep.WarningCount(), rep.Count(ndc::verify::Severity::kNote));
        }
        // Errors always print; warnings/notes only with --verbose.
        for (const ndc::verify::Diagnostic& d : rep.diags) {
          if (d.severity == ndc::verify::Severity::kError || args.verbose) {
            std::printf("  %s\n", d.ToString().c_str());
          }
        }
      }
    }
  }
  if (args.json) {
    std::printf("%s]\n", first_json ? "" : "\n");
  } else {
    std::printf("ndc-lint: %d run(s), %d error(s), %d warning(s), %d note(s)\n", runs,
                total_errors, total_warnings, total_notes);
  }
  if (!args.sarif_path.empty()) {
    std::string sarif = ndc::verify::ToSarif(sarif_report);
    std::FILE* f = std::fopen(args.sarif_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ndc-lint: cannot write '%s'\n", args.sarif_path.c_str());
      return 2;
    }
    std::fwrite(sarif.data(), 1, sarif.size(), f);
    std::fclose(f);
  }
  if (runs == 0) {
    std::fprintf(stderr, "ndc-lint: nothing matched workload '%s'\n",
                 args.workload.c_str());
    return 2;
  }
  if (total_errors > 0) return 1;
  if (args.fail_on_warning && total_warnings > 0) return 1;
  return 0;
}
