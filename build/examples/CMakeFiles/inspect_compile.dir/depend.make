# Empty dependencies file for inspect_compile.
# This may be replaced when dependencies are built.
