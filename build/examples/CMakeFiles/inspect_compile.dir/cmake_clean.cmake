file(REMOVE_RECURSE
  "CMakeFiles/inspect_compile.dir/inspect_compile.cpp.o"
  "CMakeFiles/inspect_compile.dir/inspect_compile.cpp.o.d"
  "inspect_compile"
  "inspect_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
