# Empty dependencies file for ndc_mem.
# This may be replaced when dependencies are built.
