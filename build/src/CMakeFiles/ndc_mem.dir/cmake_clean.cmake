file(REMOVE_RECURSE
  "CMakeFiles/ndc_mem.dir/mem/cache.cpp.o"
  "CMakeFiles/ndc_mem.dir/mem/cache.cpp.o.d"
  "CMakeFiles/ndc_mem.dir/mem/dram.cpp.o"
  "CMakeFiles/ndc_mem.dir/mem/dram.cpp.o.d"
  "CMakeFiles/ndc_mem.dir/mem/memctrl.cpp.o"
  "CMakeFiles/ndc_mem.dir/mem/memctrl.cpp.o.d"
  "libndc_mem.a"
  "libndc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
