file(REMOVE_RECURSE
  "libndc_mem.a"
)
