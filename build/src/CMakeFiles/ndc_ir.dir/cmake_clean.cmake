file(REMOVE_RECURSE
  "CMakeFiles/ndc_ir.dir/ir/matrix.cpp.o"
  "CMakeFiles/ndc_ir.dir/ir/matrix.cpp.o.d"
  "CMakeFiles/ndc_ir.dir/ir/program.cpp.o"
  "CMakeFiles/ndc_ir.dir/ir/program.cpp.o.d"
  "libndc_ir.a"
  "libndc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
