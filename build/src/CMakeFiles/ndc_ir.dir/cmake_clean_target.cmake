file(REMOVE_RECURSE
  "libndc_ir.a"
)
