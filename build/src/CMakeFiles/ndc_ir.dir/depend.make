# Empty dependencies file for ndc_ir.
# This may be replaced when dependencies are built.
