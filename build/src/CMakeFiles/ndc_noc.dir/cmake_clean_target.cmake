file(REMOVE_RECURSE
  "libndc_noc.a"
)
