# Empty compiler generated dependencies file for ndc_noc.
# This may be replaced when dependencies are built.
