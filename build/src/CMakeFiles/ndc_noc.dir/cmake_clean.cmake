file(REMOVE_RECURSE
  "CMakeFiles/ndc_noc.dir/noc/network.cpp.o"
  "CMakeFiles/ndc_noc.dir/noc/network.cpp.o.d"
  "CMakeFiles/ndc_noc.dir/noc/routing.cpp.o"
  "CMakeFiles/ndc_noc.dir/noc/routing.cpp.o.d"
  "CMakeFiles/ndc_noc.dir/noc/signature.cpp.o"
  "CMakeFiles/ndc_noc.dir/noc/signature.cpp.o.d"
  "libndc_noc.a"
  "libndc_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
