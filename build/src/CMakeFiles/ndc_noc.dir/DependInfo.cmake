
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/noc/network.cpp" "src/CMakeFiles/ndc_noc.dir/noc/network.cpp.o" "gcc" "src/CMakeFiles/ndc_noc.dir/noc/network.cpp.o.d"
  "/root/repo/src/noc/routing.cpp" "src/CMakeFiles/ndc_noc.dir/noc/routing.cpp.o" "gcc" "src/CMakeFiles/ndc_noc.dir/noc/routing.cpp.o.d"
  "/root/repo/src/noc/signature.cpp" "src/CMakeFiles/ndc_noc.dir/noc/signature.cpp.o" "gcc" "src/CMakeFiles/ndc_noc.dir/noc/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ndc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
