# Empty compiler generated dependencies file for ndc_arch.
# This may be replaced when dependencies are built.
