file(REMOVE_RECURSE
  "libndc_arch.a"
)
