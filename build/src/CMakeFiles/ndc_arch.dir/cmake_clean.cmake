file(REMOVE_RECURSE
  "CMakeFiles/ndc_arch.dir/arch/core.cpp.o"
  "CMakeFiles/ndc_arch.dir/arch/core.cpp.o.d"
  "libndc_arch.a"
  "libndc_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
