
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/cme.cpp" "src/CMakeFiles/ndc_analysis.dir/analysis/cme.cpp.o" "gcc" "src/CMakeFiles/ndc_analysis.dir/analysis/cme.cpp.o.d"
  "/root/repo/src/analysis/dependence.cpp" "src/CMakeFiles/ndc_analysis.dir/analysis/dependence.cpp.o" "gcc" "src/CMakeFiles/ndc_analysis.dir/analysis/dependence.cpp.o.d"
  "/root/repo/src/analysis/reuse.cpp" "src/CMakeFiles/ndc_analysis.dir/analysis/reuse.cpp.o" "gcc" "src/CMakeFiles/ndc_analysis.dir/analysis/reuse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ndc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ndc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ndc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
