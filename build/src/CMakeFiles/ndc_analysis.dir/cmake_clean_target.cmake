file(REMOVE_RECURSE
  "libndc_analysis.a"
)
