file(REMOVE_RECURSE
  "CMakeFiles/ndc_analysis.dir/analysis/cme.cpp.o"
  "CMakeFiles/ndc_analysis.dir/analysis/cme.cpp.o.d"
  "CMakeFiles/ndc_analysis.dir/analysis/dependence.cpp.o"
  "CMakeFiles/ndc_analysis.dir/analysis/dependence.cpp.o.d"
  "CMakeFiles/ndc_analysis.dir/analysis/reuse.cpp.o"
  "CMakeFiles/ndc_analysis.dir/analysis/reuse.cpp.o.d"
  "libndc_analysis.a"
  "libndc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
