# Empty compiler generated dependencies file for ndc_analysis.
# This may be replaced when dependencies are built.
