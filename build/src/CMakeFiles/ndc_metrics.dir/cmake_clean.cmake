file(REMOVE_RECURSE
  "CMakeFiles/ndc_metrics.dir/metrics/experiment.cpp.o"
  "CMakeFiles/ndc_metrics.dir/metrics/experiment.cpp.o.d"
  "libndc_metrics.a"
  "libndc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
