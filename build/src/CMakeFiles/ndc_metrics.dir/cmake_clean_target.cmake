file(REMOVE_RECURSE
  "libndc_metrics.a"
)
