# Empty dependencies file for ndc_metrics.
# This may be replaced when dependencies are built.
