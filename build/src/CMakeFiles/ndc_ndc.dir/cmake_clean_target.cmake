file(REMOVE_RECURSE
  "libndc_ndc.a"
)
