# Empty dependencies file for ndc_ndc.
# This may be replaced when dependencies are built.
