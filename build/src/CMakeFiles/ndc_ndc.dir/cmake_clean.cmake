file(REMOVE_RECURSE
  "CMakeFiles/ndc_ndc.dir/ndc/machine.cpp.o"
  "CMakeFiles/ndc_ndc.dir/ndc/machine.cpp.o.d"
  "CMakeFiles/ndc_ndc.dir/ndc/policy.cpp.o"
  "CMakeFiles/ndc_ndc.dir/ndc/policy.cpp.o.d"
  "CMakeFiles/ndc_ndc.dir/ndc/record.cpp.o"
  "CMakeFiles/ndc_ndc.dir/ndc/record.cpp.o.d"
  "libndc_ndc.a"
  "libndc_ndc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_ndc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
