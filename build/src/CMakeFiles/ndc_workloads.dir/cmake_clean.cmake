file(REMOVE_RECURSE
  "CMakeFiles/ndc_workloads.dir/workloads/workloads.cpp.o"
  "CMakeFiles/ndc_workloads.dir/workloads/workloads.cpp.o.d"
  "libndc_workloads.a"
  "libndc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
