file(REMOVE_RECURSE
  "libndc_workloads.a"
)
