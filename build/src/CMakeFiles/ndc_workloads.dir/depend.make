# Empty dependencies file for ndc_workloads.
# This may be replaced when dependencies are built.
