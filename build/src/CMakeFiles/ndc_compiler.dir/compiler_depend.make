# Empty compiler generated dependencies file for ndc_compiler.
# This may be replaced when dependencies are built.
