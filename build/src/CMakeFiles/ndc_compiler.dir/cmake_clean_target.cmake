file(REMOVE_RECURSE
  "libndc_compiler.a"
)
