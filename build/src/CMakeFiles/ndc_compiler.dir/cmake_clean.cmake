file(REMOVE_RECURSE
  "CMakeFiles/ndc_compiler.dir/compiler/codegen.cpp.o"
  "CMakeFiles/ndc_compiler.dir/compiler/codegen.cpp.o.d"
  "CMakeFiles/ndc_compiler.dir/compiler/pipeline.cpp.o"
  "CMakeFiles/ndc_compiler.dir/compiler/pipeline.cpp.o.d"
  "libndc_compiler.a"
  "libndc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
