# Empty compiler generated dependencies file for ndc_xform.
# This may be replaced when dependencies are built.
