file(REMOVE_RECURSE
  "CMakeFiles/ndc_xform.dir/xform/transform.cpp.o"
  "CMakeFiles/ndc_xform.dir/xform/transform.cpp.o.d"
  "libndc_xform.a"
  "libndc_xform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_xform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
