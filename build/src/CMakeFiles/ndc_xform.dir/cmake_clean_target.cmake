file(REMOVE_RECURSE
  "libndc_xform.a"
)
