# Empty dependencies file for ndc_sim.
# This may be replaced when dependencies are built.
