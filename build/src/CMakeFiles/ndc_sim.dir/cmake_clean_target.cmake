file(REMOVE_RECURSE
  "libndc_sim.a"
)
