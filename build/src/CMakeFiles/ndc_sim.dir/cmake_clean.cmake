file(REMOVE_RECURSE
  "CMakeFiles/ndc_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/ndc_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/ndc_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/ndc_sim.dir/sim/stats.cpp.o.d"
  "libndc_sim.a"
  "libndc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
