file(REMOVE_RECURSE
  "CMakeFiles/diag_oracle.dir/diag_oracle.cpp.o"
  "CMakeFiles/diag_oracle.dir/diag_oracle.cpp.o.d"
  "diag_oracle"
  "diag_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
