# Empty compiler generated dependencies file for diag_oracle.
# This may be replaced when dependencies are built.
