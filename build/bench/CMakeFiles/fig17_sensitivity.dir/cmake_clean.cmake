file(REMOVE_RECURSE
  "CMakeFiles/fig17_sensitivity.dir/fig17_sensitivity.cpp.o"
  "CMakeFiles/fig17_sensitivity.dir/fig17_sensitivity.cpp.o.d"
  "fig17_sensitivity"
  "fig17_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
