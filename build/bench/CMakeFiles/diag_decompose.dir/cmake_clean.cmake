file(REMOVE_RECURSE
  "CMakeFiles/diag_decompose.dir/diag_decompose.cpp.o"
  "CMakeFiles/diag_decompose.dir/diag_decompose.cpp.o.d"
  "diag_decompose"
  "diag_decompose.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_decompose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
