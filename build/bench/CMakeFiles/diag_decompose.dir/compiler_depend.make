# Empty compiler generated dependencies file for diag_decompose.
# This may be replaced when dependencies are built.
