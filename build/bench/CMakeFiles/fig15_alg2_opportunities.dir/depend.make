# Empty dependencies file for fig15_alg2_opportunities.
# This may be replaced when dependencies are built.
