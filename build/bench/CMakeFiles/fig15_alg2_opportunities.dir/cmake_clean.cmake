file(REMOVE_RECURSE
  "CMakeFiles/fig15_alg2_opportunities.dir/fig15_alg2_opportunities.cpp.o"
  "CMakeFiles/fig15_alg2_opportunities.dir/fig15_alg2_opportunities.cpp.o.d"
  "fig15_alg2_opportunities"
  "fig15_alg2_opportunities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_alg2_opportunities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
