file(REMOVE_RECURSE
  "CMakeFiles/export_records.dir/export_records.cpp.o"
  "CMakeFiles/export_records.dir/export_records.cpp.o.d"
  "export_records"
  "export_records.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_records.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
