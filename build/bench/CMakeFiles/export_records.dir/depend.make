# Empty dependencies file for export_records.
# This may be replaced when dependencies are built.
