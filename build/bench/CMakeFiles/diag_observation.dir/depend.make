# Empty dependencies file for diag_observation.
# This may be replaced when dependencies are built.
