file(REMOVE_RECURSE
  "CMakeFiles/diag_observation.dir/diag_observation.cpp.o"
  "CMakeFiles/diag_observation.dir/diag_observation.cpp.o.d"
  "diag_observation"
  "diag_observation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_observation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
