# Empty compiler generated dependencies file for tab02_cme_accuracy.
# This may be replaced when dependencies are built.
