file(REMOVE_RECURSE
  "CMakeFiles/tab02_cme_accuracy.dir/tab02_cme_accuracy.cpp.o"
  "CMakeFiles/tab02_cme_accuracy.dir/tab02_cme_accuracy.cpp.o.d"
  "tab02_cme_accuracy"
  "tab02_cme_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_cme_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
