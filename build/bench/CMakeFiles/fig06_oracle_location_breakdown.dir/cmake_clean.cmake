file(REMOVE_RECURSE
  "CMakeFiles/fig06_oracle_location_breakdown.dir/fig06_oracle_location_breakdown.cpp.o"
  "CMakeFiles/fig06_oracle_location_breakdown.dir/fig06_oracle_location_breakdown.cpp.o.d"
  "fig06_oracle_location_breakdown"
  "fig06_oracle_location_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_oracle_location_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
