# Empty compiler generated dependencies file for fig06_oracle_location_breakdown.
# This may be replaced when dependencies are built.
