# Empty dependencies file for fig05_window_trace.
# This may be replaced when dependencies are built.
