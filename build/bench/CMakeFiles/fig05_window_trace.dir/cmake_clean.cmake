file(REMOVE_RECURSE
  "CMakeFiles/fig05_window_trace.dir/fig05_window_trace.cpp.o"
  "CMakeFiles/fig05_window_trace.dir/fig05_window_trace.cpp.o.d"
  "fig05_window_trace"
  "fig05_window_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_window_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
