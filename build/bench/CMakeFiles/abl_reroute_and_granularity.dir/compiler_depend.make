# Empty compiler generated dependencies file for abl_reroute_and_granularity.
# This may be replaced when dependencies are built.
