file(REMOVE_RECURSE
  "CMakeFiles/abl_reroute_and_granularity.dir/abl_reroute_and_granularity.cpp.o"
  "CMakeFiles/abl_reroute_and_granularity.dir/abl_reroute_and_granularity.cpp.o.d"
  "abl_reroute_and_granularity"
  "abl_reroute_and_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_reroute_and_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
