file(REMOVE_RECURSE
  "CMakeFiles/fig13_alg1_location_breakdown.dir/fig13_alg1_location_breakdown.cpp.o"
  "CMakeFiles/fig13_alg1_location_breakdown.dir/fig13_alg1_location_breakdown.cpp.o.d"
  "fig13_alg1_location_breakdown"
  "fig13_alg1_location_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_alg1_location_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
