# Empty compiler generated dependencies file for fig13_alg1_location_breakdown.
# This may be replaced when dependencies are built.
