# Empty dependencies file for diag_congestion.
# This may be replaced when dependencies are built.
