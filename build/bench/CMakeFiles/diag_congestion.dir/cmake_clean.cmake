file(REMOVE_RECURSE
  "CMakeFiles/diag_congestion.dir/diag_congestion.cpp.o"
  "CMakeFiles/diag_congestion.dir/diag_congestion.cpp.o.d"
  "diag_congestion"
  "diag_congestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diag_congestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
