# Empty dependencies file for fig04_scheme_comparison.
# This may be replaced when dependencies are built.
