file(REMOVE_RECURSE
  "CMakeFiles/fig04_scheme_comparison.dir/fig04_scheme_comparison.cpp.o"
  "CMakeFiles/fig04_scheme_comparison.dir/fig04_scheme_comparison.cpp.o.d"
  "fig04_scheme_comparison"
  "fig04_scheme_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_scheme_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
