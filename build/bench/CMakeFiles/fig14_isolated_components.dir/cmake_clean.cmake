file(REMOVE_RECURSE
  "CMakeFiles/fig14_isolated_components.dir/fig14_isolated_components.cpp.o"
  "CMakeFiles/fig14_isolated_components.dir/fig14_isolated_components.cpp.o.d"
  "fig14_isolated_components"
  "fig14_isolated_components.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_isolated_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
