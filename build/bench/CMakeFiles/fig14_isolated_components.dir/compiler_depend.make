# Empty compiler generated dependencies file for fig14_isolated_components.
# This may be replaced when dependencies are built.
