# Empty dependencies file for fig02_arrival_window_cdf.
# This may be replaced when dependencies are built.
