file(REMOVE_RECURSE
  "CMakeFiles/fig02_arrival_window_cdf.dir/fig02_arrival_window_cdf.cpp.o"
  "CMakeFiles/fig02_arrival_window_cdf.dir/fig02_arrival_window_cdf.cpp.o.d"
  "fig02_arrival_window_cdf"
  "fig02_arrival_window_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_arrival_window_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
