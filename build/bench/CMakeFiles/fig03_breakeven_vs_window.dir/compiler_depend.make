# Empty compiler generated dependencies file for fig03_breakeven_vs_window.
# This may be replaced when dependencies are built.
