file(REMOVE_RECURSE
  "CMakeFiles/fig03_breakeven_vs_window.dir/fig03_breakeven_vs_window.cpp.o"
  "CMakeFiles/fig03_breakeven_vs_window.dir/fig03_breakeven_vs_window.cpp.o.d"
  "fig03_breakeven_vs_window"
  "fig03_breakeven_vs_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_breakeven_vs_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
