# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/cache_property_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/machine_ndc_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/noc_test[1]_include.cmake")
include("/root/repo/build/tests/policy_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/xform_test[1]_include.cmake")
