# Empty dependencies file for machine_ndc_test.
# This may be replaced when dependencies are built.
