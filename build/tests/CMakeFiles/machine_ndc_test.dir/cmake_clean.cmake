file(REMOVE_RECURSE
  "CMakeFiles/machine_ndc_test.dir/machine_ndc_test.cpp.o"
  "CMakeFiles/machine_ndc_test.dir/machine_ndc_test.cpp.o.d"
  "machine_ndc_test"
  "machine_ndc_test.pdb"
  "machine_ndc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_ndc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
