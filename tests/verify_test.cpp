// Tests for the diagnostics subsystem (src/verify): the structured
// diagnostics engine, the IR validator, the legality auditor (which must
// flag deliberately injected illegal transforms and unsafe leads), the
// parallel-loop race detector, and the Compile() verify_after hook.

#include <gtest/gtest.h>

#include "compiler/pipeline.hpp"
#include "harness/json.hpp"
#include "verify/sarif.hpp"
#include "verify/verify.hpp"
#include "workloads/sharded.hpp"
#include "workloads/workloads.hpp"

namespace ndc::verify {
namespace {

using ir::Int;
using ir::IntMat;
using ir::IntVec;
using ir::Operand;

// --- helpers -------------------------------------------------------------

// A clean depth-2 program: B(i,j) = A(i,j) + A(i,j) over [0,n) x [0,n).
ir::Program CleanProgram(Int n = 8) {
  ir::Program p;
  p.name = "clean";
  int a = p.AddArray("A", {n, n});
  int b = p.AddArray("B", {n, n});
  ir::LoopNest nest;
  nest.loops = {{0, n - 1, -1, 0, -1, 0}, {0, n - 1, -1, 0, -1, 0}};
  ir::Stmt st;
  st.id = p.NextStmtId();
  ir::AffineAccess acc;
  acc.array = a;
  acc.F = IntMat(2, 2, {1, 0, 0, 1});
  acc.f = {0, 0};
  st.rhs0 = Operand::Affine(acc);
  st.rhs1 = Operand::Affine(acc);
  ir::AffineAccess out = acc;
  out.array = b;
  st.lhs = Operand::Affine(out);
  nest.body.push_back(st);
  p.nests.push_back(std::move(nest));
  return p;
}

// A program with a flow dependence of distance (0,1) on A:
//   A(i, j+1) = A(i, j) + B(i, j)   for j in [0, n-2]
ir::Program FlowDepProgram(Int n = 8) {
  ir::Program p;
  p.name = "flowdep";
  int a = p.AddArray("A", {n, n});
  int b = p.AddArray("B", {n, n});
  ir::LoopNest nest;
  nest.loops = {{0, n - 1, -1, 0, -1, 0}, {0, n - 2, -1, 0, -1, 0}};
  ir::Stmt st;
  st.id = p.NextStmtId();
  ir::AffineAccess rd;
  rd.array = a;
  rd.F = IntMat(2, 2, {1, 0, 0, 1});
  rd.f = {0, 0};
  ir::AffineAccess rd2 = rd;
  rd2.array = b;
  ir::AffineAccess wr = rd;
  wr.f = {0, 1};
  st.rhs0 = Operand::Affine(rd);
  st.rhs1 = Operand::Affine(rd2);
  st.lhs = Operand::Affine(wr);
  nest.body.push_back(st);
  p.nests.push_back(std::move(nest));
  return p;
}

int CountCode(const Report& r, Code c) {
  int n = 0;
  for (const Diagnostic& d : r.diags) n += d.code == c;
  return n;
}

// --- diagnostics engine --------------------------------------------------

TEST(Diagnostics, CountsAndCleanliness) {
  Report r;
  EXPECT_TRUE(r.Clean());
  r.Add(Severity::kNote, Code::kEmptyNest, "n");
  r.Add(Severity::kWarning, Code::kSubscriptOutOfBounds, "w");
  EXPECT_TRUE(r.Clean());
  r.Add(Severity::kError, Code::kUnsafeLead, "e");
  EXPECT_FALSE(r.Clean());
  EXPECT_EQ(r.ErrorCount(), 1);
  EXPECT_EQ(r.WarningCount(), 1);
  EXPECT_EQ(r.Count(Severity::kNote), 1);
}

TEST(Diagnostics, TextRenderingCarriesLocationAndCode) {
  Report r;
  r.Add(Severity::kError, Code::kIllegalTransform, "bad T", 3, 1, 42, 7);
  std::string text = r.ToText();
  EXPECT_NE(text.find("error"), std::string::npos);
  EXPECT_NE(text.find("L201"), std::string::npos);  // legality codes render as L2xx
  EXPECT_NE(text.find("illegal-transform"), std::string::npos);
  EXPECT_NE(text.find("nest 3"), std::string::npos);
  EXPECT_NE(text.find("stmt 1"), std::string::npos);
  EXPECT_NE(text.find("S42"), std::string::npos);
  EXPECT_NE(text.find("array 7"), std::string::npos);
  EXPECT_NE(text.find("bad T"), std::string::npos);
}

TEST(Diagnostics, JsonRenderingIsWellFormed) {
  Report r;
  EXPECT_EQ(r.ToJson(), "[]");
  r.Add(Severity::kWarning, Code::kSubscriptOutOfBounds, "quote \" and \\ backslash", 0,
        2, 9, 1);
  r.Add(Severity::kError, Code::kUnsafeLead, "second", 1);
  std::string js = r.ToJson();
  EXPECT_EQ(js.front(), '[');
  EXPECT_EQ(js.back(), ']');
  EXPECT_NE(js.find("\"code\": 105"), std::string::npos);
  EXPECT_NE(js.find("\"code\": 203"), std::string::npos);
  EXPECT_NE(js.find("\\\""), std::string::npos);   // escaped quote
  EXPECT_NE(js.find("\\\\"), std::string::npos);   // escaped backslash
}

TEST(Diagnostics, MergeConcatenates) {
  Report a, b;
  a.Add(Severity::kError, Code::kUnsafeLead, "x");
  b.Add(Severity::kWarning, Code::kEmptyNest, "y");
  a.Merge(b);
  EXPECT_EQ(a.diags.size(), 2u);
}

// --- IR validator --------------------------------------------------------

TEST(Validator, CleanProgramHasNoFindings) {
  ir::Program p = CleanProgram();
  Report r = VerifyProgram(p);
  EXPECT_TRUE(r.Clean()) << r.ToText();
  EXPECT_EQ(r.diags.size(), 0u) << r.ToText();
}

TEST(Validator, FlagsInvalidArrayId) {
  ir::Program p = CleanProgram();
  p.nests[0].body[0].rhs0.access.array = 99;
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kBadArrayRef), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(Validator, FlagsShapeMismatch) {
  ir::Program p = CleanProgram();
  // F with the wrong number of columns for a depth-2 nest.
  p.nests[0].body[0].rhs0.access.F = IntMat(2, 3, {1, 0, 0, 0, 1, 0});
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kShapeMismatch), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(Validator, BoundaryOverrunIsAWarningNotAnError) {
  ir::Program p = CleanProgram(8);
  // A(i, j+1): j+1 reaches 8 on an 8-wide array — skipped at runtime.
  p.nests[0].body[0].rhs0.access.f = {0, 1};
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kSubscriptOutOfBounds), 1) << r.ToText();
  EXPECT_TRUE(r.Clean());
}

TEST(Validator, NeverInBoundsIsAnError) {
  ir::Program p = CleanProgram(8);
  // A(i, j+100) can never resolve on an 8-wide array.
  p.nests[0].body[0].rhs0.access.f = {0, 100};
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kSubscriptNeverInBounds), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(Validator, TriangularBoundsAreHandled) {
  // j in [0, i]: A(i, j) stays in bounds; no findings beyond the (real)
  // kernel-style self-dependence warnings must appear.
  ir::Program p;
  Int n = 6;
  int a = p.AddArray("A", {n, n});
  ir::LoopNest nest;
  nest.loops = {{0, n - 1, -1, 0, -1, 0}, {0, 0, -1, 0, 0, 1}};
  ir::Stmt st;
  st.id = p.NextStmtId();
  ir::AffineAccess acc;
  acc.array = a;
  acc.F = IntMat(2, 2, {1, 0, 0, 1});
  acc.f = {0, 0};
  st.rhs0 = Operand::Affine(acc);
  st.rhs1 = Operand::Affine(acc);
  nest.body.push_back(st);
  p.nests.push_back(std::move(nest));
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kSubscriptOutOfBounds), 0) << r.ToText();
  EXPECT_EQ(CountCode(r, Code::kSubscriptNeverInBounds), 0) << r.ToText();
}

TEST(Validator, FlagsBadLoopBoundDependence) {
  ir::Program p = CleanProgram();
  p.nests[0].loops[0].hi_dep = 1;  // outer bound depending on inner iterator
  p.nests[0].loops[0].hi_coef = 1;
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kBadLoopBound), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(Validator, FlagsNonUnimodularTransform) {
  ir::Program p = CleanProgram();
  p.nests[0].transform = IntMat(2, 2, {2, 0, 0, 1});  // det 2
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kBadTransform), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(Validator, FlagsTransformShapeMismatch) {
  ir::Program p = CleanProgram();
  p.nests[0].transform = IntMat::Identity(3);  // on a depth-2 nest
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kBadTransform), 1) << r.ToText();
}

TEST(Validator, FlagsLeadBeyondMaxLead) {
  ir::Program p = CleanProgram();
  ir::Stmt& st = p.nests[0].body[0];
  st.ndc.offload = true;
  st.ndc.lead1 = 65;  // default max_lead is 64
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kLeadExceedsMax), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(Validator, FlagsMaskedOffPlannedLocation) {
  ir::Program p = CleanProgram();
  ir::Stmt& st = p.nests[0].body[0];
  st.ndc.offload = true;
  st.ndc.planned = arch::Loc::kMemBank;
  VerifyOptions opts;
  opts.control_register = arch::LocBit(arch::Loc::kCacheCtrl);  // cache only
  Report r = VerifyProgram(p, opts);
  EXPECT_GE(CountCode(r, Code::kLocNotEnabled), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(Validator, FlagsOffloadWithoutTwoMemoryOperands) {
  ir::Program p = CleanProgram();
  ir::Stmt& st = p.nests[0].body[0];
  st.rhs1 = Operand::Scalar();
  st.ndc.offload = true;
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kOffloadNeedsTwoLoads), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(Validator, FlagsMissingIndexData) {
  ir::Program p = CleanProgram();
  int idx = p.AddArray("idx", {8});
  ir::AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 2, {1, 0});
  ia.f = {0};
  p.nests[0].body[0].rhs1 = Operand::Indirect(ia, 0);
  // No p.index_data[idx] registered.
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kMissingIndexData), 1) << r.ToText();
}

TEST(Validator, FlagsIndexValuesOutsideTargetArray) {
  ir::Program p = CleanProgram();
  int idx = p.AddArray("idx", {8});
  ir::AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 2, {1, 0});
  ia.f = {0};
  p.nests[0].body[0].rhs1 = Operand::Indirect(ia, 0);
  p.index_data[idx] = {0, 1, 2, 3, 999999, 5, 6, 7};  // one wild entry
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kIndexValueOutOfRange), 1) << r.ToText();
}

TEST(Validator, FlagsStatementsWithoutLoops) {
  ir::Program p = CleanProgram();
  ir::LoopNest empty;
  empty.body.push_back(p.nests[0].body[0]);
  p.nests.push_back(std::move(empty));
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kEmptyNest), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(Validator, FlagsDuplicateStatementIdsWithinOneBody) {
  ir::Program p = CleanProgram();
  p.nests[0].body.push_back(p.nests[0].body[0]);  // same id twice
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kDuplicateStmtId), 1) << r.ToText();
}

// --- legality auditor (acceptance: must catch injected bugs) -------------

TEST(LegalityAudit, FlagsDeliberatelyIllegalTransform) {
  // Dependence (0,1) on A. Reversing the inner loop (T = diag(1,-1)) is
  // unimodular — the validator accepts it — but maps the distance to
  // (0,-1), lexicographically negative: the auditor must reject it.
  ir::Program p = FlowDepProgram();
  p.nests[0].transform = IntMat(2, 2, {1, 0, 0, -1});
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kIllegalTransform), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(LegalityAudit, AcceptsLegalTransformOnSameProgram) {
  // Interchange maps (0,1) -> (1,0): still lex-positive, hence legal.
  ir::Program p = FlowDepProgram();
  p.nests[0].transform = IntMat(2, 2, {0, 1, 1, 0});
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kIllegalTransform), 0) << r.ToText();
  EXPECT_TRUE(r.Clean()) << r.ToText();
}

TEST(LegalityAudit, FlagsDeliberatelyUnsafeLead) {
  // The read A(i,j) is one iteration behind the write A(i,j+1): hoisting it
  // by a lead that crosses the flow dependence is unsafe.
  ir::Program p = FlowDepProgram();
  ir::Stmt& st = p.nests[0].body[0];
  st.ndc.offload = true;
  st.ndc.planned = arch::Loc::kCacheCtrl;
  st.ndc.lead0 = 4;  // rhs0 reads A; distance linearizes to 1 <= 4
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kUnsafeLead), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(LegalityAudit, AcceptsSafeLeadOnUnrelatedArray) {
  // rhs1 reads B, which nothing writes: any in-range lead is safe.
  ir::Program p = FlowDepProgram();
  ir::Stmt& st = p.nests[0].body[0];
  st.ndc.offload = true;
  st.ndc.planned = arch::Loc::kCacheCtrl;
  st.ndc.lead1 = 4;
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kUnsafeLead), 0) << r.ToText();
  EXPECT_TRUE(r.Clean()) << r.ToText();
}

TEST(LegalityAudit, FlagsLeadOnArrayWithUnknownDependences) {
  // An indirect write makes A's dependences unanalyzable; a lead on a read
  // of A can then never be proven safe.
  ir::Program p = CleanProgram();
  int idx = p.AddArray("idx", {8});
  p.index_data[idx] = {0, 1, 2, 3, 4, 5, 6, 7};
  ir::AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 2, {1, 0});
  ia.f = {0};
  ir::Stmt extra;
  extra.id = p.NextStmtId();
  extra.lhs = Operand::Indirect(ia, 0);  // writes A through idx
  extra.rhs0 = p.nests[0].body[0].rhs0;
  extra.rhs1 = Operand::Scalar();
  p.nests[0].body.push_back(extra);
  ir::Stmt& st = p.nests[0].body[0];
  st.ndc.offload = true;
  st.ndc.lead0 = 2;  // reads A, whose deps are now unknown
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kLeadOnUnknownArray), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(LegalityAudit, FlagsTransformAttachedDespiteUnknownDeps) {
  ir::Program p = CleanProgram();
  int idx = p.AddArray("idx", {8});
  p.index_data[idx] = {0, 1, 2, 3, 4, 5, 6, 7};
  ir::AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 2, {1, 0});
  ia.f = {0};
  ir::Stmt extra;
  extra.id = p.NextStmtId();
  extra.lhs = Operand::Indirect(ia, 0);
  extra.rhs0 = p.nests[0].body[0].rhs0;
  extra.rhs1 = Operand::Scalar();
  p.nests[0].body.push_back(extra);
  p.nests[0].transform = IntMat(2, 2, {0, 1, 1, 0});
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kTransformWithUnknownDeps), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

// --- race detector -------------------------------------------------------

TEST(RaceDetector, FlagsOuterCarriedDependence) {
  // A(i+1, j) = A(i, j) + B(i, j): distance (1, 0) is carried by the
  // block-distributed outer loop.
  ir::Program p = FlowDepProgram();
  p.nests[0].body[0].lhs.access.f = {1, 0};
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kParallelCarriedDependence), 1) << r.ToText();
  EXPECT_TRUE(r.Clean()) << r.ToText();  // races are warnings, not errors
}

TEST(RaceDetector, InnerCarriedDependenceIsNotARace) {
  // Distance (0, 1) stays within one core's iteration block.
  ir::Program p = FlowDepProgram();
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kParallelCarriedDependence), 0) << r.ToText();
}

TEST(RaceDetector, CanBeDisabled) {
  ir::Program p = FlowDepProgram();
  p.nests[0].body[0].lhs.access.f = {1, 0};
  VerifyOptions opts;
  opts.check_races = false;
  Report r = VerifyProgram(p, opts);
  EXPECT_EQ(CountCode(r, Code::kParallelCarriedDependence), 0) << r.ToText();
}

TEST(RaceDetector, ProvenDisjointPairProducesZeroWarnings) {
  // x[8i+j] = x[8i+j+32] + B[i,j]: the read and write touch disjoint
  // halves of x. The uniform solve cannot bound the offset, so the old
  // heuristic detector warned R302 here; the classifier-backed detector
  // must refute the pair by section disjointness and stay silent.
  ir::Program p;
  p.name = "disjoint";
  int x = p.AddArray("x", {64});
  int b = p.AddArray("B", {4, 8});
  ir::LoopNest nest;
  nest.loops = {{0, 3, -1, 0, -1, 0}, {0, 7, -1, 0, -1, 0}};
  ir::Stmt st;
  st.id = p.NextStmtId();
  ir::AffineAccess wr;
  wr.array = x;
  wr.F = IntMat(1, 2, {8, 1});
  wr.f = {0};
  ir::AffineAccess rd = wr;
  rd.f = {32};
  ir::AffineAccess rb;
  rb.array = b;
  rb.F = IntMat(2, 2, {1, 0, 0, 1});
  rb.f = {0, 0};
  st.lhs = Operand::Affine(wr);
  st.rhs0 = Operand::Affine(rd);
  st.rhs1 = Operand::Affine(rb);
  nest.body.push_back(st);
  p.nests.push_back(std::move(nest));
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kParallelUnknownDependence), 0) << r.ToText();
  EXPECT_EQ(CountCode(r, Code::kParallelCarriedDependence), 0) << r.ToText();
  EXPECT_EQ(r.WarningCount(), 0) << r.ToText();
}

TEST(RaceDetector, AnnotationAcceptedPrivatizationSuppressesTheWarning) {
  // t(j) written then read each iteration: its carried output dependence
  // warns unless the nest promises privatization.
  auto make = [] {
    ir::Program p;
    int a = p.AddArray("A", {64});
    int tmp = p.AddArray("t", {8});
    int out = p.AddArray("out", {64});
    ir::LoopNest nest;
    nest.loops = {{0, 7, -1, 0, -1, 0}, {0, 7, -1, 0, -1, 0}};
    auto acc1 = [](int array, IntVec coefs, Int off) {
      ir::AffineAccess x;
      x.array = array;
      x.F = IntMat(1, 2, {coefs[0], coefs[1]});
      x.f = {off};
      return Operand::Affine(x);
    };
    ir::Stmt s0;
    s0.id = p.NextStmtId();
    s0.lhs = acc1(tmp, {0, 1}, 0);
    s0.rhs0 = acc1(a, {8, 1}, 0);
    s0.rhs1 = acc1(a, {8, 1}, 0);
    ir::Stmt s1;
    s1.id = p.NextStmtId();
    s1.lhs = acc1(out, {8, 1}, 0);
    s1.rhs0 = acc1(tmp, {0, 1}, 0);
    s1.rhs1 = acc1(a, {8, 1}, 0);
    nest.body = {s0, s1};
    p.nests.push_back(std::move(nest));
    return p;
  };
  ir::Program plain = make();
  Report r1 = VerifyProgram(plain);
  EXPECT_GE(CountCode(r1, Code::kParallelCarriedDependence), 1) << r1.ToText();

  ir::Program annotated = make();
  annotated.nests[0].parallel.level = 0;
  annotated.nests[0].parallel.privatized_ok = true;
  Report r2 = VerifyProgram(annotated);
  EXPECT_EQ(CountCode(r2, Code::kParallelCarriedDependence), 0) << r2.ToText();
  EXPECT_TRUE(r2.Clean()) << r2.ToText();
}

// --- parallel-annotation proof audit (P4xx) -------------------------------

TEST(ParallelismCheck, AnnotatedCarriedFlowIsAnErrorWithWitnessDistance) {
  // A(i+1, j) = A(i, j): annotating level 0 parallel contradicts the
  // (1,0) flow dependence; the witness vector must appear in the message.
  ir::Program p = FlowDepProgram();
  p.nests[0].body[0].lhs.access.f = {1, 0};
  p.nests[0].parallel.level = 0;
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kAnnotatedCarriedFlow), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
  EXPECT_NE(r.ToText().find("(1,0)"), std::string::npos) << r.ToText();
}

TEST(ParallelismCheck, InnerLevelAnnotationCatchesInnerCarriedDependence) {
  // Distance (0,1): level 0 is safely parallel, level 1 is not.
  ir::Program ok = FlowDepProgram();
  ok.nests[0].parallel.level = 0;
  Report r_ok = VerifyProgram(ok);
  EXPECT_EQ(CountCode(r_ok, Code::kAnnotatedCarriedFlow), 0) << r_ok.ToText();
  EXPECT_TRUE(r_ok.Clean()) << r_ok.ToText();

  ir::Program bad = FlowDepProgram();
  bad.nests[0].parallel.level = 1;
  Report r_bad = VerifyProgram(bad);
  EXPECT_EQ(CountCode(r_bad, Code::kAnnotatedCarriedFlow), 1) << r_bad.ToText();
  EXPECT_NE(r_bad.ToText().find("(0,1)"), std::string::npos) << r_bad.ToText();
}

TEST(ParallelismCheck, CleanNestAnnotationPasses) {
  ir::Program p = CleanProgram();
  p.nests[0].parallel.level = 0;
  Report r = VerifyProgram(p);
  EXPECT_TRUE(r.Clean()) << r.ToText();
  EXPECT_EQ(r.diags.size(), 0u) << r.ToText();
}

TEST(ParallelismCheck, BadLevelIsAnError) {
  ir::Program p = CleanProgram();
  p.nests[0].parallel.level = 5;
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kAnnotationBadLevel), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(ParallelismCheck, UnknownDepsMakeTheAnnotationUnprovable) {
  ir::Program p = CleanProgram();
  int idx = p.AddArray("idx", {8});
  p.index_data[idx] = {0, 1, 2, 3, 4, 5, 6, 7};
  ir::AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 2, {1, 0});
  ia.f = {0};
  ir::Stmt extra;
  extra.id = p.NextStmtId();
  extra.lhs = Operand::Indirect(ia, 0);
  extra.rhs0 = p.nests[0].body[0].rhs0;
  extra.rhs1 = Operand::Scalar();
  p.nests[0].body.push_back(extra);
  p.nests[0].parallel.level = 0;
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kAnnotatedUnknownDeps), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(ParallelismCheck, ReductionObligationNeedsTheFlag) {
  // s(i) += A(i,j): the reduction self-dependence is carried at level 1,
  // so annotating level 1 requires reduction_ok.
  ir::Program p;
  int s = p.AddArray("s", {8});
  int a = p.AddArray("A", {64});
  ir::LoopNest nest;
  nest.loops = {{0, 7, -1, 0, -1, 0}, {0, 7, -1, 0, -1, 0}};
  ir::Stmt st;
  st.id = p.NextStmtId();
  ir::AffineAccess sa;
  sa.array = s;
  sa.F = IntMat(1, 2, {1, 0});
  sa.f = {0};
  ir::AffineAccess aa;
  aa.array = a;
  aa.F = IntMat(1, 2, {8, 1});
  aa.f = {0};
  st.lhs = Operand::Affine(sa);
  st.op = arch::Op::kAdd;
  st.rhs0 = Operand::Affine(sa);
  st.rhs1 = Operand::Affine(aa);
  nest.body.push_back(st);
  nest.parallel.level = 1;
  p.nests.push_back(std::move(nest));

  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kAnnotationNeedsReduction), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());

  p.nests[0].parallel.reduction_ok = true;
  Report r2 = VerifyProgram(p);
  EXPECT_EQ(CountCode(r2, Code::kAnnotationNeedsReduction), 0) << r2.ToText();
  EXPECT_TRUE(r2.Clean()) << r2.ToText();
}

TEST(ParallelismCheck, UnusedObligationIsANote) {
  ir::Program p = CleanProgram();
  p.nests[0].parallel.level = 0;
  p.nests[0].parallel.reduction_ok = true;  // nothing to combine
  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kAnnotationUnusedObligation), 1) << r.ToText();
  EXPECT_TRUE(r.Clean()) << r.ToText();  // a note, not an error
}

TEST(ParallelismCheck, UnusedObligationNoteCoversBothObligationKinds) {
  // Each unneeded flag is called out by name; both together produce one
  // note naming both, at note severity (never a warning or an error).
  ir::Program p = CleanProgram();
  p.nests[0].parallel.level = 0;
  p.nests[0].parallel.privatized_ok = true;  // nothing to privatize
  Report r = VerifyProgram(p);
  ASSERT_EQ(CountCode(r, Code::kAnnotationUnusedObligation), 1) << r.ToText();
  EXPECT_EQ(r.WarningCount(), 0);
  EXPECT_TRUE(r.Clean());
  for (const Diagnostic& d : r.diags) {
    if (d.code != Code::kAnnotationUnusedObligation) continue;
    EXPECT_EQ(d.severity, Severity::kNote);
    EXPECT_NE(d.message.find("privatization"), std::string::npos) << d.message;
  }

  p.nests[0].parallel.reduction_ok = true;  // now both flags are unneeded
  Report r2 = VerifyProgram(p);
  ASSERT_EQ(CountCode(r2, Code::kAnnotationUnusedObligation), 1) << r2.ToText();
  for (const Diagnostic& d : r2.diags) {
    if (d.code != Code::kAnnotationUnusedObligation) continue;
    EXPECT_NE(d.message.find("reduction"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("privatization"), std::string::npos) << d.message;
  }
}

TEST(ParallelismCheck, CanBeDisabled) {
  ir::Program p = FlowDepProgram();
  p.nests[0].body[0].lhs.access.f = {1, 0};
  p.nests[0].parallel.level = 0;
  VerifyOptions opts;
  opts.check_parallelism = false;
  Report r = VerifyProgram(p, opts);
  EXPECT_EQ(CountCode(r, Code::kAnnotatedCarriedFlow), 0) << r.ToText();
}

// --- synchronization audit (S5xx) ------------------------------------------

ir::Program AtomicReduceProgram() {
  return workloads::BuildShardedWorkload("shard.reduce.atomic", workloads::Scale::kTest,
                                         4);
}

ir::Program WaveProgram() {
  return workloads::BuildShardedWorkload("shard.stencil.wave", workloads::Scale::kTest,
                                         4);
}

TEST(SyncCheck, SyncLoweredScenariosVerifyClean) {
  EXPECT_TRUE(VerifyProgram(AtomicReduceProgram()).Clean());
  EXPECT_TRUE(VerifyProgram(WaveProgram()).Clean());
}

TEST(SyncCheck, SyncOnUnannotatedNestIsAnError) {
  ir::Program p = AtomicReduceProgram();
  p.nests[0].parallel.level = -1;
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kSyncOnUnannotatedNest), 1) << r.ToText();
  EXPECT_FALSE(r.Clean());
}

TEST(SyncCheck, AtomicOnPerCoreAccumulatorDischargesNothing) {
  // shard.reduce's accumulator is indexed by the shard id — already private
  // per core, so sync-lowering its RMW discharges no obligation.
  ir::Program p =
      workloads::BuildShardedWorkload("shard.reduce", workloads::Scale::kTest, 4);
  p.nests[0].body[0].sync.kind = ir::SyncKind::kNdcAtomic;
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kSyncWithoutObligation), 1) << r.ToText();
}

TEST(SyncCheck, SharedReductionLeftUnsynchronizedIsAnError) {
  ir::Program p = AtomicReduceProgram();
  p.nests[0].body[0].sync.kind = ir::SyncKind::kNone;  // barrier stays: sync nest
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kSyncMissingOnObligation), 1) << r.ToText();
}

TEST(SyncCheck, PostWaitOnDoallLevelIsAnError) {
  ir::Program p =
      workloads::BuildShardedWorkload("shard.stencil", workloads::Scale::kTest, 4);
  int sa = p.AddArray("__sync", {5});
  p.nests[0].sync.kind = ir::SyncKind::kPostWait;
  p.nests[0].sync.distance = 1;
  p.nests[0].sync.sync_array = sa;
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kPostWaitNotDoacross), 1) << r.ToText();
}

TEST(SyncCheck, DeclaredDistanceMustMatchTheWitness) {
  ir::Program p = WaveProgram();
  p.nests[0].sync.distance = 2;  // witness min carried distance is 1
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kPostWaitDistanceMismatch), 1) << r.ToText();
}

TEST(SyncCheck, BadSyncArrayIsAnError) {
  ir::Program p = WaveProgram();
  p.nests[0].sync.sync_array = 99;
  Report r = VerifyProgram(p);
  EXPECT_GE(CountCode(r, Code::kSyncBadArray), 1) << r.ToText();
}

TEST(SyncCheck, DependenceNotAMultipleOfTheDistanceIsUncovered) {
  // Two carried flow dependences, distances (2,0) and (3,0). Post/wait at
  // the min distance 2 satisfies S505 but cannot order the distance-3 dep:
  // 3 is not a multiple of 2, so S507 must fire.
  ir::Program p;
  int a = p.AddArray("A", {96});
  int b = p.AddArray("B", {96});
  int sa = p.AddArray("__sync", {5});
  ir::LoopNest nest;
  nest.loops = {{0, 7, -1, 0, -1, 0}, {0, 7, -1, 0, -1, 0}};
  auto acc = [&](int arr, Int off) {
    ir::AffineAccess x;
    x.array = arr;
    x.F = IntMat(1, 2, {8, 1});
    x.f = {off};
    return Operand::Affine(x);
  };
  ir::Stmt s0;
  s0.id = p.NextStmtId();
  s0.lhs = acc(a, 16);
  s0.op = arch::Op::kAdd;
  s0.rhs0 = acc(a, 0);
  s0.rhs1 = acc(b, 0);
  nest.body.push_back(s0);
  ir::Stmt s1;
  s1.id = p.NextStmtId();
  s1.lhs = acc(b, 24);
  s1.op = arch::Op::kAdd;
  s1.rhs0 = acc(b, 0);
  s1.rhs1 = acc(a, 0);
  nest.body.push_back(s1);
  nest.parallel.level = 0;
  nest.sync.kind = ir::SyncKind::kPostWait;
  nest.sync.distance = 2;
  nest.sync.sync_array = sa;
  p.nests.push_back(std::move(nest));

  Report r = VerifyProgram(p);
  EXPECT_EQ(CountCode(r, Code::kPostWaitDistanceMismatch), 0) << r.ToText();
  EXPECT_GE(CountCode(r, Code::kPostWaitUncoveredDependence), 1) << r.ToText();
}

TEST(SyncCheck, CanBeDisabled) {
  ir::Program p = AtomicReduceProgram();
  p.nests[0].parallel.level = -1;
  VerifyOptions opts;
  opts.check_sync = false;
  Report r = VerifyProgram(p, opts);
  EXPECT_EQ(CountCode(r, Code::kSyncOnUnannotatedNest), 0) << r.ToText();
}

// --- report determinism and SARIF export ----------------------------------

TEST(ReportOrdering, SortIsByNestStmtCode) {
  Report r;
  r.Add(Severity::kWarning, Code::kParallelCarriedDependence, "b", 2, 1);
  r.Add(Severity::kError, Code::kBadArrayRef, "a", 0, 3);
  r.Add(Severity::kError, Code::kShapeMismatch, "c", 0, 1);
  r.Add(Severity::kError, Code::kBadArrayRef, "d", 0, 1);
  r.Sort();
  ASSERT_EQ(r.diags.size(), 4u);
  EXPECT_EQ(r.diags[0].message, "d");  // nest 0, stmt 1, code 101
  EXPECT_EQ(r.diags[1].message, "c");  // nest 0, stmt 1, code 102
  EXPECT_EQ(r.diags[2].message, "a");  // nest 0, stmt 3
  EXPECT_EQ(r.diags[3].message, "b");  // nest 2
}

TEST(ReportOrdering, VerifyProgramOutputIsByteStable) {
  ir::Program p1 = FlowDepProgram();
  p1.nests[0].body[0].lhs.access.f = {1, 0};
  p1.nests[0].parallel.level = 0;
  ir::Program p2 = FlowDepProgram();
  p2.nests[0].body[0].lhs.access.f = {1, 0};
  p2.nests[0].parallel.level = 0;
  EXPECT_EQ(VerifyProgram(p1).ToText(), VerifyProgram(p2).ToText());
}

TEST(Sarif, EmptyReportIsAValidSkeleton) {
  Report r;
  std::string s = ToSarif(r);
  EXPECT_NE(s.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("\"runs\""), std::string::npos);
  EXPECT_NE(s.find("\"results\": []"), std::string::npos);
  EXPECT_NE(s.find("\"rules\": []"), std::string::npos);
}

TEST(Sarif, FindingsCarryRuleIdsLevelsAndEscapedText) {
  Report r;
  r.Add(Severity::kError, Code::kAnnotatedCarriedFlow, "dist \"(1,0)\"", 2, 1, 0, 3);
  r.Add(Severity::kWarning, Code::kParallelCarriedDependence, "carried", 0, 0);
  std::string s = ToSarif(r);
  EXPECT_NE(s.find("\"ruleId\": \"P401\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"ruleId\": \"R301\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"level\": \"error\""), std::string::npos);
  EXPECT_NE(s.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(s.find("dist \\\"(1,0)\\\""), std::string::npos) << s;
  EXPECT_NE(s.find("annotated-carried-flow"), std::string::npos);
  EXPECT_NE(s.find("nest2/stmt1"), std::string::npos);
  // Rules are listed once per distinct code, ordered by numeric code.
  EXPECT_LT(s.find("\"id\": \"R301\""), s.find("\"id\": \"P401\""));
}

TEST(ReportOrdering, SyncCodesCarrySPrefixAndSortAfterParallelCodes) {
  EXPECT_EQ(CodeId(Code::kSyncOnUnannotatedNest), "S501");
  EXPECT_EQ(CodeId(Code::kPostWaitUncoveredDependence), "S507");
  Report r;
  r.Add(Severity::kError, Code::kPostWaitUncoveredDependence, "uncovered", 0, 0);
  r.Add(Severity::kError, Code::kAnnotatedCarriedFlow, "carried", 0, 0);
  r.Add(Severity::kError, Code::kSyncOnUnannotatedNest, "unannotated", 0, 0);
  r.Add(Severity::kError, Code::kSyncWithoutObligation, "pointless", 0, 0);
  r.Sort();
  ASSERT_EQ(r.diags.size(), 4u);
  EXPECT_EQ(r.diags[0].message, "carried");      // P401
  EXPECT_EQ(r.diags[1].message, "unannotated");  // S501
  EXPECT_EQ(r.diags[2].message, "pointless");    // S502
  EXPECT_EQ(r.diags[3].message, "uncovered");    // S507
}

TEST(Sarif, RoundTripsControlCharactersAndMultiByteRunes) {
  // One message exercising every escape class: quote, backslash, newline,
  // tab, carriage return, backspace, form feed, a bare control byte, and a
  // multi-byte UTF-8 rune (U+2192 RIGHTWARDS ARROW). The exporter's output
  // must parse as JSON and decode back to the exact original bytes — in
  // particular the rune's three bytes must pass through unescaped.
  const std::string msg =
      "dist \"x\" a\\b\nnl\ttab\rcr\bbs\fff \x01 S0\xE2\x86\x92S1";
  Report rep;
  rep.Add(Severity::kError, Code::kSyncBadArray, msg, 1, 2);
  std::string s = ToSarif(rep);

  harness::json::Value v;
  std::string err;
  ASSERT_TRUE(harness::json::Parse(s, &v, &err)) << err << "\n" << s;
  const harness::json::Value* runs = v.Find("runs");
  ASSERT_TRUE(runs != nullptr && runs->is_array() && !runs->arr.empty());
  const harness::json::Value* results = runs->arr[0].Find("results");
  ASSERT_TRUE(results != nullptr && results->is_array() && !results->arr.empty());
  const harness::json::Value* message = results->arr[0].Find("message");
  ASSERT_TRUE(message != nullptr);
  const harness::json::Value* text = message->Find("text");
  ASSERT_TRUE(text != nullptr);
  EXPECT_EQ(text->str, msg);  // byte-identical round trip
  EXPECT_NE(s.find("\"ruleId\": \"S506\""), std::string::npos) << s;
  EXPECT_NE(s.find("\xE2\x86\x92"), std::string::npos);  // rune stayed raw
  EXPECT_EQ(s.find('\r'), std::string::npos);  // no raw control bytes leak
  EXPECT_EQ(s.find('\x01'), std::string::npos);
}

// --- pipeline integration ------------------------------------------------

TEST(VerifyAfterCompile, ShippedPipelineIsCleanOnAllModes) {
  arch::ArchConfig cfg;
  compiler::ArchDescription ad(cfg);
  for (const std::string& name : {std::string("swim"), std::string("md"),
                                  std::string("cholesky"), std::string("ocean")}) {
    for (compiler::Mode mode :
         {compiler::Mode::kBaseline, compiler::Mode::kAlgorithm1,
          compiler::Mode::kAlgorithm2, compiler::Mode::kCoarseGrain}) {
      ir::Program prog = workloads::BuildWorkload(name, workloads::Scale::kTest);
      compiler::CompileOptions opt;
      opt.mode = mode;
      ASSERT_TRUE(opt.verify_after);  // on by default
      compiler::CompileReport rep = compiler::Compile(prog, ad, opt);
      EXPECT_EQ(rep.verify.ErrorCount(), 0)
          << name << " " << compiler::ModeName(mode) << "\n" << rep.verify.ToText();
    }
  }
}

TEST(VerifyAfterCompile, CanBeDisabled) {
  arch::ArchConfig cfg;
  compiler::ArchDescription ad(cfg);
  ir::Program prog = workloads::BuildWorkload("swim", workloads::Scale::kTest);
  compiler::CompileOptions opt;
  opt.verify_after = false;
  compiler::CompileReport rep = compiler::Compile(prog, ad, opt);
  EXPECT_EQ(rep.verify.diags.size(), 0u);
}

TEST(VerifyAfterCompile, AuditHonorsRestrictedControlRegister) {
  // Compile with a cache-only control register: every planned location must
  // respect the mask, and the auditor (given the same mask) must agree.
  arch::ArchConfig cfg;
  compiler::ArchDescription ad(cfg);
  ir::Program prog = workloads::BuildWorkload("swim", workloads::Scale::kTest);
  compiler::CompileOptions opt;
  opt.mode = compiler::Mode::kAlgorithm1;
  opt.control_register = arch::LocBit(arch::Loc::kCacheCtrl);
  compiler::CompileReport rep = compiler::Compile(prog, ad, opt);
  EXPECT_EQ(rep.verify.ErrorCount(), 0) << rep.verify.ToText();
}

}  // namespace
}  // namespace ndc::verify
