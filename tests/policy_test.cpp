// Tests for the hardware-side waiting policies (Section 4.4) and the
// observation-record metrics: arrival windows, breakeven points, and the
// decision logic of Default / Wait(x%) / Last-Wait / Markov / Oracle.

#include <gtest/gtest.h>

#include "ndc/policy.hpp"
#include "ndc/record.hpp"

namespace ndc::runtime {
namespace {

constexpr std::uint8_t kAll = arch::kAllLocs;

TEST(LocObsTest, WindowSemantics) {
  LocObs o;
  o.feasible = true;
  EXPECT_EQ(o.Window(), sim::kNeverCycle);  // nobody arrived
  o.t_a = 100;
  EXPECT_EQ(o.Window(), sim::kNeverCycle);  // partner missing
  o.t_b = 140;
  EXPECT_EQ(o.Window(), 40u);
  EXPECT_EQ(o.FirstArrival(), 100u);
  EXPECT_EQ(o.SecondArrival(), 140u);
  o.meet_ok = false;  // evicted before the partner arrived
  EXPECT_EQ(o.Window(), sim::kNeverCycle);
  o.meet_ok = true;
  o.feasible = false;
  EXPECT_EQ(o.Window(), sim::kNeverCycle);
}

TEST(BreakevenTest, MatchesDefinition) {
  InstanceRecord rec;
  rec.conv_done = 200;
  LocObs& o = rec.at(Loc::kCacheCtrl);
  o.feasible = true;
  o.t_a = 100;
  o.t_b = 120;
  // breakeven = conv - (first + op + ret) = 200 - (100 + 1 + 9) = 90
  EXPECT_EQ(BreakevenPoint(rec, Loc::kCacheCtrl, 1, 9), 90u);
  // NDC never profitable when the base already exceeds conventional.
  rec.conv_done = 105;
  EXPECT_EQ(BreakevenPoint(rec, Loc::kCacheCtrl, 1, 9), 0u);
}

TEST(ReturnLatency, GrowsWithDistance) {
  noc::Mesh mesh(5, 5);
  noc::NetworkParams np;
  sim::Cycle near = ResultReturnLatency(mesh, np, 0, 1);
  sim::Cycle far = ResultReturnLatency(mesh, np, 0, 24);
  EXPECT_LT(near, far);
  EXPECT_EQ(ResultReturnLatency(mesh, np, 3, 3), np.router_pipeline);
}

TEST(FutureReuse, DetectsLaterLineAccess) {
  arch::Trace t;
  t.push_back(arch::MakeLoad(0x1000));                       // 0
  t.push_back(arch::MakeLoad(0x2000));                       // 1
  t.push_back(arch::MakeCompute(arch::Op::kAdd, 0, 1, true));  // 2
  t.push_back(arch::MakeLoad(0x1020));                       // 3: same 64B line as A
  auto reused = ComputeFutureReuse(t, 64);
  EXPECT_TRUE(reused[2]);
  // At 16-byte granularity 0x1020 is a different "line": no reuse.
  auto fine = ComputeFutureReuse(t, 16);
  EXPECT_FALSE(fine[2]);
}

TEST(FutureReuse, NoReuseWhenAccessIsBefore) {
  arch::Trace t;
  t.push_back(arch::MakeLoad(0x1000));
  t.push_back(arch::MakeLoad(0x1008));  // same line, but BEFORE the site
  t.push_back(arch::MakeLoad(0x2000));
  t.push_back(arch::MakeCompute(arch::Op::kAdd, 1, 2, true));
  auto reused = ComputeFutureReuse(t, 64);
  EXPECT_FALSE(reused[3]);
}

TEST(TrialOrder, FirstFeasibleRespectsPathOrder) {
  Loc out;
  ASSERT_TRUE(FirstFeasibleLoc(kAll, kAll, &out));
  EXPECT_EQ(out, Loc::kLinkBuffer);
  ASSERT_TRUE(FirstFeasibleLoc(
      static_cast<std::uint8_t>(arch::LocBit(Loc::kMemCtrl) | arch::LocBit(Loc::kMemBank)),
      kAll, &out));
  EXPECT_EQ(out, Loc::kMemCtrl);
  EXPECT_FALSE(FirstFeasibleLoc(0, kAll, &out));
  // Control register masks feasibility.
  EXPECT_FALSE(FirstFeasibleLoc(arch::LocBit(Loc::kCacheCtrl),
                                arch::LocBit(Loc::kMemBank), &out));
}

TEST(AlwaysWait, OffloadsWithHugeTimeout) {
  arch::ArchConfig cfg;
  AlwaysWaitPolicy p(cfg);
  Decision d = p.Decide(0, 0, 0, 0, 0, kAll);
  EXPECT_TRUE(d.offload);
  EXPECT_EQ(d.timeout, cfg.default_timeout);
  EXPECT_FALSE(p.Decide(0, 0, 0, 0, 0, 0).offload);
}

TEST(FractionWait, UsesProfiledWindow) {
  arch::ArchConfig cfg;
  RunRecord profile(25);
  InstanceRecord& rec = profile.Get(3, 17);
  rec.at(Loc::kLinkBuffer).feasible = true;
  rec.at(Loc::kLinkBuffer).t_a = 100;
  rec.at(Loc::kLinkBuffer).t_b = 300;  // window 200
  FractionWaitPolicy p(cfg, profile, 0.25);
  Decision d = p.Decide(3, 17, 0, 0, 0, arch::LocBit(Loc::kLinkBuffer));
  ASSERT_TRUE(d.offload);
  EXPECT_EQ(d.timeout, 50u);
  // Unknown instance: falls back to 25% of the 500-cycle cap.
  Decision d2 = p.Decide(3, 99, 0, 0, 0, arch::LocBit(Loc::kLinkBuffer));
  EXPECT_EQ(d2.timeout, 125u);
  EXPECT_EQ(p.name(), "wait(25%)");
}

TEST(LastWait, LearnsFromObservedWindows) {
  arch::ArchConfig cfg;
  LastWaitPolicy p(cfg, /*first_guess=*/50);
  Decision d = p.Decide(1, 0, 7, 0, 0, kAll);
  EXPECT_EQ(d.timeout, 50u);  // cold guess
  p.ObserveWindow(1, 7, 120);
  EXPECT_EQ(p.Decide(1, 0, 7, 0, 0, kAll).timeout, 120u);
  // A "never" observation disables offloading for that PC.
  p.ObserveWindow(1, 7, sim::kNeverCycle);
  EXPECT_FALSE(p.Decide(1, 0, 7, 0, 0, kAll).offload);
  // Other PCs are unaffected.
  EXPECT_TRUE(p.Decide(1, 0, 8, 0, 0, kAll).offload);
}

TEST(Markov, PredictsFromTransitions) {
  arch::ArchConfig cfg;
  MarkovWaitPolicy p(cfg);
  // Train a strong 20->100 alternation on PC 5.
  for (int i = 0; i < 10; ++i) {
    p.ObserveWindow(0, 5, 15);   // bucket <=20
    p.ObserveWindow(0, 5, 80);   // bucket <=100
  }
  // Last observation was bucket <=100; the trained row says next is <=20.
  Decision d = p.Decide(0, 0, 5, 0, 0, kAll);
  ASSERT_TRUE(d.offload);
  EXPECT_EQ(d.timeout, 20u);
}

TEST(OracleTest, AcceptsOnlyWithinBreakeven) {
  arch::ArchConfig cfg;
  RunRecord profile(25);
  InstanceRecord& rec = profile.Get(2, 10);
  rec.conv_done = 400;
  LocObs& o = rec.at(Loc::kCacheCtrl);
  o.feasible = true;
  o.node = 2;  // same node: minimal return latency
  o.t_a = 100;
  o.t_b = 150;  // window 50, breakeven = 400-(100+1+3)=296
  OraclePolicy p(cfg, profile);
  Decision d = p.Decide(2, 10, 0, 0, 0, arch::LocBit(Loc::kCacheCtrl));
  ASSERT_TRUE(d.offload);
  EXPECT_EQ(d.loc, Loc::kCacheCtrl);
  EXPECT_GT(d.timeout, 50u);  // waits until the breakeven point

  // Window beyond breakeven (window 299 > breakeven 296): conventional.
  o.t_b = 399;
  EXPECT_FALSE(p.Decide(2, 10, 0, 0, 0, arch::LocBit(Loc::kCacheCtrl)).offload);
}

TEST(OracleTest, ReuseGateFavorsLocality) {
  arch::ArchConfig cfg;
  RunRecord profile(25);
  InstanceRecord& rec = profile.Get(0, 1);
  rec.conv_done = 500;
  rec.operand_reused_later = true;
  LocObs& o = rec.at(Loc::kLinkBuffer);
  o.feasible = true;
  o.node = 0;
  o.t_a = 10;
  o.t_b = 20;
  OraclePolicy reuse_aware(cfg, profile, /*reuse_aware=*/true);
  EXPECT_FALSE(reuse_aware.Decide(0, 1, 0, 0, 0, kAll).offload);
  OraclePolicy greedy(cfg, profile, /*reuse_aware=*/false);
  EXPECT_TRUE(greedy.Decide(0, 1, 0, 0, 0, kAll).offload);
}

TEST(OracleTest, L2LineReuseGatesMemorySideOnly) {
  arch::ArchConfig cfg;
  RunRecord profile(25);
  InstanceRecord& rec = profile.Get(0, 1);
  rec.conv_done = 500;
  rec.operand_reused_later = false;
  rec.operand_reused_later_l2 = true;  // 256B-line reuse only
  for (Loc l : {Loc::kMemCtrl, Loc::kLinkBuffer}) {
    LocObs& o = rec.at(l);
    o.feasible = true;
    o.node = 0;
    o.t_a = 10;
    o.t_b = 20;
  }
  OraclePolicy p(cfg, profile);
  Decision d = p.Decide(0, 1, 0, 0, 0, arch::LocBit(Loc::kMemCtrl));
  EXPECT_FALSE(d.offload);  // memory-side squashes the L2 fill
  Decision d2 = p.Decide(0, 1, 0, 0, 0, arch::LocBit(Loc::kLinkBuffer));
  EXPECT_TRUE(d2.offload);  // link meet leaves L2 intact
}

TEST(OracleTest, UnknownInstanceStaysConventional) {
  arch::ArchConfig cfg;
  RunRecord profile(25);
  OraclePolicy p(cfg, profile);
  EXPECT_FALSE(p.Decide(0, 123, 0, 0, 0, kAll).offload);
}

TEST(NoNdc, NeverOffloads) {
  NoNdcPolicy p;
  EXPECT_FALSE(p.Decide(0, 0, 0, 0, 0, kAll).offload);
}

}  // namespace
}  // namespace ndc::runtime
