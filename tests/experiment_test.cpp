// metrics::Experiment unit tests: result caching semantics, ImprovementPct
// edge cases, the cached-program fast path of RunCompiled, and cell-for-cell
// determinism of a parallel harness sweep against a serial one.

#include <gtest/gtest.h>

#include "harness/sweep.hpp"
#include "metrics/experiment.hpp"

namespace ndc::metrics {
namespace {

using workloads::Scale;

TEST(Experiment, BaselineIsComputedOnceAndCached) {
  arch::ArchConfig cfg;
  Experiment exp("md", Scale::kTest, cfg);
  const runtime::RunResult& a = exp.Baseline();
  const runtime::RunResult& b = exp.Baseline();
  EXPECT_EQ(&a, &b);  // same object, not a re-run
  EXPECT_GT(a.makespan, 0u);
}

TEST(Experiment, ObserveIsComputedOnceAndCached) {
  arch::ArchConfig cfg;
  Experiment exp("md", Scale::kTest, cfg);
  const runtime::RunResult& a = exp.Observe();
  const runtime::RunResult& b = exp.Observe();
  EXPECT_EQ(&a, &b);
  // Observation mode must not distort timing (Section 4's design point).
  EXPECT_EQ(a.makespan, exp.Baseline().makespan);
}

TEST(ImprovementPct, ZeroBaselineYieldsZeroNotDivisionByZero) {
  EXPECT_EQ(ImprovementPct(0, 100), 0.0);
  EXPECT_EQ(ImprovementPct(0, 0), 0.0);
}

TEST(ImprovementPct, SignConventions) {
  EXPECT_DOUBLE_EQ(ImprovementPct(200, 100), 50.0);   // faster = positive
  EXPECT_DOUBLE_EQ(ImprovementPct(100, 150), -50.0);  // slower = negative
  EXPECT_DOUBLE_EQ(ImprovementPct(100, 100), 0.0);
}

// RunCompiled reuses the workload program built in the constructor instead
// of regenerating it; the compiled result must match a fresh Experiment's.
TEST(Experiment, RunCompiledMatchesFreshExperiment) {
  arch::ArchConfig cfg;
  compiler::CompileOptions opt;
  opt.mode = compiler::Mode::kAlgorithm1;

  Experiment reused("md", Scale::kTest, cfg);
  (void)reused.Baseline();  // populate caches before compiling
  SchemeResult a = reused.RunCompiled(opt);

  Experiment fresh("md", Scale::kTest, cfg);
  SchemeResult b = fresh.RunCompiled(opt);

  EXPECT_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.run.ndc_success, b.run.ndc_success);
  EXPECT_EQ(a.compile_report.planned, b.compile_report.planned);
  EXPECT_EQ(a.compile_report.chains, b.compile_report.chains);
}

// Consecutive RunCompiled calls on one Experiment see the same pristine
// program (Compile must not leak mutations into later calls).
TEST(Experiment, RunCompiledIsRepeatable) {
  arch::ArchConfig cfg;
  compiler::CompileOptions opt;
  opt.mode = compiler::Mode::kAlgorithm2;
  Experiment exp("swim", Scale::kTest, cfg);
  SchemeResult a = exp.RunCompiled(opt);
  SchemeResult b = exp.RunCompiled(opt);
  EXPECT_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.compile_report.planned, b.compile_report.planned);
}

// The harness determinism contract: a 4-thread sweep produces results
// cell-for-cell identical to the serial sweep of the same spec.
TEST(Experiment, ParallelSweepMatchesSerialSweep) {
  harness::SweepSpec spec;
  spec.figure = "determinism";
  for (const char* w : {"md", "swim", "fft"}) {
    for (Scheme s : {Scheme::kBaseline, Scheme::kOracle, Scheme::kAlgorithm1}) {
      harness::CellSpec cell;
      cell.workload = w;
      cell.scale = Scale::kTest;
      cell.scheme = s;
      spec.cells.push_back(cell);
    }
  }

  harness::SweepOptions serial;
  serial.jobs = 1;
  serial.use_cache = false;
  harness::SweepOptions parallel = serial;
  parallel.jobs = 4;

  harness::SweepResult a = harness::RunSweep(spec, serial);
  harness::SweepResult b = harness::RunSweep(spec, parallel);
  ASSERT_EQ(a.cells.size(), spec.cells.size());
  ASSERT_EQ(b.cells.size(), spec.cells.size());
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    EXPECT_TRUE(a.cells[i] == b.cells[i])
        << spec.cells[i].workload << "/" << spec.cells[i].SchemeLabel();
  }
}

}  // namespace
}  // namespace ndc::metrics
