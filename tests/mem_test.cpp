// Tests for the memory substrate: set-associative LRU cache behaviour,
// NUCA/channel address mapping, DRAM row-buffer timing, and FR-FCFS
// memory-controller scheduling.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/memctrl.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace ndc::mem {
namespace {

CacheParams TinyCache() {
  CacheParams p;
  p.size_bytes = 512;  // 8 lines
  p.line_bytes = 64;
  p.ways = 2;          // 4 sets
  p.access_latency = 2;
  return p;
}

TEST(Cache, MissThenHit) {
  Cache c(TinyCache());
  EXPECT_FALSE(c.Access(0x100));
  c.Fill(0x100);
  EXPECT_TRUE(c.Access(0x100));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, SameLineDifferentOffsetsHit) {
  Cache c(TinyCache());
  c.Fill(0x100);
  EXPECT_TRUE(c.Access(0x100 + 63));
  EXPECT_FALSE(c.Access(0x100 + 64));
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  Cache c(TinyCache());  // 4 sets, 2 ways; set stride = 64 * 4 = 256
  // Three lines mapping to set 0.
  c.Fill(0x000);
  c.Fill(0x100);
  c.Access(0x000);             // make 0x000 MRU
  auto evicted = c.Fill(0x200);  // must evict 0x100
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 0x100u);
  EXPECT_TRUE(c.Contains(0x000));
  EXPECT_FALSE(c.Contains(0x100));
  EXPECT_TRUE(c.Contains(0x200));
}

TEST(Cache, ContainsDoesNotPerturbLru) {
  Cache c(TinyCache());
  c.Fill(0x000);
  c.Fill(0x100);
  // Probing 0x000 must NOT refresh it: 0x000 stays LRU and gets evicted.
  EXPECT_TRUE(c.Contains(0x000));
  auto evicted = c.Fill(0x200);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, 0x000u);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(TinyCache());
  c.Fill(0x40);
  c.Invalidate(0x40);
  EXPECT_FALSE(c.Contains(0x40));
}

TEST(Cache, FillIsIdempotentForPresentLines) {
  Cache c(TinyCache());
  c.Fill(0x000);
  EXPECT_FALSE(c.Fill(0x000).has_value());
}

TEST(Cache, ClearEmptiesEverything) {
  Cache c(TinyCache());
  c.Fill(0x000);
  c.Fill(0x40);
  c.Clear();
  EXPECT_FALSE(c.Contains(0x000));
  EXPECT_FALSE(c.Contains(0x40));
}

// Property: a cache with N lines holds exactly the last N distinct lines
// under a fully-associative-like single-set configuration.
TEST(Cache, FullyAssociativeLruProperty) {
  CacheParams p;
  p.size_bytes = 4 * 64;
  p.line_bytes = 64;
  p.ways = 4;  // one set
  Cache c(p);
  for (sim::Addr a = 0; a < 10; ++a) c.Fill(a * 64);
  for (sim::Addr a = 0; a < 6; ++a) EXPECT_FALSE(c.Contains(a * 64)) << a;
  for (sim::Addr a = 6; a < 10; ++a) EXPECT_TRUE(c.Contains(a * 64)) << a;
}

TEST(Cache, Table1Geometries) {
  // L1: 32KB, 64B lines, 2 ways -> 256 sets. L2: 512KB, 256B, 64 ways -> 32 sets.
  Cache l1(CacheParams{32 * 1024, 64, 2, 2});
  EXPECT_EQ(l1.num_sets(), 256u);
  Cache l2(CacheParams{512 * 1024, 256, 64, 20});
  EXPECT_EQ(l2.num_sets(), 32u);
}

TEST(AddressMap, L2HomeIsLineInterleaved) {
  AddressMap a;  // 256B lines, 25 nodes
  EXPECT_EQ(a.HomeBank(0), 0);
  EXPECT_EQ(a.HomeBank(256), 1);
  EXPECT_EQ(a.HomeBank(256 * 25), 0);
  EXPECT_EQ(a.HomeBank(256 * 26 + 17), 1);
}

TEST(AddressMap, McIsPageInterleaved) {
  AddressMap a;
  EXPECT_EQ(a.Mc(0), 0);
  EXPECT_EQ(a.Mc(4096), 1);
  EXPECT_EQ(a.Mc(4096 * 4), 0);
}

TEST(AddressMap, DramBankAndRowDisjointBits) {
  AddressMap a;
  // Consecutive 16KB chunks (page * num_mcs) advance the bank.
  EXPECT_EQ(a.DramBank(0), 0);
  EXPECT_EQ(a.DramBank(16384), 1);
  EXPECT_EQ(a.DramRow(0), 0u);
  EXPECT_EQ(a.DramRow(16384ull * 16), 1u);
}

TEST(DramBank, RowHitIsFasterThanMiss) {
  DramParams p;
  DramBank b(p);
  sim::Cycle t1 = b.Access(0, 5);     // row miss
  sim::Cycle t2 = b.Access(t1, 5);    // row hit
  EXPECT_EQ(t1, p.row_miss_latency);
  EXPECT_EQ(t2 - (t1 + p.data_beat), p.row_hit_latency);
  EXPECT_EQ(b.row_hits(), 1u);
  EXPECT_EQ(b.row_misses(), 1u);
}

TEST(DramBank, SerializesRequests) {
  DramParams p;
  DramBank b(p);
  sim::Cycle t1 = b.Access(0, 1);
  sim::Cycle t2 = b.Access(0, 2);  // issued at same time, must queue
  EXPECT_GT(t2, t1);
}

struct McFixture : public ::testing::Test {
  AddressMap amap;
  DramParams dram;
  sim::EventQueue eq;
  std::unique_ptr<MemCtrl> mc;
  void SetUp() override { mc = std::make_unique<MemCtrl>(0, amap, dram, eq); }
};

TEST_F(McFixture, ReadCompletes) {
  sim::Cycle done = 0;
  mc->EnqueueRead(1, 0x1000, [&](std::uint64_t, sim::Cycle t) { done = t; });
  eq.RunUntilEmpty();
  EXPECT_EQ(done, dram.row_miss_latency);
}

TEST_F(McFixture, FrFcfsPrefersRowHits) {
  // Three requests to one bank: A (row 0), B (row 7), C (row 0).
  // After A opens row 0, FR-FCFS must service C (row hit) before B.
  std::vector<std::uint64_t> order;
  auto cb = [&](std::uint64_t tag, sim::Cycle) { order.push_back(tag); };
  // Bank stride: bank advances every 16KB; same bank = same low chunk.
  // amap.DramBank(addr) = (addr/16384) % 16; row = chunk / 16.
  sim::Addr row0 = 0;                        // bank 0, row 0
  sim::Addr row7 = 16384ull * 16 * 7;        // bank 0, row 7
  sim::Addr row0b = 64;                      // bank 0, row 0
  mc->EnqueueRead(1, row0, cb);
  mc->EnqueueRead(2, row7, cb);
  mc->EnqueueRead(3, row0b, cb);
  eq.RunUntilEmpty();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);  // row hit jumps ahead
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(mc->stats().Get("mc.row_hits"), 1u);
}

TEST_F(McFixture, IndependentBanksProceedInParallel) {
  sim::Cycle done_a = 0, done_b = 0;
  mc->EnqueueRead(1, 0, [&](std::uint64_t, sim::Cycle t) { done_a = t; });
  mc->EnqueueRead(2, 16384, [&](std::uint64_t, sim::Cycle t) { done_b = t; });  // bank 1
  eq.RunUntilEmpty();
  EXPECT_EQ(done_a, dram.row_miss_latency);
  EXPECT_EQ(done_b, dram.row_miss_latency);  // no serialization across banks
}

TEST_F(McFixture, PendingAddrVisibleInQueue) {
  mc->EnqueueRead(1, 0x42000, [](std::uint64_t, sim::Cycle) {});
  EXPECT_TRUE(mc->HasPendingAddr(0x42000));
  eq.RunUntilEmpty();
  EXPECT_FALSE(mc->HasPendingAddr(0x42000));
}

TEST_F(McFixture, QueuedWriteIsNotAPendingRead) {
  // Regression: HasPendingAddr() used to report queued *writes* too, so the
  // NDC engine could offload a read expecting to "meet" data in the memory
  // queue and find a write there instead. Stall bank 0 with a read, then
  // park a write behind it.
  mc->EnqueueRead(1, 0, [](std::uint64_t, sim::Cycle) {});
  mc->EnqueueWrite(64);  // same bank (0); sits in the queue behind the read
  EXPECT_TRUE(mc->HasPendingAddr(0));
  EXPECT_FALSE(mc->HasPendingAddr(64));  // pre-fix: true
  eq.RunUntilEmpty();
  EXPECT_FALSE(mc->HasPendingAddr(0));
  EXPECT_FALSE(mc->HasPendingAddr(64));
}

TEST_F(McFixture, InServiceWriteIsNotAPendingRead) {
  mc->EnqueueWrite(0x100);  // bank idle: issues immediately
  EXPECT_FALSE(mc->HasPendingAddr(0x100));
  eq.RunUntilEmpty();
  EXPECT_FALSE(mc->HasPendingAddr(0x100));
}

TEST_F(McFixture, WriteAppearsInEnqueueHookWithSentinelTag) {
  // Regression: EnqueueWrite carried the default tag 0 internally, aliasing
  // untraced reads (which legitimately use tag 0), and never reached the
  // enqueue hook. Writes now carry kWriteSentinelTag end to end.
  std::vector<std::uint64_t> tags;
  mc->set_enqueue_hook(
      [&](std::uint64_t tag, sim::Addr, sim::Cycle) { tags.push_back(tag); });
  mc->EnqueueRead(0, 0, [](std::uint64_t, sim::Cycle) {});  // untraced read
  mc->EnqueueWrite(64);
  ASSERT_EQ(tags.size(), 2u);
  EXPECT_EQ(tags[0], 0u);
  EXPECT_EQ(tags[1], MemCtrl::kWriteSentinelTag);
  EXPECT_NE(tags[1], tags[0]);  // a write never aliases an untraced read
  eq.RunUntilEmpty();
}

#ifndef NDEBUG
TEST(McDeathTest, ReadWithWriteSentinelTagAssertsInDebugBuilds) {
  AddressMap amap;
  DramParams dram;
  sim::EventQueue eq;
  MemCtrl mc(0, amap, dram, eq);
  EXPECT_DEATH(
      mc.EnqueueRead(MemCtrl::kWriteSentinelTag, 0, [](std::uint64_t, sim::Cycle) {}),
      "reserved for writes");
}
#endif

TEST_F(McFixture, PendingAddrCountsDuplicateReads) {
  // Two reads of one address: the address stays pending until the *last*
  // read completes (the index counts, it does not just flag).
  std::vector<bool> pending_at_done;
  auto cb = [&](std::uint64_t, sim::Cycle) {
    pending_at_done.push_back(mc->HasPendingAddr(0));
  };
  mc->EnqueueRead(1, 0, cb);
  mc->EnqueueRead(2, 0, cb);
  EXPECT_TRUE(mc->HasPendingAddr(0));
  eq.RunUntilEmpty();
  ASSERT_EQ(pending_at_done.size(), 2u);
  EXPECT_TRUE(pending_at_done[0]);   // duplicate still outstanding
  EXPECT_FALSE(pending_at_done[1]);
}

TEST_F(McFixture, FrFcfsOldestRowHitWinsAmongSeveralHits) {
  std::vector<std::uint64_t> order;
  auto cb = [&](std::uint64_t tag, sim::Cycle) { order.push_back(tag); };
  sim::Addr row0 = 0, row7 = 16384ull * 16 * 7;  // both bank 0
  mc->EnqueueRead(1, row0, cb);
  mc->EnqueueRead(2, row7, cb);
  mc->EnqueueRead(3, row0 + 64, cb);
  mc->EnqueueRead(4, row0 + 128, cb);
  eq.RunUntilEmpty();
  // After 1 opens row 0: hits 3 then 4 (oldest hit first), then miss 2.
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 3, 4, 2}));
}

TEST_F(McFixture, FrFcfsFallsBackToFifoWithoutRowHits) {
  std::vector<std::uint64_t> order;
  auto cb = [&](std::uint64_t tag, sim::Cycle) { order.push_back(tag); };
  for (std::uint64_t t = 1; t <= 4; ++t) {
    // Every request targets a different row of bank 0: no hit is possible,
    // so FR-FCFS must degrade to exact FIFO (no starvation reordering).
    mc->EnqueueRead(t, static_cast<sim::Addr>(t) * 16384ull * 16, cb);
  }
  eq.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

// Replays a completed request stream against the FR-FCFS definition: every
// serviced request must have been the oldest row hit on the bank's open row,
// or the oldest outstanding request when no hit existed.
struct FrFcfsReplay {
  struct Req {
    std::uint64_t tag;
    std::uint64_t row;
  };
  std::vector<Req> pending;
  bool have_open = false;
  std::uint64_t open_row = 0;

  void Check(const std::vector<std::uint64_t>& completed) {
    for (std::uint64_t tag : completed) {
      std::size_t expect = 0;
      bool hit = false;
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (have_open && pending[i].row == open_row) {
          expect = i;
          hit = true;
          break;
        }
      }
      ASSERT_LT(expect, pending.size());
      EXPECT_EQ(tag, pending[expect].tag)
          << (hit ? "oldest row hit must win" : "oldest overall must win");
      if (tag != pending[expect].tag) return;
      open_row = pending[expect].row;
      have_open = true;
      pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(expect));
    }
    EXPECT_TRUE(pending.empty());
  }
};

TEST_F(McFixture, FrFcfsReplayPropertySingleBankRandomized) {
  sim::Rng rng(2024);
  FrFcfsReplay replay;
  std::vector<std::uint64_t> completed;
  auto cb = [&](std::uint64_t tag, sim::Cycle) { completed.push_back(tag); };
  for (std::uint64_t t = 1; t <= 60; ++t) {
    std::uint64_t row = rng.NextBelow(4);
    sim::Addr addr = static_cast<sim::Addr>(row) * 16384ull * 16 + t * 64;  // bank 0
    replay.pending.push_back({t, row});
    mc->EnqueueRead(t, addr, cb);
  }
  eq.RunUntilEmpty();
  ASSERT_EQ(completed.size(), 60u);
  replay.Check(completed);
}

TEST_F(McFixture, FrFcfsReplayPropertyMultiBankRandomized) {
  sim::Rng rng(77);
  constexpr std::uint64_t kBanks = 4;
  FrFcfsReplay replay[kBanks];
  std::vector<std::uint64_t> completed[kBanks];
  for (std::uint64_t t = 1; t <= 120; ++t) {
    std::uint64_t bank = rng.NextBelow(kBanks);
    std::uint64_t row = rng.NextBelow(3);
    // bank stride 16 KB, row stride 16 banks' worth; offset stays in-page.
    sim::Addr addr = static_cast<sim::Addr>(row) * 16384ull * 16 + bank * 16384ull +
                     (t % 64) * 64;
    replay[bank].pending.push_back({t, row});
    mc->EnqueueRead(t, addr, [&completed, bank](std::uint64_t tag, sim::Cycle) {
      completed[bank].push_back(tag);
    });
  }
  eq.RunUntilEmpty();
  for (std::uint64_t b = 0; b < kBanks; ++b) {
    ASSERT_EQ(completed[b].size(), replay[b].pending.size()) << "bank " << b;
    replay[b].Check(completed[b]);
  }
}

TEST_F(McFixture, HookFiresOnEnqueueAndReady) {
  int enq = 0, ready = 0;
  mc->set_enqueue_hook([&](std::uint64_t, sim::Addr, sim::Cycle) { ++enq; });
  mc->set_ready_hook([&](std::uint64_t, sim::Addr, sim::Cycle) { ++ready; });
  mc->EnqueueRead(9, 128, [](std::uint64_t, sim::Cycle) {});
  eq.RunUntilEmpty();
  EXPECT_EQ(enq, 1);
  EXPECT_EQ(ready, 1);
}

}  // namespace
}  // namespace ndc::mem
