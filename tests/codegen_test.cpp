// Tests for code generation: lowering loop nests to per-core traces,
// dependence wiring, NDC candidate marking, pre-compute emission with the
// per-iteration CME gate, access-movement leads, schedule transforms, and
// block distribution.

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "ir/program.hpp"

namespace ndc::compiler {
namespace {

using arch::Instr;
using ir::AffineAccess;
using ir::Int;
using ir::IntMat;
using ir::IntVec;
using ir::LoopNest;
using ir::Operand;
using ir::Program;
using ir::Stmt;

Operand Aff(int array, IntVec coefs, Int off) {
  AffineAccess a;
  a.array = array;
  a.F = IntMat(1, static_cast<int>(coefs.size()));
  for (int c = 0; c < a.F.cols(); ++c) a.F.at(0, c) = coefs[static_cast<std::size_t>(c)];
  a.f = {off};
  return Operand::Affine(a);
}

// z(i,j) = x(...) + y(...) over an n0 x n1 nest; strides of 8 elements keep
// every access on a fresh line (no spatial reuse, no CME gating surprises).
Program StreamProgram(Int n0, Int n1) {
  Program p;
  int x = p.AddArray("x", {n0 * n1 * 8});
  int y = p.AddArray("y", {n0 * n1 * 8});
  int z = p.AddArray("z", {n0 * n1});
  LoopNest nest;
  nest.loops = {{0, n0 - 1, -1, 0, -1, 0}, {0, n1 - 1, -1, 0, -1, 0}};
  Stmt s;
  s.id = p.NextStmtId();
  s.lhs = Aff(z, {n1, 1}, 0);
  s.op = arch::Op::kAdd;
  s.rhs0 = Aff(x, {n1 * 8, 8}, 0);
  s.rhs1 = Aff(y, {n1 * 8, 8}, 0);
  nest.body.push_back(s);
  p.nests.push_back(std::move(nest));
  return p;
}

int CountKind(const arch::Trace& t, Instr::Kind k) {
  int n = 0;
  for (const Instr& i : t) n += i.kind == k;
  return n;
}

TEST(Codegen, EmitsLoadsComputeStorePerIteration) {
  Program p = StreamProgram(4, 4);
  CodegenResult r = Lower(p, 1);
  const arch::Trace& t = r.traces[0];
  EXPECT_EQ(CountKind(t, Instr::Kind::kLoad), 32);
  EXPECT_EQ(CountKind(t, Instr::Kind::kCompute), 16);
  EXPECT_EQ(CountKind(t, Instr::Kind::kStore), 16);
  EXPECT_EQ(r.total_instrs, t.size());
}

TEST(Codegen, ComputeDependsOnItsLoads) {
  Program p = StreamProgram(2, 2);
  arch::Trace t = Lower(p, 1).traces[0];
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Instr::Kind::kCompute) continue;
    ASSERT_GE(t[i].dep0, 0);
    ASSERT_GE(t[i].dep1, 0);
    EXPECT_EQ(t[static_cast<std::size_t>(t[i].dep0)].kind, Instr::Kind::kLoad);
    EXPECT_EQ(t[static_cast<std::size_t>(t[i].dep1)].kind, Instr::Kind::kLoad);
    EXPECT_LT(static_cast<std::size_t>(t[i].dep0), i);
    EXPECT_TRUE(t[i].ndc_candidate);
  }
}

TEST(Codegen, StoreDependsOnCompute) {
  Program p = StreamProgram(2, 2);
  arch::Trace t = Lower(p, 1).traces[0];
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Instr::Kind::kStore) continue;
    ASSERT_GE(t[i].dep0, 0);
    Instr::Kind k = t[static_cast<std::size_t>(t[i].dep0)].kind;
    EXPECT_TRUE(k == Instr::Kind::kCompute || k == Instr::Kind::kPreCompute);
  }
}

TEST(Codegen, BlockDistributionAcrossCores) {
  Program p = StreamProgram(25, 4);
  CodegenResult r = Lower(p, 25);
  int active = 0;
  for (const arch::Trace& t : r.traces) active += !t.empty();
  EXPECT_EQ(active, 25);
  // Each core receives one outer iteration: identical instruction counts.
  for (const arch::Trace& t : r.traces) EXPECT_EQ(t.size(), r.traces[0].size());
}

TEST(Codegen, CoreForIterationIsBalancedAndMonotonic) {
  Program p = StreamProgram(100, 1);
  const LoopNest& nest = p.nests[0];
  int prev = 0;
  std::vector<int> count(25, 0);
  for (Int i = 0; i < 100; ++i) {
    int c = CoreForIteration(nest, {i, 0}, 25);
    EXPECT_GE(c, prev);
    prev = c;
    ++count[static_cast<std::size_t>(c)];
  }
  for (int c : count) EXPECT_EQ(c, 4);
}

TEST(Codegen, PreComputeEmittedForOffloadedChains) {
  Program p = StreamProgram(4, 8);
  p.nests[0].body[0].ndc.offload = true;
  p.nests[0].body[0].ndc.planned = arch::Loc::kLinkBuffer;
  p.nests[0].body[0].ndc.timeout = 42;
  arch::Trace t = Lower(p, 1).traces[0];
  int pre = CountKind(t, Instr::Kind::kPreCompute);
  // 8-element strides never hit L1, so the per-iteration CME gate lets every
  // instance through.
  EXPECT_EQ(pre, 32);
  for (const Instr& in : t) {
    if (in.kind != Instr::Kind::kPreCompute) continue;
    EXPECT_EQ(in.planned_loc, arch::Loc::kLinkBuffer);
    EXPECT_EQ(in.timeout, 42u);
  }
}

TEST(Codegen, CmeGateSuppressesPreComputeOnDenseStrides) {
  // Dense strides have spatial reuse: most instances must stay conventional.
  Program p;
  int x = p.AddArray("x", {4096});
  int y = p.AddArray("y", {4096});
  LoopNest nest;
  nest.loops = {{0, 7, -1, 0, -1, 0}, {0, 63, -1, 0, -1, 0}};
  Stmt s;
  s.id = p.NextStmtId();
  s.rhs0 = Aff(x, {64, 1}, 0);
  s.rhs1 = Aff(y, {64, 1}, 0);
  s.ndc.offload = true;
  nest.body.push_back(s);
  p.nests.push_back(std::move(nest));
  arch::Trace t = Lower(p, 1).traces[0];
  int pre = CountKind(t, Instr::Kind::kPreCompute);
  int comp = CountKind(t, Instr::Kind::kCompute);
  EXPECT_LT(pre, comp);  // boundary line-crossings only
  EXPECT_GT(pre, 0);
}

TEST(Codegen, LeadHoistsOperandLoad) {
  Program p = StreamProgram(1, 32);
  p.nests[0].body[0].ndc.offload = true;
  p.nests[0].body[0].ndc.lead1 = 4;  // y loaded 4 iterations early
  arch::Trace t = Lower(p, 1).traces[0];
  // For later iterations the hoisted y-load sits ~4 iterations before its
  // pre-compute, while the x-load stays adjacent: the trace distance to
  // dep1 must exceed the distance to dep0 substantially.
  int checked = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Instr::Kind::kPreCompute) continue;
    ++checked;
    if (checked <= 8) continue;  // skip the clamped prologue iterations
    auto dist0 = static_cast<std::int64_t>(i) - t[i].dep0;
    auto dist1 = static_cast<std::int64_t>(i) - t[i].dep1;
    EXPECT_GT(dist1, dist0 + 6) << "pre-compute " << checked;
  }
  EXPECT_GT(checked, 8);
}

TEST(Codegen, NegativeLeadDelaysComputation) {
  Program p = StreamProgram(1, 32);
  p.nests[0].body[0].ndc.offload = true;
  p.nests[0].body[0].ndc.lead1 = -4;  // y loaded 4 iterations late
  arch::Trace t = Lower(p, 1).traces[0];
  // Every pre-compute still depends on both of its loads.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Instr::Kind::kPreCompute) continue;
    EXPECT_LT(static_cast<std::size_t>(t[i].dep0), i);
    EXPECT_LT(static_cast<std::size_t>(t[i].dep1), i);
  }
}

TEST(Codegen, TransformReordersIterations) {
  Program p = StreamProgram(4, 4);
  // Interchange: traversal becomes column-major.
  p.nests[0].transform = IntMat(2, 2, {0, 1, 1, 0});
  arch::Trace t = Lower(p, 1).traces[0];
  // First two loads belong to iteration (0,0); the next x-load should be
  // x(1,0) = offset (1*4+0)*8 elements *8B under interchange.
  std::vector<sim::Addr> x_addrs;
  sim::Addr x_base = p.array(0).base;
  sim::Addr x_end = x_base + 4 * 4 * 8 * 8;
  for (const Instr& in : t) {
    if (in.kind == Instr::Kind::kLoad && in.addr >= x_base && in.addr < x_end) {
      x_addrs.push_back(in.addr - x_base);
    }
  }
  ASSERT_GE(x_addrs.size(), 2u);
  EXPECT_EQ(x_addrs[0], 0u);
  EXPECT_EQ(x_addrs[1], 4u * 8 * 8);  // iteration (1,0), not (0,1)
}

TEST(Codegen, IndirectOperandEmitsIndexLoadFirst) {
  Program p;
  int idx = p.AddArray("idx", {16});
  int tgt = p.AddArray("T", {64});
  int q = p.AddArray("q", {16 * 8});
  p.index_data[idx] = std::vector<Int>(16, 3);
  LoopNest nest;
  nest.loops = {{0, 15, -1, 0, -1, 0}};
  Stmt s;
  s.id = p.NextStmtId();
  AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 1, {1});
  ia.f = {0};
  s.rhs0 = Operand::Indirect(ia, tgt);
  s.rhs1 = Aff(q, {8}, 0);
  nest.body.push_back(s);
  p.nests.push_back(std::move(nest));
  arch::Trace t = Lower(p, 1).traces[0];
  // Data loads through indirection depend on their index load.
  int dependent_loads = 0;
  for (const Instr& in : t) {
    if (in.kind == Instr::Kind::kLoad && in.dep0 >= 0) {
      EXPECT_EQ(t[static_cast<std::size_t>(in.dep0)].kind, Instr::Kind::kLoad);
      ++dependent_loads;
    }
  }
  EXPECT_EQ(dependent_loads, 16);
}

TEST(Codegen, MultipleNestsAppendSequentially) {
  Program p = StreamProgram(2, 2);
  Program p2 = StreamProgram(2, 2);
  p.nests.push_back(p2.nests[0]);
  arch::Trace t = Lower(p, 1).traces[0];
  EXPECT_EQ(CountKind(t, Instr::Kind::kCompute), 8);
}

TEST(Codegen, DeterministicOutput) {
  Program a = StreamProgram(6, 6);
  Program b = StreamProgram(6, 6);
  CodegenResult ra = Lower(a, 25);
  CodegenResult rb = Lower(b, 25);
  ASSERT_EQ(ra.traces.size(), rb.traces.size());
  for (std::size_t c = 0; c < ra.traces.size(); ++c) {
    ASSERT_EQ(ra.traces[c].size(), rb.traces[c].size());
    for (std::size_t i = 0; i < ra.traces[c].size(); ++i) {
      EXPECT_EQ(ra.traces[c][i].addr, rb.traces[c][i].addr);
      EXPECT_EQ(ra.traces[c][i].kind, rb.traces[c][i].kind);
    }
  }
}

}  // namespace
}  // namespace ndc::compiler
