// Deeper machine-level NDC tests: meeting semantics at each location kind,
// service-table and offload-table capacity, held-packet buffer pressure,
// route overrides, squash semantics, and observation residency tracking.

#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "arch/trace.hpp"
#include "ndc/machine.hpp"
#include "ndc/policy.hpp"

namespace ndc::runtime {
namespace {

using arch::ArchConfig;
using arch::Instr;
using arch::Loc;
using arch::MakeCompute;
using arch::MakeLoad;
using arch::MakePreCompute;
using arch::Op;
using arch::Trace;

std::vector<Trace> Program1(sim::NodeId core, Trace t, int cores = 25) {
  std::vector<Trace> p(static_cast<std::size_t>(cores));
  p[static_cast<std::size_t>(core)] = std::move(t);
  return p;
}

// Addresses with the same L2 home bank (node 0).
constexpr sim::Addr kA = 0;
constexpr sim::Addr kB = 256ull * 25;

// Addresses in the same 4 KB page (same MC, same DRAM bank) but distinct
// L2 lines and different home banks.
constexpr sim::Addr kPageA = 0x1000;          // page 1 -> MC 1
constexpr sim::Addr kPageB = 0x1000 + 512;    // same page, +2 L2 lines

TEST(MachineNdc, MemorySidePlannedPairMeetsAtMc) {
  ArchConfig cfg;
  Machine m(cfg);
  Trace t{MakeLoad(kPageA), MakeLoad(kPageB),
          MakePreCompute(Op::kAdd, 0, 1, Loc::kMemCtrl, 4000)};
  m.LoadProgram(Program1(12, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.ndc_success, 1u);
  EXPECT_EQ(r.ndc_at_loc[static_cast<std::size_t>(Loc::kMemCtrl)], 1u);
  // The squashed responses never filled the caches.
  EXPECT_FALSE(m.l1(12).Contains(kPageA));
  EXPECT_FALSE(m.l2(m.amap().HomeBank(kPageA)).Contains(kPageA));
}

TEST(MachineNdc, MemoryBankPlannedPairMeetsAtBank) {
  ArchConfig cfg;
  Machine m(cfg);
  ASSERT_EQ(m.amap().DramBank(kPageA), m.amap().DramBank(kPageB));
  Trace t{MakeLoad(kPageA), MakeLoad(kPageB),
          MakePreCompute(Op::kAdd, 0, 1, Loc::kMemBank, 4000)};
  m.LoadProgram(Program1(12, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.ndc_at_loc[static_cast<std::size_t>(Loc::kMemBank)], 1u);
}

TEST(MachineNdc, LinkPlannedPairMeetsInNetwork) {
  ArchConfig cfg;
  Machine m(cfg);
  // Different home banks whose responses converge on core 12.
  sim::Addr a = 256ull * 2;   // home 2
  sim::Addr b = 256ull * 3;   // home 3
  Trace t{MakeLoad(a), MakeLoad(b), MakePreCompute(Op::kAdd, 0, 1, Loc::kLinkBuffer, 4000)};
  m.LoadProgram(Program1(12, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.ndc_success + r.fallbacks, 1u);
  if (r.ndc_success == 1) {
    EXPECT_EQ(r.ndc_at_loc[static_cast<std::size_t>(Loc::kLinkBuffer)], 1u);
  }
}

TEST(MachineNdc, CacheMeetLeavesLinesInL2) {
  ArchConfig cfg;
  Machine m(cfg);
  Trace t{MakeLoad(kA), MakeLoad(kB), MakePreCompute(Op::kAdd, 0, 1, Loc::kCacheCtrl, 4000)};
  m.LoadProgram(Program1(6, std::move(t)));
  RunResult r = m.Run();
  ASSERT_EQ(r.ndc_success, 1u);
  // An L2-bank meeting consumes the responses but the lines stay cached.
  EXPECT_TRUE(m.l2(0).Contains(kA));
  EXPECT_TRUE(m.l2(0).Contains(kB));
  EXPECT_FALSE(m.l1(6).Contains(kA));
}

TEST(MachineNdc, OffloadTableCapacityBoundsConcurrentOffloads) {
  ArchConfig cfg;
  cfg.offload_table_entries = 2;
  AlwaysWaitPolicy policy(cfg);
  MachineOptions opts;
  opts.policy = &policy;
  Machine m(cfg, opts);
  Trace t;
  for (int i = 0; i < 12; ++i) {
    int l0 = static_cast<int>(t.size());
    t.push_back(MakeLoad(kA + static_cast<sim::Addr>(i) * 64 * 25 * 8));
    t.push_back(MakeLoad(kB + static_cast<sim::Addr>(i) * 64 * 25 * 8));
    t.push_back(MakeCompute(Op::kAdd, l0, l0 + 1, true));
  }
  m.LoadProgram(Program1(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_GT(r.stats.Get("ndc.offload_table_full"), 0u);
  EXPECT_LT(r.offloads, r.candidates);
}

TEST(MachineNdc, ServiceTableFullAborts) {
  ArchConfig cfg;
  cfg.service_table_entries = 0;  // no NDC ALU slots anywhere
  Machine m(cfg);
  Trace t{MakeLoad(kA), MakeLoad(kB), MakePreCompute(Op::kAdd, 0, 1, Loc::kCacheCtrl, 4000)};
  m.LoadProgram(Program1(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.ndc_success, 0u);
  EXPECT_GT(r.stats.Get("ndc.service_table_full"), 0u);
  EXPECT_EQ(r.fallbacks, 1u);
}

TEST(MachineNdc, ObserveRecordsL2Residency) {
  ArchConfig cfg;
  MachineOptions opts;
  opts.observe = true;
  Machine m(cfg, opts);
  Trace t{MakeLoad(kA), MakeLoad(kB), MakeCompute(Op::kAdd, 0, 1, true)};
  m.LoadProgram(Program1(6, std::move(t)));
  RunResult r = m.Run();
  const InstanceRecord* rec = r.records->Find(6, 2);
  ASSERT_NE(rec, nullptr);
  const LocObs& o = rec->at(Loc::kCacheCtrl);
  EXPECT_TRUE(o.feasible);
  EXPECT_TRUE(o.meet_ok);  // back-to-back loads: first line still resident
  EXPECT_TRUE(o.BothArrived());
}

TEST(MachineNdc, RegisterOperandPairsWithSameAddress) {
  // Both operands alias the same address (x + x): still a valid site.
  ArchConfig cfg;
  Machine m(cfg);
  Trace t{MakeLoad(kA), MakeLoad(kA), MakePreCompute(Op::kAdd, 0, 1, Loc::kCacheCtrl, 4000)};
  m.LoadProgram(Program1(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u);
  EXPECT_EQ(r.candidates, 1u);
}

TEST(MachineNdc, HonorPreComputeOffDisablesOffloads) {
  ArchConfig cfg;
  MachineOptions opts;
  opts.honor_precompute = false;
  Machine m(cfg, opts);
  Trace t{MakeLoad(kA), MakeLoad(kB), MakePreCompute(Op::kAdd, 0, 1, Loc::kCacheCtrl, 4000)};
  m.LoadProgram(Program1(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.offloads, 0u);
  EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u);  // still completes
  // Conventional execution filled the caches.
  EXPECT_TRUE(m.l1(6).Contains(kA));
}

TEST(MachineNdc, HeldPacketDelaysPassingTraffic) {
  // Two cores: core 6 offloads with a long timeout so one operand holds in
  // a link buffer; core 7 streams packets across the same region and must
  // observe buffer-pressure delay vs an uncontended run.
  auto run = [](bool with_hold) {
    ArchConfig cfg;
    Machine m(cfg);
    std::vector<Trace> p(25);
    if (with_hold) {
      // Home banks 1 and 2 -> responses converge toward core 0 and hold.
      Trace t;
      t.push_back(MakeLoad(256ull * 1));
      t.push_back(MakeCompute(Op::kAdd, 0, -1, false));
      for (int i = 2; i < 420; ++i) t.push_back(MakeCompute(Op::kAdd, i - 1, -1, false));
      t.push_back(MakeLoad(256ull * 2, 419));  // 420: delayed partner
      t.push_back(MakePreCompute(Op::kAdd, 0, 420, Loc::kLinkBuffer, 100000));
      p[0] = std::move(t);
    }
    Trace t7;
    for (int i = 0; i < 30; ++i) {
      t7.push_back(MakeLoad(256ull * 1 + 8192ull * 25 * static_cast<sim::Addr>(i + 1)));
    }
    p[1] = std::move(t7);
    Machine mm(cfg);
    mm.LoadProgram(std::move(p));
    RunResult r = mm.Run();
    return r;
  };
  RunResult quiet = run(false);
  RunResult held = run(true);
  EXPECT_GE(held.stats.Get("noc.hol_blocked") + held.stats.Get("noc.holds"),
            quiet.stats.Get("noc.hol_blocked"));
}

TEST(MachineNdc, MarkovPolicyRunsEndToEnd) {
  ArchConfig cfg;
  MarkovWaitPolicy policy(cfg);
  MachineOptions opts;
  opts.policy = &policy;
  Machine m(cfg, opts);
  Trace t;
  for (int i = 0; i < 10; ++i) {
    int l0 = static_cast<int>(t.size());
    arch::Instr a = MakeLoad(kA + static_cast<sim::Addr>(i) * 64 * 25 * 8);
    arch::Instr b = MakeLoad(kB + static_cast<sim::Addr>(i) * 64 * 25 * 8);
    a.pc = b.pc = 7;
    t.push_back(a);
    t.push_back(b);
    arch::Instr c = MakeCompute(Op::kAdd, l0, l0 + 1, true, /*pc=*/7);
    t.push_back(c);
  }
  m.LoadProgram(Program1(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u);
  EXPECT_GT(r.offloads, 0u);
}

TEST(MachineNdc, ControlRegisterZeroMeansConventional) {
  ArchConfig cfg;
  cfg.control_register = 0;
  AlwaysWaitPolicy policy(cfg);
  MachineOptions opts;
  opts.policy = &policy;
  Machine m(cfg, opts);
  Trace t{MakeLoad(kA), MakeLoad(kB), MakeCompute(Op::kAdd, 0, 1, true)};
  m.LoadProgram(Program1(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.offloads, 0u);
  EXPECT_TRUE(m.l1(6).Contains(kA));
}

}  // namespace
}  // namespace ndc::runtime
