// Tests for the synchronization subsystem: engine-level semantics (ticket
// locks, barriers, remote atomics, post/wait), end-to-end execution of the
// sync-lowered sharded scenarios, cross-scheme value agreement, seed
// reproducibility, the sync-off bit-identity guarantee, and conservation
// under fault storms.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/config.hpp"
#include "fault/conservation.hpp"
#include "fault/schedule.hpp"
#include "metrics/experiment.hpp"
#include "sim/event_queue.hpp"
#include "sync/sync.hpp"
#include "workloads/workloads.hpp"

namespace ndc {
namespace {

// ----------------------------------------------------- engine semantics ---

sync::SyncRequest Req(sync::SyncOp op, sim::Addr addr, sim::NodeId core,
                      std::int64_t arg = 0, std::int64_t arg2 = 0) {
  sync::SyncRequest r;
  r.op = op;
  r.addr = addr;
  r.arg = arg;
  r.arg2 = arg2;
  r.core = core;
  r.issued_at = 0;
  r.grant = [](const sync::SyncRequest&, sim::Cycle) {};
  return r;
}

TEST(SyncEngine, TicketLockGrantsInFifoOrder) {
  sim::EventQueue eq;
  sync::SyncManager sm(eq, {});
  std::vector<int> order;
  for (int c = 0; c < 3; ++c) {
    sync::SyncRequest r = Req(sync::SyncOp::kLockAcquire, 64, c);
    r.grant = [&, c](const sync::SyncRequest&, sim::Cycle when) {
      order.push_back(c);
      sync::SyncRequest rel = Req(sync::SyncOp::kLockRelease, 64, c);
      rel.issued_at = when;
      sm.Enqueue(0, std::move(rel));
    };
    sm.Enqueue(0, std::move(r));
  }
  eq.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(sm.stats().lock_acquires, 3u);
  EXPECT_EQ(sm.stats().lock_releases, 3u);
}

TEST(SyncEngine, BarrierReleasesAllArrivalsTogether) {
  sim::EventQueue eq;
  sync::SyncManager sm(eq, {});
  std::vector<sim::Cycle> granted_at;
  for (int c = 0; c < 4; ++c) {
    sync::SyncRequest r = Req(sync::SyncOp::kBarrierArrive, 128, c, /*arg=*/4);
    r.grant = [&](const sync::SyncRequest&, sim::Cycle t) { granted_at.push_back(t); };
    sm.Enqueue(1, std::move(r));
  }
  eq.RunUntilEmpty();
  ASSERT_EQ(granted_at.size(), 4u);
  EXPECT_EQ(granted_at.front(), granted_at.back());  // released by one event
  EXPECT_EQ(sm.stats().barrier_arrivals, 4u);
  EXPECT_EQ(sm.stats().barrier_departures, 4u);
}

TEST(SyncEngine, BarrierIsReusableAcrossGenerations) {
  sim::EventQueue eq;
  sync::SyncManager sm(eq, {});
  int grants = 0;
  auto arrive = [&](int c) {
    sync::SyncRequest r = Req(sync::SyncOp::kBarrierArrive, 128, c, /*arg=*/2);
    r.grant = [&](const sync::SyncRequest&, sim::Cycle) { ++grants; };
    sm.Enqueue(0, std::move(r));
  };
  arrive(0);
  arrive(1);
  eq.RunUntilEmpty();
  EXPECT_EQ(grants, 2);
  arrive(0);  // second generation must start from an empty barrier
  arrive(1);
  eq.RunUntilEmpty();
  EXPECT_EQ(grants, 4);
  EXPECT_EQ(sm.stats().barrier_departures, 4u);
}

TEST(SyncEngine, AtomicAddAccumulatesAndCasCompares) {
  sim::EventQueue eq;
  sync::SyncManager sm(eq, {});
  sm.Enqueue(0, Req(sync::SyncOp::kAtomicAdd, 8, 0, 5));
  sm.Enqueue(0, Req(sync::SyncOp::kAtomicAdd, 8, 1, 7));
  sm.Enqueue(0, Req(sync::SyncOp::kAtomicCas, 16, 2, /*expected=*/0, /*desired=*/9));
  sm.Enqueue(0, Req(sync::SyncOp::kAtomicCas, 16, 3, /*expected=*/3, /*desired=*/1));
  eq.RunUntilEmpty();
  EXPECT_EQ(sm.values().at(8), 12);
  EXPECT_EQ(sm.values().at(16), 9);  // second CAS saw 9 != 3 and left it alone
  EXPECT_EQ(sm.stats().atomics_issued, 4u);
  EXPECT_EQ(sm.stats().atomics_completed, 4u);
}

TEST(SyncEngine, WaitParksUntilEnoughPosts) {
  sim::EventQueue eq;
  sync::SyncManager sm(eq, {});
  bool granted = false;
  sync::SyncRequest w = Req(sync::SyncOp::kWait, 32, 0, /*threshold=*/2);
  w.grant = [&](const sync::SyncRequest&, sim::Cycle) { granted = true; };
  sm.Enqueue(0, std::move(w));
  eq.RunUntilEmpty();
  EXPECT_FALSE(granted);
  sm.Enqueue(0, Req(sync::SyncOp::kPost, 32, 1));
  eq.RunUntilEmpty();
  EXPECT_FALSE(granted);
  sm.Enqueue(0, Req(sync::SyncOp::kPost, 32, 1));
  eq.RunUntilEmpty();
  EXPECT_TRUE(granted);
  EXPECT_EQ(sm.stats().posts, 2u);
  EXPECT_EQ(sm.stats().waits, 1u);
}

TEST(SyncEngine, ContendedEngineAccumulatesQueueWait) {
  sim::EventQueue eq;
  sync::SyncManager sm(eq, {});
  for (int c = 0; c < 8; ++c) sm.Enqueue(0, Req(sync::SyncOp::kAtomicAdd, 8, c, 1));
  eq.RunUntilEmpty();
  EXPECT_EQ(sm.stats().ops, 8u);
  // One engine services serially: whoever is not first waits in queue.
  EXPECT_GT(sm.stats().queue_wait_cycles, 0u);
  EXPECT_GT(sm.stats().stall_cycles, sm.stats().queue_wait_cycles);
}

// ------------------------------------------------- workload execution ---

// Mirrors ChunkFor(Scale::kTest) in workloads/sharded.cpp.
constexpr ir::Int kTestChunk = 24;

// The per-iteration payload the code generator feeds every lowered RMW;
// must mirror ReductionPayload() in compiler/codegen.cpp so the expected
// final value of the shared total is computable in closed form.
ir::Int ExpectedReduceTotal(ir::Int cores, ir::Int chunk) {
  ir::Int sum = 0;
  for (ir::Int c = 0; c < cores; ++c) {
    for (ir::Int i = 0; i < chunk; ++i) sum += 1 + ((c * 31 + i) % 13);
  }
  return sum;
}

TEST(SyncMachine, AtomicAndLockSchemesAgreeOnFinalValues) {
  arch::ArchConfig cfg;
  metrics::Experiment ea("shard.reduce.atomic", workloads::Scale::kTest, cfg);
  metrics::Experiment el("shard.reduce.lock", workloads::Scale::kTest, cfg);
  const runtime::RunResult& ra = ea.Baseline();
  const runtime::RunResult& rl = el.Baseline();
  const std::uint64_t iters =
      static_cast<std::uint64_t>(cfg.num_nodes()) * static_cast<std::uint64_t>(kTestChunk);

  ASSERT_EQ(ra.sync_values.size(), 1u);
  EXPECT_EQ(ra.sync_values, rl.sync_values);  // same cells, same final values
  EXPECT_EQ(ra.sync_values.begin()->second,
            ExpectedReduceTotal(cfg.num_nodes(), kTestChunk));

  EXPECT_EQ(ra.stats.Get("sync.atomics_issued"), iters);
  EXPECT_EQ(ra.stats.Get("sync.atomics_completed"), iters);
  EXPECT_EQ(ra.stats.Get("sync.lock_acquires"), 0u);
  EXPECT_EQ(rl.stats.Get("sync.lock_acquires"), iters);
  EXPECT_EQ(rl.stats.Get("sync.lock_releases"), iters);
  EXPECT_EQ(rl.stats.Get("sync.atomics_issued"), 0u);
  EXPECT_EQ(ra.stats.Get("sync.barrier_arrivals"),
            static_cast<std::uint64_t>(cfg.num_nodes()));
  EXPECT_EQ(rl.stats.Get("sync.barrier_arrivals"),
            static_cast<std::uint64_t>(cfg.num_nodes()));
}

TEST(SyncMachine, WavePipelineCompletesWithPostsAndWaits) {
  arch::ArchConfig cfg;
  metrics::Experiment ew("shard.stencil.wave", workloads::Scale::kTest, cfg);
  const runtime::RunResult& rw = ew.Baseline();
  const std::uint64_t cores = static_cast<std::uint64_t>(cfg.num_nodes());
  const std::uint64_t chunk = static_cast<std::uint64_t>(kTestChunk);

  // Every core posts once per iteration; every core but the first waits on
  // its left neighbour once per iteration.
  EXPECT_EQ(rw.stats.Get("sync.posts"), cores * chunk);
  EXPECT_EQ(rw.stats.Get("sync.waits"), (cores - 1) * chunk);
  EXPECT_EQ(rw.stats.Get("sync.barrier_arrivals"), cores);
  EXPECT_EQ(rw.stats.Get("sync.barrier_departures"), cores);
  EXPECT_TRUE(rw.sync_values.empty());  // post/wait carries no data values
  // Pipeline skew is real: downstream cores spend cycles blocked in waits.
  EXPECT_GT(rw.stats.Get("sync.stall_cycles"), 0u);
}

TEST(SyncMachine, SameSeedRunsAreBitIdentical) {
  arch::ArchConfig cfg;
  for (const char* name : {"shard.reduce.atomic", "shard.reduce.lock",
                           "shard.stencil.wave"}) {
    metrics::Experiment e1(name, workloads::Scale::kTest, cfg);
    metrics::Experiment e2(name, workloads::Scale::kTest, cfg);
    const runtime::RunResult& a = e1.Baseline();
    const runtime::RunResult& b = e2.Baseline();
    EXPECT_EQ(a.makespan, b.makespan) << name;
    EXPECT_EQ(a.events, b.events) << name;
    EXPECT_EQ(a.sync_values, b.sync_values) << name;
    EXPECT_EQ(a.stats.all(), b.stats.all()) << name;
  }
}

TEST(SyncMachine, SyncFreeRunsCarryNoSyncState) {
  arch::ArchConfig cfg;
  metrics::Experiment e("shard.reduce", workloads::Scale::kTest, cfg);
  for (const arch::Trace& t : e.BaselineTraces()) {
    for (const arch::Instr& in : t) {
      EXPECT_NE(in.kind, arch::Instr::Kind::kSync);
    }
  }
  const runtime::RunResult& r = e.Baseline();
  EXPECT_TRUE(r.sync_values.empty());
  for (const auto& [key, value] : r.stats.all()) {
    EXPECT_NE(key.rfind("sync.", 0), 0u) << key << " leaked into a sync-free run";
  }
}

TEST(SyncMachine, ConservationHoldsUnderSyncContentionStorms) {
  arch::ArchConfig cfg;
  fault::StormSpec spec;
  spec.num_links = cfg.num_nodes() * 4;
  spec.num_mcs = cfg.num_mcs;
  spec.banks_per_mc = cfg.MakeAddressMap().banks_per_mc;
  spec.horizon = 6000;

  for (const char* name : {"shard.reduce.atomic", "shard.reduce.lock",
                           "shard.stencil.wave"}) {
    for (std::uint64_t seed : {1u, 3u}) {
      spec.seed = seed;
      spec.intensity = seed == 1u ? 0.5 : 1.0;
      fault::FaultSchedule sched = fault::MakeStorm(spec);
      metrics::Experiment exp(name, workloads::Scale::kTest, cfg);
      exp.set_faults(&sched);
      metrics::SchemeResult r = exp.Run(metrics::Scheme::kBaseline);
      exp.set_faults(nullptr);
      ASSERT_TRUE(exp.have_fault_report()) << name;
      fault::ConservationReport rep =
          fault::CheckConservation(exp.last_conservation());
      EXPECT_TRUE(rep.ok) << name << " seed=" << seed << "\n" << rep.ToString();
      EXPECT_GT(r.run.makespan, 0u) << name;
    }
  }
}

TEST(SyncMachine, StormedSyncRunsAreSeedReproducible) {
  arch::ArchConfig cfg;
  fault::StormSpec spec;
  spec.num_links = cfg.num_nodes() * 4;
  spec.num_mcs = cfg.num_mcs;
  spec.banks_per_mc = cfg.MakeAddressMap().banks_per_mc;
  spec.horizon = 6000;
  spec.intensity = 0.75;
  spec.seed = 5;
  fault::FaultSchedule sched = fault::MakeStorm(spec);

  metrics::SchemeResult a, b;
  {
    metrics::Experiment exp("shard.reduce.atomic", workloads::Scale::kTest, cfg);
    exp.set_faults(&sched);
    a = exp.Run(metrics::Scheme::kBaseline);
    b = exp.Run(metrics::Scheme::kBaseline);
    exp.set_faults(nullptr);
  }
  EXPECT_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.run.sync_values, b.run.sync_values);
  EXPECT_EQ(a.run.stats.all(), b.run.stats.all());
}

}  // namespace
}  // namespace ndc
