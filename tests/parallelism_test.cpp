// Tests for the parallelism proof engine (src/analysis/parallelism):
// per-level DOALL/DOACROSS/UNKNOWN classification, array-section
// disjointness refinement of unknown reference pairs, reduction and
// privatization recognition — and for the sharded workload generator that
// consumes it (src/workloads/sharded), including the classifier gate and
// end-to-end simulation of the sharded scenarios.

#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/parallelism.hpp"
#include "metrics/experiment.hpp"
#include "verify/verify.hpp"
#include "workloads/sharded.hpp"

namespace ndc::analysis {
namespace {

using ir::AffineAccess;
using ir::Int;
using ir::IntMat;
using ir::IntVec;
using ir::LoopNest;
using ir::Operand;
using ir::Program;
using ir::Stmt;

// --- helpers --------------------------------------------------------------

Operand Aff1(int array, IntVec coefs, Int off) {
  AffineAccess a;
  a.array = array;
  a.F = IntMat(1, static_cast<int>(coefs.size()));
  for (int c = 0; c < a.F.cols(); ++c) a.F.at(0, c) = coefs[static_cast<std::size_t>(c)];
  a.f = {off};
  return Operand::Affine(a);
}

Operand Aff2(int array, Int f0, Int f1) {
  AffineAccess a;
  a.array = array;
  a.F = IntMat(2, 2, {1, 0, 0, 1});
  a.f = {f0, f1};
  return Operand::Affine(a);
}

struct TestNest {
  Program p;
  LoopNest* nest = nullptr;

  TestNest(Int n0, Int n1) {
    LoopNest ln;
    ln.loops = {{0, n0 - 1, -1, 0, -1, 0}, {0, n1 - 1, -1, 0, -1, 0}};
    p.nests.push_back(ln);
    nest = &p.nests.back();
  }

  int arr(const std::string& name, std::vector<Int> dims) {
    return p.AddArray(name, std::move(dims));
  }

  void Add(Operand lhs, arch::Op op, Operand r0, Operand r1) {
    Stmt s;
    s.id = p.NextStmtId();
    s.lhs = std::move(lhs);
    s.op = op;
    s.rhs0 = std::move(r0);
    s.rhs1 = std::move(r1);
    nest->body.push_back(std::move(s));
  }

  Classification Classify() const { return ClassifyNest(p, *nest); }
};

// --- per-level classification ---------------------------------------------

TEST(Classify, IndependentStatementIsDoallEverywhere) {
  TestNest t(8, 8);
  int a = t.arr("A", {8, 8});
  int b = t.arr("B", {8, 8});
  t.Add(Aff2(b, 0, 0), arch::Op::kAdd, Aff2(a, 0, 0), Aff2(a, 0, 0));
  Classification c = t.Classify();
  ASSERT_EQ(c.levels.size(), 2u);
  EXPECT_TRUE(c.level(0).Proven()) << c.ToString();
  EXPECT_TRUE(c.level(1).Proven()) << c.ToString();
  EXPECT_FALSE(c.has_unknown);
}

TEST(Classify, OuterCarriedFlowIsDoacrossAtLevel0Only) {
  // A(i+1, j) = A(i, j) + B(i, j): distance (1, 0).
  TestNest t(8, 8);
  int a = t.arr("A", {9, 8});
  int b = t.arr("B", {8, 8});
  t.Add(Aff2(a, 1, 0), arch::Op::kAdd, Aff2(a, 0, 0), Aff2(b, 0, 0));
  Classification c = t.Classify();
  EXPECT_EQ(c.level(0).kind, LevelKind::kDoacross) << c.ToString();
  ASSERT_TRUE(c.level(0).witness_valid);
  EXPECT_EQ(c.level(0).min_distance, 1);
  EXPECT_EQ(c.level(0).witness.distance, (IntVec{1, 0}));
  EXPECT_TRUE(c.level(0).witness.is_flow);
  EXPECT_TRUE(c.level(1).Proven()) << c.ToString();
}

TEST(Classify, InnerCarriedDependenceLeavesLevel0Doall) {
  // A(i, j+1) = A(i, j): distance (0, 1) is carried at level 1.
  TestNest t(8, 8);
  int a = t.arr("A", {8, 9});
  int b = t.arr("B", {8, 8});
  t.Add(Aff2(a, 0, 1), arch::Op::kAdd, Aff2(a, 0, 0), Aff2(b, 0, 0));
  Classification c = t.Classify();
  EXPECT_TRUE(c.level(0).Proven()) << c.ToString();
  EXPECT_EQ(c.level(1).kind, LevelKind::kDoacross) << c.ToString();
  EXPECT_EQ(c.level(1).min_distance, 1);
}

TEST(Classify, MinDistanceTracksTheSmallestCarriedDependence) {
  // Two flow deps at level 0 with distances 3 and 1: min must be 1.
  TestNest t(12, 8);
  int a = t.arr("A", {15, 8});
  int b = t.arr("B", {15, 8});
  t.Add(Aff2(a, 3, 0), arch::Op::kAdd, Aff2(a, 0, 0), Aff2(b, 0, 0));
  t.Add(Aff2(b, 1, 0), arch::Op::kAdd, Aff2(b, 0, 0), Aff2(a, 0, 0));
  Classification c = t.Classify();
  EXPECT_EQ(c.level(0).kind, LevelKind::kDoacross);
  EXPECT_EQ(c.level(0).min_distance, 1);
}

TEST(Classify, IndirectReferenceMakesEveryLevelUnknown) {
  TestNest t(8, 8);
  int a = t.arr("A", {64});
  int idx = t.arr("idx", {64});
  t.p.index_data[idx] = std::vector<Int>(64, 0);
  AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 2, {8, 1});
  ia.f = {0};
  Operand wr = Operand::Indirect(ia, a);
  t.Add(wr, arch::Op::kAdd, Aff1(a, {8, 1}, 0), Aff1(a, {8, 1}, 0));
  Classification c = t.Classify();
  EXPECT_TRUE(c.has_unknown);
  EXPECT_EQ(c.level(0).kind, LevelKind::kUnknown);
  EXPECT_EQ(c.level(1).kind, LevelKind::kUnknown);
  EXPECT_FALSE(c.unknown_arrays.empty());
}

// --- disjointness refinement ----------------------------------------------

TEST(Classify, DisjointHalvesAreRefutedNotUnknown) {
  // x[i*8+j] = a[i*8+j] + x[i*8+j+32] over 4x8 iterations: the read and
  // write footprints are the two halves of x. The uniform solve has no
  // bounded solution yet an integral one exists, so plain analysis says
  // unknown; the interval test proves the halves disjoint.
  TestNest t(4, 8);
  int x = t.arr("x", {64});
  int a = t.arr("a", {32});
  t.Add(Aff1(x, {8, 1}, 0), arch::Op::kAdd, Aff1(a, {8, 1}, 0), Aff1(x, {8, 1}, 32));
  Classification c = t.Classify();
  EXPECT_FALSE(c.has_unknown) << c.ToString();
  EXPECT_GE(c.refuted_pairs, 1);
  EXPECT_TRUE(c.level(0).Proven()) << c.ToString();
  EXPECT_TRUE(c.level(1).Proven()) << c.ToString();
}

TEST(Classify, AmbiguousOverlappingPairStaysUnknown) {
  // x[2i+2j] vs x[2i+2j+2]: the distance is ambiguous ((1,0) and (0,1)
  // both fit), the footprints overlap, and both live in the same residue
  // class mod 2 — refinement must NOT discharge this pair.
  TestNest t(10, 10);
  int x = t.arr("x", {40});
  int a = t.arr("a", {40});
  t.Add(Aff1(x, {2, 2}, 0), arch::Op::kAdd, Aff1(a, {2, 2}, 0), Aff1(x, {2, 2}, 2));
  Classification c = t.Classify();
  EXPECT_TRUE(c.has_unknown) << c.ToString();
  EXPECT_EQ(c.level(0).kind, LevelKind::kUnknown);
  EXPECT_EQ(c.unknown_arrays, (std::vector<int>{x}));
}

TEST(SectionsDisjoint, IntervalAndStrideResidueTests) {
  TestNest t(4, 8);
  int x = t.arr("x", {64});
  auto acc = [&](IntVec coefs, Int off) {
    AffineAccess a;
    a.array = x;
    a.F = IntMat(1, 2);
    a.F.at(0, 0) = coefs[0];
    a.F.at(0, 1) = coefs[1];
    a.f = {off};
    return a;
  };
  // Interval: [0,31] vs [32,63].
  EXPECT_TRUE(SectionsDisjoint(t.p, *t.nest, acc({8, 1}, 0), acc({8, 1}, 32)));
  // Overlap: [0,31] vs [16,47].
  EXPECT_FALSE(SectionsDisjoint(t.p, *t.nest, acc({8, 1}, 0), acc({8, 1}, 16)));
  // Stride residue: even cells vs odd cells, intervals interleave.
  EXPECT_TRUE(SectionsDisjoint(t.p, *t.nest, acc({16, 2}, 0), acc({16, 2}, 1)));
  // Same residue class: not disjoint.
  EXPECT_FALSE(SectionsDisjoint(t.p, *t.nest, acc({16, 2}, 0), acc({16, 2}, 2)));
}

TEST(SectionsDisjoint, TriangularBoundsUseConservativeRanges) {
  // j in [0, i]: the footprint of x[8i+j] is still bounded by the widest
  // range, so a far-offset access remains provably disjoint.
  Program p;
  int x = p.AddArray("x", {128});
  LoopNest ln;
  ln.loops = {{0, 3, -1, 0, -1, 0}, {0, 0, -1, 0, 0, 1}};
  p.nests.push_back(ln);
  AffineAccess a, b;
  a.array = b.array = x;
  a.F = IntMat(1, 2, {8, 1});
  a.f = {0};
  b.F = a.F;
  b.f = {64};
  EXPECT_TRUE(SectionsDisjoint(p, p.nests[0], a, b));
  b.f = {10};  // inside the conservative [0, 27] span envelope
  EXPECT_FALSE(SectionsDisjoint(p, p.nests[0], a, b));
}

// --- reduction recognition ------------------------------------------------

TEST(Classify, RecognizesSumReduction) {
  // s(i) += A(i, j): the self-dependence (0,1) is a reduction obligation at
  // level 1; level 0 is proven DOALL outright.
  TestNest t(8, 8);
  int s = t.arr("s", {8});
  int a = t.arr("A", {64});
  t.Add(Aff1(s, {1, 0}, 0), arch::Op::kAdd, Aff1(s, {1, 0}, 0), Aff1(a, {8, 1}, 0));
  Classification c = t.Classify();
  ASSERT_EQ(c.reductions.size(), 1u);
  EXPECT_EQ(c.reductions[0].stmt, 0);
  EXPECT_EQ(c.reductions[0].array, s);
  EXPECT_EQ(c.reductions[0].op, arch::Op::kAdd);
  EXPECT_TRUE(c.level(0).Proven()) << c.ToString();
  EXPECT_EQ(c.level(1).kind, LevelKind::kDoall);
  EXPECT_EQ(c.level(1).reduction_stmts, (std::vector<int>{0}));
  EXPECT_FALSE(c.level(1).Proven());  // obligation present
}

TEST(Classify, NonCommutativeOpIsNotAReduction) {
  TestNest t(8, 8);
  int s = t.arr("s", {8});
  int a = t.arr("A", {64});
  t.Add(Aff1(s, {1, 0}, 0), arch::Op::kSub, Aff1(s, {1, 0}, 0), Aff1(a, {8, 1}, 0));
  Classification c = t.Classify();
  EXPECT_TRUE(c.reductions.empty());
  EXPECT_EQ(c.level(1).kind, LevelKind::kDoacross) << c.ToString();
}

TEST(Classify, SecondReaderDisqualifiesTheReduction) {
  // Another statement reads s: partial sums become observable, so the
  // accumulation must stay ordered.
  TestNest t(8, 8);
  int s = t.arr("s", {8});
  int a = t.arr("A", {64});
  int out = t.arr("out", {64});
  t.Add(Aff1(s, {1, 0}, 0), arch::Op::kAdd, Aff1(s, {1, 0}, 0), Aff1(a, {8, 1}, 0));
  t.Add(Aff1(out, {8, 1}, 0), arch::Op::kMul, Aff1(s, {1, 0}, 0), Aff1(a, {8, 1}, 0));
  Classification c = t.Classify();
  EXPECT_TRUE(c.reductions.empty());
  EXPECT_EQ(c.level(1).kind, LevelKind::kDoacross) << c.ToString();
}

// --- privatization detection ----------------------------------------------

TEST(Classify, CoveredTemporaryIsPrivatizable) {
  // t(j) = A(i,j)*B(i,j); out(i,j) = t(j)+B(i,j): every read of t is
  // covered by the same-iteration write, so t's carried output dependence
  // at level 0 becomes a privatization obligation.
  TestNest t(8, 8);
  int a = t.arr("A", {64});
  int b = t.arr("B", {64});
  int tmp = t.arr("t", {8});
  int out = t.arr("out", {64});
  t.Add(Aff1(tmp, {0, 1}, 0), arch::Op::kMul, Aff1(a, {8, 1}, 0), Aff1(b, {8, 1}, 0));
  t.Add(Aff1(out, {8, 1}, 0), arch::Op::kAdd, Aff1(tmp, {0, 1}, 0), Aff1(b, {8, 1}, 0));
  Classification c = t.Classify();
  EXPECT_EQ(c.privatizable, (std::vector<int>{tmp}));
  EXPECT_EQ(c.level(0).kind, LevelKind::kDoall) << c.ToString();
  EXPECT_EQ(c.level(0).privatization, (std::vector<int>{tmp}));
  EXPECT_FALSE(c.level(0).Proven());
}

TEST(Classify, UncoveredReadIsNotPrivatizable) {
  // Read before any write in the body: the value flows in from another
  // iteration, so privatization would change semantics.
  TestNest t(8, 8);
  int a = t.arr("A", {64});
  int tmp = t.arr("t", {8});
  int out = t.arr("out", {64});
  t.Add(Aff1(out, {8, 1}, 0), arch::Op::kAdd, Aff1(tmp, {0, 1}, 0), Aff1(a, {8, 1}, 0));
  t.Add(Aff1(tmp, {0, 1}, 0), arch::Op::kMul, Aff1(a, {8, 1}, 0), Aff1(a, {8, 1}, 0));
  Classification c = t.Classify();
  EXPECT_TRUE(c.privatizable.empty());
  EXPECT_EQ(c.level(0).kind, LevelKind::kDoacross) << c.ToString();
}

// --- sharded workload generator -------------------------------------------

TEST(Sharded, AllScenariosPassTheGateAndVerifyClean) {
  for (const std::string& name : workloads::ShardedNames()) {
    ir::Program p;
    ASSERT_NO_THROW(p = workloads::BuildShardedWorkload(name, workloads::Scale::kTest, 4))
        << name;
    bool annotated = false;
    for (const ir::LoopNest& nest : p.nests) annotated |= nest.parallel.level == 0;
    EXPECT_TRUE(annotated) << name;
    verify::Report r = verify::VerifyProgram(p);
    EXPECT_TRUE(r.Clean()) << name << "\n" << r.ToText();
    // The headline guarantee: proven-disjoint sharding produces zero
    // race-detector false positives.
    EXPECT_EQ(r.WarningCount(), 0) << name << "\n" << r.ToText();
  }
}

TEST(Sharded, RacyScenarioIsRejectedByTheGate) {
  EXPECT_THROW(
      workloads::BuildShardedWorkload("shard.racy", workloads::Scale::kTest, 4),
      std::logic_error);
}

TEST(Sharded, UnknownScenarioNameThrows) {
  EXPECT_THROW(
      workloads::BuildShardedWorkload("shard.nope", workloads::Scale::kTest, 4),
      std::invalid_argument);
}

TEST(Sharded, StreamScenarioNeedsTheRefinement) {
  // shard.stream must be provable only through refuted pairs — if the
  // refinement ever regresses, the gate throws and this test fails loudly.
  ir::Program p =
      workloads::BuildShardedWorkload("shard.stream", workloads::Scale::kTest, 4);
  Classification c = ClassifyNest(p, p.nests[0]);
  EXPECT_GE(c.refuted_pairs, 1);
  EXPECT_TRUE(c.level(0).Proven());
}

TEST(Sharded, ScenariosRunUnderTheSimulator) {
  arch::ArchConfig cfg;
  for (const std::string& name : workloads::ShardedNames()) {
    metrics::Experiment e(name, workloads::Scale::kTest, cfg);
    const runtime::RunResult& r = e.Baseline();
    EXPECT_GT(r.makespan, 0u) << name;
  }
}

TEST(Sharded, ReduceCombineNestRunsOnOneCore) {
  // The combine nest's outer loop has trip 1: block distribution pins all
  // C inner iterations to core 0, making the combine sequential.
  ir::Program p =
      workloads::BuildShardedWorkload("shard.reduce", workloads::Scale::kTest, 4);
  ASSERT_EQ(p.nests.size(), 2u);
  const ir::Loop& outer = p.nests[1].loops[0];
  EXPECT_EQ(outer.lo, outer.hi);
}

}  // namespace
}  // namespace ndc::analysis
