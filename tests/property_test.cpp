// Randomized property tests across substrates: network delivery, route
// overlap optimality on random endpoint pairs, address-map partitioning,
// and architecture-config invariants.

#include <gtest/gtest.h>

#include <set>

#include "arch/config.hpp"
#include "mem/address_map.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace ndc {
namespace {

TEST(NetworkProperty, RandomTrafficDeliversExactlyOnce) {
  sim::Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    sim::EventQueue eq;
    noc::Mesh mesh(5, 5);
    noc::Network net(mesh, eq);
    int delivered = 0;
    const int kPackets = 200;
    for (int i = 0; i < kPackets; ++i) {
      noc::Packet p;
      p.src = static_cast<sim::NodeId>(rng.NextBelow(25));
      p.dst = static_cast<sim::NodeId>(rng.NextBelow(25));
      p.size_bytes = rng.NextBool(0.5) ? 8 : 64;
      net.Send(p, [&](const noc::Packet&, sim::Cycle) { ++delivered; });
    }
    eq.RunUntilEmpty();
    EXPECT_EQ(delivered, kPackets);
    EXPECT_EQ(net.stats().Get("noc.packets"), static_cast<std::uint64_t>(kPackets));
  }
}

TEST(NetworkProperty, DeliveryRespectsManhattanLowerBound) {
  sim::Rng rng(7);
  sim::EventQueue eq;
  noc::Mesh mesh(6, 6);
  noc::Network net(mesh, eq);
  for (int i = 0; i < 100; ++i) {
    noc::Packet p;
    p.src = static_cast<sim::NodeId>(rng.NextBelow(36));
    p.dst = static_cast<sim::NodeId>(rng.NextBelow(36));
    p.size_bytes = 8;
    int hops = mesh.Distance(p.src, p.dst);
    sim::Cycle sent = eq.now();
    net.Send(p, [&, hops, sent](const noc::Packet&, sim::Cycle) {
      EXPECT_GE(eq.now() - sent, static_cast<sim::Cycle>(hops) * 4);
    });
    eq.RunUntilEmpty();
  }
}

TEST(RoutingProperty, RandomOverlapMatchesBruteForce) {
  sim::Rng rng(31);
  noc::Mesh mesh(4, 4);  // keep brute force cheap
  for (int trial = 0; trial < 60; ++trial) {
    auto a_src = static_cast<sim::NodeId>(rng.NextBelow(16));
    auto a_dst = static_cast<sim::NodeId>(rng.NextBelow(16));
    auto b_src = static_cast<sim::NodeId>(rng.NextBelow(16));
    auto b_dst = static_cast<sim::NodeId>(rng.NextBelow(16));
    noc::RoutePair fast = noc::MaxOverlapRoutes(mesh, a_src, a_dst, b_src, b_dst);
    noc::RoutePair brute = noc::MaxOverlapRoutesBruteForce(mesh, a_src, a_dst, b_src, b_dst);
    EXPECT_EQ(fast.shared_links, brute.shared_links)
        << a_src << "->" << a_dst << " vs " << b_src << "->" << b_dst;
    EXPECT_TRUE(noc::IsMinimalRoute(mesh, fast.a, a_src, a_dst));
    EXPECT_TRUE(noc::IsMinimalRoute(mesh, fast.b, b_src, b_dst));
    EXPECT_EQ(fast.shared.Popcount(), fast.shared_links);
  }
}

TEST(AddressMapProperty, EveryAddressHasExactlyOneHomeAndMc) {
  mem::AddressMap amap;
  sim::Rng rng(12);
  for (int i = 0; i < 2000; ++i) {
    sim::Addr a = rng.NextBelow(1ull << 30);
    sim::NodeId home = amap.HomeBank(a);
    EXPECT_GE(home, 0);
    EXPECT_LT(home, amap.num_nodes);
    sim::McId mc = amap.Mc(a);
    EXPECT_GE(mc, 0);
    EXPECT_LT(mc, amap.num_mcs);
    EXPECT_GE(amap.DramBank(a), 0);
    EXPECT_LT(amap.DramBank(a), amap.banks_per_mc);
    // Addresses on the same L2 line share a home; on the same page share an MC.
    EXPECT_EQ(amap.HomeBank(a), amap.HomeBank(a | 0xFF));
    EXPECT_EQ(amap.Mc(a), amap.Mc(a | 0xFFF));
  }
}

TEST(AddressMapProperty, LinesSpreadOverAllBanks) {
  mem::AddressMap amap;
  std::set<sim::NodeId> homes;
  std::set<sim::McId> mcs;
  for (sim::Addr a = 0; a < 256ull * 200; a += 256) homes.insert(amap.HomeBank(a));
  for (sim::Addr a = 0; a < 4096ull * 64; a += 4096) mcs.insert(amap.Mc(a));
  EXPECT_EQ(homes.size(), 25u);
  EXPECT_EQ(mcs.size(), 4u);
}

TEST(ArchConfigTest, Table1Defaults) {
  arch::ArchConfig cfg;
  EXPECT_EQ(cfg.num_nodes(), 25);
  EXPECT_EQ(cfg.issue_width, 2);
  EXPECT_EQ(cfg.l1.size_bytes, 32u * 1024);
  EXPECT_EQ(cfg.l1.line_bytes, 64u);
  EXPECT_EQ(cfg.l1.ways, 2u);
  EXPECT_EQ(cfg.l2.size_bytes, 512u * 1024);
  EXPECT_EQ(cfg.l2.line_bytes, 256u);
  EXPECT_EQ(cfg.l2.ways, 64u);
  EXPECT_EQ(cfg.noc.router_pipeline, 3u);
  EXPECT_EQ(cfg.noc.link_bytes, 16);
  EXPECT_EQ(cfg.num_mcs, 4);
  EXPECT_EQ(cfg.control_register, arch::kAllLocs);
}

TEST(ArchConfigTest, McNodesAreDistinctCorners) {
  arch::ArchConfig cfg;
  auto nodes = cfg.McNodes();
  ASSERT_EQ(nodes.size(), 4u);
  std::set<sim::NodeId> uniq(nodes.begin(), nodes.end());
  EXPECT_EQ(uniq.size(), 4u);
  noc::Mesh mesh(5, 5);
  for (sim::NodeId n : nodes) {
    noc::Coord c = mesh.CoordOf(n);
    EXPECT_TRUE((c.x == 0 || c.x == 4) && (c.y == 0 || c.y == 4));
  }
}

TEST(ArchConfigTest, AddressMapMatchesCacheGeometry) {
  arch::ArchConfig cfg;
  mem::AddressMap amap = cfg.MakeAddressMap();
  EXPECT_EQ(amap.l2_line_bytes, cfg.l2.line_bytes);
  EXPECT_EQ(amap.num_nodes, cfg.num_nodes());
  EXPECT_EQ(amap.num_mcs, cfg.num_mcs);
}

TEST(ArchConfigTest, LocBitsAreDistinct) {
  std::set<std::uint8_t> bits;
  for (int l = 0; l < arch::kNumLocs; ++l) {
    bits.insert(arch::LocBit(static_cast<arch::Loc>(l)));
  }
  EXPECT_EQ(bits.size(), 4u);
  EXPECT_EQ(arch::LocBit(arch::Loc::kLinkBuffer) | arch::LocBit(arch::Loc::kCacheCtrl) |
                arch::LocBit(arch::Loc::kMemCtrl) | arch::LocBit(arch::Loc::kMemBank),
            arch::kAllLocs);
}

TEST(ArchConfigTest, LocNamesMatchPaperTerms) {
  EXPECT_STREQ(arch::LocName(arch::Loc::kLinkBuffer), "network");
  EXPECT_STREQ(arch::LocName(arch::Loc::kCacheCtrl), "cache");
  EXPECT_STREQ(arch::LocName(arch::Loc::kMemCtrl), "MC");
  EXPECT_STREQ(arch::LocName(arch::Loc::kMemBank), "memory");
}

}  // namespace
}  // namespace ndc
