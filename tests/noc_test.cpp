// Tests for mesh geometry, routing, route signatures, the max-overlap
// signature selection (verified against brute force), and the network
// timing model including hold/release/squash used by link-buffer NDC.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "noc/geometry.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/signature.hpp"
#include "sim/event_queue.hpp"

namespace ndc::noc {
namespace {

TEST(Mesh, NodeCoordRoundTrip) {
  Mesh m(5, 5);
  for (sim::NodeId n = 0; n < m.num_nodes(); ++n) {
    EXPECT_EQ(m.NodeAt(m.CoordOf(n)), n);
  }
}

TEST(Mesh, LinkEndpoints) {
  Mesh m(5, 5);
  sim::LinkId east = m.LinkFrom(0, Dir::East);
  EXPECT_EQ(m.LinkSource(east), 0);
  EXPECT_EQ(m.LinkDest(east), 1);
  sim::LinkId south = m.LinkFrom(0, Dir::South);
  EXPECT_EQ(m.LinkDest(south), 5);
}

TEST(Mesh, ManhattanDistance) {
  Mesh m(5, 5);
  EXPECT_EQ(m.Distance(0, 24), 8);
  EXPECT_EQ(m.Distance(0, 0), 0);
  EXPECT_EQ(m.Distance(m.NodeAt({1, 1}), m.NodeAt({3, 4})), 5);
}

TEST(Routing, XyRouteIsMinimalAndValid) {
  Mesh m(5, 5);
  for (sim::NodeId s = 0; s < m.num_nodes(); ++s) {
    for (sim::NodeId d = 0; d < m.num_nodes(); ++d) {
      Route r = XyRoute(m, s, d);
      EXPECT_TRUE(IsMinimalRoute(m, r, s, d)) << s << "->" << d;
    }
  }
}

TEST(Routing, YxRouteIsMinimalAndValid) {
  Mesh m(4, 6);
  for (sim::NodeId s = 0; s < m.num_nodes(); ++s) {
    for (sim::NodeId d = 0; d < m.num_nodes(); ++d) {
      EXPECT_TRUE(IsMinimalRoute(m, YxRoute(m, s, d), s, d));
    }
  }
}

TEST(Routing, XyRouteGoesXFirst) {
  Mesh m(5, 5);
  Route r = XyRoute(m, m.NodeAt({0, 0}), m.NodeAt({2, 2}));
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(m.LinkDir(r[0]), Dir::East);
  EXPECT_EQ(m.LinkDir(r[1]), Dir::East);
  EXPECT_EQ(m.LinkDir(r[2]), Dir::South);
  EXPECT_EQ(m.LinkDir(r[3]), Dir::South);
}

TEST(Routing, EnumerationCountsBinomially) {
  Mesh m(5, 5);
  // dx=2, dy=2 -> C(4,2) = 6 minimal routes.
  auto routes = EnumerateMinimalRoutes(m, m.NodeAt({0, 0}), m.NodeAt({2, 2}));
  EXPECT_EQ(routes.size(), 6u);
  for (const Route& r : routes) {
    EXPECT_TRUE(IsMinimalRoute(m, r, m.NodeAt({0, 0}), m.NodeAt({2, 2})));
  }
  // All distinct.
  std::set<Route> uniq(routes.begin(), routes.end());
  EXPECT_EQ(uniq.size(), routes.size());
}

TEST(Routing, StaircaseRouteRespectsPivots) {
  Mesh m(6, 6);
  sim::NodeId s = m.NodeAt({0, 0});
  sim::NodeId d = m.NodeAt({3, 3});
  for (int px = 0; px <= 3; ++px) {
    for (int py = 0; py <= 3; ++py) {
      EXPECT_TRUE(IsMinimalRoute(m, StaircaseRoute(m, s, d, px, py), s, d));
    }
  }
}

TEST(Signature, RoundTripAndOps) {
  Signature s;
  s.Set(3);
  s.Set(100);
  s.Set(255);
  EXPECT_TRUE(s.Test(3));
  EXPECT_FALSE(s.Test(4));
  EXPECT_EQ(s.Popcount(), 3);
  EXPECT_EQ(s.Links(), (std::vector<sim::LinkId>{3, 100, 255}));
  Signature t;
  t.Set(100);
  t.Set(7);
  Signature inter = s.Intersect(t);
  EXPECT_EQ(inter.Popcount(), 1);
  EXPECT_TRUE(inter.Test(100));
  Signature uni = s.Union(t);
  EXPECT_EQ(uni.Popcount(), 4);
}

TEST(Signature, FromRouteMatchesLinks) {
  Mesh m(5, 5);
  Route r = XyRoute(m, 0, 24);
  Signature s = Signature::FromRoute(r);
  EXPECT_EQ(s.Popcount(), static_cast<int>(r.size()));
  for (sim::LinkId l : r) EXPECT_TRUE(s.Test(l));
}

// Paper Figure 11: two accesses whose default routes do not intersect can be
// rerouted (minimal paths) to share links.
TEST(MaxOverlap, BeatsOrMatchesDefaultXy) {
  Mesh m(6, 6);
  sim::NodeId a_src = m.NodeAt({0, 1}), a_dst = m.NodeAt({4, 4});
  sim::NodeId b_src = m.NodeAt({1, 0}), b_dst = m.NodeAt({4, 5});
  Signature xy_a = Signature::FromRoute(XyRoute(m, a_src, a_dst));
  Signature xy_b = Signature::FromRoute(XyRoute(m, b_src, b_dst));
  int xy_overlap = xy_a.Intersect(xy_b).Popcount();
  RoutePair best = MaxOverlapRoutes(m, a_src, a_dst, b_src, b_dst);
  EXPECT_GE(best.shared_links, xy_overlap);
  EXPECT_GT(best.shared_links, 0);
  EXPECT_TRUE(IsMinimalRoute(m, best.a, a_src, a_dst));
  EXPECT_TRUE(IsMinimalRoute(m, best.b, b_src, b_dst));
}

// Property sweep: the staircase construction matches exhaustive search.
struct OverlapCase {
  int ax1, ay1, ax2, ay2;
  int bx1, by1, bx2, by2;
};

class MaxOverlapProperty : public ::testing::TestWithParam<OverlapCase> {};

TEST_P(MaxOverlapProperty, MatchesBruteForce) {
  Mesh m(5, 5);
  const OverlapCase& c = GetParam();
  sim::NodeId as = m.NodeAt({c.ax1, c.ay1}), ad = m.NodeAt({c.ax2, c.ay2});
  sim::NodeId bs = m.NodeAt({c.bx1, c.by1}), bd = m.NodeAt({c.bx2, c.by2});
  RoutePair fast = MaxOverlapRoutes(m, as, ad, bs, bd);
  RoutePair brute = MaxOverlapRoutesBruteForce(m, as, ad, bs, bd);
  EXPECT_EQ(fast.shared_links, brute.shared_links);
  EXPECT_TRUE(IsMinimalRoute(m, fast.a, as, ad));
  EXPECT_TRUE(IsMinimalRoute(m, fast.b, bs, bd));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MaxOverlapProperty,
    ::testing::Values(OverlapCase{0, 0, 4, 4, 0, 1, 4, 3},   // same quadrant
                      OverlapCase{0, 0, 4, 4, 4, 4, 0, 0},   // opposite directions
                      OverlapCase{0, 0, 2, 2, 2, 2, 4, 4},   // touching corners
                      OverlapCase{0, 2, 4, 2, 2, 0, 2, 4},   // crossing
                      OverlapCase{1, 1, 3, 3, 1, 1, 3, 3},   // identical endpoints
                      OverlapCase{0, 0, 0, 4, 4, 0, 4, 4},   // parallel columns
                      OverlapCase{0, 0, 4, 0, 0, 1, 4, 1},   // parallel rows
                      OverlapCase{2, 0, 2, 4, 0, 2, 4, 2},   // plus sign
                      OverlapCase{0, 0, 3, 2, 1, 0, 3, 4},   // partial overlap
                      OverlapCase{3, 3, 0, 0, 4, 4, 1, 1},   // both decreasing
                      OverlapCase{0, 4, 4, 0, 0, 3, 4, 1},   // anti-diagonal
                      OverlapCase{2, 2, 2, 2, 1, 1, 3, 3})); // degenerate single node

TEST(Network, UncontendedLatencyMatchesFormula) {
  sim::EventQueue eq;
  Mesh m(5, 5);
  Network net(m, eq);
  // 8-byte control packet over 4 hops: 4 * (3 + 1) = 16 cycles + final
  // router pipeline at delivery.
  Packet p;
  p.src = 0;
  p.dst = 4;
  p.size_bytes = 8;
  sim::Cycle delivered = 0;
  net.Send(p, [&](const Packet&, sim::Cycle) { delivered = eq.now(); });
  eq.RunUntilEmpty();
  EXPECT_EQ(delivered, 4u * (3 + 1) + 3);
}

TEST(Network, SerializationScalesWithSize) {
  sim::EventQueue eq;
  Mesh m(5, 5);
  Network net(m, eq);
  Packet p;
  p.src = 0;
  p.dst = 1;  // one hop
  p.size_bytes = 64;  // 4 flits on 16B links
  sim::Cycle delivered = 0;
  net.Send(p, [&](const Packet&, sim::Cycle) { delivered = eq.now(); });
  eq.RunUntilEmpty();
  EXPECT_EQ(delivered, (3 + 4) + 3u);
}

TEST(Network, ContentionDelaysSecondPacket) {
  sim::EventQueue eq;
  Mesh m(5, 5);
  Network net(m, eq);
  sim::Cycle t1 = 0, t2 = 0;
  Packet a, b;
  a.src = b.src = 0;
  a.dst = b.dst = 1;
  a.size_bytes = b.size_bytes = 64;
  net.Send(a, [&](const Packet&, sim::Cycle) { t1 = eq.now(); });
  net.Send(b, [&](const Packet&, sim::Cycle) { t2 = eq.now(); });
  eq.RunUntilEmpty();
  EXPECT_GT(t2, t1);
  EXPECT_EQ(t2 - t1, 4u);  // one 64B serialization behind
  EXPECT_GT(net.stats().Get("noc.contention_cycles"), 0u);
}

TEST(Network, LocalDeliveryPaysRouterPipeline) {
  sim::EventQueue eq;
  Mesh m(5, 5);
  Network net(m, eq);
  Packet p;
  p.src = p.dst = 7;
  sim::Cycle delivered = 0;
  net.Send(p, [&](const Packet&, sim::Cycle) { delivered = eq.now(); });
  eq.RunUntilEmpty();
  EXPECT_EQ(delivered, 3u);
}

TEST(Network, HoldAndReleaseResumesJourney) {
  sim::EventQueue eq;
  Mesh m(5, 5);
  Network net(m, eq);
  std::uint64_t held_id = 0;
  int holds = 0;
  net.set_hop_hook([&](Packet& p, sim::LinkId, sim::Cycle) {
    if (p.hop == 1 && holds == 0) {
      ++holds;
      held_id = p.id;
      return HopAction::kHold;
    }
    return HopAction::kContinue;
  });
  Packet p;
  p.src = 0;
  p.dst = 3;
  p.size_bytes = 8;
  sim::Cycle delivered = 0;
  net.Send(p, [&](const Packet&, sim::Cycle) { delivered = eq.now(); });
  // Let it run until held, then release 100 cycles later.
  eq.RunUntilEmpty(50);
  ASSERT_TRUE(net.IsHeld(held_id));
  eq.ScheduleAt(100, [&] { net.Release(held_id); });
  eq.RunUntilEmpty();
  EXPECT_FALSE(net.IsHeld(held_id));
  EXPECT_GT(delivered, 100u);
}

TEST(Network, SquashConsumesPacket) {
  sim::EventQueue eq;
  Mesh m(5, 5);
  Network net(m, eq);
  std::uint64_t held_id = 0;
  net.set_hop_hook([&](Packet& p, sim::LinkId, sim::Cycle) {
    held_id = p.id;
    return HopAction::kHold;
  });
  Packet p;
  p.src = 0;
  p.dst = 3;
  bool delivered = false;
  net.Send(p, [&](const Packet&, sim::Cycle) { delivered = true; });
  eq.RunUntilEmpty();
  net.Squash(held_id);
  eq.RunUntilEmpty();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.stats().Get("noc.squashes"), 1u);
}

}  // namespace
}  // namespace ndc::noc
