// Randomized robustness tests: arbitrary (valid) traces over arbitrary
// address mixes, run under every policy, must always run to completion —
// no deadlocks, no lost completions — and deterministically. Plus a
// pipeline/auditor cross-check: random IR programs fed through Compile()
// in every mode must come out clean under the independent verifier.

#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "arch/trace.hpp"
#include "compiler/pipeline.hpp"
#include "ndc/machine.hpp"
#include "ndc/policy.hpp"
#include "sim/rng.hpp"
#include "verify/verify.hpp"

namespace ndc::runtime {
namespace {

using arch::Instr;
using arch::MakeCompute;
using arch::MakeLoad;
using arch::MakePreCompute;
using arch::MakeStore;
using arch::Op;
using arch::Trace;

// Generates a random but structurally valid trace: loads with optional
// address deps, candidate computes over two previous loads, pre-computes
// with random planned locations/timeouts, dependent stores.
Trace RandomTrace(sim::Rng& rng, int len) {
  Trace t;
  std::vector<int> loads;
  auto rand_addr = [&] {
    // Mix of pages, lines, and nearby offsets to hit every component mix.
    return static_cast<sim::Addr>(rng.NextBelow(1u << 22)) & ~sim::Addr{7};
  };
  while (static_cast<int>(t.size()) < len) {
    switch (rng.NextBelow(10)) {
      case 0: case 1: case 2: case 3: {
        Instr ld = MakeLoad(rand_addr());
        if (!loads.empty() && rng.NextBool(0.2)) {
          ld.dep0 = loads[rng.NextBelow(loads.size())];
        }
        ld.pc = static_cast<std::uint32_t>(rng.NextBelow(32));
        loads.push_back(static_cast<int>(t.size()));
        t.push_back(ld);
        break;
      }
      case 4: case 5: {
        if (loads.size() < 2) break;
        int a = loads[loads.size() - 1];
        int b = loads[loads.size() - 2];
        t.push_back(MakeCompute(static_cast<Op>(rng.NextBelow(7)), a, b, true,
                                static_cast<std::uint32_t>(rng.NextBelow(32))));
        loads.clear();  // a load feeds at most one site
        break;
      }
      case 6: {
        if (loads.size() < 2) break;
        int a = loads[loads.size() - 1];
        int b = loads[loads.size() - 2];
        auto loc = static_cast<arch::Loc>(rng.NextBelow(4));
        t.push_back(MakePreCompute(static_cast<Op>(rng.NextBelow(7)), a, b, loc,
                                   rng.NextBelow(200) + 1,
                                   static_cast<std::uint32_t>(rng.NextBelow(32))));
        loads.clear();
        break;
      }
      case 7: {
        std::int32_t dep = -1;
        if (!t.empty() && rng.NextBool(0.5)) {
          dep = static_cast<std::int32_t>(rng.NextBelow(t.size()));
          if (t[static_cast<std::size_t>(dep)].kind == Instr::Kind::kStore) dep = -1;
        }
        t.push_back(MakeStore(rand_addr(), dep));
        break;
      }
      default:
        t.push_back(MakeCompute(Op::kAdd,
                                t.empty() ? -1
                                          : static_cast<std::int32_t>(rng.NextBelow(t.size())),
                                -1, false));
        if (!t.empty() &&
            t.back().dep0 >= 0 &&
            t[static_cast<std::size_t>(t.back().dep0)].kind == Instr::Kind::kStore) {
          t.back().dep0 = -1;
        }
        break;
    }
  }
  return t;
}

std::vector<Trace> RandomProgram(std::uint64_t seed, int cores, int len) {
  sim::Rng rng(seed);
  std::vector<Trace> p(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) p[static_cast<std::size_t>(c)] = RandomTrace(rng, len);
  return p;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, AllPoliciesRunToCompletion) {
  arch::ArchConfig cfg;
  std::vector<Trace> program = RandomProgram(GetParam(), 25, 120);

  // Baseline + observe + every hardware policy.
  std::vector<std::unique_ptr<Policy>> policies;
  policies.push_back(nullptr);
  policies.push_back(std::make_unique<AlwaysWaitPolicy>(cfg));
  policies.push_back(std::make_unique<LastWaitPolicy>(cfg));
  policies.push_back(std::make_unique<MarkovWaitPolicy>(cfg));

  for (auto& pol : policies) {
    MachineOptions opts;
    opts.policy = pol.get();
    Machine m(cfg, opts);
    m.LoadProgram(program);
    RunResult r = m.Run(/*limit=*/50'000'000);
    EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u)
        << "seed " << GetParam() << " policy " << (pol ? pol->name() : "none");
  }

  // Observation mode.
  MachineOptions obs;
  obs.observe = true;
  Machine m(cfg, obs);
  m.LoadProgram(program);
  RunResult r = m.Run(50'000'000);
  EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u);
}

TEST_P(FuzzSeeds, DeterministicUnderDefaultPolicy) {
  arch::ArchConfig cfg;
  std::vector<Trace> program = RandomProgram(GetParam() * 77 + 5, 25, 80);
  sim::Cycle first = 0;
  for (int run = 0; run < 2; ++run) {
    AlwaysWaitPolicy pol(cfg);
    MachineOptions opts;
    opts.policy = &pol;
    Machine m(cfg, opts);
    m.LoadProgram(program);
    RunResult r = m.Run(50'000'000);
    if (run == 0) {
      first = r.makespan;
    } else {
      EXPECT_EQ(r.makespan, first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 2, 3, 4, 5, 11, 23, 42));

// --- random IR programs: the compiler must never emit annotations the ---
// --- independent auditor (src/verify) rejects ---------------------------

// Generates a random but structurally valid IR program: rectangular nests
// of depth 1-3, 1-D flattened or rank-matched affine accesses (arrays sized
// so every subscript stays in bounds), occasional stencil offsets, reused
// arrays across statements (creating real dependences), and occasional
// indirect accesses (creating unknown dependences the pipeline must respect).
ir::Program RandomIrProgram(std::uint64_t seed) {
  sim::Rng rng(seed);
  ir::Program p;
  p.name = "fuzz-" + std::to_string(seed);

  int depth = 1 + static_cast<int>(rng.NextBelow(3));
  std::vector<ir::Int> trips;
  std::vector<ir::Loop> loops;
  for (int l = 0; l < depth; ++l) {
    ir::Int trip = 3 + static_cast<ir::Int>(rng.NextBelow(6));
    trips.push_back(trip);
    loops.push_back({0, trip - 1, -1, 0, -1, 0});
  }

  // Arrays sized to admit any offset in [-2, 2] on any dimension.
  ir::Int slack = 4;
  std::vector<int> arrays;
  int num_arrays = 2 + static_cast<int>(rng.NextBelow(3));
  for (int a = 0; a < num_arrays; ++a) {
    std::vector<ir::Int> dims;
    for (int l = 0; l < depth; ++l) dims.push_back(trips[static_cast<std::size_t>(l)] + slack);
    arrays.push_back(p.AddArray("A" + std::to_string(a), dims));
  }
  int idx_array = -1;
  if (rng.NextBool(0.3)) {
    // A 1-D index array covering the innermost trip count, pointing into
    // the first data array's flattened elements.
    ir::Int n = trips.back() + slack;
    idx_array = p.AddArray("idx", {n});
    std::vector<ir::Int>& data = p.index_data[idx_array];
    ir::Int target_elems = p.array(arrays[0]).NumElems();
    for (ir::Int i = 0; i < n; ++i) {
      data.push_back(static_cast<ir::Int>(
          rng.NextBelow(static_cast<std::uint64_t>(target_elems))));
    }
  }

  auto random_affine = [&](int arr) {
    ir::AffineAccess acc;
    acc.array = arr;
    int rank = static_cast<int>(p.array(arr).dims.size());
    acc.F = ir::IntMat(rank, depth);
    acc.f.assign(static_cast<std::size_t>(rank), 0);
    for (int d = 0; d < rank && d < depth; ++d) acc.F.at(d, d) = 1;
    // Random small offset on one dimension (stencil halo; stays in bounds
    // thanks to the dimension slack).
    int d = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(rank)));
    acc.f[static_cast<std::size_t>(d)] = static_cast<ir::Int>(rng.NextBelow(3));
    return acc;
  };

  int num_nests = 1 + static_cast<int>(rng.NextBelow(2));
  for (int n = 0; n < num_nests; ++n) {
    ir::LoopNest nest;
    nest.loops = loops;
    int num_stmts = 1 + static_cast<int>(rng.NextBelow(3));
    for (int s = 0; s < num_stmts; ++s) {
      ir::Stmt st;
      st.id = p.NextStmtId();
      st.op = static_cast<arch::Op>(rng.NextBelow(7));
      int a0 = arrays[rng.NextBelow(arrays.size())];
      int a1 = arrays[rng.NextBelow(arrays.size())];
      st.rhs0 = ir::Operand::Affine(random_affine(a0));
      if (idx_array >= 0 && depth == 1 && rng.NextBool(0.3)) {
        ir::AffineAccess ia;
        ia.array = idx_array;
        ia.F = ir::IntMat(1, depth);
        ia.F.at(0, depth - 1) = 1;
        ia.f = {0};
        st.rhs1 = ir::Operand::Indirect(ia, arrays[0]);
      } else {
        st.rhs1 = ir::Operand::Affine(random_affine(a1));
      }
      if (rng.NextBool(0.7)) {
        int aw = arrays[rng.NextBelow(arrays.size())];
        st.lhs = ir::Operand::Affine(random_affine(aw));
      } else {
        st.lhs = ir::Operand::Scalar();
      }
      nest.body.push_back(std::move(st));
    }
    p.nests.push_back(std::move(nest));
  }
  return p;
}

class FuzzIrSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzIrSeeds, CompiledProgramsPassTheIndependentAuditor) {
  arch::ArchConfig cfg;
  compiler::ArchDescription ad(cfg);
  for (compiler::Mode mode : {compiler::Mode::kBaseline, compiler::Mode::kAlgorithm1,
                              compiler::Mode::kAlgorithm2, compiler::Mode::kCoarseGrain}) {
    ir::Program prog = RandomIrProgram(GetParam());
    compiler::CompileOptions opt;
    opt.mode = mode;
    opt.verify_after = false;  // verified explicitly below
    compiler::Compile(prog, ad, opt);
    verify::Report rep = verify::VerifyProgram(prog);
    EXPECT_EQ(rep.ErrorCount(), 0)
        << "seed " << GetParam() << " mode " << compiler::ModeName(mode) << "\n"
        << prog.ToString() << rep.ToText();
  }
}

INSTANTIATE_TEST_SUITE_P(IrSeeds, FuzzIrSeeds,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                                           15, 16, 17, 18, 19, 20, 101, 202, 303, 404));

}  // namespace
}  // namespace ndc::runtime
