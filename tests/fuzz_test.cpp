// Randomized robustness tests: arbitrary (valid) traces over arbitrary
// address mixes, run under every policy, must always run to completion —
// no deadlocks, no lost completions — and deterministically.

#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "arch/trace.hpp"
#include "ndc/machine.hpp"
#include "ndc/policy.hpp"
#include "sim/rng.hpp"

namespace ndc::runtime {
namespace {

using arch::Instr;
using arch::MakeCompute;
using arch::MakeLoad;
using arch::MakePreCompute;
using arch::MakeStore;
using arch::Op;
using arch::Trace;

// Generates a random but structurally valid trace: loads with optional
// address deps, candidate computes over two previous loads, pre-computes
// with random planned locations/timeouts, dependent stores.
Trace RandomTrace(sim::Rng& rng, int len) {
  Trace t;
  std::vector<int> loads;
  auto rand_addr = [&] {
    // Mix of pages, lines, and nearby offsets to hit every component mix.
    return static_cast<sim::Addr>(rng.NextBelow(1u << 22)) & ~sim::Addr{7};
  };
  while (static_cast<int>(t.size()) < len) {
    switch (rng.NextBelow(10)) {
      case 0: case 1: case 2: case 3: {
        Instr ld = MakeLoad(rand_addr());
        if (!loads.empty() && rng.NextBool(0.2)) {
          ld.dep0 = loads[rng.NextBelow(loads.size())];
        }
        ld.pc = static_cast<std::uint32_t>(rng.NextBelow(32));
        loads.push_back(static_cast<int>(t.size()));
        t.push_back(ld);
        break;
      }
      case 4: case 5: {
        if (loads.size() < 2) break;
        int a = loads[loads.size() - 1];
        int b = loads[loads.size() - 2];
        t.push_back(MakeCompute(static_cast<Op>(rng.NextBelow(7)), a, b, true,
                                static_cast<std::uint32_t>(rng.NextBelow(32))));
        loads.clear();  // a load feeds at most one site
        break;
      }
      case 6: {
        if (loads.size() < 2) break;
        int a = loads[loads.size() - 1];
        int b = loads[loads.size() - 2];
        auto loc = static_cast<arch::Loc>(rng.NextBelow(4));
        t.push_back(MakePreCompute(static_cast<Op>(rng.NextBelow(7)), a, b, loc,
                                   rng.NextBelow(200) + 1,
                                   static_cast<std::uint32_t>(rng.NextBelow(32))));
        loads.clear();
        break;
      }
      case 7: {
        std::int32_t dep = -1;
        if (!t.empty() && rng.NextBool(0.5)) {
          dep = static_cast<std::int32_t>(rng.NextBelow(t.size()));
          if (t[static_cast<std::size_t>(dep)].kind == Instr::Kind::kStore) dep = -1;
        }
        t.push_back(MakeStore(rand_addr(), dep));
        break;
      }
      default:
        t.push_back(MakeCompute(Op::kAdd,
                                t.empty() ? -1
                                          : static_cast<std::int32_t>(rng.NextBelow(t.size())),
                                -1, false));
        if (!t.empty() &&
            t.back().dep0 >= 0 &&
            t[static_cast<std::size_t>(t.back().dep0)].kind == Instr::Kind::kStore) {
          t.back().dep0 = -1;
        }
        break;
    }
  }
  return t;
}

std::vector<Trace> RandomProgram(std::uint64_t seed, int cores, int len) {
  sim::Rng rng(seed);
  std::vector<Trace> p(static_cast<std::size_t>(cores));
  for (int c = 0; c < cores; ++c) p[static_cast<std::size_t>(c)] = RandomTrace(rng, len);
  return p;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, AllPoliciesRunToCompletion) {
  arch::ArchConfig cfg;
  std::vector<Trace> program = RandomProgram(GetParam(), 25, 120);

  // Baseline + observe + every hardware policy.
  std::vector<std::unique_ptr<Policy>> policies;
  policies.push_back(nullptr);
  policies.push_back(std::make_unique<AlwaysWaitPolicy>(cfg));
  policies.push_back(std::make_unique<LastWaitPolicy>(cfg));
  policies.push_back(std::make_unique<MarkovWaitPolicy>(cfg));

  for (auto& pol : policies) {
    MachineOptions opts;
    opts.policy = pol.get();
    Machine m(cfg, opts);
    m.LoadProgram(program);
    RunResult r = m.Run(/*limit=*/50'000'000);
    EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u)
        << "seed " << GetParam() << " policy " << (pol ? pol->name() : "none");
  }

  // Observation mode.
  MachineOptions obs;
  obs.observe = true;
  Machine m(cfg, obs);
  m.LoadProgram(program);
  RunResult r = m.Run(50'000'000);
  EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u);
}

TEST_P(FuzzSeeds, DeterministicUnderDefaultPolicy) {
  arch::ArchConfig cfg;
  std::vector<Trace> program = RandomProgram(GetParam() * 77 + 5, 25, 80);
  sim::Cycle first = 0;
  for (int run = 0; run < 2; ++run) {
    AlwaysWaitPolicy pol(cfg);
    MachineOptions opts;
    opts.policy = &pol;
    Machine m(cfg, opts);
    m.LoadProgram(program);
    RunResult r = m.Run(50'000'000);
    if (run == 0) {
      first = r.makespan;
    } else {
      EXPECT_EQ(r.makespan, first);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Values(1, 2, 3, 4, 5, 11, 23, 42));

}  // namespace
}  // namespace ndc::runtime
