// src/harness unit tests: the JSON codec, cache-key semantics, CellResult
// round-tripping, the on-disk result cache, the work-stealing pool, and the
// warm-sweep zero-simulation guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "harness/cache.hpp"
#include "harness/figures.hpp"
#include "harness/pool.hpp"
#include "harness/sweep.hpp"

namespace ndc::harness {
namespace {

// --------------------------------------------------------------- json ---

TEST(Json, DumpIsDeterministicAndParsesBack) {
  json::Value v = json::Value::Object();
  v.obj["b"] = json::Value::Int(42);
  v.obj["a"] = json::Value::Str("x\"y\n");
  v.obj["c"] = json::Value::Array();
  v.obj["c"].arr.push_back(json::Value::Bool(true));
  v.obj["c"].arr.push_back(json::Value::Double(1.5));
  v.obj["c"].arr.push_back(json::Value::Null());

  std::string s = json::Dump(v);
  EXPECT_EQ(s, "{\"a\":\"x\\\"y\\n\",\"b\":42,\"c\":[true,1.5,null]}");

  json::Value back;
  ASSERT_TRUE(json::Parse(s, &back));
  EXPECT_EQ(json::Dump(back), s);
}

TEST(Json, RejectsMalformedInput) {
  json::Value v;
  EXPECT_FALSE(json::Parse("{\"a\":}", &v));
  EXPECT_FALSE(json::Parse("[1,2", &v));
  EXPECT_FALSE(json::Parse("{} trailing", &v));
  EXPECT_FALSE(json::Parse("", &v));
}

TEST(Json, RoundTripsLargeIntegersExactly) {
  json::Value v = json::Value::Int(18446744073709551615ull);
  json::Value back;
  ASSERT_TRUE(json::Parse(json::Dump(v), &back));
  EXPECT_EQ(back.AsU64(), 18446744073709551615ull);
}

// --------------------------------------------------------------- keys ---

TEST(CellSpec, KeyIsStableAndSensitiveToSemanticFields) {
  CellSpec a;
  a.workload = "md";
  a.scale = workloads::Scale::kTest;
  a.scheme = metrics::Scheme::kOracle;

  CellSpec b = a;
  EXPECT_EQ(a.Key(), b.Key());

  b.scheme = metrics::Scheme::kAlgorithm1;
  EXPECT_NE(a.Key(), b.Key());

  b = a;
  b.cfg.l2.size_bytes *= 2;
  EXPECT_NE(a.Key(), b.Key());

  b = a;
  b.seed = 7;
  EXPECT_NE(a.Key(), b.Key());

  // Sharded cells (a different same-cycle tie-break schedule) must never
  // share an entry with sequential ones, and the default must keep every
  // historical key: sim_threads is hashed only when != 1.
  b = a;
  b.sim_threads = 4;
  EXPECT_NE(a.Key(), b.Key());
  b.sim_threads = 1;
  EXPECT_EQ(a.Key(), b.Key());
}

// The variant display label is deliberately not hashed: two figures probing
// the same resolved configuration share one cache entry.
TEST(CellSpec, VariantLabelDoesNotChangeTheKey) {
  CellSpec a;
  a.workload = "md";
  a.scale = workloads::Scale::kTest;
  CellSpec b = a;
  b.variant = "default-5x5";
  EXPECT_EQ(a.Key(), b.Key());
}

// ------------------------------------------------------------- results ---

CellResult SampleResult() {
  CellResult r;
  r.makespan = 123456;
  r.baseline_makespan = 234567;
  r.l1_hits = 10;
  r.l1_misses = 3;
  r.l2_hits = 7;
  r.l2_misses = 2;
  r.candidates = 99;
  r.local_l1_skips = 5;
  r.offloads = 42;
  r.ndc_success = 40;
  r.fallbacks = 2;
  r.ndc_at_loc = {4, 3, 2, 1};
  r.chains = 6;
  r.planned = 5;
  r.transforms = 8;
  r.stats["noc.contention_cycles"] = 777;
  r.stats["core.computes"] = 1234;
  return r;
}

TEST(CellResult, JsonRoundTripPreservesEveryField) {
  CellResult r = SampleResult();
  json::Value v = r.ToJson();
  CellResult back;
  ASSERT_TRUE(CellResult::FromJson(v, &back));
  EXPECT_TRUE(r == back);
  EXPECT_EQ(back.Stat("noc.contention_cycles"), 777u);
  EXPECT_EQ(back.Stat("missing.counter"), 0u);
}

TEST(CellResult, ImprovementPctHandlesZeroBaseline) {
  CellResult r;
  r.makespan = 100;
  r.baseline_makespan = 0;
  EXPECT_EQ(r.ImprovementPct(), 0.0);
}

// --------------------------------------------------------------- cache ---

std::string UniqueCacheDir(const char* tag) {
  return testing::TempDir() + "/ndc-harness-test-" + tag;
}

TEST(ResultCache, InsertThenLookupAcrossReopen) {
  std::string dir = UniqueCacheDir("reopen");
  std::remove((dir + "/results.jsonl").c_str());

  CellSpec spec;
  spec.workload = "md";
  spec.scale = workloads::Scale::kTest;
  spec.scheme = metrics::Scheme::kOracle;
  CellResult r = SampleResult();

  {
    ResultCache cache(dir);
    ASSERT_TRUE(cache.ok());
    CellResult out;
    EXPECT_FALSE(cache.Lookup(spec, &out));
    cache.Insert(spec, r);
    EXPECT_TRUE(cache.Lookup(spec, &out));
    EXPECT_TRUE(out == r);
  }
  // A second process (re-open) sees the persisted entry, marked from_cache.
  ResultCache cache(dir);
  EXPECT_EQ(cache.load_errors(), 0u);
  CellResult out;
  ASSERT_TRUE(cache.Lookup(spec, &out));
  EXPECT_TRUE(out.from_cache);
  EXPECT_EQ(out.makespan, r.makespan);
}

TEST(ResultCache, CorruptLinesAreCountedAndSkipped) {
  std::string dir = UniqueCacheDir("corrupt");
  std::remove((dir + "/results.jsonl").c_str());
  {
    ResultCache cache(dir);  // creates the directory
    ASSERT_TRUE(cache.ok());
  }
  std::FILE* f = std::fopen((dir + "/results.jsonl").c_str(), "a");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not json\n{\"key\":\n", f);
  std::fclose(f);

  ResultCache cache(dir);
  EXPECT_EQ(cache.load_errors(), 2u);
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------- pool ---

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce) {
  std::atomic<int> counter{0};
  std::vector<std::atomic<int>> per_task(257);
  for (auto& t : per_task) t = 0;
  WorkStealingPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < per_task.size(); ++i) {
    tasks.push_back([&, i] {
      per_task[i].fetch_add(1);
      counter.fetch_add(1);
    });
  }
  pool.Run(std::move(tasks));
  EXPECT_EQ(counter.load(), 257);
  for (auto& t : per_task) EXPECT_EQ(t.load(), 1);
}

TEST(WorkStealingPool, ParallelForCoversTheFullIndexRange) {
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h = 0;
  WorkStealingPool::ParallelFor(3, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// --------------------------------------------------------------- sweep ---

SweepSpec SmallSpec() {
  SweepSpec spec;
  spec.figure = "harness-test";
  for (const char* w : {"md", "fft"}) {
    for (metrics::Scheme s : {metrics::Scheme::kBaseline, metrics::Scheme::kOracle}) {
      CellSpec cell;
      cell.workload = w;
      cell.scale = workloads::Scale::kTest;
      cell.scheme = s;
      spec.cells.push_back(cell);
    }
  }
  return spec;
}

TEST(Sweep, WarmRerunPerformsZeroSimulatorInvocations) {
  std::string dir = UniqueCacheDir("warm");
  std::remove((dir + "/results.jsonl").c_str());
  SweepSpec spec = SmallSpec();

  SweepOptions opt;
  opt.jobs = 2;
  opt.cache_dir = dir;

  SweepResult cold = RunSweep(spec, opt);
  EXPECT_EQ(cold.summary.sim_invocations, spec.cells.size());
  EXPECT_EQ(cold.summary.cache_hits, 0u);

  SweepResult warm = RunSweep(spec, opt);
  EXPECT_EQ(warm.summary.sim_invocations, 0u);
  EXPECT_EQ(warm.summary.cache_hits, spec.cells.size());
  ASSERT_EQ(warm.cells.size(), cold.cells.size());
  for (std::size_t i = 0; i < cold.cells.size(); ++i) {
    EXPECT_TRUE(warm.cells[i] == cold.cells[i]) << i;
    EXPECT_TRUE(warm.cells[i].from_cache);
  }
}

TEST(Sweep, UncachedParallelMatchesSerial) {
  SweepSpec spec = SmallSpec();
  SweepOptions serial;
  serial.jobs = 1;
  serial.use_cache = false;
  SweepOptions parallel = serial;
  parallel.jobs = 4;
  SweepResult a = RunSweep(spec, serial);
  SweepResult b = RunSweep(spec, parallel);
  for (std::size_t i = 0; i < spec.cells.size(); ++i) {
    EXPECT_TRUE(a.cells[i] == b.cells[i]) << i;
  }
}

// ------------------------------------------------------------- figures ---

TEST(Figures, RegistryKnowsEveryPaperFigure) {
  for (const char* name : {"fig02", "fig03", "fig04", "fig05", "fig06", "fig13", "fig14",
                           "fig15", "fig16", "fig17", "tab02", "abl", "smoke"}) {
    EXPECT_TRUE(HasFigure(name)) << name;
  }
  EXPECT_FALSE(HasFigure("fig99"));
}

TEST(Figures, ParallelRunRendersTheSameTableAsSerial) {
  FigureOptions opt;
  opt.scale = workloads::Scale::kTest;
  opt.only = "md";
  opt.use_cache = false;

  testing::internal::CaptureStdout();
  opt.jobs = 1;
  ASSERT_EQ(RunFigure("fig04", opt), 0);
  std::string serial = testing::internal::GetCapturedStdout();

  testing::internal::CaptureStdout();
  opt.jobs = 4;
  ASSERT_EQ(RunFigure("fig04", opt), 0);
  std::string parallel = testing::internal::GetCapturedStdout();

  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(Figures, UnknownFigureNameFails) {
  FigureOptions opt;
  EXPECT_EQ(RunFigure("not-a-figure", opt), 2);
}

// Reads every regular file under `dir` into a name -> contents map.
std::map<std::string, std::string> SlurpDir(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (!e.is_regular_file()) continue;
    std::ifstream f(e.path());
    std::ostringstream ss;
    ss << f.rdbuf();
    out[e.path().filename().string()] = ss.str();
  }
  return out;
}

// --classify/--export-obs under --jobs=N: cells re-simulate in parallel but
// their classification JSONL stream (stderr) and per-cell summary files are
// buffered and emitted in canonical cell order — byte-identical for any job
// count, run after run.
TEST(Figures, ClassifyExportIsByteStableAcrossJobs) {
  FigureOptions opt;
  opt.scale = workloads::Scale::kTest;
  opt.only = "md";
  opt.use_cache = false;
  opt.classify_window = kDefaultClassifyWindow;

  auto run = [&](int jobs, const char* tag) {
    std::string dir = UniqueCacheDir(tag);
    std::filesystem::remove_all(dir);
    opt.jobs = jobs;
    opt.export_obs = dir;
    testing::internal::CaptureStdout();
    testing::internal::CaptureStderr();
    int rc = RunFigure("fig04", opt);
    std::string out = testing::internal::GetCapturedStdout();
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_EQ(rc, 0);
    return std::make_tuple(out, err, SlurpDir(dir));
  };

  auto [out1, err1, files1] = run(1, "obs-j1");
  auto [out8a, err8a, files8a] = run(8, "obs-j8a");
  auto [out8b, err8b, files8b] = run(8, "obs-j8b");

  EXPECT_FALSE(err1.empty());
  EXPECT_FALSE(files1.empty());
  EXPECT_EQ(out1, out8a);
  EXPECT_EQ(err1, err8a) << "classification stream must not depend on --jobs";
  EXPECT_EQ(files1, files8a) << "obs summaries must not depend on --jobs";
  EXPECT_EQ(err8a, err8b) << "double run at --jobs=8 must be byte-identical";
  EXPECT_EQ(files8a, files8b);
}

// A figure regenerated under the sharded engine renders the same table for
// any parallel thread count (the machine-level 2 == 4 == 8 bit-identity,
// surfaced end-to-end through sweep, cache keys, and rendering).
TEST(Figures, ShardedFigureOutputIdenticalAcrossThreadCounts) {
  FigureOptions opt;
  opt.scale = workloads::Scale::kTest;
  opt.only = "md";
  opt.use_cache = false;

  testing::internal::CaptureStdout();
  opt.sim_threads = 2;
  ASSERT_EQ(RunFigure("fig04", opt), 0);
  std::string two = testing::internal::GetCapturedStdout();

  testing::internal::CaptureStdout();
  opt.sim_threads = 8;
  opt.jobs = 4;  // sweep-level and simulation-level parallelism compose
  ASSERT_EQ(RunFigure("fig04", opt), 0);
  std::string eight = testing::internal::GetCapturedStdout();

  EXPECT_FALSE(two.empty());
  EXPECT_EQ(two, eight);
}

}  // namespace
}  // namespace ndc::harness
