// Tests for the loop-transformation machinery: legality (T*D columns
// lexicographically positive), the paper's solve-for-T formulation, the
// candidate generator, and the objective-driven search.

#include <gtest/gtest.h>

#include "xform/transform.hpp"

namespace ndc::xform {
namespace {

using ir::IntMat;
using ir::IntVec;

IntMat DepMatrix(std::vector<IntVec> cols) {
  int depth = static_cast<int>(cols[0].size());
  IntMat d(depth, static_cast<int>(cols.size()));
  for (int c = 0; c < d.cols(); ++c) {
    for (int r = 0; r < depth; ++r) d.at(r, c) = cols[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)];
  }
  return d;
}

TEST(Legality, IdentityIsAlwaysLegal) {
  IntMat d = DepMatrix({{1, 0}, {0, 1}, {1, -1}});
  EXPECT_TRUE(IsLegalTransform(IntMat::Identity(2), d));
}

TEST(Legality, EmptyDependenceMatrixAcceptsAnyUnimodular) {
  IntMat d(2, 0);
  IntMat interchange(2, 2, {0, 1, 1, 0});
  EXPECT_TRUE(IsLegalTransform(interchange, d));
}

TEST(Legality, InterchangeIllegalForAntiDiagonalDep) {
  // Dependence (1, -1): interchange maps it to (-1, 1), lex-negative.
  IntMat d = DepMatrix({{1, -1}});
  IntMat interchange(2, 2, {0, 1, 1, 0});
  EXPECT_FALSE(IsLegalTransform(interchange, d));
}

TEST(Legality, SkewLegalizesWavefront) {
  // Classic: deps (1,0) and (0,1); skew T = [[1,0],[1,1]] keeps both legal.
  IntMat d = DepMatrix({{1, 0}, {0, 1}});
  IntMat skew(2, 2, {1, 0, 1, 1});
  EXPECT_TRUE(IsLegalTransform(skew, d));
}

TEST(Legality, NonUnimodularRejected) {
  IntMat d(2, 0);
  IntMat scale(2, 2, {2, 0, 0, 1});
  EXPECT_FALSE(IsLegalTransform(scale, d));
}

TEST(SolveForT, RecoversIdentity) {
  std::vector<std::pair<IntVec, IntVec>> pairs = {{{1, 0}, {1, 0}}, {{0, 1}, {0, 1}}};
  IntMat t;
  ASSERT_TRUE(SolveForTransform(pairs, 2, &t));
  EXPECT_EQ(t, IntMat::Identity(2));
}

TEST(SolveForT, RecoversInterchange) {
  std::vector<std::pair<IntVec, IntVec>> pairs = {{{1, 0}, {0, 1}}, {{0, 1}, {1, 0}}};
  IntMat t;
  ASSERT_TRUE(SolveForTransform(pairs, 2, &t));
  EXPECT_EQ(t.Apply({1, 0}), (IntVec{0, 1}));
  EXPECT_EQ(t.Apply({0, 1}), (IntVec{1, 0}));
  EXPECT_TRUE(t.IsUnimodular());
}

TEST(SolveForT, RecoversSkewFromConstraints) {
  // T maps (1,0)->(1,1) and (0,1)->(0,1): the skew [[1,0],[1,1]].
  std::vector<std::pair<IntVec, IntVec>> pairs = {{{1, 0}, {1, 1}}, {{0, 1}, {0, 1}}};
  IntMat t;
  ASSERT_TRUE(SolveForTransform(pairs, 2, &t));
  EXPECT_EQ(t, IntMat(2, 2, {1, 0, 1, 1}));
}

TEST(SolveForT, UnderdeterminedCompletesToUnimodular) {
  // One constraint in 2-D: free row completed toward the identity.
  std::vector<std::pair<IntVec, IntVec>> pairs = {{{1, 0}, {1, 0}}};
  IntMat t;
  ASSERT_TRUE(SolveForTransform(pairs, 2, &t));
  EXPECT_TRUE(t.IsUnimodular());
  EXPECT_EQ(t.Apply({1, 0}), (IntVec{1, 0}));
}

TEST(SolveForT, RejectsNonUnimodularRequirement) {
  // (1,0)->(2,0) and (0,1)->(0,1) forces det 2.
  std::vector<std::pair<IntVec, IntVec>> pairs = {{{1, 0}, {2, 0}}, {{0, 1}, {0, 1}}};
  IntMat t;
  EXPECT_FALSE(SolveForTransform(pairs, 2, &t));
}

TEST(Candidates, AllUnimodularProperty) {
  for (int depth : {2, 3}) {
    auto cands = CandidateTransforms(depth);
    EXPECT_GT(cands.size(), 10u);
    for (const IntMat& t : cands) {
      ASSERT_TRUE(t.IsUnimodular()) << t.ToString();
    }
  }
}

TEST(Candidates, ContainIdentityAndInterchange) {
  auto cands = CandidateTransforms(2);
  bool id = false, inter = false;
  for (const IntMat& t : cands) {
    if (t == IntMat::Identity(2)) id = true;
    if (t == IntMat(2, 2, {0, 1, 1, 0})) inter = true;
  }
  EXPECT_TRUE(id);
  EXPECT_TRUE(inter);
}

TEST(FindTransform, PicksLegalMinimizer) {
  // Objective rewards interchange, but the (1,-1) dependence forbids it:
  // the search must settle for something legal.
  IntMat d = DepMatrix({{1, -1}});
  IntMat best = FindTransform(d, 2, [](const IntMat& t) {
    return t == IntMat(2, 2, {0, 1, 1, 0}) ? 0.0 : 1.0;
  });
  EXPECT_TRUE(IsLegalTransform(best, d));
  EXPECT_NE(best, IntMat(2, 2, {0, 1, 1, 0}));
}

TEST(FindTransform, ReturnsIdentityWhenNothingBeatsIt) {
  IntMat d = DepMatrix({{1, 0}});
  IntMat best = FindTransform(d, 2, [](const IntMat& t) {
    return t == IntMat::Identity(2) ? 0.0 : 1.0;
  });
  EXPECT_EQ(best, IntMat::Identity(2));
}

TEST(FindTransform, HonorsObjectiveAmongLegal) {
  IntMat d(2, 0);  // everything legal
  IntMat want(2, 2, {1, 2, 0, 1});
  IntMat best = FindTransform(d, 2, [&](const IntMat& t) {
    return t == want ? -1.0 : 1.0;
  });
  EXPECT_EQ(best, want);
}

// --- edge cases ----------------------------------------------------------

TEST(Legality, EmptyDependenceMatrixDepthOne) {
  // A depth-1 nest with no dependences: the only unimodular 1x1 transforms
  // are (1) and (-1), and both are legal against an empty D.
  IntMat d(1, 0);
  EXPECT_TRUE(IsLegalTransform(IntMat(1, 1, {1}), d));
  EXPECT_TRUE(IsLegalTransform(IntMat(1, 1, {-1}), d));
  EXPECT_FALSE(IsLegalTransform(IntMat(1, 1, {2}), d));  // still not unimodular
}

TEST(Legality, NonUnimodularRejectedEvenWhenTDStaysPositive) {
  // T = diag(2,1) maps (1,0) to (2,0) — lex-positive — but T is not a
  // bijection on the lattice, so it must be rejected regardless of D.
  IntMat d = DepMatrix({{1, 0}});
  EXPECT_FALSE(IsLegalTransform(IntMat(2, 2, {2, 0, 0, 1}), d));
}

TEST(Legality, SingularRejected) {
  IntMat d(2, 0);
  EXPECT_FALSE(IsLegalTransform(IntMat(2, 2, {1, 1, 1, 1}), d));
}

TEST(Legality, ZeroDistanceColumnRejectsEverything) {
  // A zero column can never be made lex-positive: even the identity fails.
  // (The dependence-matrix builder drops zero distances for this reason.)
  IntMat d = DepMatrix({{0, 0}});
  EXPECT_FALSE(IsLegalTransform(IntMat::Identity(2), d));
}

TEST(SolveForT, EmptyPairListCompletesToIdentity) {
  std::vector<std::pair<IntVec, IntVec>> pairs;
  IntMat t;
  ASSERT_TRUE(SolveForTransform(pairs, 2, &t));
  EXPECT_EQ(t, IntMat::Identity(2));
}

TEST(SolveForT, ContradictoryPairsRejected) {
  // The same source iteration cannot map to two different targets.
  std::vector<std::pair<IntVec, IntVec>> pairs = {{{1, 0}, {1, 0}}, {{1, 0}, {0, 1}}};
  IntMat t;
  EXPECT_FALSE(SolveForTransform(pairs, 2, &t));
}

TEST(SolveForT, RecoversPermutationThenSkewComposition) {
  // T = skew(1,0,+1) * interchange = [[0,1],[1,1]]: maps (1,0)->(0,1) and
  // (0,1)->(1,1). The solver must reproduce the composition exactly.
  std::vector<std::pair<IntVec, IntVec>> pairs = {{{1, 0}, {0, 1}}, {{0, 1}, {1, 1}}};
  IntMat t;
  ASSERT_TRUE(SolveForTransform(pairs, 2, &t));
  EXPECT_EQ(t, IntMat(2, 2, {0, 1, 1, 1}));
  EXPECT_TRUE(t.IsUnimodular());
}

TEST(Candidates, SkewsReachMaxSkewBounds) {
  // With max_skew = 3 the family must contain skews with entries +3 and -3,
  // and nothing beyond.
  ir::Int max_skew = 3;
  auto cands = CandidateTransforms(2, max_skew);
  bool plus = false, minus = false;
  ir::Int largest = 0;
  for (const IntMat& t : cands) {
    for (int r = 0; r < t.rows(); ++r) {
      for (int c = 0; c < t.cols(); ++c) {
        largest = std::max<ir::Int>(largest, t.at(r, c) < 0 ? -t.at(r, c) : t.at(r, c));
        if (r != c) {
          plus |= t.at(r, c) == max_skew;
          minus |= t.at(r, c) == -max_skew;
        }
      }
    }
  }
  EXPECT_TRUE(plus);
  EXPECT_TRUE(minus);
  EXPECT_LE(largest, max_skew);
}

TEST(Candidates, ContainPermutationThenSkewCompositions) {
  // The generator composes skew * permutation; [[0,1],[1,1]] (interchange
  // followed by a unit skew) must be present, and every composition stays
  // unimodular.
  auto cands = CandidateTransforms(2);
  bool found = false;
  for (const IntMat& t : cands) {
    found |= t == IntMat(2, 2, {0, 1, 1, 1});
    ASSERT_TRUE(t.IsUnimodular()) << t.ToString();
  }
  EXPECT_TRUE(found);
}

TEST(FindTransform, SkewAtBoundLegalizesDeepDependence) {
  // Dependence (1,-3) needs a skew of +3 on the inner row to become
  // lex-positive in both components; only max_skew >= 3 families reach it.
  IntMat d = DepMatrix({{1, -3}});
  IntMat skew3(2, 2, {1, 0, 3, 1});
  EXPECT_TRUE(IsLegalTransform(skew3, d));
  IntMat skew2(2, 2, {1, 0, 2, 1});
  // skew2 maps (1,-3) to (1,-1): first component positive, still legal.
  EXPECT_TRUE(IsLegalTransform(skew2, d));
}

}  // namespace
}  // namespace ndc::xform
