// Machine-level tests for conservative-window parallel simulation
// (DESIGN.md §14): eligible baseline runs shard into mesh quadrants and
// must produce bit-identical RunResults and StatSets for every parallel
// thread count (2, 4, 8 — the shard topology, window schedule, and mailbox
// merge order are fixed by the config, not by thread interleaving). The
// sharded engine is a *different, equally valid* same-cycle tie-break
// schedule than the sequential engine (which orders same-cycle events by
// global schedule-call time; shards order them local-first, then canonical
// mailbox order), so vs. sim_threads=1 only tie-break-insensitive outcomes
// are exact and contention-sensitive aggregates agree to a tight tolerance.
// Ineligible runs (policy, sync, faults) silently degrade to the sequential
// engine and agree bit-for-bit trivially — pinned down here too.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/config.hpp"
#include "fault/fault.hpp"
#include "metrics/experiment.hpp"
#include "ndc/machine.hpp"
#include "ndc/policy.hpp"
#include "workloads/workloads.hpp"

namespace ndc::runtime {
namespace {

RunResult RunBaseline(const std::string& workload, int sim_threads,
                      bool* was_sharded = nullptr, std::uint64_t seed = 1) {
  arch::ArchConfig cfg;
  metrics::Experiment e(workload, workloads::Scale::kTest, cfg, seed);
  MachineOptions opts;
  opts.sim_threads = sim_threads;
  Machine m(cfg, opts);
  m.LoadProgram(e.BaselineTraces());
  RunResult r = m.Run();
  if (was_sharded != nullptr) *was_sharded = m.sharded_queue() != nullptr;
  return r;
}

void ExpectIdentical(const RunResult& a, const RunResult& b, const std::string& label) {
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.l1_hits, b.l1_hits) << label;
  EXPECT_EQ(a.l1_misses, b.l1_misses) << label;
  EXPECT_EQ(a.l2_hits, b.l2_hits) << label;
  EXPECT_EQ(a.l2_misses, b.l2_misses) << label;
  EXPECT_EQ(a.candidates, b.candidates) << label;
  EXPECT_EQ(a.local_l1_skips, b.local_l1_skips) << label;
  EXPECT_EQ(a.offloads, b.offloads) << label;
  EXPECT_EQ(a.ndc_success, b.ndc_success) << label;
  EXPECT_EQ(a.fallbacks, b.fallbacks) << label;
  EXPECT_EQ(a.ndc_at_loc, b.ndc_at_loc) << label;
  EXPECT_EQ(a.sync_values, b.sync_values) << label;
  // Full merged StatSet: every component counter, key set and values.
  EXPECT_EQ(a.stats.all(), b.stats.all()) << label;
}

TEST(PdesMachine, ShardsEligibleBaselineRunsOnly) {
  bool sharded = false;
  RunBaseline("swim", 1, &sharded);
  EXPECT_FALSE(sharded) << "sim_threads=1 must use the sequential engine";
  RunBaseline("swim", 8, &sharded);
  EXPECT_TRUE(sharded) << "an eligible baseline run must shard";
}

// The acceptance bar of the PDES work: same seed, any *parallel* thread
// count, exactly the same answer. Determinism comes from structure, not
// luck: quadrant shard map, window schedule, and per-(src,dst) mailbox
// merge order are functions of the config alone. Covers stencil (swim),
// butterfly (fft), and blocked triangular (cholesky) traffic at two seeds.
TEST(PdesMachine, ShardedRunsBitIdenticalAcrossThreadCounts) {
  for (const std::string wl : {"swim", "fft", "cholesky"}) {
    for (std::uint64_t seed : {1ull, 42ull}) {
      const std::string tag = wl + " seed " + std::to_string(seed);
      bool sharded = false;
      RunResult r2 = RunBaseline(wl, 2, &sharded, seed);
      ASSERT_TRUE(sharded) << tag;
      RunResult r4 = RunBaseline(wl, 4, &sharded, seed);
      ASSERT_TRUE(sharded) << tag;
      RunResult r8 = RunBaseline(wl, 8, &sharded, seed);
      ASSERT_TRUE(sharded) << tag;
      ExpectIdentical(r2, r4, tag + ": 2 vs 4 threads");
      ExpectIdentical(r4, r8, tag + ": 4 vs 8 threads");
    }
  }
}

// |a - b| <= pct% of max(a, b); failure prints both values.
void ExpectWithin(std::uint64_t a, std::uint64_t b, double pct, const std::string& label) {
  std::uint64_t hi = a > b ? a : b;
  std::uint64_t diff = a > b ? a - b : b - a;
  EXPECT_LE(static_cast<double>(diff), pct / 100.0 * static_cast<double>(hi))
      << label << ": " << a << " vs " << b;
}

// Sharded vs sequential: both engines execute every event at the same
// cycle it was scheduled for — only the *order within a cycle* differs
// (shards run their local FIFO first, then the canonical mailbox merge,
// while the sequential engine interleaves all nodes in global schedule-call
// order). Tie-break-insensitive outcomes (candidate detection, offload
// decisions, sync values) must be exactly equal; contention-resolution
// aggregates (who wins a same-cycle bank/link race → row hits, queue
// waits, makespan) may drift, bounded tightly here.
TEST(PdesMachine, ShardedAgreesWithSequentialUpToSameCycleTieBreaks) {
  for (const std::string wl : {"swim", "fft", "cholesky"}) {
    for (std::uint64_t seed : {1ull, 42ull}) {
      const std::string tag = wl + " seed " + std::to_string(seed) + ": 1 vs 2 threads";
      RunResult r1 = RunBaseline(wl, 1, nullptr, seed);
      bool sharded = false;
      RunResult r2 = RunBaseline(wl, 2, &sharded, seed);
      ASSERT_TRUE(sharded) << tag;
      EXPECT_EQ(r1.candidates, r2.candidates) << tag;
      EXPECT_EQ(r1.offloads, r2.offloads) << tag;
      EXPECT_EQ(r1.ndc_success, r2.ndc_success) << tag;
      EXPECT_EQ(r1.fallbacks, r2.fallbacks) << tag;
      EXPECT_EQ(r1.ndc_at_loc, r2.ndc_at_loc) << tag;
      EXPECT_EQ(r1.sync_values, r2.sync_values) << tag;
      ExpectWithin(r1.makespan, r2.makespan, 2.0, tag + " makespan");
      ExpectWithin(r1.events, r2.events, 2.0, tag + " events");
      ExpectWithin(r1.l1_hits, r2.l1_hits, 2.0, tag + " l1_hits");
      // Small-count and eviction-order-sensitive (a skip needs the line
      // still resident when the second load issues), so a wider band.
      ExpectWithin(r1.local_l1_skips, r2.local_l1_skips, 5.0, tag + " local_l1_skips");
    }
  }
}

TEST(PdesMachine, PolicyRunsDegradeToSequentialAndAgree) {
  arch::ArchConfig cfg;
  metrics::Experiment e("md", workloads::Scale::kTest, cfg);
  std::vector<arch::Trace> traces = e.BaselineTraces();
  RunResult runs[2];
  for (int i = 0; i < 2; ++i) {
    AlwaysWaitPolicy policy(cfg);
    MachineOptions opts;
    opts.policy = &policy;
    opts.sim_threads = i == 0 ? 1 : 8;
    Machine m(cfg, opts);
    m.LoadProgram(traces);
    runs[i] = m.Run();
    EXPECT_EQ(m.sharded_queue(), nullptr) << "policy runs must not shard";
  }
  ExpectIdentical(runs[0], runs[1], "policy run, 1 vs 8 sim threads");
}

TEST(PdesMachine, SyncWorkloadsDegradeToSequentialAndAgree) {
  arch::ArchConfig cfg;
  metrics::Experiment e("shard.reduce.atomic", workloads::Scale::kTest, cfg);
  std::vector<arch::Trace> traces = e.BaselineTraces();
  RunResult runs[2];
  for (int i = 0; i < 2; ++i) {
    MachineOptions opts;
    opts.sim_threads = i == 0 ? 1 : 8;
    Machine m(cfg, opts);
    m.LoadProgram(traces);
    runs[i] = m.Run();
    EXPECT_EQ(m.sharded_queue(), nullptr) << "kSync traces must not shard";
  }
  ASSERT_FALSE(runs[0].sync_values.empty());
  ExpectIdentical(runs[0], runs[1], "sync run, 1 vs 8 sim threads");
}

TEST(PdesMachine, FaultStormConservesRequestsAtSimThreads8) {
  fault::FaultSchedule s;
  s.seed = 11;
  s.link_faults.push_back({3, 0, 50'000, 12, 0.4});
  s.link_faults.push_back({17, 0, 50'000, 0, 0.6});
  s.bank_faults.push_back({0, 1, 0, 20'000, fault::BankFaultKind::kNack});
  s.mc_pressure.push_back({0, 0, 30'000, 24});
  s.resilience.max_retries = 2;
  s.resilience.backoff_mult = 2.0;
  s.resilience.retransmit_delay = 16;
  s.resilience.nack_backoff = 32;
  fault::FaultInjector inj(s);

  arch::ArchConfig cfg;
  metrics::Experiment e("fft", workloads::Scale::kTest, cfg);
  MachineOptions opts;
  opts.faults = &inj;
  opts.sim_threads = 8;
  Machine m(cfg, opts);
  m.LoadProgram(e.BaselineTraces());
  m.Run();
  EXPECT_EQ(m.sharded_queue(), nullptr) << "faulted runs must not shard";
  fault::ConservationReport rep = fault::CheckConservation(m.GatherConservation());
  EXPECT_TRUE(rep.ok) << rep.ToString();
}

}  // namespace
}  // namespace ndc::runtime
