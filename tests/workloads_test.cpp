// Tests for the 20 benchmark stand-ins: they build at every scale, resolve
// every address in bounds, scale monotonically, and are deterministic.

#include <gtest/gtest.h>

#include "compiler/codegen.hpp"
#include "workloads/workloads.hpp"

namespace ndc::workloads {
namespace {

TEST(Registry, TwentyBenchmarksInPaperOrder) {
  auto names = BenchmarkNames();
  ASSERT_EQ(names.size(), 20u);
  EXPECT_EQ(names.front(), "md");
  EXPECT_EQ(names[9], "smith.wa");
  EXPECT_EQ(names.back(), "water");
}

TEST(Registry, InfoHasSuitesAndPatterns) {
  for (const WorkloadInfo& w : AllWorkloads()) {
    EXPECT_TRUE(w.suite == "SPEC OMP" || w.suite == "SPLASH-2") << w.name;
    EXPECT_FALSE(w.pattern.empty());
  }
}

TEST(Build, UnknownNameThrows) {
  EXPECT_THROW(BuildWorkload("nosuch", Scale::kTest), std::invalid_argument);
}

class PerBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(PerBenchmark, BuildsAtTestScale) {
  ir::Program p = BuildWorkload(GetParam(), Scale::kTest);
  EXPECT_FALSE(p.nests.empty());
  EXPECT_GE(p.arrays.size(), 2u);
  for (const ir::LoopNest& nest : p.nests) {
    EXPECT_FALSE(nest.body.empty());
    EXPECT_GT(nest.NumIterations(), 0);
  }
}

TEST_P(PerBenchmark, AllAddressesResolveInBounds) {
  ir::Program p = BuildWorkload(GetParam(), Scale::kTest);
  for (const ir::LoopNest& nest : p.nests) {
    nest.ForEachIteration([&](const ir::IntVec& iter) {
      for (const ir::Stmt& s : nest.body) {
        for (const ir::Operand* op : {&s.rhs0, &s.rhs1, &s.lhs}) {
          if (!op->IsMemory()) continue;
          auto addr = p.ResolveAddr(*op, iter);
          ASSERT_TRUE(addr.has_value())
              << GetParam() << " stmt " << s.id << " iter0=" << iter[0];
        }
      }
    });
  }
}

TEST_P(PerBenchmark, ScalesGrowMonotonically) {
  ir::Program small = BuildWorkload(GetParam(), Scale::kTest);
  ir::Program big = BuildWorkload(GetParam(), Scale::kSmall);
  ir::Int si = 0, bi = 0;
  for (const auto& n : small.nests) si += n.NumIterations();
  for (const auto& n : big.nests) bi += n.NumIterations();
  EXPECT_GT(bi, si);
}

TEST_P(PerBenchmark, DeterministicForSameSeed) {
  ir::Program a = BuildWorkload(GetParam(), Scale::kTest, 3);
  ir::Program b = BuildWorkload(GetParam(), Scale::kTest, 3);
  ASSERT_EQ(a.index_data.size(), b.index_data.size());
  for (const auto& [id, data] : a.index_data) {
    EXPECT_EQ(data, b.index_data.at(id)) << GetParam();
  }
}

TEST_P(PerBenchmark, DifferentSeedsChangeIndexData) {
  ir::Program a = BuildWorkload(GetParam(), Scale::kTest, 1);
  ir::Program b = BuildWorkload(GetParam(), Scale::kTest, 2);
  bool any_indirect = !a.index_data.empty();
  if (!any_indirect) GTEST_SKIP() << "no index arrays in " << GetParam();
  bool differs = false;
  for (const auto& [id, data] : a.index_data) {
    if (data != b.index_data.at(id)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST_P(PerBenchmark, LowersToNonEmptyTraces) {
  ir::Program p = BuildWorkload(GetParam(), Scale::kTest);
  compiler::CodegenResult r = compiler::Lower(p, 25);
  EXPECT_GT(r.total_instrs, 100u);
  int active = 0;
  for (const auto& t : r.traces) active += !t.empty();
  EXPECT_GE(active, 10) << "most cores should have work";  // bwaves has a 12-trip outer loop at test scale
}

INSTANTIATE_TEST_SUITE_P(All, PerBenchmark, ::testing::ValuesIn(BenchmarkNames()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (char& c : n) {
                             if (c == '.') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace ndc::workloads
