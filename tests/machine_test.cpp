// Integration tests for the full machine: memory hierarchy timing, NUCA
// homing, NDC offload execution at each location kind, time-outs and
// fallbacks, and the observation (quantification) mode of Section 4.

#include <gtest/gtest.h>

#include "arch/config.hpp"
#include "arch/trace.hpp"
#include "ndc/machine.hpp"
#include "ndc/policy.hpp"

namespace ndc::runtime {
namespace {

using arch::ArchConfig;
using arch::Instr;
using arch::Loc;
using arch::MakeCompute;
using arch::MakeLoad;
using arch::MakePreCompute;
using arch::MakeStore;
using arch::Op;
using arch::Trace;

// Two addresses with the same L2 home bank (node 0) but different L1 lines.
constexpr sim::Addr kAddrA = 0;
constexpr sim::Addr kAddrB = 256ull * 25;  // home = (B/256) % 25 = 0

std::vector<Trace> Program(sim::NodeId core, Trace t, int num_cores = 25) {
  std::vector<Trace> p(static_cast<std::size_t>(num_cores));
  p[static_cast<std::size_t>(core)] = std::move(t);
  return p;
}

TEST(Machine, SingleLoadMissTraversesHierarchy) {
  ArchConfig cfg;
  Machine m(cfg);
  m.LoadProgram(Program(6, {MakeLoad(kAddrA)}));
  RunResult r = m.Run();
  EXPECT_EQ(r.l1_misses, 1u);
  EXPECT_EQ(r.l2_misses, 1u);
  // L1 tag check + request to home + L2 access + MC round trip + responses.
  EXPECT_GT(r.makespan, cfg.l2.access_latency + cfg.dram.row_miss_latency);
  EXPECT_LT(r.makespan, 500u);
}

TEST(Machine, SecondAccessToSameLineHitsL1) {
  ArchConfig cfg;
  Machine m(cfg);
  Trace t{MakeLoad(kAddrA), MakeLoad(kAddrA + 8)};
  t[1].dep0 = 0;  // force ordering so the fill has landed
  m.LoadProgram(Program(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.l1_misses, 1u);
  EXPECT_EQ(r.l1_hits, 1u);
}

TEST(Machine, L2HitIsFasterThanMemoryAccess) {
  ArchConfig cfg;
  // Two cores read the same L2 line; the second (delayed) gets an L2 hit.
  Machine miss_machine(cfg);
  miss_machine.LoadProgram(Program(6, {MakeLoad(kAddrA)}));
  sim::Cycle miss_time = miss_machine.Run().makespan;

  Machine m(cfg);
  std::vector<Trace> p(25);
  p[6] = {MakeLoad(kAddrA)};
  // Core 7: long dependent chain, then read a different word of A's L2 line
  // (different L1 line to avoid its own L1).
  Trace t7;
  t7.push_back(MakeCompute(Op::kAdd, -1, -1, false));
  for (int i = 1; i < 400; ++i) t7.push_back(MakeCompute(Op::kAdd, i - 1, -1, false));
  t7.push_back(MakeLoad(kAddrA + 64, 399));
  p[7] = std::move(t7);
  m.LoadProgram(std::move(p));
  RunResult r = m.Run();
  EXPECT_EQ(r.l2_hits, 1u);
  EXPECT_EQ(r.l2_misses, 1u);
  // Core 7 issues its load at ~cycle 400 (serial 400-compute chain); the L2
  // hit must finish well before a full memory access would have.
  EXPECT_LT(r.makespan, 400 + miss_time);
  EXPECT_GT(r.makespan, 400u);
}

TEST(Machine, StoreGeneratesWriteTraffic) {
  ArchConfig cfg;
  Machine m(cfg);
  m.LoadProgram(Program(3, {MakeStore(0x12345)}));
  RunResult r = m.Run();
  EXPECT_GT(r.stats.Get("noc.packets"), 0u);
}

TEST(Machine, CandidateWithoutPolicyRunsConventionally) {
  ArchConfig cfg;
  Machine m(cfg);
  Trace t{MakeLoad(kAddrA), MakeLoad(kAddrB), MakeCompute(Op::kAdd, 0, 1, true)};
  m.LoadProgram(Program(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.ndc_success, 0u);
  EXPECT_EQ(r.offloads, 0u);
  EXPECT_EQ(r.l1_misses, 2u);
}

TEST(Machine, AlwaysWaitPolicyPerformsNdc) {
  ArchConfig cfg;
  AlwaysWaitPolicy policy(cfg);
  MachineOptions opts;
  opts.policy = &policy;
  Machine m(cfg, opts);
  Trace t{MakeLoad(kAddrA), MakeLoad(kAddrB), MakeCompute(Op::kAdd, 0, 1, true)};
  m.LoadProgram(Program(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.candidates, 1u);
  EXPECT_EQ(r.offloads, 1u);
  EXPECT_EQ(r.ndc_success, 1u);
  EXPECT_EQ(r.fallbacks, 0u);
  // Responses were squashed before reaching the core: L1 must not contain
  // the operand lines afterwards (the locality cost of NDC).
  EXPECT_FALSE(m.l1(6).Contains(kAddrA));
  EXPECT_FALSE(m.l1(6).Contains(kAddrB));
}

TEST(Machine, ControlRegisterRestrictsLocation) {
  ArchConfig cfg;
  cfg.control_register = arch::LocBit(Loc::kCacheCtrl);
  AlwaysWaitPolicy policy(cfg);
  MachineOptions opts;
  opts.policy = &policy;
  Machine m(cfg, opts);
  Trace t{MakeLoad(kAddrA), MakeLoad(kAddrB), MakeCompute(Op::kAdd, 0, 1, true)};
  m.LoadProgram(Program(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.ndc_success, 1u);
  EXPECT_EQ(r.ndc_at_loc[static_cast<std::size_t>(Loc::kCacheCtrl)], 1u);
  EXPECT_EQ(r.ndc_at_loc[static_cast<std::size_t>(Loc::kLinkBuffer)], 0u);
}

TEST(Machine, LocalL1HitSkipsNdc) {
  ArchConfig cfg;
  AlwaysWaitPolicy policy(cfg);
  MachineOptions opts;
  opts.policy = &policy;
  Machine m(cfg, opts);
  Trace t;
  t.push_back(MakeLoad(kAddrA));               // 0: warms L1 with A
  t.push_back(MakeLoad(kAddrA + 8, 0));        // 1: ordered after fill
  t.push_back(MakeLoad(kAddrB, 1));            // 2
  t.push_back(MakeCompute(Op::kAdd, 1, 2, true));
  m.LoadProgram(Program(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.local_l1_skips, 1u);
  EXPECT_EQ(r.offloads, 0u);
}

TEST(Machine, PreComputeExecutesAtPlannedL2Bank) {
  ArchConfig cfg;
  Machine m(cfg);
  Trace t{MakeLoad(kAddrA), MakeLoad(kAddrB),
          MakePreCompute(Op::kAdd, 0, 1, Loc::kCacheCtrl, 10000)};
  m.LoadProgram(Program(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.offloads, 1u);
  EXPECT_EQ(r.ndc_success, 1u);
  EXPECT_EQ(r.ndc_at_loc[static_cast<std::size_t>(Loc::kCacheCtrl)], 1u);
}

TEST(Machine, PreComputeShortTimeoutFallsBack) {
  ArchConfig cfg;
  Machine m(cfg);
  std::vector<Trace> p(25);
  // Core 7 warms the home L2 bank with A's line.
  p[7] = {MakeLoad(kAddrA + 64)};
  // Core 6 waits ~400 cycles, then loads A (L2 hit, data at the bank fast)
  // and B (L2 miss, data at the bank ~130+ cycles later). The pre-compute's
  // 3-cycle time-out register expires long before B arrives.
  Trace t;
  t.push_back(MakeCompute(Op::kAdd, -1, -1, false));
  for (int i = 1; i < 400; ++i) t.push_back(MakeCompute(Op::kAdd, i - 1, -1, false));
  t.push_back(MakeLoad(kAddrA, 399));  // 400
  t.push_back(MakeLoad(kAddrB, 399));  // 401
  t.push_back(MakePreCompute(Op::kAdd, 400, 401, Loc::kCacheCtrl, 3));
  p[6] = std::move(t);
  m.LoadProgram(std::move(p));
  RunResult r = m.Run();
  EXPECT_EQ(r.offloads, 1u);
  EXPECT_EQ(r.ndc_success, 0u);
  EXPECT_EQ(r.fallbacks, 1u);
  EXPECT_GT(r.stats.Get("ndc.abort.timeout") + r.stats.Get("ndc.abort.partner_done"), 0u);
}

TEST(Machine, PreComputeInfeasiblePlanFallsBack) {
  ArchConfig cfg;
  Machine m(cfg);
  // Different home banks: L2 plan infeasible.
  sim::Addr b = 256;  // home bank 1
  Trace t{MakeLoad(kAddrA), MakeLoad(b),
          MakePreCompute(Op::kAdd, 0, 1, Loc::kCacheCtrl, 10000)};
  m.LoadProgram(Program(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.ndc_success, 0u);
  EXPECT_EQ(r.stats.Get("ndc.plan_infeasible"), 1u);
  // The pre-compute still completes (conventional fallback).
  EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u);
}

TEST(Machine, RestrictOpsToAddSubBlocksMul) {
  ArchConfig cfg;
  cfg.restrict_ops_to_addsub = true;
  AlwaysWaitPolicy policy(cfg);
  MachineOptions opts;
  opts.policy = &policy;
  Machine m(cfg, opts);
  Trace t{MakeLoad(kAddrA), MakeLoad(kAddrB), MakeCompute(Op::kMul, 0, 1, true)};
  m.LoadProgram(Program(6, std::move(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.offloads, 0u);
}

TEST(Machine, ObserveModeRecordsArrivalWindows) {
  ArchConfig cfg;
  MachineOptions opts;
  opts.observe = true;
  Machine m(cfg, opts);
  Trace t{MakeLoad(kAddrA), MakeLoad(kAddrB), MakeCompute(Op::kAdd, 0, 1, true)};
  m.LoadProgram(Program(6, std::move(t)));
  RunResult r = m.Run();
  ASSERT_NE(r.records, nullptr);
  EXPECT_EQ(r.records->TotalInstances(), 1u);
  const InstanceRecord* rec = r.records->Find(6, 2);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->a, kAddrA);
  EXPECT_EQ(rec->b, kAddrB);
  EXPECT_FALSE(rec->local_l1);
  EXPECT_TRUE(rec->at(Loc::kCacheCtrl).feasible);
  EXPECT_NE(rec->at(Loc::kCacheCtrl).Window(), sim::kNeverCycle);
  EXPECT_NE(rec->conv_done, sim::kNeverCycle);
  EXPECT_NE(rec->a_at_core, sim::kNeverCycle);
  // Observation must not change behaviour: no offloads happened.
  EXPECT_EQ(r.offloads, 0u);
  EXPECT_EQ(r.ndc_success, 0u);
}

TEST(Machine, ObserveModeMatchesBaselineTiming) {
  ArchConfig cfg;
  Trace t{MakeLoad(kAddrA), MakeLoad(kAddrB), MakeCompute(Op::kAdd, 0, 1, true),
          MakeStore(0x9999, 2)};
  Machine base(cfg);
  base.LoadProgram(Program(6, Trace(t)));
  sim::Cycle base_time = base.Run().makespan;

  MachineOptions opts;
  opts.observe = true;
  Machine obs(cfg, opts);
  obs.LoadProgram(Program(6, Trace(t)));
  EXPECT_EQ(obs.Run().makespan, base_time);
}

TEST(Machine, OraclePolicySkipsWhenOperandReused) {
  ArchConfig cfg;
  Trace t;
  t.push_back(MakeLoad(kAddrA));                    // 0
  t.push_back(MakeLoad(kAddrB));                    // 1
  t.push_back(MakeCompute(Op::kAdd, 0, 1, true));   // 2 candidate
  t.push_back(MakeLoad(kAddrA + 8, 2));             // 3 reuse of A's L1 line

  MachineOptions obs_opts;
  obs_opts.observe = true;
  Machine obs(cfg, obs_opts);
  obs.LoadProgram(Program(6, Trace(t)));
  RunResult prof = obs.Run();
  const InstanceRecord* rec = prof.records->Find(6, 2);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->operand_reused_later);

  OraclePolicy oracle(cfg, *prof.records, /*reuse_aware=*/true);
  MachineOptions run_opts;
  run_opts.policy = &oracle;
  Machine m(cfg, run_opts);
  m.LoadProgram(Program(6, Trace(t)));
  RunResult r = m.Run();
  EXPECT_EQ(r.offloads, 0u);  // oracle favors data locality over NDC
}

TEST(Machine, DeterministicAcrossRuns) {
  ArchConfig cfg;
  AlwaysWaitPolicy p1(cfg), p2(cfg);
  Trace t{MakeLoad(kAddrA), MakeLoad(kAddrB), MakeCompute(Op::kAdd, 0, 1, true),
          MakeLoad(0x5000, 2), MakeStore(0x6000, 3)};
  MachineOptions o1, o2;
  o1.policy = &p1;
  o2.policy = &p2;
  Machine m1(cfg, o1), m2(cfg, o2);
  m1.LoadProgram(Program(6, Trace(t)));
  m2.LoadProgram(Program(6, Trace(t)));
  RunResult r1 = m1.Run(), r2 = m2.Run();
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.events, r2.events);
  EXPECT_EQ(r1.ndc_success, r2.ndc_success);
}

TEST(Machine, AllCoresFinish) {
  ArchConfig cfg;
  AlwaysWaitPolicy policy(cfg);
  MachineOptions opts;
  opts.policy = &policy;
  Machine m(cfg, opts);
  std::vector<Trace> p(25);
  for (int c = 0; c < 25; ++c) {
    Trace t;
    for (int i = 0; i < 20; ++i) {
      auto base = static_cast<sim::Addr>(c * 0x10000 + i * 640);
      int l0 = static_cast<int>(t.size());
      t.push_back(MakeLoad(base));
      t.push_back(MakeLoad(base + 256ull * 25));
      t.push_back(MakeCompute(Op::kAdd, l0, l0 + 1, true));
      t.push_back(MakeStore(base + 0x800, l0 + 2));
    }
    p[static_cast<std::size_t>(c)] = std::move(t);
  }
  m.LoadProgram(std::move(p));
  RunResult r = m.Run();
  EXPECT_EQ(r.stats.Get("run.incomplete_cores"), 0u);
  EXPECT_EQ(r.candidates, 500u);
}

}  // namespace
}  // namespace ndc::runtime
