// Tests for the IR: integer matrix kit, loop nests, arrays, address
// resolution (affine and indirect), and iteration enumeration.

#include <gtest/gtest.h>

#include "ir/matrix.hpp"
#include "ir/program.hpp"
#include "sim/rng.hpp"

namespace ndc::ir {
namespace {

TEST(IntMat, IdentityApply) {
  IntMat I = IntMat::Identity(3);
  IntVec v{4, -2, 7};
  EXPECT_EQ(I.Apply(v), v);
}

TEST(IntMat, ApplyMatchesHandComputation) {
  IntMat m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.Apply({1, 0, 1}), (IntVec{4, 10}));
}

TEST(IntMat, MultiplyAssociatesWithApply) {
  IntMat a(2, 2, {1, 1, 0, 1});
  IntMat b(2, 2, {2, 0, 1, 1});
  IntVec v{3, 5};
  EXPECT_EQ(a.Multiply(b).Apply(v), a.Apply(b.Apply(v)));
}

TEST(IntMat, DeterminantBasics) {
  EXPECT_EQ(IntMat::Identity(4).Determinant(), 1);
  IntMat swap(2, 2, {0, 1, 1, 0});
  EXPECT_EQ(swap.Determinant(), -1);
  IntMat singular(2, 2, {2, 4, 1, 2});
  EXPECT_EQ(singular.Determinant(), 0);
  IntMat skew(2, 2, {1, 3, 0, 1});
  EXPECT_EQ(skew.Determinant(), 1);
}

TEST(IntMat, DeterminantWithPivoting) {
  IntMat m(3, 3, {0, 1, 0, 1, 0, 0, 0, 0, 1});
  EXPECT_EQ(m.Determinant(), -1);
}

TEST(IntMat, UnimodularDetection) {
  EXPECT_TRUE(IntMat::Identity(3).IsUnimodular());
  IntMat skew(2, 2, {1, 2, 0, 1});
  EXPECT_TRUE(skew.IsUnimodular());
  IntMat scale(2, 2, {2, 0, 0, 1});
  EXPECT_FALSE(scale.IsUnimodular());
  IntMat rect(2, 3);
  EXPECT_FALSE(rect.IsUnimodular());
}

TEST(IntMat, SolveIntegerSquare) {
  IntMat m(2, 2, {1, 1, 0, 1});
  IntVec x;
  ASSERT_TRUE(m.SolveInteger({5, 2}, &x));
  EXPECT_EQ(x, (IntVec{3, 2}));
}

TEST(IntMat, SolveIntegerDetectsNonIntegral) {
  IntMat m(1, 1, {2});
  IntVec x;
  EXPECT_FALSE(m.SolveInteger({3}, &x));
  ASSERT_TRUE(m.SolveInteger({4}, &x));
  EXPECT_EQ(x, (IntVec{2}));
}

TEST(IntMat, SolveIntegerInconsistent) {
  IntMat m(2, 1, {1, 1});
  IntVec x;
  EXPECT_FALSE(m.SolveInteger({1, 2}, &x));
}

TEST(IntMat, InverseUnimodularRoundTrip) {
  IntMat t(3, 3, {1, 2, 0, 0, 1, 0, 1, 0, 1});
  ASSERT_TRUE(t.IsUnimodular());
  IntMat inv;
  ASSERT_TRUE(t.InverseUnimodular(&inv));
  EXPECT_EQ(t.Multiply(inv), IntMat::Identity(3));
}

// Property: products of elementary unimodular matrices stay unimodular and
// invertible.
TEST(IntMat, RandomUnimodularProductsProperty) {
  sim::Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    IntMat t = IntMat::Identity(3);
    for (int k = 0; k < 5; ++k) {
      IntMat e = IntMat::Identity(3);
      int i = static_cast<int>(rng.NextBelow(3));
      int j = static_cast<int>(rng.NextBelow(3));
      if (i == j) continue;
      e.at(i, j) = rng.NextInRange(-2, 2);
      t = t.Multiply(e);
    }
    ASSERT_TRUE(t.IsUnimodular());
    IntMat inv;
    ASSERT_TRUE(t.InverseUnimodular(&inv));
    EXPECT_EQ(t.Multiply(inv), IntMat::Identity(3));
  }
}

TEST(IntMat, RankComputation) {
  EXPECT_EQ(IntMat::Identity(3).Rank(), 3);
  IntMat flat(1, 3, {5, 1, 0});
  EXPECT_EQ(flat.Rank(), 1);
  IntMat dep(2, 2, {1, 2, 2, 4});
  EXPECT_EQ(dep.Rank(), 1);
}

TEST(LexOrder, CompareAndPositive) {
  EXPECT_LT(LexCompare({0, 1}, {1, -5}), 0);
  EXPECT_EQ(LexCompare({2, 3}, {2, 3}), 0);
  EXPECT_TRUE(LexPositive({0, 0, 1}));
  EXPECT_FALSE(LexPositive({0, -1, 5}));
  EXPECT_FALSE(LexPositive({0, 0, 0}));
  EXPECT_TRUE(IsZero({0, 0}));
  EXPECT_FALSE(IsZero({0, 1}));
}

TEST(Array, RowMajorAddressing) {
  Program p;
  int a = p.AddArray("A", {4, 8});
  const Array& arr = p.array(a);
  EXPECT_EQ(arr.AddrOf({0, 0}), arr.base);
  EXPECT_EQ(arr.AddrOf({0, 1}) - arr.base, 8u);
  EXPECT_EQ(arr.AddrOf({1, 0}) - arr.base, 64u);
  EXPECT_EQ(arr.NumElems(), 32);
}

TEST(Array, PageAlignedAllocation) {
  Program p;
  p.AddArray("A", {3});
  int b = p.AddArray("B", {5});
  EXPECT_EQ(p.array(b).base % 4096, 0u);
  EXPECT_GT(p.array(b).base, p.array(0).base);
}

TEST(LoopNest, RectangularEnumeration) {
  LoopNest nest;
  nest.loops = {{0, 2, -1, 0, -1, 0}, {0, 3, -1, 0, -1, 0}};
  std::vector<IntVec> seen;
  nest.ForEachIteration([&](const IntVec& i) { seen.push_back(i); });
  EXPECT_EQ(seen.size(), 12u);
  EXPECT_EQ(seen.front(), (IntVec{0, 0}));
  EXPECT_EQ(seen.back(), (IntVec{2, 3}));
  // Lexicographic order.
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(LexCompare(seen[i - 1], seen[i]), 0);
  }
  EXPECT_EQ(nest.NumIterations(), 12);
}

TEST(LoopNest, TriangularBounds) {
  // i in [0,3], j in [0, i]: 1+2+3+4 = 10 iterations.
  LoopNest nest;
  nest.loops = {{0, 3, -1, 0, -1, 0}, {0, 0, -1, 0, 0, 1}};
  EXPECT_EQ(nest.NumIterations(), 10);
  nest.ForEachIteration([&](const IntVec& i) { EXPECT_LE(i[1], i[0]); });
}

TEST(LoopNest, DependentLowerBound) {
  // k in [0,1], i in [k+1, 4]: trips 4 + 3 = 7.
  LoopNest nest;
  nest.loops = {{0, 1, -1, 0, -1, 0}, {1, 4, 0, 1, -1, 0}};
  EXPECT_EQ(nest.NumIterations(), 7);
  nest.ForEachIteration([&](const IntVec& i) { EXPECT_GT(i[1], i[0]); });
}

TEST(Program, ResolveAffineAddr) {
  Program p;
  int a = p.AddArray("A", {100});
  AffineAccess acc;
  acc.array = a;
  acc.F = IntMat(1, 2, {10, 1});
  acc.f = {3};
  Operand op = Operand::Affine(acc);
  auto addr = p.ResolveAddr(op, {2, 4});
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, p.array(a).base + 27 * 8);
}

TEST(Program, ResolveOutOfBoundsIsNull) {
  Program p;
  int a = p.AddArray("A", {10});
  AffineAccess acc;
  acc.array = a;
  acc.F = IntMat(1, 1, {1});
  acc.f = {0};
  Operand op = Operand::Affine(acc);
  EXPECT_TRUE(p.ResolveAddr(op, {9}).has_value());
  EXPECT_FALSE(p.ResolveAddr(op, {10}).has_value());
  EXPECT_FALSE(p.ResolveAddr(op, {-1}).has_value());
}

TEST(Program, ResolveIndirectAddr) {
  Program p;
  int idx = p.AddArray("idx", {4});
  int tgt = p.AddArray("T", {100});
  p.index_data[idx] = {7, 3, 99, 0};
  AffineAccess acc;
  acc.array = idx;
  acc.F = IntMat(1, 1, {1});
  acc.f = {0};
  Operand op = Operand::Indirect(acc, tgt);
  auto addr = p.ResolveAddr(op, {2});
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(*addr, p.array(tgt).base + 99 * 8);
}

TEST(Program, ResolveIndirectOutOfRangeIsNull) {
  Program p;
  int idx = p.AddArray("idx", {2});
  int tgt = p.AddArray("T", {10});
  p.index_data[idx] = {15, 3};  // 15 is out of T's range
  AffineAccess acc;
  acc.array = idx;
  acc.F = IntMat(1, 1, {1});
  acc.f = {0};
  Operand op = Operand::Indirect(acc, tgt);
  EXPECT_FALSE(p.ResolveAddr(op, {0}).has_value());
  EXPECT_TRUE(p.ResolveAddr(op, {1}).has_value());
}

TEST(Program, NonMemoryOperandsResolveToNull) {
  Program p;
  EXPECT_FALSE(p.ResolveAddr(Operand::None(), {}).has_value());
  EXPECT_FALSE(p.ResolveAddr(Operand::Scalar(), {}).has_value());
}

TEST(Program, StmtIdsAreUnique) {
  Program p;
  EXPECT_NE(p.NextStmtId(), p.NextStmtId());
}

TEST(Program, PrinterMentionsNdcAnnotation) {
  Program p;
  int a = p.AddArray("A", {10});
  LoopNest nest;
  nest.loops = {{0, 4, -1, 0, -1, 0}};
  Stmt s;
  s.id = p.NextStmtId();
  AffineAccess acc;
  acc.array = a;
  acc.F = IntMat(1, 1, {1});
  acc.f = {0};
  s.rhs0 = Operand::Affine(acc);
  s.rhs1 = Operand::Affine(acc);
  s.ndc.offload = true;
  s.ndc.planned = arch::Loc::kMemBank;
  nest.body.push_back(s);
  p.nests.push_back(nest);
  EXPECT_NE(p.ToString().find("NDC @memory"), std::string::npos);
}

}  // namespace
}  // namespace ndc::ir
