// Unit tests for the simulation kernel: event queue ordering, stats,
// histograms, and the deterministic RNG.

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/legacy_event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace ndc::sim {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  EventQueue eq;
  std::vector<int> order;
  eq.ScheduleAt(10, [&] { order.push_back(2); });
  eq.ScheduleAt(5, [&] { order.push_back(1); });
  eq.ScheduleAt(20, [&] { order.push_back(3); });
  eq.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, SameCycleEventsRunFifo) {
  EventQueue eq;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eq.ScheduleAt(7, [&order, i] { order.push_back(i); });
  }
  eq.RunUntilEmpty();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue eq;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) eq.ScheduleAfter(3, chain);
  };
  eq.ScheduleAt(0, chain);
  eq.RunUntilEmpty();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(eq.now(), 12u);
}

TEST(EventQueue, RunUntilLimitStopsEarly) {
  EventQueue eq;
  int fired = 0;
  eq.ScheduleAt(5, [&] { ++fired; });
  eq.ScheduleAt(50, [&] { ++fired; });
  eq.RunUntilEmpty(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty) {
  EventQueue eq;
  EXPECT_FALSE(eq.Step());
  eq.ScheduleAt(1, [] {});
  EXPECT_TRUE(eq.Step());
  EXPECT_FALSE(eq.Step());
}

TEST(EventQueue, BoundedRunAdvancesClockToLimit) {
  // Regression: RunUntilEmpty(limit) used to leave now() at the last
  // *executed* event, so code that kept scheduling relative to now() after a
  // bounded run worked from a stale clock. Contract: the whole bounded
  // window elapses, so now() == limit afterwards.
  EventQueue eq;
  int fired = 0;
  eq.ScheduleAt(5, [&] { ++fired; });
  eq.ScheduleAt(50, [&] { ++fired; });
  eq.RunUntilEmpty(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eq.now(), 10u);  // pre-fix: stuck at 5
  eq.RunUntilEmpty(40);      // nothing executes; the window still elapses
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eq.now(), 40u);
  eq.RunUntilEmpty();        // unbounded: clock rests at the last event
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(eq.now(), 50u);
}

TEST(EventQueue, ScheduleAfterBoundedRunUsesTheLimitAsBase) {
  EventQueue eq;
  eq.ScheduleAt(3, [] {});
  eq.RunUntilEmpty(100);
  std::vector<Cycle> at;
  eq.ScheduleAfter(5, [&] { at.push_back(eq.now()); });
  eq.RunUntilEmpty();
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0], 105u);  // pre-fix: 8 (relative to the stale clock)
}

TEST(EventQueue, SameCycleFifoAcrossScheduleAtAndScheduleAfter) {
  // The FIFO tie-break must not depend on which API scheduled the event.
  EventQueue eq;
  std::vector<int> order;
  eq.ScheduleAt(0, [&] {
    eq.ScheduleAt(9, [&] { order.push_back(0); });
    eq.ScheduleAfter(9, [&] { order.push_back(1); });
    eq.ScheduleAt(9, [&] { order.push_back(2); });
    eq.ScheduleAfter(9, [&] { order.push_back(3); });
  });
  eq.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, FarEventsRunBeforeSameCycleWheelEvents) {
  // An event scheduled for cycle K while K was beyond the wheel horizon
  // lives in the overflow map; it is strictly older than any event scheduled
  // for K after K entered the wheel window, so FIFO demands it run first.
  EventQueue eq;
  std::vector<int> order;
  eq.ScheduleAt(5000, [&] { order.push_back(1); });  // far at schedule time
  eq.ScheduleAt(1000, [&] {
    eq.ScheduleAt(5000, [&] { order.push_back(2); });  // 4000 ahead: wheel
  });
  eq.RunUntilEmpty();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eq.now(), 5000u);
}

TEST(EventQueue, CallbacksOfAllStorageClassesExecute) {
  // Covers the three SmallCallback homes: inline buffer (<= 64 B), pooled
  // arena block (<= 256 B), and the plain-heap fallback.
  EventQueue eq;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, 4> small{1, 2, 3, 4};
  std::array<std::uint64_t, 16> medium{};
  medium[0] = 5;
  std::array<std::uint64_t, 64> large{};
  large[0] = 6;
  eq.ScheduleAt(1, [&sum, small] {
    for (auto v : small) sum += v;
  });
  eq.ScheduleAt(2, [&sum, medium] { sum += medium[0]; });
  eq.ScheduleAt(3, [&sum, large] { sum += large[0]; });
  eq.RunUntilEmpty();
  EXPECT_EQ(sum, 21u);
}

// Runs an identical randomized, reentrant schedule on a queue type and
// returns the execution order. Delays span 0 .. ~20000 cycles, so events
// land both inside the calendar wheel and in the far-overflow map, and
// callbacks reschedule (including same-cycle) while their bucket drains.
template <typename Queue>
std::vector<std::uint64_t> ExecutionOrder() {
  Queue q;
  std::vector<std::uint64_t> order;
  std::uint64_t next_id = 10000;
  std::function<void(std::uint64_t)> body = [&](std::uint64_t id) {
    order.push_back(id);
    if (id % 3 == 0 && next_id < 11500) {
      std::uint64_t far_child = next_id++;
      q.ScheduleAfter((id * 37 + 11) % 9000, [&body, far_child] { body(far_child); });
      std::uint64_t near_child = next_id++;
      q.ScheduleAfter(0, [&body, near_child] { body(near_child); });
    }
  };
  Rng rng(99);
  for (std::uint64_t i = 0; i < 500; ++i) {
    q.ScheduleAt(rng.NextBelow(20000), [&body, i] { body(i); });
  }
  q.RunUntilEmpty();
  return order;
}

TEST(EventQueue, MatchesLegacyQueueOnRandomizedReentrantSchedules) {
  // The bit-identical figure-output guarantee rests on this property: the
  // calendar queue executes any schedule in exactly the order the seed
  // binary-heap queue (explicit FIFO sequence numbers) did.
  std::vector<std::uint64_t> calendar = ExecutionOrder<EventQueue>();
  std::vector<std::uint64_t> legacy = ExecutionOrder<LegacyEventQueue>();
  ASSERT_GT(calendar.size(), 500u);  // reentrant children actually spawned
  EXPECT_EQ(calendar, legacy);
}

TEST(BucketHistogram, PaperBucketsClassifyCorrectly) {
  BucketHistogram h;  // 1, 10, 20, 50, 100, 500, 500+
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(10);
  h.Add(11);
  h.Add(20);
  h.Add(50);
  h.Add(100);
  h.Add(500);
  h.Add(501);
  h.Add(kNeverCycle);  // "second operand never arrives" lands in 500+
  EXPECT_EQ(h.count(0), 2u);  // <=1
  EXPECT_EQ(h.count(1), 2u);  // (1,10]
  EXPECT_EQ(h.count(2), 2u);  // (10,20]
  EXPECT_EQ(h.count(3), 1u);  // (20,50]
  EXPECT_EQ(h.count(4), 1u);  // (50,100]
  EXPECT_EQ(h.count(5), 1u);  // (100,500]
  EXPECT_EQ(h.count(6), 2u);  // 500+
  EXPECT_EQ(h.total(), 11u);
}

TEST(BucketHistogram, CumulativeFractions) {
  BucketHistogram h;
  for (int i = 0; i < 50; ++i) h.Add(5);    // bucket 1
  for (int i = 0; i < 50; ++i) h.Add(1000);  // overflow
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(1), 0.5);
  EXPECT_DOUBLE_EQ(h.FractionAtEdge(10), 0.5);
  EXPECT_DOUBLE_EQ(h.CumulativeFraction(6), 1.0);
}

TEST(BucketHistogram, FractionAtEdgeIsExactAtEveryBucketEdge) {
  BucketHistogram h;  // edges 1, 10, 20, 50, 100, 500
  h.Add(1);
  h.Add(10);
  h.Add(20);
  h.Add(50);
  h.Add(100);
  h.Add(500);
  h.Add(501);  // overflow bucket; never below any edge
  EXPECT_DOUBLE_EQ(h.FractionAtEdge(1), 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.FractionAtEdge(10), 2.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.FractionAtEdge(20), 3.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.FractionAtEdge(50), 4.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.FractionAtEdge(100), 5.0 / 7.0);
  EXPECT_DOUBLE_EQ(h.FractionAtEdge(500), 6.0 / 7.0);
}

#ifndef NDEBUG
TEST(BucketHistogramDeathTest, FractionAtNonEdgeAssertsInDebugBuilds) {
  BucketHistogram h;
  h.Add(5);
  EXPECT_DEATH((void)h.FractionAtEdge(15), "exact bucket edge");
}
#endif

TEST(BucketHistogram, MergePreservesTotals) {
  BucketHistogram a, b;
  a.Add(5);
  b.Add(600);
  b.Add(15);
  a.MergeFrom(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.count(2), 1u);
  EXPECT_EQ(a.count(6), 1u);
}

TEST(StatSet, AddAndGet) {
  StatSet s;
  s.Add("x");
  s.Add("x", 4);
  EXPECT_EQ(s.Get("x"), 5u);
  EXPECT_EQ(s.Get("missing"), 0u);
  EXPECT_TRUE(s.Has("x"));
  EXPECT_FALSE(s.Has("missing"));
}

TEST(StatSet, ToStringIsSortedAndDeterministic) {
  // Documented contract: ToString() orders rows by key regardless of
  // insertion order, so golden-file diffs are stable.
  StatSet s;
  s.Add("zeta", 3);
  s.Add("alpha", 1);
  s.Add("mid.key", 2);
  EXPECT_EQ(s.ToString(), "alpha = 1\nmid.key = 2\nzeta = 3\n");
  StatSet reversed;
  reversed.Add("mid.key", 2);
  reversed.Add("alpha", 1);
  reversed.Add("zeta", 3);
  EXPECT_EQ(reversed.ToString(), s.ToString());
}

TEST(RawCounter, MaterializesOnlyWhenTouched) {
  RawCounter c;
  StatSet s;
  c.MaterializeInto(s, "k");
  EXPECT_FALSE(s.Has("k"));  // never touched: key absent
  c.Add(0);                  // zero-delta Add still marks the key live
  c.MaterializeInto(s, "k");
  EXPECT_TRUE(s.Has("k"));
  EXPECT_EQ(s.Get("k"), 0u);
  c.Add(7);
  s.Clear();
  c.MaterializeInto(s, "k");
  EXPECT_EQ(s.Get("k"), 7u);
  c.Reset();
  s.Clear();
  c.MaterializeInto(s, "k");
  EXPECT_FALSE(s.Has("k"));
}

TEST(Accumulator, TracksMeanMinMax) {
  Accumulator a;
  a.Add(2.0);
  a.Add(4.0);
  a.Add(9.0);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_EQ(a.count(), 3u);
}

TEST(GeometricMean, MatchesHandComputation) {
  EXPECT_NEAR(GeometricMean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_NEAR(GeometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.NextBelow(17), 17u);
}

TEST(Rng, DoubleIsInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// Property: the RNG range helper covers its whole inclusive range.
class RngRangeTest : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(RngRangeTest, StaysWithinBoundsAndHitsBoth) {
  auto [lo, hi] = GetParam();
  Rng r(static_cast<std::uint64_t>(lo * 31 + hi));
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    std::int64_t v = r.NextInRange(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
    hit_lo |= v == lo;
    hit_hi |= v == hi;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 1},
                                           std::pair<std::int64_t, std::int64_t>{-5, 5},
                                           std::pair<std::int64_t, std::int64_t>{3, 17},
                                           std::pair<std::int64_t, std::int64_t>{-100, -90}));

}  // namespace
}  // namespace ndc::sim
