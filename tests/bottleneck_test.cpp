// Tests for the bottleneck taxonomy (src/obs/sampler, src/obs/bottleneck):
// phase-window bucketing, utilization attribution, classifier precedence,
// histogram percentile/merge math, and decision-log priors. The end-to-end
// section asserts the reconciliation contract — a classified run's signal
// vector (raw fields and window sums alike) must equal the touched-only
// counters it derives from — and skips itself under NDC_OBS=OFF.

#include <gtest/gtest.h>

#include <string>

#include "harness/cell.hpp"
#include "harness/json.hpp"
#include "metrics/experiment.hpp"
#include "obs/obs.hpp"

namespace {

using ndc::harness::json::Dump;
using ndc::harness::json::Parse;
using ndc::harness::json::Value;
using ndc::metrics::Experiment;
using ndc::metrics::Scheme;
using ndc::obs::Classify;
using ndc::obs::ClassifierThresholds;
using ndc::obs::ComputeSignals;
using ndc::obs::Label;
using ndc::obs::MachineShape;
using ndc::obs::Signal;
using ndc::obs::UtilizationSignals;
using ndc::obs::WindowSampler;

// ---------------------------------------------------------- unit: sampler ---

class SamplerUnit : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ndc::obs::kObsEnabled) {
      GTEST_SKIP() << "observability compiled out (NDC_OBS=OFF)";
    }
  }
};

TEST_F(SamplerUnit, DisabledSamplerDropsEveryNote) {
  WindowSampler s;  // window_cycles == 0: off
  s.Note(Signal::kDramAccess, 100, 5);
  EXPECT_FALSE(s.enabled());
  EXPECT_EQ(s.num_windows(), 0u);
  EXPECT_EQ(s.Total(Signal::kDramAccess), 0u);
}

TEST_F(SamplerUnit, BucketsDeltasByWindowAndSumsToTotal) {
  WindowSampler s;
  s.Configure(100);
  s.Note(Signal::kDramAccess, 5, 2);     // window 0
  s.Note(Signal::kDramAccess, 150, 3);   // window 1
  s.Note(Signal::kDramAccess, 199, 4);   // window 1 again
  s.Note(Signal::kNocBusy, 250, 7);      // window 2, different signal
  EXPECT_TRUE(s.enabled());
  EXPECT_EQ(s.num_windows(), 3u);
  EXPECT_EQ(s.At(Signal::kDramAccess, 0), 2u);
  EXPECT_EQ(s.At(Signal::kDramAccess, 1), 7u);
  EXPECT_EQ(s.At(Signal::kDramAccess, 2), 0u);
  EXPECT_EQ(s.At(Signal::kNocBusy, 2), 7u);
  EXPECT_EQ(s.Total(Signal::kDramAccess), 9u);
  EXPECT_EQ(s.Total(Signal::kNocBusy), 7u);
}

TEST_F(SamplerUnit, ReconfigureResetsTheSeries) {
  WindowSampler s;
  s.Configure(10);
  s.Note(Signal::kSyncStall, 5, 1);
  s.Configure(10);
  EXPECT_EQ(s.Total(Signal::kSyncStall), 0u);
  EXPECT_EQ(s.num_windows(), 0u);
}

TEST_F(SamplerUnit, PathologicalWindowWidthClampsButStillReconciles) {
  WindowSampler s;
  s.Configure(1);  // one window per cycle: cycle 10M would be window 10M
  s.Note(Signal::kMcQueueWait, 10'000'000, 4);
  s.Note(Signal::kMcQueueWait, 20'000'000, 6);
  // Clamped into the last representable window; the total is never lost.
  EXPECT_EQ(s.num_windows(), 1u << 16);
  EXPECT_EQ(s.At(Signal::kMcQueueWait, (1u << 16) - 1), 10u);
  EXPECT_EQ(s.Total(Signal::kMcQueueWait), 10u);
}

// ------------------------------------------------- unit: attribution math ---

MachineShape TestShape() {
  MachineShape sh;
  sh.num_cores = 25;
  sh.num_mcs = 4;
  sh.num_links = 80;
  sh.dram_data_beat = 4;
  sh.compute_latency = 1;
  return sh;
}

TEST(ComputeSignalsUnit, DerivesFractionsFromStatSet) {
  ndc::sim::StatSet st;
  st.Add("mc.reads", 100);
  st.Add("mc.writes", 50);
  st.Add("mc.queue_wait_cycles", 3000);
  st.Add("mc.row_hits", 120);
  st.Add("mc.row_misses", 30);
  st.Add("noc.link_busy_cycles", 8000);
  st.Add("sync.stall_cycles", 5000);
  st.Add("ndc.success", 40);
  st.Add("core.busy.compute", 250);
  st.Add("core.stall.mem", 12500);

  UtilizationSignals s = ComputeSignals(st, 1000, TestShape());
  EXPECT_EQ(s.mc_reads, 100u);
  EXPECT_EQ(s.mc_writes, 50u);
  EXPECT_DOUBLE_EQ(s.dram_bw_frac, 150.0 * 4 / (4 * 1000));      // 0.15
  EXPECT_DOUBLE_EQ(s.mc_queue_occ, 3000.0 / (4 * 1000));         // 0.75
  EXPECT_DOUBLE_EQ(s.avg_queue_wait, 3000.0 / 150);              // 20
  EXPECT_DOUBLE_EQ(s.row_miss_ratio, 30.0 / 150);                // 0.2
  EXPECT_DOUBLE_EQ(s.noc_util, 8000.0 / (80 * 1000));            // 0.1
  EXPECT_DOUBLE_EQ(s.noc_max_link_util, s.noc_util);             // unrefined
  EXPECT_DOUBLE_EQ(s.sync_frac, 5000.0 / (25 * 1000));           // 0.2
  EXPECT_DOUBLE_EQ(s.ndc_busy_frac, 40.0 * 1 / 1000);            // 0.04
  EXPECT_DOUBLE_EQ(s.compute_frac, 250.0 / (25 * 1000));         // 0.01
  EXPECT_DOUBLE_EQ(s.mem_stall_frac, 12500.0 / (25 * 1000));     // 0.5
}

TEST(ComputeSignalsUnit, UntouchedKeysAndZeroMakespanAreAllZero) {
  ndc::sim::StatSet st;
  UtilizationSignals s = ComputeSignals(st, 0, TestShape());
  EXPECT_DOUBLE_EQ(s.dram_bw_frac, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_queue_wait, 0.0);
  EXPECT_DOUBLE_EQ(s.noc_util, 0.0);
  EXPECT_DOUBLE_EQ(s.sync_frac, 0.0);
  EXPECT_EQ(Classify(s), Label::kBalanced);
}

TEST(ComputeSignalsUnit, RefineMaxLinkBusyOnlyRaises) {
  UtilizationSignals s;
  s.makespan = 1000;
  s.noc_max_link_util = 0.2;
  ndc::obs::RefineMaxLinkBusy(s, 100);  // 0.1 < 0.2: keep
  EXPECT_DOUBLE_EQ(s.noc_max_link_util, 0.2);
  ndc::obs::RefineMaxLinkBusy(s, 500);  // 0.5 > 0.2: raise
  EXPECT_DOUBLE_EQ(s.noc_max_link_util, 0.5);
}

// ------------------------------------------------------- unit: classifier ---

TEST(ClassifierUnit, FixedPrecedenceOrder) {
  UtilizationSignals s;
  // Everything screaming at once: the data bus wins outright.
  s.dram_bw_frac = 0.6;
  s.sync_frac = 0.9;
  s.avg_queue_wait = 1000.0;
  s.noc_max_link_util = 0.9;
  s.compute_frac = 0.9;
  EXPECT_EQ(Classify(s), Label::kDramBw);
  // Bus below threshold: sync stall outranks the latency symptom.
  s.dram_bw_frac = 0.1;
  EXPECT_EQ(Classify(s), Label::kSync);
  // Sync quiet: deep MC queues outrank the hot link feeding them.
  s.sync_frac = 0.0;
  EXPECT_EQ(Classify(s), Label::kDramLatency);
  // Queues shallow: the mesh is the constraint.
  s.avg_queue_wait = 1.0;
  EXPECT_EQ(Classify(s), Label::kNoc);
  // Links idle: compute-bound.
  s.noc_max_link_util = 0.0;
  EXPECT_EQ(Classify(s), Label::kCompute);
  // Nothing past threshold.
  s.compute_frac = 0.0;
  EXPECT_EQ(Classify(s), Label::kBalanced);
}

TEST(ClassifierUnit, ThresholdsAreInclusiveAndNdcCountsAsCompute) {
  ClassifierThresholds t;
  UtilizationSignals s;
  s.dram_bw_frac = t.dram_bw;  // exactly at threshold => labeled
  EXPECT_EQ(Classify(s, t), Label::kDramBw);
  UtilizationSignals c;
  c.compute_frac = t.compute / 2;
  c.ndc_busy_frac = t.compute / 2;  // host + near-data ALU time pool together
  EXPECT_EQ(Classify(c, t), Label::kCompute);
}

TEST(ClassifierUnit, MaxLinkRefinementCanFlipToNoc) {
  ClassifierThresholds t;
  UtilizationSignals s;
  s.noc_util = t.noc / 2;  // average link utilization looks fine
  EXPECT_EQ(Classify(s, t), Label::kBalanced);
  s.noc_max_link_util = t.noc + 0.1;  // ...but one link is saturated
  EXPECT_EQ(Classify(s, t), Label::kNoc);
}

// ------------------------------------------- unit: histogram percentiles ---

TEST(HistogramPercentile, EmptyHistogramReportsZero) {
  ndc::obs::Histogram h({1, 10, 20, 50, 100, 500});
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(HistogramPercentile, SingleBucketAnswersThatBucketEdge) {
  ndc::obs::Histogram h({1, 10, 20, 50, 100, 500});
  h.Add(5);
  h.Add(7);
  h.Add(3);  // all in the (1, 10] bucket
  EXPECT_EQ(h.Percentile(1), 10u);
  EXPECT_EQ(h.Percentile(50), 10u);
  EXPECT_EQ(h.Percentile(100), 10u);
}

TEST(HistogramPercentile, OverflowBucketReportsAboveLastEdge) {
  ndc::obs::Histogram h({1, 10, 20, 50, 100, 500});
  h.Add(5);
  h.Add(1000);  // above every edge
  EXPECT_EQ(h.Percentile(50), 10u);   // first sample covers half
  EXPECT_EQ(h.Percentile(100), 501u);  // the "500+" marker
}

TEST(HistogramPercentile, OutOfRangePercentilesClamp) {
  ndc::obs::Histogram h({1, 10, 20, 50, 100, 500});
  h.Add(5);
  EXPECT_EQ(h.Percentile(-5), h.Percentile(0));
  EXPECT_EQ(h.Percentile(150), h.Percentile(100));
}

TEST(HistogramPercentile, MergeFromAddsMatchingBuckets) {
  ndc::obs::Histogram a({1, 10, 20, 50, 100, 500});
  ndc::obs::Histogram b({1, 10, 20, 50, 100, 500});
  a.Add(5);
  b.Add(1000);
  a.MergeFrom(b);
  EXPECT_EQ(a.hist().total(), 2u);
  EXPECT_EQ(a.Percentile(50), 10u);
  EXPECT_EQ(a.Percentile(100), 501u);
}

// -------------------------------------------- unit: decision-log priors ---

TEST(DecisionLogPrior, ZeroPriorOmittedNonzeroEmitted) {
  ndc::obs::DecisionLog log;
  log.Record(1, 0, 0, ndc::obs::DecisionKind::kLocalL1Skip, -1, 10);      // default 0
  log.Record(2, 0, 1, ndc::obs::DecisionKind::kOffload, 2, 11, 3);        // 3 feasible locs
  std::string jsonl = log.ToJsonl();
  std::size_t nl = jsonl.find('\n');
  ASSERT_NE(nl, std::string::npos);
  std::string first = jsonl.substr(0, nl);
  std::string second = jsonl.substr(nl + 1, jsonl.find('\n', nl + 1) - nl - 1);

  Value v;
  std::string err;
  ASSERT_TRUE(Parse(first, &v, &err)) << err;
  EXPECT_EQ(v.Find("prior"), nullptr);  // advisory field absent when 0
  ASSERT_TRUE(Parse(second, &v, &err)) << err;
  ASSERT_NE(v.Find("prior"), nullptr);
  EXPECT_EQ(v.Find("prior")->AsU64(), 3u);
}

// ------------------------------------------------- end-to-end (obs only) ---

class ClassifyEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ndc::obs::kObsEnabled) {
      GTEST_SKIP() << "observability compiled out (NDC_OBS=OFF)";
    }
  }

  static ndc::metrics::SchemeResult RunSampled(ndc::obs::Observability* ob,
                                               const std::string& workload,
                                               Scheme scheme) {
    Experiment exp(workload, ndc::workloads::Scale::kTest, ndc::arch::ArchConfig{});
    exp.set_obs(ob);
    return exp.Run(scheme);
  }

  static ndc::obs::ObsOptions SampledOptions() {
    ndc::obs::ObsOptions oo;
    oo.emit_stage_events = false;
    oo.window_cycles = 1024;
    return oo;
  }
};

TEST_F(ClassifyEndToEnd, WindowSumsReconcileWithTouchedOnlyCounters) {
  ndc::obs::Observability ob(SampledOptions());
  ndc::metrics::SchemeResult r = RunSampled(&ob, "md", Scheme::kOracle);
  const ndc::sim::StatSet& st = r.run.stats;
  ndc::arch::ArchConfig cfg;

  // Every sampled signal, summed over its windows, equals the run counter
  // it shadows — both via Total() and via the per-window series.
  EXPECT_EQ(ob.sampler.Total(Signal::kDramAccess),
            st.Get("mc.reads") + st.Get("mc.writes"));
  EXPECT_EQ(ob.sampler.Total(Signal::kMcQueueWait), st.Get("mc.queue_wait_cycles"));
  EXPECT_EQ(ob.sampler.Total(Signal::kNocBusy), st.Get("noc.link_busy_cycles"));
  EXPECT_EQ(ob.sampler.Total(Signal::kSyncStall), st.Get("sync.stall_cycles"));
  EXPECT_EQ(ob.sampler.Total(Signal::kNdcBusy),
            st.Get("ndc.success") * cfg.compute_latency);
  ASSERT_GT(ob.sampler.Total(Signal::kDramAccess), 0u);
  for (int i = 0; i < ndc::obs::kNumSignals; ++i) {
    auto sig = static_cast<Signal>(i);
    std::uint64_t sum = 0;
    for (std::size_t w = 0; w < ob.sampler.num_windows(); ++w) sum += ob.sampler.At(sig, w);
    EXPECT_EQ(sum, ob.sampler.Total(sig)) << ndc::obs::SignalName(sig);
  }

  // The sampled run carries the gated stall-breakdown keys.
  EXPECT_TRUE(st.Has("core.stall.mem"));
  EXPECT_TRUE(st.Has("core.stall.sync"));
  EXPECT_TRUE(st.Has("core.busy.compute"));
}

TEST_F(ClassifyEndToEnd, SyncStallSignalReconcilesOnShardedWorkload) {
  ndc::obs::Observability ob(SampledOptions());
  ndc::metrics::SchemeResult r = RunSampled(&ob, "shard.reduce.atomic", Scheme::kBaseline);
  const ndc::sim::StatSet& st = r.run.stats;
  ASSERT_GT(st.Get("sync.stall_cycles"), 0u);
  EXPECT_EQ(ob.sampler.Total(Signal::kSyncStall), st.Get("sync.stall_cycles"));
}

TEST_F(ClassifyEndToEnd, UnsampledRunsKeepStallKeysOutOfTheStatSet) {
  ndc::obs::Observability ob;  // obs attached but sampler off
  ndc::metrics::SchemeResult r = RunSampled(&ob, "md", Scheme::kOracle);
  const ndc::sim::StatSet& st = r.run.stats;
  EXPECT_FALSE(st.Has("core.stall.mem"));
  EXPECT_FALSE(st.Has("core.stall.sync"));
  EXPECT_FALSE(st.Has("core.busy.compute"));
  EXPECT_EQ(ob.sampler.num_windows(), 0u);
}

TEST_F(ClassifyEndToEnd, ComputeRunSignalsMatchesTheStatSetVerbatim) {
  ndc::obs::Observability ob(SampledOptions());
  ndc::metrics::SchemeResult r = RunSampled(&ob, "md", Scheme::kOracle);
  const ndc::sim::StatSet& st = r.run.stats;
  ndc::arch::ArchConfig cfg;
  UtilizationSignals s =
      ndc::harness::ComputeRunSignals(st, r.run.makespan, cfg, &ob.registry);
  EXPECT_EQ(s.makespan, r.run.makespan);
  EXPECT_EQ(s.mc_reads, st.Get("mc.reads"));
  EXPECT_EQ(s.mc_writes, st.Get("mc.writes"));
  EXPECT_EQ(s.mc_queue_wait_cycles, st.Get("mc.queue_wait_cycles"));
  EXPECT_EQ(s.noc_link_busy_cycles, st.Get("noc.link_busy_cycles"));
  EXPECT_EQ(s.sync_stall_cycles, st.Get("sync.stall_cycles"));
  EXPECT_EQ(s.ndc_success, st.Get("ndc.success"));
  EXPECT_EQ(s.core_stall_mem, st.Get("core.stall.mem"));
  EXPECT_EQ(s.core_busy_compute, st.Get("core.busy.compute"));
  // The registry's per-link counters can only sharpen the hottest-link view.
  EXPECT_GE(s.noc_max_link_util, s.noc_util);
}

TEST_F(ClassifyEndToEnd, ClassificationJsonIsByteStableAcrossSameSeedRuns) {
  std::string dumps[2];
  for (int i = 0; i < 2; ++i) {
    ndc::obs::Observability ob(SampledOptions());
    ndc::metrics::SchemeResult r = RunSampled(&ob, "fft", Scheme::kOracle);
    UtilizationSignals s = ndc::harness::ComputeRunSignals(
        r.run.stats, r.run.makespan, ndc::arch::ArchConfig{}, &ob.registry);
    dumps[i] = Dump(ndc::harness::ClassificationJson(s, ob.sampler));
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_NE(dumps[0].find("\"label\""), std::string::npos);
}

TEST_F(ClassifyEndToEnd, RunCellObsSummaryGatesClassificationOnWindow) {
  ndc::harness::CellSpec spec;
  spec.workload = "md";
  spec.scale = ndc::workloads::Scale::kTest;
  spec.scheme = Scheme::kOracle;

  Value plain = ndc::harness::RunCellObsSummary(spec);
  EXPECT_EQ(plain.Find("classification"), nullptr);

  Value classified = ndc::harness::RunCellObsSummary(spec, 1, 1024);
  const Value* c = classified.Find("classification");
  ASSERT_NE(c, nullptr);
  ASSERT_NE(c->Find("label"), nullptr);
  bool known = false;
  for (int i = 0; i < ndc::obs::kNumLabels; ++i) {
    if (c->Find("label")->str == ndc::obs::LabelName(static_cast<Label>(i))) known = true;
  }
  EXPECT_TRUE(known) << c->Find("label")->str;
  ASSERT_NE(c->Find("window_cycles"), nullptr);
  EXPECT_EQ(c->Find("window_cycles")->AsU64(), 1024u);
  ASSERT_NE(c->Find("windows"), nullptr);
  EXPECT_GT(c->Find("windows")->arr.size(), 0u);
  ASSERT_NE(c->Find("raw"), nullptr);
  ASSERT_NE(c->Find("derived"), nullptr);
  ASSERT_NE(c->Find("thresholds"), nullptr);
}

}  // namespace
