// Property test: the set-associative cache matches a straightforward
// reference model (per-set LRU lists) under randomized access/fill/
// invalidate sequences; plus DRAM/MC edge behaviours not covered elsewhere.

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/memctrl.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace ndc::mem {
namespace {

// Reference model: per-set list of tags, most-recent first.
class RefCache {
 public:
  RefCache(std::uint64_t sets, std::uint32_t ways, std::uint64_t line)
      : sets_(sets), ways_(ways), line_(line) {}

  bool Access(sim::Addr a) {
    auto [set, tag] = Key(a);
    auto& l = lists_[set];
    for (auto it = l.begin(); it != l.end(); ++it) {
      if (*it == tag) {
        l.erase(it);
        l.push_front(tag);
        return true;
      }
    }
    return false;
  }
  void Fill(sim::Addr a) {
    auto [set, tag] = Key(a);
    auto& l = lists_[set];
    for (auto it = l.begin(); it != l.end(); ++it) {
      if (*it == tag) {
        l.erase(it);
        break;
      }
    }
    l.push_front(tag);
    if (l.size() > ways_) l.pop_back();
  }
  bool Contains(sim::Addr a) const {
    auto [set, tag] = Key(a);
    auto it = lists_.find(set);
    if (it == lists_.end()) return false;
    for (sim::Addr t : it->second) {
      if (t == tag) return true;
    }
    return false;
  }
  void Invalidate(sim::Addr a) {
    auto [set, tag] = Key(a);
    auto& l = lists_[set];
    for (auto it = l.begin(); it != l.end(); ++it) {
      if (*it == tag) {
        l.erase(it);
        return;
      }
    }
  }

 private:
  std::pair<std::uint64_t, sim::Addr> Key(sim::Addr a) const {
    sim::Addr lineno = a / line_;
    return {lineno % sets_, lineno / sets_};
  }
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint64_t line_;
  std::map<std::uint64_t, std::list<sim::Addr>> lists_;
};

class CacheVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheVsReference, RandomOpsAgree) {
  CacheParams p;
  p.size_bytes = 2048;  // 32 lines
  p.line_bytes = 64;
  p.ways = 4;           // 8 sets
  Cache cache(p);
  RefCache ref(cache.num_sets(), p.ways, p.line_bytes);
  sim::Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    sim::Addr a = rng.NextBelow(1 << 14);  // 4x capacity: plenty of evictions
    switch (rng.NextBelow(4)) {
      case 0: {
        bool hit = cache.Access(a);
        bool ref_hit = ref.Access(a);
        ASSERT_EQ(hit, ref_hit) << "op " << i << " addr " << a;
        if (!hit) {
          cache.Fill(a);
          ref.Fill(a);
        }
        break;
      }
      case 1:
        cache.Fill(a);
        ref.Fill(a);
        break;
      case 2:
        ASSERT_EQ(cache.Contains(a), ref.Contains(a)) << "op " << i;
        break;
      case 3:
        cache.Invalidate(a);
        ref.Invalidate(a);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheVsReference, ::testing::Values(1, 7, 13, 29, 57));

TEST(CacheEdge, EvictionReturnsTheDisplacedLine) {
  CacheParams p;
  p.size_bytes = 256;  // 4 lines
  p.line_bytes = 64;
  p.ways = 2;          // 2 sets
  Cache c(p);
  sim::Rng rng(3);
  RefCache ref(2, 2, 64);
  for (int i = 0; i < 500; ++i) {
    sim::Addr a = rng.NextBelow(1 << 12) & ~sim::Addr{63};
    bool was_present = ref.Contains(a);
    auto evicted = c.Fill(a);
    ref.Fill(a);
    if (evicted.has_value()) {
      EXPECT_FALSE(was_present);
      EXPECT_FALSE(ref.Contains(*evicted));
      EXPECT_FALSE(c.Contains(*evicted));
      EXPECT_EQ(*evicted % 64, 0u);
    }
  }
}

TEST(DramEdge, RowBufferStateSurvivesAcrossAccesses) {
  DramParams p;
  DramBank b(p);
  b.Access(0, 7);
  EXPECT_TRUE(b.IsRowOpen(7));
  EXPECT_FALSE(b.IsRowOpen(8));
  b.Access(1000, 8);
  EXPECT_TRUE(b.IsRowOpen(8));
  EXPECT_FALSE(b.IsRowOpen(7));
  b.Reset();
  EXPECT_FALSE(b.IsRowOpen(8));
  EXPECT_EQ(b.row_hits(), 0u);
}

TEST(McEdge, WritesOccupyBanksButDoNotCallDone) {
  AddressMap amap;
  DramParams dram;
  sim::EventQueue eq;
  MemCtrl mc(0, amap, dram, eq);
  mc.EnqueueWrite(0);
  sim::Cycle read_done = 0;
  mc.EnqueueRead(1, 64, [&](std::uint64_t, sim::Cycle t) { read_done = t; });
  eq.RunUntilEmpty();
  // The read (same bank, same row as the write) had to wait behind it but
  // enjoyed a row hit.
  EXPECT_GT(read_done, dram.row_miss_latency);
  EXPECT_EQ(mc.stats().Get("mc.row_hits"), 1u);
  EXPECT_EQ(mc.stats().Get("mc.writes"), 1u);
}

TEST(McEdge, ResetClearsQueueAndBanks) {
  AddressMap amap;
  DramParams dram;
  sim::EventQueue eq;
  MemCtrl mc(0, amap, dram, eq);
  mc.EnqueueRead(1, 0, [](std::uint64_t, sim::Cycle) {});
  mc.Reset();
  EXPECT_EQ(mc.queue_depth(), 0u);
  EXPECT_FALSE(mc.HasPendingAddr(0));
  EXPECT_EQ(mc.stats().Get("mc.reads"), 0u);
}

}  // namespace
}  // namespace ndc::mem
