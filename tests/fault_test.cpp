// src/fault tests: schedule parsing/canonicalization/determinism, injector
// window semantics, the timeout/retry/degrade state machine, the
// request-conservation invariant under randomized fault storms, and the
// faults-off golden-equivalence guarantee (an empty schedule must be
// bit-identical to no schedule at all).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "metrics/experiment.hpp"
#include "obs/decision_log.hpp"

namespace ndc::fault {
namespace {

FaultSchedule SampleSchedule() {
  FaultSchedule s;
  s.seed = 7;
  s.link_faults.push_back({3, 100, 900, 8, 0.25});
  s.link_faults.push_back({12, 0, 500, 0, 0.5});
  s.bank_faults.push_back({0, 2, 0, 5000, BankFaultKind::kStall});
  s.bank_faults.push_back({1, 7, 200, 800, BankFaultKind::kNack});
  s.mc_pressure.push_back({1, 200, 400, 16});
  s.resilience.max_retries = 2;
  s.resilience.backoff_mult = 1.5;
  s.resilience.retransmit_delay = 16;
  s.resilience.nack_backoff = 48;
  return s;
}

// ----------------------------------------------------------- schedule ---

TEST(Schedule, CanonicalStringRoundTripsThroughJson) {
  FaultSchedule s = SampleSchedule();
  FaultSchedule back;
  std::string err;
  ASSERT_TRUE(ParseSchedule(s.ToJson(), &back, &err)) << err;
  EXPECT_EQ(back.CanonicalString(), s.CanonicalString());
}

TEST(Schedule, EmptyIsInertAndNonEmptyIsNot) {
  FaultSchedule s;
  EXPECT_TRUE(s.Empty());
  s.resilience.max_retries = 1;  // retries alone change runtime behavior
  EXPECT_FALSE(s.Empty());
  s = FaultSchedule{};
  s.mc_pressure.push_back({0, 0, 10, 5});
  EXPECT_FALSE(s.Empty());
}

TEST(Schedule, ParseRejectsMalformedInput) {
  FaultSchedule out;
  std::string err;
  // A typo must not silently produce an un-faulted run.
  EXPECT_FALSE(ParseSchedule(R"({"seeed":1})", &out, &err));
  EXPECT_FALSE(ParseSchedule(R"({"link_faults":[{"link":1,"start":0,"end":9,"drop_prob":1.5}]})", &out, &err));
  EXPECT_FALSE(ParseSchedule(R"({"link_faults":[{"link":1,"start":10,"end":5}]})", &out, &err));
  EXPECT_FALSE(ParseSchedule(R"({"bank_faults":[{"mc":0,"bank":1,"start":0,"end":9,"kind":"melt"}]})", &out, &err));
  EXPECT_FALSE(ParseSchedule(R"({"resilience":{"max_retries":-1}})", &out, &err));
  EXPECT_FALSE(ParseSchedule(R"({"resilience":{"backoff_mult":0.5}})", &out, &err));
  // Zero would re-attempt in the same cycle forever.
  EXPECT_FALSE(ParseSchedule(R"({"resilience":{"retransmit_delay":0}})", &out, &err));
  EXPECT_FALSE(ParseSchedule(R"({"resilience":{"nack_backoff":0}})", &out, &err));
  EXPECT_FALSE(ParseSchedule(R"({"seed":1} trailing)", &out, &err));
  EXPECT_FALSE(ParseSchedule(R"({"seed":1,"seed":2})", &out, &err));
}

TEST(Schedule, LoadAcceptsInlineJsonAndFiles) {
  FaultSchedule inl;
  std::string err;
  ASSERT_TRUE(LoadSchedule(R"({"seed":9})", &inl, &err)) << err;
  EXPECT_EQ(inl.seed, 9u);

  std::string path = ::testing::TempDir() + "/fault_sched.json";
  {
    std::ofstream f(path);
    f << SampleSchedule().ToJson();
  }
  FaultSchedule from_file;
  ASSERT_TRUE(LoadSchedule(path, &from_file, &err)) << err;
  EXPECT_EQ(from_file.CanonicalString(), SampleSchedule().CanonicalString());
  std::remove(path.c_str());

  EXPECT_FALSE(LoadSchedule("/nonexistent/sched.json", &from_file, &err));
}

TEST(Schedule, ScaledScalesMagnitudesAndClampsProbabilities) {
  FaultSchedule s = SampleSchedule();
  FaultSchedule hard = s.Scaled(3.0);
  EXPECT_EQ(hard.link_faults[0].extra_latency, 24u);
  EXPECT_DOUBLE_EQ(hard.link_faults[0].drop_prob, 0.75);
  EXPECT_DOUBLE_EQ(hard.link_faults[1].drop_prob, 1.0);  // 1.5 clamps
  EXPECT_EQ(hard.mc_pressure[0].extra_delay, 48u);
  EXPECT_EQ(hard.bank_faults.size(), s.bank_faults.size());  // kinds unscaled

  FaultSchedule off = s.Scaled(0.0);
  EXPECT_TRUE(off.link_faults.empty());
  EXPECT_TRUE(off.bank_faults.empty());
  EXPECT_TRUE(off.mc_pressure.empty());
  EXPECT_EQ(off.resilience.max_retries, 2);  // resilience retained
  EXPECT_FALSE(off.Empty());
}

TEST(Schedule, StormIsDeterministicInItsSpec) {
  StormSpec spec;
  spec.num_links = 100;
  spec.num_mcs = 4;
  spec.banks_per_mc = 16;
  spec.horizon = 10000;
  spec.intensity = 0.8;
  spec.seed = 42;
  FaultSchedule a = MakeStorm(spec);
  FaultSchedule b = MakeStorm(spec);
  EXPECT_EQ(a.CanonicalString(), b.CanonicalString());
  EXPECT_FALSE(a.link_faults.empty());
  EXPECT_FALSE(a.bank_faults.empty());

  spec.seed = 43;
  EXPECT_NE(MakeStorm(spec).CanonicalString(), a.CanonicalString());

  spec.intensity = 0.0;
  FaultSchedule calm = MakeStorm(spec);
  EXPECT_TRUE(calm.link_faults.empty());
  EXPECT_TRUE(calm.bank_faults.empty());
  EXPECT_TRUE(calm.mc_pressure.empty());
}

// ----------------------------------------------------------- injector ---

TEST(Injector, SameSeedYieldsIdenticalDropDecisions) {
  FaultSchedule s;
  s.seed = 11;
  s.link_faults.push_back({5, 0, 1000, 0, 0.5});
  FaultInjector a(s), b(s);
  for (sim::Cycle t = 0; t < 200; ++t) {
    LinkEffect ea = a.OnLinkTraverse(5, t);
    LinkEffect eb = b.OnLinkTraverse(5, t);
    EXPECT_EQ(ea.drop, eb.drop) << "cycle " << t;
  }
  EXPECT_EQ(a.counts().link_drops, b.counts().link_drops);
  EXPECT_GT(a.counts().link_drops, 0u);   // p=0.5 over 200 draws
  EXPECT_LT(a.counts().link_drops, 200u);
}

TEST(Injector, WindowsMatchByIdAndCycleAndAccumulate) {
  FaultSchedule s;
  s.link_faults.push_back({5, 100, 200, 8, 0.0});
  s.link_faults.push_back({5, 150, 300, 4, 0.0});
  FaultInjector inj(s);
  EXPECT_EQ(inj.OnLinkTraverse(5, 99).extra_latency, 0u);   // before window
  EXPECT_EQ(inj.OnLinkTraverse(5, 100).extra_latency, 8u);
  EXPECT_EQ(inj.OnLinkTraverse(5, 150).extra_latency, 12u);  // overlap sums
  EXPECT_EQ(inj.OnLinkTraverse(5, 200).extra_latency, 4u);   // end exclusive
  EXPECT_EQ(inj.OnLinkTraverse(6, 150).extra_latency, 0u);   // other link
}

TEST(Injector, StallDominatesNackAndStallEndCoversLatestWindow) {
  FaultSchedule s;
  s.bank_faults.push_back({0, 3, 100, 500, BankFaultKind::kNack});
  s.bank_faults.push_back({0, 3, 200, 900, BankFaultKind::kStall});
  FaultInjector inj(s);
  EXPECT_EQ(inj.OnBankSchedule(0, 3, 150), BankEffect::kNack);
  EXPECT_EQ(inj.OnBankSchedule(0, 3, 250), BankEffect::kStall);
  EXPECT_EQ(inj.StallEnd(0, 3, 250), 900u);
  EXPECT_EQ(inj.OnBankSchedule(0, 3, 950), BankEffect::kHealthy);
  EXPECT_EQ(inj.OnBankSchedule(1, 3, 250), BankEffect::kHealthy);
}

TEST(Injector, McPressureSumsMatchingWindows) {
  FaultSchedule s;
  s.mc_pressure.push_back({2, 0, 100, 16});
  s.mc_pressure.push_back({2, 50, 100, 4});
  FaultInjector inj(s);
  EXPECT_EQ(inj.OnMcEnqueue(2, 10), 16u);
  EXPECT_EQ(inj.OnMcEnqueue(2, 60), 20u);
  EXPECT_EQ(inj.OnMcEnqueue(2, 100), 0u);
  EXPECT_EQ(inj.OnMcEnqueue(0, 10), 0u);
  EXPECT_EQ(inj.counts().mc_pressure_hits, 2u);
}

// ------------------------------------------------------- conservation ---

TEST(Conservation, HealthyCountersPass) {
  ConservationInputs in;
  in.offloads = 10;
  in.ndc_success = 4;
  in.fallbacks = 6;
  in.packets_sent = 100;
  in.packets_delivered = 95;
  in.packets_squashed = 5;
  in.packets_dropped = 7;
  in.packets_retransmitted = 7;
  in.mc_reads = 50;
  in.mc_reads_done = 50;
  in.mc_nacks = 3;
  in.mc_nack_retries = 3;
  EXPECT_TRUE(CheckConservation(in).ok);
}

TEST(Conservation, EachLostRequestIsNamed) {
  ConservationInputs in;
  in.offloads = 10;
  in.ndc_success = 4;
  in.fallbacks = 5;        // one offload vanished
  in.cores_incomplete = 2; // two cores never finished
  in.mc_reads = 50;
  in.mc_reads_done = 49;   // one read lost
  ConservationReport rep = CheckConservation(in);
  EXPECT_FALSE(rep.ok);
  EXPECT_EQ(rep.violations.size(), 3u);
  EXPECT_NE(rep.ToString().find("offloads"), std::string::npos);
}

// ------------------------------------------------- decision-log audit ---

TEST(DecisionLog, RetriesAreCountedAndEmittedOnlyWhenNonZero) {
  obs::DecisionLog log;
  log.Record(1, 0, 0, obs::DecisionKind::kOffload, 0, 10);
  log.Record(2, 0, 1, obs::DecisionKind::kOffload, 0, 11);
  log.NoteRetry(1);
  log.NoteRetry(1);
  log.NoteRetry(99);  // unknown uid: ignored
  log.Resolve(1, obs::Outcome::kDegradedToHost, -1, 500);
  log.NoteRetry(1);   // resolved: ignored
  log.Resolve(2, obs::Outcome::kNdcSuccess, 2, 40);

  EXPECT_EQ(log.total_retries(), 2u);
  EXPECT_EQ(log.outcome_count(obs::Outcome::kDegradedToHost), 1u);
  std::string jsonl = log.ToJsonl();
  EXPECT_NE(jsonl.find("\"retries\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("degraded_to_host"), std::string::npos);
  // Fault-free entries stay byte-identical: no retries key at zero.
  std::size_t second = jsonl.find('\n') + 1;
  EXPECT_EQ(jsonl.find("\"retries\"", second), std::string::npos);
}

// --------------------------------------------------- machine behavior ---

ConservationInputs RunFaulted(metrics::Experiment& exp, const FaultSchedule& sched,
                              metrics::SchemeResult* out,
                              metrics::Scheme scheme = metrics::Scheme::kAlgorithm1) {
  exp.set_faults(&sched);
  *out = exp.Run(scheme);
  exp.set_faults(nullptr);
  EXPECT_TRUE(exp.have_fault_report());
  return exp.last_conservation();
}

TEST(Machine, TotalBankOutageForcesRetriesThenDegradesGracefully) {
  arch::ArchConfig cfg;
  metrics::Experiment exp("fft", workloads::Scale::kTest, cfg);

  // Stall every bank of every controller far beyond the wait timeout: any
  // offload waiting on a DRAM-sourced operand must exhaust its retry budget
  // and degrade to the host core — but the run still completes and no
  // request is lost.
  FaultSchedule sched;
  sched.resilience.max_retries = 1;
  for (int mc = 0; mc < cfg.num_mcs; ++mc) {
    for (int b = 0; b < cfg.MakeAddressMap().banks_per_mc; ++b) {
      sched.bank_faults.push_back(
          {static_cast<sim::McId>(mc), b, 0, 2'000'000, BankFaultKind::kStall});
    }
  }

  metrics::SchemeResult r;
  ConservationInputs cons = RunFaulted(exp, sched, &r);
  EXPECT_GT(r.run.stats.Get("ndc.retries"), 0u);
  EXPECT_GT(r.run.stats.Get("ndc.degraded_to_host"), 0u);
  EXPECT_GE(r.run.makespan, 2'000'000u);  // the outage gates completion
  EXPECT_TRUE(CheckConservation(cons).ok) << CheckConservation(cons).ToString();
}

TEST(Machine, FaultedRunsAreSeedReproducible) {
  StormSpec spec;
  arch::ArchConfig cfg;
  spec.num_links = cfg.num_nodes() * 4;
  spec.num_mcs = cfg.num_mcs;
  spec.banks_per_mc = cfg.MakeAddressMap().banks_per_mc;
  spec.horizon = 6000;
  spec.intensity = 0.75;
  spec.seed = 5;
  FaultSchedule sched = MakeStorm(spec);

  metrics::SchemeResult a, b;
  {
    metrics::Experiment exp("fft", workloads::Scale::kTest, cfg);
    RunFaulted(exp, sched, &a);
    RunFaulted(exp, sched, &b);  // same Experiment: fresh injector per run
  }
  EXPECT_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.run.stats.all(), b.run.stats.all());

  metrics::Experiment exp2("fft", workloads::Scale::kTest, cfg);
  metrics::SchemeResult c;
  RunFaulted(exp2, sched, &c);
  EXPECT_EQ(a.run.makespan, c.run.makespan);
  EXPECT_EQ(a.run.stats.all(), c.run.stats.all());
}

TEST(Machine, ConservationHoldsUnderRandomizedFaultStorms) {
  arch::ArchConfig cfg;
  StormSpec spec;
  spec.num_links = cfg.num_nodes() * 4;
  spec.num_mcs = cfg.num_mcs;
  spec.banks_per_mc = cfg.MakeAddressMap().banks_per_mc;
  spec.horizon = 6000;

  for (std::uint64_t seed : {1u, 2u, 3u}) {
    for (double intensity : {0.3, 0.7, 1.0}) {
      spec.seed = seed;
      spec.intensity = intensity;
      FaultSchedule sched = MakeStorm(spec);
      metrics::Experiment exp("fft", workloads::Scale::kTest, cfg);
      metrics::SchemeResult r;
      ConservationInputs cons = RunFaulted(exp, sched, &r);
      ConservationReport rep = CheckConservation(cons);
      EXPECT_TRUE(rep.ok) << "seed=" << seed << " intensity=" << intensity << "\n"
                          << rep.ToString();
      EXPECT_GT(r.run.makespan, 0u);
    }
  }
}

TEST(Machine, EmptyScheduleIsBitIdenticalToNoSchedule) {
  arch::ArchConfig cfg;
  metrics::Experiment plain("fft", workloads::Scale::kTest, cfg);
  metrics::SchemeResult a = plain.Run(metrics::Scheme::kAlgorithm1);

  FaultSchedule empty;
  ASSERT_TRUE(empty.Empty());
  metrics::Experiment faulted("fft", workloads::Scale::kTest, cfg);
  faulted.set_faults(&empty);
  metrics::SchemeResult b = faulted.Run(metrics::Scheme::kAlgorithm1);

  EXPECT_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.run.stats.all(), b.run.stats.all());
  EXPECT_FALSE(faulted.have_fault_report());
  // No fault counter may leak into the fault-free stat set (golden freeze).
  for (const auto& [name, value] : a.run.stats.all()) {
    EXPECT_EQ(name.find("ndc.retries"), std::string::npos) << name;
    EXPECT_EQ(name.find("ndc.degraded_to_host"), std::string::npos) << name;
    EXPECT_EQ(name.find("noc.drops"), std::string::npos) << name;
    EXPECT_EQ(name.find("mc.nacks"), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace ndc::fault
