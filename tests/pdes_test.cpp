// Conservative-window PDES (sim/sharded_queue): canonical cross-shard merge
// order, bit-reproducibility across thread counts, sharded-vs-single-queue
// execution equivalence, the idle-quadrant clock contract, and far-horizon
// scheduling across window barriers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <tuple>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/sharded_queue.hpp"

namespace ndc::sim {
namespace {

constexpr Cycle kLookahead = 4;  // the NoC minimum: router pipeline 3 + 1

/// One execution-log entry, recorded into the executing shard's private log
/// so multi-threaded runs record race-free.
struct LogEntry {
  Cycle cycle;
  std::uint64_t id;
  bool operator==(const LogEntry& o) const { return cycle == o.cycle && id == o.id; }
  bool operator<(const LogEntry& o) const {
    return std::tie(cycle, id) < std::tie(o.cycle, o.id);
  }
};

/// splitmix64: each event's behavior is a pure function of its id, so the
/// event tree is identical no matter which order ties execute in.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4568bull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// A self-expanding randomized workload over `n` shards: every event may
/// spawn intra-shard children (delay 0 = reentrant same-cycle, up to 9000 =
/// beyond the 4096-cycle wheel) and cross-shard children at >= lookahead.
/// All parameters derive from the event id via Mix(), never from execution
/// order.
struct TreeHarness {
  ShardedEventQueue* sq;
  std::vector<std::vector<LogEntry>> logs;  // per shard

  explicit TreeHarness(ShardedEventQueue* q) : sq(q), logs(q->num_shards()) {}

  void Fire(int shard, std::uint64_t id, int depth) {
    logs[static_cast<std::size_t>(shard)].push_back(
        LogEntry{sq->shard(shard).now(), id});
    if (depth >= 5) return;
    std::uint64_t h = Mix(id);
    int kids = static_cast<int>(h % 3);  // 0..2 children
    for (int k = 0; k < kids; ++k) {
      std::uint64_t kid = Mix(id * 8 + static_cast<std::uint64_t>(k) + 1);
      bool cross = (kid & 7) == 0;
      Cycle now = sq->shard(shard).now();
      if (cross) {
        int dst = static_cast<int>((kid >> 3) % static_cast<std::uint64_t>(
                                                    sq->num_shards()));
        Cycle when = now + kLookahead + (kid >> 6) % 50;
        sq->ScheduleOn(dst, when,
                       [this, dst, kid, depth] { Fire(dst, kid, depth + 1); });
      } else {
        Cycle delay = (kid >> 3) % 8 == 0 ? (kid >> 6) % 9000  // far horizon
                                          : (kid >> 6) % 40;   // incl. 0
        sq->shard(shard).ScheduleAt(
            now + delay, [this, shard, kid, depth] { Fire(shard, kid, depth + 1); });
      }
    }
  }

  void Seed(std::uint64_t seed, int roots) {
    for (int r = 0; r < roots; ++r) {
      std::uint64_t id = Mix(seed + static_cast<std::uint64_t>(r));
      int shard = r % sq->num_shards();
      Cycle when = id % 64;
      sq->ScheduleOn(shard, when, [this, shard, id] { Fire(shard, id, 0); });
    }
  }
};

std::vector<std::vector<LogEntry>> RunTree(int shards, int threads,
                                           std::uint64_t seed) {
  ShardedEventQueue sq(shards, kLookahead);
  TreeHarness h(&sq);
  h.Seed(seed, 4 * shards);
  sq.RunUntilEmpty(kNeverCycle, threads);
  EXPECT_EQ(sq.pending(), 0u);
  return std::move(h.logs);
}

TEST(ShardedQueue, BitIdenticalAcrossThreadCounts) {
  for (std::uint64_t seed : {1ull, 42ull, 1234567ull}) {
    auto one = RunTree(4, 1, seed);
    auto two = RunTree(4, 2, seed);
    auto four = RunTree(4, 4, seed);
    auto eight = RunTree(4, 8, seed);  // clamped to num_shards
    // Exact per-shard logs — order-sensitive, so any tie resolved
    // differently under a different thread count would fail here.
    EXPECT_EQ(one, two) << "seed " << seed;
    EXPECT_EQ(one, four) << "seed " << seed;
    EXPECT_EQ(one, eight) << "seed " << seed;
  }
}

TEST(ShardedQueue, MatchesSingleQueueExecution) {
  // The same event tree simulated on one flat EventQueue (virtual shards
  // tagged into the log) must execute the same multiset of (cycle, id) per
  // shard: sharding may permute same-cycle ties but never an event's cycle,
  // its shard, or the set of events that fire.
  for (std::uint64_t seed : {7ull, 99ull}) {
    constexpr int kShards = 4;
    EventQueue flat;
    std::vector<std::vector<LogEntry>> flat_logs(kShards);
    std::function<void(int, std::uint64_t, int)> fire = [&](int shard,
                                                            std::uint64_t id,
                                                            int depth) {
      flat_logs[static_cast<std::size_t>(shard)].push_back(
          LogEntry{flat.now(), id});
      if (depth >= 5) return;
      std::uint64_t h = Mix(id);
      int kids = static_cast<int>(h % 3);
      for (int k = 0; k < kids; ++k) {
        std::uint64_t kid = Mix(id * 8 + static_cast<std::uint64_t>(k) + 1);
        bool cross = (kid & 7) == 0;
        if (cross) {
          int dst = static_cast<int>((kid >> 3) % kShards);
          Cycle when = flat.now() + kLookahead + (kid >> 6) % 50;
          flat.ScheduleAt(when, [&fire, dst, kid, depth] { fire(dst, kid, depth + 1); });
        } else {
          Cycle delay = (kid >> 3) % 8 == 0 ? (kid >> 6) % 9000 : (kid >> 6) % 40;
          flat.ScheduleAt(flat.now() + delay,
                          [&fire, shard, kid, depth] { fire(shard, kid, depth + 1); });
        }
      }
    };
    for (int r = 0; r < 4 * kShards; ++r) {
      std::uint64_t id = Mix(seed + static_cast<std::uint64_t>(r));
      int shard = r % kShards;
      flat.ScheduleAt(id % 64, [&fire, shard, id] { fire(shard, id, 0); });
    }
    std::uint64_t flat_count = flat.RunUntilEmpty();

    auto sharded = RunTree(kShards, 3, seed);
    std::uint64_t sharded_count = 0;
    for (int s = 0; s < kShards; ++s) {
      sharded_count += sharded[static_cast<std::size_t>(s)].size();
      std::sort(flat_logs[static_cast<std::size_t>(s)].begin(),
                flat_logs[static_cast<std::size_t>(s)].end());
      std::sort(sharded[static_cast<std::size_t>(s)].begin(),
                sharded[static_cast<std::size_t>(s)].end());
      EXPECT_EQ(flat_logs[static_cast<std::size_t>(s)],
                sharded[static_cast<std::size_t>(s)])
          << "seed " << seed << " shard " << s;
    }
    EXPECT_EQ(flat_count, sharded_count) << "seed " << seed;
  }
}

TEST(ShardedQueue, CanonicalCrossShardMergeOrder) {
  // Three sources post to shard 0 for the same delivery cycle. Canonical
  // order: post cycle ascending, then source shard ascending, then per-src
  // FIFO — and locally scheduled same-cycle events (inserted during setup)
  // keep their earlier FIFO position.
  ShardedEventQueue sq(4, kLookahead);
  std::vector<int> order;
  constexpr Cycle kWhen = 40;
  sq.shard(0).ScheduleAt(kWhen, [&] { order.push_back(0); });  // local first
  // Source shards emit their posts while executing cycle-10/11 events.
  sq.shard(2).ScheduleAt(10, [&] {
    sq.ScheduleOn(0, kWhen, [&] { order.push_back(2); });  // posted 10, src 2
    sq.ScheduleOn(0, kWhen, [&] { order.push_back(3); });  // posted 10, src 2, later
  });
  sq.shard(1).ScheduleAt(10, [&] {
    sq.ScheduleOn(0, kWhen, [&] { order.push_back(1); });  // posted 10, src 1
  });
  sq.shard(3).ScheduleAt(9, [&] {
    sq.shard(3).ScheduleAt(11, [&] {
      sq.ScheduleOn(0, kWhen, [&] { order.push_back(4); });  // posted 11, src 3
    });
  });
  sq.RunUntilEmpty(kNeverCycle, 4);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ShardedQueue, IdleShardClockAdvancesToWindowBoundary) {
  // The RunUntilEmpty(limit) clock contract under sharding: a shard that
  // drains early — or never holds an event at all — still ends at
  // now() == limit, so later cross-shard sends computed off its clock can
  // never violate lookahead.
  ShardedEventQueue sq(4, kLookahead);
  int fired = 0;
  sq.shard(0).ScheduleAt(50, [&] {
    ++fired;
    // Post into a so-far-idle quadrant, off the live shard's clock.
    sq.ScheduleOn(3, sq.shard(0).now() + kLookahead, [&] {
      ++fired;
      EXPECT_EQ(sq.shard(3).now(), 54u);
    });
  });
  sq.RunUntilEmpty(1000, 2);
  EXPECT_EQ(fired, 2);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(sq.shard(s).now(), 1000u) << "shard " << s;
  }
  // A limit in the past never moves a clock backwards.
  sq.RunUntilEmpty(10, 2);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(sq.shard(s).now(), 1000u);
}

TEST(ShardedQueue, BoundedRunStopsAtLimitAndResumes) {
  ShardedEventQueue sq(2, kLookahead);
  std::vector<Cycle> fired;
  for (Cycle c : {10u, 100u, 200u, 300u}) {
    sq.shard(0).ScheduleAt(c, [&fired, &sq] { fired.push_back(sq.shard(0).now()); });
  }
  std::uint64_t n1 = sq.RunUntilEmpty(100, 2);  // events at exactly limit run
  EXPECT_EQ(n1, 2u);
  EXPECT_EQ(fired, (std::vector<Cycle>{10, 100}));
  EXPECT_EQ(sq.shard(1).now(), 100u);
  std::uint64_t n2 = sq.RunUntilEmpty(kNeverCycle, 2);
  EXPECT_EQ(n2, 2u);
  EXPECT_EQ(fired, (std::vector<Cycle>{10, 100, 200, 300}));
  EXPECT_EQ(sq.executed(), 4u);
}

TEST(ShardedQueue, FarHorizonCrossShardDelivery) {
  // Far beyond the 4096-cycle wheel and across many empty windows: the
  // empty-window skip must jump straight to the next event, and mailbox
  // delivery of a far-future cycle must land in the overflow level intact.
  ShardedEventQueue sq(4, kLookahead);
  std::vector<std::uint64_t> hits;
  sq.shard(1).ScheduleAt(3, [&] {
    sq.ScheduleOn(2, 1'000'000, [&] {
      hits.push_back(sq.shard(2).now());
      sq.ScheduleOn(0, sq.shard(2).now() + 20'000, [&] {
        hits.push_back(sq.shard(0).now());
      });
    });
  });
  sq.RunUntilEmpty(kNeverCycle, 4);
  EXPECT_EQ(hits, (std::vector<std::uint64_t>{1'000'000, 1'020'000}));
  EXPECT_EQ(sq.executed(), 3u);
  EXPECT_EQ(sq.now(), 1'020'000u + kLookahead - 1);
}

TEST(ShardedQueue, ReentrantSameCycleSchedulingInsideWindow) {
  // An event scheduling at its own cycle runs in the same window, after
  // every event already queued for that cycle (the §10 FIFO contract).
  ShardedEventQueue sq(2, kLookahead);
  std::vector<int> order;
  sq.shard(0).ScheduleAt(5, [&] {
    order.push_back(1);
    sq.shard(0).ScheduleAt(5, [&] { order.push_back(3); });
  });
  sq.shard(0).ScheduleAt(5, [&] { order.push_back(2); });
  sq.RunUntilEmpty(kNeverCycle, 2);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(ShardedQueue, SingleShardDegeneratesToPlainQueue) {
  ShardedEventQueue sq(1, kLookahead);
  std::vector<int> order;
  sq.ScheduleOn(0, 10, [&] { order.push_back(2); });
  sq.ScheduleOn(0, 5, [&] { order.push_back(1); });
  sq.RunUntilEmpty(kNeverCycle, 8);  // thread count clamps to 1
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sq.now(), 10u);
}

}  // namespace
}  // namespace ndc::sim
