// Tests for the compiler analyses: dependence analysis (uniform distances,
// bounded delinearization, hoist legality), reuse analysis, use-use chains,
// and the Cache Miss Equations estimator.

#include <gtest/gtest.h>

#include "analysis/cme.hpp"
#include "analysis/dependence.hpp"
#include "analysis/reuse.hpp"
#include "analysis/use_use.hpp"
#include "ir/program.hpp"
#include "sim/rng.hpp"

namespace ndc::analysis {
namespace {

using ir::AffineAccess;
using ir::Int;
using ir::IntMat;
using ir::IntVec;
using ir::LoopNest;
using ir::Operand;
using ir::Program;
using ir::Stmt;

// --- helpers --------------------------------------------------------------

Operand Aff(int array, IntVec coefs, Int off) {
  AffineAccess a;
  a.array = array;
  a.F = IntMat(1, static_cast<int>(coefs.size()));
  for (int c = 0; c < a.F.cols(); ++c) a.F.at(0, c) = coefs[static_cast<std::size_t>(c)];
  a.f = {off};
  return Operand::Affine(a);
}

struct TestNest {
  Program p;
  LoopNest* nest;
  int arr;

  TestNest(Int n0, Int n1, Int elems = 100000) {
    arr = p.AddArray("A", {elems});
    LoopNest ln;
    ln.loops = {{0, n0 - 1, -1, 0, -1, 0}, {0, n1 - 1, -1, 0, -1, 0}};
    p.nests.push_back(ln);
    nest = &p.nests.back();
  }

  Stmt& Add(Operand lhs, Operand r0, Operand r1) {
    Stmt s;
    s.id = p.NextStmtId();
    s.lhs = std::move(lhs);
    s.rhs0 = std::move(r0);
    s.rhs1 = std::move(r1);
    nest->body.push_back(std::move(s));
    return nest->body.back();
  }
};

// --- SolveUniformDistance (delinearization) --------------------------------

TEST(Delinearize, RowMajorUnique) {
  // F = [64, 1], trips (32, 64): distance d = 64*a + b, |b| < 64.
  // Trip counts (32, 32) with inner coefficient 64: |delta1| <= 31 keeps the
  // decomposition unique.
  IntMat f(1, 2, {64, 1});
  IntVec d;
  ASSERT_TRUE(SolveUniformDistance(f, {32, 32}, {64 + 3}, &d));
  EXPECT_EQ(d, (IntVec{1, 3}));
  ASSERT_TRUE(SolveUniformDistance(f, {32, 32}, {-5}, &d));
  EXPECT_EQ(d, (IntVec{0, -5}));
  ASSERT_TRUE(SolveUniformDistance(f, {32, 32}, {63}, &d));
  EXPECT_EQ(d, (IntVec{1, -1}));  // 64 - 1, the unique bounded decomposition
}

TEST(Delinearize, RejectsAmbiguous) {
  // F = [2, 2]: d=2 has solutions (1,0) and (0,1) within bounds.
  IntMat f(1, 2, {2, 2});
  IntVec d;
  EXPECT_FALSE(SolveUniformDistance(f, {10, 10}, {2}, &d));
}

TEST(Delinearize, RejectsOutOfBounds) {
  IntMat f(1, 2, {64, 1});
  IntVec d;
  // d = 40*64: delta0 = 40 exceeds the trip count 32.
  EXPECT_FALSE(SolveUniformDistance(f, {32, 32}, {40 * 64}, &d));
}

TEST(Delinearize, AmbiguousWhenInnerRangeCoversCoefficient) {
  // With trip1 = 64 and coefficient 64, d = 67 decomposes as (1,3) and
  // (2,-61): the solver must refuse rather than guess.
  IntMat f(1, 2, {64, 1});
  IntVec d;
  EXPECT_FALSE(SolveUniformDistance(f, {32, 64}, {67}, &d));
}

TEST(Delinearize, SquareFullRankUsesExactSolve) {
  IntMat f(2, 2, {1, 0, 0, 1});
  IntVec d;
  ASSERT_TRUE(SolveUniformDistance(f, {10, 10}, {3, -2}, &d));
  EXPECT_EQ(d, (IntVec{3, -2}));
}

// Property: delinearization agrees with brute force over a 2-level space.
TEST(Delinearize, MatchesBruteForceProperty) {
  sim::Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    Int c1 = rng.NextInRange(4, 40);
    IntMat f(1, 2, {c1, 1});
    Int t0 = rng.NextInRange(2, 12), t1 = c1;  // nested structure
    Int d0 = rng.NextInRange(-(t0 - 1), t0 - 1);
    Int d1 = rng.NextInRange(-(t1 - 1), t1 - 1);
    Int rhs = c1 * d0 + d1;
    // Count bounded solutions by brute force.
    int solutions = 0;
    IntVec expect;
    for (Int a = -(t0 - 1); a <= t0 - 1; ++a) {
      for (Int b = -(t1 - 1); b <= t1 - 1; ++b) {
        if (c1 * a + b == rhs) {
          ++solutions;
          expect = {a, b};
        }
      }
    }
    IntVec got;
    bool ok = SolveUniformDistance(f, {t0, t1}, {rhs}, &got);
    if (solutions == 1) {
      ASSERT_TRUE(ok) << "c1=" << c1 << " rhs=" << rhs;
      EXPECT_EQ(got, expect);
    } else {
      EXPECT_FALSE(ok);
    }
  }
}

TEST(Delinearize, ZeroCoefficientLoopIsPinnedToZero) {
  // F = [64, 0]: the inner loop never moves the subscript. The solver must
  // canonicalize its distance to 0 (any other value names the same solution
  // family) and still produce a unique answer for the outer component.
  IntMat f(1, 2, {64, 0});
  IntVec d;
  ASSERT_TRUE(SolveUniformDistance(f, {32, 32}, {128}, &d));
  EXPECT_EQ(d, (IntVec{2, 0}));
  // A residue the coefficients cannot reach has no solution at all.
  EXPECT_FALSE(SolveUniformDistance(f, {32, 32}, {130}, &d));
}

TEST(Delinearize, DeltaExactlyAtTripBoundaryIsRejected) {
  // F = [8, 1], trips (4, 8): |delta_k| must stay strictly below the trip
  // count. rhs = 31 = 8*3 + 7 is the largest representable distance;
  // rhs = 32 would need delta = (4,0) or (3,8), both at the boundary.
  IntMat f(1, 2, {8, 1});
  IntVec d;
  ASSERT_TRUE(SolveUniformDistance(f, {4, 8}, {31}, &d));
  EXPECT_EQ(d, (IntVec{3, 7}));
  EXPECT_FALSE(SolveUniformDistance(f, {4, 8}, {32}, &d));
  EXPECT_FALSE(SolveUniformDistance(f, {4, 8}, {-32}, &d));
}

TEST(Delinearize, TriangularBoundsFeedMidpointTrips) {
  // Inner bound j <= i over i in [0,7]: AvgTrips evaluates the dependent
  // bound at the outer midpoint (i=3), giving trips (8, 4). Distances legal
  // under the midpoint trip solve; distances needing the full rectangular
  // range do not.
  LoopNest nest;
  nest.loops = {{0, 7, -1, 0, -1, 0}, {0, 0, -1, 0, 0, 1}};
  std::vector<Int> trips = AvgTrips(nest);
  ASSERT_EQ(trips, (std::vector<Int>{8, 4}));
  IntMat f(1, 2, {8, 1});
  IntVec d;
  ASSERT_TRUE(SolveUniformDistance(f, trips, {3}, &d));
  EXPECT_EQ(d, (IntVec{0, 3}));
  // |delta1| = 4 is representable in the full 8-wide inner range but not
  // under the conservative midpoint trip of 4.
  EXPECT_FALSE(SolveUniformDistance(f, trips, {4}, &d));
}

// --- kernel vectors ---------------------------------------------------------

TEST(KernelVector, UnitVectorForDroppedLoop) {
  IntMat f(1, 2, {1, 0});  // subscript ignores the inner loop
  IntVec k;
  ASSERT_TRUE(SmallestKernelVector(f, 2, &k));
  EXPECT_EQ(k, (IntVec{0, 1}));
}

TEST(KernelVector, DifferenceVector) {
  IntMat f(1, 2, {1, -1});  // diagonal access: (i+1, j+1) same element
  IntVec k;
  ASSERT_TRUE(SmallestKernelVector(f, 2, &k));
  EXPECT_EQ(f.Apply(k), (IntVec{0}));
  EXPECT_TRUE(ir::LexPositive(k));
}

TEST(KernelVector, NoneForInjectiveAccess) {
  IntMat f(1, 2, {100, 1});
  IntVec k;
  EXPECT_FALSE(SmallestKernelVector(f, 2, &k));
}

// --- dependence analysis ----------------------------------------------------

TEST(Dependence, StencilFlowDistance) {
  // x(i,j) writes M*i + j + M+1; reads offsets 1 and M: distances (1,0),(0,1)
  Int M = 34;
  TestNest t(32, 32, M * M + 2 * M);
  t.Add(Aff(t.arr, {M, 1}, M + 1), Aff(t.arr, {M, 1}, 1), Aff(t.arr, {M, 1}, M));
  DependenceSet deps = AnalyzeDependences(t.p, *t.nest);
  ASSERT_FALSE(deps.deps.empty());
  bool have_10 = false, have_01 = false;
  for (const Dependence& d : deps.deps) {
    if (!d.distance_known) continue;
    if (d.distance == IntVec{1, 0}) have_10 = true;
    if (d.distance == IntVec{0, 1}) have_01 = true;
  }
  EXPECT_TRUE(have_10);
  EXPECT_TRUE(have_01);
}

TEST(Dependence, IndependentArraysProduceNothing) {
  TestNest t(8, 8);
  int b = t.p.AddArray("B", {10000});
  int c = t.p.AddArray("C", {10000});
  t.Add(Aff(c, {8, 1}, 0), Aff(t.arr, {8, 1}, 0), Aff(b, {8, 1}, 0));
  DependenceSet deps = AnalyzeDependences(t.p, *t.nest);
  EXPECT_TRUE(deps.deps.empty());
  EXPECT_FALSE(deps.has_unknown);
}

TEST(Dependence, IndirectMarksArrayUnknown) {
  TestNest t(8, 8);
  int idx = t.p.AddArray("idx", {64});
  int tgt = t.p.AddArray("T", {100});
  t.p.index_data[idx] = std::vector<Int>(64, 1);
  AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 2, {8, 1});
  ia.f = {0};
  // write through indirection + read of the same target array
  t.Add(Operand::Indirect(ia, tgt), Aff(tgt, {8, 1}, 0), Aff(t.arr, {8, 1}, 0));
  DependenceSet deps = AnalyzeDependences(t.p, *t.nest);
  EXPECT_TRUE(deps.has_unknown);
  EXPECT_FALSE(deps.ReadHoistIsSafe(tgt, 4, 8));
  // The unrelated array A is still hoistable.
  EXPECT_TRUE(deps.ReadHoistIsSafe(t.arr, 4, 8));
}

TEST(Dependence, ReadHoistBlockedByShortDistance) {
  Int M = 34;
  TestNest t(32, 32, M * M + 2 * M);
  t.Add(Aff(t.arr, {M, 1}, M + 1), Aff(t.arr, {M, 1}, 1), Aff(t.arr, {M, 1}, M));
  DependenceSet deps = AnalyzeDependences(t.p, *t.nest);
  // Distance (0,1) linearizes to 1: any hoist crosses it.
  EXPECT_FALSE(deps.ReadHoistIsSafe(t.arr, 2, 32));
  EXPECT_TRUE(deps.ReadHoistIsSafe(t.arr, 0, 32));
}

TEST(Dependence, ReadOnlyArrayAlwaysHoistable) {
  TestNest t(16, 16);
  int b = t.p.AddArray("B", {10000});
  t.Add(Aff(b, {16, 1}, 0), Aff(t.arr, {16, 1}, 0), Aff(t.arr, {16, 1}, 7));
  DependenceSet deps = AnalyzeDependences(t.p, *t.nest);
  EXPECT_TRUE(deps.ReadHoistIsSafe(t.arr, 100, 16));
}

TEST(Dependence, MatrixColumnsAreLexPositive) {
  Int M = 34;
  TestNest t(32, 32, M * M + 2 * M);
  t.Add(Aff(t.arr, {M, 1}, M + 1), Aff(t.arr, {M, 1}, 1), Aff(t.arr, {M, 1}, M));
  DependenceSet deps = AnalyzeDependences(t.p, *t.nest);
  IntMat D = deps.DependenceMatrix(2);
  for (int c = 0; c < D.cols(); ++c) {
    IntVec col{D.at(0, c), D.at(1, c)};
    EXPECT_TRUE(ir::LexPositive(col));
  }
}

// --- reuse analysis ---------------------------------------------------------

TEST(Reuse, SelfTemporalWhenLoopDropped) {
  TestNest t(8, 8);
  t.Add(Operand::None(), Aff(t.arr, {1, 0}, 0), Aff(t.arr, {8, 1}, 0));
  const Stmt& s = t.nest->body[0];
  ReuseInfo r = AnalyzeReuse(t.p, *t.nest, s.rhs0, 64);
  EXPECT_TRUE(r.self_temporal);
  ReuseInfo r2 = AnalyzeReuse(t.p, *t.nest, s.rhs1, 64);
  EXPECT_FALSE(r2.self_temporal);
}

TEST(Reuse, SelfSpatialForDenseStride) {
  TestNest t(8, 8);
  t.Add(Operand::None(), Aff(t.arr, {8, 1}, 0), Aff(t.arr, {64, 8}, 0));
  const Stmt& s = t.nest->body[0];
  EXPECT_TRUE(AnalyzeReuse(t.p, *t.nest, s.rhs0, 64).self_spatial);
  // 8-element (64-byte) stride: a new line every access.
  EXPECT_FALSE(AnalyzeReuse(t.p, *t.nest, s.rhs1, 64).self_spatial);
}

TEST(Reuse, GroupReuseBetweenOffsetRefs) {
  Int M = 34;
  TestNest t(32, 32, 4 * M * M);
  t.Add(Operand::None(), Aff(t.arr, {M, 1}, M), Aff(t.arr, {M, 1}, 1));
  const Stmt& s = t.nest->body[0];
  ReuseInfo r = AnalyzeReuse(t.p, *t.nest, s.rhs0, 64);
  EXPECT_TRUE(r.group);
}

TEST(Reuse, CountFutureReusesDirectional) {
  // The swim pattern: p(+M) in S1 is re-touched by p(+1) one outer iteration
  // later (future); p(+1) in S2's reuse source is in the past.
  Int M = 34;
  TestNest t(32, 32, 4 * M * M);
  int u = t.p.AddArray("u", {10000});
  int v = t.p.AddArray("v", {10000});
  t.Add(Aff(u, {32, 1}, 0), Aff(t.arr, {M, 1}, M), Aff(u, {32, 1}, 100));
  t.Add(Aff(v, {32, 1}, 0), Aff(t.arr, {M, 1}, 1), Aff(v, {32, 1}, 100));
  const Stmt& s1 = t.nest->body[0];
  const Stmt& s2 = t.nest->body[1];
  EXPECT_GT(CountFutureReuses(t.p, *t.nest, s1, s1.rhs0), 0);
  EXPECT_EQ(CountFutureReuses(t.p, *t.nest, s2, s2.rhs0), 0);
}

TEST(Reuse, IndirectOperandsReportZero) {
  TestNest t(8, 8);
  int idx = t.p.AddArray("idx", {64});
  int tgt = t.p.AddArray("T", {100});
  AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 2, {8, 1});
  ia.f = {0};
  t.Add(Operand::None(), Operand::Indirect(ia, tgt), Aff(t.arr, {8, 1}, 0));
  const Stmt& s = t.nest->body[0];
  EXPECT_EQ(CountFutureReuses(t.p, *t.nest, s, s.rhs0), 0);
}

// --- use-use chains ---------------------------------------------------------

TEST(UseUse, OnlyTwoMemoryOperandStatements) {
  TestNest t(4, 4);
  t.Add(Operand::None(), Aff(t.arr, {4, 1}, 0), Aff(t.arr, {4, 1}, 1));  // chain
  t.Add(Operand::None(), Aff(t.arr, {4, 1}, 0), Operand::Scalar());     // not a chain
  t.Add(Operand::None(), Operand::Scalar(), Operand::Scalar());         // not a chain
  auto chains = ExtractUseUseChains(*t.nest);
  ASSERT_EQ(chains.size(), 1u);
  EXPECT_EQ(chains[0].stmt_idx, 0);
}

// --- CME --------------------------------------------------------------------

TEST(Cme, CongruenceCountMatchesBruteForce) {
  sim::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    Int a = rng.NextInRange(0, 40);
    Int b = rng.NextInRange(0, 40);
    Int m = rng.NextInRange(2, 32);
    std::uint64_t range = rng.NextBelow(80) + 1;
    std::uint64_t brute = 0;
    for (std::uint64_t x = 0; x < range; ++x) {
      if ((a * static_cast<Int>(x)) % m == ((b % m) + m) % m) ++brute;
    }
    std::uint64_t got = CountCongruentSolutions(a, b, m, range);
    // The closed form over-counts by at most one partial period.
    EXPECT_GE(got + 1, brute);
    EXPECT_LE(got, brute + 1);
  }
}

TEST(Cme, ColdFaceAndStreamPrediction) {
  // 64-byte-strided stream (no reuse): every access misses.
  TestNest t(16, 16, 100000);
  t.Add(Operand::None(), Aff(t.arr, {16 * 8, 8}, 0), Aff(t.arr, {16 * 8, 8}, 4));
  CmePredictor cme(t.p, *t.nest, CacheSpec{}, CacheSpec{512 * 1024, 256, 64}, 25);
  EXPECT_GT(cme.MissProbL1(0, OperandSel::kRhs0), 0.9);
}

TEST(Cme, DenseStrideMostlyHits) {
  TestNest t(16, 64, 100000);
  int b = t.p.AddArray("B", {100000});
  t.Add(Operand::None(), Aff(t.arr, {64, 1}, 0), Aff(b, {64, 1}, 0));
  CmePredictor cme(t.p, *t.nest, CacheSpec{}, CacheSpec{512 * 1024, 256, 64}, 25);
  // 8-byte stride: roughly 1 miss per 8 accesses.
  EXPECT_LT(cme.MissProbL1(0, OperandSel::kRhs0), 0.4);
}

TEST(Cme, SameLinePartnerPredictsHit) {
  TestNest t(16, 16, 100000);
  // Two operands 8 bytes apart: the second rides the first's line fill.
  t.Add(Operand::None(), Aff(t.arr, {16 * 8, 8}, 0), Aff(t.arr, {16 * 8, 8}, 1));
  CmePredictor cme(t.p, *t.nest, CacheSpec{}, CacheSpec{512 * 1024, 256, 64}, 25);
  EXPECT_GT(cme.MissProbL1(0, OperandSel::kRhs0), 0.9);
  EXPECT_LT(cme.MissProbL1(0, OperandSel::kRhs1), 0.1);
}

TEST(Cme, IndirectIsPessimistic) {
  TestNest t(8, 8);
  int idx = t.p.AddArray("idx", {64});
  int tgt = t.p.AddArray("T", {100});
  t.p.index_data[idx] = std::vector<Int>(64, 5);
  AffineAccess ia;
  ia.array = idx;
  ia.F = IntMat(1, 2, {8, 1});
  ia.f = {0};
  t.Add(Operand::None(), Operand::Indirect(ia, tgt), Aff(t.arr, {8, 1}, 0));
  CmePredictor cme(t.p, *t.nest, CacheSpec{}, CacheSpec{512 * 1024, 256, 64}, 25);
  EXPECT_DOUBLE_EQ(cme.MissProbL1(0, OperandSel::kRhs0), 1.0);
}

TEST(Cme, WarmArraysSuppressColdMisses) {
  TestNest t(4, 64, 100000);
  t.Add(Operand::None(), Aff(t.arr, {64, 1}, 0), Aff(t.arr, {64, 1}, 1));
  CmePredictor cold(t.p, *t.nest, CacheSpec{}, CacheSpec{512 * 1024, 256, 64}, 25);
  CmePredictor warm(t.p, *t.nest, CacheSpec{}, CacheSpec{512 * 1024, 256, 64}, 25,
                    {t.arr});
  EXPECT_LE(warm.MissProbL1(0, OperandSel::kRhs0), cold.MissProbL1(0, OperandSel::kRhs0));
}

}  // namespace
}  // namespace ndc::analysis
