// Tests for the NDC compilation pipeline (Algorithms 1 and 2): chain
// gating, target selection, access-movement legality, reuse-aware skipping,
// control-register restriction, coarse-grain mode, and report consistency.

#include <gtest/gtest.h>

#include "compiler/arch_desc.hpp"
#include "compiler/pipeline.hpp"
#include "ir/program.hpp"

namespace ndc::compiler {
namespace {

using ir::AffineAccess;
using ir::Int;
using ir::IntMat;
using ir::IntVec;
using ir::LoopNest;
using ir::Operand;
using ir::Program;
using ir::Stmt;

Operand Aff(int array, IntVec coefs, Int off) {
  AffineAccess a;
  a.array = array;
  a.F = IntMat(1, static_cast<int>(coefs.size()));
  for (int c = 0; c < a.F.cols(); ++c) a.F.at(0, c) = coefs[static_cast<std::size_t>(c)];
  a.f = {off};
  return Operand::Affine(a);
}

// Two 64-byte-strided streams: the canonical NDC-friendly chain.
Program StreamProgram(Int n0 = 32, Int n1 = 16) {
  Program p;
  int x = p.AddArray("x", {n0 * n1 * 8});
  int y = p.AddArray("y", {n0 * n1 * 8});
  int z = p.AddArray("z", {n0 * n1});
  LoopNest nest;
  nest.loops = {{0, n0 - 1, -1, 0, -1, 0}, {0, n1 - 1, -1, 0, -1, 0}};
  Stmt s;
  s.id = p.NextStmtId();
  s.lhs = Aff(z, {n1, 1}, 0);
  s.rhs0 = Aff(x, {n1 * 8, 8}, 0);
  s.rhs1 = Aff(y, {n1 * 8, 8}, 0);
  nest.body.push_back(s);
  p.nests.push_back(std::move(nest));
  return p;
}

TEST(Pipeline, BaselineModeDoesNothing) {
  Program p = StreamProgram();
  ArchDescription ad{arch::ArchConfig{}};
  CompileOptions opt;
  opt.mode = Mode::kBaseline;
  CompileReport rep = Compile(p, ad, opt);
  EXPECT_EQ(rep.chains, 0u);
  EXPECT_FALSE(p.nests[0].body[0].ndc.offload);
}

TEST(Pipeline, PlansStreamingChain) {
  Program p = StreamProgram();
  ArchDescription ad{arch::ArchConfig{}};
  CompileOptions opt;
  opt.mode = Mode::kAlgorithm1;
  CompileReport rep = Compile(p, ad, opt);
  EXPECT_EQ(rep.chains, 1u);
  EXPECT_EQ(rep.planned, 1u);
  EXPECT_TRUE(p.nests[0].body[0].ndc.offload);
  EXPECT_GT(p.nests[0].body[0].ndc.timeout, 0u);
}

TEST(Pipeline, DenseLocalityChainIsGated) {
  // 8-byte strides: spatial reuse everywhere; CME gate must reject.
  Program p;
  int x = p.AddArray("x", {8192});
  int y = p.AddArray("y", {8192});
  LoopNest nest;
  nest.loops = {{0, 31, -1, 0, -1, 0}, {0, 63, -1, 0, -1, 0}};
  Stmt s;
  s.id = p.NextStmtId();
  s.rhs0 = Aff(x, {64, 1}, 0);
  s.rhs1 = Aff(y, {64, 1}, 0);
  nest.body.push_back(s);
  p.nests.push_back(std::move(nest));
  ArchDescription ad{arch::ArchConfig{}};
  CompileOptions opt;
  opt.mode = Mode::kAlgorithm1;
  CompileReport rep = Compile(p, ad, opt);
  EXPECT_EQ(rep.planned, 0u);
  EXPECT_FALSE(p.nests[0].body[0].ndc.offload);
}

TEST(Pipeline, Algorithm2SkipsReusedOperands) {
  // rhs1 = w(i) is reused across the entire inner loop: Algorithm 2 must
  // bypass the chain, Algorithm 1 may take it.
  auto make = [] {
    Program p;
    int x = p.AddArray("x", {32 * 16 * 8});
    int w = p.AddArray("w", {64});
    LoopNest nest;
    nest.loops = {{0, 31, -1, 0, -1, 0}, {0, 15, -1, 0, -1, 0}};
    Stmt s;
    s.id = p.NextStmtId();
    s.rhs0 = Aff(x, {16 * 8, 8}, 0);
    s.rhs1 = Aff(w, {1, 0}, 0);
    nest.body.push_back(s);
    p.nests.push_back(std::move(nest));
    return p;
  };
  ArchDescription ad{arch::ArchConfig{}};
  Program p2 = make();
  CompileOptions a2;
  a2.mode = Mode::kAlgorithm2;
  CompileReport rep2 = Compile(p2, ad, a2);
  EXPECT_EQ(rep2.reuse_skips, 1u);
  EXPECT_EQ(rep2.planned, 0u);
}

TEST(Pipeline, Algorithm2KParameterRelaxesGate) {
  // With k large, even reused operands are offloaded (Section 5.3's "more
  // than k reuses" generalization).
  Program p = StreamProgram();
  // Give rhs1 spatial reuse only; k = 4 tolerates it.
  ArchDescription ad{arch::ArchConfig{}};
  CompileOptions opt;
  opt.mode = Mode::kAlgorithm2;
  opt.reuse_k = 4;
  CompileReport rep = Compile(p, ad, opt);
  EXPECT_EQ(rep.reuse_skips, 0u);
}

TEST(Pipeline, ControlRegisterRestrictsTargets) {
  Program p = StreamProgram();
  ArchDescription ad{arch::ArchConfig{}};
  CompileOptions opt;
  opt.mode = Mode::kAlgorithm1;
  opt.control_register = arch::LocBit(arch::Loc::kMemBank);
  CompileReport rep = Compile(p, ad, opt);
  // Different arrays rarely share a DRAM bank: nothing plannable.
  for (std::size_t l = 0; l < rep.planned_at_loc.size(); ++l) {
    if (l != static_cast<std::size_t>(arch::Loc::kMemBank)) {
      EXPECT_EQ(rep.planned_at_loc[l], 0u);
    }
  }
}

TEST(Pipeline, SameL2LinePairTargetsFollowDataPath) {
  // Same 256-byte line: home banks (and pages/banks) always equal. For a
  // cold single pass the data path reaches the memory side first; when the
  // nest repeats (warm L2), the L2 bank is the first meeting point.
  auto make = [](int passes) {
    Program p;
    int a = p.AddArray("a", {512 * 32 + 64});
    int z = p.AddArray("z", {512});
    LoopNest nest;
    nest.loops = {{0, 511, -1, 0, -1, 0}};
    Stmt s;
    s.id = p.NextStmtId();
    s.lhs = Aff(z, {1}, 0);
    s.rhs0 = Aff(a, {32}, 0);
    s.rhs1 = Aff(a, {32}, 16);
    nest.body.push_back(s);
    p.nests.push_back(nest);
    for (int t = 1; t < passes; ++t) p.nests.push_back(p.nests[0]);
    return p;
  };
  ArchDescription ad{arch::ArchConfig{}};
  CompileOptions opt;
  opt.mode = Mode::kAlgorithm1;

  Program cold = make(1);
  CompileReport rep = Compile(cold, ad, opt);
  ASSERT_EQ(rep.planned, 1u);
  EXPECT_TRUE(cold.nests[0].body[0].ndc.planned == arch::Loc::kMemCtrl ||
              cold.nests[0].body[0].ndc.planned == arch::Loc::kMemBank);

  Program warm = make(2);
  CompileReport rep2 = Compile(warm, ad, opt);
  ASSERT_GE(rep2.planned, 1u);
  // The second pass runs over L2-resident data: its chain meets at the bank.
  EXPECT_EQ(warm.nests[1].body[0].ndc.planned, arch::Loc::kCacheCtrl);
}

TEST(Pipeline, DependenceLimitedChainFallsBackOrSkips) {
  // applu-style wavefront: x(i,j) = x(i,j-1) + x(i-1,j) — flow deps forbid
  // hoisting either operand.
  Program p;
  Int M = 34;
  int x = p.AddArray("x", {M * M + 2 * M});
  LoopNest nest;
  nest.loops = {{0, 31, -1, 0, -1, 0}, {0, 31, -1, 0, -1, 0}};
  Stmt s;
  s.id = p.NextStmtId();
  s.lhs = Aff(x, {M, 1}, M + 1);
  s.rhs0 = Aff(x, {M, 1}, 1);
  s.rhs1 = Aff(x, {M, 1}, M);
  nest.body.push_back(s);
  p.nests.push_back(std::move(nest));
  ArchDescription ad{arch::ArchConfig{}};
  CompileOptions opt;
  opt.mode = Mode::kAlgorithm1;
  CompileReport rep = Compile(p, ad, opt);
  // Either nothing is planned, or movement degenerated to lead 0 (dense
  // strides gate it out anyway); what matters is legality was respected.
  if (p.nests[0].body[0].ndc.offload) {
    EXPECT_EQ(p.nests[0].body[0].ndc.lead0, 0);
    EXPECT_EQ(p.nests[0].body[0].ndc.lead1, 0);
  }
  (void)rep;
}

TEST(Pipeline, CoarseGrainUsesWholeNestMapping) {
  Program p = StreamProgram();
  ArchDescription ad{arch::ArchConfig{}};
  CompileOptions opt;
  opt.mode = Mode::kCoarseGrain;
  CompileReport rep = Compile(p, ad, opt);
  ASSERT_EQ(rep.planned, 1u);
  EXPECT_EQ(p.nests[0].body[0].ndc.lead0, 0);
  EXPECT_EQ(p.nests[0].body[0].ndc.lead1, 0);
  EXPECT_EQ(p.nests[0].body[0].ndc.timeout, arch::ArchConfig{}.default_timeout);
}

TEST(Pipeline, ReportCountsAreConsistent) {
  Program p = StreamProgram();
  Program q = StreamProgram();
  p.nests.push_back(q.nests[0]);
  ArchDescription ad{arch::ArchConfig{}};
  CompileOptions opt;
  opt.mode = Mode::kAlgorithm1;
  CompileReport rep = Compile(p, ad, opt);
  EXPECT_EQ(rep.chains, 2u);
  std::uint64_t per_loc = 0;
  for (std::uint64_t v : rep.planned_at_loc) per_loc += v;
  EXPECT_EQ(per_loc, rep.planned);
  EXPECT_LE(rep.planned, rep.chains);
  EXPECT_DOUBLE_EQ(rep.PlannedFraction(),
                   static_cast<double>(rep.planned) / static_cast<double>(rep.chains));
}

TEST(ArchDescriptionTest, LatencyEstimatesAreOrdered) {
  arch::ArchConfig cfg;
  ArchDescription ad(cfg);
  sim::Addr addr = 0x123456;
  sim::NodeId core = 7;
  sim::Cycle at_l2_hit = ad.EstDataAtLoc(core, addr, arch::Loc::kCacheCtrl, false);
  sim::Cycle at_l2_miss = ad.EstDataAtLoc(core, addr, arch::Loc::kCacheCtrl, true);
  sim::Cycle at_core_hit = ad.EstDataAtCore(core, addr, true, false);
  EXPECT_LT(at_l2_hit, at_l2_miss);
  EXPECT_LT(at_l2_hit, at_core_hit);
  // Memory-side targets are unreachable for L2 hits.
  EXPECT_EQ(ad.EstDataAtLoc(core, addr, arch::Loc::kMemCtrl, false), sim::kNeverCycle);
  EXPECT_NE(ad.EstDataAtLoc(core, addr, arch::Loc::kMemCtrl, true), sim::kNeverCycle);
}

TEST(ArchDescriptionTest, LocNodePlacement) {
  arch::ArchConfig cfg;
  ArchDescription ad(cfg);
  sim::Addr addr = 0x40000;
  EXPECT_EQ(ad.LocNode(addr, arch::Loc::kCacheCtrl, 0), ad.amap().HomeBank(addr));
  EXPECT_EQ(ad.LocNode(addr, arch::Loc::kMemCtrl, 0), ad.McNode(addr));
  EXPECT_EQ(ad.LocNode(addr, arch::Loc::kMemBank, 0), ad.McNode(addr));
}

}  // namespace
}  // namespace ndc::compiler
