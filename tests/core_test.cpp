// Tests for the core model: in-order dispatch at issue width, dataflow
// completion (computes don't block later independent instructions),
// the outstanding-load cap, store/compute dependence resolution, and
// external (NDC) completion.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "arch/core.hpp"
#include "sim/event_queue.hpp"

namespace ndc::arch {
namespace {

// A scriptable memory port: loads complete after a fixed or per-address
// latency; records issue order.
class FakePort : public MemoryPort {
 public:
  explicit FakePort(sim::EventQueue& eq) : eq_(eq) {}

  void IssueLoad(sim::NodeId, std::uint32_t idx, sim::Addr addr) override {
    issued_loads.push_back({eq_.now(), idx});
    sim::Cycle lat = latency;
    auto it = per_addr_latency.find(addr);
    if (it != per_addr_latency.end()) lat = it->second;
    if (auto_complete) {
      eq_.ScheduleAfter(lat, [this, idx] { core->Complete(idx, eq_.now()); });
    }
  }
  void IssueStore(sim::NodeId, std::uint32_t idx, sim::Addr) override {
    issued_stores.push_back({eq_.now(), idx});
  }
  void IssuePreCompute(sim::NodeId, std::uint32_t idx, const Instr&) override {
    issued_precomputes.push_back({eq_.now(), idx});
  }
  void IssueSync(sim::NodeId, std::uint32_t idx, const Instr&) override {
    issued_syncs.push_back({eq_.now(), idx});
    if (auto_complete) {
      eq_.ScheduleAfter(latency, [this, idx] { core->Complete(idx, eq_.now()); });
    }
  }

  sim::EventQueue& eq_;
  Core* core = nullptr;
  sim::Cycle latency = 50;
  std::map<sim::Addr, sim::Cycle> per_addr_latency;
  bool auto_complete = true;
  std::vector<std::pair<sim::Cycle, std::uint32_t>> issued_loads;
  std::vector<std::pair<sim::Cycle, std::uint32_t>> issued_stores;
  std::vector<std::pair<sim::Cycle, std::uint32_t>> issued_precomputes;
  std::vector<std::pair<sim::Cycle, std::uint32_t>> issued_syncs;
};

struct CoreFixture : public ::testing::Test {
  ArchConfig cfg;
  sim::EventQueue eq;
  FakePort port{eq};
  std::unique_ptr<Core> core;

  void Run(Trace t) {
    core = std::make_unique<Core>(0, cfg, eq, port);
    port.core = core.get();
    core->SetTrace(std::move(t));
    core->Start();
    eq.RunUntilEmpty();
  }
};

TEST_F(CoreFixture, IssueWidthLimitsDispatchRate) {
  Trace t;
  for (int i = 0; i < 8; ++i) t.push_back(MakeCompute(Op::kAdd, -1, -1, false));
  Run(std::move(t));
  EXPECT_TRUE(core->finished());
  // 8 independent single-cycle computes at width 2: finishes around cycle 4.
  EXPECT_LE(core->finish_cycle(), 6u);
  EXPECT_GE(core->finish_cycle(), 4u);
}

TEST_F(CoreFixture, LoadsOverlapUpToTheCap) {
  cfg.max_outstanding_loads = 4;
  port.latency = 100;
  Trace t;
  for (int i = 0; i < 8; ++i) t.push_back(MakeLoad(static_cast<sim::Addr>(i) * 4096));
  Run(std::move(t));
  EXPECT_TRUE(core->finished());
  // Two waves of 4 loads: ~200 cycles, not 800 (full overlap within waves).
  EXPECT_LT(core->finish_cycle(), 230u);
  EXPECT_GE(core->finish_cycle(), 200u);
}

TEST_F(CoreFixture, ComputeDoesNotBlockLaterLoads) {
  port.latency = 100;
  Trace t;
  t.push_back(MakeLoad(0));                       // 0
  t.push_back(MakeCompute(Op::kAdd, 0, -1, false));  // 1 waits on the load
  t.push_back(MakeLoad(4096));                    // 2 must not wait for 1
  Run(std::move(t));
  ASSERT_EQ(port.issued_loads.size(), 2u);
  // Both loads dispatched within the first couple of cycles.
  EXPECT_LE(port.issued_loads[1].first, 2u);
  EXPECT_GE(core->done_cycle(1), 100u);
}

TEST_F(CoreFixture, ComputeCompletesAtMaxOfDeps) {
  port.per_addr_latency[0] = 40;
  port.per_addr_latency[4096] = 90;
  Trace t;
  t.push_back(MakeLoad(0));
  t.push_back(MakeLoad(4096));
  t.push_back(MakeCompute(Op::kAdd, 0, 1, false));
  Run(std::move(t));
  EXPECT_EQ(core->done_cycle(2), core->done_cycle(1) + cfg.compute_latency);
}

TEST_F(CoreFixture, StoreWaitsForItsValue) {
  port.latency = 60;
  Trace t;
  t.push_back(MakeLoad(0));
  t.push_back(MakeCompute(Op::kAdd, 0, -1, false));
  t.push_back(MakeStore(8192, 1));
  Run(std::move(t));
  ASSERT_EQ(port.issued_stores.size(), 1u);
  EXPECT_GE(port.issued_stores[0].first, 60u);  // after the load returned
}

TEST_F(CoreFixture, IndirectLoadBlocksOnAddressDependence) {
  port.per_addr_latency[0] = 70;  // index load
  Trace t;
  t.push_back(MakeLoad(0));         // index
  t.push_back(MakeLoad(4096, 0));   // data: address depends on 0
  Run(std::move(t));
  ASSERT_EQ(port.issued_loads.size(), 2u);
  EXPECT_GE(port.issued_loads[1].first, 70u);
}

TEST_F(CoreFixture, PreComputeDispatchesWithoutWaitingForLoads) {
  port.latency = 200;
  port.auto_complete = false;  // nothing ever completes on its own
  Trace t;
  t.push_back(MakeLoad(0));
  t.push_back(MakeLoad(4096));
  t.push_back(MakePreCompute(Op::kAdd, 0, 1, Loc::kCacheCtrl, 10));
  core = std::make_unique<Core>(0, cfg, eq, port);
  port.core = core.get();
  core->SetTrace(std::move(t));
  core->Start();
  eq.RunUntilEmpty();
  // The pre-compute dispatched even though the loads never completed.
  ASSERT_EQ(port.issued_precomputes.size(), 1u);
  EXPECT_LE(port.issued_precomputes[0].first, 2u);
  EXPECT_FALSE(core->finished());
  // The machine completes everything externally.
  core->Complete(0, eq.now());
  core->Complete(1, eq.now());
  core->Complete(2, eq.now());
  eq.RunUntilEmpty();
  EXPECT_TRUE(core->finished());
}

TEST_F(CoreFixture, ExternalComputeIsNotSelfCompleted) {
  port.latency = 10;
  Trace t;
  t.push_back(MakeLoad(0));
  t.push_back(MakeLoad(4096));
  t.push_back(MakeCompute(Op::kAdd, 0, 1, true));
  core = std::make_unique<Core>(0, cfg, eq, port);
  port.core = core.get();
  core->SetTrace(std::move(t));
  core->MarkExternal(2);
  core->Start();
  eq.RunUntilEmpty();
  EXPECT_FALSE(core->finished());  // slot 2 awaits the machine
  core->Complete(2, eq.now() + 5);
  eq.RunUntilEmpty();
  EXPECT_TRUE(core->finished());
  EXPECT_EQ(core->done_cycle(2), core->finish_cycle());
}

TEST_F(CoreFixture, CompleteIsIdempotent) {
  Trace t;
  t.push_back(MakeLoad(0));
  core = std::make_unique<Core>(0, cfg, eq, port);
  port.core = core.get();
  port.auto_complete = false;
  core->SetTrace(std::move(t));
  core->Start();
  eq.RunUntilEmpty();
  core->Complete(0, eq.now());
  core->Complete(0, eq.now() + 99);  // must be ignored
  eq.RunUntilEmpty();
  EXPECT_TRUE(core->finished());
  EXPECT_EQ(core->done_cycle(0), 0u + eq.now());
}

TEST_F(CoreFixture, EarlyCompletionBeforeDispatchIsHonored) {
  // The machine may complete a slot before the core reaches it (an NDC
  // result racing in-order dispatch).
  port.latency = 5;
  Trace t;
  for (int i = 0; i < 40; ++i) t.push_back(MakeCompute(Op::kAdd, i ? i - 1 : -1, -1, false));
  t.push_back(MakeCompute(Op::kAdd, 39, -1, false));  // 40
  core = std::make_unique<Core>(0, cfg, eq, port);
  port.core = core.get();
  core->SetTrace(std::move(t));
  core->MarkExternal(40);
  core->Start();
  core->Complete(40, 1);  // completes long before dispatch reaches slot 40
  eq.RunUntilEmpty();
  EXPECT_TRUE(core->finished());
}

TEST_F(CoreFixture, FinishCycleIsMaxCompletion) {
  port.per_addr_latency[0] = 10;
  port.per_addr_latency[4096] = 300;
  Trace t;
  t.push_back(MakeLoad(0));
  t.push_back(MakeLoad(4096));
  Run(std::move(t));
  EXPECT_EQ(core->finish_cycle(), core->done_cycle(1));
}

TEST_F(CoreFixture, EmptyTraceFinishesImmediately) {
  Run({});
  EXPECT_TRUE(core->finished());
  EXPECT_EQ(core->finish_cycle(), 0u);
}

}  // namespace
}  // namespace ndc::arch
